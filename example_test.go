package leime_test

import (
	"fmt"

	"leime"
)

// ExampleBuild shows the core workflow: build a system for a concrete
// environment and read the optimal exit setting.
func ExampleBuild() {
	sys, err := leime.Build(leime.Options{
		Arch: "inception-v3",
		Env:  leime.TestbedEnv(leime.RaspberryPi3B),
	})
	if err != nil {
		panic(err)
	}
	e1, e2, e3 := sys.Exits()
	fmt.Println("valid ordering:", 1 <= e1 && e1 < e2 && e2 < e3)
	fmt.Println("third exit is the original classifier:", e3 == 16)
	// Output:
	// valid ordering: true
	// third exit is the original classifier: true
}

// ExampleSystem_CompareStrategies evaluates LEIME against the paper's
// baseline exit-setting schemes under one environment.
func ExampleSystem_CompareStrategies() {
	sys, err := leime.Build(leime.Options{
		Arch: "resnet-34",
		Env:  leime.TestbedEnv(leime.JetsonNano),
	})
	if err != nil {
		panic(err)
	}
	costs, err := sys.CompareStrategies()
	if err != nil {
		panic(err)
	}
	best := costs[0]
	wins := true
	for _, c := range costs[1:] {
		if c.TCT < best.TCT {
			wins = false
		}
	}
	fmt.Println("first scheme:", best.Name)
	fmt.Println("LEIME never loses:", wins)
	// Output:
	// first scheme: LEIME
	// LEIME never loses: true
}

// ExampleSystem_SimulateTasks runs the per-task pipeline simulation and
// checks task conservation.
func ExampleSystem_SimulateTasks() {
	sys, err := leime.Build(leime.Options{
		Arch: "squeezenet-1.0",
		Env:  leime.TestbedEnv(leime.RaspberryPi3B),
	})
	if err != nil {
		panic(err)
	}
	res, err := sys.SimulateTasks(leime.SimOptions{ArrivalRate: 4, Slots: 100})
	if err != nil {
		panic(err)
	}
	fmt.Println("all tasks completed:", res.Completed == res.Generated && res.Generated > 0)
	fmt.Println("latency positive:", res.TCT.Mean() > 0)
	// Output:
	// all tasks completed: true
	// latency positive: true
}

// ExampleSystem_SweepBandwidth shows the optimal exits migrating with the
// uplink: slower links push the First exit deeper.
func ExampleSystem_SweepBandwidth() {
	sys, err := leime.Build(leime.Options{
		Arch: "resnet-34",
		Env:  leime.TestbedEnv(leime.RaspberryPi3B),
	})
	if err != nil {
		panic(err)
	}
	pts, err := sys.SweepBandwidth([]float64{1, 64})
	if err != nil {
		panic(err)
	}
	fmt.Println("slow link First exit deeper:", pts[0].E1 >= pts[1].E1)
	fmt.Println("fast link cheaper:", pts[1].TCT < pts[0].TCT)
	// Output:
	// slow link First exit deeper: true
	// fast link cheaper: true
}
