// Wildedge: the "wild" environment demonstration. Arrival rates surge and
// fall over time while LEIME's online offloading controller and the static
// baselines run side by side; the example prints per-phase mean completion
// times and the controller's offloading decisions, showing how the Lyapunov
// policy tracks the changing load.
package main

import (
	"fmt"
	"log"

	"leime"
	"leime/internal/offload"
	"leime/internal/sim"
	"leime/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

var phases = []trace.Phase{
	{Slots: 80, Rate: 3},
	{Slots: 80, Rate: 12},
	{Slots: 80, Rate: 4},
	{Slots: 80, Rate: 18},
	{Slots: 80, Rate: 3},
}

func run() error {
	// The edge is shared with other tenants (8% share), so blindly pushing
	// everything to the edge is no longer free and the controller has a real
	// local-vs-edge trade-off to balance.
	sys, err := leime.Build(leime.Options{
		Arch: "inception-v3",
		Env:  leime.TestbedEnv(leime.RaspberryPi3B).WithEdgeLoad(0.08),
	})
	if err != nil {
		return err
	}
	fmt.Println("== LEIME in the wild: dynamic arrival rates, Raspberry Pi + edge + cloud")
	fmt.Print("phases:")
	for _, ph := range phases {
		fmt.Printf(" %d slots @ rate %.0f;", ph.Slots, ph.Rate)
	}
	fmt.Println()

	policies := []leime.Policy{
		leime.Lyapunov(),
		leime.DeviceOnly(),
		leime.EdgeOnly(),
		leime.CapabilityBased(),
	}
	total := 0
	for _, ph := range phases {
		total += ph.Slots
	}

	fmt.Printf("\n%-10s", "policy")
	for i := range phases {
		fmt.Printf("  phase%d(ms)", i+1)
	}
	fmt.Printf("  backlog  mean_ratio\n")
	for _, pol := range policies {
		res, ratio, err := runPolicy(sys, pol, total)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s", pol.Name)
		at := 0
		for _, ph := range phases {
			fmt.Printf("  %10.1f", 1000*res.PerDevice[0].SlotTCT.Window(at, at+ph.Slots))
			at += ph.Slots
		}
		fmt.Printf("  %7.0f  %10.2f\n", res.FinalBacklog, ratio)
	}
	fmt.Println("\nNo static policy wins every phase: E-only and cap_based pay dearly in the")
	fmt.Println("surges (the shared edge saturates), D-only wastes the edge in calm phases.")
	fmt.Println("LEIME tracks the best policy in each phase without being told which it is.")
	return nil
}

func runPolicy(sys *leime.System, pol leime.Policy, slots int) (*sim.SlotResult, float64, error) {
	proc, err := trace.NewPiecewise(phases, 5)
	if err != nil {
		return nil, 0, err
	}
	env := sys.Env()
	res, err := sim.RunSlots(sim.SlotConfig{
		Model: sys.Params(),
		Devices: []sim.DeviceSpec{{
			Device: offload.Device{
				FLOPS:        env.DeviceFLOPS,
				BandwidthBps: env.DeviceEdge.BandwidthBps,
				LatencySec:   env.DeviceEdge.LatencySec,
				ArrivalMean:  proc.Mean(),
			},
			Arrivals: proc,
			Policy:   &pol,
		}},
		EdgeFLOPS:   env.EdgeFLOPS,
		CloudFLOPS:  env.CloudFLOPS,
		EdgeCloud:   env.EdgeCloud,
		TauSec:      1,
		V:           1e4,
		Slots:       slots,
		WarmupSlots: 10,
		Seed:        5,
	})
	if err != nil {
		return nil, 0, err
	}
	return res, res.PerDevice[0].Ratio.Mean(), nil
}
