// Sensitivity: watch the optimal exit setting migrate as the environment
// changes — the dynamics behind the paper's Fig. 2. The example sweeps the
// device-edge bandwidth and the edge share for both testbed devices and
// prints where the branch-and-bound optimum lands at each point.
package main

import (
	"fmt"
	"log"

	"leime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== How LEIME's optimal exits move with the environment (resnet-34)")
	for _, node := range []leime.Node{leime.RaspberryPi3B, leime.JetsonNano} {
		sys, err := leime.Build(leime.Options{Arch: "resnet-34", Env: leime.TestbedEnv(node)})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", node.Name)

		pts, err := sys.SweepBandwidth([]float64{1, 4, 16, 64})
		if err != nil {
			return err
		}
		fmt.Println("  bandwidth sweep (slower WiFi pushes the First exit deeper —")
		fmt.Println("  finish more locally rather than ship a big tensor):")
		for _, pt := range pts {
			fmt.Printf("    %-8s exits (%2d, %2d)  expected TCT %6.1f ms\n",
				pt.Label, pt.E1, pt.E2, pt.TCT*1000)
		}

		pts, err = sys.SweepEdgeLoad([]float64{1, 0.25, 0.05})
		if err != nil {
			return err
		}
		fmt.Println("  edge-load sweep (a busier edge pulls the Second exit shallower —")
		fmt.Println("  ask less of the shared server):")
		for _, pt := range pts {
			fmt.Printf("    %-11s exits (%2d, %2d)  expected TCT %6.1f ms\n",
				pt.Label, pt.E1, pt.E2, pt.TCT*1000)
		}
	}
	fmt.Println("\nEvery one of these re-solves P0 with the branch-and-bound algorithm;")
	fmt.Println("a static exit placement (the DDNN/Edgent baselines) can match at most")
	fmt.Println("one point of each sweep.")
	return nil
}
