// Quickstart: build a LEIME system for one device, inspect the optimal exit
// setting, compare it against the paper's baselines, and run a short
// simulated workload — plus one genuinely executed multi-exit inference with
// the built-in tensor engine.
package main

import (
	"fmt"
	"log"

	"leime"
	"leime/internal/dataset"
	"leime/internal/model"
	"leime/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build: calibrate exit thresholds on a CIFAR-10-like workload and
	// solve the exit-setting problem for a Raspberry Pi behind 10 Mbps WiFi.
	sys, err := leime.Build(leime.Options{
		Arch: "inception-v3",
		Env:  leime.TestbedEnv(leime.RaspberryPi3B),
	})
	if err != nil {
		return err
	}
	e1, e2, e3 := sys.Exits()
	fmt.Printf("== LEIME quickstart: %s on a Raspberry Pi 3B+\n", sys.Arch())
	fmt.Printf("optimal exits: First=exit-%d Second=exit-%d Third=exit-%d (expected TCT %.1f ms)\n\n",
		e1, e2, e3, sys.ExpectedTCT()*1000)

	// 2. Compare against the baselines of the paper's evaluation.
	costs, err := sys.CompareStrategies()
	if err != nil {
		return err
	}
	fmt.Println("exit-setting schemes (expected per-task completion time):")
	for _, c := range costs {
		fmt.Printf("  %-13s exits (%2d, %2d)  %.1f ms  (%.2fx LEIME)\n",
			c.Name, c.E1, c.E2, c.TCT*1000, c.TCT/costs[0].TCT)
	}

	// 3. Simulate 200 slots of Poisson traffic through the full
	// device-edge-cloud pipeline with online offloading.
	res, err := sys.SimulateTasks(leime.SimOptions{ArrivalRate: 6, Slots: 200})
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated %d tasks: mean TCT %.1f ms, P99 %.1f ms, exits [%d %d %d], mean offload ratio %.2f\n",
		res.Completed, res.TCT.Mean()*1000, res.TCT.Percentile(99)*1000,
		res.ExitCounts[0], res.ExitCounts[1], res.ExitCounts[2], res.Ratio.Mean())

	// 4. Execute a real multi-exit inference: the tensor engine runs the
	// SqueezeNet graph (fire modules, concatenations) for real, with
	// classifiers at three exits. The weights are random (untrained), so
	// softmax confidences sit near uniform (~0.1); the low threshold below
	// demonstrates the early-exit mechanics, not a trained model's accuracy.
	p := model.SqueezeNet10()
	net, err := tensor.NewGraphNet(p, []int{2, 6, 10}, 7)
	if err != nil {
		return err
	}
	ds, err := dataset.Generate(dataset.CIFAR10Like, 4, 11)
	if err != nil {
		return err
	}
	fmt.Println("\nreal executed inference (squeezenet-1.0 graph, exits at 2/6/10):")
	for i := 0; i < ds.Len(); i++ {
		in, err := tensor.FromImage(ds.Image(i), 32, 32, 3)
		if err != nil {
			return err
		}
		pred, err := net.Run(in, 0.3)
		if err != nil {
			return err
		}
		fmt.Printf("  sample %d (difficulty %.2f): left at exit-%d, class %d, confidence %.2f, %.0f MFLOPs executed\n",
			i, ds.Samples[i].Difficulty, pred.Exit, pred.Class, pred.Confidence, pred.FLOPs/1e6)
	}
	return nil
}
