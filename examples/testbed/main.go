// Testbed: spin up the full LEIME prototype in one process — a cloud server,
// an edge server and two heterogeneous devices (a Raspberry Pi running
// Inception v3 and a Jetson Nano running SqueezeNet) talking over real
// loopback TCP with netem-shaped links — and run a compressed-time workload
// through it. The edge serves each tenant with its own model (per-tenant
// block FLOPs and exit rates), the Docker-multi-app equivalent.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"leime"
	"leime/internal/netem"
	"leime/internal/runtime"
)

// scale compresses testbed time 50x so the example finishes in seconds.
const scale = runtime.Scale(0.02)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := leime.Build(leime.Options{
		Arch: "inception-v3",
		Env:  leime.TestbedEnv(leime.RaspberryPi3B),
	})
	if err != nil {
		return err
	}
	nanoSys, err := leime.Build(leime.Options{
		Arch: "squeezenet-1.0",
		Env:  leime.TestbedEnv(leime.JetsonNano),
	})
	if err != nil {
		return err
	}
	params := sys.Params()
	e1, e2, e3 := sys.Exits()
	n1, n2, n3 := nanoSys.Exits()
	fmt.Printf("== LEIME testbed over real TCP (time scale %gx)\n", 1/float64(scale))
	fmt.Printf("   pi-1 runs %s{exit-%d,exit-%d,exit-%d}\n", sys.Arch(), e1, e2, e3)
	fmt.Printf("   nano-1 runs %s{exit-%d,exit-%d,exit-%d} (per-tenant model at the edge)\n",
		nanoSys.Arch(), n1, n2, n3)

	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       leime.CloudV100.FLOPS,
		Block3FLOPs: params.Mu[2],
		TimeScale:   scale,
	})
	if err != nil {
		return err
	}
	defer cloud.Close()

	edge, err := runtime.StartEdge(runtime.EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     leime.EdgeDesktop.FLOPS,
		Model:     params,
		CloudAddr: cloud.Addr(),
		CloudLink: netem.Link{BandwidthBps: leime.Mbps(50), Latency: 30 * time.Millisecond},
		TimeScale: scale,
	})
	if err != nil {
		return err
	}
	defer edge.Close()
	fmt.Printf("cloud on %s, edge on %s\n\n", cloud.Addr(), edge.Addr())

	devices := []struct {
		id    string
		node  leime.Node
		model leime.ModelParams
		rate  float64
		seed  int64
		wifi  float64 // Mbps
		delay time.Duration
	}{
		{"pi-1", leime.RaspberryPi3B, sys.Params(), 4, 11, 8, 25 * time.Millisecond},
		{"nano-1", leime.JetsonNano, nanoSys.Params(), 8, 22, 20, 15 * time.Millisecond},
	}

	var wg sync.WaitGroup
	stats := make([]*runtime.DeviceStats, len(devices))
	errs := make([]error, len(devices))
	for i, d := range devices {
		wg.Add(1)
		go func(i int, d struct {
			id    string
			node  leime.Node
			model leime.ModelParams
			rate  float64
			seed  int64
			wifi  float64
			delay time.Duration
		}) {
			defer wg.Done()
			stats[i], errs[i] = runtime.RunDevice(runtime.DeviceConfig{
				ID:       d.id,
				FLOPS:    d.node.FLOPS,
				Model:    d.model,
				EdgeAddr: edge.Addr(),
				Uplink: netem.Link{
					BandwidthBps: leime.Mbps(d.wifi),
					Latency:      d.delay,
					Jitter:       2 * time.Millisecond,
				},
				ArrivalMean: d.rate,
				TauSec:      1,
				V:           1e4,
				Slots:       40,
				WarmupSlots: 5,
				TimeScale:   scale,
				Seed:        d.seed,
			})
		}(i, d)
	}
	wg.Wait()

	for i, d := range devices {
		if errs[i] != nil {
			return fmt.Errorf("device %s: %w", d.id, errs[i])
		}
		s := stats[i]
		fmt.Printf("%-7s (%s, %.0f Mbps WiFi): %d tasks, exits [%d %d %d], errors %d\n",
			d.id, d.node.Name, d.wifi, s.Completed,
			s.ExitCounts[0], s.ExitCounts[1], s.ExitCounts[2], s.Errors)
		fmt.Printf("        TCT mean %.0f ms, p50 %.0f ms, p99 %.0f ms; mean offload ratio %.2f\n",
			s.TCT.Mean()*1000, s.TCT.Percentile(50)*1000, s.TCT.Percentile(99)*1000, s.Ratio.Mean())
		fmt.Printf("        stages: %.0f ms on-device + %.0f ms network/edge/cloud\n",
			s.LocalStage.Mean()*1000, s.RemoteStage.Mean()*1000)
	}
	return nil
}
