// Fleet: the scalability scenario of the paper's Fig. 11 as a runnable
// example — a growing fleet of homogeneous devices shares one edge server,
// and LEIME's load-aware exit setting plus online offloading keeps the mean
// completion time near-linear while static baselines fall over.
package main

import (
	"fmt"
	"log"

	"leime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== LEIME fleet scaling: N Raspberry Pis sharing one edge server")
	fmt.Printf("%8s  %14s  %14s  %12s\n", "devices", "leime_tct_ms", "donly_tct_ms", "leime_ratio")
	for _, n := range []int{1, 2, 5, 10, 20, 40} {
		// The exit setting sees the per-device edge share: with N tenants
		// each device gets 1/N of the edge, so LEIME re-solves P0 per scale.
		env := leime.TestbedEnv(leime.RaspberryPi3B).WithEdgeLoad(1 / float64(n))
		sys, err := leime.Build(leime.Options{Arch: "resnet-34", Env: env})
		if err != nil {
			return err
		}
		res, err := sys.SimulateSlots(leime.SimOptions{
			Devices:     n,
			DeviceFLOPS: leime.RaspberryPi3B.FLOPS,
			ArrivalRate: 3,
			Slots:       150,
		})
		if err != nil {
			return err
		}
		dOnly := leime.DeviceOnly()
		resD, err := sys.SimulateSlots(leime.SimOptions{
			Devices:     n,
			DeviceFLOPS: leime.RaspberryPi3B.FLOPS,
			ArrivalRate: 3,
			Slots:       150,
			Policy:      &dOnly,
		})
		if err != nil {
			return err
		}
		var ratio float64
		for _, d := range res.PerDevice {
			ratio += d.Ratio.Mean()
		}
		ratio /= float64(len(res.PerDevice))
		fmt.Printf("%8d  %14.1f  %14.1f  %12.2f\n",
			n, res.MeanTCT*1000, resD.MeanTCT*1000, ratio)
	}
	fmt.Println("\nWith few tenants LEIME exploits the idle edge (high offload ratio, well")
	fmt.Println("below device-only cost); as the fleet grows it pulls first-block work back")
	fmt.Println("to the devices and re-solves the exit setting for the thinner edge share,")
	fmt.Println("so completion time degrades smoothly instead of collapsing.")
	return nil
}
