package leime

import (
	"testing"
)

func buildSystem(t *testing.T, arch string, env Env) *System {
	t.Helper()
	sys, err := Build(Options{Arch: arch, Env: env})
	if err != nil {
		t.Fatalf("Build(%s): %v", arch, err)
	}
	return sys
}

func TestArchitectures(t *testing.T) {
	archs := Architectures()
	if len(archs) != 4 {
		t.Fatalf("Architectures() = %v", archs)
	}
	for _, a := range archs {
		sys := buildSystem(t, a, TestbedEnv(RaspberryPi3B))
		if sys.Arch() != a {
			t.Errorf("Arch() = %q, want %q", sys.Arch(), a)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Options{Arch: "alexnet", Env: TestbedEnv(RaspberryPi3B)}); err == nil {
		t.Error("unknown arch accepted")
	}
	if _, err := Build(Options{Arch: "vgg-16"}); err == nil {
		t.Error("zero environment accepted")
	}
}

func TestBuildProducesConsistentSystem(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	e1, e2, e3 := sys.Exits()
	if !(1 <= e1 && e1 < e2 && e2 < e3) {
		t.Errorf("invalid exits (%d, %d, %d)", e1, e2, e3)
	}
	if sys.ExpectedTCT() <= 0 {
		t.Errorf("ExpectedTCT = %v", sys.ExpectedTCT())
	}
	params := sys.Params()
	if err := params.Validate(); err != nil {
		t.Errorf("Params invalid: %v", err)
	}
	sigma := sys.Sigma()
	if len(sigma) == 0 || sigma[len(sigma)-1] != 1 {
		t.Errorf("Sigma malformed: %v", sigma)
	}
	// Sigma() must return a defensive copy.
	sigma[0] = 99
	if sys.Sigma()[0] == 99 {
		t.Error("Sigma() exposes internal state")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := buildSystem(t, "resnet-34", TestbedEnv(JetsonNano))
	b := buildSystem(t, "resnet-34", TestbedEnv(JetsonNano))
	ae1, ae2, _ := a.Exits()
	be1, be2, _ := b.Exits()
	if ae1 != be1 || ae2 != be2 {
		t.Errorf("same options diverged: (%d,%d) vs (%d,%d)", ae1, ae2, be1, be2)
	}
}

func TestCompareStrategiesLEIMEWins(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	costs, err := sys.CompareStrategies()
	if err != nil {
		t.Fatalf("CompareStrategies: %v", err)
	}
	if len(costs) < 4 {
		t.Fatalf("too few strategies: %v", costs)
	}
	if costs[0].Name != "LEIME" {
		t.Fatalf("first strategy %q, want LEIME", costs[0].Name)
	}
	for _, c := range costs[1:] {
		if c.TCT < costs[0].TCT-1e-12 {
			t.Errorf("%s (%v) beat LEIME (%v)", c.Name, c.TCT, costs[0].TCT)
		}
	}
}

func TestEasyWorkloadExitsEarlier(t *testing.T) {
	easy, err := Build(Options{Arch: "inception-v3", Env: TestbedEnv(RaspberryPi3B), EasyFraction: 0.9})
	if err != nil {
		t.Fatalf("Build easy: %v", err)
	}
	hard, err := Build(Options{Arch: "inception-v3", Env: TestbedEnv(RaspberryPi3B), EasyFraction: 0.05})
	if err != nil {
		t.Fatalf("Build hard: %v", err)
	}
	se, sh := easy.Sigma(), hard.Sigma()
	mid := len(se) / 2
	if se[mid] <= sh[mid] {
		t.Errorf("easier workload should exit earlier: %v <= %v", se[mid], sh[mid])
	}
}

func TestSimulateSlots(t *testing.T) {
	sys := buildSystem(t, "squeezenet-1.0", TestbedEnv(JetsonNano))
	res, err := sys.SimulateSlots(SimOptions{Devices: 2, ArrivalRate: 4, Slots: 100})
	if err != nil {
		t.Fatalf("SimulateSlots: %v", err)
	}
	if res.MeanTCT <= 0 {
		t.Errorf("MeanTCT = %v", res.MeanTCT)
	}
	if len(res.PerDevice) != 2 {
		t.Errorf("PerDevice = %d entries, want 2", len(res.PerDevice))
	}
}

func TestSimulateTasks(t *testing.T) {
	sys := buildSystem(t, "vgg-16", TestbedEnv(RaspberryPi3B))
	res, err := sys.SimulateTasks(SimOptions{ArrivalRate: 3, Slots: 80})
	if err != nil {
		t.Fatalf("SimulateTasks: %v", err)
	}
	if res.Completed != res.Generated || res.Generated == 0 {
		t.Errorf("conservation: generated %d completed %d", res.Generated, res.Completed)
	}
	if res.TCT.Mean() <= 0 {
		t.Errorf("mean TCT = %v", res.TCT.Mean())
	}
}

func TestSimulatePolicyOverride(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	dOnly := DeviceOnly()
	base, err := sys.SimulateSlots(SimOptions{ArrivalRate: 10, Slots: 150})
	if err != nil {
		t.Fatalf("SimulateSlots: %v", err)
	}
	fixed, err := sys.SimulateSlots(SimOptions{ArrivalRate: 10, Slots: 150, Policy: &dOnly})
	if err != nil {
		t.Fatalf("SimulateSlots(D-only): %v", err)
	}
	if base.MeanTCT > fixed.MeanTCT+1e-9 {
		t.Errorf("LEIME policy (%v) should not lose to D-only (%v) under load", base.MeanTCT, fixed.MeanTCT)
	}
}

func TestNanoPrefersDeeperFirstExitThanPi(t *testing.T) {
	pi := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	nano := buildSystem(t, "inception-v3", TestbedEnv(JetsonNano))
	p1, _, _ := pi.Exits()
	n1, _, _ := nano.Exits()
	if p1 > n1 {
		t.Errorf("Pi First-exit (%d) deeper than Nano's (%d)", p1, n1)
	}
}

func TestRunLocalTestbed(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	res, err := sys.RunLocalTestbed(TestbedOptions{
		Devices: []TestbedDevice{
			{Node: RaspberryPi3B, ArrivalRate: 3},
			{Node: JetsonNano, ArrivalRate: 6, UplinkMbps: 20},
		},
		Slots:     20,
		TimeScale: 0.01,
	})
	if err != nil {
		t.Fatalf("RunLocalTestbed: %v", err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("Stats = %d entries", len(res.Stats))
	}
	for i, st := range res.Stats {
		if st.Generated == 0 || st.Completed != st.Generated {
			t.Errorf("device %d: generated %d completed %d", i, st.Generated, st.Completed)
		}
		if st.Errors != 0 {
			t.Errorf("device %d: %d errors", i, st.Errors)
		}
		if st.TCT.Mean() <= 0 {
			t.Errorf("device %d: mean TCT %v", i, st.TCT.Mean())
		}
	}
}

func TestRunLocalTestbedValidation(t *testing.T) {
	sys := buildSystem(t, "vgg-16", TestbedEnv(RaspberryPi3B))
	if _, err := sys.RunLocalTestbed(TestbedOptions{}); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestSimulateTasksEdgePolicyBatch(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	eOnly := EdgeOnly()
	opts := SimOptions{Devices: 3, ArrivalRate: 8, Slots: 60, Policy: &eOnly}
	base, err := sys.SimulateTasks(opts)
	if err != nil {
		t.Fatalf("SimulateTasks: %v", err)
	}
	opts.EdgePolicy = PolicyOptions{Batch: BatchConfig{MaxSize: 8, MaxDelaySec: 0.05}}
	batched, err := sys.SimulateTasks(opts)
	if err != nil {
		t.Fatalf("SimulateTasks(batched): %v", err)
	}
	if batched.Completed != batched.Generated || batched.Generated == 0 {
		t.Errorf("conservation: generated %d completed %d", batched.Generated, batched.Completed)
	}
	if batched.Generated != base.Generated {
		t.Errorf("batching changed arrivals: %d vs %d", batched.Generated, base.Generated)
	}
}

func TestRunLocalTestbedBatchAndBudget(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	res, err := sys.RunLocalTestbed(TestbedOptions{
		Devices: []TestbedDevice{
			{Node: RaspberryPi3B, ArrivalRate: 4},
			{Node: RaspberryPi3B, ArrivalRate: 4},
		},
		Slots:     15,
		TimeScale: 0.01,
		EdgePolicy: PolicyOptions{
			MaxBacklogSec: 5,
			Batch:         BatchConfig{MaxSize: 4, MaxDelaySec: 0.05},
		},
	})
	if err != nil {
		t.Fatalf("RunLocalTestbed: %v", err)
	}
	for i, st := range res.Stats {
		if st.Generated == 0 || st.Completed != st.Generated {
			t.Errorf("device %d: generated %d completed %d", i, st.Generated, st.Completed)
		}
		if st.Errors != 0 {
			t.Errorf("device %d: %d errors (budget rejections must degrade, not fail)", i, st.Errors)
		}
	}
}

// TestRunLocalTestbedSelfTuningPolicy drives the full self-tuning policy —
// deadline admission, EDF ordering, adaptive batching — through the facade
// with budgets generous enough that nothing is doomed: the controllers must
// be plumbing, not behaviour, so conservation holds and nothing errors.
func TestRunLocalTestbedSelfTuningPolicy(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(RaspberryPi3B))
	res, err := sys.RunLocalTestbed(TestbedOptions{
		Devices: []TestbedDevice{
			{Node: RaspberryPi3B, ArrivalRate: 4},
			{Node: RaspberryPi3B, ArrivalRate: 4},
		},
		Slots:           15,
		TimeScale:       0.01,
		TaskDeadlineSec: 120,
		EdgePolicy: PolicyOptions{
			DeadlineAdmission: true,
			EDF:               true,
			AdaptiveBatch:     true,
		},
	})
	if err != nil {
		t.Fatalf("RunLocalTestbed: %v", err)
	}
	for i, st := range res.Stats {
		if st.Generated == 0 || st.Completed != st.Generated {
			t.Errorf("device %d: generated %d completed %d", i, st.Generated, st.Completed)
		}
		if st.Errors != 0 {
			t.Errorf("device %d: %d errors under a generous deadline", i, st.Errors)
		}
		if st.DeadlineMisses != 0 {
			t.Errorf("device %d: %d deadline misses under a 120s budget", i, st.DeadlineMisses)
		}
	}
}

func TestSolveJoint(t *testing.T) {
	sys := buildSystem(t, "inception-v3", TestbedEnv(JetsonNano))
	plan, err := sys.SolveJoint()
	if err != nil {
		t.Fatalf("SolveJoint: %v", err)
	}
	if !(1 <= plan.E1 && plan.E1 < plan.E2 && plan.E2 < plan.E3) {
		t.Errorf("invalid joint exits %+v", plan)
	}
	if plan.Ratio < 0 || plan.Ratio > 1 {
		t.Errorf("ratio %v out of range", plan.Ratio)
	}
	if plan.TCT > plan.SequentialTCT+1e-12 {
		t.Errorf("joint TCT %v exceeds sequential %v", plan.TCT, plan.SequentialTCT)
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{Arch: "inception-v3"}.withDefaults()
	if o.DatasetSize != 1000 || o.Seed != 1 || o.AccuracyLossBudget == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if o.EasyFraction != 0.55 {
		t.Errorf("EasyFraction default = %v, want the CIFAR-10-like 0.55", o.EasyFraction)
	}
	o = Options{Arch: "inception-v3", Seed: SeedZero, EasyFraction: EasyFractionZero}.withDefaults()
	if o.Seed != 0 {
		t.Errorf("SeedZero resolved to %d, want the literal 0", o.Seed)
	}
	if o.EasyFraction != 0 {
		t.Errorf("EasyFractionZero resolved to %v, want the literal 0", o.EasyFraction)
	}

	s := SimOptions{}.withDefaults(Env{DeviceFLOPS: 42})
	if s.Devices != 1 || s.DeviceFLOPS != 42 || s.ArrivalRate != 5 || s.Slots != 300 || s.Seed != 1 {
		t.Errorf("sim defaults not applied: %+v", s)
	}
	if got := (SimOptions{Seed: SeedZero}).withDefaults(Env{}).Seed; got != 0 {
		t.Errorf("sim SeedZero resolved to %d", got)
	}

	tb := TestbedOptions{}.withDefaults()
	if tb.Slots != 40 || tb.TimeScale != 0.02 || tb.Seed != 1 {
		t.Errorf("testbed defaults not applied: %+v", tb)
	}
	if got := (TestbedOptions{Seed: SeedZero}).withDefaults().Seed; got != 0 {
		t.Errorf("testbed SeedZero resolved to %d", got)
	}
}

func TestSentinelsAreRequestable(t *testing.T) {
	env := TestbedEnv(RaspberryPi3B)
	base, err := Build(Options{Arch: "inception-v3", Env: env, DatasetSize: 500})
	if err != nil {
		t.Fatalf("Build default: %v", err)
	}
	hard, err := Build(Options{Arch: "inception-v3", Env: env, DatasetSize: 500, EasyFraction: EasyFractionZero})
	if err != nil {
		t.Fatalf("Build EasyFractionZero: %v", err)
	}
	// With no easy samples at all, fewer tasks finish at the first exit.
	if hard.Sigma()[0] >= base.Sigma()[0] {
		t.Errorf("no-easy workload first-exit rate %v not below default %v",
			hard.Sigma()[0], base.Sigma()[0])
	}
	if _, err := Build(Options{Arch: "inception-v3", Env: env, DatasetSize: 500, Seed: SeedZero}); err != nil {
		t.Fatalf("Build SeedZero: %v", err)
	}
}
