package leime

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"leime/internal/netem"
	"leime/internal/runtime"
)

// TestbedDevice configures one device of a local testbed run.
type TestbedDevice struct {
	// ID names the device; empty IDs are auto-numbered.
	ID string
	// Node is the hardware preset (e.g. leime.RaspberryPi3B).
	Node Node
	// ArrivalRate is the mean tasks per slot.
	ArrivalRate float64
	// UplinkMbps and UplinkLatency shape the device-edge WiFi path
	// (defaults: 10 Mbps, 20 ms).
	UplinkMbps    float64
	UplinkLatency time.Duration
	// Policy overrides the offloading policy (nil = LEIME's).
	Policy *Policy
}

// TestbedOptions configure RunLocalTestbed.
type TestbedOptions struct {
	// Devices is the fleet; at least one entry.
	Devices []TestbedDevice
	// Slots is the per-device horizon (default 40).
	Slots int
	// TimeScale compresses wall-clock time; 0 defaults to 0.02 (50x faster
	// than real time).
	TimeScale float64
	// Seed fixes randomness (default 1). Use SeedZero for the literal
	// seed 0.
	Seed int64
	// TaskDeadlineSec, when positive, gives every task a completion budget
	// in model seconds; the deadline travels with each RPC so the edge and
	// cloud shed work that can no longer finish in time. Zero disables
	// deadlines.
	TaskDeadlineSec float64
	// Retry caps re-sends of idempotent control-plane requests after
	// transport failures (zero value = library defaults).
	Retry RetryPolicy
	// Breaker tunes each device's per-edge circuit breaker; while it is
	// open the device degrades to device-only execution (zero value =
	// library defaults).
	Breaker BreakerConfig
	// EdgePolicy is the edge's control policy: backlog budget, deadline
	// admission, EDF queue ordering, static or adaptive batching, and
	// overload degradation. The zero value keeps the pinned degenerate
	// case — unbounded exact-FIFO queues, nothing adaptive.
	EdgePolicy PolicyOptions
}

// withDefaults resolves zero fields to their documented defaults and
// SeedZero to the literal seed 0.
func (o TestbedOptions) withDefaults() TestbedOptions {
	if o.Slots == 0 {
		o.Slots = 40
	}
	if o.TimeScale == 0 {
		o.TimeScale = 0.02
	}
	switch o.Seed {
	case 0:
		o.Seed = 1
	case SeedZero:
		o.Seed = 0
	}
	return o
}

// TestbedResult holds per-device outcomes of a local testbed run, in the
// order the devices were configured.
type TestbedResult struct {
	// Stats are the per-device completion statistics.
	Stats []*runtime.DeviceStats
}

// RunLocalTestbed spins up the full LEIME prototype in-process — a cloud
// server, an edge server and the configured devices, all speaking real TCP
// over loopback with netem-shaped links — runs the workload, and tears
// everything down. It is the programmatic form of the three
// cmd/leime-{cloud,edge,device} binaries.
func (s *System) RunLocalTestbed(opts TestbedOptions) (*TestbedResult, error) {
	if len(opts.Devices) == 0 {
		return nil, errors.New("leime: testbed needs at least one device")
	}
	opts = opts.withDefaults()
	scale := runtime.Scale(opts.TimeScale)
	params := s.Params()

	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       s.env.CloudFLOPS,
		Block3FLOPs: params.Mu[2],
		TimeScale:   scale,
	})
	if err != nil {
		return nil, fmt.Errorf("leime: testbed cloud: %w", err)
	}
	defer cloud.Close()

	edge, err := runtime.StartEdge(runtime.EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     s.env.EdgeFLOPS,
		Model:     params,
		CloudAddr: cloud.Addr(),
		CloudLink: netem.Link{
			BandwidthBps: s.env.EdgeCloud.BandwidthBps,
			Latency:      time.Duration(s.env.EdgeCloud.LatencySec * float64(time.Second)),
		},
		TimeScale: scale,
		Policy:    opts.EdgePolicy,
	})
	if err != nil {
		return nil, fmt.Errorf("leime: testbed edge: %w", err)
	}
	defer edge.Close()

	res := &TestbedResult{Stats: make([]*runtime.DeviceStats, len(opts.Devices))}
	errs := make([]error, len(opts.Devices))
	var wg sync.WaitGroup
	for i, d := range opts.Devices {
		if d.ID == "" {
			d.ID = fmt.Sprintf("device-%d", i+1)
		}
		if d.UplinkMbps == 0 {
			d.UplinkMbps = 10
		}
		if d.UplinkLatency == 0 {
			d.UplinkLatency = 20 * time.Millisecond
		}
		if d.ArrivalRate == 0 {
			d.ArrivalRate = 4
		}
		wg.Add(1)
		go func(i int, d TestbedDevice) {
			defer wg.Done()
			res.Stats[i], errs[i] = runtime.RunDevice(runtime.DeviceConfig{
				ID:       d.ID,
				FLOPS:    d.Node.FLOPS,
				Model:    params,
				EdgeAddr: edge.Addr(),
				Uplink: netem.Link{
					BandwidthBps: Mbps(d.UplinkMbps),
					Latency:      d.UplinkLatency,
				},
				ArrivalMean:     d.ArrivalRate,
				Policy:          d.Policy,
				TauSec:          1,
				V:               1e4,
				Slots:           opts.Slots,
				WarmupSlots:     opts.Slots / 10,
				TimeScale:       scale,
				AdaptEvery:      10,
				TaskDeadlineSec: opts.TaskDeadlineSec,
				Retry:           opts.Retry,
				Breaker:         opts.Breaker,
				Seed:            opts.Seed + int64(i)*97,
			})
		}(i, d)
	}
	wg.Wait()
	return res, errors.Join(errs...)
}
