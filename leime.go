// Package leime is a from-scratch reproduction of "Enabling Low Latency Edge
// Intelligence based on Multi-exit DNNs in the Wild" (ICDCS 2021): the LEIME
// system for low-latency DNN inference across a device–edge–cloud hierarchy.
//
// LEIME has two components, both implemented here:
//
//   - Exit setting (model level): given a chain DNN profile, pick the First,
//     Second and Third exits minimizing expected task completion time for a
//     concrete environment, with the paper's branch-and-bound solver.
//
//   - Online distributed offloading (computation level): per time slot, each
//     device picks the fraction of its tasks to launch on the edge, using a
//     Lyapunov drift-plus-penalty controller with a decentralized
//     cost-balancing solution and KKT edge-resource allocation.
//
// The package is a facade over the substrates in internal/: DNN profiles and
// an executing tensor engine, a calibrated exit-confidence model (the
// trained-network stand-in), two simulators (the paper's slot model and a
// per-task discrete-event pipeline), and a real-TCP testbed runtime with
// netem-style link shaping.
//
// # Quick start
//
//	sys, err := leime.Build(leime.Options{
//		Arch: "inception-v3",
//		Env:  leime.TestbedEnv(leime.RaspberryPi3B),
//	})
//	if err != nil { ... }
//	e1, e2, e3 := sys.Exits()        // the optimal exit setting
//	res, err := sys.SimulateTasks(leime.SimOptions{Devices: 1, ArrivalRate: 10, Slots: 200})
package leime

import (
	"fmt"
	"math"

	"leime/internal/cluster"
	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/exitsetting"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/runtime"
	"leime/internal/sim"
)

// Re-exported environment types.
type (
	// Env describes the wild-edge environment: device/edge/cloud
	// capabilities and the two network paths.
	Env = cluster.Env
	// Path is a network link (bandwidth, propagation latency).
	Path = cluster.Path
	// Node is a compute node with a FLOPS rating.
	Node = cluster.Node
	// ModelParams is the deployed ME-DNN as the offloading layer sees it.
	ModelParams = offload.ModelParams
	// Policy is a per-slot offloading rule.
	Policy = offload.Policy
	// Strategy is an exit-setting scheme.
	Strategy = exitsetting.Strategy
	// RetryPolicy caps how the testbed devices re-send idempotent requests
	// after transport failures (see TestbedOptions.Retry).
	RetryPolicy = rpc.RetryPolicy
	// BreakerConfig tunes the testbed devices' per-edge circuit breaker
	// (see TestbedOptions.Breaker).
	BreakerConfig = rpc.BreakerConfig
)

// Paper-calibrated hardware presets.
var (
	// RaspberryPi3B is the paper's weak end device.
	RaspberryPi3B = cluster.RaspberryPi3B
	// JetsonNano is the paper's strong end device (8.2x the Pi).
	JetsonNano = cluster.JetsonNano
	// EdgeDesktop is the i7-3770 edge server.
	EdgeDesktop = cluster.EdgeDesktop
	// CloudV100 is the V100-class cloud.
	CloudV100 = cluster.CloudV100
)

// TestbedEnv returns the paper's testbed environment for an end device.
func TestbedEnv(device Node) Env { return cluster.TestbedEnv(device) }

// Mbps converts megabits per second to bits per second.
func Mbps(v float64) float64 { return cluster.Mbps(v) }

// Architectures lists the supported DNN profiles, in the paper's evaluation
// order.
func Architectures() []string {
	out := make([]string, 0, 4)
	for _, p := range model.All() {
		out = append(out, p.Name)
	}
	return out
}

// Sentinels that make the literal zero settings requestable. A zero field
// in Options, SimOptions or TestbedOptions means "use the documented
// default", which would otherwise leave the actual zero values unreachable;
// spell those with the explicit sentinels instead.
const (
	// SeedZero requests the literal random seed 0. Seed: 0 selects the
	// default seed (1), not seed 0.
	SeedZero int64 = math.MinInt64
	// EasyFractionZero requests a calibration workload with no easy samples
	// at all. EasyFraction: 0 keeps the CIFAR-10-like default mixture.
	EasyFractionZero float64 = -1
)

// Options configure Build.
type Options struct {
	// Arch is one of Architectures() (e.g. "inception-v3").
	Arch string
	// Env is the target environment.
	Env Env
	// DatasetSize is the calibration-set size; 0 defaults to 1000.
	DatasetSize int
	// EasyFraction sets the workload complexity (the exit-rate knob of the
	// paper's Fig. 3(b)); 0 keeps the CIFAR-10-like default share of easy
	// samples (0.55). Use EasyFractionZero for a workload with none.
	EasyFraction float64
	// AccuracyLossBudget bounds per-exit accuracy loss during threshold
	// calibration; 0 uses the architecture's paper-calibrated default.
	AccuracyLossBudget float64
	// Seed makes calibration deterministic; 0 defaults to 1. Use SeedZero
	// for the literal seed 0.
	Seed int64
}

// withDefaults resolves zero fields to their documented defaults and the
// explicit sentinels to the literal values they stand for. Arch must already
// be validated: the loss-budget default is per architecture.
func (o Options) withDefaults() Options {
	if o.DatasetSize == 0 {
		o.DatasetSize = 1000
	}
	switch o.Seed {
	case 0:
		o.Seed = 1
	case SeedZero:
		o.Seed = 0
	}
	switch o.EasyFraction {
	case 0:
		o.EasyFraction = dataset.CIFAR10Like.EasyFrac
	case EasyFractionZero:
		o.EasyFraction = 0
	}
	if o.AccuracyLossBudget == 0 {
		o.AccuracyLossBudget = confidence.DefaultLossBudget(o.Arch)
	}
	return o
}

// System is a built LEIME deployment: the profile, the calibrated exit
// behaviour, the optimal exit setting and the resulting partition.
type System struct {
	profile *model.Profile
	conf    *confidence.Model
	thresh  confidence.Thresholds
	sigma   []float64
	setting exitsetting.Setting
	mednn   *model.MEDNN
	env     Env
}

// Build constructs a LEIME system: it generates a calibration workload,
// calibrates per-exit confidence thresholds, derives exit rates, solves P0
// with the branch-and-bound algorithm, and partitions the ME-DNN.
func Build(opts Options) (*System, error) {
	p, err := model.ByName(opts.Arch)
	if err != nil {
		return nil, err
	}
	if err := opts.Env.Validate(); err != nil {
		return nil, fmt.Errorf("leime: %w", err)
	}
	opts = opts.withDefaults()
	mix := dataset.CIFAR10Like.WithEasyFrac(opts.EasyFraction)
	ds, err := dataset.Generate(mix, opts.DatasetSize, opts.Seed)
	if err != nil {
		return nil, err
	}
	conf, err := confidence.New(p, confidence.DefaultParams(p.Name), opts.Seed)
	if err != nil {
		return nil, err
	}
	thresh, sigma := conf.Calibrate(ds, opts.AccuracyLossBudget)

	in, err := exitsetting.NewInstance(p, sigma, opts.Env)
	if err != nil {
		return nil, err
	}
	setting := in.Solve()
	if setting.E1 < 1 {
		return nil, fmt.Errorf("leime: no feasible exit setting for %s", p.Name)
	}
	mednn, err := model.NewMEDNN(p, setting.E1, setting.E2, sigma)
	if err != nil {
		return nil, err
	}
	return &System{
		profile: p,
		conf:    conf,
		thresh:  thresh,
		sigma:   sigma,
		setting: setting,
		mednn:   mednn,
		env:     opts.Env,
	}, nil
}

// Arch returns the architecture name.
func (s *System) Arch() string { return s.profile.Name }

// Exits returns the chosen (First, Second, Third) exits, 1-based.
func (s *System) Exits() (e1, e2, e3 int) {
	return s.setting.E1, s.setting.E2, s.setting.E3
}

// ExpectedTCT returns the expected per-task completion time T(E) of the
// chosen setting under the build environment, in seconds (no queueing).
func (s *System) ExpectedTCT() float64 { return s.setting.Cost }

// Sigma returns the calibrated cumulative exit-rate vector over all
// candidate exits. The returned slice is a copy.
func (s *System) Sigma() []float64 {
	out := make([]float64, len(s.sigma))
	copy(out, s.sigma)
	return out
}

// Params returns the deployed ME-DNN parameters the offloading layer and the
// simulators consume.
func (s *System) Params() ModelParams {
	return ModelParams{
		Mu:    s.mednn.BlockFLOPs(),
		D:     s.mednn.DataBytes(),
		Sigma: s.mednn.Sigma,
	}
}

// MEDNN returns the deployed multi-exit network in full per-layer detail
// (block FLOPs, activation sizes, cumulative exit rates). The partition
// solver consumes it to price chain cuts; the returned value is shared, so
// callers must treat it as read-only.
func (s *System) MEDNN() *model.MEDNN { return s.mednn }

// Env returns the environment the system was built for.
func (s *System) Env() Env { return s.env }

// StrategyCost is one exit-setting scheme's expected completion time under
// the system's environment and workload.
type StrategyCost struct {
	// Name is the scheme name.
	Name string
	// E1, E2 are the exits it picks.
	E1, E2 int
	// TCT is the expected per-task completion time in seconds.
	TCT float64
}

// CompareStrategies evaluates LEIME against every baseline exit-setting
// scheme under the system's environment, in the paper's presentation order.
func (s *System) CompareStrategies() ([]StrategyCost, error) {
	in, err := exitsetting.NewInstance(s.profile, s.sigma, s.env)
	if err != nil {
		return nil, err
	}
	all := append([]exitsetting.Strategy{exitsetting.LEIME()}, exitsetting.Baselines()...)
	out := make([]StrategyCost, 0, len(all))
	for _, st := range all {
		got, err := exitsetting.EvalStrategy(in, st)
		if err != nil {
			return nil, err
		}
		out = append(out, StrategyCost{Name: st.Name, E1: got.E1, E2: got.E2, TCT: got.Cost})
	}
	return out, nil
}

// JointPlan is the outcome of co-optimizing exits and offloading ratio.
type JointPlan struct {
	// E1, E2, E3 are the jointly optimal exits.
	E1, E2, E3 int
	// Ratio is the jointly optimal steady-state offloading ratio.
	Ratio float64
	// TCT is the expected per-task completion time at the joint optimum.
	TCT float64
	// SequentialTCT is the expected completion time of the paper's
	// sequential pipeline (P0 first, then the best ratio for those exits)
	// under the same cost model; it upper-bounds TCT.
	SequentialTCT float64
}

// SolveJoint co-optimizes the exit setting and the steady-state offloading
// ratio — the ext-joint extension beyond the paper's sequential pipeline.
// See EXPERIMENTS.md for when it helps (up to 22% in high-offloading
// regimes).
func (s *System) SolveJoint() (JointPlan, error) {
	in, err := exitsetting.NewInstance(s.profile, s.sigma, s.env)
	if err != nil {
		return JointPlan{}, err
	}
	joint := in.SolveJoint()
	seq := in.SolveSequential()
	return JointPlan{
		E1: joint.E1, E2: joint.E2, E3: joint.E3,
		Ratio:         joint.Ratio,
		TCT:           joint.Cost,
		SequentialTCT: seq.Cost,
	}, nil
}

// SweepPoint is one point of a sensitivity sweep: the swept value's label
// and the optimal exits there.
type SweepPoint struct {
	// Label names the swept value (e.g. "8Mbps").
	Label string
	// E1, E2 are the optimal exits at this point.
	E1, E2 int
	// TCT is the expected completion time of the optimum, in seconds.
	TCT float64
}

// SweepBandwidth re-solves the exit setting across device–edge bandwidths
// (in Mbps), holding everything else fixed — the programmatic form of the
// paper's Fig. 2 sensitivity study.
func (s *System) SweepBandwidth(mbps []float64) ([]SweepPoint, error) {
	pts, err := exitsetting.BandwidthSweep(s.profile, s.sigma, s.env, mbps)
	if err != nil {
		return nil, err
	}
	return toSweepPoints(pts), nil
}

// SweepEdgeLoad re-solves the exit setting across edge shares in (0, 1].
func (s *System) SweepEdgeLoad(shares []float64) ([]SweepPoint, error) {
	pts, err := exitsetting.EdgeLoadSweep(s.profile, s.sigma, s.env, shares)
	if err != nil {
		return nil, err
	}
	return toSweepPoints(pts), nil
}

func toSweepPoints(pts []exitsetting.SweepPoint) []SweepPoint {
	out := make([]SweepPoint, 0, len(pts))
	for _, pt := range pts {
		out = append(out, SweepPoint{Label: pt.Label, E1: pt.Setting.E1, E2: pt.Setting.E2, TCT: pt.Setting.Cost})
	}
	return out
}

// The edge control plane, re-exported as the facade's policy surface. One
// PolicyOptions value drives both substrates — the testbed executors
// (TestbedOptions.EdgePolicy) and the event simulator's edge shares
// (SimOptions.EdgePolicy) — so a simulated capacity estimate and a testbed
// measurement describe the same policy. The zero value is the pinned
// degenerate case: unbounded exact-FIFO queues, no batching, no admission,
// no degradation.
type (
	// PolicyOptions is the edge control policy: backlog budget, deadline
	// admission, EDF queue ordering, static or adaptive batching, and
	// overload degradation.
	PolicyOptions = runtime.ControlPolicy
	// BatchConfig configures the batch window inside PolicyOptions.
	BatchConfig = runtime.BatchConfig
	// DegradeOptions configures overload degradation inside PolicyOptions.
	DegradeOptions = runtime.DegradePolicy
)

// simPolicy converts the policy for the event simulator, which mirrors the
// control plane minus EDF and degradation (see sim.Policy for why those two
// have no analytic counterpart).
func simPolicy(p PolicyOptions) sim.Policy {
	return sim.Policy{
		MaxBacklogSec:     p.MaxBacklogSec,
		DeadlineAdmission: p.DeadlineAdmission,
		Batch: sim.Batch{
			MaxSize:     p.Batch.MaxSize,
			MaxDelaySec: p.Batch.MaxDelaySec,
			Marginal:    p.Batch.Marginal,
		},
		AdaptiveBatch: p.AdaptiveBatch,
		TargetP99Sec:  p.TargetP99Sec,
	}
}

// SimOptions configure the built-in simulations.
type SimOptions struct {
	// Devices is the number of (homogeneous) end devices; 0 defaults to 1.
	Devices int
	// DeviceFLOPS overrides the per-device capability; 0 uses the build
	// environment's device rating.
	DeviceFLOPS float64
	// ArrivalRate is the mean tasks per slot per device; 0 defaults to 5.
	ArrivalRate float64
	// Policy overrides the offloading policy (nil = LEIME's Lyapunov rule).
	Policy *Policy
	// Slots is the horizon; 0 defaults to 300.
	Slots int
	// Seed drives stochastic arrivals; 0 defaults to 1. Use SeedZero for
	// the literal seed 0.
	Seed int64
	// EdgePolicy is the control policy on the simulated edge shares. Only
	// SimulateTasks honours it — the slot model has no per-task service to
	// control. EDF and degradation have no simulator counterpart and are
	// ignored here (sim.Policy documents why).
	EdgePolicy PolicyOptions
}

// withDefaults resolves zero fields to their documented defaults (the
// device rating comes from the build environment) and SeedZero to the
// literal seed 0.
func (o SimOptions) withDefaults(env Env) SimOptions {
	if o.Devices == 0 {
		o.Devices = 1
	}
	if o.DeviceFLOPS == 0 {
		o.DeviceFLOPS = env.DeviceFLOPS
	}
	if o.ArrivalRate == 0 {
		o.ArrivalRate = 5
	}
	if o.Slots == 0 {
		o.Slots = 300
	}
	switch o.Seed {
	case 0:
		o.Seed = 1
	case SeedZero:
		o.Seed = 0
	}
	return o
}

func (s *System) deviceSpecs(opts SimOptions) []sim.DeviceSpec {
	devs := make([]sim.DeviceSpec, opts.Devices)
	for i := range devs {
		devs[i] = sim.DeviceSpec{
			Device: offload.Device{
				FLOPS:        opts.DeviceFLOPS,
				BandwidthBps: s.env.DeviceEdge.BandwidthBps,
				LatencySec:   s.env.DeviceEdge.LatencySec,
				ArrivalMean:  opts.ArrivalRate,
			},
			Policy: opts.Policy,
		}
	}
	return devs
}

// SimulateSlots runs the paper's time-slotted system model with the built
// ME-DNN and returns per-slot and aggregate completion-time statistics.
func (s *System) SimulateSlots(opts SimOptions) (*sim.SlotResult, error) {
	opts = opts.withDefaults(s.env)
	return sim.RunSlots(sim.SlotConfig{
		Model:       s.Params(),
		Devices:     s.deviceSpecs(opts),
		EdgeFLOPS:   s.env.EdgeFLOPS,
		CloudFLOPS:  s.env.CloudFLOPS,
		EdgeCloud:   s.env.EdgeCloud,
		TauSec:      1,
		V:           1e4,
		Slots:       opts.Slots,
		WarmupSlots: opts.Slots / 10,
		Seed:        opts.Seed,
	})
}

// SimulateTasks runs the per-task discrete-event pipeline simulation with
// the built ME-DNN.
func (s *System) SimulateTasks(opts SimOptions) (*sim.EventResult, error) {
	opts = opts.withDefaults(s.env)
	return sim.RunEvents(sim.EventConfig{
		Model:       s.Params(),
		Devices:     s.deviceSpecs(opts),
		EdgeFLOPS:   s.env.EdgeFLOPS,
		CloudFLOPS:  s.env.CloudFLOPS,
		EdgeCloud:   s.env.EdgeCloud,
		TauSec:      1,
		V:           1e4,
		Slots:       opts.Slots,
		WarmupSlots: opts.Slots / 10,
		Seed:        opts.Seed,
		EdgePolicy:  simPolicy(opts.EdgePolicy),
	})
}

// Offloading policies, re-exported for SimOptions.Policy and the testbed.
var (
	// Lyapunov is LEIME's online offloading policy.
	Lyapunov = offload.Lyapunov
	// DeviceOnly launches everything locally.
	DeviceOnly = offload.DeviceOnly
	// EdgeOnly launches everything at the edge.
	EdgeOnly = offload.EdgeOnly
	// CapabilityBased splits by the static capability ratio.
	CapabilityBased = offload.CapabilityBased
	// FixedRatio offloads a constant fraction.
	FixedRatio = offload.FixedRatio
)
