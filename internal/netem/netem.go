// Package netem emulates wide-area network conditions on real connections:
// token-bucket bandwidth shaping, propagation delay and jitter. It is the
// reproduction's equivalent of the COMCAST tool the paper uses to control
// bandwidth and latency between testbed tiers.
package netem

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Link describes emulated path characteristics.
type Link struct {
	// BandwidthBps is the link bandwidth in bits per second; zero means
	// unshaped.
	BandwidthBps float64
	// Latency is the one-way propagation delay added to every message.
	Latency time.Duration
	// Jitter is the maximum extra random delay (uniform in [0, Jitter]).
	Jitter time.Duration
}

// Validate reports whether the link is usable.
func (l Link) Validate() error {
	if l.BandwidthBps < 0 {
		return fmt.Errorf("netem: bandwidth %v must be non-negative", l.BandwidthBps)
	}
	if l.Latency < 0 || l.Jitter < 0 {
		return fmt.Errorf("netem: latency %v and jitter %v must be non-negative", l.Latency, l.Jitter)
	}
	return nil
}

// SerializationDelay returns the time the link needs to clock out the given
// number of bytes (zero for an unshaped link).
func (l Link) SerializationDelay(bytes int) time.Duration {
	if l.BandwidthBps <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) * 8 / l.BandwidthBps * float64(time.Second))
}

// TransferDelay returns serialization plus propagation delay for one message
// (excluding jitter).
func (l Link) TransferDelay(bytes int) time.Duration {
	return l.SerializationDelay(bytes) + l.Latency
}

// Shaper paces message sends over a shared link: concurrent senders contend
// for the serialization capacity (a token-bucket clock), and every message
// additionally experiences propagation delay and jitter. Its zero value is
// an unshaped, zero-latency link.
type Shaper struct {
	link Link

	mu       sync.Mutex
	nextFree time.Time
	rng      *rand.Rand
}

// NewShaper builds a shaper for the link.
func NewShaper(link Link, seed int64) (*Shaper, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	return &Shaper{link: link, rng: rand.New(rand.NewSource(seed))}, nil
}

// Link returns the shaper's currently configured link.
func (s *Shaper) Link() Link {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.link
}

// SetLink replaces the link conditions at runtime (a bandwidth/latency
// change on a live connection — the wild-edge churn the paper motivates).
// Messages already admitted keep their old pacing; later messages see the
// new conditions.
func (s *Shaper) SetLink(link Link) error {
	if err := link.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.link = link
	s.mu.Unlock()
	return nil
}

// Acquire blocks the caller for as long as sending a message of the given
// size over the emulated link would take, and returns the time it slept.
// Serialization contends with other senders; propagation and jitter do not.
func (s *Shaper) Acquire(bytes int) time.Duration {
	now := time.Now()

	s.mu.Lock()
	start := now
	if s.nextFree.After(start) {
		start = s.nextFree
	}
	serialized := start.Add(s.link.SerializationDelay(bytes))
	s.nextFree = serialized
	var jitter time.Duration
	if s.link.Jitter > 0 {
		jitter = time.Duration(s.rng.Int63n(int64(s.link.Jitter) + 1))
	}
	s.mu.Unlock()

	deliver := serialized.Add(s.link.Latency + jitter)
	d := deliver.Sub(now)
	if d > 0 {
		time.Sleep(d)
	}
	return d
}

// Conn wraps a real connection so every Write first acquires the emulated
// link. Callers should issue one Write per application message for the
// latency semantics to be faithful (the rpc package does).
func (s *Shaper) Conn(c net.Conn) net.Conn {
	return &shapedConn{Conn: c, shaper: s}
}

type shapedConn struct {
	net.Conn
	shaper *Shaper
}

// Write paces the payload through the emulated link before writing it to
// the underlying connection.
func (c *shapedConn) Write(p []byte) (int, error) {
	c.shaper.Acquire(len(p))
	return c.Conn.Write(p)
}
