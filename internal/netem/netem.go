// Package netem emulates wide-area network conditions on real connections:
// token-bucket bandwidth shaping, propagation delay and jitter, plus
// injectable faults (link blackouts, packet-loss-driven connection resets,
// latency spikes) so fault-tolerance behaviour is testable deterministically.
// It is the reproduction's equivalent of the COMCAST tool the paper uses to
// control bandwidth and latency between testbed tiers.
package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected marks a send that failed because of an injected fault (a
// blackout window or a loss-driven reset). The rpc layer classifies it as a
// transport failure, exactly like a real connection loss.
var ErrInjected = errors.New("netem: injected fault")

// Link describes emulated path characteristics.
type Link struct {
	// BandwidthBps is the link bandwidth in bits per second; zero means
	// unshaped.
	BandwidthBps float64
	// Latency is the one-way propagation delay added to every message.
	Latency time.Duration
	// Jitter is the maximum extra random delay (uniform in [0, Jitter]).
	Jitter time.Duration
}

// Validate reports whether the link is usable.
func (l Link) Validate() error {
	if l.BandwidthBps < 0 {
		return fmt.Errorf("netem: bandwidth %v must be non-negative", l.BandwidthBps)
	}
	if l.Latency < 0 || l.Jitter < 0 {
		return fmt.Errorf("netem: latency %v and jitter %v must be non-negative", l.Latency, l.Jitter)
	}
	return nil
}

// SerializationDelay returns the time the link needs to clock out the given
// number of bytes (zero for an unshaped link).
func (l Link) SerializationDelay(bytes int) time.Duration {
	if l.BandwidthBps <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) * 8 / l.BandwidthBps * float64(time.Second))
}

// TransferDelay returns serialization plus propagation delay for one message
// (excluding jitter).
func (l Link) TransferDelay(bytes int) time.Duration {
	return l.SerializationDelay(bytes) + l.Latency
}

// Fault describes injectable link failures, applied per message on top of
// the configured link. The zero Fault is a healthy link.
type Fault struct {
	// Blackout fails every send while set (the link is down); the wrapped
	// connection is reset, as a real outage would reset TCP flows.
	Blackout bool
	// LossProb drops each message independently with this probability in
	// [0, 1]; a drop resets the wrapped connection (heavy packet loss kills
	// TCP flows rather than delivering half a frame).
	LossProb float64
	// SpikeLatency is extra one-way delay added to every message while set
	// (a congestion or route-flap spike).
	SpikeLatency time.Duration
}

// Validate reports whether the fault description is usable.
func (f Fault) Validate() error {
	if f.LossProb < 0 || f.LossProb > 1 {
		return fmt.Errorf("netem: loss probability %v must be in [0, 1]", f.LossProb)
	}
	if f.SpikeLatency < 0 {
		return fmt.Errorf("netem: spike latency %v must be non-negative", f.SpikeLatency)
	}
	return nil
}

// Shaper paces message sends over a shared link: concurrent senders contend
// for the serialization capacity (a token-bucket clock), and every message
// additionally experiences propagation delay and jitter. An injected Fault
// can black the link out, reset flows probabilistically or spike latency.
// Its zero value is an unshaped, zero-latency, healthy link.
type Shaper struct {
	link Link

	mu       sync.Mutex
	fault    Fault
	nextFree time.Time
	rng      *rand.Rand
}

// NewShaper builds a shaper for the link.
func NewShaper(link Link, seed int64) (*Shaper, error) {
	if err := link.Validate(); err != nil {
		return nil, err
	}
	return &Shaper{link: link, rng: rand.New(rand.NewSource(seed))}, nil
}

// Link returns the shaper's currently configured link.
func (s *Shaper) Link() Link {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.link
}

// SetLink replaces the link conditions at runtime (a bandwidth/latency
// change on a live connection — the wild-edge churn the paper motivates).
// Messages already admitted keep their old pacing; later messages see the
// new conditions.
func (s *Shaper) SetLink(link Link) error {
	if err := link.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.link = link
	s.mu.Unlock()
	return nil
}

// SetFault replaces the injected fault state at runtime: tests and chaos
// harnesses flip blackouts, loss and latency spikes on a live connection.
func (s *Shaper) SetFault(f Fault) error {
	if err := f.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.fault = f
	s.mu.Unlock()
	return nil
}

// Fault returns the currently injected fault state.
func (s *Shaper) Fault() Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fault
}

// inject decides one message's fate under the current fault: a non-nil
// error means the message is lost and the flow must reset. Spike latency is
// applied separately, inside Acquire.
func (s *Shaper) inject() error {
	s.mu.Lock()
	f := s.fault
	var roll float64
	if f.LossProb > 0 {
		roll = s.rng.Float64()
	}
	s.mu.Unlock()
	if f.Blackout {
		return fmt.Errorf("%w: link blackout", ErrInjected)
	}
	if f.LossProb > 0 && roll < f.LossProb {
		return fmt.Errorf("%w: packet loss (p=%v)", ErrInjected, f.LossProb)
	}
	return nil
}

// Acquire blocks the caller for as long as sending a message of the given
// size over the emulated link would take, and returns the time it slept.
// Serialization contends with other senders; propagation, jitter and spike
// delay do not.
func (s *Shaper) Acquire(bytes int) time.Duration {
	now := time.Now()

	s.mu.Lock()
	start := now
	if s.nextFree.After(start) {
		start = s.nextFree
	}
	serialized := start.Add(s.link.SerializationDelay(bytes))
	s.nextFree = serialized
	var jitter time.Duration
	if s.link.Jitter > 0 {
		jitter = time.Duration(s.rng.Int63n(int64(s.link.Jitter) + 1))
	}
	spike := s.fault.SpikeLatency
	s.mu.Unlock()

	deliver := serialized.Add(s.link.Latency + jitter + spike)
	d := deliver.Sub(now)
	if d > 0 {
		time.Sleep(d)
	}
	return d
}

// Conn wraps a real connection so every Write first acquires the emulated
// link. Callers should issue one Write per application message for the
// latency semantics to be faithful (the rpc package does).
func (s *Shaper) Conn(c net.Conn) net.Conn {
	return &shapedConn{Conn: c, shaper: s}
}

type shapedConn struct {
	net.Conn
	shaper *Shaper
}

// Write paces the payload through the emulated link before writing it to
// the underlying connection. An injected fault (blackout or loss) fails the
// write and resets the connection — both directions die, as a real link
// outage would kill the TCP flow.
func (c *shapedConn) Write(p []byte) (int, error) {
	if err := c.shaper.inject(); err != nil {
		_ = c.Conn.Close()
		return 0, err
	}
	c.shaper.Acquire(len(p))
	return c.Conn.Write(p)
}
