package netem

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

func TestLinkValidate(t *testing.T) {
	if err := (Link{BandwidthBps: 1e6, Latency: time.Millisecond}).Validate(); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	bad := []Link{
		{BandwidthBps: -1},
		{Latency: -time.Second},
		{Jitter: -time.Second},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSerializationDelay(t *testing.T) {
	l := Link{BandwidthBps: 8e6} // 1 MB/s
	if got, want := l.SerializationDelay(1_000_000), time.Second; got != want {
		t.Errorf("SerializationDelay = %v, want %v", got, want)
	}
	if got := (Link{}).SerializationDelay(1000); got != 0 {
		t.Errorf("unshaped link delay = %v, want 0", got)
	}
	if got := l.SerializationDelay(0); got != 0 {
		t.Errorf("zero bytes delay = %v, want 0", got)
	}
}

func TestTransferDelayIncludesLatency(t *testing.T) {
	l := Link{BandwidthBps: 8e6, Latency: 50 * time.Millisecond}
	want := 100*time.Millisecond + 50*time.Millisecond
	if got := l.TransferDelay(100_000); got != want {
		t.Errorf("TransferDelay = %v, want %v", got, want)
	}
}

func TestShaperPacesThroughput(t *testing.T) {
	s, err := NewShaper(Link{BandwidthBps: 8e6}, 1) // 1 MB/s
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	start := time.Now()
	const msgs, size = 10, 20_000 // 200 KB total => ~200 ms
	for i := 0; i < msgs; i++ {
		s.Acquire(size)
	}
	elapsed := time.Since(start)
	want := 200 * time.Millisecond
	if elapsed < want*8/10 {
		t.Errorf("shaper too fast: %v for %v of traffic", elapsed, want)
	}
	if elapsed > want*3 {
		t.Errorf("shaper too slow: %v for %v of traffic", elapsed, want)
	}
}

func TestShaperAddsLatency(t *testing.T) {
	s, err := NewShaper(Link{Latency: 30 * time.Millisecond}, 1)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	start := time.Now()
	s.Acquire(10)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestShaperConcurrentSendersShareBandwidth(t *testing.T) {
	s, err := NewShaper(Link{BandwidthBps: 8e6}, 1) // 1 MB/s
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				s.Acquire(10_000) // 4*5*10 KB = 200 KB total
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 160*time.Millisecond {
		t.Errorf("concurrent senders exceeded link capacity: 200KB in %v", elapsed)
	}
}

func TestShapedConnWrites(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	s, err := NewShaper(Link{Latency: 20 * time.Millisecond}, 1)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	shaped := s.Conn(a)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	start := time.Now()
	if _, err := shaped.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("shaped write returned too fast: %v", elapsed)
	}
	if string(<-got) != "hello" {
		t.Error("payload corrupted by shaping")
	}
}

func TestNewShaperRejectsBadLink(t *testing.T) {
	if _, err := NewShaper(Link{BandwidthBps: -5}, 1); err == nil {
		t.Error("invalid link accepted")
	}
}

func TestSetLinkTakesEffect(t *testing.T) {
	s, err := NewShaper(Link{Latency: 50 * time.Millisecond}, 1)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	start := time.Now()
	s.Acquire(10)
	slow := time.Since(start)
	if err := s.SetLink(Link{Latency: time.Millisecond}); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	start = time.Now()
	s.Acquire(10)
	fast := time.Since(start)
	if fast >= slow {
		t.Errorf("latency change not applied: %v >= %v", fast, slow)
	}
	if got := s.Link().Latency; got != time.Millisecond {
		t.Errorf("Link() = %v after SetLink", got)
	}
	if err := s.SetLink(Link{BandwidthBps: -1}); err == nil {
		t.Error("invalid link accepted by SetLink")
	}
}

func TestSetLinkConcurrentWithAcquire(t *testing.T) {
	s, err := NewShaper(Link{BandwidthBps: 1e9, Latency: time.Millisecond}, 1)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s.Acquire(100)
		}
	}()
	for i := 0; i < 50; i++ {
		_ = s.SetLink(Link{BandwidthBps: 1e9, Latency: time.Duration(i+1) * time.Microsecond})
	}
	<-done
}

func TestFaultValidate(t *testing.T) {
	if err := (Fault{}).Validate(); err != nil {
		t.Errorf("zero fault rejected: %v", err)
	}
	if err := (Fault{LossProb: 1.5}).Validate(); err == nil {
		t.Error("loss probability above 1 accepted")
	}
	if err := (Fault{LossProb: -0.1}).Validate(); err == nil {
		t.Error("negative loss probability accepted")
	}
	if err := (Fault{SpikeLatency: -time.Second}).Validate(); err == nil {
		t.Error("negative spike latency accepted")
	}
}

func TestBlackoutResetsConnection(t *testing.T) {
	s, err := NewShaper(Link{}, 1)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	a, b := net.Pipe()
	defer b.Close()
	shaped := s.Conn(a)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := shaped.Write([]byte("ok")); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
	if err := s.SetFault(Fault{Blackout: true}); err != nil {
		t.Fatalf("SetFault: %v", err)
	}
	if _, err := shaped.Write([]byte("lost")); !errors.Is(err, ErrInjected) {
		t.Fatalf("blackout write = %v, want ErrInjected", err)
	}
	// The reset kills the underlying connection in both directions.
	if _, err := a.Write([]byte("dead")); err == nil {
		t.Error("underlying connection survived the blackout reset")
	}
	// Clearing the fault restores future flows (on new connections).
	if err := s.SetFault(Fault{}); err != nil {
		t.Fatalf("clear fault: %v", err)
	}
	if got := s.Fault(); got != (Fault{}) {
		t.Errorf("Fault() = %+v after clear", got)
	}
}

func TestLossProbabilityResetsEventually(t *testing.T) {
	s, err := NewShaper(Link{}, 7)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	if err := s.SetFault(Fault{LossProb: 0.5}); err != nil {
		t.Fatalf("SetFault: %v", err)
	}
	// With p=0.5 the chance of 64 straight deliveries is ~5e-20.
	sawLoss := false
	for i := 0; i < 64 && !sawLoss; i++ {
		a, b := net.Pipe()
		go func() {
			buf := make([]byte, 16)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		shaped := s.Conn(a)
		if _, err := shaped.Write([]byte("x")); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("loss produced %v, want ErrInjected", err)
			}
			sawLoss = true
		}
		a.Close()
		b.Close()
	}
	if !sawLoss {
		t.Error("no loss observed in 64 sends at p=0.5")
	}
}

func TestSpikeLatencyDelaysDelivery(t *testing.T) {
	s, err := NewShaper(Link{}, 1)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	base := s.Acquire(10)
	if err := s.SetFault(Fault{SpikeLatency: 50 * time.Millisecond}); err != nil {
		t.Fatalf("SetFault: %v", err)
	}
	spiked := s.Acquire(10)
	if spiked-base < 40*time.Millisecond {
		t.Errorf("spike not applied: base %v, spiked %v", base, spiked)
	}
	if err := s.SetFault(Fault{}); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if again := s.Acquire(10); again > 20*time.Millisecond {
		t.Errorf("spike persisted after clear: %v", again)
	}
}

func TestSetFaultRejectsInvalid(t *testing.T) {
	s, err := NewShaper(Link{}, 1)
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	if err := s.SetFault(Fault{LossProb: 2}); err == nil {
		t.Error("invalid fault accepted")
	}
}
