// Package partition computes min-latency chain cuts of a profiled DNN
// across an ordered set of workers — the arbitrary-layer generalization of
// the paper's exit-boundary split. The paper deploys block 1 on the device
// and everything else on one edge, so a model that exceeds any single
// node's budget is unservable; joint-partitioning work (Ye et al.,
// arXiv:2310.12937) and collaborative inference with early exits (Xie et
// al., arXiv:2412.08284) instead cut the layer chain wherever the
// compute/transfer trade-off is best. The per-layer profiles this
// reproduction already carries (mu_l FLOPs and d_l intermediate-tensor
// bytes, with O(1) prefix sums) are exactly the partitioner's input.
//
// The solver is a dynamic program over cut points. Early exits make the
// objective probabilistic, but separable: whether a task is still running
// at layer l depends only on the exit indices, never on where the chain is
// cut, so the expected end-to-end latency of a cut decomposes into
// survivor-weighted prefix sums and the DP stays O(workers * m^2). The
// same weights price each hop: a task crossing the cut after layer k does
// so with probability survivor(k+1), carrying d_k bytes.
package partition

import (
	"errors"
	"fmt"
	"math"

	"leime/internal/model"
)

// ErrInfeasible reports that no cut satisfies the constraints: a per-worker
// CapFLOPs that no assignment fits, or an arrival rate that saturates every
// possible bottleneck stage.
var ErrInfeasible = errors.New("partition: no feasible cut")

// maxRho is the utilization ceiling for the queueing term: a stage pushed
// past it is treated as saturated (infeasible) rather than letting the
// M/M/1 wait blow up to a numerically meaningless value.
const maxRho = 0.999

// Worker is one node of the execution chain, in forwarding order.
type Worker struct {
	// FLOPS is the node's compute rate (operations per second).
	FLOPS float64
	// CapFLOPs, when positive, bounds the per-task operation count the
	// node can host (backbone plus exit classifiers of its layer range) —
	// the memory/model-size proxy that makes "model too big for any one
	// node" expressible. Zero means unlimited.
	CapFLOPs float64
}

// Hop is one network link of the chain. Hops[0] is the ingress link from
// the task source (the device) to Workers[0]; Hops[j] connects
// Workers[j-1] to Workers[j].
type Hop struct {
	// BandwidthBps is the link bandwidth in bits per second; zero or
	// negative means infinitely fast serialization.
	BandwidthBps float64
	// LatencySec is the one-way propagation delay in seconds.
	LatencySec float64
}

// DelaySec returns the time the hop needs to move one activation of the
// given byte size: serialization plus propagation.
func (h Hop) DelaySec(bytes float64) float64 {
	d := h.LatencySec
	if h.BandwidthBps > 0 && bytes > 0 {
		d += bytes * 8 / h.BandwidthBps
	}
	return d
}

// Chain is an ordered set of workers and the links between them.
type Chain struct {
	Workers []Worker
	// Hops has one entry per worker: the link *into* it.
	Hops []Hop
}

// Validate reports whether the chain is well-formed.
func (c Chain) Validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("partition: chain has no workers")
	}
	if len(c.Hops) != len(c.Workers) {
		return fmt.Errorf("partition: %d workers need %d hops (one into each), got %d",
			len(c.Workers), len(c.Workers), len(c.Hops))
	}
	for i, w := range c.Workers {
		if w.FLOPS <= 0 {
			return fmt.Errorf("partition: worker %d FLOPS %v must be positive", i, w.FLOPS)
		}
		if w.CapFLOPs < 0 {
			return fmt.Errorf("partition: worker %d CapFLOPs %v must be non-negative", i, w.CapFLOPs)
		}
	}
	for i, h := range c.Hops {
		if h.BandwidthBps < 0 || h.LatencySec < 0 {
			return fmt.Errorf("partition: hop %d has negative bandwidth or latency", i)
		}
	}
	return nil
}

// Config is one partitioning problem.
type Config struct {
	// Net is the multi-exit network to cut: its profile supplies mu_l and
	// d_l, its exit indices and Sigma supply the survivor weights.
	Net *model.MEDNN
	// Chain is the ordered worker/link topology.
	Chain Chain
	// ArrivalRate, when positive, is the sustained task arrival rate
	// (tasks per second) the chain must carry. The solver then adds an
	// M/M/1-style expected queueing delay per stage and rejects cuts that
	// saturate a stage — this is what makes it prefer balanced cuts under
	// load over dumping every layer on the first worker. Zero optimizes
	// pure single-task latency. Links carry no queueing term: the
	// activation tensors are small next to the compute times, and the sim
	// model (which does queue links) is the cross-check.
	ArrivalRate float64
}

// Stage is one worker's share of a plan: the half-open layer range
// (Lo, Hi] it executes, with everything the runtime needs to install it.
type Stage struct {
	// Worker indexes Config.Chain.Workers.
	Worker int
	// Lo, Hi are 1-based cut points: the stage executes layers Lo+1..Hi.
	// Lo == Hi is a pass-through stage (transfer priced, zero compute).
	Lo, Hi int
	// FLOPs[c] is the operation count a task of exit class c+1 burns at
	// this stage: its backbone layers within the range plus every exit
	// classifier it passes or stops at there.
	FLOPs [3]float64
	// Hosted[c] reports that exit class c+1 completes at this stage (its
	// exit head lies within the range).
	Hosted [3]bool
	// Deepest is the deepest exit class (1..3) whose head lies at or
	// before Hi, or 0 if none: the best answer this stage can return if
	// the next hop is unreachable.
	Deepest int
	// InBytes and OutBytes are the activation sizes entering and leaving
	// the stage (d_Lo and d_Hi).
	InBytes, OutBytes float64
	// ServiceSec is the stage's expected service time per *original* task
	// (survivor-weighted); its reciprocal bounds the chain's sustainable
	// throughput.
	ServiceSec float64
	// WaitSec is the expected queueing delay per task arriving at this
	// stage under Config.ArrivalRate (zero when ArrivalRate is zero).
	WaitSec float64
	// Rho is the stage utilization under Config.ArrivalRate.
	Rho float64
}

// Plan is a solved (or evaluated) cut.
type Plan struct {
	// Cuts[j] is stage j's Hi; the last entry is always m. len(Cuts) may
	// be shorter than the chain when trailing workers would sit idle.
	Cuts []int
	// Stages carries one entry per used worker, in chain order.
	Stages []Stage
	// ExpectedLatencySec is the expected end-to-end task latency: ingress
	// hop, per-stage waits and compute, and inter-stage transfers, each
	// weighted by the probability the task reaches them.
	ExpectedLatencySec float64
	// ClassLatencySec[c] is the end-to-end latency of a task that exits
	// through class c+1.
	ClassLatencySec [3]float64
	// BottleneckSec is the largest per-stage expected service time per
	// original task; SustainableRate is its reciprocal — the arrival rate
	// beyond which the chain cannot be stable.
	BottleneckSec   float64
	SustainableRate float64
}

// weights holds the survivor-weighted and raw prefix tables for one net.
type weights struct {
	m    int
	surv []float64 // surv[k]: P(task crosses cut k), k in 0..m
	w    []float64 // w[i]: expected FLOPs of layers+classifiers up to i
	raw  []float64 // raw[i]: worst-case FLOPs up to i (capacity accounting)
	prob [3]float64
}

func buildWeights(n *model.MEDNN) weights {
	p := n.Profile
	m := p.NumExits()
	exits := [3]int{n.E1, n.E2, n.E3}
	sigma := n.Sigma
	ws := weights{
		m:    m,
		surv: make([]float64, m+1),
		w:    make([]float64, m+1),
		raw:  make([]float64, m+1),
		prob: [3]float64{sigma[0], sigma[1] - sigma[0], 1 - sigma[1]},
	}
	for k := 0; k <= m; k++ {
		s := 1.0
		for e, le := range exits {
			if le <= k {
				s = 1 - sigma[e]
			}
		}
		ws.surv[k] = s
	}
	for i := 1; i <= m; i++ {
		ws.w[i] = ws.w[i-1] + ws.surv[i-1]*p.LayerFLOPs(i)
		ws.raw[i] = ws.raw[i-1] + p.LayerFLOPs(i)
		for _, le := range exits {
			if le == i {
				// Every task reaching an exit head runs its classifier:
				// that is how confidence is measured before continuing.
				ws.w[i] += ws.surv[i-1] * p.ExitClassifierFLOPs(i)
				ws.raw[i] += p.ExitClassifierFLOPs(i)
			}
		}
	}
	return ws
}

// stageCost returns the expected latency contribution (per original task)
// of running layers (lo, hi] on worker j: survivor-weighted compute plus,
// under load, the queueing wait. Infeasible assignments return +Inf.
func (ws weights) stageCost(cfg Config, j, lo, hi int) float64 {
	wk := cfg.Chain.Workers[j]
	if wk.CapFLOPs > 0 && ws.raw[hi]-ws.raw[lo] > wk.CapFLOPs {
		return math.Inf(1)
	}
	work := ws.w[hi] - ws.w[lo]
	if work == 0 {
		return 0
	}
	svc := work / wk.FLOPS
	if cfg.ArrivalRate <= 0 {
		return svc
	}
	rho := cfg.ArrivalRate * svc
	if rho >= maxRho {
		return math.Inf(1)
	}
	// M/M/1 sojourn decomposition: per *arriving* task the mean service is
	// svc/surv[lo] and the expected wait is rho/(1-rho) of it; weighting
	// back by the arrival probability keeps the sum per original task.
	return svc + rho/(1-rho)*svc
}

// Solve computes the minimum-expected-latency cut of cfg.Net across
// cfg.Chain. Trailing workers that would receive no layers are trimmed
// from the returned plan.
func Solve(cfg Config) (*Plan, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	ws := buildWeights(cfg.Net)
	m, nw := ws.m, len(cfg.Chain.Workers)
	p := cfg.Net.Profile

	const unset = -1
	dp := make([][]float64, nw)
	from := make([][]int, nw)
	for j := range dp {
		dp[j] = make([]float64, m+1)
		from[j] = make([]int, m+1)
		for i := range dp[j] {
			dp[j][i] = math.Inf(1)
			from[j][i] = unset
		}
	}
	for i := 0; i <= m; i++ {
		ingress := cfg.Chain.Hops[0].DelaySec(p.DataBytes(0)) // every task crosses
		if c := ws.stageCost(cfg, 0, 0, i); !math.IsInf(c, 1) {
			dp[0][i] = ingress + c
		}
	}
	for j := 1; j < nw; j++ {
		for i := 0; i <= m; i++ {
			for k := 0; k <= i; k++ {
				prev := dp[j-1][k]
				if math.IsInf(prev, 1) {
					continue
				}
				hop := ws.surv[k] * cfg.Chain.Hops[j].DelaySec(p.DataBytes(k))
				c := ws.stageCost(cfg, j, k, i)
				if math.IsInf(c, 1) {
					continue
				}
				if total := prev + hop + c; total < dp[j][i] {
					dp[j][i] = total
					from[j][i] = k
				}
			}
		}
	}

	// The cheapest full assignment may use fewer workers than the chain
	// offers: a shorter prefix of workers avoids hop costs entirely, and
	// dp[j][m] with trailing pass-through stages only ever adds cost.
	bestJ, best := unset, math.Inf(1)
	for j := 0; j < nw; j++ {
		if dp[j][m] < best {
			best = dp[j][m]
			bestJ = j
		}
	}
	if bestJ == unset {
		return nil, fmt.Errorf("%w: every assignment violates a worker cap or saturates a stage (rate %.3g/s)",
			ErrInfeasible, cfg.ArrivalRate)
	}
	cuts := make([]int, bestJ+1)
	cuts[bestJ] = m
	for j := bestJ; j > 0; j-- {
		cuts[j-1] = from[j][cuts[j]]
	}
	plan, err := Evaluate(cfg, cuts)
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// SingleWorker evaluates the degenerate one-stage plan — every layer on
// the first worker of the chain — the paper-style single-edge offload
// baseline the pipelined plan is compared against.
func SingleWorker(cfg Config) (*Plan, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	cfg.Chain = Chain{Workers: cfg.Chain.Workers[:1], Hops: cfg.Chain.Hops[:1]}
	return Evaluate(cfg, []int{cfg.Net.Profile.NumExits()})
}

// Evaluate prices an explicit cut: cuts[j] is the Hi of stage j on worker
// j, ascending, ending at m. It returns the same Plan a Solve of that cut
// would, which is what the differential tests pin the sim and runtime
// against.
func Evaluate(cfg Config, cuts []int) (*Plan, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	ws := buildWeights(cfg.Net)
	p := cfg.Net.Profile
	m := ws.m
	if len(cuts) == 0 || len(cuts) > len(cfg.Chain.Workers) {
		return nil, fmt.Errorf("partition: %d cuts for %d workers", len(cuts), len(cfg.Chain.Workers))
	}
	if cuts[len(cuts)-1] != m {
		return nil, fmt.Errorf("partition: last cut %d must be m=%d", cuts[len(cuts)-1], m)
	}
	lo := 0
	for j, hi := range cuts {
		if hi < lo || hi > m {
			return nil, fmt.Errorf("partition: cut %d of stage %d out of order", hi, j)
		}
		lo = hi
	}

	exits := [3]int{cfg.Net.E1, cfg.Net.E2, cfg.Net.E3}
	plan := &Plan{Cuts: append([]int(nil), cuts...)}
	lo = 0
	for j, hi := range cuts {
		cost := ws.stageCost(cfg, j, lo, hi)
		if math.IsInf(cost, 1) {
			return nil, fmt.Errorf("%w: stage %d (layers %d..%d) violates worker %d's cap or saturates it",
				ErrInfeasible, j, lo+1, hi, j)
		}
		st := Stage{
			Worker:     j,
			Lo:         lo,
			Hi:         hi,
			InBytes:    p.DataBytes(lo),
			OutBytes:   p.DataBytes(hi),
			ServiceSec: (ws.w[hi] - ws.w[lo]) / cfg.Chain.Workers[j].FLOPS,
		}
		if cfg.ArrivalRate > 0 {
			st.Rho = cfg.ArrivalRate * st.ServiceSec
			if ws.surv[lo] > 0 && st.Rho > 0 {
				// Wait per arriving task: rho/(1-rho) times the mean
				// service per arrival (ServiceSec / surv[lo]).
				st.WaitSec = st.Rho / (1 - st.Rho) * st.ServiceSec / ws.surv[lo]
			}
		}
		for c := 0; c < 3; c++ {
			end := exits[c]
			if end > hi {
				end = hi
			}
			if end > lo {
				st.FLOPs[c] = p.RangeFLOPs(lo, end)
				for e := 0; e <= c; e++ {
					if le := exits[e]; lo < le && le <= end {
						st.FLOPs[c] += p.ExitClassifierFLOPs(le)
					}
				}
			}
			st.Hosted[c] = lo < exits[c] && exits[c] <= hi
		}
		for c := 0; c < 3; c++ {
			if exits[c] <= hi {
				st.Deepest = c + 1
			}
		}
		if st.ServiceSec > plan.BottleneckSec {
			plan.BottleneckSec = st.ServiceSec
		}
		plan.Stages = append(plan.Stages, st)
		lo = hi
	}
	if plan.BottleneckSec > 0 {
		plan.SustainableRate = 1 / plan.BottleneckSec
	}

	// Per-class walk: a class-c task crosses the ingress, then each stage's
	// wait and its own compute share, hopping onward until its exit is
	// hosted. Summing p_c * T_c reproduces the DP objective exactly (the
	// survivor-weighted form is its rearrangement).
	for c := 0; c < 3; c++ {
		t := cfg.Chain.Hops[0].DelaySec(p.DataBytes(0))
		for j, st := range plan.Stages {
			if j > 0 {
				t += cfg.Chain.Hops[j].DelaySec(st.InBytes)
			}
			t += st.WaitSec + st.FLOPs[c]/cfg.Chain.Workers[st.Worker].FLOPS
			if st.Hosted[c] {
				break
			}
		}
		plan.ClassLatencySec[c] = t
		plan.ExpectedLatencySec += ws.prob[c] * t
	}
	return plan, nil
}

func validate(cfg Config) error {
	if cfg.Net == nil || cfg.Net.Profile == nil {
		return fmt.Errorf("partition: nil network")
	}
	if err := cfg.Chain.Validate(); err != nil {
		return err
	}
	if cfg.ArrivalRate < 0 {
		return fmt.Errorf("partition: arrival rate %v must be non-negative", cfg.ArrivalRate)
	}
	return nil
}
