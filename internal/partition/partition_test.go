package partition

import (
	"errors"
	"math"
	"testing"

	"leime/internal/model"
)

// testNet builds a resnet-34 MEDNN with the given exits and cumulative exit
// probabilities at them.
func testNet(t *testing.T, e1, e2 int, s1, s2 float64) *model.MEDNN {
	t.Helper()
	p := model.ResNet34()
	m := p.NumExits()
	sigma := make([]float64, m)
	for i := range sigma {
		switch {
		case i+1 >= m:
			sigma[i] = 1
		case i+1 >= e2:
			sigma[i] = s2
		case i+1 >= e1:
			sigma[i] = s1
		}
	}
	n, err := model.NewMEDNN(p, e1, e2, sigma)
	if err != nil {
		t.Fatalf("NewMEDNN: %v", err)
	}
	return n
}

// naiveClassLatency walks the chain layer by layer for one exit class —
// an O(m) oracle sharing no code with the prefix-sum DP. Rate must be zero.
func naiveClassLatency(cfg Config, cuts []int, class int) float64 {
	p := cfg.Net.Profile
	exits := [3]int{cfg.Net.E1, cfg.Net.E2, cfg.Net.E3}
	target := exits[class-1]
	t := cfg.Chain.Hops[0].DelaySec(p.DataBytes(0))
	lo := 0
	for j, hi := range cuts {
		if j > 0 {
			t += cfg.Chain.Hops[j].DelaySec(p.DataBytes(lo))
		}
		for l := lo + 1; l <= hi && l <= target; l++ {
			t += p.LayerFLOPs(l) / cfg.Chain.Workers[j].FLOPS
			for e := 0; e < class; e++ {
				if exits[e] == l {
					t += p.ExitClassifierFLOPs(l) / cfg.Chain.Workers[j].FLOPS
				}
			}
		}
		if target <= hi {
			return t
		}
		lo = hi
	}
	return t
}

func naiveExpected(cfg Config, cuts []int) float64 {
	s := cfg.Net.Sigma
	probs := [3]float64{s[0], s[1] - s[0], 1 - s[1]}
	var sum float64
	for c := 1; c <= 3; c++ {
		sum += probs[c-1] * naiveClassLatency(cfg, cuts, c)
	}
	return sum
}

// enumerate visits every non-decreasing cut vector of the given length
// ending at m.
func enumerate(m, stages int, visit func(cuts []int)) {
	cuts := make([]int, stages)
	var rec func(j, lo int)
	rec = func(j, lo int) {
		if j == stages-1 {
			cuts[j] = m
			visit(cuts)
			return
		}
		for k := lo; k <= m; k++ {
			cuts[j] = k
			rec(j+1, k)
		}
	}
	rec(0, 0)
	_ = cuts
}

func TestEvaluateMatchesNaiveOracle(t *testing.T) {
	net := testNet(t, 5, 11, 0.35, 0.75)
	cfg := Config{
		Net: net,
		Chain: Chain{
			Workers: []Worker{{FLOPS: 1.5e9}, {FLOPS: 2e9}, {FLOPS: 1e9}},
			Hops: []Hop{
				{BandwidthBps: 20e6, LatencySec: 0.02},
				{BandwidthBps: 100e6, LatencySec: 0.002},
				{BandwidthBps: 100e6, LatencySec: 0.002},
			},
		},
	}
	m := net.Profile.NumExits()
	enumerate(m, 3, func(cuts []int) {
		plan, err := Evaluate(cfg, cuts)
		if err != nil {
			t.Fatalf("Evaluate(%v): %v", cuts, err)
		}
		for c := 1; c <= 3; c++ {
			want := naiveClassLatency(cfg, cuts, c)
			got := plan.ClassLatencySec[c-1]
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("cuts %v class %d: got %.12g want %.12g", cuts, c, got, want)
			}
		}
		if want := naiveExpected(cfg, cuts); math.Abs(plan.ExpectedLatencySec-want) > 1e-9 {
			t.Fatalf("cuts %v expected: got %.12g want %.12g", cuts, plan.ExpectedLatencySec, want)
		}
	})
}

func TestSolveMatchesBruteForce(t *testing.T) {
	net := testNet(t, 4, 10, 0.3, 0.7)
	for _, rate := range []float64{0, 1.5} {
		cfg := Config{
			Net:         net,
			ArrivalRate: rate,
			Chain: Chain{
				Workers: []Worker{{FLOPS: 1.2e9}, {FLOPS: 1.2e9}, {FLOPS: 1.2e9}},
				Hops: []Hop{
					{BandwidthBps: 40e6, LatencySec: 0.01},
					{BandwidthBps: 200e6, LatencySec: 0.001},
					{BandwidthBps: 200e6, LatencySec: 0.001},
				},
			},
		}
		best := math.Inf(1)
		enumerate(net.Profile.NumExits(), 3, func(cuts []int) {
			plan, err := Evaluate(cfg, cuts)
			if err != nil {
				return // saturated/infeasible cut
			}
			if plan.ExpectedLatencySec < best {
				best = plan.ExpectedLatencySec
			}
		})
		plan, err := Solve(cfg)
		if err != nil {
			t.Fatalf("rate %v: Solve: %v", rate, err)
		}
		if math.Abs(plan.ExpectedLatencySec-best) > 1e-9*best {
			t.Fatalf("rate %v: solver %.12g, brute force %.12g (cuts %v)",
				rate, plan.ExpectedLatencySec, best, plan.Cuts)
		}
	}
}

func TestSolveIsDeterministic(t *testing.T) {
	net := testNet(t, 5, 11, 0.4, 0.8)
	cfg := Config{
		Net:         net,
		ArrivalRate: 2,
		Chain: Chain{
			Workers: []Worker{{FLOPS: 1.5e9}, {FLOPS: 1.5e9}, {FLOPS: 1.5e9}},
			Hops: []Hop{
				{BandwidthBps: 20e6, LatencySec: 0.02},
				{BandwidthBps: 100e6, LatencySec: 0.002},
				{BandwidthBps: 100e6, LatencySec: 0.002},
			},
		},
	}
	first, err := Solve(cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := 0; i < 5; i++ {
		again, err := Solve(cfg)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if len(again.Cuts) != len(first.Cuts) {
			t.Fatalf("run %d: cuts %v != %v", i, again.Cuts, first.Cuts)
		}
		for j := range again.Cuts {
			if again.Cuts[j] != first.Cuts[j] {
				t.Fatalf("run %d: cuts %v != %v", i, again.Cuts, first.Cuts)
			}
		}
		if again.ExpectedLatencySec != first.ExpectedLatencySec {
			t.Fatalf("run %d: latency %v != %v", i, again.ExpectedLatencySec, first.ExpectedLatencySec)
		}
	}
}

func TestCapForcesSplit(t *testing.T) {
	net := testNet(t, 5, 11, 0.4, 0.8)
	total := net.Profile.TotalFLOPs()
	cap := total * 0.45 // no single worker can host the backbone
	chain := Chain{
		Workers: []Worker{
			{FLOPS: 1.5e9, CapFLOPs: cap},
			{FLOPS: 1.5e9, CapFLOPs: cap},
			{FLOPS: 1.5e9, CapFLOPs: cap},
		},
		Hops: []Hop{
			{BandwidthBps: 20e6, LatencySec: 0.02},
			{BandwidthBps: 100e6, LatencySec: 0.002},
			{BandwidthBps: 100e6, LatencySec: 0.002},
		},
	}
	cfg := Config{Net: net, Chain: chain}
	plan, err := Solve(cfg)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(plan.Stages) < 2 {
		t.Fatalf("cap %.3g of total %.3g should force a split, got %d stage(s)", cap, total, len(plan.Stages))
	}
	if _, err := SingleWorker(cfg); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("SingleWorker under cap: err = %v, want ErrInfeasible", err)
	}
}

func TestLoadForcesPipelining(t *testing.T) {
	net := testNet(t, 5, 11, 0.4, 0.8)
	chain := Chain{
		Workers: []Worker{{FLOPS: 1.5e9}, {FLOPS: 1.5e9}, {FLOPS: 1.5e9}},
		Hops: []Hop{
			{BandwidthBps: 20e6, LatencySec: 0.02},
			{BandwidthBps: 200e6, LatencySec: 0.001},
			{BandwidthBps: 200e6, LatencySec: 0.001},
		},
	}
	// Unloaded, the best single-task plan is one stage (no hop costs).
	idle, err := Solve(Config{Net: net, Chain: chain})
	if err != nil {
		t.Fatalf("Solve idle: %v", err)
	}
	if len(idle.Stages) != 1 {
		t.Fatalf("idle solve used %d stages, want 1 (hops only add latency)", len(idle.Stages))
	}

	single, err := SingleWorker(Config{Net: net, Chain: chain})
	if err != nil {
		t.Fatalf("SingleWorker: %v", err)
	}
	// Just past the single worker's saturation point the one-stage plan is
	// infeasible while the chain still has headroom.
	rate := single.SustainableRate * 1.3
	if _, err := SingleWorker(Config{Net: net, Chain: chain, ArrivalRate: rate}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("saturated SingleWorker: err = %v, want ErrInfeasible", err)
	}
	loaded, err := Solve(Config{Net: net, Chain: chain, ArrivalRate: rate})
	if err != nil {
		t.Fatalf("Solve loaded: %v", err)
	}
	if len(loaded.Stages) < 2 {
		t.Fatalf("loaded solve used %d stages, want >= 2", len(loaded.Stages))
	}
	if loaded.SustainableRate <= single.SustainableRate {
		t.Fatalf("pipelined sustainable rate %.3g should exceed single-worker %.3g",
			loaded.SustainableRate, single.SustainableRate)
	}
}

func TestEarlyExitWeighting(t *testing.T) {
	// With everyone exiting at E1, layers past E1 must contribute nothing.
	net := testNet(t, 5, 11, 1, 1)
	chain := Chain{
		Workers: []Worker{{FLOPS: 1e9}},
		Hops:    []Hop{{BandwidthBps: 50e6, LatencySec: 0.01}},
	}
	plan, err := SingleWorker(Config{Net: net, Chain: chain})
	if err != nil {
		t.Fatalf("SingleWorker: %v", err)
	}
	p := net.Profile
	want := chain.Hops[0].DelaySec(p.DataBytes(0)) +
		(p.CumulativeFLOPs(net.E1)+p.ExitClassifierFLOPs(net.E1))/1e9
	if math.Abs(plan.ExpectedLatencySec-want) > 1e-9 {
		t.Fatalf("all-exit-1 latency %.12g, want %.12g", plan.ExpectedLatencySec, want)
	}
}

func TestValidation(t *testing.T) {
	net := testNet(t, 5, 11, 0.4, 0.8)
	chain := Chain{Workers: []Worker{{FLOPS: 1e9}}, Hops: []Hop{{}}}
	if _, err := Solve(Config{Net: nil, Chain: chain}); err == nil {
		t.Fatal("nil net accepted")
	}
	if _, err := Solve(Config{Net: net, Chain: Chain{}}); err == nil {
		t.Fatal("empty chain accepted")
	}
	if _, err := Solve(Config{Net: net, Chain: chain, ArrivalRate: -1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := Evaluate(Config{Net: net, Chain: chain}, []int{3}); err == nil {
		t.Fatal("cut short of m accepted")
	}
	m := net.Profile.NumExits()
	if _, err := Evaluate(Config{Net: net, Chain: chain}, []int{m, m}); err == nil {
		t.Fatal("more cuts than workers accepted")
	}
}

func TestStageMetadata(t *testing.T) {
	net := testNet(t, 5, 11, 0.4, 0.8)
	m := net.Profile.NumExits()
	cfg := Config{
		Net: net,
		Chain: Chain{
			Workers: []Worker{{FLOPS: 1e9}, {FLOPS: 1e9}, {FLOPS: 1e9}},
			Hops:    []Hop{{}, {}, {}},
		},
	}
	plan, err := Evaluate(cfg, []int{6, 12, m})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s := plan.Stages
	if !s[0].Hosted[0] || s[0].Hosted[1] || s[0].Hosted[2] {
		t.Fatalf("stage 0 hosting %v, want exit 1 only", s[0].Hosted)
	}
	if !s[1].Hosted[1] || s[1].Hosted[0] || s[1].Hosted[2] {
		t.Fatalf("stage 1 hosting %v, want exit 2 only", s[1].Hosted)
	}
	if !s[2].Hosted[2] {
		t.Fatalf("stage 2 hosting %v, want exit 3", s[2].Hosted)
	}
	if s[0].Deepest != 1 || s[1].Deepest != 2 || s[2].Deepest != 3 {
		t.Fatalf("deepest = %d,%d,%d, want 1,2,3", s[0].Deepest, s[1].Deepest, s[2].Deepest)
	}
	p := net.Profile
	if s[1].InBytes != p.DataBytes(6) || s[1].OutBytes != p.DataBytes(12) {
		t.Fatalf("stage 1 bytes in/out = %v/%v, want %v/%v",
			s[1].InBytes, s[1].OutBytes, p.DataBytes(6), p.DataBytes(12))
	}
	// An exit-1 task burns nothing past its hosting stage; an exit-3 task
	// burns the whole backbone plus all three classifiers across stages.
	if s[1].FLOPs[0] != 0 || s[2].FLOPs[0] != 0 {
		t.Fatalf("exit-1 compute leaked past stage 0: %v %v", s[1].FLOPs[0], s[2].FLOPs[0])
	}
	var total3 float64
	for _, st := range s {
		total3 += st.FLOPs[2]
	}
	want3 := p.TotalFLOPs() + p.ExitClassifierFLOPs(net.E1) + p.ExitClassifierFLOPs(net.E2) + p.ExitClassifierFLOPs(net.E3)
	if math.Abs(total3-want3) > 1e-6 {
		t.Fatalf("exit-3 compute across stages %.12g, want %.12g", total3, want3)
	}
}
