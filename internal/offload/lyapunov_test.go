package offload

import (
	"math"
	"math/rand"
	"testing"
)

// TestLemma1DriftBound numerically verifies the paper's Lemma 1: for any
// decision, the one-slot Lyapunov drift is bounded by
//
//	delta(L) <= B + Q(A - b) + H(D - c)
//
// with B = max over the slot of (A^2+b^2)/2 - b~A + (D^2+c^2)/2 - c~D,
// where b~ = min(Q, b) and c~ = min(H, c). The bound comes from squaring the
// queue recurrences (eqs. 10-11); this test replays it over random states
// and decisions.
func TestLemma1DriftBound(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	rng := rand.New(rand.NewSource(99))
	lyap := func(s State) float64 { return 0.5 * (s.Q*s.Q + s.H*s.H) }

	for trial := 0; trial < 2000; trial++ {
		st := State{Q: 40 * rng.Float64(), H: 40 * rng.Float64()}
		slot := Slot{
			Arrivals:       float64(rng.Intn(30)),
			State:          st,
			EdgeShareFLOPS: 1e9 + 4e10*rng.Float64(),
		}
		x := rng.Float64()
		costs := c.Eval(dev, slot, x)
		next := c.StepQueues(dev, slot, x)

		a := (1 - x) * slot.Arrivals
		d := x * slot.Arrivals
		b := costs.LocalRate
		cr := costs.EdgeRate
		bTilde := math.Min(st.Q, b)
		cTilde := math.Min(st.H, cr)
		bConst := (a*a+b*b)/2 - bTilde*a + (d*d+cr*cr)/2 - cTilde*d

		drift := lyap(next) - lyap(st)
		bound := bConst + st.Q*(a-b) + st.H*(d-cr)
		if drift > bound+1e-6 {
			t.Fatalf("trial %d: drift %v exceeds Lemma-1 bound %v (Q=%v H=%v x=%v A=%v)",
				trial, drift, bound, st.Q, st.H, x, slot.Arrivals)
		}
	}
}

// TestQueueRecurrenceMatchesPaper re-derives eqs. 10-11 by hand for a few
// states and checks StepQueues against them.
func TestQueueRecurrenceMatchesPaper(t *testing.T) {
	c := testController(t, 100)
	dev := testDevice() // LocalRate = Fd*tau/mu1 = 1.2e9/2e8 = 6 tasks/slot
	cases := []struct {
		q, h, arrivals, x float64
		wantQ             float64
	}{
		// Q' = max(Q - b, 0) + A with b = 6.
		{q: 10, h: 0, arrivals: 4, x: 0, wantQ: 10 - 6 + 4},
		{q: 2, h: 0, arrivals: 4, x: 0, wantQ: 0 + 4}, // drains past zero
		{q: 0, h: 0, arrivals: 8, x: 0.5, wantQ: 0 + 4},
	}
	for i, tc := range cases {
		slot := Slot{Arrivals: tc.arrivals, State: State{Q: tc.q, H: tc.h}, EdgeShareFLOPS: 1e10}
		next := c.StepQueues(dev, slot, tc.x)
		if math.Abs(next.Q-tc.wantQ) > 1e-9 {
			t.Errorf("case %d: Q' = %v, want %v", i, next.Q, tc.wantQ)
		}
	}
}
