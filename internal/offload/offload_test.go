package offload

import (
	"math"
	"math/rand"
	"testing"
)

// testModel is a plausible ME-Inception-v3-like deployment.
func testModel() ModelParams {
	return ModelParams{
		Mu:    [3]float64{2e8, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
}

func testDevice() Device {
	return Device{
		FLOPS:        1.2e9,
		BandwidthBps: 1e7,
		LatencySec:   0.02,
		ArrivalMean:  10,
	}
}

func testController(t *testing.T, v float64) *Controller {
	t.Helper()
	c, err := NewController(Config{Model: testModel(), TauSec: 1, V: v})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := Config{Model: testModel(), TauSec: 1, V: 100}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Model: testModel(), TauSec: 0, V: 1},
		{Model: testModel(), TauSec: 1, V: 0},
		{Model: ModelParams{}, TauSec: 1, V: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	m := testModel()
	m.Sigma = [3]float64{0.9, 0.5, 1} // non-monotone
	if err := m.Validate(); err == nil {
		t.Error("non-monotone sigma accepted")
	}
	m = testModel()
	m.Sigma[2] = 0.9
	if err := m.Validate(); err == nil {
		t.Error("sigma_3 != 1 accepted")
	}
}

func TestEvalHandComputed(t *testing.T) {
	c := testController(t, 100)
	dev := testDevice()
	slot := Slot{Arrivals: 10, State: State{Q: 5, H: 2}, EdgeShareFLOPS: 3e10}
	m := testModel()

	// x = 0: all local, edge terms vanish.
	got := c.Eval(dev, slot, 0)
	wait := 10.0 * 5 * m.Mu[0] / dev.FLOPS
	proc := 10*m.Mu[0]/dev.FLOPS + 45*m.Mu[0]/dev.FLOPS
	trans := (1 - m.Sigma[0]) * 10 * (m.D[1]*8/dev.BandwidthBps + dev.LatencySec)
	if want := wait + proc + trans; math.Abs(got.TD-want) > 1e-9 {
		t.Errorf("TD(0) = %v, want %v", got.TD, want)
	}
	if got.TE != 0 {
		t.Errorf("TE(0) = %v, want 0", got.TE)
	}

	// x = 1: all offloaded, device terms vanish. The edge's first-block
	// share (eq. 9) covers this slot's offloads plus the backlog H.
	got = c.Eval(dev, slot, 1)
	if got.TD != 0 {
		t.Errorf("TD(1) = %v, want 0", got.TD)
	}
	firstWork := (1*10 + slot.State.H) * m.Mu[0]
	fe1 := firstWork * slot.EdgeShareFLOPS / (firstWork + (1-m.Sigma[0])*10*m.Mu[1])
	upload := 10 * (m.D[0]*8/dev.BandwidthBps + dev.LatencySec)
	ewait := 10 * 2 * m.Mu[0] / fe1
	eproc := 10*m.Mu[0]/fe1 + 45*m.Mu[0]/fe1
	if want := upload + ewait + eproc; math.Abs(got.TE-want) > 1e-9 {
		t.Errorf("TE(1) = %v, want %v", got.TE, want)
	}
}

func TestBacklogDrainsWithoutOffloading(t *testing.T) {
	// Regression: a first-block backlog left at the edge by an earlier
	// offloading burst must keep draining even when the current decision is
	// x = 0 — eq. 9 taken literally would freeze it forever and lock the
	// controller out of offloading (the H wait term grows with H).
	c := testController(t, 1e4)
	dev := testDevice()
	st := State{H: 12}
	for i := 0; i < 50; i++ {
		slot := Slot{Arrivals: 5, State: st, EdgeShareFLOPS: 1e10}
		st = c.StepQueues(dev, slot, 0)
	}
	if st.H > 1e-9 {
		t.Errorf("edge backlog frozen at H=%v after 50 slots of x=0", st.H)
	}
}

func TestEvalMonotoneInX(t *testing.T) {
	c := testController(t, 100)
	dev := testDevice()
	slot := Slot{Arrivals: 8, State: State{Q: 3, H: 1}, EdgeShareFLOPS: 2e10}
	prevTD, prevTE := math.Inf(1), -1.0
	for x := 0.0; x <= 1.0001; x += 0.05 {
		costs := c.Eval(dev, slot, math.Min(x, 1))
		if costs.TD > prevTD+1e-9 {
			t.Fatalf("TD increased at x=%v: %v > %v", x, costs.TD, prevTD)
		}
		if costs.TE < prevTE-1e-9 {
			t.Fatalf("TE decreased at x=%v: %v < %v", x, costs.TE, prevTE)
		}
		prevTD, prevTE = costs.TD, costs.TE
	}
}

func TestEvalNoEdgeShare(t *testing.T) {
	c := testController(t, 100)
	dev := testDevice()
	slot := Slot{Arrivals: 5, State: State{}, EdgeShareFLOPS: 0}
	if got := c.Eval(dev, slot, 0.5); !math.IsInf(got.TE, 1) {
		t.Errorf("offloading with zero edge share should be infinitely costly, got TE=%v", got.TE)
	}
	if got := c.Decide(dev, slot); got != 0 {
		t.Errorf("Decide with zero edge share = %v, want 0", got)
	}
}

func TestBandwidthCap(t *testing.T) {
	c := testController(t, 100)
	dev := testDevice()

	// Generous bandwidth: no cap.
	dev.BandwidthBps = 1e9
	if got := c.BandwidthCap(dev, 10); got != 1 {
		t.Errorf("cap with generous bandwidth = %v, want 1", got)
	}
	// Starved link: everything capped out.
	dev.BandwidthBps = 1e3
	if got := c.BandwidthCap(dev, 10); got != 0 {
		t.Errorf("cap with starved link = %v, want 0", got)
	}
	// Cap is non-decreasing in bandwidth.
	prev := -1.0
	for _, bw := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} {
		dev.BandwidthBps = bw
		got := c.BandwidthCap(dev, 50)
		if got < prev {
			t.Errorf("cap decreased with more bandwidth: %v < %v at %v bps", got, prev, bw)
		}
		prev = got
	}
	// Zero arrivals: vacuously uncapped.
	if got := c.BandwidthCap(dev, 0); got != 1 {
		t.Errorf("cap with zero arrivals = %v, want 1", got)
	}
}

func TestDecideRespectsCapAndRange(t *testing.T) {
	c := testController(t, 1e4)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		dev := Device{
			FLOPS:        1e8 * math.Pow(10, 2*rng.Float64()),
			BandwidthBps: 1e5 * math.Pow(10, 3*rng.Float64()),
			LatencySec:   0.2 * rng.Float64(),
			ArrivalMean:  1 + 40*rng.Float64(),
		}
		slot := Slot{
			Arrivals:       float64(rng.Intn(50)),
			State:          State{Q: 30 * rng.Float64(), H: 30 * rng.Float64()},
			EdgeShareFLOPS: 1e9 * math.Pow(10, 2*rng.Float64()),
		}
		x := c.Decide(dev, slot)
		if x < 0 || x > 1 {
			t.Fatalf("trial %d: x=%v out of range", trial, x)
		}
		if cap := c.BandwidthCap(dev, slot.Arrivals); x > cap+1e-9 {
			t.Fatalf("trial %d: x=%v exceeds bandwidth cap %v", trial, x, cap)
		}
	}
}

func TestDecideInteriorDecisionsBalanceOrBeatCorners(t *testing.T) {
	// Whenever Decide returns an interior ratio, it is either the
	// Cauchy–Schwarz balance point (T_i^d == T_i^e) or strictly better than
	// both corners on the P1' objective; and it never loses to a corner.
	c := testController(t, 1e4)
	rng := rand.New(rand.NewSource(17))
	interior := 0
	for trial := 0; trial < 400; trial++ {
		dev := Device{
			FLOPS:        5e8 + 1e10*rng.Float64(),
			BandwidthBps: 1e6 + 1e8*rng.Float64(),
			LatencySec:   0.05 * rng.Float64(),
			ArrivalMean:  1 + 30*rng.Float64(),
		}
		slot := Slot{
			Arrivals:       1 + float64(rng.Intn(40)),
			State:          State{Q: 20 * rng.Float64(), H: 20 * rng.Float64()},
			EdgeShareFLOPS: 1e9 + 5e10*rng.Float64(),
		}
		x := c.Decide(dev, slot)
		cap := c.BandwidthCap(dev, slot.Arrivals)
		obj := c.Eval(dev, slot, x).Objective
		for _, corner := range []float64{0, cap} {
			if cObj := c.Eval(dev, slot, corner).Objective; obj > cObj+1e-9*math.Abs(cObj) {
				t.Fatalf("trial %d: Decide(x=%v, obj=%v) lost to corner x=%v (obj=%v)", trial, x, obj, corner, cObj)
			}
		}
		if x > 1e-9 && x < cap-1e-9 {
			interior++
			costs := c.Eval(dev, slot, x)
			if rel := math.Abs(costs.TD-costs.TE) / math.Max(costs.TD, costs.TE); rel > 1e-6 {
				t.Errorf("trial %d: interior decision unbalanced: TD=%v TE=%v", trial, costs.TD, costs.TE)
			}
		}
	}
	if interior == 0 {
		t.Error("no interior decisions seen; test vacuous")
	}
}

func TestDecideCloseToCentralizedOptimum(t *testing.T) {
	// The decentralized balance rule must track the exact per-slot optimizer
	// of P1' closely when V is large (the queue terms it ignores vanish).
	c := testController(t, 1e8)
	rng := rand.New(rand.NewSource(6))
	var worst float64
	for trial := 0; trial < 300; trial++ {
		dev := Device{
			FLOPS:        5e8 + 1e10*rng.Float64(),
			BandwidthBps: 1e6 + 1e8*rng.Float64(),
			LatencySec:   0.05 * rng.Float64(),
			ArrivalMean:  1 + 30*rng.Float64(),
		}
		slot := Slot{
			Arrivals:       1 + float64(rng.Intn(40)),
			State:          State{Q: 20 * rng.Float64(), H: 20 * rng.Float64()},
			EdgeShareFLOPS: 1e9 + 5e10*rng.Float64(),
		}
		xd := c.Decide(dev, slot)
		xc := c.DecideCentralized(dev, slot)
		od := c.Eval(dev, slot, xd).Objective
		oc := c.Eval(dev, slot, xc).Objective
		if oc <= 0 {
			continue
		}
		gap := (od - oc) / oc
		if gap > worst {
			worst = gap
		}
	}
	if worst > 0.25 {
		t.Errorf("decentralized decision up to %.1f%% above the per-slot optimum; want <= 25%%", worst*100)
	}
}

func TestQueueStabilityUnderAdmissibleLoad(t *testing.T) {
	// C3/C4 of P1: under a load the system can carry, queues are mean-rate
	// stable: backlog does not grow linearly with time.
	c := testController(t, 1e4)
	dev := testDevice()
	dev.ArrivalMean = 12
	rng := rand.New(rand.NewSource(11))
	st := State{}
	var maxBacklog float64
	const slots = 2000
	for ti := 0; ti < slots; ti++ {
		arrivals := float64(rng.Intn(2 * int(dev.ArrivalMean))) // mean ~12
		slot := Slot{Arrivals: arrivals, State: st, EdgeShareFLOPS: 1e10}
		x := c.Decide(dev, slot)
		st = c.StepQueues(dev, slot, x)
		if b := st.Q + st.H; b > maxBacklog {
			maxBacklog = b
		}
	}
	if final := st.Q + st.H; final/slots > 0.05 {
		t.Errorf("queues not mean-rate stable: final backlog %v after %d slots", final, slots)
	}
	if maxBacklog > 500 {
		t.Errorf("backlog peaked at %v tasks; system should be stable under admissible load", maxBacklog)
	}
}

func TestStepQueuesNeverNegative(t *testing.T) {
	c := testController(t, 100)
	dev := testDevice()
	rng := rand.New(rand.NewSource(13))
	st := State{}
	for i := 0; i < 500; i++ {
		slot := Slot{Arrivals: float64(rng.Intn(30)), State: st, EdgeShareFLOPS: 5e9 * rng.Float64()}
		st = c.StepQueues(dev, slot, rng.Float64())
		if st.Q < 0 || st.H < 0 {
			t.Fatalf("negative queue at step %d: %+v", i, st)
		}
	}
}

func TestLyapunovOffloadsMoreUnderLocalBacklog(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	dev.BandwidthBps = 1e8
	base := Slot{Arrivals: 10, State: State{Q: 0, H: 0}, EdgeShareFLOPS: 1e10}
	backlogged := base
	backlogged.State.Q = 50
	xBase := c.Decide(dev, base)
	xBacklogged := c.Decide(dev, backlogged)
	if xBacklogged < xBase {
		t.Errorf("local backlog should push work to the edge: x went %v -> %v", xBase, xBacklogged)
	}
}
