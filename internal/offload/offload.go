// Package offload implements LEIME's computation-level contribution: the
// online distributed task-offloading mechanism (§III-D). Each device decides,
// once per time slot, what fraction x_i(t) of its newly arrived first-block
// inference tasks to launch on the edge server instead of locally.
//
// The long-term stochastic problem P1 (eq. 15) is converted with Lyapunov
// drift-plus-penalty into the per-slot deterministic problem P1' (eq. 18).
// The decentralized solver follows the paper's Cauchy–Schwarz argument
// (eq. 20): with large V, the per-slot optimum is reached by balancing the
// device-side and edge-side time costs, T_i^d(t) = T_i^e(t), subject to the
// uplink bandwidth constraint (eq. 8). The edge's compute is divided between
// devices with the KKT closed form (eq. 27, Appendix B).
package offload

import (
	"errors"
	"fmt"
	"math"
)

// ModelParams describe the deployed ME-DNN as the offloading model sees it:
// block operation counts, boundary data sizes, and exit probabilities.
type ModelParams struct {
	// Mu holds [mu_1, mu_2, mu_3]: the FLOPs of the three blocks.
	Mu [3]float64
	// D holds [d_0, d_1, d_2]: raw input size and the two intermediate
	// tensor sizes, in bytes.
	D [3]float64
	// Sigma holds [sigma_1, sigma_2, sigma_3]: cumulative exit probabilities
	// at the three exits; Sigma[2] == 1.
	Sigma [3]float64
}

// Validate reports whether the parameters are usable.
func (m ModelParams) Validate() error {
	var errs []error
	for i, v := range m.Mu {
		if v <= 0 {
			errs = append(errs, fmt.Errorf("offload: Mu[%d] = %v must be positive", i, v))
		}
	}
	for i, v := range m.D {
		if v <= 0 {
			errs = append(errs, fmt.Errorf("offload: D[%d] = %v must be positive", i, v))
		}
	}
	prev := 0.0
	for i, v := range m.Sigma {
		if v < prev || v > 1 {
			errs = append(errs, fmt.Errorf("offload: Sigma[%d] = %v must be monotone in [0,1]", i, v))
		}
		prev = v
	}
	if math.Abs(m.Sigma[2]-1) > 1e-9 {
		errs = append(errs, fmt.Errorf("offload: Sigma[2] = %v, want 1", m.Sigma[2]))
	}
	return errors.Join(errs...)
}

// Device is the per-device configuration the controller needs.
type Device struct {
	// FLOPS is the device capability F_i^d.
	FLOPS float64
	// BandwidthBps is the uplink bandwidth B_i^e in bits per second.
	BandwidthBps float64
	// LatencySec is the device–edge connection latency L_i^e in seconds.
	LatencySec float64
	// ArrivalMean is k_i, the expected task arrivals per slot.
	ArrivalMean float64
}

// Validate reports whether the device configuration is usable.
func (d Device) Validate() error {
	if d.FLOPS <= 0 {
		return fmt.Errorf("offload: device FLOPS %v must be positive", d.FLOPS)
	}
	if d.BandwidthBps <= 0 {
		return fmt.Errorf("offload: device bandwidth %v must be positive", d.BandwidthBps)
	}
	if d.LatencySec < 0 {
		return fmt.Errorf("offload: device latency %v must be non-negative", d.LatencySec)
	}
	if d.ArrivalMean < 0 {
		return fmt.Errorf("offload: arrival mean %v must be non-negative", d.ArrivalMean)
	}
	return nil
}

// State is the queue backlog of one device at the start of a slot.
type State struct {
	// Q is the local first-block queue length Q_i(t), in tasks.
	Q float64
	// H is the device's first-block queue length at the edge, H_i(t).
	H float64
}

// Slot bundles everything a per-slot decision depends on.
type Slot struct {
	// Arrivals is M_i(t): the number of tasks that arrived this slot.
	Arrivals float64
	// State is the queue backlog at the slot start.
	State State
	// EdgeShareFLOPS is p_i * F^e: the edge compute available to this device.
	EdgeShareFLOPS float64
}

// Config fixes the controller constants.
type Config struct {
	// Model is the deployed ME-DNN.
	Model ModelParams
	// TauSec is the slot length in seconds.
	TauSec float64
	// V is the Lyapunov penalty weight; larger V weighs current-slot delay
	// more against queue stability (Theorem 3's B/V gap shrinks with V).
	V float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.TauSec <= 0 {
		return fmt.Errorf("offload: TauSec %v must be positive", c.TauSec)
	}
	if c.V <= 0 {
		return fmt.Errorf("offload: V %v must be positive", c.V)
	}
	return nil
}

// Costs are the evaluated per-slot cost terms for one offloading ratio.
type Costs struct {
	// TD is T_i^d(t) (eq. 12): waiting + processing + intermediate-data
	// transmission for locally launched tasks.
	TD float64
	// TE is T_i^e(t) (eq. 13): input upload + edge waiting + edge processing
	// for offloaded tasks.
	TE float64
	// Objective is the P1' per-device objective (eq. 19).
	Objective float64
	// LocalRate is b_i(t): first-block tasks the device can drain per slot.
	LocalRate float64
	// EdgeRate is c_i(t): first-block tasks the device's edge share drains
	// per slot.
	EdgeRate float64
}

// Controller evaluates the per-slot cost model and makes offloading
// decisions for one device.
type Controller struct {
	cfg Config
}

// NewController validates the configuration and builds a controller.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// edgeBlockShare returns F^e_{i,1} (eq. 9): the part of the device's edge
// share that serves first-block tasks; the rest serves second-block work
// arriving from the First exit. Equation 9 splits by this slot's workload
// ratio, x*mu_1 : (1-sigma_1)*mu_2 (per arriving task); the backlog H of
// already-accepted first-block tasks is added to the first-block side so a
// queue left behind by an earlier offloading burst keeps draining even when
// the current decision is x = 0 — taking the equation literally would starve
// the backlog forever and deadlock the controller away from offloading.
func (c *Controller) edgeBlockShare(x, shareFLOPS, arrivals, backlog float64) float64 {
	m := c.cfg.Model
	first := (x*arrivals + backlog) * m.Mu[0]
	second := (1 - m.Sigma[0]) * arrivals * m.Mu[1]
	denom := first + second
	if denom <= 0 {
		return 0
	}
	return first * shareFLOPS / denom
}

// Eval computes all per-slot cost terms for offloading ratio x in [0, 1].
func (c *Controller) Eval(dev Device, slot Slot, x float64) Costs {
	m := c.cfg.Model
	tau := c.cfg.TauSec
	a := (1 - x) * slot.Arrivals // A_i(t), tasks launched locally
	d := x * slot.Arrivals       // D_i(t), tasks launched at the edge

	var out Costs
	out.LocalRate = dev.FLOPS * tau / m.Mu[0]

	// Device side (eq. 12).
	wait := a * slot.State.Q * m.Mu[0] / dev.FLOPS
	proc := a*m.Mu[0]/dev.FLOPS + a*(a-1)/2*m.Mu[0]/dev.FLOPS
	if a < 1 {
		proc = a * m.Mu[0] / dev.FLOPS // no intra-slot queueing below one task
	}
	trans := (1 - m.Sigma[0]) * a * (m.D[1]*8/dev.BandwidthBps + dev.LatencySec)
	out.TD = wait + proc + trans

	// Edge side (eq. 13).
	fe1 := c.edgeBlockShare(x, slot.EdgeShareFLOPS, slot.Arrivals, slot.State.H)
	if fe1 > 0 {
		out.EdgeRate = fe1 * tau / m.Mu[0]
		upload := d * (m.D[0]*8/dev.BandwidthBps + dev.LatencySec)
		ewait := d * slot.State.H * m.Mu[0] / fe1
		eproc := d*m.Mu[0]/fe1 + d*(d-1)/2*m.Mu[0]/fe1
		if d < 1 {
			eproc = d * m.Mu[0] / fe1
		}
		out.TE = upload + ewait + eproc
	} else if d > 0 {
		// Offloading with no edge share is infinitely costly.
		out.TE = math.Inf(1)
	}

	// P1' objective (eq. 19).
	out.Objective = c.cfg.V*(out.TD+out.TE) +
		slot.State.Q*(a-out.LocalRate) +
		slot.State.H*(d-out.EdgeRate)
	return out
}

// BandwidthCap returns the largest offloading ratio the uplink admits
// (eq. 8): D(t) d_0 + A(t)(1 - sigma_1) d_1 <= B_i^e (tau - L_i^e), solved
// for x. The returned value is clamped to [0, 1]; if even x = 0 violates the
// constraint (the intermediate data alone overwhelms the link), it returns 0.
func (c *Controller) BandwidthCap(dev Device, arrivals float64) float64 {
	if arrivals == 0 {
		return 1
	}
	m := c.cfg.Model
	budgetBits := dev.BandwidthBps * (c.cfg.TauSec - dev.LatencySec)
	if budgetBits <= 0 {
		return 0
	}
	budget := budgetBits / 8 // bytes per slot
	base := arrivals * (1 - m.Sigma[0]) * m.D[1]
	coef := arrivals * (m.D[0] - (1-m.Sigma[0])*m.D[1])
	// Constraint: base + coef*x <= budget.
	if coef <= 0 {
		// Offloading reduces transmitted bytes; the cap is x=1 if feasible
		// anywhere. (At x=1 the load is arrivals*d_0.)
		if arrivals*m.D[0] <= budget || base+coef <= budget {
			return 1
		}
		return 0
	}
	cap := (budget - base) / coef
	return clamp01(cap)
}

// Decide returns the decentralized offloading decision (§III-D4): the ratio
// x that balances T_i^d(x) against T_i^e(x) — the Cauchy–Schwarz equality
// point of eq. 20 — clamped by the bandwidth cap. T_i^d is non-increasing
// and T_i^e non-decreasing in x, so the balance point is found by bisection.
func (c *Controller) Decide(dev Device, slot Slot) float64 {
	if slot.Arrivals == 0 || slot.EdgeShareFLOPS <= 0 {
		return 0
	}
	cap := c.BandwidthCap(dev, slot.Arrivals)
	if cap == 0 {
		return 0
	}
	g := func(x float64) float64 {
		costs := c.Eval(dev, slot, x)
		if math.IsInf(costs.TE, 1) {
			return math.Inf(-1)
		}
		return costs.TD - costs.TE
	}
	balance := cap
	switch {
	case g(0) <= 0:
		balance = 0 // local side already cheaper at x=0
	case g(cap) >= 0:
		balance = cap // edge side still cheaper at the cap
	default:
		lo, hi := 0.0, cap
		for iter := 0; iter < 60; iter++ {
			mid := (lo + hi) / 2
			if g(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		balance = (lo + hi) / 2
	}
	// "Balance as much as possible" can still lose to a corner when moving
	// any work to the other side is strictly harmful (e.g. a slow uplink
	// makes every offloaded task pay more than it saves). Each device checks
	// its own two corners against the balance point — still O(1) local work.
	best, bestObj := balance, c.Eval(dev, slot, balance).Objective
	for _, x := range []float64{0, cap} {
		if obj := c.Eval(dev, slot, x).Objective; obj < bestObj {
			best, bestObj = x, obj
		}
	}
	return best
}

// DecideCentralized solves the per-slot P1' objective exactly by golden-
// section search over [0, cap] (the objective is convex in x, §III-D4). It
// is the comparator the close-to-optimal tests use; production code uses
// Decide.
func (c *Controller) DecideCentralized(dev Device, slot Slot) float64 {
	if slot.Arrivals == 0 {
		return 0
	}
	cap := c.BandwidthCap(dev, slot.Arrivals)
	if cap == 0 {
		return 0
	}
	f := func(x float64) float64 { return c.Eval(dev, slot, x).Objective }
	const phi = 0.6180339887498949
	lo, hi := 0.0, cap
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := f(x1), f(x2)
	for iter := 0; iter < 80; iter++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = f(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = f(x2)
		}
	}
	best := (lo + hi) / 2
	// Convexity holds in the interior, but the boundary can still win when
	// the optimum is a corner; check both ends explicitly.
	for _, x := range []float64{0, cap} {
		if f(x) < f(best) {
			best = x
		}
	}
	return best
}

// StepQueues advances the queue backlogs by one slot (eqs. 10–11) given the
// decision x and returns the new state.
func (c *Controller) StepQueues(dev Device, slot Slot, x float64) State {
	costs := c.Eval(dev, slot, x)
	a := (1 - x) * slot.Arrivals
	d := x * slot.Arrivals
	return State{
		Q: math.Max(slot.State.Q-costs.LocalRate, 0) + a,
		H: math.Max(slot.State.H-costs.EdgeRate, 0) + d,
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
