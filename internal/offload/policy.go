package offload

import "fmt"

// Policy is a named per-slot offloading rule: given the device, its slot
// observation and the controller's cost model, it returns the offloading
// ratio x in [0, 1]. The classical baselines of the paper's Fig. 10(b) are
// all expressible as policies.
type Policy struct {
	// Name is the policy name as used in the paper's figures.
	Name string
	// Decide returns the offloading ratio for this slot.
	Decide func(c *Controller, dev Device, slot Slot) float64
}

// Lyapunov returns LEIME's online policy: the decentralized drift-plus-
// penalty balance decision.
func Lyapunov() Policy {
	return Policy{
		Name:   "LEIME",
		Decide: func(c *Controller, dev Device, slot Slot) float64 { return c.Decide(dev, slot) },
	}
}

// LyapunovCentralized returns the exact per-slot P1' optimizer (golden-
// section search) as a policy. It is the upper bound the decentralized
// balance rule is compared against in the solver ablation; production
// deployments use Lyapunov.
func LyapunovCentralized() Policy {
	return Policy{
		Name:   "LEIME-centralized",
		Decide: func(c *Controller, dev Device, slot Slot) float64 { return c.DecideCentralized(dev, slot) },
	}
}

// DeviceOnly returns the D-only baseline: every task launches locally
// (offloading ratio 0).
func DeviceOnly() Policy {
	return Policy{
		Name:   "D-only",
		Decide: func(*Controller, Device, Slot) float64 { return 0 },
	}
}

// EdgeOnly returns the E-only baseline: every task launches at the edge
// (offloading ratio 1), still respecting the uplink bandwidth cap.
func EdgeOnly() Policy {
	return Policy{
		Name: "E-only",
		Decide: func(c *Controller, dev Device, slot Slot) float64 {
			return c.BandwidthCap(dev, slot.Arrivals)
		},
	}
}

// CapabilityBased returns the cap_based baseline: the ratio is fixed from
// the static capability split between the device and its edge share,
// x = p_i F^e / (F_i^d + p_i F^e), ignoring queues and network state.
func CapabilityBased() Policy {
	return Policy{
		Name: "cap_based",
		Decide: func(c *Controller, dev Device, slot Slot) float64 {
			total := dev.FLOPS + slot.EdgeShareFLOPS
			if total <= 0 {
				return 0
			}
			x := slot.EdgeShareFLOPS / total
			if cap := c.BandwidthCap(dev, slot.Arrivals); x > cap {
				x = cap
			}
			return x
		},
	}
}

// FixedRatio returns a constant-ratio policy (the offloading-ratio sweeps of
// Fig. 3 use these).
func FixedRatio(x float64) Policy {
	return Policy{
		Name: fmt.Sprintf("fixed-%.2f", x),
		Decide: func(*Controller, Device, Slot) float64 {
			return clamp01(x)
		},
	}
}

// ClassicBaselines returns the offloading baselines of Fig. 10(b).
func ClassicBaselines() []Policy {
	return []Policy{DeviceOnly(), EdgeOnly(), CapabilityBased()}
}
