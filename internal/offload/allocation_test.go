package offload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocateSingleDeviceGetsEverything(t *testing.T) {
	p, err := Allocate([]Device{testDevice()}, 6e10)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(p) != 1 || math.Abs(p[0]-1) > 1e-9 {
		t.Errorf("single-device allocation = %v, want [1]", p)
	}
}

func TestAllocateSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		devices := make([]Device, n)
		for i := range devices {
			devices[i] = Device{
				FLOPS:        1e8 * math.Pow(10, 2*rng.Float64()),
				BandwidthBps: 1e7,
				LatencySec:   0.02,
				ArrivalMean:  rng.Float64() * 50,
			}
		}
		p, err := Allocate(devices, 6e10)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sum float64
		for i, v := range p {
			if v < 0 {
				t.Fatalf("trial %d: negative share p[%d]=%v", trial, i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: shares sum to %v", trial, sum)
		}
	}
}

func TestAllocateFavorsBusyWeakDevices(t *testing.T) {
	devices := []Device{
		{FLOPS: 1.2e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 40}, // weak, busy
		{FLOPS: 9.8e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 5},  // strong, idle
	}
	p, err := Allocate(devices, 6e10)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if p[0] <= p[1] {
		t.Errorf("weak busy device should get the larger share: %v", p)
	}
}

func TestAllocateOptimalAgainstAlternatives(t *testing.T) {
	// The KKT allocation must not lose to uniform or demand-proportional
	// splits on the objective it optimizes (eq. 26).
	rng := rand.New(rand.NewSource(33))
	m := testModel()
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		devices := make([]Device, n)
		var totalK float64
		for i := range devices {
			devices[i] = Device{
				FLOPS:        1e8 * math.Pow(10, 1.5*rng.Float64()),
				BandwidthBps: 1e7,
				LatencySec:   0.02,
				ArrivalMean:  1 + rng.Float64()*40,
			}
			totalK += devices[i].ArrivalMean
		}
		edge := 6e10
		kkt, err := Allocate(devices, edge)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fKKT, err := MeanInferenceTime(devices, edge, kkt, m)
		if err != nil {
			t.Fatalf("MeanInferenceTime: %v", err)
		}
		uniform := make([]float64, n)
		proportional := make([]float64, n)
		for i := range devices {
			uniform[i] = 1 / float64(n)
			proportional[i] = devices[i].ArrivalMean / totalK
		}
		fUniform, _ := MeanInferenceTime(devices, edge, uniform, m)
		fProp, _ := MeanInferenceTime(devices, edge, proportional, m)
		if fKKT > fUniform+1e-12 {
			t.Errorf("trial %d: KKT (%v) lost to uniform (%v)", trial, fKKT, fUniform)
		}
		if fKKT > fProp+1e-12 {
			t.Errorf("trial %d: KKT (%v) lost to proportional (%v)", trial, fKKT, fProp)
		}
	}
}

func TestAllocateErrors(t *testing.T) {
	if _, err := Allocate(nil, 1e10); err == nil {
		t.Error("empty device list accepted")
	}
	if _, err := Allocate([]Device{testDevice()}, 0); err == nil {
		t.Error("zero edge FLOPS accepted")
	}
	if _, err := Allocate([]Device{{FLOPS: -1}}, 1e10); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestMeanInferenceTimeLengthMismatch(t *testing.T) {
	if _, err := MeanInferenceTime([]Device{testDevice()}, 1e10, []float64{0.5, 0.5}, testModel()); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestAllocateScaleInvariantProperty(t *testing.T) {
	// Scaling every arrival rate by the same factor must not change the
	// allocation (the KKT form depends on sqrt(k) ratios only).
	f := func(scaleRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/64
		devices := []Device{
			{FLOPS: 1.2e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 10},
			{FLOPS: 2.4e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 20},
			{FLOPS: 9.8e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 35},
		}
		base, err := Allocate(devices, 6e10)
		if err != nil {
			return false
		}
		scaled := make([]Device, len(devices))
		copy(scaled, devices)
		for i := range scaled {
			scaled[i].ArrivalMean *= scale
		}
		got, err := Allocate(scaled, 6e10)
		if err != nil {
			return false
		}
		for i := range base {
			if math.Abs(base[i]-got[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoliciesReturnValidRatios(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	slot := Slot{Arrivals: 15, State: State{Q: 5, H: 3}, EdgeShareFLOPS: 1e10}
	policies := append(ClassicBaselines(), Lyapunov(), FixedRatio(0.4), FixedRatio(1.7), FixedRatio(-2))
	for _, p := range policies {
		x := p.Decide(c, dev, slot)
		if x < 0 || x > 1 {
			t.Errorf("%s returned x=%v out of [0,1]", p.Name, x)
		}
	}
	if got := DeviceOnly().Decide(c, dev, slot); got != 0 {
		t.Errorf("D-only = %v, want 0", got)
	}
	if got := FixedRatio(0.4).Decide(c, dev, slot); got != 0.4 {
		t.Errorf("fixed(0.4) = %v", got)
	}
}

func TestCapabilityBasedScalesWithEdgeShare(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	dev.BandwidthBps = 1e9 // uncapped
	small := Slot{Arrivals: 10, EdgeShareFLOPS: 1e9}
	large := Slot{Arrivals: 10, EdgeShareFLOPS: 5e10}
	xs := CapabilityBased().Decide(c, dev, small)
	xl := CapabilityBased().Decide(c, dev, large)
	if xl <= xs {
		t.Errorf("more edge share should offload more: %v <= %v", xl, xs)
	}
}
