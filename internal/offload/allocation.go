package offload

import (
	"fmt"
	"math"
)

// Allocate divides the edge server's compute between devices: it returns the
// resource-allocation vector p with sum(p) = 1, minimizing the system-wide
// mean task inference time f(P) (eq. 26) via the KKT closed form of eq. 27:
//
//	p_i = sqrt(k_i) * (sum_j F_j^d + F^e) / (F^e * sum_j sqrt(k_j)) - F_i^d / F^e
//
// The raw closed form can go negative for devices whose own capability
// already exceeds their fair share; those devices are pinned to a minimal
// share and the KKT form is re-solved over the remaining set (standard
// active-set projection), preserving sum(p) = 1.
func Allocate(devices []Device, edgeFLOPS float64) ([]float64, error) {
	n := len(devices)
	if n == 0 {
		return nil, fmt.Errorf("offload: no devices to allocate for")
	}
	if edgeFLOPS <= 0 {
		return nil, fmt.Errorf("offload: edge FLOPS %v must be positive", edgeFLOPS)
	}
	for i, d := range devices {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("device %d: %w", i, err)
		}
	}

	// minShare keeps every device addressable at the edge even when the KKT
	// solution would starve it (its second-block traffic still needs cycles).
	const minShare = 1e-4

	p := make([]float64, n)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := 1.0
	for round := 0; round < n; round++ {
		var sumSqrtK, sumFd float64
		activeCount := 0
		for i, d := range devices {
			if !active[i] {
				continue
			}
			sumSqrtK += math.Sqrt(math.Max(d.ArrivalMean, 1e-12))
			sumFd += d.FLOPS
			activeCount++
		}
		if activeCount == 0 {
			break
		}
		if sumSqrtK == 0 {
			// No demand anywhere: split the remainder evenly.
			for i := range devices {
				if active[i] {
					p[i] = remaining / float64(activeCount)
				}
			}
			break
		}
		// KKT closed form over the active set, with the remaining budget.
		scale := (sumFd + remaining*edgeFLOPS) / (remaining * edgeFLOPS)
		anyNegative := false
		for i, d := range devices {
			if !active[i] {
				continue
			}
			raw := math.Sqrt(math.Max(d.ArrivalMean, 1e-12))/sumSqrtK*scale - d.FLOPS/(remaining*edgeFLOPS)
			p[i] = raw * remaining
			if p[i] < minShare {
				anyNegative = true
			}
		}
		if !anyNegative {
			break
		}
		// Pin the starved devices and re-solve for the rest.
		for i := range devices {
			if active[i] && p[i] < minShare {
				p[i] = minShare
				active[i] = false
				remaining -= minShare
			}
		}
		if remaining <= 0 {
			return nil, fmt.Errorf("offload: %d devices exhaust the edge with minimal shares", n)
		}
	}

	// Normalize away floating-point drift.
	var sum float64
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("offload: allocation degenerated (sum %v)", sum)
	}
	for i := range p {
		p[i] /= sum
	}
	return p, nil
}

// MeanInferenceTime evaluates f(P) (eq. 26): the demand-weighted mean
// per-task processing time when device i works at F_i^d + p_i F^e.
func MeanInferenceTime(devices []Device, edgeFLOPS float64, p []float64, m ModelParams) (float64, error) {
	if len(p) != len(devices) {
		return 0, fmt.Errorf("offload: allocation has %d entries for %d devices", len(p), len(devices))
	}
	work := m.Mu[0] + (1-m.Sigma[0])*m.Mu[1]
	var totalK, sum float64
	for i, d := range devices {
		totalK += d.ArrivalMean
		sum += d.ArrivalMean * work / (d.FLOPS + p[i]*edgeFLOPS)
	}
	if totalK == 0 {
		return 0, nil
	}
	return sum / totalK, nil
}
