// Equation map — where each formula of the paper's §III-D lives:
//
//	eq. 8    uplink bandwidth constraint     Controller.BandwidthCap
//	eq. 9    edge share split F^e_{i,1}      Controller.edgeBlockShare
//	eq. 10   local queue recurrence Q_i      Controller.StepQueues
//	eq. 11   edge queue recurrence H_i       Controller.StepQueues
//	eq. 12   device cost T_i^d               Controller.Eval (TD)
//	eq. 13   edge cost T_i^e                 Controller.Eval (TE)
//	eq. 14   slot cost Y_i                   Controller.Eval (TD + TE)
//	eq. 16   drift-plus-penalty              Controller.Eval (Objective)
//	eq. 17   Lemma-1 drift bound             verified by TestLemma1DriftBound
//	eq. 18   per-slot problem P1'            Controller.DecideCentralized (exact)
//	eqs. 19-20  decentralized balance        Controller.Decide
//	eq. 21   Theorem-3 B/V gap               measured by the ablation-v experiment
//	eq. 26   allocation objective f(P)       MeanInferenceTime
//	eq. 27   KKT closed form p_i             Allocate
//
// Implementation deviations from the literal equations (backlog-aware
// eq. 9 split, corner checks on the balance rule) are documented on the
// respective functions and in DESIGN.md §6.
package offload
