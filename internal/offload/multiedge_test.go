package offload

import "testing"

// TestSelectEdgePrefersMoreCapacity asserts that with identical queues the
// selection routes to the edge offering the larger share.
func TestSelectEdgePrefersMoreCapacity(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	edges := []EdgeState{
		{ShareFLOPS: 1e9},
		{ShareFLOPS: 6e9},
	}
	best, evals := c.SelectEdge(dev, 10, 0, edges)
	if best != 1 {
		t.Fatalf("best = %d (evals %+v), want the higher-capacity edge 1", best, evals)
	}
	if len(evals) != 2 {
		t.Fatalf("evals len = %d, want 2", len(evals))
	}
	if evals[1].Objective >= evals[0].Objective {
		t.Errorf("objective of faster edge %.4g not below slower edge %.4g",
			evals[1].Objective, evals[0].Objective)
	}
}

// TestSelectEdgeCongestionPenalty asserts the heartbeat backlog term steers
// selection away from a congested edge even when shares are equal.
func TestSelectEdgeCongestionPenalty(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	edges := []EdgeState{
		{ShareFLOPS: 4e9, QueueSec: 5},
		{ShareFLOPS: 4e9, QueueSec: 0},
	}
	best, evals := c.SelectEdge(dev, 10, 0, edges)
	if best != 1 {
		t.Fatalf("best = %d (evals %+v), want the idle edge 1", best, evals)
	}
	// The penalty only bites when work is actually offloaded.
	if evals[0].Ratio > 0 && evals[0].Objective <= evals[1].Objective {
		t.Errorf("congested edge objective %.4g not above idle edge %.4g",
			evals[0].Objective, evals[1].Objective)
	}
}

// TestSelectEdgeOwnBacklogIsDriftTerm asserts H_{i,e} flows into the
// per-edge drift exactly as the single-edge controller would see it.
func TestSelectEdgeOwnBacklogIsDriftTerm(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	edges := []EdgeState{
		{ShareFLOPS: 4e9, Backlog: 40},
		{ShareFLOPS: 4e9, Backlog: 0},
	}
	best, evals := c.SelectEdge(dev, 10, 0, edges)
	if best != 1 {
		t.Fatalf("best = %d (evals %+v), want the backlog-free edge 1", best, evals)
	}
	// Per-edge evaluation must match the single-edge controller on the
	// same slot: SelectEdge is the same rule, ranged over candidates.
	slot := Slot{Arrivals: 10, State: State{Q: 0, H: 40}, EdgeShareFLOPS: 4e9}
	x := c.Decide(dev, slot)
	if evals[0].Ratio != x {
		t.Errorf("per-edge ratio %.4g != single-edge Decide %.4g", evals[0].Ratio, x)
	}
	if want := c.Eval(dev, slot, x).Objective; evals[0].Objective != want {
		t.Errorf("per-edge objective %.4g != single-edge Eval %.4g (no congestion term)", evals[0].Objective, want)
	}
}

// TestSelectEdgeDeterministicTieBreak asserts equal edges resolve to the
// lowest index, and the empty candidate set returns -1.
func TestSelectEdgeDeterministicTieBreak(t *testing.T) {
	c := testController(t, 1e4)
	dev := testDevice()
	edges := []EdgeState{{ShareFLOPS: 4e9}, {ShareFLOPS: 4e9}, {ShareFLOPS: 4e9}}
	for i := 0; i < 10; i++ {
		best, _ := c.SelectEdge(dev, 10, 2, edges)
		if best != 0 {
			t.Fatalf("tie broke to %d, want 0", best)
		}
	}
	if best, evals := c.SelectEdge(dev, 10, 2, nil); best != -1 || evals != nil {
		t.Errorf("empty candidates: best=%d evals=%v, want -1, nil", best, evals)
	}
}
