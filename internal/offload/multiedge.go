package offload

// Multi-edge extension of the Lyapunov controller: instead of one fixed
// edge, the device evaluates the drift-plus-penalty objective (eq. 19)
// against every candidate edge and routes the slot's offloaded work to the
// minimizer. The per-edge inputs are exactly the paper's signals — the
// device's own backlog H_{i,e} at that edge and its (actual or would-be)
// KKT share of the edge's FLOPS — plus one federation term: the edge-wide
// queued work advertised in heartbeats, charged as extra expected wait per
// offloaded task so congested edges price themselves out even when the
// device holds a generous share there.

// EdgeState is one candidate edge as the selection rule sees it, built from
// the edge's last heartbeat.
type EdgeState struct {
	// ShareFLOPS is the edge compute the device holds there (resident
	// tenants) or would likely hold after registering (non-residents
	// estimate F^e / (tenants+1)).
	ShareFLOPS float64
	// Backlog is H_{i,e}: this device's first-block tasks pending at the
	// edge. Zero for edges the device is not resident on.
	Backlog float64
	// QueueSec is the edge-wide queued work in seconds advertised in the
	// last heartbeat — the congestion penalty term.
	QueueSec float64
}

// EdgeEval is the outcome of evaluating one candidate edge.
type EdgeEval struct {
	// Ratio is the slot's offloading decision x were this edge chosen.
	Ratio float64
	// Objective is the drift-plus-penalty value at that ratio, including
	// the congestion penalty. Lower is better.
	Objective float64
}

// SelectEdge evaluates every candidate edge under this slot's arrivals and
// local queue, and returns the index of the objective-minimizing edge plus
// the per-edge evaluations (so callers can apply switching hysteresis using
// the objective of the edge they currently occupy). Ties break toward the
// lowest index, keeping selection deterministic for equal inputs. With no
// candidates it returns -1 and a nil slice.
func (c *Controller) SelectEdge(dev Device, arrivals, localQ float64, edges []EdgeState) (int, []EdgeEval) {
	if len(edges) == 0 {
		return -1, nil
	}
	evals := make([]EdgeEval, len(edges))
	best := 0
	for i, e := range edges {
		slot := Slot{
			Arrivals:       arrivals,
			State:          State{Q: localQ, H: e.Backlog},
			EdgeShareFLOPS: e.ShareFLOPS,
		}
		x := c.Decide(dev, slot)
		costs := c.Eval(dev, slot, x)
		// Congestion penalty: each of the x*arrivals tasks routed to this
		// edge expects to wait behind QueueSec seconds of other tenants'
		// work, priced with the same V that weights latency in eq. 19.
		obj := costs.Objective + c.cfg.V*e.QueueSec*x*arrivals
		evals[i] = EdgeEval{Ratio: x, Objective: obj}
		if obj < evals[best].Objective {
			best = i
		}
	}
	return best, evals
}
