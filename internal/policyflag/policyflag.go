// Package policyflag registers the -policy-* flag family — the one CLI
// surface of the edge control plane — and assembles a runtime.ControlPolicy
// from the parsed values. Both testbed CLIs (leime-edge serving a live edge,
// leime-loadgen spinning up in-process fleets) register the identical set,
// so a policy probed under synthetic load is spelled exactly the same when
// deployed.
package policyflag

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"leime/internal/runtime"
)

// Values holds the parsed -policy-* flags until Policy assembles them.
type Values struct {
	budget    float64
	deadline  bool
	edf       bool
	windowMax int
	window    float64
	marginal  float64
	adaptive  bool
	p99       float64
	degrade   string
	accuracy  string
}

// Register installs the -policy-* flags on the flag set and returns the
// value holder to read after parsing.
func Register(fs *flag.FlagSet) *Values {
	v := &Values{}
	fs.Float64Var(&v.budget, "policy-budget", 0, "control plane: per-tenant backlog budget in seconds of work; a tenant with share p admits ~budget*p*flops/mu_b block-b tasks (0 = unbounded)")
	fs.BoolVar(&v.deadline, "policy-admit-deadline", false, "control plane: admit a task only if predicted wait+service fits the deadline riding its RPC; doomed tasks are refused at the door")
	fs.BoolVar(&v.edf, "policy-edf", false, "control plane: order executor queues earliest-deadline-first (default: exact FIFO)")
	fs.IntVar(&v.windowMax, "policy-window-max", 0, "batch window: max same-block executions coalesced into one amortized burn (<=1 = batching off; with -policy-adaptive, 0 = default 8)")
	fs.Float64Var(&v.window, "policy-window", 0, "batch window: max seconds the edge holds a task waiting for co-arriving work (0 = batching off; with -policy-adaptive, 0 = default 0.05)")
	fs.Float64Var(&v.marginal, "policy-marginal", 0, "batch window: cost of each extra batched task as a fraction of the first (0 = default 0.25)")
	fs.BoolVar(&v.adaptive, "policy-adaptive", false, "control plane: widen/shrink the batch window from observed arrival rate and p99 instead of holding it static")
	fs.Float64Var(&v.p99, "policy-p99", 0, "control plane: adaptive window latency objective in model seconds; observed p99 beyond it backs the window off (0 = no guard)")
	fs.StringVar(&v.degrade, "policy-degrade", "off", "overload degradation: off, targeted (accuracy-maximizing planner) or blind (every tenant capped to exit 2)")
	fs.StringVar(&v.accuracy, "policy-accuracy", "", "per-exit accuracy profile for the degradation planner as three comma-separated fractions, e.g. 0.80,0.89,0.94 (empty = calibrated default)")
	return v
}

// Policy assembles the control policy, rejecting malformed enum or profile
// spellings.
func (v *Values) Policy() (runtime.ControlPolicy, error) {
	pol := runtime.ControlPolicy{
		MaxBacklogSec:     v.budget,
		DeadlineAdmission: v.deadline,
		EDF:               v.edf,
		Batch:             runtime.BatchConfig{MaxSize: v.windowMax, MaxDelaySec: v.window, Marginal: v.marginal},
		AdaptiveBatch:     v.adaptive,
		TargetP99Sec:      v.p99,
	}
	switch v.degrade {
	case "", "off":
	case "targeted":
		pol.Degrade.Enabled = true
	case "blind":
		pol.Degrade.Enabled = true
		pol.Degrade.Blind = true
	default:
		return pol, fmt.Errorf("-policy-degrade %q: want off, targeted or blind", v.degrade)
	}
	if v.accuracy != "" {
		acc, err := parseAccuracy(v.accuracy)
		if err != nil {
			return pol, err
		}
		pol.Degrade.Accuracy = acc
	}
	return pol, nil
}

// parseAccuracy parses the -policy-accuracy triple.
func parseAccuracy(s string) ([3]float64, error) {
	var acc [3]float64
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return acc, fmt.Errorf("-policy-accuracy %q: want three comma-separated fractions", s)
	}
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f <= 0 || f > 1 {
			return acc, fmt.Errorf("-policy-accuracy %q: entry %d must be a fraction in (0, 1]", s, i+1)
		}
		acc[i] = f
	}
	return acc, nil
}
