// Package scenario loads experiment descriptions from JSON and runs them on
// the simulators. A scenario names an architecture, an environment, a fleet
// of devices (each with its own capability, uplink, arrival process and
// offloading policy), and a horizon — everything `cmd/leime-sim` needs to
// run a custom experiment without writing Go.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"leime"
	"leime/internal/metrics"
	"leime/internal/offload"
	"leime/internal/sim"
	"leime/internal/trace"
)

// DeviceSpec describes one device of the fleet.
type DeviceSpec struct {
	// Count instantiates this spec multiple times (default 1).
	Count int `json:"count,omitempty"`
	// Hardware is a preset name (pi, nano) or empty when FLOPS is given.
	Hardware string `json:"hardware,omitempty"`
	// FLOPS overrides the hardware preset.
	FLOPS float64 `json:"flops,omitempty"`
	// BandwidthMbps is the uplink bandwidth (default 10).
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
	// LatencyMs is the uplink propagation latency (default 20).
	LatencyMs float64 `json:"latency_ms,omitempty"`
	// Rate is the mean task arrivals per slot (default 5).
	Rate float64 `json:"rate,omitempty"`
	// Arrivals selects the process: poisson (default), constant, bursty,
	// diurnal, or replay (requires Trace).
	Arrivals string `json:"arrivals,omitempty"`
	// Trace is the per-slot arrival counts replayed when Arrivals is
	// "replay"; record one with trace.Record for seed-independent,
	// cross-machine-reproducible workloads.
	Trace []int `json:"trace,omitempty"`
	// Policy selects offloading: leime (default), leime-centralized,
	// device-only, edge-only, cap, or fixed:<ratio>.
	Policy string `json:"policy,omitempty"`
}

// Scenario is a complete experiment description.
type Scenario struct {
	// Name labels the run.
	Name string `json:"name"`
	// Arch is the DNN profile (default inception-v3).
	Arch string `json:"arch,omitempty"`
	// EdgeShare scales the edge capability in (0, 1] (default 1).
	EdgeShare float64 `json:"edge_share,omitempty"`
	// Devices is the fleet (at least one spec).
	Devices []DeviceSpec `json:"devices"`
	// Slots is the horizon (default 300).
	Slots int `json:"slots,omitempty"`
	// Simulator selects "slot" (default) or "event".
	Simulator string `json:"simulator,omitempty"`
	// DeadlineSec, when positive, reports the fraction of tasks missing the
	// latency budget (event simulator only).
	DeadlineSec float64 `json:"deadline_s,omitempty"`
	// Seed fixes the randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// Load parses a scenario from JSON.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate applies defaults and reports configuration errors.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		s.Name = "unnamed"
	}
	if s.Arch == "" {
		s.Arch = "inception-v3"
	}
	if s.EdgeShare == 0 {
		s.EdgeShare = 1
	}
	if s.EdgeShare < 0 || s.EdgeShare > 1 {
		return fmt.Errorf("scenario: edge_share %v out of (0, 1]", s.EdgeShare)
	}
	if len(s.Devices) == 0 {
		return fmt.Errorf("scenario: at least one device spec required")
	}
	if s.Slots == 0 {
		s.Slots = 300
	}
	if s.Slots < 10 {
		return fmt.Errorf("scenario: slots %d too short (need >= 10)", s.Slots)
	}
	switch s.Simulator {
	case "":
		s.Simulator = "slot"
	case "slot", "event":
	default:
		return fmt.Errorf("scenario: unknown simulator %q (want slot or event)", s.Simulator)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.DeadlineSec < 0 {
		return fmt.Errorf("scenario: deadline_s %v must be non-negative", s.DeadlineSec)
	}
	if s.DeadlineSec > 0 && s.Simulator != "event" {
		return fmt.Errorf("scenario: deadline_s requires the event simulator")
	}
	for i := range s.Devices {
		if err := s.Devices[i].validate(); err != nil {
			return fmt.Errorf("scenario: device %d: %w", i, err)
		}
	}
	return nil
}

func (d *DeviceSpec) validate() error {
	if d.Count == 0 {
		d.Count = 1
	}
	if d.Count < 0 {
		return fmt.Errorf("count %d must be positive", d.Count)
	}
	if d.FLOPS == 0 {
		switch d.Hardware {
		case "", "pi":
			d.FLOPS = leime.RaspberryPi3B.FLOPS
		case "nano":
			d.FLOPS = leime.JetsonNano.FLOPS
		default:
			return fmt.Errorf("unknown hardware %q (want pi or nano)", d.Hardware)
		}
	}
	if d.FLOPS < 0 {
		return fmt.Errorf("flops %v must be positive", d.FLOPS)
	}
	if d.BandwidthMbps == 0 {
		d.BandwidthMbps = 10
	}
	if d.LatencyMs == 0 {
		d.LatencyMs = 20
	}
	if d.BandwidthMbps < 0 || d.LatencyMs < 0 {
		return fmt.Errorf("bandwidth (%v) and latency (%v) must be positive", d.BandwidthMbps, d.LatencyMs)
	}
	if d.Rate == 0 {
		d.Rate = 5
	}
	if d.Rate < 0 {
		return fmt.Errorf("rate %v must be positive", d.Rate)
	}
	switch d.Arrivals {
	case "":
		d.Arrivals = "poisson"
	case "poisson", "constant", "bursty", "diurnal":
	case "replay":
		if _, err := trace.NewRecorded(d.Trace); err != nil {
			return fmt.Errorf("replay arrivals: %w", err)
		}
	default:
		return fmt.Errorf("unknown arrivals %q (want poisson, constant, bursty, diurnal or replay)", d.Arrivals)
	}
	if d.Policy == "" {
		d.Policy = "leime"
	}
	if _, err := parsePolicy(d.Policy); err != nil {
		return err
	}
	return nil
}

func parsePolicy(name string) (offload.Policy, error) {
	switch name {
	case "leime":
		return offload.Lyapunov(), nil
	case "leime-centralized":
		return offload.LyapunovCentralized(), nil
	case "device-only":
		return offload.DeviceOnly(), nil
	case "edge-only":
		return offload.EdgeOnly(), nil
	case "cap":
		return offload.CapabilityBased(), nil
	}
	var ratio float64
	if n, err := fmt.Sscanf(name, "fixed:%f", &ratio); err == nil && n == 1 {
		if ratio < 0 || ratio > 1 {
			return offload.Policy{}, fmt.Errorf("fixed ratio %v out of [0, 1]", ratio)
		}
		return offload.FixedRatio(ratio), nil
	}
	return offload.Policy{}, fmt.Errorf("unknown policy %q", name)
}

// Result is the outcome of running a scenario.
type Result struct {
	// Scenario names the run.
	Scenario string
	// MeanTCT is the demand-weighted mean completion time in seconds.
	MeanTCT float64
	// P99TCT is the 99th percentile (event simulator only; 0 otherwise).
	P99TCT float64
	// Devices is the instantiated fleet size.
	Devices int
	// Tasks is the number of tasks generated (event simulator) or expected
	// (slot model).
	Tasks float64
	// MeanRatio is the mean offloading decision across devices and slots.
	MeanRatio float64
	// FinalBacklog is the residual queue length (slot model only).
	FinalBacklog float64
	// TCT carries the full completion-time distribution (event simulator
	// only; nil otherwise).
	TCT *metrics.Summary
	// DeadlineMissRate is the fraction of tasks exceeding the configured
	// deadline (event simulator with deadline_s set; 0 otherwise).
	DeadlineMissRate float64
}

// Run builds the LEIME system for the scenario and executes it.
func (s *Scenario) Run() (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	env := leime.TestbedEnv(leime.RaspberryPi3B).WithEdgeLoad(s.EdgeShare)
	sys, err := leime.Build(leime.Options{Arch: s.Arch, Env: env, Seed: s.Seed})
	if err != nil {
		return nil, err
	}

	var specs []sim.DeviceSpec
	for i := range s.Devices {
		d := &s.Devices[i]
		pol, err := parsePolicy(d.Policy)
		if err != nil {
			return nil, err
		}
		for c := 0; c < d.Count; c++ {
			idx := len(specs)
			var arr trace.Process
			switch d.Arrivals {
			case "constant":
				arr = &trace.Constant{PerSlot: int(d.Rate + 0.5)}
			case "bursty":
				b, err := trace.NewBursty(d.Rate/2, d.Rate*3, 0.05, 0.2, s.Seed+int64(idx)*31)
				if err != nil {
					return nil, err
				}
				arr = b
			case "diurnal":
				dr, err := trace.NewDiurnal(d.Rate, 0.7, 100, s.Seed+int64(idx)*31)
				if err != nil {
					return nil, err
				}
				arr = dr
			case "replay":
				rec, err := trace.NewRecorded(d.Trace)
				if err != nil {
					return nil, err
				}
				arr = rec
			default:
				p, err := trace.NewPoisson(d.Rate, s.Seed+int64(idx)*31)
				if err != nil {
					return nil, err
				}
				arr = p
			}
			polCopy := pol
			specs = append(specs, sim.DeviceSpec{
				Device: offload.Device{
					FLOPS:        d.FLOPS,
					BandwidthBps: leime.Mbps(d.BandwidthMbps),
					LatencySec:   d.LatencyMs / 1000,
					ArrivalMean:  d.Rate,
				},
				Arrivals: arr,
				Policy:   &polCopy,
			})
		}
	}

	out := &Result{Scenario: s.Name, Devices: len(specs)}
	switch s.Simulator {
	case "event":
		res, err := sim.RunEvents(sim.EventConfig{
			Model:       sys.Params(),
			Devices:     specs,
			EdgeFLOPS:   env.EdgeFLOPS,
			CloudFLOPS:  env.CloudFLOPS,
			EdgeCloud:   env.EdgeCloud,
			TauSec:      1,
			V:           1e4,
			Slots:       s.Slots,
			WarmupSlots: s.Slots / 10,
			DeadlineSec: s.DeadlineSec,
			Seed:        s.Seed,
		})
		if err != nil {
			return nil, err
		}
		if s.DeadlineSec > 0 && res.TCT.Count() > 0 {
			out.DeadlineMissRate = float64(res.DeadlineMisses) / float64(res.TCT.Count())
		}
		out.MeanTCT = res.TCT.Mean()
		out.P99TCT = res.TCT.Percentile(99)
		out.Tasks = float64(res.Completed)
		out.MeanRatio = res.Ratio.Mean()
		out.TCT = &res.TCT
	default:
		res, err := sim.RunSlots(sim.SlotConfig{
			Model:       sys.Params(),
			Devices:     specs,
			EdgeFLOPS:   env.EdgeFLOPS,
			CloudFLOPS:  env.CloudFLOPS,
			EdgeCloud:   env.EdgeCloud,
			TauSec:      1,
			V:           1e4,
			Slots:       s.Slots,
			WarmupSlots: s.Slots / 10,
			Seed:        s.Seed,
		})
		if err != nil {
			return nil, err
		}
		out.MeanTCT = res.MeanTCT
		out.FinalBacklog = res.FinalBacklog
		var ratio float64
		for _, d := range res.PerDevice {
			ratio += d.Ratio.Mean()
			out.Tasks += d.Arrivals
		}
		out.MeanRatio = ratio / float64(len(res.PerDevice))
	}
	return out, nil
}
