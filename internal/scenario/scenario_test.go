package scenario

import (
	"strings"
	"testing"

	"leime/internal/offload"
)

func validDevice() offload.Device {
	return offload.Device{FLOPS: 1e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 5}
}

func validSlot() offload.Slot {
	return offload.Slot{Arrivals: 5, EdgeShareFLOPS: 1e10}
}

const validJSON = `{
  "name": "test",
  "arch": "squeezenet-1.0",
  "devices": [
    {"count": 2, "hardware": "pi", "rate": 4},
    {"hardware": "nano", "rate": 8, "policy": "cap"}
  ],
  "slots": 60
}`

func TestLoadValid(t *testing.T) {
	s, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if s.Name != "test" || s.Arch != "squeezenet-1.0" {
		t.Errorf("header wrong: %+v", s)
	}
	if s.Simulator != "slot" {
		t.Errorf("default simulator = %q", s.Simulator)
	}
	if s.Devices[0].BandwidthMbps != 10 || s.Devices[0].LatencyMs != 20 {
		t.Errorf("device defaults not applied: %+v", s.Devices[0])
	}
	if s.Devices[0].Policy != "leime" {
		t.Errorf("default policy = %q", s.Devices[0].Policy)
	}
}

func TestLoadRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name, json string
	}{
		{"syntax", `{`},
		{"unknown field", `{"name":"x","devicez":[]}`},
		{"no devices", `{"name":"x","devices":[]}`},
		{"bad hardware", `{"name":"x","devices":[{"hardware":"gpu"}]}`},
		{"bad policy", `{"name":"x","devices":[{"policy":"magic"}]}`},
		{"bad fixed ratio", `{"name":"x","devices":[{"policy":"fixed:1.5"}]}`},
		{"bad simulator", `{"name":"x","simulator":"analog","devices":[{}]}`},
		{"bad arrivals", `{"name":"x","devices":[{"arrivals":"uniform"}]}`},
		{"short horizon", `{"name":"x","slots":3,"devices":[{}]}`},
		{"bad edge share", `{"name":"x","edge_share":2,"devices":[{}]}`},
		{"negative rate", `{"name":"x","devices":[{"rate":-1}]}`},
		{"negative count", `{"name":"x","devices":[{"count":-2}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(c.json)); err == nil {
				t.Errorf("accepted: %s", c.json)
			}
		})
	}
}

func TestRunSlotScenario(t *testing.T) {
	s, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Devices != 3 {
		t.Errorf("Devices = %d, want 3 (count expansion)", res.Devices)
	}
	if res.MeanTCT <= 0 {
		t.Errorf("MeanTCT = %v", res.MeanTCT)
	}
	if res.Tasks <= 0 {
		t.Errorf("Tasks = %v", res.Tasks)
	}
}

func TestRunEventScenario(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "name": "event-test",
	  "devices": [{"hardware": "pi", "rate": 4, "arrivals": "constant"}],
	  "slots": 60,
	  "simulator": "event"
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.P99TCT <= 0 || res.P99TCT < res.MeanTCT {
		t.Errorf("P99 = %v vs mean %v", res.P99TCT, res.MeanTCT)
	}
	if res.Tasks != 4*60 {
		t.Errorf("Tasks = %v, want 240 (constant arrivals)", res.Tasks)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	load := func() *Scenario {
		s, err := Load(strings.NewReader(validJSON))
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		return s
	}
	a, err := load().Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := load().Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.MeanTCT != b.MeanTCT {
		t.Errorf("same scenario diverged: %v vs %v", a.MeanTCT, b.MeanTCT)
	}
}

func TestFixedPolicyParsing(t *testing.T) {
	p, err := parsePolicy("fixed:0.35")
	if err != nil {
		t.Fatalf("parsePolicy: %v", err)
	}
	if got := p.Decide(nil, validDevice(), validSlot()); got != 0.35 {
		t.Errorf("fixed policy returned %v", got)
	}
	for _, name := range []string{"leime", "leime-centralized", "device-only", "edge-only", "cap"} {
		if _, err := parsePolicy(name); err != nil {
			t.Errorf("parsePolicy(%q): %v", name, err)
		}
	}
}

func TestDeadlineScenario(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "name": "deadline",
	  "devices": [{"hardware": "pi", "rate": 4}],
	  "slots": 60,
	  "simulator": "event",
	  "deadline_s": 0.01
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.DeadlineMissRate <= 0 || res.DeadlineMissRate > 1 {
		t.Errorf("brutal 10ms deadline should miss: rate %v", res.DeadlineMissRate)
	}
	if _, err := Load(strings.NewReader(`{"name":"x","devices":[{}],"deadline_s":0.5}`)); err == nil {
		t.Error("deadline without event simulator accepted")
	}
	if _, err := Load(strings.NewReader(`{"name":"x","devices":[{}],"simulator":"event","deadline_s":-1}`)); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestReplayScenario(t *testing.T) {
	s, err := Load(strings.NewReader(`{
	  "name": "replay",
	  "devices": [{"hardware": "pi", "arrivals": "replay", "trace": [2,0,5,1], "rate": 2}],
	  "slots": 40,
	  "simulator": "event"
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The 4-slot trace cycles over 40 slots: exactly 10 * (2+0+5+1) tasks.
	if res.Tasks != 80 {
		t.Errorf("Tasks = %v, want 80 (replayed trace)", res.Tasks)
	}
	if _, err := Load(strings.NewReader(`{"name":"x","devices":[{"arrivals":"replay"}]}`)); err == nil {
		t.Error("replay without trace accepted")
	}
	if _, err := Load(strings.NewReader(`{"name":"x","devices":[{"arrivals":"replay","trace":[-1]}]}`)); err == nil {
		t.Error("negative trace accepted")
	}
}
