package scenario

import (
	"strings"
	"testing"
)

// FuzzLoad feeds arbitrary JSON to the scenario loader: it must never panic,
// and anything it accepts must validate cleanly a second time (idempotent
// defaulting).
func FuzzLoad(f *testing.F) {
	f.Add(validJSON)
	f.Add(`{}`)
	f.Add(`{"name":"x","devices":[{}]}`)
	f.Add(`{"devices":[{"count":1000000}]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"name":"x","devices":[{"policy":"fixed:0.5"}],"simulator":"event"}`)

	f.Fuzz(func(t *testing.T, data string) {
		s, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", err)
		}
		if len(s.Devices) == 0 || s.Slots < 10 {
			t.Fatalf("accepted scenario with bad defaults: %+v", s)
		}
	})
}
