// Package fleet is the multi-edge control plane: a membership registry that
// tracks a set of edge servers through probe-driven heartbeats and exposes a
// consistent, deterministic view of which edges are alive and which are
// *ready* — serving a warm KKT allocation for at least one tenant.
//
// The registry is deliberately transport-agnostic: callers inject a Probe
// that performs one heartbeat against one address (the runtime wires it to a
// HeartbeatReq over the binary rpc protocol; tests script it). State
// advances only inside Poll, which probes members synchronously in sorted
// address order, so a scripted probe sequence replays the exact same
// transition sequence every run — the registry itself holds no randomness.
//
// Lifecycle of a member:
//
//	Join ─▶ Joined ──heartbeat ok, ready──▶ Ready
//	           ▲  ╲                          │
//	           │   ╲─heartbeat ok, !ready──◀─┘
//	           │                             │
//	           └──heartbeat ok───── Down ◀───┘ (SuspectAfter misses)
//
// Leave removes the member outright. A Down member keeps being probed and
// rejoins as Joined/Ready on its next successful heartbeat — edges restart.
package fleet

import (
	"context"
	"sort"
	"sync"
	"time"
)

// State is a member's position in the registry lifecycle.
type State int

// Registry lifecycle states, in join order.
const (
	// StateJoined means the edge is known and answering heartbeats but has
	// no warm allocation yet (no resident tenants). It may be *selected* —
	// registration is control-plane traffic that warms it — but must not
	// receive task traffic.
	StateJoined State = iota
	// StateReady means the edge answered its last heartbeat and reports a
	// warm KKT allocation: it is eligible for task traffic and for stolen
	// work.
	StateReady
	// StateDown means the edge missed SuspectAfter consecutive heartbeats;
	// it receives no traffic until a heartbeat succeeds again.
	StateDown
)

// String names the state for logs and metrics.
func (s State) String() string {
	switch s {
	case StateJoined:
		return "joined"
	case StateReady:
		return "ready"
	case StateDown:
		return "down"
	default:
		return "unknown"
	}
}

// Health is what an edge advertises in one heartbeat: the inputs to both
// readiness gating and the device-side Lyapunov edge selection.
type Health struct {
	// Ready reports whether the edge's KKT allocation is warm (it has at
	// least one resident tenant with a solved share).
	Ready bool
	// FLOPS is the edge's total capability F^e.
	FLOPS float64
	// Tenants is the number of resident devices.
	Tenants int
	// BacklogSec is the edge-wide queued work in seconds across all tenant
	// executors (and the steal executor): the congestion penalty the
	// selection drift term charges for routing there.
	BacklogSec float64
	// Saturated reports whether any tenant executor is at its admission
	// budget; saturated edges are skipped as steal targets.
	Saturated bool
}

// Member is one edge's registry entry.
type Member struct {
	// Addr is the edge's wire address (the registry key).
	Addr string
	// State is the lifecycle state after the last Poll.
	State State
	// Health is the last successfully advertised health; stale while Down.
	Health Health
	// Misses counts consecutive failed heartbeats.
	Misses int
	// Beats counts successful heartbeats over the member's lifetime.
	Beats uint64
}

// Probe performs one heartbeat against one edge address and returns its
// advertised health. Implementations must honour the context deadline.
type Probe func(ctx context.Context, addr string) (Health, error)

// Config tunes a Registry. The zero value uses the documented defaults.
type Config struct {
	// Every is the heartbeat cadence of the Run loop (default 500ms). Poll
	// ignores it — callers own their own cadence there.
	Every time.Duration
	// SuspectAfter is how many consecutive missed heartbeats demote a
	// member to StateDown (default 2).
	SuspectAfter int
	// ProbeTimeout bounds each probe issued by the Run loop (default:
	// Every). Poll uses the caller's context instead.
	ProbeTimeout time.Duration
	// OnChange, when non-nil, observes every state transition. It is
	// called without the registry lock held, in Poll's deterministic
	// member order.
	OnChange func(addr string, from, to State)
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.Every
	}
	return c
}

// Registry tracks edge fleet membership. All methods are safe for
// concurrent use; state only advances inside Poll (or the Run loop, which
// calls Poll).
type Registry struct {
	cfg   Config
	probe Probe

	mu      sync.Mutex
	members map[string]*Member
}

// New builds a registry over the given probe. Members are added with Join.
func New(cfg Config, probe Probe) *Registry {
	return &Registry{cfg: cfg.withDefaults(), probe: probe, members: make(map[string]*Member)}
}

// Join adds an edge in StateJoined. Joining an existing member is a no-op —
// re-registration keeps the member's observed state.
func (r *Registry) Join(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[addr]; ok {
		return
	}
	r.members[addr] = &Member{Addr: addr, State: StateJoined}
}

// Leave removes an edge from the registry; unknown addresses are a no-op.
func (r *Registry) Leave(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.members, addr)
}

// Poll runs one synchronous heartbeat round: every member is probed once,
// in sorted address order, and its state advanced from the outcome. The
// caller's context bounds the whole round (each probe inherits it).
func (r *Registry) Poll(ctx context.Context) {
	type change struct {
		addr     string
		from, to State
	}
	var changes []change
	for _, addr := range r.addrs() {
		h, err := r.probe(ctx, addr)
		r.mu.Lock()
		m, ok := r.members[addr]
		if !ok { // left mid-round
			r.mu.Unlock()
			continue
		}
		from := m.State
		if err != nil {
			m.Misses++
			if m.Misses >= r.cfg.SuspectAfter {
				m.State = StateDown
			}
		} else {
			m.Misses = 0
			m.Beats++
			m.Health = h
			if h.Ready {
				m.State = StateReady
			} else {
				m.State = StateJoined
			}
		}
		to := m.State
		r.mu.Unlock()
		if to != from {
			changes = append(changes, change{addr: addr, from: from, to: to})
		}
	}
	if r.cfg.OnChange != nil {
		for _, c := range changes {
			r.cfg.OnChange(c.addr, c.from, c.to)
		}
	}
}

// Run polls on the configured cadence until the context ends, with one
// immediate round up front. Each round is bounded by ProbeTimeout.
func (r *Registry) Run(ctx context.Context) {
	tick := time.NewTicker(r.cfg.Every)
	defer tick.Stop()
	for {
		pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
		r.Poll(pctx)
		cancel()
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// addrs snapshots member addresses in sorted order.
func (r *Registry) addrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for addr := range r.members {
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Member returns one member's current entry by address.
func (r *Registry) Member(addr string) (Member, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[addr]
	if !ok {
		return Member{}, false
	}
	return *m, true
}

// Snapshot returns every member sorted by address.
func (r *Registry) Snapshot() []Member {
	out := make([]Member, 0)
	for _, addr := range r.addrs() {
		if m, ok := r.Member(addr); ok {
			out = append(out, m)
		}
	}
	return out
}

// Ready returns the members eligible for task traffic (StateReady), sorted
// by address.
func (r *Registry) Ready() []Member {
	var out []Member
	for _, m := range r.Snapshot() {
		if m.State == StateReady {
			out = append(out, m)
		}
	}
	return out
}

// Alive returns the members answering heartbeats (StateJoined or
// StateReady), sorted by address. Alive-but-not-ready edges may be selected
// by devices — registering there warms them — but get no task traffic.
func (r *Registry) Alive() []Member {
	var out []Member
	for _, m := range r.Snapshot() {
		if m.State == StateJoined || m.State == StateReady {
			out = append(out, m)
		}
	}
	return out
}
