package fleet

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// scriptedProbe replays per-address outcome sequences: each Poll consumes
// the next outcome for every member, making transition tests fully
// deterministic.
type scriptedProbe struct {
	outcomes map[string][]probeOutcome
	calls    []string
}

type probeOutcome struct {
	h   Health
	err error
}

func (p *scriptedProbe) probe(_ context.Context, addr string) (Health, error) {
	p.calls = append(p.calls, addr)
	q := p.outcomes[addr]
	if len(q) == 0 {
		return Health{}, errors.New("script exhausted")
	}
	out := q[0]
	p.outcomes[addr] = q[1:]
	return out.h, out.err
}

func ready(edgeFLOPS float64, tenants int) probeOutcome {
	return probeOutcome{h: Health{Ready: true, FLOPS: edgeFLOPS, Tenants: tenants}}
}

func joined() probeOutcome { return probeOutcome{h: Health{Ready: false}} }

func miss() probeOutcome { return probeOutcome{err: errors.New("unreachable")} }

// TestRegistryLifecycle drives one member through the full state machine:
// joined → ready → (one miss survives) → down after SuspectAfter misses →
// ready again on recovery.
func TestRegistryLifecycle(t *testing.T) {
	p := &scriptedProbe{outcomes: map[string][]probeOutcome{
		"edge-a": {joined(), ready(4e9, 1), miss(), miss(), miss(), ready(4e9, 2)},
	}}
	var transitions []string
	r := New(Config{SuspectAfter: 2, OnChange: func(addr string, from, to State) {
		transitions = append(transitions, fmt.Sprintf("%s:%s->%s", addr, from, to))
	}}, p.probe)
	r.Join("edge-a")

	m, ok := r.Member("edge-a")
	if !ok || m.State != StateJoined {
		t.Fatalf("after Join: member=%+v ok=%v, want StateJoined", m, ok)
	}

	wantStates := []State{
		StateJoined, // heartbeat ok, not ready
		StateReady,  // allocation warm
		StateReady,  // one miss: below SuspectAfter
		StateDown,   // second consecutive miss
		StateDown,   // still down
		StateReady,  // recovered
	}
	for i, want := range wantStates {
		r.Poll(context.Background())
		m, _ := r.Member("edge-a")
		if m.State != want {
			t.Fatalf("poll %d: state %v, want %v", i, m.State, want)
		}
	}
	m, _ = r.Member("edge-a")
	if m.Beats != 3 {
		t.Errorf("beats = %d, want 3", m.Beats)
	}
	if m.Health.Tenants != 2 {
		t.Errorf("health not updated on recovery: %+v", m.Health)
	}
	wantTransitions := []string{
		"edge-a:joined->ready",
		"edge-a:ready->down",
		"edge-a:down->ready",
	}
	if !reflect.DeepEqual(transitions, wantTransitions) {
		t.Errorf("transitions = %v, want %v", transitions, wantTransitions)
	}
}

// TestRegistryDeterministicOrder asserts members are probed in sorted
// address order regardless of join order, so identical scripts replay
// identical transition sequences.
func TestRegistryDeterministicOrder(t *testing.T) {
	p := &scriptedProbe{outcomes: map[string][]probeOutcome{
		"edge-c": {ready(1, 1), ready(1, 1)},
		"edge-a": {ready(1, 1), ready(1, 1)},
		"edge-b": {miss(), miss()},
	}}
	r := New(Config{}, p.probe)
	r.Join("edge-c")
	r.Join("edge-b")
	r.Join("edge-a")
	r.Poll(context.Background())
	r.Poll(context.Background())
	want := []string{"edge-a", "edge-b", "edge-c", "edge-a", "edge-b", "edge-c"}
	if !reflect.DeepEqual(p.calls, want) {
		t.Errorf("probe order = %v, want %v", p.calls, want)
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Addr != "edge-a" || snap[2].Addr != "edge-c" {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
}

// TestRegistryReadyAliveLeave covers the membership views and removal.
func TestRegistryReadyAliveLeave(t *testing.T) {
	p := &scriptedProbe{outcomes: map[string][]probeOutcome{
		"edge-a": {ready(1, 1)},
		"edge-b": {joined()},
		"edge-c": {miss()},
	}}
	r := New(Config{SuspectAfter: 1}, p.probe)
	for _, a := range []string{"edge-a", "edge-b", "edge-c"} {
		r.Join(a)
	}
	r.Join("edge-a") // idempotent
	r.Poll(context.Background())

	if got := r.Ready(); len(got) != 1 || got[0].Addr != "edge-a" {
		t.Errorf("Ready() = %+v, want [edge-a]", got)
	}
	alive := r.Alive()
	if len(alive) != 2 || alive[0].Addr != "edge-a" || alive[1].Addr != "edge-b" {
		t.Errorf("Alive() = %+v, want [edge-a edge-b]", alive)
	}

	r.Leave("edge-a")
	if _, ok := r.Member("edge-a"); ok {
		t.Error("edge-a still present after Leave")
	}
	if got := r.Ready(); len(got) != 0 {
		t.Errorf("Ready() after Leave = %+v, want empty", got)
	}
	r.Leave("edge-a") // idempotent
}

// TestRegistryRunStopsOnCancel asserts the Run loop exits once its context
// ends (after the mandatory initial round).
func TestRegistryRunStopsOnCancel(t *testing.T) {
	p := &scriptedProbe{outcomes: map[string][]probeOutcome{"edge-a": {ready(1, 1)}}}
	r := New(Config{}, p.probe)
	r.Join("edge-a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		r.Run(ctx)
		close(done)
	}()
	<-done
	if m, _ := r.Member("edge-a"); m.Beats != 1 {
		t.Errorf("beats = %d, want exactly the initial round", m.Beats)
	}
}
