package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"leime/internal/netem"
)

type echoReq struct {
	Text string
	N    int
}

type echoResp struct {
	Text string
	N    int
}

type slowReq struct {
	Delay time.Duration
	Tag   int
}

type slowResp struct {
	Tag int
}

func init() {
	Register(echoReq{})
	Register(echoResp{})
	Register(slowReq{})
	Register(slowResp{})
}

func startEcho(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) {
		switch req := body.(type) {
		case echoReq:
			if req.Text == "boom" {
				return nil, errors.New("requested failure")
			}
			return echoResp{Text: req.Text, N: req.N * 2}, nil
		case slowReq:
			time.Sleep(req.Delay)
			return slowResp{Tag: req.Tag}, nil
		default:
			return nil, fmt.Errorf("unknown request %T", body)
		}
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	got, err := c.Call(context.Background(), echoReq{Text: "hi", N: 21})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	resp, ok := got.(echoResp)
	if !ok {
		t.Fatalf("reply type %T", got)
	}
	if resp.Text != "hi" || resp.N != 42 {
		t.Errorf("reply = %+v", resp)
	}
}

func TestCallRemoteError(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), echoReq{Text: "boom"}); err == nil {
		t.Error("expected remote error")
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Randomize completion order with varying delays.
			delay := time.Duration(i%7) * time.Millisecond
			got, err := c.Call(context.Background(), slowReq{Delay: delay, Tag: i})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if resp := got.(slowResp); resp.Tag != i {
				t.Errorf("call %d got reply for %d", i, resp.Tag)
			}
		}(i)
	}
	wg.Wait()
}

func TestMultipleClients(t *testing.T) {
	s := startEcho(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), nil)
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			got, err := c.Call(context.Background(), echoReq{N: i})
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			if got.(echoResp).N != i*2 {
				t.Errorf("client %d: wrong reply %+v", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestCallAfterClose(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Call(context.Background(), echoReq{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), slowReq{Delay: 5 * time.Second})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("call succeeded after server close")
		}
	case <-time.After(2 * time.Second):
		t.Error("call not unblocked by server close")
	}
}

func TestShapedClientSlowsLargeMessages(t *testing.T) {
	s := startEcho(t)
	shaper, err := netem.NewShaper(netem.Link{BandwidthBps: 8e6}, 3) // 1 MB/s
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	c, err := Dial(s.Addr(), shaper)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	big := echoReq{Text: string(make([]byte, 200_000))} // ~200 KB => >= ~200 ms
	start := time.Now()
	if _, err := c.Call(context.Background(), big); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("shaped call too fast: %v", elapsed)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Error("expected dial error")
	}
}

func TestServeNilHandler(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := ServeMeta("127.0.0.1:0", nil); err == nil {
		t.Error("nil meta handler accepted")
	}
}

type metaReq struct {
	Tag int
}

type metaResp struct {
	Tag     int
	TraceID uint64
	SpanID  uint64
}

func init() {
	Register(metaReq{})
	Register(metaResp{})
}

// startMetaEcho serves a handler that reflects the envelope metadata back to
// the caller, proving the trace fields round-trip through gob.
func startMetaEcho(t *testing.T, delay time.Duration) *Server {
	t.Helper()
	s, err := ServeMeta("127.0.0.1:0", func(_ context.Context, meta Meta, body any) (any, error) {
		req, ok := body.(metaReq)
		if !ok {
			return nil, fmt.Errorf("unknown request %T", body)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		return metaResp{Tag: req.Tag, TraceID: meta.TraceID, SpanID: meta.SpanID}, nil
	})
	if err != nil {
		t.Fatalf("ServeMeta: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestMetaRoundTrip(t *testing.T) {
	s := startMetaEcho(t, 0)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	got, err := c.CallMeta(context.Background(), Meta{TraceID: 0xabc, SpanID: 0xdef}, metaReq{Tag: 1})
	if err != nil {
		t.Fatalf("CallMeta: %v", err)
	}
	resp := got.(metaResp)
	if resp.TraceID != 0xabc || resp.SpanID != 0xdef {
		t.Errorf("metadata did not round-trip: %+v", resp)
	}
	// Plain Call sends the zero (untraced) metadata.
	got, err = c.Call(context.Background(), metaReq{Tag: 2})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	resp = got.(metaResp)
	if resp.TraceID != 0 || resp.SpanID != 0 {
		t.Errorf("untraced call leaked metadata: %+v", resp)
	}
	if (Meta{}).Valid() || !(Meta{TraceID: 1}).Valid() {
		t.Error("Meta.Valid wrong")
	}
}

// TestGracefulShutdownWithInFlightMeta closes the server while many
// metadata-carrying calls are in flight. Every call must either complete
// with its own correlated metadata echoed back or fail cleanly with a
// connection error — no mixed-up replies, no hangs, no races (the test is
// run under -race in tier-1).
func TestGracefulShutdownWithInFlightMeta(t *testing.T) {
	s := startMetaEcho(t, 20*time.Millisecond)
	const clients = 4
	const callsPerClient = 25
	var wg sync.WaitGroup
	var completed, failed int64
	var mu sync.Mutex
	for ci := 0; ci < clients; ci++ {
		c, err := Dial(s.Addr(), nil)
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer c.Close()
		for i := 0; i < callsPerClient; i++ {
			wg.Add(1)
			go func(ci, i int) {
				defer wg.Done()
				tag := ci*1000 + i
				meta := Meta{TraceID: uint64(tag) + 1, SpanID: uint64(tag) + 2}
				got, err := c.CallMeta(context.Background(), meta, metaReq{Tag: tag})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					failed++
					return
				}
				resp := got.(metaResp)
				if resp.Tag != tag || resp.TraceID != meta.TraceID || resp.SpanID != meta.SpanID {
					t.Errorf("call %d got mismatched reply %+v", tag, resp)
				}
				completed++
			}(ci, i)
		}
	}
	// Let a first wave reach the server, then close mid-flight. Server
	// Close waits for in-flight handlers, so accepted requests finish.
	time.Sleep(30 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if completed+failed != clients*callsPerClient {
		t.Errorf("accounting: %d completed + %d failed != %d", completed, failed, clients*callsPerClient)
	}
	if completed == 0 {
		t.Error("no call completed before shutdown; timing too tight to exercise the drain")
	}
}

// TestCloseIdempotentUnderConcurrency hammers Close from several goroutines
// while calls are active; every Close must return without panic or deadlock.
func TestCloseIdempotentUnderConcurrency(t *testing.T) {
	s := startMetaEcho(t, 5*time.Millisecond)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = c.CallMeta(context.Background(), Meta{TraceID: uint64(i + 1)}, metaReq{Tag: i})
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Close()
		}()
	}
	wg.Wait()
}
