package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"leime/internal/netem"
)

type echoReq struct {
	Text string
	N    int
}

type echoResp struct {
	Text string
	N    int
}

type slowReq struct {
	Delay time.Duration
	Tag   int
}

type slowResp struct {
	Tag int
}

func init() {
	Register(echoReq{})
	Register(echoResp{})
	Register(slowReq{})
	Register(slowResp{})
}

func startEcho(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", func(body any) (any, error) {
		switch req := body.(type) {
		case echoReq:
			if req.Text == "boom" {
				return nil, errors.New("requested failure")
			}
			return echoResp{Text: req.Text, N: req.N * 2}, nil
		case slowReq:
			time.Sleep(req.Delay)
			return slowResp{Tag: req.Tag}, nil
		default:
			return nil, fmt.Errorf("unknown request %T", body)
		}
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	got, err := c.Call(echoReq{Text: "hi", N: 21})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	resp, ok := got.(echoResp)
	if !ok {
		t.Fatalf("reply type %T", got)
	}
	if resp.Text != "hi" || resp.N != 42 {
		t.Errorf("reply = %+v", resp)
	}
}

func TestCallRemoteError(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Call(echoReq{Text: "boom"}); err == nil {
		t.Error("expected remote error")
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Randomize completion order with varying delays.
			delay := time.Duration(i%7) * time.Millisecond
			got, err := c.Call(slowReq{Delay: delay, Tag: i})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if resp := got.(slowResp); resp.Tag != i {
				t.Errorf("call %d got reply for %d", i, resp.Tag)
			}
		}(i)
	}
	wg.Wait()
}

func TestMultipleClients(t *testing.T) {
	s := startEcho(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(s.Addr(), nil)
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			got, err := c.Call(echoReq{N: i})
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			if got.(echoResp).N != i*2 {
				t.Errorf("client %d: wrong reply %+v", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestCallAfterClose(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Call(echoReq{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after close = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(slowReq{Delay: 5 * time.Second})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("call succeeded after server close")
		}
	case <-time.After(2 * time.Second):
		t.Error("call not unblocked by server close")
	}
}

func TestShapedClientSlowsLargeMessages(t *testing.T) {
	s := startEcho(t)
	shaper, err := netem.NewShaper(netem.Link{BandwidthBps: 8e6}, 3) // 1 MB/s
	if err != nil {
		t.Fatalf("NewShaper: %v", err)
	}
	c, err := Dial(s.Addr(), shaper)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	big := echoReq{Text: string(make([]byte, 200_000))} // ~200 KB => >= ~200 ms
	start := time.Now()
	if _, err := c.Call(big); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("shaped call too fast: %v", elapsed)
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Error("expected dial error")
	}
}

func TestServeNilHandler(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
}
