package rpc

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type idemReq struct{ N int }

func (idemReq) Idempotent() bool { return true }

type onceReq struct{ N int }

func init() {
	Register(idemReq{})
	Register(onceReq{})
}

func fastOpts() ReliableOptions {
	return ReliableOptions{
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
		Breaker: BreakerConfig{FailureThreshold: 3, Cooldown: 50 * time.Millisecond},
		Seed:    1,
	}
}

func TestRetryPolicyDefaultsAndBackoff(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 3 || p.BaseDelay != 50*time.Millisecond || p.MaxDelay != time.Second || p.Jitter != 0.2 {
		t.Errorf("defaults = %+v", p)
	}
	rng := rand.New(rand.NewSource(1))
	noJitter := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond, Jitter: -1}.withDefaults()
	if noJitter.Jitter != 0 {
		t.Errorf("negative Jitter should normalize to 0, got %v", noJitter.Jitter)
	}
	wants := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	for i, want := range wants {
		if got := noJitter.backoff(i, rng); got != want {
			t.Errorf("backoff(%d) = %v, want %v", i, got, want)
		}
	}
	jittered := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for i := 0; i < 20; i++ {
		d := jittered.backoff(0, rng)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Errorf("jittered backoff %v outside [50ms, 100ms]", d)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var transitions []BreakerState
	var mu sync.Mutex
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: 40 * time.Millisecond}, func(s BreakerState) {
		mu.Lock()
		transitions = append(transitions, s)
		mu.Unlock()
	})
	if b.State() != BreakerClosed {
		t.Fatalf("fresh breaker state = %v", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused a call: %v", err)
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Error("breaker tripped below the threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker did not trip at the threshold")
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call (err=%v)", err)
	}
	// After the cooldown, exactly one caller becomes the half-open probe.
	time.Sleep(50 * time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Error("second concurrent probe allowed")
	}
	// A failed probe re-opens; a successful one closes.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Error("failed probe did not re-open the breaker")
	}
	time.Sleep(50 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Error("successful probe did not close the breaker")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerReleaseProbe(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 10 * time.Millisecond}, nil)
	b.Failure()
	time.Sleep(20 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	// The probe's call ran out of deadline — inconclusive. Releasing it
	// must let the next caller probe instead of wedging half-open forever.
	b.releaseProbe()
	if err := b.Allow(); err != nil {
		t.Errorf("probe slot wedged after release: %v", err)
	}
}

func TestBreakerStateString(t *testing.T) {
	names := map[BreakerState]string{BreakerClosed: "closed", BreakerHalfOpen: "half-open", BreakerOpen: "open", BreakerState(9): "unknown"}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestReliableRetriesIdempotentAfterReconnect(t *testing.T) {
	leakCheck(t)
	// A server that dies after its first reply and is replaced on the same
	// address: the reliable client must redial and the idempotent request
	// must succeed transparently.
	s := startEcho(t)
	addr := s.Addr()
	var retries, connects atomic.Int32
	r := DialReliable(addr, nil, ReliableOptions{
		Retry:   RetryPolicy{MaxAttempts: 4, BaseDelay: 20 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
		Breaker: BreakerConfig{FailureThreshold: 10, Cooldown: 50 * time.Millisecond},
		OnRetry: func() { retries.Add(1) },
		OnConnect: func(ctx context.Context, c *Client) error {
			connects.Add(1)
			return nil
		},
		Seed: 1,
	})
	defer r.Close()
	if _, err := r.Call(context.Background(), echoReq{Text: "warm", N: 1}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	if connects.Load() != 1 {
		t.Fatalf("connects = %d after first call", connects.Load())
	}
	_ = s.Close()
	// Restart on the same port; a racing retry may land before the new
	// listener is up, which the retry budget absorbs.
	s2, err := Serve(addr, func(_ context.Context, body any) (any, error) { return body, nil })
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer s2.Close()
	got, err := r.Call(context.Background(), idemReq{N: 7})
	if err != nil {
		t.Fatalf("idempotent call across restart: %v", err)
	}
	if got.(idemReq).N != 7 {
		t.Errorf("wrong reply %+v", got)
	}
	if connects.Load() < 2 {
		t.Errorf("connects = %d, want >= 2 (reconnect)", connects.Load())
	}
	if retries.Load() == 0 {
		t.Error("no retry observed across the restart")
	}
}

func TestReliableDoesNotRetryNonIdempotent(t *testing.T) {
	leakCheck(t)
	s := startEcho(t)
	addr := s.Addr()
	r := DialReliable(addr, nil, fastOpts())
	defer r.Close()
	if _, err := r.Call(context.Background(), echoReq{Text: "warm"}); err != nil {
		t.Fatalf("warm call: %v", err)
	}
	_ = s.Close()
	var retries atomic.Int32
	r2 := DialReliable(addr, nil, ReliableOptions{
		Retry:   fastOpts().Retry,
		Breaker: fastOpts().Breaker,
		OnRetry: func() { retries.Add(1) },
		Seed:    1,
	})
	defer r2.Close()
	_, err := r2.Call(context.Background(), onceReq{N: 1})
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("non-idempotent call to dead peer = %v, want ErrPeerUnavailable", err)
	}
	if retries.Load() != 0 {
		t.Errorf("%d retries of a non-idempotent request", retries.Load())
	}
}

func TestReliableBreakerOpensAndRecovers(t *testing.T) {
	leakCheck(t)
	s := startEcho(t)
	addr := s.Addr()
	var states []BreakerState
	var mu sync.Mutex
	r := DialReliable(addr, nil, ReliableOptions{
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker: BreakerConfig{FailureThreshold: 2, Cooldown: 60 * time.Millisecond},
		OnBreakerChange: func(st BreakerState) {
			mu.Lock()
			states = append(states, st)
			mu.Unlock()
		},
		Seed: 1,
	})
	defer r.Close()
	if _, err := r.Call(context.Background(), echoReq{Text: "ok"}); err != nil {
		t.Fatalf("healthy call: %v", err)
	}
	_ = s.Close()
	// Enough failing calls trip the breaker within one retry budget.
	_, err := r.Call(context.Background(), idemReq{N: 1})
	if err == nil {
		t.Fatal("call to dead peer succeeded")
	}
	if r.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker state = %v after failures, want open", r.Breaker().State())
	}
	// While open, calls fail fast with the typed sentinel.
	start := time.Now()
	_, err = r.Call(context.Background(), idemReq{N: 2})
	if !errors.Is(err, ErrCircuitOpen) && !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("open-breaker call = %v, want ErrCircuitOpen or last failure", err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Errorf("open-breaker call was not fast: %v", time.Since(start))
	}
	// Restart the peer; after the cooldown the next call is the half-open
	// probe, succeeds, and the breaker closes.
	s2, err := Serve(addr, func(_ context.Context, body any) (any, error) { return body, nil })
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	time.Sleep(80 * time.Millisecond)
	if _, err := r.Call(context.Background(), idemReq{N: 3}); err != nil {
		t.Fatalf("probe call after restart: %v", err)
	}
	if got := r.Breaker().State(); got != BreakerClosed {
		t.Errorf("breaker state after recovery = %v, want closed", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(states) < 3 || states[0] != BreakerOpen || states[len(states)-1] != BreakerClosed {
		t.Errorf("breaker transitions = %v, want open ... closed", states)
	}
}

func TestReliableRemoteErrorsDoNotTripBreaker(t *testing.T) {
	leakCheck(t)
	s := startEcho(t)
	r := DialReliable(s.Addr(), nil, ReliableOptions{
		Breaker: BreakerConfig{FailureThreshold: 2, Cooldown: time.Second},
		Seed:    1,
	})
	defer r.Close()
	for i := 0; i < 5; i++ {
		if _, err := r.Call(context.Background(), echoReq{Text: "boom"}); err == nil {
			t.Fatal("expected remote error")
		}
	}
	if got := r.Breaker().State(); got != BreakerClosed {
		t.Errorf("application errors tripped the breaker: %v", got)
	}
}

func TestReliableClosed(t *testing.T) {
	r := DialReliable("127.0.0.1:1", nil, fastOpts())
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := r.Call(context.Background(), idemReq{}); !errors.Is(err, ErrClosed) {
		t.Errorf("call on closed reliable client = %v, want ErrClosed", err)
	}
	if err := r.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestReliableOnConnectFailureDiscardsConnection(t *testing.T) {
	leakCheck(t)
	s, err := Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) { return body, nil })
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()
	fail := atomic.Bool{}
	fail.Store(true)
	var attempts atomic.Int32
	r := DialReliable(s.Addr(), nil, ReliableOptions{
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
		Breaker: BreakerConfig{FailureThreshold: 10, Cooldown: 50 * time.Millisecond},
		OnConnect: func(ctx context.Context, c *Client) error {
			attempts.Add(1)
			if fail.Load() {
				return errors.New("handshake rejected")
			}
			return nil
		},
		Seed: 1,
	})
	defer r.Close()
	if _, err := r.Call(context.Background(), idemReq{N: 1}); err == nil {
		t.Fatal("call succeeded despite failing handshake")
	}
	fail.Store(false)
	if _, err := r.Call(context.Background(), idemReq{N: 2}); err != nil {
		t.Fatalf("call after handshake recovery: %v", err)
	}
	if attempts.Load() < 3 {
		t.Errorf("OnConnect attempts = %d, want >= 3", attempts.Load())
	}
}
