package rpc

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"leime/internal/netem"
)

// Idempotent marks request types that are safe to send more than once: a
// retried delivery (after a transport failure that may or may not have
// reached the server) leaves the system in the same state as a single one.
// Control-plane requests (register, queue stats, rate updates) qualify;
// task executions do not — re-running a block would burn compute twice, so
// the runtime degrades those locally instead of retrying.
type Idempotent interface {
	Idempotent() bool
}

func isIdempotent(body any) bool {
	i, ok := body.(Idempotent)
	return ok && i.Idempotent()
}

// RetryPolicy caps how often and how patiently a ReliableClient re-sends an
// idempotent request after a transport failure: capped exponential backoff
// with multiplicative jitter. The zero value selects the defaults noted on
// each field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first call included
	// (default 3). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms);
	// subsequent retries double it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
	// Jitter is the fraction of the delay randomized away, in (0, 1]
	// (default 0.2): the actual sleep is delay * (1 - Jitter*U[0,1)),
	// de-synchronizing fleets of devices retrying against one edge. Zero
	// means "use the default"; pass any negative value to disable jitter.
	Jitter float64
}

// withDefaults normalizes the zero value to the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// backoff returns the sleep before retry number retry (0-based), jittered.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay << uint(retry)
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 - p.Jitter*rng.Float64()))
	}
	return d
}

// BreakerState is the circuit breaker's condition.
type BreakerState int32

const (
	// BreakerClosed passes calls through (healthy peer).
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen lets a single probe through after the cooldown; its
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen fails calls fast with ErrCircuitOpen.
	BreakerOpen
)

// String names the state for logs and telemetry notes.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a per-peer circuit breaker. The zero value selects
// the defaults noted on each field.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive transport failures that
	// trips the breaker open (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before letting a probe
	// through (default 1s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	return c
}

// Breaker is a per-peer circuit breaker: consecutive transport failures
// trip it open, calls then fail fast until the cooldown elapses, a single
// half-open probe decides recovery. It is safe for concurrent use.
type Breaker struct {
	cfg      BreakerConfig
	onChange func(BreakerState)

	mu       sync.Mutex
	state    BreakerState
	failures int
	until    time.Time // when open: earliest half-open probe
	probing  bool      // half-open: a probe is in flight
}

// NewBreaker builds a breaker; onChange (optional) observes state
// transitions and is invoked without internal locks held.
func NewBreaker(cfg BreakerConfig, onChange func(BreakerState)) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), onChange: onChange}
}

// State returns the current state, promoting open to half-open when the
// cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !time.Now().Before(b.until) {
		return BreakerHalfOpen
	}
	return b.state
}

// Allow reports whether a call may proceed. Open: ErrCircuitOpen until the
// cooldown elapses, then the first caller becomes the half-open probe and
// every other caller keeps failing fast until the probe resolves.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return nil
	case BreakerOpen:
		if time.Now().Before(b.until) {
			b.mu.Unlock()
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.mu.Unlock()
		b.notify(BreakerHalfOpen)
		return nil
	default: // half-open
		if b.probing {
			b.mu.Unlock()
			return ErrCircuitOpen
		}
		b.probing = true
		b.mu.Unlock()
		return nil
	}
}

// Success records a completed call and closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	changed := b.state != BreakerClosed
	b.state = BreakerClosed
	b.mu.Unlock()
	if changed {
		b.notify(BreakerClosed)
	}
}

// Failure records a transport failure; enough consecutive ones (or a failed
// half-open probe) trip the breaker open for the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	b.failures++
	b.probing = false
	trip := b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.failures >= b.cfg.FailureThreshold)
	if trip {
		b.state = BreakerOpen
		b.until = time.Now().Add(b.cfg.Cooldown)
	}
	b.mu.Unlock()
	if trip {
		b.notify(BreakerOpen)
	}
}

// releaseProbe abandons an inconclusive half-open probe (the call ran out
// of time budget) without deciding the breaker's fate, so the next caller
// can probe again.
func (b *Breaker) releaseProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

func (b *Breaker) notify(s BreakerState) {
	if b.onChange != nil {
		b.onChange(s)
	}
}

// ReliableOptions configure DialReliable.
type ReliableOptions struct {
	// Retry caps re-sends of idempotent requests (zero value = defaults).
	Retry RetryPolicy
	// Breaker tunes the per-peer circuit breaker (zero value = defaults).
	Breaker BreakerConfig
	// OnConnect, when non-nil, runs after every successful dial before any
	// call proceeds on the new connection — the session re-establishment
	// hook (a device re-registers with a restarted edge here). Returning an
	// error discards the connection and counts as a transport failure.
	OnConnect func(ctx context.Context, c *Client) error
	// OnRetry, when non-nil, observes every retry attempt (telemetry).
	OnRetry func()
	// OnBreakerChange, when non-nil, observes breaker transitions
	// (telemetry). It is invoked without internal locks held.
	OnBreakerChange func(BreakerState)
	// Seed drives retry jitter; 0 derives one from the address.
	Seed int64
}

// ReliableClient is a fault-tolerant client for one peer address: it dials
// lazily, re-dials after connection loss, retries idempotent requests with
// capped exponential backoff, and fails fast through a circuit breaker
// while the peer is down so callers can degrade instead of blocking. It is
// safe for concurrent use.
type ReliableClient struct {
	addr    string
	shaper  *netem.Shaper
	retry   RetryPolicy
	breaker *Breaker
	opts    ReliableOptions

	rngMu sync.Mutex
	rng   *rand.Rand

	mu     sync.Mutex
	cur    *Client
	closed bool
}

// DialReliable builds a fault-tolerant client for addr. The connection is
// established lazily on the first call, so the client can be constructed
// before its peer is up.
func DialReliable(addr string, shaper *netem.Shaper, opts ReliableOptions) *ReliableClient {
	seed := opts.Seed
	if seed == 0 {
		for _, b := range addr {
			seed = seed*131 + int64(b)
		}
		seed ^= 0x5eed
	}
	return &ReliableClient{
		addr:    addr,
		shaper:  shaper,
		retry:   opts.Retry.withDefaults(),
		breaker: NewBreaker(opts.Breaker, opts.OnBreakerChange),
		opts:    opts,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Breaker exposes the client's circuit breaker (read its State for
// decision overrides).
func (r *ReliableClient) Breaker() *Breaker { return r.breaker }

// conn returns the live connection, dialing (and running OnConnect) if
// needed.
func (r *ReliableClient) conn(ctx context.Context) (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.cur != nil {
		return r.cur, nil
	}
	c, err := DialContext(ctx, r.addr, r.shaper)
	if err != nil {
		return nil, err
	}
	if r.opts.OnConnect != nil {
		if err := r.opts.OnConnect(ctx, c); err != nil {
			_ = c.Close()
			return nil, err
		}
	}
	r.cur = c
	return c, nil
}

// invalidate discards a connection observed dead so the next call re-dials.
func (r *ReliableClient) invalidate(c *Client) {
	r.mu.Lock()
	if r.cur == c {
		r.cur = nil
	}
	r.mu.Unlock()
	_ = c.Close()
}

// isTransport classifies failures that mean "the peer did not serve this
// call": dial errors, dead connections, shaper-injected faults.
func isTransport(err error) bool {
	return errors.Is(err, ErrPeerUnavailable) || errors.Is(err, ErrClosed) || errors.Is(err, netem.ErrInjected)
}

// Call sends body with empty metadata; see CallMeta.
func (r *ReliableClient) Call(ctx context.Context, body any) (any, error) {
	return r.CallMeta(ctx, Meta{}, body)
}

// CallMeta sends body through the breaker with the configured retry policy.
// Only transport failures of idempotent bodies are retried; remote handler
// errors and deadline expiries return immediately. While the breaker is
// open, calls fail fast with ErrCircuitOpen.
func (r *ReliableClient) CallMeta(ctx context.Context, meta Meta, body any) (any, error) {
	idem := isIdempotent(body)
	var lastErr error
	for attempt := 0; attempt < r.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			if r.opts.OnRetry != nil {
				r.opts.OnRetry()
			}
			r.rngMu.Lock()
			delay := r.retry.backoff(attempt-1, r.rng)
			r.rngMu.Unlock()
			if err := sleepCtx(ctx, delay); err != nil {
				return nil, ctxError(err)
			}
		}
		if err := r.breaker.Allow(); err != nil {
			// Open breaker: fail fast, never spin the retry loop against it.
			if lastErr == nil {
				lastErr = err
			}
			return nil, lastErr
		}
		c, err := r.conn(ctx)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err // this reliable client was closed
			}
			lastErr = err
			r.breaker.Failure()
			if idem {
				continue
			}
			return nil, err
		}
		got, err := c.CallMeta(ctx, meta, body)
		if err == nil {
			r.breaker.Success()
			return got, nil
		}
		lastErr = err
		switch {
		case isTransport(err):
			r.breaker.Failure()
			r.invalidate(c)
			if idem {
				continue
			}
			return nil, err
		case errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, context.Canceled):
			// The peer may be healthy; the caller ran out of budget. Not a
			// breaker failure, and retrying cannot help. Release a possible
			// half-open probe so the next caller can probe again.
			r.breaker.releaseProbe()
			return nil, err
		default:
			// Remote application error: the peer is alive and answered.
			r.breaker.Success()
			return nil, err
		}
	}
	return nil, lastErr
}

// sleepCtx sleeps for d or until the context ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close tears down the current connection; subsequent calls fail with
// ErrClosed.
func (r *ReliableClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.cur
	r.cur = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
