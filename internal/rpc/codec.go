// Binary wire codec: the zero-allocation data plane of the rpc layer.
//
// Every frame on the wire is length-prefixed and versioned:
//
//	[4 bytes] big-endian payload length n (bytes after this prefix)
//	[1 byte ] wire version (currently 1)
//	[1 byte ] codec tag: 0 = gob envelope, 1 = binary envelope
//	[n-2 B  ] envelope payload in the tagged codec
//
// The binary codec hand-rolls the envelope header (correlation ID, flags,
// error text/code, trace metadata) and dispatches the body through a
// registry of per-type encode/decode functions keyed by a stable uint16
// type ID (RegisterCodec). The closed set of runtime protocol messages all
// register codecs; any body type without one falls back to a gob-encoded
// envelope, tagged per frame, so the two codecs negotiate per message and
// unregistered (test-only, experimental) types keep working unchanged.
//
// Allocation discipline: encoding borrows a pooled buffer and emits the
// frame with a single Write (the one-message-per-Write invariant netem
// shaping relies on), so the steady-state encode path allocates nothing.
// Decoding allocates the frame buffer and the body box only; byte-slice
// and string fields alias the frame buffer instead of copying — the buffer
// is never pooled or reused, so the aliases stay valid for the life of the
// decoded message.
package rpc

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Wire format constants. bumping wireVersion breaks older peers loudly (a
// reader rejects unknown versions and drops the connection) rather than
// silently misparsing — version negotiation by construction, since both
// ends of every link in this repo ship together.
const (
	wireVersion = 1
	codecGob    = 0
	codecBinary = 1
)

// frameHeaderLen is the length prefix plus version and codec tags.
const frameHeaderLen = 6

// EncodeFunc appends one registered body's binary form to the encoder.
// It must be the exact inverse of its DecodeFunc.
type EncodeFunc func(e *Encoder, v any)

// DecodeFunc rebuilds one registered body from the decoder. It returns the
// decoded value boxed as any; field-level failures surface through the
// decoder's sticky error, so implementations only return an error for
// structural violations the decoder cannot see.
type DecodeFunc func(d *Decoder) (any, error)

// codecEntry binds one concrete body type to its wire ID and functions.
type codecEntry struct {
	id  uint16
	typ reflect.Type
	enc EncodeFunc
	dec DecodeFunc
}

// codecTables is the immutable registry snapshot swapped atomically on
// registration, so hot-path lookups take no lock.
type codecTables struct {
	byType map[reflect.Type]*codecEntry
	byID   map[uint16]*codecEntry
}

var (
	codecMu     sync.Mutex
	codecsValue atomic.Value // holds *codecTables
)

func init() {
	codecsValue.Store(&codecTables{
		byType: map[reflect.Type]*codecEntry{},
		byID:   map[uint16]*codecEntry{},
	})
}

func codecTablesSnapshot() *codecTables {
	return codecsValue.Load().(*codecTables)
}

// RegisterCodec makes a message type transportable through the binary
// codec under the given stable wire ID. IDs identify the type on the wire,
// so they must never be reused for a different type; re-registering the
// same (id, type) pair is idempotent (setup functions run once per tier
// construction). ID 0 is reserved for the nil body. Types without a
// registered codec still travel — as gob-envelope frames (the negotiated
// fallback) — so registration is a performance contract, not a
// correctness one.
func RegisterCodec(id uint16, prototype any, enc EncodeFunc, dec DecodeFunc) {
	if id == 0 {
		panic("rpc: codec ID 0 is reserved for the nil body")
	}
	if prototype == nil || enc == nil || dec == nil {
		panic("rpc: RegisterCodec needs a prototype and both functions")
	}
	typ := reflect.TypeOf(prototype)
	codecMu.Lock()
	defer codecMu.Unlock()
	cur := codecTablesSnapshot()
	if prev, ok := cur.byID[id]; ok {
		if prev.typ != typ {
			panic(fmt.Sprintf("rpc: codec ID %d already bound to %v, cannot rebind to %v", id, prev.typ, typ))
		}
		return // idempotent re-registration
	}
	if prev, ok := cur.byType[typ]; ok {
		panic(fmt.Sprintf("rpc: type %v already has codec ID %d, cannot also bind ID %d", typ, prev.id, id))
	}
	next := &codecTables{
		byType: make(map[reflect.Type]*codecEntry, len(cur.byType)+1),
		byID:   make(map[uint16]*codecEntry, len(cur.byID)+1),
	}
	for k, v := range cur.byType {
		next.byType[k] = v
	}
	for k, v := range cur.byID {
		next.byID[k] = v
	}
	entry := &codecEntry{id: id, typ: typ, enc: enc, dec: dec}
	next.byType[typ] = entry
	next.byID[id] = entry
	codecsValue.Store(next)
}

// binaryDisabled, when non-zero, forces every frame down the gob fallback;
// tests use it to differential-check the two codecs over one code path.
var binaryDisabled atomic.Bool

// lookupCodec returns the entry for body's concrete type, nil when the
// body must take the gob fallback.
func lookupCodec(body any) *codecEntry {
	if body == nil || binaryDisabled.Load() {
		return nil
	}
	return codecTablesSnapshot().byType[reflect.TypeOf(body)]
}

// Encoder is an append-only byte builder for the binary codec. Encode
// methods never fail: the buffer grows as needed and the frame writer
// enforces MaxMessageBytes once, after encoding.
type Encoder struct {
	buf []byte
}

// Write appends p, satisfying io.Writer so the gob fallback streams into
// the same pooled buffer as the binary path.
func (e *Encoder) Write(p []byte) (int, error) {
	e.buf = append(e.buf, p...)
	return len(p), nil
}

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Uvarint appends an unsigned varint (LEB128, like encoding/binary).
func (e *Encoder) Uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Varint appends a signed varint (zigzag).
func (e *Encoder) Varint(v int64) {
	e.Uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

// Int appends an int as a signed varint.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Float64 appends the IEEE-754 bits as 8 fixed little-endian bytes —
// floats are profile constants and shares, where varint buys nothing.
func (e *Encoder) Float64(f float64) {
	bits := math.Float64bits(f)
	e.buf = append(e.buf,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

func (e *Encoder) reset() { e.buf = e.buf[:0] }

// Decoder consumes the binary form produced by an Encoder. Errors are
// sticky: after the first malformed field every subsequent read returns a
// zero value, and Err reports the failure once at the end — corrupt frames
// always surface as errors, never panics.
type Decoder struct {
	data []byte
	off  int
	err  error
}

// NewDecoder wraps data for decoding. The decoder and every Bytes/String
// value it returns alias data; callers must not mutate it afterwards.
func NewDecoder(data []byte) *Decoder { return &Decoder{data: data} }

// Err returns the first decode failure, nil if none so far.
func (d *Decoder) Err() error { return d.err }

// Len returns the number of unconsumed bytes.
func (d *Decoder) Len() int { return len(d.data) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Byte consumes one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil || d.off >= len(d.data) {
		d.fail("rpc: decode: truncated byte at offset %d", d.off)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

// Bool consumes one byte as a bool; values other than 0/1 are corruption.
func (d *Decoder) Bool() bool {
	switch d.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("rpc: decode: invalid bool at offset %d", d.off-1)
		return false
	}
}

// Uvarint consumes an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if d.off >= len(d.data) {
			d.fail("rpc: decode: truncated varint at offset %d", d.off)
			return 0
		}
		b := d.data[d.off]
		d.off++
		if shift == 63 && b > 1 {
			d.fail("rpc: decode: varint overflows uint64 at offset %d", d.off-1)
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			d.fail("rpc: decode: varint too long at offset %d", d.off-1)
			return 0
		}
	}
}

// Varint consumes a signed (zigzag) varint.
func (d *Decoder) Varint() int64 {
	u := d.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Int consumes an int-sized signed varint.
func (d *Decoder) Int() int {
	v := d.Varint()
	if int64(int(v)) != v {
		d.fail("rpc: decode: varint %d overflows int", v)
		return 0
	}
	return int(v)
}

// Float64 consumes 8 fixed little-endian bytes as IEEE-754 bits.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.fail("rpc: decode: truncated float64 at offset %d", d.off)
		return 0
	}
	b := d.data[d.off : d.off+8]
	d.off += 8
	bits := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return math.Float64frombits(bits)
}

// Bytes consumes a length-prefixed byte slice. The result aliases the
// frame buffer (zero copy); nil for the empty slice.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.data)-d.off) {
		d.fail("rpc: decode: byte slice of %d exceeds remaining %d", n, len(d.data)-d.off)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := d.data[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return b
}

// String consumes a length-prefixed string. Like Bytes it aliases the
// frame buffer — safe because frame buffers are single-use — so decoding a
// message costs no per-string copies.
func (d *Decoder) String() string {
	b := d.Bytes()
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// encPool recycles encode buffers; oversized ones (a large payload passed
// through) are dropped rather than pinned in the pool.
var encPool = sync.Pool{New: func() any { return &Encoder{buf: make([]byte, 0, 4096)} }}

// maxPooledBuf bounds the capacity the encode pool retains.
const maxPooledBuf = 64 << 10

func getEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.reset()
	return e
}

func putEncoder(e *Encoder) {
	if cap(e.buf) <= maxPooledBuf {
		encPool.Put(e)
	}
}

// CodecStats is a snapshot of the wire codec counters: how many frames and
// payload bytes each codec moved in each direction. The runtime daemons
// export these through telemetry gauges; the split shows whether the data
// plane is actually riding the binary fast path or leaking into the gob
// fallback.
type CodecStats struct {
	// BinaryEncoded / GobEncoded count frames written by codec.
	BinaryEncoded, GobEncoded uint64
	// BinaryDecoded / GobDecoded count frames read by codec.
	BinaryDecoded, GobDecoded uint64
	// BinaryBytes / GobBytes count encoded payload bytes by codec.
	BinaryBytes, GobBytes uint64
}

var wireStats struct {
	binEnc, gobEnc   atomic.Uint64
	binDec, gobDec   atomic.Uint64
	binByte, gobByte atomic.Uint64
}

// WireStats snapshots the process-wide codec counters.
func WireStats() CodecStats {
	return CodecStats{
		BinaryEncoded: wireStats.binEnc.Load(),
		GobEncoded:    wireStats.gobEnc.Load(),
		BinaryDecoded: wireStats.binDec.Load(),
		GobDecoded:    wireStats.gobDec.Load(),
		BinaryBytes:   wireStats.binByte.Load(),
		GobBytes:      wireStats.gobByte.Load(),
	}
}
