package rpc

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestEncoderDecoderPrimitives round-trips every primitive across its edge
// values.
func TestEncoderDecoderPrimitives(t *testing.T) {
	var e Encoder
	uvals := []uint64{0, 1, 127, 128, 16383, 16384, math.MaxUint64}
	ivals := []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64}
	fvals := []float64{0, -0.0, 1.5, math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	svals := []string{"", "x", "device-дев-7", strings.Repeat("p", 300)}
	bvals := [][]byte{nil, {0}, {1, 2, 3, 255}}
	for _, v := range uvals {
		e.Uvarint(v)
	}
	for _, v := range ivals {
		e.Varint(v)
	}
	for _, v := range fvals {
		e.Float64(v)
	}
	for _, v := range svals {
		e.String(v)
	}
	for _, v := range bvals {
		e.Bytes(v)
	}
	e.Bool(true)
	e.Bool(false)
	e.Byte(0xAB)
	e.Int(-12345)

	d := NewDecoder(e.buf)
	for _, want := range uvals {
		if got := d.Uvarint(); got != want {
			t.Errorf("Uvarint = %d, want %d", got, want)
		}
	}
	for _, want := range ivals {
		if got := d.Varint(); got != want {
			t.Errorf("Varint = %d, want %d", got, want)
		}
	}
	for _, want := range fvals {
		if got := d.Float64(); got != want {
			t.Errorf("Float64 = %v, want %v", got, want)
		}
	}
	for _, want := range svals {
		if got := d.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	for _, want := range bvals {
		if got := d.Bytes(); !bytes.Equal(got, want) {
			t.Errorf("Bytes = %v, want %v", got, want)
		}
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x, want 0xAB", got)
	}
	if got := d.Int(); got != -12345 {
		t.Errorf("Int = %d, want -12345", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Len() != 0 {
		t.Errorf("%d trailing bytes", d.Len())
	}
}

// TestDecoderNaN pins that NaN bits survive the fixed-width float encoding
// (equality on bits, not value).
func TestDecoderNaN(t *testing.T) {
	var e Encoder
	e.Float64(math.NaN())
	d := NewDecoder(e.buf)
	if got := d.Float64(); !math.IsNaN(got) {
		t.Errorf("NaN decoded as %v", got)
	}
}

// TestDecoderErrorsAreSticky drives every malformed-input path and checks
// errors stick without panics.
func TestDecoderErrorsAreSticky(t *testing.T) {
	cases := []struct {
		name string
		feed func(d *Decoder)
		data []byte
	}{
		{"truncated byte", func(d *Decoder) { d.Byte() }, nil},
		{"truncated varint", func(d *Decoder) { d.Uvarint() }, []byte{0x80}},
		{"overlong varint", func(d *Decoder) { d.Uvarint() }, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}},
		{"truncated float", func(d *Decoder) { d.Float64() }, []byte{1, 2, 3}},
		{"invalid bool", func(d *Decoder) { d.Bool() }, []byte{7}},
		{"bytes beyond frame", func(d *Decoder) { d.Bytes() }, []byte{0x20, 1, 2}},
		{"string beyond frame", func(d *Decoder) { _ = d.String() }, []byte{0x05, 'a'}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := NewDecoder(c.data)
			c.feed(d)
			if d.Err() == nil {
				t.Fatal("no error on malformed input")
			}
			first := d.Err()
			// Subsequent reads return zero values, error unchanged.
			if got := d.Uvarint(); got != 0 {
				t.Errorf("post-error Uvarint = %d, want 0", got)
			}
			//lint:ignore wireerrors stickiness is pointer identity: the decoder must surface the first error object unchanged
			if d.Err() != first {
				t.Errorf("error not sticky: %v then %v", first, d.Err())
			}
		})
	}
}

// TestRegisterCodecConflicts pins the registry's safety panics and its
// idempotence.
func TestRegisterCodecConflicts(t *testing.T) {
	type typeA struct{ X int }
	type typeB struct{ Y int }
	enc := func(e *Encoder, v any) {}
	dec := func(d *Decoder) (any, error) { return typeA{}, nil }
	const baseID = 60100
	RegisterCodec(baseID, typeA{}, enc, dec)
	RegisterCodec(baseID, typeA{}, enc, dec) // idempotent re-registration

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("ID 0", func() { RegisterCodec(0, typeA{}, enc, dec) })
	mustPanic("nil prototype", func() { RegisterCodec(baseID+1, nil, enc, dec) })
	mustPanic("ID rebind", func() { RegisterCodec(baseID, typeB{}, enc, dec) })
	mustPanic("type rebind", func() { RegisterCodec(baseID+2, typeA{}, enc, dec) })
}

// TestEncodePoolRecycles checks pooled buffers reset between frames and
// oversized buffers are dropped rather than pinned.
func TestEncodePoolRecycles(t *testing.T) {
	e := getEncoder()
	if len(e.buf) != 0 {
		t.Fatalf("pooled encoder not reset: %d bytes", len(e.buf))
	}
	e.Bytes(make([]byte, maxPooledBuf*2))
	putEncoder(e) // dropped: capacity exceeds the pool bound
	e2 := getEncoder()
	if cap(e2.buf) > maxPooledBuf {
		t.Errorf("oversized buffer (cap %d) returned to pool", cap(e2.buf))
	}
	putEncoder(e2)
}

// TestWireStatsCounts checks the codec counters advance on each path.
func TestWireStatsCounts(t *testing.T) {
	before := WireStats()
	var buf bytes.Buffer
	if err := writeFrame(&buf, &envelope{ID: 1}); err != nil { // nil body: binary
		t.Fatalf("writeFrame: %v", err)
	}
	if _, err := readFrame(&buf); err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	type gobOnly struct{ X int }
	Register(gobOnly{})
	if err := writeFrame(&buf, &envelope{ID: 2, Body: gobOnly{X: 1}}); err != nil {
		t.Fatalf("writeFrame gob: %v", err)
	}
	if _, err := readFrame(&buf); err != nil {
		t.Fatalf("readFrame gob: %v", err)
	}
	after := WireStats()
	if after.BinaryEncoded <= before.BinaryEncoded || after.BinaryDecoded <= before.BinaryDecoded {
		t.Errorf("binary counters did not advance: %+v -> %+v", before, after)
	}
	if after.GobEncoded <= before.GobEncoded || after.GobDecoded <= before.GobDecoded {
		t.Errorf("gob counters did not advance: %+v -> %+v", before, after)
	}
	if after.GobBytes <= before.GobBytes {
		t.Errorf("gob byte counter did not advance")
	}
}
