// Differential tests of the two wire codecs, in an external test package
// so it can import the runtime protocol (package runtime imports rpc, so
// in-package rpc tests cannot).
package rpc_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"leime/internal/offload"
	"leime/internal/rpc"
	"leime/internal/runtime"
)

// protocolMessages builds one instance of every protocol.go message from
// fuzzable primitives. Empty payloads normalize to nil: both codecs decode
// a zero-length slice as nil, so only the nil form round-trips exactly.
func protocolMessages(deviceID string, taskID uint64, payload []byte, stage int, load, mean, share float64, tenants int) []any {
	if len(payload) == 0 {
		payload = nil
	}
	model := offload.ModelParams{
		Mu:    [3]float64{load, mean, share},
		D:     [3]float64{share, load, mean},
		Sigma: [3]float64{mean, share, 1},
	}
	shares := map[string]float64{deviceID: share, deviceID + "-peer": mean}
	return []any{
		runtime.RegisterReq{DeviceID: deviceID, FLOPS: load, ArrivalMean: mean, Model: model},
		runtime.RegisterResp{ShareFLOPS: share},
		runtime.FirstBlockReq{DeviceID: deviceID, TaskID: taskID, Payload: payload, ExitStage: stage},
		runtime.SecondBlockReq{DeviceID: deviceID, TaskID: taskID, Payload: payload, ExitStage: stage},
		runtime.ThirdBlockReq{TaskID: taskID, Payload: payload, FLOPs: load},
		runtime.TaskResp{TaskID: taskID, ExitStage: stage},
		runtime.UpdateReq{DeviceID: deviceID, ArrivalMean: mean},
		runtime.UnregisterReq{DeviceID: deviceID},
		runtime.UnregisterResp{RemainingTenants: tenants},
		runtime.EdgeStatsReq{},
		runtime.EdgeStatsResp{Tenants: tenants, PendingFirstBlock: stage, Shares: shares},
		runtime.QueueStatReq{DeviceID: deviceID},
		runtime.QueueStatResp{PendingFirstBlock: tenants},
		runtime.HeartbeatReq{DeviceID: deviceID},
		runtime.HeartbeatResp{Ready: stage > 1, FLOPS: load, Tenants: tenants,
			BacklogSec: mean, Saturated: tenants > 2, PendingFirstBlock: stage, ShareFLOPS: share},
		runtime.StealReq{DeviceID: deviceID, TaskID: taskID, Payload: payload, ExitStage: stage, Hop: 1, Model: model},
	}
}

// roundTripBoth pushes env through the binary codec and the forced-gob
// fallback, requiring both to reproduce the envelope exactly and to agree
// with each other.
func roundTripBoth(t *testing.T, env rpc.TestEnvelope) {
	t.Helper()
	if env.Body != nil && !rpc.BinaryEligible(env.Body) {
		t.Fatalf("%T has no registered binary codec", env.Body)
	}
	binFrame, err := rpc.MarshalFrame(env)
	if err != nil {
		t.Fatalf("binary marshal %T: %v", env.Body, err)
	}
	binGot, err := rpc.UnmarshalFrame(binFrame)
	if err != nil {
		t.Fatalf("binary unmarshal %T: %v", env.Body, err)
	}
	restore := rpc.ForceGob()
	gobFrame, err := rpc.MarshalFrame(env)
	restore()
	if err != nil {
		t.Fatalf("gob marshal %T: %v", env.Body, err)
	}
	gobGot, err := rpc.UnmarshalFrame(gobFrame)
	if err != nil {
		t.Fatalf("gob unmarshal %T: %v", env.Body, err)
	}
	if !reflect.DeepEqual(binGot, env) {
		t.Errorf("binary round-trip diverged:\n got %#v\nwant %#v", binGot, env)
	}
	if !reflect.DeepEqual(gobGot, env) {
		t.Errorf("gob round-trip diverged:\n got %#v\nwant %#v", gobGot, env)
	}
	if !reflect.DeepEqual(binGot, gobGot) {
		t.Errorf("codecs disagree:\nbinary %#v\n   gob %#v", binGot, gobGot)
	}
}

// TestDifferentialProtocolMessages round-trips every protocol message with
// representative values through both codecs.
func TestDifferentialProtocolMessages(t *testing.T) {
	runtime.RegisterMessages()
	meta := rpc.Meta{TraceID: 7, SpanID: 9, Deadline: 1_700_000_000_000_000_000}
	for _, body := range protocolMessages("dev-1", 42, []byte{1, 2, 3, 255}, 2, 8e13, 3.5, 0.25, 4) {
		roundTripBoth(t, rpc.TestEnvelope{ID: 11, Meta: meta, Body: body})
	}
	// Error replies and empty envelopes must survive both codecs too.
	roundTripBoth(t, rpc.TestEnvelope{ID: 3, IsReply: true, Err: "edge: busy", Code: "overloaded"})
	roundTripBoth(t, rpc.TestEnvelope{ID: 0})
}

// TestProtocolMessagesRideBinaryPath pins the negotiation: registered
// protocol messages must take the binary codec, unregistered bodies the
// gob fallback, distinguished by the frame's codec tag byte.
func TestProtocolMessagesRideBinaryPath(t *testing.T) {
	runtime.RegisterMessages()
	for _, body := range protocolMessages("dev", 1, []byte{9}, 1, 1, 1, 1, 1) {
		frame, err := rpc.MarshalFrame(rpc.TestEnvelope{ID: 1, Body: body})
		if err != nil {
			t.Fatalf("marshal %T: %v", body, err)
		}
		if frame[5] != 1 {
			t.Errorf("%T took codec tag %d, want binary (1)", body, frame[5])
		}
	}
	type unregistered struct{ X int }
	rpc.Register(unregistered{})
	frame, err := rpc.MarshalFrame(rpc.TestEnvelope{ID: 1, Body: unregistered{X: 5}})
	if err != nil {
		t.Fatalf("marshal unregistered: %v", err)
	}
	if frame[5] != 0 {
		t.Errorf("unregistered body took codec tag %d, want gob (0)", frame[5])
	}
	got, err := rpc.UnmarshalFrame(frame)
	if err != nil {
		t.Fatalf("unmarshal gob fallback: %v", err)
	}
	if got.Body != (unregistered{X: 5}) {
		t.Errorf("gob fallback body = %#v", got.Body)
	}
}

// FuzzDifferentialCodec fuzzes the full protocol set through both codecs,
// requiring byte-path-independent equality.
func FuzzDifferentialCodec(f *testing.F) {
	runtime.RegisterMessages()
	f.Add("dev-1", uint64(42), []byte{1, 2, 3}, 2, 8e13, 3.5, 0.25, 4, uint64(7), uint64(9), int64(12345))
	f.Add("", uint64(0), []byte(nil), 0, 0.0, 0.0, 0.0, 0, uint64(0), uint64(0), int64(0))
	f.Add("edge-дев", uint64(math.MaxUint64), bytes.Repeat([]byte{0xff}, 64), -1, -1.5, math.Inf(1), math.SmallestNonzeroFloat64, math.MinInt, uint64(1), uint64(math.MaxUint64), int64(math.MinInt64))
	f.Fuzz(func(t *testing.T, deviceID string, taskID uint64, payload []byte, stage int, load, mean, share float64, tenants int, traceID, spanID uint64, deadline int64) {
		if math.IsNaN(load) || math.IsNaN(mean) || math.IsNaN(share) {
			t.Skip("NaN never compares equal; not a codec property")
		}
		meta := rpc.Meta{TraceID: traceID, SpanID: spanID, Deadline: deadline}
		for _, body := range protocolMessages(deviceID, taskID, payload, stage, load, mean, share, tenants) {
			roundTripBoth(t, rpc.TestEnvelope{ID: taskID, Meta: meta, Body: body})
		}
	})
}

// FuzzCorruptBinaryFrame seeds the mutator with valid binary frames of
// every protocol message and requires that arbitrary mutations decode
// cleanly or error — never panic.
func FuzzCorruptBinaryFrame(f *testing.F) {
	runtime.RegisterMessages()
	for _, body := range protocolMessages("dev-1", 42, []byte{1, 2, 3, 255}, 2, 8e13, 3.5, 0.25, 4) {
		frame, err := rpc.MarshalFrame(rpc.TestEnvelope{ID: 11, Meta: rpc.Meta{TraceID: 1, SpanID: 2, Deadline: 3}, Body: body})
		if err != nil {
			f.Fatalf("marshal %T: %v", body, err)
		}
		f.Add(frame)
		// A truncated variant probes every partial-field path.
		f.Add(frame[:len(frame)-1])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := rpc.UnmarshalFrame(data)
		if err != nil {
			return
		}
		// A frame that decodes must re-encode losslessly (empty payloads
		// normalize to nil on the next decode, so compare decoded forms).
		frame2, err := rpc.MarshalFrame(env)
		if err != nil {
			t.Fatalf("re-marshal of decoded frame failed: %v", err)
		}
		env2, err := rpc.UnmarshalFrame(frame2)
		if err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		// Compare re-encoded bytes, not decoded values: encoding is
		// deterministic and byte equality tolerates NaN payloads that
		// DeepEqual cannot.
		frame3, err := rpc.MarshalFrame(env2)
		if err != nil {
			t.Fatalf("re-marshal of second decode failed: %v", err)
		}
		if !bytes.Equal(frame2, frame3) {
			t.Errorf("decode/encode/decode not stable:\nfirst  %x\nsecond %x", frame2, frame3)
		}
	})
}
