// Package rpc is a minimal typed message layer over TCP for the testbed
// runtime: length-prefixed versioned envelopes (hand-rolled binary for the
// registered runtime messages, gob as the negotiated fallback — see
// codec.go), concurrent request/response with correlation IDs, a
// handler-based server with graceful shutdown, and optional netem shaping
// on the client side (emulating the wireless uplink or the edge–cloud
// Internet path).
//
// The call APIs are context-aware: a caller's deadline travels in the
// envelope metadata, servers shed requests whose deadline already passed
// before invoking the handler, and handler errors that match registered
// sentinels (RegisterError) stay typed across the wire. DialReliable layers
// retries and a circuit breaker on top for unreliable peers.
package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"leime/internal/netem"
)

// MaxMessageBytes bounds a single message; larger frames indicate protocol
// corruption.
const MaxMessageBytes = 16 << 20

// DialTimeout bounds one TCP connection attempt.
const DialTimeout = 5 * time.Second

// Meta is the request metadata carried alongside the body in every
// envelope: the caller's telemetry context and time budget. TraceID groups
// all spans of one task lifecycle across tiers; SpanID is the caller-side
// span the remote work should nest under. Deadline, when non-zero, is the
// task's absolute wall-clock deadline in Unix nanoseconds: servers derive
// the handler context from it and shed work that can no longer finish in
// time. The zero Meta means "untraced, no deadline" and costs nothing
// beyond three zero varints in the gob stream.
type Meta struct {
	TraceID  uint64
	SpanID   uint64
	Deadline int64
}

// Valid reports whether the metadata carries a live trace.
func (m Meta) Valid() bool { return m.TraceID != 0 }

// envelope is the wire frame. Body carries any registered value (binary
// codec or gob fallback); Code carries the typed cause of Err (see
// RegisterError).
type envelope struct {
	ID      uint64
	IsReply bool
	Err     string
	Code    string
	Meta    Meta
	Body    any
}

// Register makes a message type transportable through the gob fallback.
// Call it once per concrete type, typically from an init-free setup
// function in the owning package. Types that additionally register a
// binary codec (RegisterCodec) ride the zero-allocation fast path; the
// runtime's closed protocol set registers both, and the codeccomplete
// analyzer keeps that set closed.
func Register(v any) { gob.Register(v) }

// Binary envelope flag bits (the byte after the correlation ID).
const (
	flagIsReply = 1 << iota
	flagHasErr
	flagHasMeta
	flagHasBody
)

// encodeEnvelope appends the binary form of env: correlation ID, flags,
// then only the sections the flags declare. entry is the body's codec
// (nil means no body travels).
func encodeEnvelope(e *Encoder, env *envelope, entry *codecEntry) {
	e.Uvarint(env.ID)
	var flags byte
	if env.IsReply {
		flags |= flagIsReply
	}
	hasErr := env.Err != "" || env.Code != ""
	if hasErr {
		flags |= flagHasErr
	}
	hasMeta := env.Meta != (Meta{})
	if hasMeta {
		flags |= flagHasMeta
	}
	if entry != nil {
		flags |= flagHasBody
	}
	e.Byte(flags)
	if hasErr {
		e.String(env.Err)
		e.String(env.Code)
	}
	if hasMeta {
		e.Uvarint(env.Meta.TraceID)
		e.Uvarint(env.Meta.SpanID)
		e.Varint(env.Meta.Deadline)
	}
	if entry != nil {
		e.Uvarint(uint64(entry.id))
		entry.enc(e, env.Body)
	}
}

// binFrame owns one decoded binary envelope and its decoder as a single
// allocation, keeping the steady-state decode path at two allocations
// (this struct plus the body's interface box).
type binFrame struct {
	env envelope
	dec Decoder
}

// decodeBinaryEnvelope rebuilds an envelope from a binary payload. Every
// corruption mode — truncation, unknown flags, unknown codec ID, bad
// field, trailing garbage — returns an error; nothing panics.
func decodeBinaryEnvelope(payload []byte) (*envelope, error) {
	f := &binFrame{dec: Decoder{data: payload}}
	d := &f.dec
	env := &f.env
	env.ID = d.Uvarint()
	flags := d.Byte()
	if flags&^(flagIsReply|flagHasErr|flagHasMeta|flagHasBody) != 0 {
		return nil, fmt.Errorf("rpc: decode: unknown envelope flags %#x", flags)
	}
	env.IsReply = flags&flagIsReply != 0
	if flags&flagHasErr != 0 {
		env.Err = d.String()
		env.Code = d.String()
	}
	if flags&flagHasMeta != 0 {
		env.Meta.TraceID = d.Uvarint()
		env.Meta.SpanID = d.Uvarint()
		env.Meta.Deadline = d.Varint()
	}
	if flags&flagHasBody != 0 {
		id := d.Uvarint()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if id == 0 || id > 0xffff {
			return nil, fmt.Errorf("rpc: decode: invalid codec ID %d", id)
		}
		entry := codecTablesSnapshot().byID[uint16(id)]
		if entry == nil {
			return nil, fmt.Errorf("rpc: decode: no codec registered for ID %d", id)
		}
		body, err := entry.dec(d)
		if err != nil {
			return nil, err
		}
		env.Body = body
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("rpc: decode: %d trailing bytes after envelope", d.Len())
	}
	return env, nil
}

// writeFrame encodes the envelope — binary when the body type has a
// registered codec (or there is no body), gob otherwise — and writes it as
// one length-prefixed versioned frame with a single Write (one message per
// Write keeps netem shaping faithful). The encode buffer is pooled, so the
// steady-state write path allocates nothing.
func writeFrame(w io.Writer, env *envelope) error {
	e := getEncoder()
	defer putEncoder(e)
	// Header placeholder: 4-byte length prefix, version, codec tag.
	e.buf = append(e.buf, 0, 0, 0, 0, wireVersion, codecGob)
	entry := lookupCodec(env.Body)
	binaryOK := entry != nil || (env.Body == nil && !binaryDisabled.Load())
	if binaryOK {
		encodeEnvelope(e, env, entry)
	} else if err := gob.NewEncoder(e).Encode(env); err != nil {
		return fmt.Errorf("rpc: encode: %w", err)
	}
	frame := e.buf
	payload := len(frame) - 4
	if payload > MaxMessageBytes {
		return fmt.Errorf("rpc: message of %d bytes exceeds limit", payload)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(payload))
	if binaryOK {
		frame[5] = codecBinary
		wireStats.binEnc.Add(1)
		wireStats.binByte.Add(uint64(payload - 2))
	} else {
		wireStats.gobEnc.Add(1)
		wireStats.gobByte.Add(uint64(payload - 2))
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("rpc: write: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed envelope, dispatching on the frame's
// version and codec tag. The frame buffer is allocated exactly-sized and
// never reused, so decoded byte-slice and string fields may alias it.
func readFrame(r io.Reader) (*envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxMessageBytes {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	if n < 2 {
		return nil, fmt.Errorf("rpc: frame of %d bytes lacks version header", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if buf[0] != wireVersion {
		return nil, fmt.Errorf("rpc: unsupported wire version %d (want %d)", buf[0], wireVersion)
	}
	payload := buf[2:]
	switch buf[1] {
	case codecBinary:
		env, err := decodeBinaryEnvelope(payload)
		if err != nil {
			return nil, err
		}
		wireStats.binDec.Add(1)
		return env, nil
	case codecGob:
		var env envelope
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
			return nil, fmt.Errorf("rpc: decode: %w", err)
		}
		wireStats.gobDec.Add(1)
		return &env, nil
	default:
		return nil, fmt.Errorf("rpc: unknown codec tag %d", buf[1])
	}
}

// Handler processes one request body and returns a reply body or an error.
// The context carries the caller's propagated deadline (if any) and is
// cancelled when the server shuts down.
type Handler func(ctx context.Context, body any) (any, error)

// MetaHandler additionally receives the request's envelope metadata, so
// servers can continue the caller's trace.
type MetaHandler func(ctx context.Context, meta Meta, body any) (any, error)

// ServeOption customizes a server.
type ServeOption func(*Server)

// WithShedHook installs a callback invoked (from the request goroutine)
// every time the server sheds a request whose propagated deadline already
// passed. Tiers use it to surface shed counts through their telemetry.
func WithShedHook(hook func()) ServeOption {
	return func(s *Server) { s.shedHook = hook }
}

// Server accepts connections and dispatches requests to a handler. Each
// request runs in its own goroutine; replies serialize on a per-connection
// write lock.
type Server struct {
	handler  MetaHandler
	ln       net.Listener
	shedHook func()
	sheds    uint64 // atomic: requests shed because their deadline passed

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port) and
// returns it; the returned server is already accepting. Handlers that need
// the envelope metadata use ServeMeta instead.
func Serve(addr string, handler Handler, opts ...ServeOption) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	return ServeMeta(addr, func(ctx context.Context, _ Meta, body any) (any, error) {
		return handler(ctx, body)
	}, opts...)
}

// ServeMeta is Serve for handlers that consume the request metadata (the
// caller's trace context).
func ServeMeta(addr string, handler MetaHandler, opts ...ServeOption) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	s := &Server{handler: handler, ln: ln, conns: make(map[net.Conn]struct{})}
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// DeadlineSheds returns the number of requests the server refused to handle
// because their propagated deadline had already passed on arrival.
func (s *Server) DeadlineSheds() uint64 { return atomic.LoadUint64(&s.sheds) }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		env, err := readFrame(conn)
		if err != nil {
			return // connection closed or corrupted
		}
		reqWG.Add(1)
		go func(env *envelope) {
			defer reqWG.Done()
			reply := &envelope{ID: env.ID, IsReply: true}
			body, err := s.dispatch(env.Meta, env.Body)
			if err != nil {
				reply.Err = err.Error()
				reply.Code = codeFor(err)
			} else {
				reply.Body = body
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, reply)
		}(env)
	}
}

// dispatch derives the request context from the envelope metadata, sheds
// already-expired work, and runs the handler.
func (s *Server) dispatch(meta Meta, body any) (any, error) {
	ctx := s.baseCtx
	if meta.Deadline > 0 {
		deadline := time.Unix(0, meta.Deadline)
		if !time.Now().Before(deadline) {
			atomic.AddUint64(&s.sheds, 1)
			if s.shedHook != nil {
				s.shedHook()
			}
			return nil, fmt.Errorf("rpc: request shed: %w", ErrDeadlineExceeded)
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	return s.safeHandle(ctx, meta, body)
}

// safeHandle invokes the handler, converting a panic into an error so one
// bad request cannot take the whole server (and every other tenant's
// connection) down.
func (s *Server) safeHandle(ctx context.Context, meta Meta, body any) (reply any, err error) {
	defer func() {
		if r := recover(); r != nil {
			reply = nil
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return s.handler(ctx, meta, body)
}

// Close stops accepting, closes all connections and waits for in-flight
// requests to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.cancelBase()
	s.wg.Wait()
	return err
}

// Client is a connection to a Server supporting concurrent correlated
// calls. An optional netem shaper paces outgoing messages.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	nextID  uint64

	mu      sync.Mutex
	pending map[uint64]chan *envelope
	closed  bool
	readErr error

	wg sync.WaitGroup
}

// Dial connects to addr. If shaper is non-nil, outgoing messages are paced
// through it.
func Dial(addr string, shaper *netem.Shaper) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), DialTimeout)
	defer cancel()
	return DialContext(ctx, addr, shaper)
}

// DialContext is Dial bounded by a context: the attempt stops at the
// context's deadline or cancellation, or after DialTimeout, whichever comes
// first. Dial failures wrap ErrPeerUnavailable.
func DialContext(ctx context.Context, addr string, shaper *netem.Shaper) (*Client, error) {
	d := net.Dialer{Timeout: DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w: %v", addr, ErrPeerUnavailable, err)
	}
	if shaper != nil {
		conn = shaper.Conn(conn)
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan *envelope)}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		env, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		if !env.IsReply {
			continue // this client does not serve requests
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

// Call sends body and waits for the correlated reply, the context's
// cancellation or its deadline, whichever comes first.
func (c *Client) Call(ctx context.Context, body any) (any, error) {
	return c.CallMeta(ctx, Meta{}, body)
}

// CallMeta sends body with request metadata (the caller's trace context)
// and waits for the correlated reply. The context's deadline, when set and
// tighter than meta.Deadline, is propagated to the server in the envelope so
// remote tiers can shed work that can no longer finish in time. Transport
// failures wrap ErrPeerUnavailable; an elapsed context wraps
// ErrDeadlineExceeded.
func (c *Client) CallMeta(ctx context.Context, meta Meta, body any) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, ctxError(err)
	}
	if d, ok := ctx.Deadline(); ok {
		if ns := d.UnixNano(); meta.Deadline == 0 || ns < meta.Deadline {
			meta.Deadline = ns
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.readErr != nil {
		// The reader has exited (peer closed or connection corrupted): no
		// reply can ever arrive, and a TCP write might still "succeed" into
		// the dead socket, so fail fast instead of waiting forever.
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: connection lost: %w: %v", ErrPeerUnavailable, err)
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *envelope, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, &envelope{ID: id, Meta: meta, Body: body})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: %w: %v", ErrPeerUnavailable, err)
	}

	select {
	case env, ok := <-ch:
		if !ok {
			c.mu.Lock()
			readErr := c.readErr
			c.mu.Unlock()
			if readErr != nil {
				return nil, fmt.Errorf("rpc: connection lost: %w: %v", ErrPeerUnavailable, readErr)
			}
			return nil, ErrClosed
		}
		if env.Err != "" {
			return nil, remoteError(env.Err, env.Code)
		}
		return env.Body, nil
	case <-ctx.Done():
		// Abandon the pending slot: a late reply finds no waiter and is
		// dropped by the read loop (the channel is buffered, so a racing
		// send cannot block it).
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctxError(ctx.Err())
	}
}

// ctxError maps a context error to the package's typed sentinels.
func ctxError(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("rpc: call abandoned: %w", ErrDeadlineExceeded)
	}
	return fmt.Errorf("rpc: call cancelled: %w", err)
}

// Close tears down the connection and waits for the reader to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
