// Package rpc is a minimal typed message layer over TCP for the testbed
// runtime: length-prefixed gob envelopes, concurrent request/response with
// correlation IDs, a handler-based server with graceful shutdown, and
// optional netem shaping on the client side (emulating the wireless uplink
// or the edge–cloud Internet path).
package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"leime/internal/netem"
)

// MaxMessageBytes bounds a single message; larger frames indicate protocol
// corruption.
const MaxMessageBytes = 16 << 20

// ErrClosed is returned by calls on a closed client or server.
var ErrClosed = errors.New("rpc: connection closed")

// Meta is the request metadata carried alongside the body in every
// envelope: the caller's telemetry context. TraceID groups all spans of one
// task lifecycle across tiers; SpanID is the caller-side span the remote
// work should nest under. The zero Meta means "untraced" and costs nothing
// beyond two zero varints in the gob stream.
type Meta struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the metadata carries a live trace.
func (m Meta) Valid() bool { return m.TraceID != 0 }

// envelope is the wire frame. Body carries any gob-registered value.
type envelope struct {
	ID      uint64
	IsReply bool
	Err     string
	Meta    Meta
	Body    any
}

// Register makes a message type transportable. Call it once per concrete
// type, typically from an init-free setup function in the owning package.
func Register(v any) { gob.Register(v) }

// writeFrame gob-encodes the envelope and writes it as one length-prefixed
// frame with a single Write (one message per Write keeps netem shaping
// faithful).
func writeFrame(w io.Writer, env *envelope) error {
	var body bytes.Buffer
	body.Write(make([]byte, 4)) // length placeholder
	if err := gob.NewEncoder(&body).Encode(env); err != nil {
		return fmt.Errorf("rpc: encode: %w", err)
	}
	frame := body.Bytes()
	payload := len(frame) - 4
	if payload > MaxMessageBytes {
		return fmt.Errorf("rpc: message of %d bytes exceeds limit", payload)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(payload))
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("rpc: write: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed envelope.
func readFrame(r io.Reader) (*envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxMessageBytes {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&env); err != nil {
		return nil, fmt.Errorf("rpc: decode: %w", err)
	}
	return &env, nil
}

// Handler processes one request body and returns a reply body or an error.
type Handler func(body any) (any, error)

// MetaHandler additionally receives the request's envelope metadata, so
// servers can continue the caller's trace.
type MetaHandler func(meta Meta, body any) (any, error)

// Server accepts connections and dispatches requests to a handler. Each
// request runs in its own goroutine; replies serialize on a per-connection
// write lock.
type Server struct {
	handler MetaHandler
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr ("127.0.0.1:0" for an ephemeral port) and
// returns it; the returned server is already accepting. Handlers that need
// the envelope metadata use ServeMeta instead.
func Serve(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	return ServeMeta(addr, func(_ Meta, body any) (any, error) { return handler(body) })
}

// ServeMeta is Serve for handlers that consume the request metadata (the
// caller's trace context).
func ServeMeta(addr string, handler MetaHandler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpc: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	s := &Server{handler: handler, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	var writeMu sync.Mutex
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	for {
		env, err := readFrame(conn)
		if err != nil {
			return // connection closed or corrupted
		}
		reqWG.Add(1)
		go func(env *envelope) {
			defer reqWG.Done()
			reply := &envelope{ID: env.ID, IsReply: true}
			body, err := s.safeHandle(env.Meta, env.Body)
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Body = body
			}
			writeMu.Lock()
			defer writeMu.Unlock()
			_ = writeFrame(conn, reply)
		}(env)
	}
}

// safeHandle invokes the handler, converting a panic into an error so one
// bad request cannot take the whole server (and every other tenant's
// connection) down.
func (s *Server) safeHandle(meta Meta, body any) (reply any, err error) {
	defer func() {
		if r := recover(); r != nil {
			reply = nil
			err = fmt.Errorf("rpc: handler panic: %v", r)
		}
	}()
	return s.handler(meta, body)
}

// Close stops accepting, closes all connections and waits for in-flight
// requests to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a connection to a Server supporting concurrent correlated
// calls. An optional netem shaper paces outgoing messages.
type Client struct {
	conn net.Conn

	writeMu sync.Mutex
	nextID  uint64

	mu      sync.Mutex
	pending map[uint64]chan *envelope
	closed  bool
	readErr error

	wg sync.WaitGroup
}

// Dial connects to addr. If shaper is non-nil, outgoing messages are paced
// through it.
func Dial(addr string, shaper *netem.Shaper) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	if shaper != nil {
		conn = shaper.Conn(conn)
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan *envelope)}
	c.wg.Add(1)
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	defer c.wg.Done()
	for {
		env, err := readFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		if !env.IsReply {
			continue // this client does not serve requests
		}
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
	}
}

// Call sends body and waits for the correlated reply.
func (c *Client) Call(body any) (any, error) { return c.CallMeta(Meta{}, body) }

// CallMeta sends body with request metadata (the caller's trace context)
// and waits for the correlated reply.
func (c *Client) CallMeta(meta Meta, body any) (any, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.readErr != nil {
		// The reader has exited (peer closed or connection corrupted): no
		// reply can ever arrive, and a TCP write might still "succeed" into
		// the dead socket, so fail fast instead of waiting forever.
		err := c.readErr
		c.mu.Unlock()
		return nil, fmt.Errorf("rpc: connection lost: %w", err)
	}
	c.nextID++
	id := c.nextID
	ch := make(chan *envelope, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, &envelope{ID: id, Meta: meta, Body: body})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}

	env, ok := <-ch
	if !ok {
		c.mu.Lock()
		readErr := c.readErr
		c.mu.Unlock()
		if readErr != nil {
			return nil, fmt.Errorf("rpc: connection lost: %w", readErr)
		}
		return nil, ErrClosed
	}
	if env.Err != "" {
		return nil, fmt.Errorf("rpc: remote: %s", env.Err)
	}
	return env.Body, nil
}

// Close tears down the connection and waits for the reader to exit.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}
