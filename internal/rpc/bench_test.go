package rpc

import (
	"context"
	"sync"
	"testing"
)

func benchServer(b *testing.B) *Server {
	b.Helper()
	s, err := Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) {
		req := body.(echoReq)
		return echoResp{Text: req.Text, N: req.N}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	return s
}

// BenchmarkCallRoundTrip measures one request/response over loopback TCP.
func BenchmarkCallRoundTrip(b *testing.B) {
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := echoReq{Text: "payload", N: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallConcurrent measures pipelined throughput on one connection.
func BenchmarkCallConcurrent(b *testing.B) {
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	const workers = 16
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/workers + 1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := echoReq{Text: "payload"}
			for i := 0; i < per; i++ {
				if _, err := c.Call(context.Background(), req); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	b.ReportMetric(float64(per*workers)/b.Elapsed().Seconds(), "calls/s")
}

// BenchmarkLargePayload measures a 64 KiB intermediate-tensor-sized message.
func BenchmarkLargePayload(b *testing.B) {
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := echoReq{Text: string(make([]byte, 64<<10))}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
