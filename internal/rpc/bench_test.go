package rpc

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

func benchServer(b *testing.B) *Server {
	b.Helper()
	s, err := Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) {
		req := body.(echoReq)
		return echoResp{Text: req.Text, N: req.N}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = s.Close() })
	return s
}

// benchTaskReq mirrors the shape of a block-continuation request (IDs, a
// tensor payload, an exit stage) so codec benchmarks measure a
// representative task message without importing the runtime package.
type benchTaskReq struct {
	DeviceID string
	TaskID   uint64
	Payload  []byte
	Exit     int
}

var benchCodecOnce sync.Once

// registerBenchCodecs gives the bench types binary codecs (high IDs, far
// from the runtime protocol's range) so benchmarks exercise the binary
// fast path; the *Gob variants force the fallback for comparison.
func registerBenchCodecs() {
	benchCodecOnce.Do(func() {
		RegisterCodec(60001, echoReq{},
			func(e *Encoder, v any) {
				r := v.(echoReq)
				e.String(r.Text)
				e.Int(r.N)
			},
			func(d *Decoder) (any, error) {
				var r echoReq
				r.Text = d.String()
				r.N = d.Int()
				return r, nil
			})
		RegisterCodec(60002, echoResp{},
			func(e *Encoder, v any) {
				r := v.(echoResp)
				e.String(r.Text)
				e.Int(r.N)
			},
			func(d *Decoder) (any, error) {
				var r echoResp
				r.Text = d.String()
				r.N = d.Int()
				return r, nil
			})
		RegisterCodec(60003, benchTaskReq{},
			func(e *Encoder, v any) {
				r := v.(benchTaskReq)
				e.String(r.DeviceID)
				e.Uvarint(r.TaskID)
				e.Bytes(r.Payload)
				e.Int(r.Exit)
			},
			func(d *Decoder) (any, error) {
				var r benchTaskReq
				r.DeviceID = d.String()
				r.TaskID = d.Uvarint()
				r.Payload = d.Bytes()
				r.Exit = d.Int()
				return r, nil
			})
	})
}

// BenchmarkCallRoundTrip measures one request/response over loopback TCP
// on the binary codec.
func BenchmarkCallRoundTrip(b *testing.B) {
	registerBenchCodecs()
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := echoReq{Text: "payload", N: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallRoundTripGob is BenchmarkCallRoundTrip with the binary
// codec disabled: the gob-fallback baseline the tentpole is measured
// against.
func BenchmarkCallRoundTripGob(b *testing.B) {
	registerBenchCodecs()
	restore := ForceGob()
	defer restore()
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := echoReq{Text: "payload", N: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// runConcurrent distributes exactly n calls over the workers (worker w
// takes one extra while w < n%workers), so the reported calls/s is an
// honest n/elapsed.
func runConcurrent(b *testing.B, c *Client, workers, n int) {
	var wg sync.WaitGroup
	base, extra := n/workers, n%workers
	for w := 0; w < workers; w++ {
		calls := base
		if w < extra {
			calls++
		}
		wg.Add(1)
		go func(calls int) {
			defer wg.Done()
			req := echoReq{Text: "payload"}
			for i := 0; i < calls; i++ {
				if _, err := c.Call(context.Background(), req); err != nil {
					b.Error(err)
					return
				}
			}
		}(calls)
	}
	wg.Wait()
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "calls/s")
}

// BenchmarkCallConcurrent measures pipelined throughput on one connection
// over the binary codec.
func BenchmarkCallConcurrent(b *testing.B) {
	registerBenchCodecs()
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	runConcurrent(b, c, 16, b.N)
}

// BenchmarkCallConcurrentGob is the gob-fallback baseline for
// BenchmarkCallConcurrent.
func BenchmarkCallConcurrentGob(b *testing.B) {
	registerBenchCodecs()
	restore := ForceGob()
	defer restore()
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	runConcurrent(b, c, 16, b.N)
}

// BenchmarkLargePayload measures a 64 KiB intermediate-tensor-sized message.
func BenchmarkLargePayload(b *testing.B) {
	registerBenchCodecs()
	s := benchServer(b)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	req := echoReq{Text: string(make([]byte, 64<<10))}
	b.SetBytes(64 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecTaskRoundTrip measures the steady-state codec cost of one
// task message — encode a frame, decode it back — isolated from the
// network. This is the ≤2 allocs/op budget the wire format is built
// around: the pooled encode path allocates nothing; decode allocates the
// envelope block and the body's interface box.
func BenchmarkCodecTaskRoundTrip(b *testing.B) {
	registerBenchCodecs()
	env := &envelope{
		ID:   7,
		Meta: Meta{TraceID: 11, SpanID: 13, Deadline: 1_700_000_000_000_000_000},
		Body: benchTaskReq{DeviceID: "device-42", TaskID: 99, Payload: make([]byte, 1024), Exit: 2},
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeFrame(&buf, env); err != nil {
			b.Fatal(err)
		}
		if _, err := decodeBinaryEnvelope(buf.Bytes()[frameHeaderLen:]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecTaskRoundTripGob measures the same message through the
// gob fallback: the reflection cost the binary codec removes.
func BenchmarkCodecTaskRoundTripGob(b *testing.B) {
	registerBenchCodecs()
	Register(benchTaskReq{})
	restore := ForceGob()
	defer restore()
	env := &envelope{
		ID:   7,
		Meta: Meta{TraceID: 11, SpanID: 13, Deadline: 1_700_000_000_000_000_000},
		Body: benchTaskReq{DeviceID: "device-42", TaskID: 99, Payload: make([]byte, 1024), Exit: 2},
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := writeFrame(&buf, env); err != nil {
			b.Fatal(err)
		}
		if _, err := readFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
