package rpc

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// leakCheck snapshots the goroutine count and verifies (with retries, since
// exits are asynchronous) that it returns to baseline by test end.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
	})
}

// silentServer accepts connections and reads frames but never replies —
// the pathological peer that forces callers to rely on their deadline.
func silentServer(t *testing.T) (addr string, accepted *atomic.Int32) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	accepted = &atomic.Int32{}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				close(done)
				return
			}
			accepted.Add(1)
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					select {
					case <-done:
						return
					default:
					}
					_ = conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
					if _, err := conn.Read(buf); err != nil {
						if ne, ok := err.(net.Error); ok && ne.Timeout() {
							continue
						}
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String(), accepted
}

func TestCallDeadlineAgainstSilentServer(t *testing.T) {
	leakCheck(t)
	addr, _ := silentServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Call(ctx, echoReq{Text: "anyone there"})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("silent server call = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded must also match context.DeadlineExceeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline fired late: %v", elapsed)
	}
	// The pending slot must have been reclaimed.
	c.mu.Lock()
	pending := len(c.pending)
	c.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d pending entries leaked after abandoned call", pending)
	}
}

func TestCallCancellation(t *testing.T) {
	leakCheck(t)
	addr, _ := silentServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, echoReq{})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled call = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock the call")
	}
}

// TestMidFrameConnectionDrop severs the TCP connection while a reply frame
// is partially written: the client must surface a typed transport error on
// the in-flight call and on subsequent calls, without hanging.
func TestMidFrameConnectionDrop(t *testing.T) {
	leakCheck(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the request frame, then write half a reply and drop.
		lenBuf := make([]byte, 4)
		if _, err := readFull(conn, lenBuf); err != nil {
			conn.Close()
			return
		}
		n := binary.BigEndian.Uint32(lenBuf)
		body := make([]byte, n)
		if _, err := readFull(conn, body); err != nil {
			conn.Close()
			return
		}
		// Announce an 80-byte reply but send only 10 bytes of it.
		reply := make([]byte, 14)
		binary.BigEndian.PutUint32(reply[:4], 80)
		_, _ = conn.Write(reply)
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_, err = c.Call(ctx, echoReq{Text: "half"})
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("mid-frame drop = %v, want ErrPeerUnavailable", err)
	}
	// The connection is dead: later calls fail fast with the same typed
	// cause rather than blocking.
	start := time.Now()
	_, err = c.Call(context.Background(), echoReq{Text: "again"})
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Errorf("call on dead connection = %v, want ErrPeerUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("dead-connection call blocked %v", elapsed)
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TestReplyAfterClose lets the server answer a call whose client has
// already been closed: the late reply must be dropped cleanly (no panic,
// no deadlock) and the call must have returned ErrClosed-typed failure.
func TestReplyAfterClose(t *testing.T) {
	leakCheck(t)
	s := startEcho(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), slowReq{Delay: 300 * time.Millisecond, Tag: 9})
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // request reaches the server
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("call succeeded although its client closed underneath it")
		} else if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrPeerUnavailable) {
			t.Errorf("reply-after-close call = %v, want ErrClosed or ErrPeerUnavailable", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("call hung after client close")
	}
	// The server finishes its handler and writes into the closed socket;
	// give that a moment and ensure nothing explodes server-side by making
	// a fresh call on a fresh client.
	time.Sleep(400 * time.Millisecond)
	c2, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Call(context.Background(), echoReq{Text: "fresh"}); err != nil {
		t.Errorf("server unhealthy after reply-after-close: %v", err)
	}
}

// TestDeadlinePropagatesToServer proves the deadline rides the envelope:
// a request sent with an already-distant deadline is served, while one
// whose deadline passes before the server reads it is shed with the typed
// sentinel and counted.
func TestDeadlinePropagatesToServer(t *testing.T) {
	leakCheck(t)
	var sheds atomic.Int32
	s, err := ServeMeta("127.0.0.1:0", func(ctx context.Context, meta Meta, body any) (any, error) {
		if _, ok := ctx.Deadline(); !ok {
			return nil, errors.New("handler context missing the propagated deadline")
		}
		return body, nil
	}, WithShedHook(func() { sheds.Add(1) }))
	if err != nil {
		t.Fatalf("ServeMeta: %v", err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, echoReq{Text: "in time"}); err != nil {
		t.Fatalf("timely call: %v", err)
	}

	// A meta deadline already in the past must be shed server-side. Bypass
	// the client-side ctx check by setting only meta.Deadline.
	past := Meta{Deadline: time.Now().Add(-time.Second).UnixNano()}
	_, err = c.CallMeta(context.Background(), past, echoReq{Text: "too late"})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired call = %v, want ErrDeadlineExceeded", err)
	}
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Error("shed error should arrive as a RemoteError")
	}
	if !strings.Contains(err.Error(), "shed") {
		t.Errorf("shed error text = %q", err)
	}
	if s.DeadlineSheds() != 1 || sheds.Load() != 1 {
		t.Errorf("sheds = %d (hook %d), want 1", s.DeadlineSheds(), sheds.Load())
	}
}

// TestRegisteredErrorCrossesWire checks that a handler error matching a
// registered sentinel is rebuilt typed on the caller side.
func TestRegisteredErrorCrossesWire(t *testing.T) {
	leakCheck(t)
	sentinel := errors.New("rpc_test: flaky storage")
	RegisterError("rpc_test/flaky", sentinel)
	s, err := Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) {
		return nil, &wrapErr{cause: sentinel, msg: "load shard 7"}
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), echoReq{})
	if !errors.Is(err, sentinel) {
		t.Errorf("remote error %v lost its sentinel across the wire", err)
	}
	// Unregistered errors still travel as plain RemoteErrors.
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Error("expected a RemoteError wrapper")
	}
}

type wrapErr struct {
	cause error
	msg   string
}

func (e *wrapErr) Error() string { return e.msg + ": " + e.cause.Error() }
func (e *wrapErr) Unwrap() error { return e.cause }

func TestRegisterErrorPanicsOnDuplicate(t *testing.T) {
	first := errors.New("first")
	RegisterError("rpc_test/dup", first)
	RegisterError("rpc_test/dup", first) // same sentinel: fine
	defer func() {
		if recover() == nil {
			t.Error("re-registering a code with a different sentinel did not panic")
		}
	}()
	RegisterError("rpc_test/dup", errors.New("second"))
}
