package rpc

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic and never return an envelope from malformed input without an error.
func FuzzReadFrame(f *testing.F) {
	// Seed with a valid frame.
	var buf bytes.Buffer
	if err := writeFrame(&buf, &envelope{ID: 1, Body: "hello"}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	corrupted := append([]byte(nil), buf.Bytes()...)
	if len(corrupted) > 8 {
		corrupted[8] ^= 0x55
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := readFrame(bytes.NewReader(data))
		if err == nil && env == nil {
			t.Fatal("nil envelope without error")
		}
	})
}

// FuzzFrameRoundTrip checks that every string body survives a write/read
// cycle byte-identically.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("", uint64(0))
	f.Add("hello", uint64(42))
	f.Add(string(make([]byte, 1000)), uint64(1<<60))
	f.Fuzz(func(t *testing.T, body string, id uint64) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, &envelope{ID: id, Body: body}); err != nil {
			t.Skip() // oversized bodies are legitimately rejected
		}
		// Frame length prefix must match the payload.
		if got := binary.BigEndian.Uint32(buf.Bytes()[:4]); int(got) != buf.Len()-4 {
			t.Fatalf("length prefix %d, payload %d", got, buf.Len()-4)
		}
		env, err := readFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if env.ID != id {
			t.Fatalf("ID %d != %d", env.ID, id)
		}
		if got, ok := env.Body.(string); !ok || got != body {
			t.Fatalf("body %q (%T) != %q", env.Body, env.Body, body)
		}
	})
}
