package rpc

import (
	"bytes"
	"io"
)

// Test-only exports: external test packages (which may import the runtime
// protocol without creating an import cycle) drive the frame codec through
// these wrappers.

// TestEnvelope mirrors the unexported envelope for test construction.
type TestEnvelope struct {
	ID      uint64
	IsReply bool
	Err     string
	Code    string
	Meta    Meta
	Body    any
}

// MarshalFrame encodes env exactly as a client or server would write it:
// one length-prefixed versioned frame.
func MarshalFrame(env TestEnvelope) ([]byte, error) {
	var buf bytes.Buffer
	err := writeFrame(&buf, &envelope{
		ID: env.ID, IsReply: env.IsReply,
		Err: env.Err, Code: env.Code,
		Meta: env.Meta, Body: env.Body,
	})
	return buf.Bytes(), err
}

// UnmarshalFrame decodes one frame from data.
func UnmarshalFrame(data []byte) (TestEnvelope, error) {
	env, err := readFrame(bytes.NewReader(data))
	if err != nil {
		return TestEnvelope{}, err
	}
	return TestEnvelope{
		ID: env.ID, IsReply: env.IsReply,
		Err: env.Err, Code: env.Code,
		Meta: env.Meta, Body: env.Body,
	}, nil
}

// ReadFrameForTest decodes one frame from a reader, returning only the
// decode error (fuzzers probing corrupt input).
func ReadFrameForTest(r io.Reader) error {
	_, err := readFrame(r)
	return err
}

// ForceGob disables the binary codec for differential testing and returns
// a restore function.
func ForceGob() (restore func()) {
	binaryDisabled.Store(true)
	return func() { binaryDisabled.Store(false) }
}

// BinaryEligible reports whether body would ride the binary codec.
func BinaryEligible(body any) bool {
	return body == nil || lookupCodec(body) != nil
}
