package rpc

import (
	"context"
	"encoding/binary"
	"net"
	"testing"
	"time"
)

type panicReq struct{ Msg string }

func init() { Register(panicReq{}) }

func startHardenedServer(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) {
		switch req := body.(type) {
		case panicReq:
			panic(req.Msg)
		case echoReq:
			return echoResp{Text: req.Text, N: req.N}, nil
		default:
			return nil, nil
		}
	})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestHandlerPanicBecomesError(t *testing.T) {
	s := startHardenedServer(t)
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), panicReq{Msg: "boom"}); err == nil {
		t.Fatal("panic not surfaced as error")
	}
	// The server (and the same connection) must still work afterwards.
	got, err := c.Call(context.Background(), echoReq{Text: "still alive", N: 1})
	if err != nil {
		t.Fatalf("call after panic: %v", err)
	}
	if got.(echoResp).Text != "still alive" {
		t.Errorf("wrong reply %+v", got)
	}
}

func TestCorruptFrameClosesOnlyThatConnection(t *testing.T) {
	s := startHardenedServer(t)

	// A raw connection sends garbage bytes with a plausible length prefix.
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	defer raw.Close()
	frame := make([]byte, 4+16)
	binary.BigEndian.PutUint32(frame[:4], 16)
	for i := 4; i < len(frame); i++ {
		frame[i] = 0xff
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatalf("write garbage: %v", err)
	}
	// The server should drop the corrupted connection: a read eventually
	// returns EOF/reset rather than hanging.
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Error("server kept a corrupted connection alive with data")
	}

	// A healthy client is unaffected.
	c, err := Dial(s.Addr(), nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), echoReq{Text: "ok"}); err != nil {
		t.Errorf("healthy client failed after another connection corrupted: %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	s := startHardenedServer(t)
	raw, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	defer raw.Close()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], MaxMessageBytes+1)
	if _, err := raw.Write(lenBuf[:]); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Error("server accepted an oversized frame announcement")
	}
}

func TestClientSurvivesServerRestart(t *testing.T) {
	s := startHardenedServer(t)
	addr := s.Addr()
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), echoReq{Text: "one"}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	_ = s.Close()
	// Calls on the dead connection fail fast rather than hanging.
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), echoReq{Text: "two"})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("call to closed server succeeded")
		}
	case <-time.After(3 * time.Second):
		t.Error("call to closed server hung")
	}
	// A fresh server on a fresh port accepts a fresh client.
	s2, err := Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) { return body, nil })
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()
	c2, err := Dial(s2.Addr(), nil)
	if err != nil {
		t.Fatalf("redial: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Call(context.Background(), echoReq{Text: "three"}); err != nil {
		t.Errorf("call after restart: %v", err)
	}
}
