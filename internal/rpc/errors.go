package rpc

import (
	"context"
	"errors"
	"sync"
)

// Typed sentinel errors for the transport. Callers classify failures with
// errors.Is instead of matching error strings: ErrPeerUnavailable and
// ErrClosed describe the local connection, ErrDeadlineExceeded the request's
// time budget, ErrCircuitOpen the reliability layer's fail-fast state.
var (
	// ErrClosed is returned by calls on a closed client or server.
	ErrClosed = errors.New("rpc: connection closed")
	// ErrPeerUnavailable marks transport-level failures: the peer cannot be
	// dialed, the connection died mid-call, or a write failed. Work rejected
	// with it never reached (or never completed at) the remote handler, so
	// idempotent requests may be retried.
	ErrPeerUnavailable = errors.New("rpc: peer unavailable")
	// ErrCircuitOpen is returned by a ReliableClient whose circuit breaker
	// is open: the peer failed repeatedly and calls fail fast until the
	// cooldown elapses. Callers should degrade (e.g. run work locally).
	ErrCircuitOpen = errors.New("rpc: circuit breaker open")
	// ErrDeadlineExceeded marks a call that ran out of time budget — on the
	// caller (context deadline fired awaiting the reply) or on the server
	// (the propagated deadline had already passed, so the request was shed).
	// It also matches context.DeadlineExceeded via errors.Is.
	ErrDeadlineExceeded error = deadlineError{}
)

// deadlineError lets errors.Is(err, context.DeadlineExceeded) succeed for
// deadline failures surfaced by this package, while remaining a distinct
// sentinel.
type deadlineError struct{}

func (deadlineError) Error() string { return "rpc: deadline exceeded" }

func (deadlineError) Is(target error) bool { return target == context.DeadlineExceeded }

// Wire error codes. A handler error that matches a registered sentinel (via
// errors.Is) travels as its code alongside the message text, and the client
// rebuilds an error that wraps the same sentinel — errors.Is works across
// the connection without string matching.
var (
	codesMu   sync.RWMutex
	sentinels = map[string]error{}
)

// RegisterError associates a wire code with a sentinel error. Packages that
// define application-level sentinels (e.g. the runtime's backpressure error)
// register them once at setup so they survive the trip through the envelope.
// Codes must be unique; re-registering a code with a different sentinel
// panics, mirroring gob.Register.
func RegisterError(code string, sentinel error) {
	if code == "" || sentinel == nil {
		panic("rpc: RegisterError needs a code and a sentinel")
	}
	codesMu.Lock()
	defer codesMu.Unlock()
	//lint:ignore wireerrors identity on purpose: re-registering the same sentinel object is idempotent, an equivalent-but-distinct error is a bug
	if prev, ok := sentinels[code]; ok && prev != sentinel {
		panic("rpc: duplicate error code " + code)
	}
	sentinels[code] = sentinel
}

func init() {
	RegisterError("rpc/deadline", ErrDeadlineExceeded)
	// The connection-state sentinels are minted on the client side, but a
	// server that is itself a client (an edge calling its cloud) returns
	// them from handlers, so they need wire codes like any other sentinel.
	RegisterError("rpc/closed", ErrClosed)
	RegisterError("rpc/peer-unavailable", ErrPeerUnavailable)
	RegisterError("rpc/circuit-open", ErrCircuitOpen)
}

// codeFor returns the wire code of the registered sentinel err matches, or
// "" for uncoded errors. An error matching several sentinels always maps
// to the lexicographically smallest code: map iteration order must not
// decide what goes on the wire.
func codeFor(err error) string {
	codesMu.RLock()
	defer codesMu.RUnlock()
	best := ""
	for code, sentinel := range sentinels {
		if errors.Is(err, sentinel) && (best == "" || code < best) {
			best = code
		}
	}
	return best
}

// sentinelFor resolves a wire code back to its sentinel, nil if unknown.
func sentinelFor(code string) error {
	codesMu.RLock()
	defer codesMu.RUnlock()
	return sentinels[code]
}

// RemoteError is an error returned by the remote handler, reconstructed on
// the caller side. It unwraps to the registered sentinel matching the wire
// code, so errors.Is classifies remote failures exactly like local ones.
type RemoteError struct {
	// Msg is the remote handler's error text.
	Msg string
	// sentinel is the decoded typed cause; nil for uncoded errors.
	sentinel error
}

// Error returns the remote message prefixed with the transport's tag.
func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// Unwrap exposes the typed cause for errors.Is/errors.As.
func (e *RemoteError) Unwrap() error { return e.sentinel }

// remoteError builds the caller-side error for a reply envelope carrying an
// error, resolving its wire code to a sentinel when one is registered.
func remoteError(msg, code string) error {
	return &RemoteError{Msg: msg, sentinel: sentinelFor(code)}
}
