package bench

import (
	"fmt"
	"io"

	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/metrics"
	"leime/internal/model"
)

// Fig6 reproduces the ME-DNN accuracy-loss study of Fig. 6: the accuracy
// loss of every (First, Second) exit combination relative to the original
// single-exit network, for all four architectures. Paper means: Inception v3
// 1.62%, ResNet-34 0.55%, SqueezeNet-1.0 0.44%, VGG-16 1.14%; ResNet-34 and
// SqueezeNet-1.0 show negative losses (accuracy gains) for many combinations
// due to the "overthinking" effect.
func Fig6() Experiment {
	return Experiment{
		ID:    "fig6",
		Title: "Fig. 6: ME-DNN accuracy loss across exit combinations (paper means: 1.62/0.55/0.44/1.14%)",
		Run:   runFig6,
	}
}

// paperMeanLoss maps architecture to the accuracy loss Fig. 6 reports.
var paperMeanLoss = map[string]float64{
	"inception-v3":   0.0162,
	"resnet-34":      0.0055,
	"squeezenet-1.0": 0.0044,
	"vgg-16":         0.0114,
}

func runFig6(w io.Writer, quick bool) error {
	ds, err := dataset.Generate(dataset.CIFAR10Like, calibSize, calibSeed)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("model", "combos", "mean_loss_pct", "min_loss_pct", "max_loss_pct", "negative_combos", "paper_mean_pct")
	profiles := model.All()
	if quick {
		profiles = profiles[:2]
	}
	for _, p := range profiles {
		conf, th, _, err := confidence.Calibrated(p, ds, calibSeed)
		if err != nil {
			return err
		}
		var sum, minL, maxL float64
		minL, maxL = 1, -1
		count, neg := 0, 0
		for e1 := 1; e1 < p.NumExits()-1; e1++ {
			for e2 := e1 + 1; e2 < p.NumExits(); e2++ {
				ev, err := conf.Evaluate(ds, e1, e2, th)
				if err != nil {
					return err
				}
				l := ev.AccuracyLoss()
				sum += l
				if l < minL {
					minL = l
				}
				if l > maxL {
					maxL = l
				}
				if l < 0 {
					neg++
				}
				count++
			}
		}
		tbl.AddRow(p.Name, count, 100*sum/float64(count), 100*minL, 100*maxL, neg,
			100*paperMeanLoss[p.Name])
	}
	fmt.Fprintln(w, "Accuracy loss of all (First, Second) exit combinations vs original DNN:")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w, "\nNegative loss = multi-exit network beats the original (overthinking avoided).")

	// Heatmap slice: the Inception v3 loss surface along the diagonal band,
	// showing that deeper exit pairs shrink the loss (the paper's (a) panel).
	p := model.InceptionV3()
	conf, th, _, err := confidence.Calibrated(p, ds, calibSeed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nME-Inception v3 loss (%) for Second-exit = First-exit + 2:")
	tbl2 := metrics.NewTable("first_exit", "second_exit", "loss_pct")
	for e1 := 1; e1+2 < p.NumExits(); e1 += 2 {
		ev, err := conf.Evaluate(ds, e1, e1+2, th)
		if err != nil {
			return err
		}
		tbl2.AddRow(e1, e1+2, 100*ev.AccuracyLoss())
	}
	fmt.Fprint(w, tbl2.String())
	return nil
}
