package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"leime/internal/loadgen"
	"leime/internal/metrics"
	"leime/internal/offload"
	"leime/internal/runtime"
)

// Selftune is the closed-loop control-plane study behind DESIGN.md §15, in
// two parts. Part A sweeps offered rate with per-task deadlines and compares
// the static-optimal batch window (the point the capacity experiment
// located) against the adaptive controller that has to find the same
// operating point online from observed arrivals and p99 — adaptive should
// hold its throughput within a few percent while shedding doomed tasks at
// the door instead of timing them out. Part B saturates the edge and
// compares three overload strategies: no degradation, the blind exit-3->2
// cap (which frees no edge compute — block 3 is cloud work), and the
// accuracy-maximizing planner that demotes the cheapest tenants to exit 1.
// The frontier is accuracy-weighted throughput: targeted degradation
// completes more tasks at a modest accuracy cost, so its correct answers
// per second dominate both baselines past the knee.
func Selftune() Experiment {
	return Experiment{
		ID:    "selftune",
		Title: "Self-tuning control plane: adaptive batching and degradation frontier",
		Run:   runSelftune,
	}
}

// selftuneModel is the capacity experiment's workload: the sweep straddles
// the ~73 tasks/s/tenant knee of a 4 GFLOPS edge split four ways.
func selftuneModel() offload.ModelParams {
	return offload.ModelParams{
		Mu:    [3]float64{2e8, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
}

const (
	selftuneDevices   = 4
	selftuneEdgeFLOPS = 4e9
	selftuneScale     = runtime.Scale(0.02)
	selftuneBudgetSec = 3.0
	selftuneSeed      = 77
	// selftuneDeadlineSec is the per-task wall-clock budget: generous next
	// to the ~14 ms expected service below the knee, so sub-knee points
	// should miss essentially never.
	selftuneDeadlineSec = 1.0
)

func runSelftune(w io.Writer, quick bool) error {
	rates := []float64{30, 60, 120, 240}
	duration := 1500 * time.Millisecond
	if quick {
		rates = []float64{30, 120}
		duration = 400 * time.Millisecond
	}
	if err := runSelftuneAdaptive(w, rates, duration); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return runSelftuneDegrade(w, rates, duration)
}

// sweepVariant runs the standard selftune testbed (fresh edge + cloud) under
// one control policy across the rate sweep.
func sweepVariant(policy runtime.ControlPolicy, idPrefix string, rates []float64, duration time.Duration, deadlineSec float64) (*loadgen.SweepResult, error) {
	model := selftuneModel()
	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: model.Mu[2],
		TimeScale:   selftuneScale,
	})
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	edge, err := runtime.StartEdge(runtime.EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     selftuneEdgeFLOPS,
		Model:     model,
		CloudAddr: cloud.Addr(),
		TimeScale: selftuneScale,
		Policy:    policy,
	})
	if err != nil {
		return nil, err
	}
	defer edge.Close()
	return loadgen.Sweep(context.Background(), loadgen.Config{
		EdgeAddr:    edge.Addr(),
		Devices:     selftuneDevices,
		Duration:    duration,
		Seed:        selftuneSeed,
		Model:       model,
		DeadlineSec: deadlineSec,
		IDPrefix:    idPrefix,
	}, rates)
}

// runSelftuneAdaptive is part A: static-optimal window vs the adaptive
// controller, both under the same admission budget and deadline workload.
func runSelftuneAdaptive(w io.Writer, rates []float64, duration time.Duration) error {
	static, err := sweepVariant(runtime.ControlPolicy{
		MaxBacklogSec: selftuneBudgetSec,
		Batch:         runtime.BatchConfig{MaxSize: 8, MaxDelaySec: 0.05},
	}, "st-static", rates, duration, selftuneDeadlineSec)
	if err != nil {
		return err
	}
	adaptive, err := sweepVariant(runtime.ControlPolicy{
		MaxBacklogSec:     selftuneBudgetSec,
		DeadlineAdmission: true,
		EDF:               true,
		AdaptiveBatch:     true,
	}, "st-adapt", rates, duration, selftuneDeadlineSec)
	if err != nil {
		return err
	}

	tbl := metrics.NewTable("rate_per_dev", "static_per_s", "adaptive_per_s", "ratio", "adaptive_miss_pct", "adaptive_p99_ms")
	for i := range rates {
		sp, ap := static.Points[i], adaptive.Points[i]
		ratio := 0.0
		if sp.AchievedRate > 0 {
			ratio = ap.AchievedRate / sp.AchievedRate
		}
		missPct := 0.0
		if ap.Generated > 0 {
			missPct = 100 * float64(ap.DeadlineSheds) / float64(ap.Generated)
		}
		tbl.AddRow(rates[i], sp.AchievedRate, ap.AchievedRate, ratio, missPct, ap.Latency.P99*1000)
	}
	fmt.Fprintf(w, "Adaptive window vs static optimum: %d devices, %.3g FLOPS edge, %.0fs deadline base:\n",
		selftuneDevices, selftuneEdgeFLOPS, selftuneDeadlineSec)
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w, "\nThe static variant pins the window the capacity experiment found optimal;")
	fmt.Fprintln(w, "the adaptive variant must find it online. Ratio near 1 across the sweep")
	fmt.Fprintln(w, "means the controller tracks the static optimum; sub-knee miss percentages")
	fmt.Fprintln(w, "near 0 mean deadline admission only refuses genuinely doomed work.")
	return nil
}

// degradeStrategy is one overload-handling configuration of part B.
type degradeStrategy struct {
	name   string
	policy runtime.ControlPolicy
}

// runSelftuneDegrade is part B: the accuracy-throughput frontier of the
// degradation strategies. Exits in the loadgen report are the stages the
// edge actually answered through, so aggregate accuracy is measured, not
// planned.
func runSelftuneDegrade(w io.Writer, rates []float64, duration time.Duration) error {
	strategies := []degradeStrategy{
		{name: "none", policy: runtime.ControlPolicy{MaxBacklogSec: selftuneBudgetSec}},
		{name: "blind", policy: runtime.ControlPolicy{
			MaxBacklogSec: selftuneBudgetSec,
			Degrade:       runtime.DegradePolicy{Enabled: true, Blind: true},
		}},
		{name: "targeted", policy: runtime.ControlPolicy{
			MaxBacklogSec: selftuneBudgetSec,
			Degrade:       runtime.DegradePolicy{Enabled: true},
		}},
	}
	acc := runtime.DefaultExitAccuracy

	tbl := metrics.NewTable("strategy", "rate_per_dev", "achieved_per_s", "exit1", "exit2", "exit3", "accuracy", "correct_per_s")
	// goodput[name][i] is strategy name's accuracy-weighted throughput at
	// rates[i] — the frontier the verdict below compares.
	goodput := make(map[string][]float64, len(strategies))
	for _, s := range strategies {
		sweep, err := sweepVariant(s.policy, "st-deg-"+s.name, rates, duration, 0)
		if err != nil {
			return err
		}
		for i, p := range sweep.Points {
			correct := 0.0
			for e, n := range p.Exits {
				correct += float64(n) * acc[e]
			}
			accuracy := 0.0
			if p.Completed > 0 {
				accuracy = correct / float64(p.Completed)
			}
			perSec := correct / duration.Seconds()
			goodput[s.name] = append(goodput[s.name], perSec)
			tbl.AddRow(s.name, rates[i], p.AchievedRate, p.Exits[0], p.Exits[1], p.Exits[2], accuracy, perSec)
		}
	}
	fmt.Fprintf(w, "Degradation frontier: %d devices, %.3g FLOPS edge, %.0f%% planner budget:\n",
		selftuneDevices, selftuneEdgeFLOPS, 100*runtime.DefaultDegradeUtilization)
	fmt.Fprint(w, tbl.String())

	last := len(rates) - 1
	ratio := 0.0
	if goodput["blind"][last] > 0 {
		ratio = goodput["targeted"][last] / goodput["blind"][last]
	}
	fmt.Fprintln(w, "\nBlind 3->2 capping sacrifices deep-exit accuracy without freeing edge")
	fmt.Fprintln(w, "compute (block 3 runs on the cloud), so its throughput tracks the")
	fmt.Fprintln(w, "no-degradation knee; the targeted planner demotes whole tenants to exit 1")
	fmt.Fprintln(w, "only when offered demand exceeds the budget, buying throughput with the")
	fmt.Fprintln(w, "cheapest accuracy available.")
	fmt.Fprintf(w, "Saturated point (%.0f tasks/s/device): targeted delivers %.2fx the correct\nanswers per second of blind capping.\n",
		rates[last], ratio)
	return nil
}
