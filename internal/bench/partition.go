package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/partition"
	"leime/internal/runtime"
	"leime/internal/sim"
)

// Partition is the pipeline-partitioning study behind DESIGN.md §16: a
// resnet-34-class model on weak (~1.5 GFLOPS) edge workers, where no single
// node sustains the offered load. The chain-cut solver prices every cut
// with the profile's prefix sums and d_l transfer costs; the study shows
// (a) capacity caps making the model infeasible on any one node but
// feasible across the chain, (b) the pipelined cut beating single-edge
// offload under load on the event simulator, and (c) the analytic, event
// and loopback-TCP substrates agreeing on the same cut's per-class latency.
func Partition() Experiment {
	return Experiment{
		ID:    "partition",
		Title: "Pipeline partitioning: chain cuts vs single-edge offload on weak workers",
		Run:   runPartition,
	}
}

func runPartition(w io.Writer, quick bool) error {
	_, err := RunPartitionStudy(w, quick)
	return err
}

// PartitionReport is the machine-readable outcome of the partition study
// (the PARTITION_9.json payload).
type PartitionReport struct {
	// Arch names the profiled backbone.
	Arch string `json:"arch"`
	// E1 and E2 are the deployed exit positions (E3 is the final layer).
	E1 int `json:"e1"`
	E2 int `json:"e2"`
	// WorkerFLOPS lists the chain workers' compute ratings.
	WorkerFLOPS []float64 `json:"worker_flops"`
	// Solver summarizes the analytic comparison at the study's load.
	Solver PartitionSolverReport `json:"solver"`
	// Capacity is the model-too-big-for-one-node scenario.
	Capacity PartitionCapacityReport `json:"capacity"`
	// Load is the event-simulated under-load comparison (deterministic for
	// a fixed seed — the CI acceptance numbers).
	Load PartitionLoadReport `json:"load"`
	// Differential is the three-substrate agreement check on the chosen cut.
	Differential PartitionDifferentialReport `json:"differential"`
}

// PartitionSolverReport is the analytic solver's view of the study chain.
type PartitionSolverReport struct {
	// SingleSustainableRate is 1 / service time of the whole model on one
	// worker — the single-edge saturation point.
	SingleSustainableRate float64 `json:"single_sustainable_per_sec"`
	// SingleIdleLatencySec is the expected idle latency of single-edge
	// offload.
	SingleIdleLatencySec float64 `json:"single_idle_latency_sec"`
	// OfferedRate is the offered load the solver priced queueing at.
	OfferedRate float64 `json:"rate_per_sec"`
	// Cuts is the chosen chain cut (layer indices, last = model depth).
	Cuts []int `json:"cuts"`
	// Stages is the number of pipeline stages in the chosen cut.
	Stages int `json:"stages"`
	// ChainSustainableRate is 1 / bottleneck stage service time.
	ChainSustainableRate float64 `json:"chain_sustainable_per_sec"`
	// ChainIdleLatencySec is the chosen cut's expected idle latency.
	ChainIdleLatencySec float64 `json:"chain_idle_latency_sec"`
}

// PartitionCapacityReport is the per-node capacity scenario: the same
// model with worker CapFLOPs below its per-task operation count.
type PartitionCapacityReport struct {
	// CapFLOPs is the per-task operation bound applied to every worker.
	CapFLOPs float64 `json:"cap_flops"`
	// SingleInfeasible reports that one capped worker cannot host the model.
	SingleInfeasible bool `json:"single_infeasible"`
	// ChainStages is the stage count of the feasible capped-chain cut.
	ChainStages int `json:"chain_stages"`
}

// PartitionLoadPoint is one arm of the under-load comparison.
type PartitionLoadPoint struct {
	// Stages is the arm's pipeline depth (1 = single-edge offload).
	Stages int `json:"stages"`
	// Generated and Completed count tasks over the horizon plus drain.
	Generated int `json:"generated"`
	Completed int `json:"completed"`
	// MeanSec and P95Sec summarize end-to-end completion time.
	MeanSec float64 `json:"mean_sec"`
	P95Sec  float64 `json:"p95_sec"`
}

// PartitionLoadReport compares single-edge offload with the pipelined cut
// under the same open-loop workload.
type PartitionLoadReport struct {
	// OfferedRate is the offered Poisson rate; above the single worker's
	// sustainable rate, below the chain's.
	OfferedRate float64 `json:"rate_per_sec"`
	// HorizonSec is the generation horizon (the chain drains afterwards).
	HorizonSec float64 `json:"horizon_sec"`
	// Seed pins arrival and exit sampling.
	Seed int64 `json:"seed"`
	// Single and Pipelined are the two arms.
	Single    PartitionLoadPoint `json:"single"`
	Pipelined PartitionLoadPoint `json:"pipelined"`
	// Speedup is single mean latency over pipelined mean latency; > 1 means
	// the pipeline wins.
	Speedup float64 `json:"speedup"`
}

// PartitionClassPoint is one exit class's latency on all three substrates.
type PartitionClassPoint struct {
	// Class is the exit class (1..3).
	Class int `json:"class"`
	// SolverSec, SimSec and RuntimeSec are the idle per-class latencies.
	SolverSec  float64 `json:"solver_sec"`
	SimSec     float64 `json:"sim_sec"`
	RuntimeSec float64 `json:"runtime_sec"`
	// RuntimeRelErr is |runtime - solver| / solver.
	RuntimeRelErr float64 `json:"runtime_rel_err"`
}

// PartitionDifferentialReport is the three-substrate agreement check: the
// simulator pins the solver exactly; the loopback-TCP runtime must land
// within tolerance.
type PartitionDifferentialReport struct {
	// TasksPerClass is how many runtime tasks each class averaged over.
	TasksPerClass int `json:"tasks_per_class"`
	// PerClass holds one row per exit class.
	PerClass []PartitionClassPoint `json:"per_class"`
	// MaxRuntimeRelErr is the worst runtime deviation from the solver.
	MaxRuntimeRelErr float64 `json:"max_runtime_rel_err"`
}

// partitionChain is the study fixture: three weak edge workers behind a
// device uplink, joined by LAN-class links.
func partitionChain() partition.Chain {
	return partition.Chain{
		Workers: []partition.Worker{{FLOPS: 1.5e9}, {FLOPS: 1.5e9}, {FLOPS: 1.5e9}},
		Hops: []partition.Hop{
			{BandwidthBps: 80e6, LatencySec: 0.004},
			{BandwidthBps: 200e6, LatencySec: 0.002},
			{BandwidthBps: 200e6, LatencySec: 0.002},
		},
	}
}

// RunPartitionStudy executes the partition experiment, writing its tables
// to w and returning the machine-readable report.
func RunPartitionStudy(w io.Writer, quick bool) (*PartitionReport, error) {
	const (
		e1, e2 = 5, 11
		seed   = 93
	)
	p := model.ResNet34()
	sigma, err := calibrated(p)
	if err != nil {
		return nil, err
	}
	net, err := model.NewMEDNN(p, e1, e2, sigma)
	if err != nil {
		return nil, err
	}
	chain := partitionChain()
	rep := &PartitionReport{Arch: p.Name, E1: e1, E2: e2}
	for _, wk := range chain.Workers {
		rep.WorkerFLOPS = append(rep.WorkerFLOPS, wk.FLOPS)
	}

	// Analytic comparison: price the whole model on one worker, then let
	// the solver cut the chain at a load the single worker cannot sustain.
	single, err := partition.SingleWorker(partition.Config{Net: net, Chain: chain})
	if err != nil {
		return nil, err
	}
	rate := 1.2 * single.SustainableRate
	plan, err := partition.Solve(partition.Config{Net: net, Chain: chain, ArrivalRate: rate})
	if err != nil {
		return nil, err
	}
	rep.Solver = PartitionSolverReport{
		SingleSustainableRate: single.SustainableRate,
		SingleIdleLatencySec:  single.ExpectedLatencySec,
		OfferedRate:           rate,
		Cuts:                  plan.Cuts,
		Stages:                len(plan.Stages),
		ChainSustainableRate:  plan.SustainableRate,
		ChainIdleLatencySec:   plan.ExpectedLatencySec,
	}
	if _, err := partition.SingleWorker(partition.Config{Net: net, Chain: chain, ArrivalRate: rate}); err == nil {
		return nil, fmt.Errorf("bench: single worker unexpectedly sustains %.2f tasks/s", rate)
	}

	// Capacity scenario: cap every worker below the model's per-task
	// operation count — one node cannot host it, the chain can.
	cap := 0.45 * (net.Profile.TotalFLOPs() + 3*net.Profile.ExitClassifierFLOPs(e1))
	capped := chain
	capped.Workers = append([]partition.Worker(nil), chain.Workers...)
	for i := range capped.Workers {
		capped.Workers[i].CapFLOPs = cap
	}
	_, capErr := partition.SingleWorker(partition.Config{Net: net, Chain: capped})
	capPlan, err := partition.Solve(partition.Config{Net: net, Chain: capped})
	if err != nil {
		return nil, err
	}
	rep.Capacity = PartitionCapacityReport{
		CapFLOPs:         cap,
		SingleInfeasible: capErr != nil,
		ChainStages:      len(capPlan.Stages),
	}

	// Under-load comparison on the event simulator: the same Poisson
	// workload offered to single-edge offload and to the pipelined cut.
	// Deterministic for the pinned seed — these are the CI numbers.
	horizon := 200 / rate
	if quick {
		horizon = 50 / rate
	}
	loadArm := func(ch partition.Chain, cuts []int) (PartitionLoadPoint, error) {
		res, err := sim.RunPipeline(sim.PipelineConfig{
			Net: net, Chain: ch, Cuts: cuts,
			Rate: rate, HorizonSec: horizon, Seed: seed,
		})
		if err != nil {
			return PartitionLoadPoint{}, err
		}
		return PartitionLoadPoint{
			Stages:    len(cuts),
			Generated: res.Generated,
			Completed: res.Completed,
			MeanSec:   res.TCT.Mean(),
			P95Sec:    res.TCT.Percentile(95),
		}, nil
	}
	m := net.Profile.NumExits()
	singleChain := partition.Chain{Workers: chain.Workers[:1], Hops: chain.Hops[:1]}
	singlePoint, err := loadArm(singleChain, []int{m})
	if err != nil {
		return nil, err
	}
	pipePoint, err := loadArm(chain, plan.Cuts)
	if err != nil {
		return nil, err
	}
	rep.Load = PartitionLoadReport{
		OfferedRate: rate,
		HorizonSec:  horizon,
		Seed:        seed,
		Single:      singlePoint,
		Pipelined:   pipePoint,
	}
	if pipePoint.MeanSec > 0 {
		rep.Load.Speedup = singlePoint.MeanSec / pipePoint.MeanSec
	}

	// Three-substrate differential on the chosen cut at idle: analytic
	// (WaitSec = 0), event-simulated, and executed over loopback TCP.
	idle, err := partition.Evaluate(partition.Config{Net: net, Chain: chain}, plan.Cuts)
	if err != nil {
		return nil, err
	}
	simIdle, err := sim.RunPipeline(sim.PipelineConfig{
		Net: net, Chain: chain, Cuts: plan.Cuts,
		Arrivals: []sim.PipeArrival{{AtSec: 0, Class: 1}, {AtSec: 1e4, Class: 2}, {AtSec: 2e4, Class: 3}},
	})
	if err != nil {
		return nil, err
	}
	perClass := 3
	if quick {
		perClass = 2
	}
	runtimeSecs, err := runPartitionLoopback(net, chain, idle, perClass)
	if err != nil {
		return nil, err
	}
	diff := PartitionDifferentialReport{TasksPerClass: perClass}
	for c := 0; c < 3; c++ {
		pt := PartitionClassPoint{
			Class:      c + 1,
			SolverSec:  idle.ClassLatencySec[c],
			SimSec:     simIdle.ClassTCT[c].Mean(),
			RuntimeSec: runtimeSecs[c],
		}
		pt.RuntimeRelErr = math.Abs(pt.RuntimeSec-pt.SolverSec) / pt.SolverSec
		if pt.RuntimeRelErr > diff.MaxRuntimeRelErr {
			diff.MaxRuntimeRelErr = pt.RuntimeRelErr
		}
		diff.PerClass = append(diff.PerClass, pt)
	}
	rep.Differential = diff

	writePartitionTables(w, rep)
	return rep, nil
}

// runPartitionLoopback executes the cut for real: one edge process per
// stage over loopback TCP, per-class latency averaged over a few idle
// tasks, reported in model seconds.
func runPartitionLoopback(net *model.MEDNN, chain partition.Chain, plan *partition.Plan, perClass int) ([3]float64, error) {
	var out [3]float64
	const scale = runtime.Scale(0.05)
	edgeModel := offloadParams(net)
	peer := netem.Link{BandwidthBps: 200e6, Latency: 2 * time.Millisecond}
	edges := make([]*runtime.Edge, 0, len(plan.Stages))
	defer func() {
		for _, e := range edges {
			_ = e.Close()
		}
	}()
	addrs := make([]string, 0, len(plan.Stages))
	for j := range plan.Stages {
		e, err := runtime.StartEdge(runtime.EdgeConfig{
			Addr:      "127.0.0.1:0",
			FLOPS:     chain.Workers[plan.Stages[j].Worker].FLOPS,
			Model:     edgeModel,
			TimeScale: scale,
			PeerLink:  peer,
		})
		if err != nil {
			return out, err
		}
		edges = append(edges, e)
		addrs = append(addrs, e.Addr())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := runtime.InstallPipeline(ctx, "study", addrs, runtime.PipelineFromPlan(plan)); err != nil {
		return out, err
	}
	pc, err := runtime.DialPipeline(runtime.PipelineClientConfig{
		Addr:       addrs[0],
		PipelineID: "study",
		DeviceID:   "study-dev",
		InputBytes: net.Profile.DataBytes(0),
		Uplink:     netem.Link{BandwidthBps: 80e6, Latency: 4 * time.Millisecond},
		TimeScale:  scale,
		Seed:       9,
	})
	if err != nil {
		return out, err
	}
	defer pc.Close()
	// One untimed full-depth task first: it establishes every hop's TCP
	// connection so the timed tasks measure the chain, not the dials.
	if _, err := pc.Do(ctx, 1, 3); err != nil {
		return out, err
	}
	taskID := uint64(1)
	for c := 1; c <= 3; c++ {
		var total float64
		for i := 0; i < perClass; i++ {
			taskID++
			start := time.Now()
			resp, err := pc.Do(ctx, taskID, c)
			if err != nil {
				return out, err
			}
			if resp.ExitStage != c {
				return out, fmt.Errorf("bench: class %d task exited at %d", c, resp.ExitStage)
			}
			total += scale.ModelSeconds(time.Since(start))
		}
		out[c-1] = total / float64(perClass)
	}
	return out, nil
}

// offloadParams projects an MEDNN onto the 3-block edge model parameters
// (the edge's tenant machinery wants them even though pipelined traffic
// never touches a tenant executor).
func offloadParams(net *model.MEDNN) offload.ModelParams {
	return offload.ModelParams{
		Mu:    net.BlockFLOPs(),
		D:     net.DataBytes(),
		Sigma: net.Sigma,
	}
}

// writePartitionTables renders the study's human-readable tables.
func writePartitionTables(w io.Writer, rep *PartitionReport) {
	fmt.Fprintf(w, "%s with exits at %d/%d on %d workers of %.2g FLOPS:\n\n",
		rep.Arch, rep.E1, rep.E2, len(rep.WorkerFLOPS), rep.WorkerFLOPS[0])

	solver := metrics.NewTable("arm", "sustainable_per_s", "idle_latency_s", "stages")
	solver.AddRow("single-edge", rep.Solver.SingleSustainableRate, rep.Solver.SingleIdleLatencySec, 1)
	solver.AddRow("pipelined", rep.Solver.ChainSustainableRate, rep.Solver.ChainIdleLatencySec, rep.Solver.Stages)
	fmt.Fprintf(w, "Solver at %.2f tasks/s (cut %v):\n%s\n", rep.Solver.OfferedRate, rep.Solver.Cuts, solver.String())

	fmt.Fprintf(w, "Capacity: per-task cap %.3g FLOPs -> single worker infeasible=%v, chain splits into %d stages.\n\n",
		rep.Capacity.CapFLOPs, rep.Capacity.SingleInfeasible, rep.Capacity.ChainStages)

	load := metrics.NewTable("arm", "generated", "completed", "mean_s", "p95_s")
	load.AddRow("single-edge", rep.Load.Single.Generated, rep.Load.Single.Completed, rep.Load.Single.MeanSec, rep.Load.Single.P95Sec)
	load.AddRow("pipelined", rep.Load.Pipelined.Generated, rep.Load.Pipelined.Completed, rep.Load.Pipelined.MeanSec, rep.Load.Pipelined.P95Sec)
	fmt.Fprintf(w, "Simulated load at %.2f tasks/s over %.1fs (seed %d):\n%s", rep.Load.OfferedRate, rep.Load.HorizonSec, rep.Load.Seed, load.String())
	fmt.Fprintf(w, "\nPipelined mean latency is %.1fx better than the saturated single edge.\n\n", rep.Load.Speedup)

	diff := metrics.NewTable("class", "solver_s", "sim_s", "runtime_s", "rel_err")
	for _, pt := range rep.Differential.PerClass {
		diff.AddRow(pt.Class, pt.SolverSec, pt.SimSec, pt.RuntimeSec, pt.RuntimeRelErr)
	}
	fmt.Fprintf(w, "Three-substrate differential on the chosen cut (idle, %d tasks/class):\n%s",
		rep.Differential.TasksPerClass, diff.String())
	fmt.Fprintln(w, "\nThe simulator pins the analytic solver exactly; the loopback-TCP runtime")
	fmt.Fprintln(w, "agrees within timer and transport noise. One cut, three substrates.")
}
