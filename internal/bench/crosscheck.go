package bench

import (
	"fmt"
	"io"
	"time"

	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/netem"
	"leime/internal/offload"
	"leime/internal/runtime"
	"leime/internal/sim"
	"leime/internal/telemetry"
)

// CrossCheck validates the simulator against the socket testbed: the same
// single-device workload runs through (a) the discrete-event simulator and
// (b) the real runtime — TCP sockets, netem shaping, compute burning — in
// compressed time. The two systems share only the model parameters and the
// controller; agreement of their completion-time statistics is evidence
// that the simulated figures transfer to the prototype.
func CrossCheck() Experiment {
	return Experiment{
		ID:    "crosscheck",
		Title: "Validation: event simulator vs real socket testbed on the same workload",
		Run:   runCrossCheck,
	}
}

func runCrossCheck(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	env := cluster.TestbedEnv(cluster.RaspberryPi3B)
	params, _, _, err := schemeParams(scheme{strategy: exitsetting.LEIME()}, p, sigma, env)
	if err != nil {
		return err
	}
	slots := 40
	if quick {
		slots = 15
	}
	const rate = 3
	const seed = 77

	// (a) Discrete-event simulation.
	pol := offload.Lyapunov()
	simRes, err := sim.RunEvents(sim.EventConfig{
		Model: params,
		Devices: []sim.DeviceSpec{{
			Device: offload.Device{
				FLOPS:        env.DeviceFLOPS,
				BandwidthBps: env.DeviceEdge.BandwidthBps,
				LatencySec:   env.DeviceEdge.LatencySec,
				ArrivalMean:  rate,
			},
			Policy: &pol,
		}},
		EdgeFLOPS:   env.EdgeFLOPS,
		CloudFLOPS:  env.CloudFLOPS,
		EdgeCloud:   env.EdgeCloud,
		TauSec:      1,
		V:           1e4,
		Slots:       slots,
		WarmupSlots: slots / 10,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	// (b) The real runtime, 5x compressed. Milder compression than the
	// examples use: every wall-clock overhead (sleep granularity, gob
	// encoding, scheduler jitter) is inflated by 1/scale when converted
	// back to model time, so validation runs closer to real time. The run is
	// instrumented: span and metric totals below the table let perf tracking
	// confirm telemetry kept up (no dropped spans) alongside the latencies.
	tracer := telemetry.NewTracer(1 << 15)
	reg := telemetry.NewRegistry()
	tb, err := testbedWorkload(params, env, slots, rate, seed, runtime.Scale(0.2), tracer, reg)
	if err != nil {
		return err
	}

	tbl := metrics.NewTable("system", "tasks", "mean_tct_s", "p50_s", "p99_s", "mean_ratio")
	tbl.AddRow("event-simulator", simRes.Completed, simRes.TCT.Mean(), simRes.TCT.Percentile(50), simRes.TCT.Percentile(99), simRes.Ratio.Mean())
	tbl.AddRow("socket-testbed", tb.Completed, tb.TCT.Mean(), tb.TCT.Percentile(50), tb.TCT.Percentile(99), tb.Ratio.Mean())
	fmt.Fprintln(w, "Same workload (ME-Inception v3, Raspberry Pi, rate 3, LEIME policy), two systems:")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "\nmean TCT ratio: %.2fx (testbed/simulator)\n", tb.TCT.Mean()/simRes.TCT.Mean())
	fmt.Fprintln(w, "The residual gap is wall-clock overhead (sleep granularity, gob encoding,")
	fmt.Fprintln(w, "scheduler jitter) inflated by the 5x time compression; it shrinks toward 1x")
	fmt.Fprintln(w, "as -scale approaches real time. Orderings and exit mixes agree.")
	fmt.Fprintf(w, "testbed telemetry: %d spans across %d traces, %d dropped\n",
		len(tracer.Spans()), countTraces(tracer), tracer.Dropped())
	if tb.Errors > 0 {
		fmt.Fprintf(w, "testbed task errors: %d\n", tb.Errors)
	}
	return nil
}

// testbedWorkload runs the crosscheck workload through the real runtime —
// TCP sockets, netem shaping, compute burning — with all three tiers sharing
// the given tracer and registry (both may be nil for an uninstrumented run).
func testbedWorkload(params offload.ModelParams, env cluster.Env, slots int, rate float64, seed int64, scale runtime.Scale, tracer *telemetry.Tracer, reg *telemetry.Registry) (*runtime.DeviceStats, error) {
	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       env.CloudFLOPS,
		Block3FLOPs: params.Mu[2],
		TimeScale:   scale,
		Tracer:      tracer,
		Metrics:     reg,
	})
	if err != nil {
		return nil, err
	}
	defer cloud.Close()
	edge, err := runtime.StartEdge(runtime.EdgeConfig{
		Addr:      "127.0.0.1:0",
		FLOPS:     env.EdgeFLOPS,
		Model:     params,
		CloudAddr: cloud.Addr(),
		CloudLink: netem.Link{
			BandwidthBps: env.EdgeCloud.BandwidthBps,
			Latency:      time.Duration(env.EdgeCloud.LatencySec * float64(time.Second)),
		},
		TimeScale: scale,
		Tracer:    tracer,
		Metrics:   reg,
	})
	if err != nil {
		return nil, err
	}
	defer edge.Close()
	pol := offload.Lyapunov()
	return runtime.RunDevice(runtime.DeviceConfig{
		ID:       "crosscheck",
		FLOPS:    env.DeviceFLOPS,
		Model:    params,
		EdgeAddr: edge.Addr(),
		Uplink: netem.Link{
			BandwidthBps: env.DeviceEdge.BandwidthBps,
			Latency:      time.Duration(env.DeviceEdge.LatencySec * float64(time.Second)),
		},
		ArrivalMean: rate,
		Policy:      &pol,
		TauSec:      1,
		V:           1e4,
		Slots:       slots,
		WarmupSlots: slots / 10,
		TimeScale:   scale,
		Seed:        seed,
		Tracer:      tracer,
		Metrics:     reg,
	})
}

func countTraces(tr *telemetry.Tracer) int {
	seen := make(map[uint64]struct{})
	for _, s := range tr.Spans() {
		seen[s.Trace] = struct{}{}
	}
	return len(seen)
}
