package bench

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/model"
)

// workers is the shared worker-pool width (0 means runtime.NumCPU()); RunAll
// and the heavy experiments' inner sweeps read it through Parallelism.
var workers atomic.Int64

// SetParallelism sets the worker-pool width used by RunAll and by the
// experiments' inner sweeps. n < 1 resets the default, runtime.NumCPU().
// It is a process-wide knob: concurrent runners share it.
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	workers.Store(int64(n))
}

// Parallelism returns the current worker-pool width.
func Parallelism() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// parallelFor runs fn(i) for every i in [0, n) on up to Parallelism()
// workers and returns the lowest-index error. At width 1 it degenerates to
// the plain serial loop (including early exit on error), so experiment
// output and error behavior at -parallel 1 match the pre-parallel code.
func parallelFor(n int, fn func(i int) error) error {
	width := Parallelism()
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Result records one experiment's execution in a RunAll pass.
type Result struct {
	// ID and Title identify the experiment.
	ID, Title string
	// WallSeconds is the experiment's own wall time (inside its worker, so
	// under -parallel it is per-experiment work, not elapsed runner time).
	WallSeconds float64
}

// RunAll executes every experiment and writes their tables to w in paper
// order. parallelism bounds the worker pool (< 1 means runtime.NumCPU());
// at 1 the experiments run serially and stream to w exactly as the
// pre-parallel runner did, while at N > 1 each experiment writes into its
// own buffer and the buffers are emitted in paper order, so the bytes
// written to w are identical for every parallelism. The returned results
// carry per-experiment wall times (paper order), including the experiments
// that completed before any failure.
func RunAll(w io.Writer, quick bool, parallelism int) ([]Result, error) {
	if parallelism < 1 {
		parallelism = runtime.NumCPU()
	}
	prev := int(workers.Load())
	workers.Store(int64(parallelism))
	defer workers.Store(int64(prev))
	exps := All()
	results := make([]Result, 0, len(exps))

	if parallelism == 1 {
		for i, e := range exps {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "=== %s: %s\n\n", e.ID, e.Title)
			start := time.Now()
			if err := e.Run(w, quick); err != nil {
				return results, fmt.Errorf("%s: %w", e.ID, err)
			}
			results = append(results, Result{ID: e.ID, Title: e.Title, WallSeconds: time.Since(start).Seconds()})
		}
		return results, nil
	}

	bufs := make([]bytes.Buffer, len(exps))
	walls := make([]float64, len(exps))
	errs := make([]error, len(exps))
	var next atomic.Int64
	var wg sync.WaitGroup
	width := parallelism
	if width > len(exps) {
		width = len(exps)
	}
	for wi := 0; wi < width; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(exps) {
					return
				}
				start := time.Now()
				errs[i] = exps[i].Run(&bufs[i], quick)
				walls[i] = time.Since(start).Seconds()
			}
		}()
	}
	wg.Wait()

	for i, e := range exps {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "=== %s: %s\n\n", e.ID, e.Title)
		if _, err := io.Copy(w, &bufs[i]); err != nil {
			return results, err
		}
		if errs[i] != nil {
			return results, fmt.Errorf("%s: %w", e.ID, errs[i])
		}
		results = append(results, Result{ID: e.ID, Title: e.Title, WallSeconds: walls[i]})
	}
	return results, nil
}

// SolverEvals reports both solvers' cost-evaluation counters for one
// architecture on the standard calibration workload and testbed
// environment; perf-trajectory tracking records them next to wall times.
type SolverEvals struct {
	Arch                string `json:"arch"`
	NumExits            int    `json:"num_exits"`
	ExhaustiveEvals     int    `json:"exhaustive_evals"`
	BranchAndBoundEvals int    `json:"branch_and_bound_evals"`
}

// SolverEvalCounts runs both exit-setting solvers once per architecture and
// returns their Evals counters.
func SolverEvalCounts() ([]SolverEvals, error) {
	var out []SolverEvals
	for _, p := range model.All() {
		sigma, err := calibrated(p)
		if err != nil {
			return nil, err
		}
		in, err := exitsetting.NewInstance(p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B))
		if err != nil {
			return nil, err
		}
		out = append(out, SolverEvals{
			Arch:                p.Name,
			NumExits:            p.NumExits(),
			ExhaustiveEvals:     in.Exhaustive().Evals,
			BranchAndBoundEvals: in.BranchAndBound().Evals,
		})
	}
	return out, nil
}
