package bench

import "testing"

func TestCollectTelemetry(t *testing.T) {
	rep, err := CollectTelemetry(true)
	if err != nil {
		t.Fatalf("CollectTelemetry: %v", err)
	}
	if rep.Tasks == 0 {
		t.Fatal("instrumented workload completed no tasks")
	}
	if rep.Traces != rep.Tasks {
		t.Errorf("got %d traces for %d tasks, want one per task", rep.Traces, rep.Tasks)
	}
	if rep.SpansByName["task"] != rep.Tasks {
		t.Errorf("got %d root task spans for %d tasks", rep.SpansByName["task"], rep.Tasks)
	}
	if rep.DroppedSpans != 0 {
		t.Errorf("tracer dropped %d spans; capacity too small for the workload", rep.DroppedSpans)
	}
	if len(rep.Metrics) == 0 {
		t.Error("no metric samples collected")
	}
	found := false
	for _, s := range rep.Metrics {
		if s.Name == "leime_tasks_generated_total" && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("leime_tasks_generated_total missing or zero in samples")
	}
}
