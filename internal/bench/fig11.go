package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

// Fig11 reproduces the scalability simulation of Fig. 11: average TCT as the
// number of connected (homogeneous) devices grows, for Inception v3 and
// ResNet-34. Paper: LEIME grows almost linearly and supports the most
// devices; baselines degrade much faster because their exit settings ignore
// edge load.
func Fig11() Experiment {
	return Experiment{
		ID:    "fig11",
		Title: "Fig. 11: TCT vs number of connected devices (simulation, Inception v3 & ResNet-34)",
		Run:   runFig11,
	}
}

func runFig11(w io.Writer, quick bool) error {
	counts := []int{1, 5, 10, 20, 40, 80}
	if quick {
		counts = []int{1, 5, 10}
	}
	profiles := []*model.Profile{model.InceptionV3(), model.ResNet34()}
	if quick {
		profiles = profiles[:1]
	}
	schemes := paperSchemes()
	for _, p := range profiles {
		sigma, err := calibrated(p)
		if err != nil {
			return err
		}
		header := []string{"devices"}
		for _, sc := range schemes {
			header = append(header, sc.name)
		}
		tbl := metrics.NewTable(header...)
		for _, n := range counts {
			row := []any{n}
			for _, sc := range schemes {
				tct, err := fig11TCT(sc, p, sigma, n)
				if err != nil {
					return fmt.Errorf("%s with %d devices: %w", sc.name, n, err)
				}
				row = append(row, tct)
			}
			tbl.AddRow(row...)
		}
		fmt.Fprintf(w, "TCT (s) vs connected devices, %s (homogeneous Raspberry Pi devices):\n", p.Name)
		fmt.Fprint(w, tbl.String())
		fmt.Fprintln(w)
	}
	return nil
}

// fig11TCT runs the slot model with n homogeneous devices sharing the edge.
// The exit setting sees the per-device edge share (load-aware exit setting
// is exactly LEIME's advantage in this figure).
func fig11TCT(sc scheme, p *model.Profile, sigma []float64, n int) (float64, error) {
	env := cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(1 / float64(n))
	params, _, _, err := schemeParams(sc, p, sigma, env)
	if err != nil {
		return 0, err
	}
	devs := make([]sim.DeviceSpec, n)
	for i := range devs {
		policy := sc.policy
		devs[i] = sim.DeviceSpec{
			Device: offload.Device{
				FLOPS:        env.DeviceFLOPS,
				BandwidthBps: env.DeviceEdge.BandwidthBps,
				LatencySec:   env.DeviceEdge.LatencySec,
				ArrivalMean:  3,
			},
			Policy: &policy,
		}
	}
	res, err := sim.RunSlots(sim.SlotConfig{
		Model:       params,
		Devices:     devs,
		EdgeFLOPS:   cluster.EdgeDesktop.FLOPS,
		CloudFLOPS:  cluster.CloudV100.FLOPS,
		EdgeCloud:   cluster.InternetDefault,
		TauSec:      1,
		V:           1e4,
		Slots:       150,
		WarmupSlots: 30,
		Seed:        19,
	})
	if err != nil {
		return 0, err
	}
	return res.MeanTCT, nil
}
