package bench

import (
	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/model"
	"leime/internal/runtime"
	"leime/internal/telemetry"
)

// TelemetryReport summarizes the spans and metrics an instrumented testbed
// run emits; leime-bench -json records it next to wall times so
// perf-trajectory tracking sees telemetry health (span volume, drops,
// counter totals) across commits.
type TelemetryReport struct {
	// Tasks is the number of tasks the workload completed.
	Tasks int `json:"tasks"`
	// Traces and Spans count distinct trace IDs and recorded spans.
	Traces int `json:"traces"`
	Spans  int `json:"spans"`
	// SpansByName tallies spans per taxonomy name (task, rpc.first_block,
	// edge.queue, ...).
	SpansByName map[string]int `json:"spans_by_name"`
	// DroppedSpans counts ring-buffer overwrites; nonzero means the tracer
	// capacity was too small for the workload.
	DroppedSpans uint64 `json:"dropped_spans"`
	// Metrics flattens every registry sample (histograms as _count/_sum).
	Metrics []telemetry.Sample `json:"metrics"`
}

// CollectTelemetry runs a small fully-instrumented single-device testbed
// workload (the crosscheck workload, shortened) and summarizes what the
// telemetry subsystem captured.
func CollectTelemetry(quick bool) (*TelemetryReport, error) {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return nil, err
	}
	env := cluster.TestbedEnv(cluster.RaspberryPi3B)
	params, _, _, err := schemeParams(scheme{strategy: exitsetting.LEIME()}, p, sigma, env)
	if err != nil {
		return nil, err
	}
	slots := 20
	if quick {
		slots = 10
	}
	tracer := telemetry.NewTracer(1 << 15)
	reg := telemetry.NewRegistry()
	stats, err := testbedWorkload(params, env, slots, 3, 77, runtime.Scale(0.05), tracer, reg)
	if err != nil {
		return nil, err
	}
	spans := tracer.Spans()
	rep := &TelemetryReport{
		Tasks:        stats.Completed,
		Traces:       countTraces(tracer),
		Spans:        len(spans),
		SpansByName:  make(map[string]int),
		DroppedSpans: tracer.Dropped(),
		Metrics:      reg.Samples(),
	}
	for _, s := range spans {
		rep.SpansByName[s.Name]++
	}
	return rep, nil
}
