package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

// AblationV sweeps the Lyapunov penalty weight V. Theorem 3 bounds the
// delay gap by O(B/V) and the queue backlog by O(V); the experiment measures
// where the deployed controller actually sits on that trade-off. (Finding:
// with the balance-plus-corner-check decision rule, performance is nearly
// flat in V — queue stability does not depend on the drift terms.)
func AblationV() Experiment {
	return Experiment{
		ID:    "ablation-v",
		Title: "Ablation: Lyapunov penalty weight V — the O(B/V) delay / O(V) backlog trade-off of Theorem 3",
		Run:   runAblationV,
	}
}

func runAblationV(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	// A tight edge share and a rate near the system's capacity keep the
	// queues loaded enough that the delay/backlog trade-off is visible.
	env := cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(0.04)
	params, _, _, err := schemeParams(scheme{strategy: exitsetting.LEIME()}, p, sigma, env)
	if err != nil {
		return err
	}
	vs := []float64{0.1, 1, 10, 100, 1e3, 1e4}
	if quick {
		vs = []float64{1, 100, 1e4}
	}
	tbl := metrics.NewTable("V", "mean_tct_s", "mean_backlog_tasks", "final_backlog")
	for _, v := range vs {
		res, err := sim.RunSlots(sim.SlotConfig{
			Model: params,
			Devices: []sim.DeviceSpec{{Device: offload.Device{
				FLOPS:        env.DeviceFLOPS,
				BandwidthBps: env.DeviceEdge.BandwidthBps,
				LatencySec:   env.DeviceEdge.LatencySec,
				ArrivalMean:  10,
			}}},
			EdgeFLOPS:   env.EdgeFLOPS,
			CloudFLOPS:  env.CloudFLOPS,
			EdgeCloud:   env.EdgeCloud,
			TauSec:      1,
			V:           v,
			Slots:       300,
			WarmupSlots: 50,
			Seed:        41,
		})
		if err != nil {
			return fmt.Errorf("V=%v: %w", v, err)
		}
		tbl.AddRow(v, res.MeanTCT, res.PerDevice[0].Backlog.Mean(), res.FinalBacklog)
	}
	fmt.Fprintln(w, "LEIME policy, ME-Inception v3, Raspberry Pi, 4% edge share, rate 10:")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w, "\nTheorem 3 bounds the delay gap by B/V and the backlog by O(V); measured, the")
	fmt.Fprintln(w, "controller is insensitive to V across five orders of magnitude — the balance")
	fmt.Fprintln(w, "rule with corner checks keeps queues stable on its own, so the knob has")
	fmt.Fprintln(w, "little left to trade.")
	return nil
}

// AblationAlloc compares the KKT edge-resource allocation (eq. 27) against
// uniform and demand-proportional splits on a heterogeneous fleet — the
// design choice Appendix B derives.
func AblationAlloc() Experiment {
	return Experiment{
		ID:    "ablation-alloc",
		Title: "Ablation: KKT edge allocation (eq. 27) vs uniform and demand-proportional splits",
		Run:   runAblationAlloc,
	}
}

func runAblationAlloc(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	env := cluster.TestbedEnv(cluster.RaspberryPi3B)
	params, _, _, err := schemeParams(scheme{strategy: exitsetting.LEIME()}, p, sigma, env)
	if err != nil {
		return err
	}
	// Heterogeneous fleet: busy Pis and a lightly loaded Nano.
	mkDevices := func() []sim.DeviceSpec {
		specs := []sim.DeviceSpec{
			{Device: offload.Device{FLOPS: cluster.RaspberryPi3B.FLOPS, BandwidthBps: cluster.Mbps(10), LatencySec: 0.02, ArrivalMean: 8}},
			{Device: offload.Device{FLOPS: cluster.RaspberryPi3B.FLOPS, BandwidthBps: cluster.Mbps(10), LatencySec: 0.02, ArrivalMean: 6}},
			{Device: offload.Device{FLOPS: cluster.RaspberryPi3B.FLOPS, BandwidthBps: cluster.Mbps(10), LatencySec: 0.02, ArrivalMean: 4}},
			{Device: offload.Device{FLOPS: cluster.JetsonNano.FLOPS, BandwidthBps: cluster.Mbps(20), LatencySec: 0.015, ArrivalMean: 2}},
		}
		return specs
	}

	// The slot simulator always applies the KKT allocation; emulate the
	// alternatives by overriding the shares through per-device edge FLOPS:
	// run one simulation per allocation with a single-tenant edge sized to
	// that device's share.
	allocs := map[string]func(devs []offload.Device, edge float64) ([]float64, error){
		"kkt": offload.Allocate,
		"uniform": func(devs []offload.Device, edge float64) ([]float64, error) {
			out := make([]float64, len(devs))
			for i := range out {
				out[i] = 1 / float64(len(devs))
			}
			return out, nil
		},
		"proportional": func(devs []offload.Device, edge float64) ([]float64, error) {
			var total float64
			for _, d := range devs {
				total += d.ArrivalMean
			}
			out := make([]float64, len(devs))
			for i, d := range devs {
				out[i] = d.ArrivalMean / total
			}
			return out, nil
		},
	}
	tbl := metrics.NewTable("allocation", "mean_tct_s", "worst_device_tct_s", "final_backlog")
	for _, name := range []string{"kkt", "uniform", "proportional"} {
		specs := mkDevices()
		devs := make([]offload.Device, len(specs))
		for i, sp := range specs {
			devs[i] = sp.Device
		}
		shares, err := allocs[name](devs, env.EdgeFLOPS)
		if err != nil {
			return err
		}
		// Emulate the allocation by running each device against its own
		// dedicated slice of the edge.
		var tctSum, tasks, worst, backlog float64
		for i, sp := range specs {
			res, err := sim.RunSlots(sim.SlotConfig{
				Model:       params,
				Devices:     []sim.DeviceSpec{sp},
				EdgeFLOPS:   shares[i] * env.EdgeFLOPS,
				CloudFLOPS:  env.CloudFLOPS,
				EdgeCloud:   env.EdgeCloud,
				TauSec:      1,
				V:           1e4,
				Slots:       250,
				WarmupSlots: 50,
				Seed:        int64(61 + i),
			})
			if err != nil {
				return fmt.Errorf("%s device %d: %w", name, i, err)
			}
			tctSum += res.MeanTCT * res.PerDevice[0].Arrivals
			tasks += res.PerDevice[0].Arrivals
			if res.MeanTCT > worst {
				worst = res.MeanTCT
			}
			backlog += res.FinalBacklog
		}
		tbl.AddRow(name, tctSum/tasks, worst, backlog)
	}
	fmt.Fprintln(w, "Heterogeneous fleet (3 Pis at rates 8/6/4 + 1 Nano at rate 2) sharing one edge:")
	fmt.Fprint(w, tbl.String())
	return nil
}

// AblationSolver compares the decentralized balance decision (eq. 20, O(1)
// per device) against the exact per-slot P1' optimizer (golden-section
// search) — quantifying the paper's "close-to-optimal" claim end to end.
func AblationSolver() Experiment {
	return Experiment{
		ID:    "ablation-solver",
		Title: "Ablation: decentralized balance rule vs exact per-slot optimizer (close-to-optimal gap)",
		Run:   runAblationSolver,
	}
}

func runAblationSolver(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	env := cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(0.08)
	params, _, _, err := schemeParams(scheme{strategy: exitsetting.LEIME()}, p, sigma, env)
	if err != nil {
		return err
	}
	rates := []float64{3, 6, 12}
	if quick {
		rates = rates[:2]
	}
	// V = 100 keeps the queue terms (which the balance rule ignores) visible
	// in the objective, making this a worst-case comparison for the
	// decentralized rule.
	const solverV = 100.0
	tbl := metrics.NewTable("arrival_rate", "balance_tct_s", "exact_tct_s", "gap_pct")
	for _, rate := range rates {
		run := func(pol offload.Policy) (float64, error) {
			res, err := sim.RunSlots(sim.SlotConfig{
				Model: params,
				Devices: []sim.DeviceSpec{{
					Device: offload.Device{
						FLOPS:        env.DeviceFLOPS,
						BandwidthBps: env.DeviceEdge.BandwidthBps,
						LatencySec:   env.DeviceEdge.LatencySec,
						ArrivalMean:  rate,
					},
					Policy: &pol,
				}},
				EdgeFLOPS:   env.EdgeFLOPS,
				CloudFLOPS:  env.CloudFLOPS,
				EdgeCloud:   env.EdgeCloud,
				TauSec:      1,
				V:           solverV,
				Slots:       250,
				WarmupSlots: 50,
				Seed:        29,
			})
			if err != nil {
				return 0, err
			}
			return res.MeanTCT, nil
		}
		balance, err := run(offload.Lyapunov())
		if err != nil {
			return err
		}
		exact, err := run(offload.LyapunovCentralized())
		if err != nil {
			return err
		}
		tbl.AddRow(rate, balance, exact, 100*(balance-exact)/exact)
	}
	fmt.Fprintln(w, "ME-Inception v3, Raspberry Pi, shared edge; identical workloads per row:")
	fmt.Fprint(w, tbl.String())
	return nil
}

// WildLinks extends Fig. 3 to the online setting: the uplink bandwidth
// churns while the system runs, and LEIME's per-slot controller is compared
// against every fixed ratio — none of which can be right in all regimes.
func WildLinks() Experiment {
	return Experiment{
		ID:    "wildlinks",
		Title: "Extension: bandwidth churn — online LEIME vs every fixed offloading ratio",
		Run:   runWildLinks,
	}
}

func runWildLinks(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	// Exit-1 as the First exit: its intermediate tensor (128 KB) dwarfs the
	// raw input (3 KB), so the optimal ratio flips hard with bandwidth —
	// x* = 0 on good WiFi (ship nothing, compute the cheap first block
	// locally), x* = 1 on bad WiFi (ship the tiny raw input instead of the
	// huge tensor).
	params, err := paramsFor(p, sigma, 1, 14, true)
	if err != nil {
		return err
	}
	// The uplink alternates between good (32 Mbps) and bad (4 Mbps) WiFi
	// every 50 slots.
	link := func(slot int) (float64, float64) {
		if (slot/50)%2 == 0 {
			return cluster.Mbps(32), 0.02
		}
		return cluster.Mbps(4), 0.05
	}
	slots := 400
	if quick {
		slots = 200
	}
	run := func(pol offload.Policy) (float64, error) {
		res, err := sim.RunSlots(sim.SlotConfig{
			Model: params,
			Devices: []sim.DeviceSpec{{
				Device: offload.Device{
					FLOPS:        cluster.RaspberryPi3B.FLOPS,
					BandwidthBps: cluster.Mbps(32),
					LatencySec:   0.02,
					ArrivalMean:  6,
				},
				Policy: &pol,
				Link:   link,
			}},
			EdgeFLOPS:   cluster.EdgeDesktop.FLOPS,
			CloudFLOPS:  cluster.CloudV100.FLOPS,
			EdgeCloud:   cluster.InternetDefault,
			TauSec:      1,
			V:           1e4,
			Slots:       slots,
			WarmupSlots: 50,
			Seed:        37,
		})
		if err != nil {
			return 0, err
		}
		return res.MeanTCT, nil
	}
	tbl := metrics.NewTable("policy", "mean_tct_s")
	leime, err := run(offload.Lyapunov())
	if err != nil {
		return err
	}
	tbl.AddRow("LEIME (online)", leime)
	bestFixed := leime * 1e9
	for _, r := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		tct, err := run(offload.FixedRatio(r))
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("fixed-%.1f", r), tct)
		if tct < bestFixed {
			bestFixed = tct
		}
	}
	fmt.Fprintln(w, "Uplink alternates 32 Mbps / 4 Mbps every 50 slots (Raspberry Pi, rate 6):")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "\nLEIME vs best fixed ratio: %.2fx\n", bestFixed/leime)
	return nil
}
