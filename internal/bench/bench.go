// Package bench regenerates every table and figure of the paper's
// evaluation: each experiment builds the workload, sweeps the paper's
// parameter ranges, runs LEIME and the baselines on the simulators, and
// prints the rows/series the paper reports. Absolute numbers come from a
// simulator with paper-calibrated constants, so the reproduction targets are
// the *shapes*: orderings, speedup factors and crossovers.
package bench

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"leime/internal/cluster"
	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/exitsetting"
	"leime/internal/model"
	"leime/internal/offload"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the figure/section identifier (e.g. "fig7", "motivation").
	ID string
	// Title describes what the paper shows.
	Title string
	// Run executes the experiment and writes its table(s). quick shrinks
	// sweeps for use inside testing benchmarks.
	Run func(w io.Writer, quick bool) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		Motivation(),
		Fig2(),
		Fig3(),
		Fig6(),
		Fig7(),
		Fig8(),
		Fig9(),
		Fig10a(),
		Fig10b(),
		Fig11(),
		AblationV(),
		AblationAlloc(),
		AblationSolver(),
		WildLinks(),
		Deadline(),
		Joint(),
		CrossCheck(),
		Capacity(),
		Wire(),
		Federation(),
		Selftune(),
		Partition(),
	}
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	all := All()
	for _, e := range all {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(all))
	for _, e := range all {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// calibSeed and calibSize fix the shared calibration workload so every
// experiment sees the same exit rates.
const (
	calibSeed = 42
	calibSize = 1200
)

// calibEntry memoizes one architecture's calibration result; the sync.Once
// guarantees dataset generation and threshold calibration run exactly once
// per architecture per process, even when experiments race for it.
type calibEntry struct {
	once  sync.Once
	sigma []float64
	err   error
}

var (
	calibMu    sync.Mutex
	calibCache = make(map[string]*calibEntry)
)

// calibrated returns the profile's sigma vector on the standard workload.
// Results are cached per profile name: the standard workload is fixed by
// (calibSeed, calibSize), so any two profiles with the same name calibrate
// identically. Callers must treat the returned slice as read-only — it is
// shared across experiments and goroutines.
func calibrated(p *model.Profile) ([]float64, error) {
	calibMu.Lock()
	e, ok := calibCache[p.Name]
	if !ok {
		e = &calibEntry{}
		calibCache[p.Name] = e
	}
	calibMu.Unlock()
	e.once.Do(func() {
		ds, err := dataset.Generate(dataset.CIFAR10Like, calibSize, calibSeed)
		if err != nil {
			e.err = err
			return
		}
		_, _, e.sigma, e.err = confidence.Calibrated(p, ds, calibSeed)
	})
	return e.sigma, e.err
}

// paramsFor builds the deployed ME-DNN parameters for an exit choice.
// earlyExit=false models Neurosurgeon: same cut points, no early exits and
// no added classifiers.
func paramsFor(p *model.Profile, sigma []float64, e1, e2 int, earlyExit bool) (offload.ModelParams, error) {
	mednn, err := model.NewMEDNN(p, e1, e2, sigma)
	if err != nil {
		return offload.ModelParams{}, err
	}
	out := offload.ModelParams{
		Mu:    mednn.BlockFLOPs(),
		D:     mednn.DataBytes(),
		Sigma: mednn.Sigma,
	}
	if !earlyExit {
		m := p.NumExits()
		out.Mu = [3]float64{
			p.RangeFLOPs(0, e1),
			p.RangeFLOPs(e1, e2),
			p.RangeFLOPs(e2, m) + p.ExitClassifierFLOPs(m),
		}
		out.Sigma = [3]float64{0, 0, 1}
	}
	return out, nil
}

// scheme is one end-to-end comparison point: an exit-setting strategy plus
// an offloading policy.
type scheme struct {
	name     string
	strategy exitsetting.Strategy
	policy   offload.Policy
}

// paperSchemes returns the four end-to-end schemes of Figs. 7–9: LEIME with
// its online offloading, and the three baselines with offloading fixed to 0
// (§IV-A: "the offloading ratios of benchmarks are fixed to 0").
func paperSchemes() []scheme {
	return []scheme{
		{name: "LEIME", strategy: exitsetting.LEIME(), policy: offload.Lyapunov()},
		{name: "Neurosurgeon", strategy: exitsetting.Neurosurgeon(), policy: offload.FixedRatio(0)},
		{name: "Edgent", strategy: exitsetting.Edgent(), policy: offload.FixedRatio(0)},
		{name: "DDNN", strategy: exitsetting.DDNN(), policy: offload.FixedRatio(0)},
	}
}

// schemeParams resolves a scheme's exits and deployed parameters for one
// profile/environment.
func schemeParams(sc scheme, p *model.Profile, sigma []float64, env cluster.Env) (offload.ModelParams, int, int, error) {
	in, err := exitsetting.NewInstance(p, sigma, env)
	if err != nil {
		return offload.ModelParams{}, 0, 0, err
	}
	e1, e2, err := sc.strategy.Select(in)
	if err != nil {
		return offload.ModelParams{}, 0, 0, err
	}
	params, err := paramsFor(p, sigma, e1, e2, sc.strategy.UsesEarlyExit)
	return params, e1, e2, err
}
