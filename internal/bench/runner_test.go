package bench

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"leime/internal/model"
)

func TestParallelForCoversAllIndices(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	hits := make([]int, 100)
	if err := parallelFor(len(hits), func(i int) error {
		hits[i]++
		return nil
	}); err != nil {
		t.Fatalf("parallelFor: %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Errorf("index %d ran %d times", i, h)
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	for _, width := range []int{1, 4} {
		SetParallelism(width)
		err := parallelFor(10, func(i int) error {
			if i >= 3 {
				return io.ErrUnexpectedEOF
			}
			return nil
		})
		SetParallelism(0)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("width %d: err = %v, want ErrUnexpectedEOF", width, err)
		}
	}
}

// stripNondeterministic drops the crosscheck experiment's block: it drives
// a real socket testbed whose wall-clock numbers vary run to run (even two
// serial runs differ), so byte-identity is asserted over everything else.
func stripNondeterministic(out string) string {
	if i := strings.Index(out, "=== crosscheck"); i >= 0 {
		return out[:i]
	}
	return out
}

// TestRunAllParallelMatchesSerial is the determinism contract of the
// parallel runner: for every deterministic experiment the bytes emitted at
// -parallel N>1 equal the serial run's.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	var serial, par bytes.Buffer
	if _, err := RunAll(&serial, true, 1); err != nil {
		t.Fatalf("serial RunAll: %v", err)
	}
	results, err := RunAll(&par, true, 4)
	if err != nil {
		t.Fatalf("parallel RunAll: %v", err)
	}
	all := All()
	if len(results) != len(all) {
		t.Fatalf("got %d results, want %d", len(results), len(all))
	}
	for i, r := range results {
		if r.ID != all[i].ID {
			t.Errorf("result %d is %q, want paper order %q", i, r.ID, all[i].ID)
		}
		if r.WallSeconds <= 0 {
			t.Errorf("%s: non-positive wall time %v", r.ID, r.WallSeconds)
		}
	}
	s, p := stripNondeterministic(serial.String()), stripNondeterministic(par.String())
	if len(s) < 1000 || !strings.Contains(serial.String(), "=== crosscheck") {
		t.Fatalf("suspicious serial output (%d bytes)", serial.Len())
	}
	if s != p {
		t.Errorf("parallel output differs from serial:\nserial %d bytes, parallel %d bytes", len(s), len(p))
		sl, pl := strings.Split(s, "\n"), strings.Split(p, "\n")
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if sl[i] != pl[i] {
				t.Errorf("first difference at line %d:\nserial:   %q\nparallel: %q", i+1, sl[i], pl[i])
				break
			}
		}
	}
}

// TestRunAllConcurrentWithCalibration exercises the parallel runner racing
// the calibration cache from outside; run under -race it proves the new
// concurrent paths are data-race free.
func TestRunAllConcurrentWithCalibration(t *testing.T) {
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := RunAll(io.Discard, true, 4); err != nil {
			select {
			case errCh <- err:
			default:
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for _, p := range model.All() {
					if _, err := calibrated(p); err != nil {
						select {
						case errCh <- err:
						default:
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

func TestSolverEvalCounts(t *testing.T) {
	evals, err := SolverEvalCounts()
	if err != nil {
		t.Fatalf("SolverEvalCounts: %v", err)
	}
	if len(evals) != len(model.All()) {
		t.Fatalf("got %d architectures, want %d", len(evals), len(model.All()))
	}
	for _, e := range evals {
		m := e.NumExits
		if want := (m - 1) * (m - 2) / 2; e.ExhaustiveEvals != want {
			t.Errorf("%s: exhaustive evals %d, want %d", e.Arch, e.ExhaustiveEvals, want)
		}
		if e.BranchAndBoundEvals <= 0 || e.BranchAndBoundEvals > e.ExhaustiveEvals+m {
			t.Errorf("%s: implausible branch-and-bound evals %d", e.Arch, e.BranchAndBoundEvals)
		}
	}
}
