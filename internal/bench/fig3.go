package bench

import (
	"fmt"
	"io"
	"math"

	"leime/internal/cluster"
	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

// Fig3 reproduces the offloading-ratio landscapes of Fig. 3: TCT as a
// function of the fixed offloading ratio under varying arrival rate, data
// complexity, bandwidth and propagation delay — showing that the optimal
// ratio moves with every dynamic factor.
func Fig3() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "Fig. 3: TCT vs offloading ratio under dynamic factors (arrival rate, complexity, bandwidth, delay)",
		Run:   runFig3,
	}
}

// fig3Ratios are the swept fixed offloading ratios.
var fig3Ratios = []float64{0, 0.2, 0.4, 0.6, 0.8, 1}

func runFig3(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	// The paper fixes the trained Multi-exit Inception v3's exits for these
	// experiments (§II-B2 uses exits 1/14/16 of its profiling chain; in this
	// reproduction's 16-element chain the equivalent fixed setting is exit-3
	// — the first position with a meaningful exit rate — and exit-14).
	params, err := paramsFor(p, sigma, 3, 14, true)
	if err != nil {
		return err
	}

	base := fig3Env()

	// (a) Arrival rate sweep.
	rates := []float64{2, 6, 15}
	if quick {
		rates = rates[:2]
	}
	fmt.Fprintln(w, "(a) TCT (s) vs offloading ratio under task arrival rate (tasks/slot):")
	if err := fig3Sweep(w, "rate", rates, func(rate float64) (offload.ModelParams, offload.Device, error) {
		dev := base
		dev.ArrivalMean = rate
		return params, dev, nil
	}); err != nil {
		return err
	}

	// (b) First-exit exit-rate sweep via dataset complexity.
	easyFracs := []float64{0.15, 0.5, 0.85}
	if quick {
		easyFracs = easyFracs[:2]
	}
	fmt.Fprintln(w, "(b) TCT (s) vs offloading ratio under First-exit exit rate (dataset complexity):")
	if err := fig3Sweep(w, "sigma1", easyFracs, func(frac float64) (offload.ModelParams, offload.Device, error) {
		ds, err := dataset.Generate(dataset.CIFAR10Like.WithEasyFrac(frac), calibSize, calibSeed)
		if err != nil {
			return params, base, err
		}
		_, _, sg, err := confidence.Calibrated(p, ds, calibSeed)
		if err != nil {
			return params, base, err
		}
		pm, err := paramsFor(p, sg, 3, 14, true)
		if err != nil {
			return params, base, err
		}
		return pm, base, nil
	}); err != nil {
		return err
	}

	// (c) Bandwidth sweep (paper: 8 Mbps => ratio 1; 128 Mbps => ratio 0.4).
	bandwidths := []float64{2, 8, 32, 128}
	if quick {
		bandwidths = bandwidths[:2]
	}
	fmt.Fprintln(w, "(c) TCT (s) vs offloading ratio under bandwidth (Mbps):")
	if err := fig3Sweep(w, "mbps", bandwidths, func(bw float64) (offload.ModelParams, offload.Device, error) {
		dev := base
		dev.BandwidthBps = cluster.Mbps(bw)
		return params, dev, nil
	}); err != nil {
		return err
	}

	// (d) Propagation delay sweep.
	delays := []float64{0.01, 0.05, 0.2}
	if quick {
		delays = delays[:2]
	}
	fmt.Fprintln(w, "(d) TCT (s) vs offloading ratio under propagation delay (s):")
	return fig3Sweep(w, "delay_s", delays, func(d float64) (offload.ModelParams, offload.Device, error) {
		dev := base
		dev.LatencySec = d
		return params, dev, nil
	})
}

func fig3Env() offload.Device {
	return offload.Device{
		FLOPS:        cluster.RaspberryPi3B.FLOPS,
		BandwidthBps: cluster.Mbps(4),
		LatencySec:   0.02,
		ArrivalMean:  6,
	}
}

// fig3Sweep prints one table: rows are parameter values, columns are the
// fixed ratios, plus the per-row optimal ratio.
func fig3Sweep(w io.Writer, label string, values []float64, configure func(float64) (offload.ModelParams, offload.Device, error)) error {
	header := []string{label}
	for _, r := range fig3Ratios {
		header = append(header, fmt.Sprintf("x=%.1f", r))
	}
	header = append(header, "best_x")
	tbl := metrics.NewTable(header...)
	for _, v := range values {
		params, dev, err := configure(v)
		if err != nil {
			return err
		}
		row := make([]any, 0, len(header))
		row = append(row, v)
		best, bestRatio := math.Inf(1), 0.0
		for _, r := range fig3Ratios {
			tct, err := fig3SlotTCT(params, dev, r)
			if err != nil {
				return err
			}
			row = append(row, tct)
			if tct < best {
				best, bestRatio = tct, r
			}
		}
		row = append(row, bestRatio)
		tbl.AddRow(row...)
	}
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w)
	return nil
}

func fig3SlotTCT(params offload.ModelParams, dev offload.Device, ratio float64) (float64, error) {
	policy := offload.FixedRatio(ratio)
	res, err := sim.RunSlots(sim.SlotConfig{
		Model:   params,
		Devices: []sim.DeviceSpec{{Device: dev, Policy: &policy}},
		// The paper's testbed shares the edge across six devices; this
		// device sees one share.
		EdgeFLOPS:   cluster.EdgeDesktop.FLOPS / 6,
		CloudFLOPS:  cluster.CloudV100.FLOPS,
		EdgeCloud:   cluster.InternetDefault,
		TauSec:      1,
		V:           1e4,
		Slots:       200,
		WarmupSlots: 40,
		Seed:        13,
	})
	if err != nil {
		return 0, err
	}
	return res.MeanTCT, nil
}
