package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"leime/internal/metrics"
	"leime/internal/rpc"
	"leime/internal/runtime"
)

// wireGobReq mirrors runtime.SecondBlockReq field-for-field but is only
// gob-registered, so the transport routes it through the reflection
// fallback: same bytes of application payload, different codec. Comparing
// round trips of the two types isolates the codec cost from everything
// else (sockets, scheduling), which no microbenchmark of encode alone can.
type wireGobReq struct {
	DeviceID  string
	TaskID    uint64
	Payload   []byte
	ExitStage int
}

// registerWireGob installs the gob-only mirror. Idempotent via rpc.Register.
func registerWireGob() {
	//lint:ignore codeccomplete the gob-only mirror is the experiment's control arm; a binary codec would defeat it
	rpc.Register(wireGobReq{})
}

// Wire compares the binary wire codec against the gob fallback on live
// round trips: the same task-shaped message crosses a loopback connection
// as runtime.SecondBlockReq (binary fast path) and as a gob-only mirror
// type, over the payload sizes an intermediate tensor actually spans.
func Wire() Experiment {
	return Experiment{
		ID:    "wire",
		Title: "Data plane: binary wire codec vs gob fallback, live round trips",
		Run:   runWire,
	}
}

func runWire(w io.Writer, quick bool) error {
	runtime.RegisterMessages()
	registerWireGob()

	sizes := []int{1 << 10, 16 << 10, 64 << 10, 256 << 10}
	rounds := 800
	if quick {
		sizes = []int{1 << 10, 64 << 10}
		rounds = 150
	}

	s, err := rpc.Serve("127.0.0.1:0", func(_ context.Context, body any) (any, error) {
		return body, nil
	})
	if err != nil {
		return err
	}
	defer s.Close()
	c, err := rpc.Dial(s.Addr(), nil)
	if err != nil {
		return err
	}
	defer c.Close()

	// One measured arm: n round trips of body, returning mean µs per trip.
	run := func(body any, n int) (float64, error) {
		// Warm the path (connection buffers, codec tables) off the clock.
		for i := 0; i < 3; i++ {
			if _, err := c.Call(context.Background(), body); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := c.Call(context.Background(), body); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() * 1e6 / float64(n), nil
	}

	before := rpc.WireStats()
	tbl := metrics.NewTable("payload_bytes", "binary_us", "gob_us", "speedup", "binary_MBps")
	for _, size := range sizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		bin := runtime.SecondBlockReq{DeviceID: "wire-bench", TaskID: 1, Payload: payload, ExitStage: 2}
		gob := wireGobReq{DeviceID: "wire-bench", TaskID: 1, Payload: payload, ExitStage: 2}
		binUS, err := run(bin, rounds)
		if err != nil {
			return err
		}
		gobUS, err := run(gob, rounds)
		if err != nil {
			return err
		}
		// Payload crosses twice per echo round trip (request + reply).
		mbps := 2 * float64(size) / (binUS / 1e6) / 1e6
		tbl.AddRow(size, binUS, gobUS, gobUS/binUS, mbps)
	}
	delta := rpc.WireStats()

	fmt.Fprintf(w, "Echo round trips over loopback TCP, %d trips per cell, payload both directions:\n", rounds)
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "\nframes this process: binary %d encoded / %d decoded, gob %d / %d\n",
		delta.BinaryEncoded-before.BinaryEncoded, delta.BinaryDecoded-before.BinaryDecoded,
		delta.GobEncoded-before.GobEncoded, delta.GobDecoded-before.GobDecoded)
	fmt.Fprintln(w, "The registered protocol type rides the binary codec; its field-identical")
	fmt.Fprintln(w, "gob-only mirror pays reflection on every frame. The gap is the data-plane")
	fmt.Fprintln(w, "overhead the codec layer removes; it widens as payloads shrink and")
	fmt.Fprintln(w, "per-frame cost dominates byte-shovelling.")
	return nil
}
