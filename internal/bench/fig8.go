package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/metrics"
	"leime/internal/model"
)

// Fig8 reproduces the per-model comparison of Fig. 8: average TCT of the
// four schemes under each DNN on the Raspberry Pi and the Jetson Nano.
// Paper: LEIME achieves 1.6–13.2x speedup on the Pi and 1.1–10.3x on the
// Nano; Neurosurgeon tracks LEIME's shape (same partition) but slower;
// Edgent and DDNN fluctuate widely across models.
func Fig8() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "Fig. 8: TCT per DNN model on Raspberry Pi and Jetson Nano, four schemes",
		Run:   runFig8,
	}
}

func runFig8(w io.Writer, quick bool) error {
	devices := []cluster.Node{cluster.RaspberryPi3B, cluster.JetsonNano}
	profiles := model.All()
	if quick {
		profiles = profiles[:2]
	}
	schemes := paperSchemes()
	for _, dev := range devices {
		fmt.Fprintf(w, "TCT (s) on %s:\n", dev.Name)
		header := []string{"model"}
		for _, sc := range schemes {
			header = append(header, sc.name)
		}
		header = append(header, "best_speedup_vs_leime")
		tbl := metrics.NewTable(header...)
		env := cluster.TestbedEnv(dev)
		// The model × scheme grid fans out on the shared worker pool; rows
		// are assembled from the gathered grid, so the table is independent
		// of parallelism.
		tcts := make([]float64, len(profiles)*len(schemes))
		if err := parallelFor(len(tcts), func(k int) error {
			p, sc := profiles[k/len(schemes)], schemes[k%len(schemes)]
			sigma, err := calibrated(p)
			if err != nil {
				return err
			}
			tct, err := schemeTCT(sc, p, sigma, env, fig7Workload())
			if err != nil {
				return fmt.Errorf("%s on %s/%s: %w", sc.name, dev.Name, p.Name, err)
			}
			tcts[k] = tct
			return nil
		}); err != nil {
			return err
		}
		for pi, p := range profiles {
			row := []any{p.Name}
			var leimeTCT, worst float64
			for si, sc := range schemes {
				tct := tcts[pi*len(schemes)+si]
				row = append(row, tct)
				if sc.name == "LEIME" {
					leimeTCT = tct
				} else if s := tct / leimeTCT; s > worst {
					worst = s
				}
			}
			row = append(row, worst)
			tbl.AddRow(row...)
		}
		fmt.Fprint(w, tbl.String())
		fmt.Fprintln(w)
	}
	return nil
}
