package bench

import (
	"fmt"
	"io"
	"math"

	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/metrics"
	"leime/internal/model"
)

// Fig2 reproduces the exit-setting landscapes of Fig. 2: how the optimal
// First and Second exits move with device capability, edge load, and DNN
// architecture.
func Fig2() Experiment {
	return Experiment{
		ID:    "fig2",
		Title: "Fig. 2: optimal exit settings vs device capability, edge load and DNN type",
		Run:   runFig2,
	}
}

func runFig2(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}

	// (a) Normalized latency vs First-exit, Pi vs Nano. Each point is the
	// best completion over Second-exit choices for that First-exit.
	fmt.Fprintln(w, "(a) normalized TCT vs First-exit (ME-Inception v3):")
	tblA := metrics.NewTable("first_exit", "raspberry_pi", "jetson_nano")
	piCurve, err := firstExitCurve(p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B))
	if err != nil {
		return err
	}
	nanoCurve, err := firstExitCurve(p, sigma, cluster.TestbedEnv(cluster.JetsonNano))
	if err != nil {
		return err
	}
	for i := range piCurve {
		tblA.AddRow(i+1, piCurve[i], nanoCurve[i])
	}
	fmt.Fprint(w, tblA.String())
	fmt.Fprintf(w, "optimal First-exit: pi=exit-%d nano=exit-%d (paper: pi exit-1, nano exit-10)\n\n",
		argminIdx(piCurve)+1, argminIdx(nanoCurve)+1)

	// (b) Normalized latency vs Second-exit under light and heavy edge load.
	fmt.Fprintln(w, "(b) normalized TCT vs Second-exit under edge load (Raspberry Pi):")
	tblB := metrics.NewTable("second_exit", "idle_edge", "loaded_edge_5pct")
	idleCurve, err := secondExitCurve(p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B))
	if err != nil {
		return err
	}
	loadedCurve, err := secondExitCurve(p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(0.05))
	if err != nil {
		return err
	}
	for i := range idleCurve {
		if math.IsInf(idleCurve[i], 1) {
			continue
		}
		tblB.AddRow(i+1, idleCurve[i], loadedCurve[i])
	}
	fmt.Fprint(w, tblB.String())
	fmt.Fprintf(w, "optimal Second-exit: idle=exit-%d loaded=exit-%d (paper: light load prefers deeper)\n\n",
		argminIdx(idleCurve)+1, argminIdx(loadedCurve)+1)

	// (c)/(d) Optimal exits per DNN type.
	fmt.Fprintln(w, "(c,d) optimal exits per DNN (Raspberry Pi testbed):")
	tblC := metrics.NewTable("model", "m", "first_exit", "second_exit", "tct_s")
	profiles := model.All()
	if quick {
		profiles = profiles[:2]
	}
	for _, pr := range profiles {
		sg, err := calibrated(pr)
		if err != nil {
			return err
		}
		in, err := exitsetting.NewInstance(pr, sg, cluster.TestbedEnv(cluster.RaspberryPi3B))
		if err != nil {
			return err
		}
		best := in.Solve()
		tblC.AddRow(pr.Name, pr.NumExits(), best.E1, best.E2, best.Cost)
	}
	fmt.Fprint(w, tblC.String())
	return nil
}

// firstExitCurve returns, per First-exit candidate, the normalized best TCT
// over Second-exit completions.
func firstExitCurve(p *model.Profile, sigma []float64, env cluster.Env) ([]float64, error) {
	in, err := exitsetting.NewInstance(p, sigma, env)
	if err != nil {
		return nil, err
	}
	m := p.NumExits()
	curve := make([]float64, m-2)
	best := math.Inf(1)
	for e1 := 1; e1 < m-1; e1++ {
		v := math.Inf(1)
		for e2 := e1 + 1; e2 < m; e2++ {
			if c := in.Cost(e1, e2); c < v {
				v = c
			}
		}
		curve[e1-1] = v
		if v < best {
			best = v
		}
	}
	for i := range curve {
		curve[i] /= best
	}
	return curve, nil
}

// secondExitCurve returns, per Second-exit candidate, the normalized best
// TCT over First-exit completions.
func secondExitCurve(p *model.Profile, sigma []float64, env cluster.Env) ([]float64, error) {
	in, err := exitsetting.NewInstance(p, sigma, env)
	if err != nil {
		return nil, err
	}
	m := p.NumExits()
	curve := make([]float64, m-1)
	best := math.Inf(1)
	for e2 := 2; e2 < m; e2++ {
		v := math.Inf(1)
		for e1 := 1; e1 < e2; e1++ {
			if c := in.Cost(e1, e2); c < v {
				v = c
			}
		}
		curve[e2-1] = v
		if v < best {
			best = v
		}
	}
	curve[0] = math.Inf(1) // exit-1 cannot be a Second exit
	for i := 1; i < len(curve); i++ {
		curve[i] /= best
	}
	return curve, nil
}

func argminIdx(v []float64) int {
	best, bestV := 0, math.Inf(1)
	for i, x := range v {
		if x < bestV {
			best, bestV = i, x
		}
	}
	return best
}
