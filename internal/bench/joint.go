package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/metrics"
	"leime/internal/model"
)

// Joint measures the extension of §III beyond the paper: optimizing the exit
// setting and the steady-state offloading ratio *jointly* instead of the
// paper's sequential pipeline (solve P0 at x=0, then let the controller pick
// x for those fixed exits). The expected-cost model is shared, so the
// comparison isolates the value of co-optimization.
func Joint() Experiment {
	return Experiment{
		ID:    "ext-joint",
		Title: "Extension: joint exit-setting + offloading co-optimization vs the paper's sequential pipeline",
		Run:   runJoint,
	}
}

func runJoint(w io.Writer, quick bool) error {
	envs := []struct {
		name string
		env  cluster.Env
	}{
		{"pi/idle-edge", cluster.TestbedEnv(cluster.RaspberryPi3B)},
		{"pi/shared-edge", cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(1.0 / 6)},
		{"pi/poor-net", cluster.TestbedEnv(cluster.RaspberryPi3B).
			WithDeviceEdge(cluster.Path{BandwidthBps: cluster.Mbps(2), LatencySec: 0.1})},
		{"nano/shared-edge", cluster.TestbedEnv(cluster.JetsonNano).WithEdgeLoad(1.0 / 6)},
	}
	profiles := model.All()
	if quick {
		profiles = profiles[:2]
		envs = envs[:2]
	}
	tbl := metrics.NewTable("model", "environment",
		"seq_exits", "seq_x", "seq_tct_s",
		"joint_exits", "joint_x", "joint_tct_s", "gain_pct")
	var worstGain, meanGain float64
	rows := 0
	for _, p := range profiles {
		sigma, err := calibrated(p)
		if err != nil {
			return err
		}
		for _, e := range envs {
			in, err := exitsetting.NewInstance(p, sigma, e.env)
			if err != nil {
				return err
			}
			seq := in.SolveSequential()
			joint := in.SolveJoint()
			gain := 100 * (seq.Cost - joint.Cost) / seq.Cost
			meanGain += gain
			if gain > worstGain {
				worstGain = gain
			}
			rows++
			tbl.AddRow(p.Name, e.name,
				fmt.Sprintf("(%d,%d)", seq.E1, seq.E2), seq.Ratio, seq.Cost,
				fmt.Sprintf("(%d,%d)", joint.E1, joint.E2), joint.Ratio, joint.Cost, gain)
		}
	}
	fmt.Fprintln(w, "Sequential (paper) vs joint co-optimization, shared expected-cost model:")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "\nmean improvement %.1f%%, best case %.1f%% — the sequential pipeline is near-\n",
		meanGain/float64(rows), worstGain)
	fmt.Fprintln(w, "optimal when block-1 stays on-device, but co-optimization finds different")
	fmt.Fprintln(w, "exits whenever high offloading makes device-centric placement stale.")
	return nil
}
