package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

// Fig10a reproduces the exit-setting ablation of Fig. 10(a): LEIME's exit
// setting vs min_comp, min_tran and mean, all using LEIME's offloading.
// Paper: LEIME wins everywhere; the speedup is larger on big models
// (Inception v3, ResNet-34) than small ones; min_tran is generally worst.
func Fig10a() Experiment {
	return Experiment{
		ID:    "fig10a",
		Title: "Fig. 10(a): exit-setting ablation (LEIME vs min_comp/min_tran/mean)",
		Run:   runFig10a,
	}
}

func runFig10a(w io.Writer, quick bool) error {
	ablations := []scheme{
		{name: "LEIME", strategy: exitsetting.LEIME(), policy: offload.Lyapunov()},
		{name: "min_comp", strategy: exitsetting.MinComp(), policy: offload.Lyapunov()},
		{name: "min_tran", strategy: exitsetting.MinTran(), policy: offload.Lyapunov()},
		{name: "mean", strategy: exitsetting.Mean(), policy: offload.Lyapunov()},
	}
	// The edge is shared (8% share) and the load is moderate, so offloading
	// is partial and the exit setting's device/edge split actually matters —
	// the operating regime of the paper's testbed.
	env := cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(0.08)
	profiles := model.All()
	if quick {
		profiles = profiles[:2]
	}
	header := []string{"model"}
	for _, sc := range ablations {
		header = append(header, sc.name)
	}
	header = append(header, "worst_speedup_vs_leime")
	tbl := metrics.NewTable(header...)
	for _, p := range profiles {
		sigma, err := calibrated(p)
		if err != nil {
			return err
		}
		row := []any{p.Name}
		var leimeTCT, worst float64
		for _, sc := range ablations {
			wl := fig7Workload()
			wl.rate = 2
			tct, err := schemeTCT(sc, p, sigma, env, wl)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", sc.name, p.Name, err)
			}
			row = append(row, tct)
			if sc.name == "LEIME" {
				leimeTCT = tct
			} else if s := tct / leimeTCT; s > worst {
				worst = s
			}
		}
		row = append(row, worst)
		tbl.AddRow(row...)
	}
	fmt.Fprintln(w, "TCT (s) with LEIME offloading fixed, exit setting varied (Raspberry Pi):")
	fmt.Fprint(w, tbl.String())
	return nil
}

// Fig10b reproduces the offloading ablation of Fig. 10(b): LEIME's online
// offloading vs D-only, E-only and cap_based, on a Jetson Nano across task
// arrival rates. Paper: gains grow with load — ~1.1x/1.2x at rates 5 and 20,
// ~1.8x at rate 100.
func Fig10b() Experiment {
	return Experiment{
		ID:    "fig10b",
		Title: "Fig. 10(b): offloading ablation (LEIME vs D-only/E-only/cap_based) across arrival rates",
		Run:   runFig10b,
	}
}

func runFig10b(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	env := cluster.TestbedEnv(cluster.JetsonNano)
	params, _, _, err := schemeParams(scheme{strategy: exitsetting.LEIME()}, p, sigma, env)
	if err != nil {
		return err
	}
	rates := []float64{5, 20, 100}
	if quick {
		rates = rates[:2]
	}
	policies := append([]offload.Policy{offload.Lyapunov()}, offload.ClassicBaselines()...)
	header := []string{"arrival_rate"}
	for _, pol := range policies {
		header = append(header, pol.Name)
	}
	header = append(header, "mean_speedup_vs_leime")
	tbl := metrics.NewTable(header...)
	for _, rate := range rates {
		row := []any{rate}
		var leimeTCT, sum float64
		for _, pol := range policies {
			pol := pol
			res, err := sim.RunSlots(sim.SlotConfig{
				Model: params,
				Devices: []sim.DeviceSpec{{
					Device: offload.Device{
						FLOPS:        env.DeviceFLOPS,
						BandwidthBps: env.DeviceEdge.BandwidthBps,
						LatencySec:   env.DeviceEdge.LatencySec,
						ArrivalMean:  rate,
					},
					Policy: &pol,
				}},
				EdgeFLOPS:   env.EdgeFLOPS,
				CloudFLOPS:  env.CloudFLOPS,
				EdgeCloud:   env.EdgeCloud,
				TauSec:      1,
				V:           1e4,
				Slots:       200,
				WarmupSlots: 40,
				Seed:        17,
			})
			if err != nil {
				return fmt.Errorf("%s at rate %v: %w", pol.Name, rate, err)
			}
			tct := res.MeanTCT
			row = append(row, tct)
			if pol.Name == "LEIME" {
				leimeTCT = tct
			} else {
				sum += tct / leimeTCT
			}
		}
		row = append(row, sum/float64(len(policies)-1))
		tbl.AddRow(row...)
	}
	fmt.Fprintln(w, "TCT (s) with LEIME exit setting fixed, offloading varied (Jetson Nano):")
	fmt.Fprint(w, tbl.String())
	return nil
}
