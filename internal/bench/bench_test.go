package bench

import (
	"bytes"
	"strings"
	"testing"

	"leime/internal/cluster"
	"leime/internal/model"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("Run: %v", err)
			}
			out := buf.String()
			if len(out) < 100 {
				t.Errorf("suspiciously short output (%d bytes):\n%s", len(out), out)
			}
			if !strings.Contains(out, "-") { // every experiment prints a table
				t.Errorf("no table rendered:\n%s", out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	for _, want := range []string{"motivation", "fig2", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "fig11"} {
		e, err := ByID(want)
		if err != nil {
			t.Fatalf("ByID(%q): %v", want, err)
		}
		if e.ID != want {
			t.Errorf("ByID(%q).ID = %q", want, e.ID)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", want)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestParamsForNeurosurgeonDisablesExits(t *testing.T) {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		t.Fatalf("calibrated: %v", err)
	}
	params, err := paramsFor(p, sigma, 3, 10, false)
	if err != nil {
		t.Fatalf("paramsFor: %v", err)
	}
	if params.Sigma[0] != 0 || params.Sigma[1] != 0 || params.Sigma[2] != 1 {
		t.Errorf("Neurosurgeon sigma = %v, want [0 0 1]", params.Sigma)
	}
	withExits, err := paramsFor(p, sigma, 3, 10, true)
	if err != nil {
		t.Fatalf("paramsFor: %v", err)
	}
	// Without classifiers the first two blocks must be slightly cheaper.
	if params.Mu[0] >= withExits.Mu[0] || params.Mu[1] >= withExits.Mu[1] {
		t.Errorf("classifier FLOPs not removed: %v vs %v", params.Mu, withExits.Mu)
	}
	if err := params.Validate(); err != nil {
		t.Errorf("Neurosurgeon params invalid: %v", err)
	}
}

func TestSchemeParamsAllSchemes(t *testing.T) {
	p := model.ResNet34()
	sigma, err := calibrated(p)
	if err != nil {
		t.Fatalf("calibrated: %v", err)
	}
	env := cluster.TestbedEnv(cluster.JetsonNano)
	for _, sc := range paperSchemes() {
		params, e1, e2, err := schemeParams(sc, p, sigma, env)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if !(1 <= e1 && e1 < e2 && e2 < p.NumExits()) {
			t.Errorf("%s: bad exits (%d, %d)", sc.name, e1, e2)
		}
		if err := params.Validate(); err != nil {
			t.Errorf("%s: invalid params: %v", sc.name, err)
		}
	}
}

func TestLEIMEWinsQuickFig7Point(t *testing.T) {
	// Shape assertion behind Fig. 7: under a poor network LEIME beats every
	// baseline in the event simulator.
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		t.Fatalf("calibrated: %v", err)
	}
	env := cluster.TestbedEnv(cluster.RaspberryPi3B).
		WithDeviceEdge(cluster.Path{BandwidthBps: cluster.Mbps(4), LatencySec: 0.1})
	var leime float64
	for _, sc := range paperSchemes() {
		tct, err := schemeTCT(sc, p, sigma, env, fig7Workload())
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if sc.name == "LEIME" {
			leime = tct
			continue
		}
		if tct <= leime {
			t.Errorf("%s (%v) beat LEIME (%v) under a poor network", sc.name, tct, leime)
		}
	}
}
