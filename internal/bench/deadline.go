package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

// Deadline extends the evaluation to the deadline requirements the paper
// lists among the wild edge's application characteristics (§II-A) but never
// measures: the fraction of tasks each scheme completes within a latency
// budget, across budgets.
func Deadline() Experiment {
	return Experiment{
		ID:    "ext-deadline",
		Title: "Extension: deadline satisfaction — fraction of tasks completed within a latency budget, per scheme",
		Run:   runDeadline,
	}
}

func runDeadline(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	env := cluster.TestbedEnv(cluster.RaspberryPi3B)
	deadlines := []float64{0.1, 0.25, 0.5, 1.0}
	if quick {
		deadlines = deadlines[1:3]
	}
	schemes := paperSchemes()
	header := []string{"deadline_s"}
	for _, sc := range schemes {
		header = append(header, sc.name+"_miss_pct")
	}
	tbl := metrics.NewTable(header...)
	wl := fig7Workload()
	for _, dl := range deadlines {
		row := []any{dl}
		for _, sc := range schemes {
			params, _, _, err := schemeParams(sc, p, sigma, env)
			if err != nil {
				return err
			}
			policy := sc.policy
			res, err := sim.RunEvents(sim.EventConfig{
				Model: params,
				Devices: []sim.DeviceSpec{{
					Device: offload.Device{
						FLOPS:        env.DeviceFLOPS,
						BandwidthBps: env.DeviceEdge.BandwidthBps,
						LatencySec:   env.DeviceEdge.LatencySec,
						ArrivalMean:  wl.rate,
					},
					Policy: &policy,
				}},
				EdgeFLOPS:   env.EdgeFLOPS,
				CloudFLOPS:  env.CloudFLOPS,
				EdgeCloud:   env.EdgeCloud,
				TauSec:      1,
				V:           1e4,
				Slots:       wl.slots,
				WarmupSlots: wl.warmup,
				DeadlineSec: dl,
				Seed:        wl.seed,
			})
			if err != nil {
				return fmt.Errorf("%s at deadline %v: %w", sc.name, dl, err)
			}
			row = append(row, 100*float64(res.DeadlineMisses)/float64(res.TCT.Count()))
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintln(w, "Deadline miss rate (%), ME-Inception v3 on a Raspberry Pi (rate 0.3/slot):")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w, "\nEarly exits turn latency budgets into soft guarantees: most of LEIME's")
	fmt.Fprintln(w, "traffic finishes at the First/Second exit, far inside tight deadlines that")
	fmt.Fprintln(w, "the no-early-exit baselines structurally cannot meet.")
	return nil
}
