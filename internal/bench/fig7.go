package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

// Fig7 reproduces the overall-performance network sweep of Fig. 7: average
// TCT of LEIME vs Neurosurgeon, Edgent and DDNN on a Raspberry Pi running
// ME-Inception v3, across bandwidths and propagation delays. Paper speedups:
// 4.4x/6.5x/18.7x under bandwidth variation and 4.2x/5.7x/14.5x under delay
// variation, with the largest gaps in poor networks (< 10 Mbps, > 100 ms).
func Fig7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Fig. 7: TCT vs bandwidth and propagation delay, LEIME vs Neurosurgeon/Edgent/DDNN",
		Run:   runFig7,
	}
}

func runFig7(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}

	bandwidths := []float64{1, 4, 8, 16, 32, 64, 128}
	delays := []float64{0.01, 0.025, 0.05, 0.1, 0.15, 0.2}
	if quick {
		bandwidths = []float64{4, 32}
		delays = []float64{0.02, 0.15}
	}

	fmt.Fprintln(w, "TCT (s) vs bandwidth (Mbps), propagation delay 20 ms:")
	if err := fig7Sweep(w, p, sigma, "mbps", bandwidths, func(env cluster.Env, v float64) cluster.Env {
		return env.WithDeviceEdge(cluster.Path{BandwidthBps: cluster.Mbps(v), LatencySec: 0.02})
	}); err != nil {
		return err
	}

	fmt.Fprintln(w, "TCT (s) vs propagation delay (s), bandwidth 10 Mbps:")
	return fig7Sweep(w, p, sigma, "delay_s", delays, func(env cluster.Env, v float64) cluster.Env {
		return env.WithDeviceEdge(cluster.Path{BandwidthBps: cluster.Mbps(10), LatencySec: v})
	})
}

// fig7Sweep runs the four schemes across one network parameter sweep and
// prints the TCT table plus the LEIME speedup summary. The value × scheme
// grid fans out on the shared worker pool; the table is assembled from the
// gathered grid afterwards, so the output is independent of parallelism.
func fig7Sweep(w io.Writer, p *model.Profile, sigma []float64, label string, values []float64,
	modify func(cluster.Env, float64) cluster.Env) error {
	schemes := paperSchemes()
	header := []string{label}
	for _, sc := range schemes {
		header = append(header, sc.name)
	}
	tcts := make([]float64, len(values)*len(schemes))
	if err := parallelFor(len(tcts), func(k int) error {
		v, sc := values[k/len(schemes)], schemes[k%len(schemes)]
		env := modify(cluster.TestbedEnv(cluster.RaspberryPi3B), v)
		tct, err := schemeTCT(sc, p, sigma, env, fig7Workload())
		if err != nil {
			return fmt.Errorf("%s at %s=%v: %w", sc.name, label, v, err)
		}
		tcts[k] = tct
		return nil
	}); err != nil {
		return err
	}
	tbl := metrics.NewTable(header...)
	speedups := make(map[string]float64)
	for vi, v := range values {
		row := []any{v}
		var leimeTCT float64
		for si, sc := range schemes {
			tct := tcts[vi*len(schemes)+si]
			row = append(row, tct)
			if sc.name == "LEIME" {
				leimeTCT = tct
			} else {
				speedups[sc.name] += tct / leimeTCT
			}
		}
		tbl.AddRow(row...)
	}
	fmt.Fprint(w, tbl.String())
	n := float64(len(values))
	fmt.Fprintf(w, "mean speedup vs LEIME: Neurosurgeon %.1fx, Edgent %.1fx, DDNN %.1fx\n\n",
		speedups["Neurosurgeon"]/n, speedups["Edgent"]/n, speedups["DDNN"]/n)
	return nil
}

// fig7Workload is the shared single-device event-sim workload.
type workload struct {
	rate    float64
	slots   int
	warmup  int
	seed    int64
	devices int
}

func fig7Workload() workload {
	return workload{rate: 0.3, slots: 400, warmup: 50, seed: 23, devices: 1}
}

// schemeTCT measures one scheme's mean TCT in the per-task event simulator.
func schemeTCT(sc scheme, p *model.Profile, sigma []float64, env cluster.Env, wl workload) (float64, error) {
	params, _, _, err := schemeParams(sc, p, sigma, env)
	if err != nil {
		return 0, err
	}
	devs := make([]sim.DeviceSpec, wl.devices)
	for i := range devs {
		policy := sc.policy
		devs[i] = sim.DeviceSpec{
			Device: offload.Device{
				FLOPS:        env.DeviceFLOPS,
				BandwidthBps: env.DeviceEdge.BandwidthBps,
				LatencySec:   env.DeviceEdge.LatencySec,
				ArrivalMean:  wl.rate,
			},
			Policy: &policy,
		}
	}
	res, err := sim.RunEvents(sim.EventConfig{
		Model:       params,
		Devices:     devs,
		EdgeFLOPS:   env.EdgeFLOPS,
		CloudFLOPS:  env.CloudFLOPS,
		EdgeCloud:   env.EdgeCloud,
		TauSec:      1,
		V:           1e4,
		Slots:       wl.slots,
		WarmupSlots: wl.warmup,
		Seed:        wl.seed,
	})
	if err != nil {
		return 0, err
	}
	return res.TCT.Mean(), nil
}
