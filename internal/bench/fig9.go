package bench

import (
	"fmt"
	"io"

	"leime/internal/cluster"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
	"leime/internal/trace"
)

// Fig9 reproduces the stability study of Fig. 9: average TCT over time under
// a dynamically changing task arrival rate, on the Raspberry Pi (upper) and
// the Jetson Nano (lower). Paper: LEIME shows the smallest TCT and the best
// stability; DDNN blows past the axis on the Pi (queue backlog) but not on
// the Nano; Neurosurgeon fluctuates the most.
func Fig9() Experiment {
	return Experiment{
		ID:    "fig9",
		Title: "Fig. 9: TCT over time under dynamic arrival rates (stability), Pi and Nano",
		Run:   runFig9,
	}
}

// fig9Phases is the piecewise arrival-rate schedule: calm, surge, calm,
// heavier surge, calm.
func fig9Phases() []trace.Phase {
	return []trace.Phase{
		{Slots: 60, Rate: 1},
		{Slots: 60, Rate: 3},
		{Slots: 60, Rate: 1.5},
		{Slots: 60, Rate: 4.5},
		{Slots: 60, Rate: 1},
	}
}

func runFig9(w io.Writer, quick bool) error {
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	phases := fig9Phases()
	if quick {
		phases = phases[:3]
	}
	totalSlots := 0
	for _, ph := range phases {
		totalSlots += ph.Slots
	}

	for _, dev := range []cluster.Node{cluster.RaspberryPi3B, cluster.JetsonNano} {
		env := cluster.TestbedEnv(dev)
		fmt.Fprintf(w, "Per-phase mean TCT (s) on %s (phases: ", dev.Name)
		for i, ph := range phases {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "rate %.0f", ph.Rate)
		}
		fmt.Fprintln(w, "):")

		header := []string{"scheme"}
		for i := range phases {
			header = append(header, fmt.Sprintf("phase%d", i+1))
		}
		header = append(header, "final_backlog", "stddev")
		tbl := metrics.NewTable(header...)

		// The four schemes' slot simulations are independent; fan them out
		// and add the gathered rows in scheme order.
		schemes := paperSchemes()
		rows := make([][]any, len(schemes))
		if err := parallelFor(len(schemes), func(si int) error {
			sc := schemes[si]
			params, _, _, err := schemeParams(sc, p, sigma, env)
			if err != nil {
				return err
			}
			proc, err := trace.NewPiecewise(phases, 31)
			if err != nil {
				return err
			}
			policy := sc.policy
			meanRate := proc.Mean()
			res, err := sim.RunSlots(sim.SlotConfig{
				Model: params,
				Devices: []sim.DeviceSpec{{
					Device: offload.Device{
						FLOPS:        env.DeviceFLOPS,
						BandwidthBps: env.DeviceEdge.BandwidthBps,
						LatencySec:   env.DeviceEdge.LatencySec,
						ArrivalMean:  meanRate,
					},
					Arrivals: proc,
					Policy:   &policy,
				}},
				EdgeFLOPS:   env.EdgeFLOPS,
				CloudFLOPS:  env.CloudFLOPS,
				EdgeCloud:   env.EdgeCloud,
				TauSec:      1,
				V:           1e4,
				Slots:       totalSlots,
				WarmupSlots: 5,
				Seed:        31,
			})
			if err != nil {
				return fmt.Errorf("%s on %s: %w", sc.name, dev.Name, err)
			}
			series := res.PerDevice[0].SlotTCT
			row := []any{sc.name}
			at := 0
			for _, ph := range phases {
				row = append(row, series.Window(at, at+ph.Slots))
				at += ph.Slots
			}
			rows[si] = append(row, res.FinalBacklog, res.PerDevice[0].TCT.Stddev())
			return nil
		}); err != nil {
			return err
		}
		for _, row := range rows {
			tbl.AddRow(row...)
		}
		fmt.Fprint(w, tbl.String())
		fmt.Fprintln(w)
	}
	return nil
}
