package bench

import (
	"fmt"
	"io"
	"math"

	"leime/internal/cluster"
	"leime/internal/exitsetting"
	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/offload"
	"leime/internal/sim"
)

// Motivation reproduces the two headline degradation numbers of §II-B:
// improper exit settings cause 4.47x average degradation; improper task
// offloading causes 2.85x.
func Motivation() Experiment {
	return Experiment{
		ID:    "motivation",
		Title: "§II-B: degradation from improper exit settings (paper: 4.47x) and improper offloading (paper: 2.85x)",
		Run:   runMotivation,
	}
}

func runMotivation(w io.Writer, quick bool) error {
	// Part 1: exit-setting degradation. Across architectures and device
	// classes, compare every admissible exit combination's expected TCT to
	// the optimum.
	tbl := metrics.NewTable("model", "environment", "optimal_tct_s", "mean_degradation_x", "worst_degradation_x")
	profiles := model.All()
	if quick {
		profiles = profiles[:2]
	}
	envs := []struct {
		name string
		env  cluster.Env
	}{
		{"testbed", cluster.TestbedEnv(cluster.RaspberryPi3B)},
		{"testbed", cluster.TestbedEnv(cluster.JetsonNano)},
		{"poor-net", cluster.TestbedEnv(cluster.RaspberryPi3B).
			WithDeviceEdge(cluster.Path{BandwidthBps: cluster.Mbps(2), LatencySec: 0.15})},
		{"loaded-edge", cluster.TestbedEnv(cluster.JetsonNano).WithEdgeLoad(0.05)},
	}
	// The model × environment grid fans out on the shared worker pool; rows
	// and the degradation summary are assembled in grid order afterwards.
	type exitCell struct {
		best, mean, worst float64
	}
	cells := make([]exitCell, len(profiles)*len(envs))
	if err := parallelFor(len(cells), func(k int) error {
		p, e := profiles[k/len(envs)], envs[k%len(envs)]
		sigma, err := calibrated(p)
		if err != nil {
			return err
		}
		in, err := exitsetting.NewInstance(p, sigma, e.env)
		if err != nil {
			return err
		}
		best := in.Exhaustive()
		var sum, worst float64
		count := 0
		for e1 := 1; e1 < p.NumExits()-1; e1++ {
			for e2 := e1 + 1; e2 < p.NumExits(); e2++ {
				ratio := in.Cost(e1, e2) / best.Cost
				sum += ratio
				if ratio > worst {
					worst = ratio
				}
				count++
			}
		}
		cells[k] = exitCell{best: best.Cost, mean: sum / float64(count), worst: worst}
		return nil
	}); err != nil {
		return err
	}
	degradations := make([]float64, 0, len(cells))
	for k, c := range cells {
		degradations = append(degradations, c.mean)
		tbl.AddRow(profiles[k/len(envs)].Name, envs[k%len(envs)].name, c.best, c.mean, c.worst)
	}
	var total float64
	for _, d := range degradations {
		total += d
	}
	fmt.Fprintln(w, "Exit-setting degradation (improper combination vs optimal):")
	fmt.Fprint(w, tbl.String())
	fmt.Fprintf(w, "overall mean degradation: %.2fx (paper reports 4.47x)\n\n", total/float64(len(degradations)))

	// Part 2: offloading degradation. Across dynamic conditions, compare
	// fixed offloading ratios to the per-condition best fixed ratio.
	p := model.InceptionV3()
	sigma, err := calibrated(p)
	if err != nil {
		return err
	}
	params, err := paramsFor(p, sigma, 3, 14, true)
	if err != nil {
		return err
	}
	rates := []float64{8, 14, 20}
	bandwidths := []float64{cluster.Mbps(2), cluster.Mbps(8), cluster.Mbps(32)}
	if quick {
		rates = rates[:2]
		bandwidths = bandwidths[:2]
	}
	ratios := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	tbl2 := metrics.NewTable("arrival_rate", "bandwidth_mbps", "best_ratio", "best_tct_s", "mean_degradation_x")
	// Fan out the (rate, bandwidth) grid; each cell sweeps its fixed
	// offloading ratios serially inside the worker.
	type offCell struct {
		bestRatio, best, mean float64
	}
	offCells := make([]offCell, len(rates)*len(bandwidths))
	if err := parallelFor(len(offCells), func(k int) error {
		rate, bw := rates[k/len(bandwidths)], bandwidths[k%len(bandwidths)]
		tcts := make([]float64, len(ratios))
		best := math.Inf(1)
		bestRatio := 0.0
		for ri, r := range ratios {
			tct, err := motivationSlotTCT(params, rate, bw, r)
			if err != nil {
				return err
			}
			tcts[ri] = tct
			if tct < best {
				best, bestRatio = tct, r
			}
		}
		var sum float64
		for _, tct := range tcts {
			sum += tct / best
		}
		offCells[k] = offCell{bestRatio: bestRatio, best: best, mean: sum / float64(len(tcts))}
		return nil
	}); err != nil {
		return err
	}
	offDegr := make([]float64, 0, len(offCells))
	for k, c := range offCells {
		offDegr = append(offDegr, c.mean)
		tbl2.AddRow(rates[k/len(bandwidths)], bandwidths[k%len(bandwidths)]/1e6, c.bestRatio, c.best, c.mean)
	}
	var total2 float64
	for _, d := range offDegr {
		total2 += d
	}
	fmt.Fprintln(w, "Offloading degradation (fixed ratios vs per-condition best):")
	fmt.Fprint(w, tbl2.String())
	fmt.Fprintf(w, "overall mean degradation: %.2fx (paper reports 2.85x)\n", total2/float64(len(offDegr)))
	return nil
}

// motivationSlotTCT runs the slot model with one Pi-class device at a fixed
// offloading ratio.
func motivationSlotTCT(params offload.ModelParams, rate, bandwidth, ratio float64) (float64, error) {
	policy := offload.FixedRatio(ratio)
	res, err := sim.RunSlots(sim.SlotConfig{
		Model: params,
		Devices: []sim.DeviceSpec{{
			Device: offload.Device{
				FLOPS:        cluster.RaspberryPi3B.FLOPS,
				BandwidthBps: bandwidth,
				LatencySec:   0.02,
				ArrivalMean:  rate,
			},
			Policy: &policy,
		}},
		// One share of a six-tenant edge, as in the paper's testbed.
		EdgeFLOPS:   cluster.EdgeDesktop.FLOPS / 6,
		CloudFLOPS:  cluster.CloudV100.FLOPS,
		EdgeCloud:   cluster.InternetDefault,
		TauSec:      1,
		V:           1e4,
		Slots:       200,
		WarmupSlots: 40,
		Seed:        7,
	})
	if err != nil {
		return 0, err
	}
	return res.MeanTCT, nil
}
