package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"leime/internal/loadgen"
	"leime/internal/metrics"
	"leime/internal/offload"
	"leime/internal/runtime"
)

// Federation is the multi-edge scaling study behind DESIGN.md §14: the same
// open-loop workload offered to in-process fleets of growing size, devices
// homed round-robin across the edges. Sustained throughput should scale
// close to linearly with the fleet — each edge brings its full FLOPS, and
// the per-edge KKT allocation sees proportionally fewer tenants. The
// workload pins every task to exit 1: with heterogeneous task costs,
// admission control on a saturated edge biases the completed mix toward
// cheap exits, which makes raw task counts incomparable across fleet sizes.
func Federation() Experiment {
	return Experiment{
		ID:    "federation",
		Title: "Edge federation: sustained throughput scaling across fleet sizes",
		Run:   runFederation,
	}
}

func runFederation(w io.Writer, quick bool) error {
	model := offload.ModelParams{
		Mu:    [3]float64{2e9, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
	sizes := []int{1, 2, 3}
	duration := 1500 * time.Millisecond
	if quick {
		sizes = []int{1, 2}
		duration = 500 * time.Millisecond
	}
	// 6 devices over a 4 GFLOPS edge: the single-edge fleet serves ~100
	// first blocks/s wall (6 tenants, 3 model-seconds each at 0.02 time
	// compression); every fleet size below is saturated by the 360/s
	// offered load, so completions measure capacity, not demand.
	const (
		devices   = 6
		edgeFLOPS = 4e9
		rate      = 60
		scale     = runtime.Scale(0.02)
		budgetSec = 6.0
		seed      = 77
	)

	tbl := metrics.NewTable("edges", "offered_per_s", "completed", "rejected", "sustained_per_s", "scaling")
	base := 0
	for _, n := range sizes {
		cloud, err := runtime.StartCloud(runtime.CloudConfig{
			Addr:        "127.0.0.1:0",
			FLOPS:       2e12,
			Block3FLOPs: model.Mu[2],
			TimeScale:   scale,
		})
		if err != nil {
			return err
		}
		edges := make([]*runtime.Edge, 0, n)
		addrs := make([]string, 0, n)
		for i := 0; i < n; i++ {
			e, err := runtime.StartEdge(runtime.EdgeConfig{
				Addr:      "127.0.0.1:0",
				FLOPS:     edgeFLOPS,
				Model:     model,
				CloudAddr: cloud.Addr(),
				TimeScale: scale,
				Policy:    runtime.ControlPolicy{MaxBacklogSec: budgetSec},
			})
			if err != nil {
				for _, prev := range edges {
					_ = prev.Close()
				}
				_ = cloud.Close()
				return err
			}
			edges = append(edges, e)
			addrs = append(addrs, e.Addr())
		}
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			EdgeAddrs: addrs,
			Devices:   devices,
			Rate:      rate,
			Duration:  duration,
			Seed:      seed,
			Model:     model,
			ForceExit: 1,
			IDPrefix:  fmt.Sprintf("fed-%d", n),
		})
		for _, e := range edges {
			_ = e.Close()
		}
		_ = cloud.Close()
		if err != nil {
			return err
		}
		if base == 0 {
			base = res.Completed
		}
		scaling := 0.0
		if base > 0 {
			scaling = float64(res.Completed) / float64(base)
		}
		tbl.AddRow(n, res.OfferedRate, res.Completed, res.Rejected,
			float64(res.Completed)/duration.Seconds(), scaling)
	}
	fmt.Fprintf(w, "Federation sweep: %d devices homed round-robin, %.3g FLOPS per edge, scale %g:\n",
		devices, edgeFLOPS, float64(scale))
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w, "\nScaling is sustained throughput relative to the single edge. Near-linear")
	fmt.Fprintln(w, "growth means the per-edge KKT allocations and the device-side homing")
	fmt.Fprintln(w, "split the fleet cleanly; a flat curve would indicate a shared bottleneck")
	fmt.Fprintln(w, "(cloud tier, dispatcher) or tenant skew.")
	return nil
}
