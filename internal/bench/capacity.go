package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"leime/internal/loadgen"
	"leime/internal/metrics"
	"leime/internal/offload"
	"leime/internal/runtime"
)

// Capacity is the saturation study behind DESIGN.md §11: an open-loop rate
// sweep against the real socket testbed, once with plain FIFO execution and
// once with the batch window enabled, both under the same admission budget.
// The report shows where each configuration's achieved rate peels away from
// the offered rate (the capacity knee) and what completion p99 it holds
// there — batching amortizes same-block burns, so its knee sits at a higher
// offered rate for the same latency.
func Capacity() Experiment {
	return Experiment{
		ID:    "capacity",
		Title: "Edge capacity: open-loop saturation sweep, batched vs unbatched execution",
		Run:   runCapacity,
	}
}

// capacityVariant is one edge configuration under test.
type capacityVariant struct {
	name   string
	policy runtime.ControlPolicy
}

func runCapacity(w io.Writer, quick bool) error {
	model := offload.ModelParams{
		Mu:    [3]float64{2e8, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
	rates := []float64{30, 60, 120, 240}
	duration := 1500 * time.Millisecond
	if quick {
		rates = []float64{30, 120}
		duration = 400 * time.Millisecond
	}
	// A 4 GFLOPS edge split across 4 tenants serves ~73 tasks/s/tenant
	// serially (0.68 expected model-seconds per task on a 1 GFLOPS share,
	// 0.02 time compression); the sweep straddles that knee. The budget
	// must exceed the dearest single block (block 2: 0.8 model-seconds per
	// share) or admission rejects continuations outright.
	const (
		devices   = 4
		edgeFLOPS = 4e9
		scale     = runtime.Scale(0.02)
		budgetSec = 3.0 // admission budget: saturated points reject, not queue
		seed      = 77
	)
	variants := []capacityVariant{
		{name: "unbatched", policy: runtime.ControlPolicy{MaxBacklogSec: budgetSec}},
		{name: "batched", policy: runtime.ControlPolicy{
			MaxBacklogSec: budgetSec,
			Batch:         runtime.BatchConfig{MaxSize: 8, MaxDelaySec: 0.05},
		}},
	}

	tbl := metrics.NewTable("config", "offered_per_s", "achieved_per_s", "completed", "rejected", "p50_ms", "p99_ms")
	for _, v := range variants {
		cloud, err := runtime.StartCloud(runtime.CloudConfig{
			Addr:        "127.0.0.1:0",
			FLOPS:       2e12,
			Block3FLOPs: model.Mu[2],
			TimeScale:   scale,
		})
		if err != nil {
			return err
		}
		edge, err := runtime.StartEdge(runtime.EdgeConfig{
			Addr:      "127.0.0.1:0",
			FLOPS:     edgeFLOPS,
			Model:     model,
			CloudAddr: cloud.Addr(),
			TimeScale: scale,
			Policy:    v.policy,
		})
		if err != nil {
			_ = cloud.Close()
			return err
		}
		sweep, err := loadgen.Sweep(context.Background(), loadgen.Config{
			EdgeAddr: edge.Addr(),
			Devices:  devices,
			Duration: duration,
			Seed:     seed,
			Model:    model,
			IDPrefix: "cap-" + v.name,
		}, rates)
		_ = edge.Close()
		_ = cloud.Close()
		if err != nil {
			return err
		}
		for _, p := range sweep.Points {
			tbl.AddRow(v.name, p.OfferedRate, p.AchievedRate, p.Completed, p.Rejected,
				p.Latency.P50*1000, p.Latency.P99*1000)
		}
	}
	fmt.Fprintf(w, "Open-loop sweep: %d devices, %.3g FLOPS edge, %.1fs admission budget, scale %g:\n",
		devices, edgeFLOPS, budgetSec, float64(scale))
	fmt.Fprint(w, tbl.String())
	fmt.Fprintln(w, "\nAchieved tracking offered = under capacity; the gap past the knee is")
	fmt.Fprintln(w, "admission rejections (degrade-to-local signals). The batch window holds")
	fmt.Fprintln(w, "tasks up to MaxDelaySec, raising latency at light load but amortizing")
	fmt.Fprintln(w, "same-block burns under saturation — a higher knee at comparable p99.")
	return nil
}
