package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.NewID() != 0 {
		t.Error("nil tracer allocated an ID")
	}
	a := tr.StartSpan(SpanContext{}, "task")
	a.SetDevice("d").SetTask(1).SetExit(2).SetNote("x")
	if a.Context().Valid() {
		t.Error("nil active span has a valid context")
	}
	a.End()
	tr.Record(Span{Name: "x"})
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer holds spans: %v", got)
	}
	if tr.Dropped() != 0 || tr.Now() != 0 {
		t.Error("nil tracer reports non-zero state")
	}
	tr.Reset()
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}

func TestSpanLifecycleAndInheritance(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartSpan(SpanContext{}, "task").SetDevice("pi-1").SetTask(7)
	child := tr.StartSpan(root.Context(), "device.block1")
	time.Sleep(time.Millisecond)
	child.End()
	root.SetExit(3).End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, r := spans[0], spans[1]
	if c.Trace != r.Trace {
		t.Errorf("child trace %d != root trace %d", c.Trace, r.Trace)
	}
	if c.Parent != r.Span {
		t.Errorf("child parent %d != root span %d", c.Parent, r.Span)
	}
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if r.Trace != r.Span {
		t.Errorf("trace root should use its span ID as trace ID")
	}
	if c.End < c.Start || c.End-c.Start < 0.0005 {
		t.Errorf("child bounds [%v, %v] do not cover the sleep", c.Start, c.End)
	}
	if r.Device != "pi-1" || r.Task != 7 || r.Exit != 3 {
		t.Errorf("root annotations lost: %+v", r)
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 6; i++ {
		tr.Record(Span{Name: "s", Task: uint64(i)})
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, s := range spans {
		if want := uint64(i + 3); s.Task != want {
			t.Errorf("spans[%d].Task = %d, want %d (oldest-first order)", i, s.Task, want)
		}
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Error("Reset did not clear the ring")
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.StartSpan(SpanContext{}, "task")
				tr.StartSpan(s.Context(), "child").End()
				s.End()
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans)+int(tr.Dropped()) != 8*200*2 {
		t.Errorf("spans %d + dropped %d != %d", len(spans), tr.Dropped(), 8*200*2)
	}
	seen := make(map[uint64]bool)
	for _, s := range spans {
		if s.Span == 0 {
			t.Fatal("zero span ID")
		}
		if seen[s.Span] {
			t.Fatalf("duplicate span ID %d", s.Span)
		}
		seen[s.Span] = true
	}
}

func TestWriteJSONLSchema(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Trace: 1, Span: 2, Parent: 1, Name: "edge.queue", Device: "pi-1", Task: 9, Start: 1.5, End: 2.25})
	tr.Record(Span{Trace: 1, Span: 3, Name: "exit", Exit: 2, Start: 2.25, End: 2.25})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// The shared event schema: these exact keys let one tool diff testbed
	// and simulator runs.
	for _, key := range []string{"trace", "span", "name", "start", "end"} {
		if _, ok := lines[0][key]; !ok {
			t.Errorf("line 0 missing schema key %q", key)
		}
	}
	if lines[0]["name"] != "edge.queue" || lines[0]["device"] != "pi-1" {
		t.Errorf("line 0 fields wrong: %v", lines[0])
	}
	if _, ok := lines[1]["parent"]; ok {
		t.Error("zero parent should be omitted")
	}
	if lines[1]["exit"] != float64(2) {
		t.Errorf("exit = %v, want 2", lines[1]["exit"])
	}
}

func TestNewIDDistinctAcrossTracers(t *testing.T) {
	// Different tracers (different processes in deployment) must not mint
	// overlapping IDs: the random high bits keep device trace IDs from
	// colliding with edge span IDs.
	a, b := NewTracer(4), NewTracer(4)
	if a.base == b.base {
		t.Skip("random bases collided (1 in 2^24); rerun")
	}
	idsA := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		idsA[a.NewID()] = true
	}
	for i := 0; i < 100; i++ {
		if idsA[b.NewID()] {
			t.Fatal("ID collision across tracers")
		}
	}
}

func TestSpanContextValid(t *testing.T) {
	if (SpanContext{}).Valid() {
		t.Error("zero context valid")
	}
	if !(SpanContext{Trace: 1, Span: 2}).Valid() {
		t.Error("non-zero context invalid")
	}
}

func TestStartSpanInheritsExplicitParent(t *testing.T) {
	tr := NewTracer(4)
	// A remote parent (arrived via the rpc envelope) is adopted verbatim.
	remote := SpanContext{Trace: 42, Span: 17}
	s := tr.StartSpan(remote, "edge.block1")
	s.End()
	got := tr.Spans()[0]
	if got.Trace != 42 || got.Parent != 17 {
		t.Errorf("remote parent not adopted: %+v", got)
	}
}
