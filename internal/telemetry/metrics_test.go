package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil registry handles accumulated state")
	}
	if h.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile non-zero")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if r.Samples() != nil {
		t.Error("nil registry has samples")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tasks_total", "Tasks.", Label{"device", "pi-1"})
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same counter.
	if c2 := r.Counter("tasks_total", "Tasks.", Label{"device", "pi-1"}); c2 != c {
		t.Error("counter identity not stable")
	}
	// Different labels are a different series.
	other := r.Counter("tasks_total", "Tasks.", Label{"device", "pi-2"})
	if other == c || other.Value() != 0 {
		t.Error("label variants share state")
	}
	g := r.Gauge("tenants", "Tenants.")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 0.2, 0.4, 0.8})
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // first bucket
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.3) // third bucket
	}
	h.Observe(5) // overflow
	if h.Count() != 201 {
		t.Errorf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 100*0.05+100*0.3+5; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	if q := h.Quantile(0.25); q <= 0 || q > 0.1 {
		t.Errorf("p25 = %v, want within first bucket (0, 0.1]", q)
	}
	if q := h.Quantile(0.75); q <= 0.2 || q > 0.4 {
		t.Errorf("p75 = %v, want within third bucket (0.2, 0.4]", q)
	}
	if q := h.Quantile(1); q != 0.8 {
		t.Errorf("p100 = %v, want clamp to last bound 0.8", q)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("d_seconds", "", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-80) > 1e-6 {
		t.Errorf("histogram sum = %v, want 80", h.Sum())
	}
}

// validatePrometheus is a strict checker for the text exposition format
// (version 0.0.4): TYPE before samples, legal metric names, parseable
// values, and for histograms cumulative buckets ending in +Inf == _count.
func validatePrometheus(t *testing.T, text string) {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	types := map[string]string{}
	bucketCum := map[string]float64{} // per series: last cumulative bucket
	bucketInf := map[string]float64{}
	counts := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			name, typ := parts[2], parts[3]
			if !nameRe.MatchString(name) {
				t.Fatalf("bad metric name %q", name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad type %q", typ)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		name, labels, vals := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(vals, 64)
		if err != nil && vals != "+Inf" && vals != "-Inf" && vals != "NaN" {
			t.Fatalf("bad value %q in %q", vals, line)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if typ, ok := types[strings.TrimSuffix(name, suffix)]; ok && typ == "histogram" {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q before its TYPE declaration", line)
		}
		if types[base] == "histogram" {
			series := base + stripLE(labels)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !strings.Contains(labels, `le="`) {
					t.Fatalf("bucket without le label: %q", line)
				}
				if val < bucketCum[series] {
					t.Fatalf("non-cumulative bucket in %q", line)
				}
				bucketCum[series] = val
				if strings.Contains(labels, `le="+Inf"`) {
					bucketInf[series] = val
				}
			case strings.HasSuffix(name, "_count"):
				counts[series] = val
			}
		}
	}
	for series, inf := range bucketInf {
		if counts[series] != inf {
			t.Errorf("series %s: +Inf bucket %v != count %v", series, inf, counts[series])
		}
	}
	if len(bucketInf) == 0 && len(bucketCum) > 0 {
		t.Error("histogram without +Inf bucket")
	}
}

// stripLE removes the le label from a rendered label set so buckets of one
// series share a key.
func stripLE(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, part := range strings.Split(inner, ",") {
		if !strings.HasPrefix(part, `le="`) {
			kept = append(kept, part)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("leime_tasks_total", "Tasks generated.", Label{"device", "pi-1"}).Add(42)
	r.Counter("leime_tasks_total", "Tasks generated.", Label{"device", `we"ird\n`}).Inc()
	r.Gauge("leime_edge_tenants", "Registered tenants.").Set(3)
	h := r.Histogram("leime_tct_seconds", "Task completion time.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	validatePrometheus(t, text)

	for _, want := range []string{
		`leime_tasks_total{device="pi-1"} 42`,
		"# TYPE leime_tasks_total counter",
		"# TYPE leime_tct_seconds histogram",
		`leime_tct_seconds_bucket{le="+Inf"} 3`,
		"leime_tct_seconds_count 3",
		"leime_edge_tenants 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Label escaping round-trips backslashes and quotes.
	if !strings.Contains(text, `device="we\"ird\\n"`) {
		t.Errorf("label escaping wrong:\n%s", text)
	}
}

func TestSamplesFlattening(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Gauge("b", "").Set(1.5)
	h := r.Histogram("c_seconds", "", nil)
	h.Observe(0.2)
	h.Observe(0.4)
	got := r.Samples()
	want := map[string]float64{"a_total": 2, "b": 1.5, "c_seconds_count": 2, "c_seconds_sum": 0.6}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d: %+v", len(got), len(want), got)
	}
	for _, s := range got {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected sample %q", s.Name)
			continue
		}
		if math.Abs(s.Value-w) > 1e-9 {
			t.Errorf("%s = %v, want %v", s.Name, s.Value, w)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

func BenchmarkStartSpanEnd(b *testing.B) {
	tr := NewTracer(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpan(SpanContext{}, "task").End()
	}
}

func BenchmarkStartSpanEndDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpan(SpanContext{}, "task").End()
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("leime_requests_total", "Requests served.", Label{"type", "first_block"}).Add(7)
	var buf bytes.Buffer
	_ = r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP leime_requests_total Requests served.
	// # TYPE leime_requests_total counter
	// leime_requests_total{type="first_block"} 7
}

// TestGaugeFunc checks scrape-time gauges: the callback is evaluated at
// render/snapshot time, the first registration wins, and a nil registry
// or nil callback is a no-op.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("wire_frames", "Frames by codec.", func() float64 { return v }, Label{"codec", "binary"})
	r.GaugeFunc("wire_frames", "Frames by codec.", func() float64 { return -1 }, Label{"codec", "binary"}) // loser
	samples := r.Samples()
	if len(samples) != 1 || samples[0].Value != 1.5 {
		t.Fatalf("Samples = %+v, want one sample of 1.5", samples)
	}
	v = 7 // the callback, not a copy, is scraped
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := "# HELP wire_frames Frames by codec.\n# TYPE wire_frames gauge\nwire_frames{codec=\"binary\"} 7\n"
	if buf.String() != want {
		t.Errorf("exposition:\n%q\nwant:\n%q", buf.String(), want)
	}
	// A plain Gauge already owning the slot is not displaced.
	g := r.Gauge("depth", "Queue depth.")
	g.Set(3)
	r.GaugeFunc("depth", "Queue depth.", func() float64 { return 9 })
	for _, s := range r.Samples() {
		if s.Name == "depth" && s.Value != 3 {
			t.Errorf("GaugeFunc displaced stored gauge: %v", s.Value)
		}
	}
	var nilReg *Registry
	nilReg.GaugeFunc("x", "", func() float64 { return 1 })
	r.GaugeFunc("y", "", nil)
}
