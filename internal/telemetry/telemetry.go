// Package telemetry is the observability substrate shared by the socket
// testbed, the discrete-event simulator and the daemons: span-based
// task-lifecycle tracing with cross-process trace/span IDs, a low-overhead
// metrics registry with Prometheus text exposition, and an HTTP admin
// server. A nil *Tracer or *Registry is a valid, true no-op: every method
// degenerates to a nil check, so uninstrumented runs pay a predictable
// branch and nothing else.
package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of a task-lifecycle trace. The JSON field names are the
// shared event schema: the testbed's wall-clock spans and the simulator's
// model-time spans serialize identically, so runs from either system are
// diffable with one tool. Start and End are seconds on the emitting
// tracer's clock (wall seconds since the tracer's epoch for the testbed,
// simulation seconds for the simulator).
type Span struct {
	// Trace groups every span of one task lifecycle, across tiers.
	Trace uint64 `json:"trace"`
	// Span uniquely identifies this span within the tracer's ID space.
	Span uint64 `json:"span"`
	// Parent is the enclosing span's ID (0 for a trace root).
	Parent uint64 `json:"parent,omitempty"`
	// Name is the span taxonomy entry (task, device.decision, device.queue,
	// device.block1, uplink, rpc.first_block, edge.queue, edge.block1, ...).
	Name string `json:"name"`
	// Device is the owning device ID, set on spans that know it.
	Device string `json:"device,omitempty"`
	// Task is the task ID within the device, set on spans that know it.
	Task uint64 `json:"task,omitempty"`
	// Exit is the exit stage (1..3) on spans that record one.
	Exit int `json:"exit,omitempty"`
	// Note carries a short free-form annotation (e.g. "offload", "local",
	// "fallback").
	Note string `json:"note,omitempty"`
	// Start and End are the span's bounds in seconds on the tracer clock.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// SpanContext is the portable reference to a span: what crosses process
// boundaries inside the rpc envelope. The zero value means "no trace".
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context references a live trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// DefaultSpanCapacity bounds the tracer's finished-span ring buffer when no
// capacity is configured.
const DefaultSpanCapacity = 1 << 16

// Tracer collects finished spans into a fixed-capacity ring buffer; when
// full, the oldest spans are overwritten (Dropped counts them). All methods
// are safe for concurrent use and safe on a nil receiver.
type Tracer struct {
	epoch time.Time
	base  uint64        // random high bits, for cross-process ID uniqueness
	next  atomic.Uint64 // low bits: per-tracer allocation counter

	mu      sync.Mutex
	ring    []Span
	head    int // next write position
	size    int // valid spans in ring
	dropped uint64
}

// NewTracer creates a tracer holding at most capacity finished spans
// (DefaultSpanCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	var seed [8]byte
	_, _ = rand.Read(seed[:])
	return NewTracerWithBase(capacity, binary.LittleEndian.Uint64(seed[:]))
}

// NewTracerWithBase creates a tracer whose ID base comes from the given
// value instead of process randomness, so two runs replaying the same
// inputs mint identical span IDs (the simulator's seed-replay pin test
// depends on this). Only the high 24 bits of base are used; the low 40
// bits stay reserved for the per-tracer allocation counter, and a base
// with empty high bits falls back to 1<<40 to keep IDs nonzero.
func NewTracerWithBase(capacity int, base uint64) *Tracer {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	// Keep the low 40 bits for the counter; the high 24 bits distinguish
	// processes so a device trace ID cannot collide with an edge span ID.
	base &^= (1 << 40) - 1
	if base == 0 {
		base = 1 << 40
	}
	return &Tracer{epoch: time.Now(), base: base, ring: make([]Span, 0, capacity)}
}

// Now returns the tracer clock: wall seconds since the tracer's epoch.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Seconds()
}

// NewID allocates a fresh span/trace ID (0 on a nil tracer).
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	return t.base | (t.next.Add(1) & ((1 << 40) - 1))
}

// Record appends a finished span (dropped silently on a nil tracer).
// Callers that measure time themselves — the simulator, or retroactive
// queue/compute spans derived from executor timings — build the Span
// directly and Record it.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		t.size++
	} else {
		t.ring[t.head] = s
		if t.size < len(t.ring) {
			t.size++
		} else {
			t.dropped++
		}
	}
	t.head = (t.head + 1) % cap(t.ring)
	t.mu.Unlock()
}

// Active is an in-flight span started on the tracer's wall clock. Methods
// are safe on a nil receiver (the disabled path).
type Active struct {
	t    *Tracer
	span Span
}

// StartSpan opens a span under parent; a zero parent starts a new trace.
// Returns nil (a valid no-op) on a nil tracer.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Active {
	if t == nil {
		return nil
	}
	a := &Active{t: t, span: Span{
		Span:   t.NewID(),
		Parent: parent.Span,
		Trace:  parent.Trace,
		Name:   name,
		Start:  t.Now(),
	}}
	if a.span.Trace == 0 {
		a.span.Trace = a.span.Span
	}
	return a
}

// Context returns the span's portable reference (zero on nil).
func (a *Active) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: a.span.Trace, Span: a.span.Span}
}

// SetDevice annotates the span with its owning device.
func (a *Active) SetDevice(id string) *Active {
	if a != nil {
		a.span.Device = id
	}
	return a
}

// SetTask annotates the span with its task ID.
func (a *Active) SetTask(id uint64) *Active {
	if a != nil {
		a.span.Task = id
	}
	return a
}

// SetExit annotates the span with an exit stage.
func (a *Active) SetExit(exit int) *Active {
	if a != nil {
		a.span.Exit = exit
	}
	return a
}

// SetNote annotates the span with a short free-form note.
func (a *Active) SetNote(note string) *Active {
	if a != nil {
		a.span.Note = note
	}
	return a
}

// End closes the span at the tracer's current time and records it.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.span.End = a.t.Now()
	a.t.Record(a.span)
}

// Spans returns a snapshot of recorded spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.size)
	if t.size < cap(t.ring) {
		out = append(out, t.ring[:t.size]...)
		return out
	}
	out = append(out, t.ring[t.head:]...)
	out = append(out, t.ring[:t.head]...)
	return out
}

// Dropped returns the number of spans overwritten before being read.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all recorded spans (the ID space is not reset).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.head, t.size = 0, 0
	t.dropped = 0
	t.mu.Unlock()
}

// WriteJSONL writes the recorded spans as JSON Lines, oldest first — the
// /debug/traces format, and the interchange format between testbed and
// simulator runs.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
