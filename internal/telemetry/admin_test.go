package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

func adminGet(t *testing.T, addr, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("leime_tasks_total", "Tasks.").Add(3)
	tr := NewTracer(8)
	tr.Record(Span{Trace: 1, Span: 2, Name: "task", Start: 0, End: 1})

	a, err := ServeAdmin("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer a.Close()

	code, body, ctype := adminGet(t, a.Addr(), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/healthz content type %q", ctype)
	}

	code, body, ctype = adminGet(t, a.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Errorf("/metrics = %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	validatePrometheus(t, body)
	if !strings.Contains(body, "leime_tasks_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	code, body, ctype = adminGet(t, a.Addr(), "/debug/traces")
	if code != http.StatusOK {
		t.Errorf("/debug/traces = %d", code)
	}
	if ctype != "application/x-ndjson" {
		t.Errorf("/debug/traces content type %q", ctype)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	n := 0
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		n++
	}
	if n != 1 {
		t.Errorf("got %d trace lines, want 1", n)
	}
}

// TestAdminReadiness pins the liveness/readiness split: /healthz is always
// 200 on a serving daemon, while /readyz follows the installed predicate.
func TestAdminReadiness(t *testing.T) {
	var ready atomic.Bool // handler goroutines read while the test flips it
	a, err := ServeAdmin("127.0.0.1:0", nil, nil, WithReadiness(ready.Load))
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer a.Close()

	code, body, _ := adminGet(t, a.Addr(), "/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "not ready") {
		t.Errorf("/readyz before warm-up = %d %q, want 503 not ready", code, body)
	}
	if code, _, _ := adminGet(t, a.Addr(), "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d while not ready; liveness must not follow readiness", code)
	}
	ready.Store(true)
	code, body, _ = adminGet(t, a.Addr(), "/readyz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/readyz after warm-up = %d %q, want 200 ok", code, body)
	}
}

func TestAdminNilBackends(t *testing.T) {
	a, err := ServeAdmin("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer a.Close()
	if code, _, _ := adminGet(t, a.Addr(), "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	// Without a readiness hook /readyz mirrors /healthz.
	if code, _, _ := adminGet(t, a.Addr(), "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d without a readiness hook", code)
	}
	if code, body, _ := adminGet(t, a.Addr(), "/metrics"); code != http.StatusOK || body != "" {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body, _ := adminGet(t, a.Addr(), "/debug/traces"); code != http.StatusOK || body != "" {
		t.Errorf("/debug/traces = %d %q", code, body)
	}
	// Close is nil-safe so daemons can defer unconditionally.
	var nilAdmin *Admin
	if err := nilAdmin.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
