package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a metric.
type Label struct {
	Key, Value string
}

// DefBuckets are the default latency histogram bounds in seconds, spanning
// sub-millisecond compute bursts to multi-second queue blowups.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing event count. Increments are a
// single atomic add; a nil counter (from a nil registry) is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n events.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram: cumulative bucket counts,
// a running sum and a count, all updated with atomics. Memory is fixed at
// construction — a million-task run costs the same bytes as an empty one.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≈13): linear scan beats binary search in practice.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		cur := math.Float64frombits(old)
		if h.sum.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// within the containing bucket. Observations beyond the last bound clamp to
// it. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum, prev uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		cum += c
		if float64(cum) >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (rank - float64(prev)) / float64(c)
			return lo + (hi-lo)*frac
		}
		prev = cum
	}
	return h.bounds[len(h.bounds)-1]
}

// metric is one sample owner within a family.
type metric struct {
	labels string // rendered {k="v",...} suffix, "" for unlabelled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // scrape-time gauge callback (GaugeFunc)
}

// family groups all label variants of one metric name.
type family struct {
	name, help, typ string
	metrics         []*metric
	byLabel         map[string]*metric
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Lookups take a mutex; the returned Counter/Gauge/
// Histogram handles are lock-free on the hot path, so callers cache them.
// A nil registry returns nil handles, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	return f
}

func (f *family) metric(labels []Label) *metric {
	key := renderLabels(labels)
	m, ok := f.byLabel[key]
	if !ok {
		m = &metric{labels: key}
		f.byLabel[key] = m
		f.metrics = append(f.metrics, m)
	}
	return m
}

// Counter returns (creating on first use) the counter for name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, "counter").metric(labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns (creating on first use) the gauge for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, "gauge").metric(labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// GaugeFunc registers a gauge whose value fn computes at scrape time —
// for state that already lives in someone else's counters (the rpc wire
// codec's atomics, queue depths) where a stored Gauge would just be a
// stale copy. fn must be safe to call from any goroutine. The first
// callback registered for a name+labels wins; later calls are no-ops, so
// re-registration on reconnect is safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, "gauge").metric(labels)
	if m.fn == nil && m.g == nil {
		m.fn = fn
	}
}

// Histogram returns (creating on first use) the histogram for name+labels.
// buckets must be strictly increasing; nil uses DefBuckets. The bucket
// layout is fixed by the first call for a given name+labels.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.family(name, help, "histogram").metric(labels)
	if m.h == nil {
		bounds := append([]float64(nil), buckets...)
		m.h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return m.h
}

// renderLabels renders a deterministic {k="v",...} suffix ("" when empty).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// withLabel splices an extra label into an already-rendered label suffix
// (used for histogram le labels).
func withLabel(rendered, key, value string) string {
	extra := key + `="` + value + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

func formatValue(v float64) string {
	if v == math.Inf(1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families in registration order, label variants in
// creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, m := range f.metrics {
			var err error
			switch {
			case m.c != nil:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, m.labels, m.c.Value())
			case m.g != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, m.labels, formatValue(m.g.Value()))
			case m.fn != nil:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, m.labels, formatValue(m.fn()))
			case m.h != nil:
				err = writeHistogram(w, f.name, m)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, m *metric) error {
	var cum uint64
	for i, bound := range m.h.bounds {
		cum += m.h.counts[i].Load()
		le := withLabel(m.labels, "le", formatValue(bound))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += m.h.counts[len(m.h.bounds)].Load()
	le := withLabel(m.labels, "le", "+Inf")
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, m.labels, formatValue(m.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, m.labels, m.h.Count())
	return err
}

// Sample is one flattened metric value from a registry snapshot; histograms
// flatten to _count and _sum samples. Used by machine-readable reports
// (leime-bench -json).
type Sample struct {
	// Name is the metric name, with _count/_sum suffixes for histograms.
	Name string `json:"name"`
	// Labels is the rendered {k="v"} suffix ("" when unlabelled).
	Labels string `json:"labels,omitempty"`
	// Value is the sample value.
	Value float64 `json:"value"`
}

// Samples snapshots every metric as flattened samples, in registration
// order.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, name := range r.order {
		f := r.families[name]
		for _, m := range f.metrics {
			switch {
			case m.c != nil:
				out = append(out, Sample{Name: f.name, Labels: m.labels, Value: float64(m.c.Value())})
			case m.g != nil:
				out = append(out, Sample{Name: f.name, Labels: m.labels, Value: m.g.Value()})
			case m.fn != nil:
				out = append(out, Sample{Name: f.name, Labels: m.labels, Value: m.fn()})
			case m.h != nil:
				out = append(out, Sample{Name: f.name + "_count", Labels: m.labels, Value: float64(m.h.Count())})
				out = append(out, Sample{Name: f.name + "_sum", Labels: m.labels, Value: m.h.Sum()})
			}
		}
	}
	return out
}
