package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Admin is the daemon-embedded observability endpoint: /metrics serves the
// registry in Prometheus text format, /healthz answers liveness probes,
// /readyz answers readiness probes (see WithReadiness), and /debug/traces
// dumps the tracer's recorded spans as JSON Lines.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// AdminOption customizes the admin server.
type AdminOption func(*adminOptions)

type adminOptions struct {
	ready func() bool
}

// WithReadiness installs the /readyz probe: ready() true serves 200, false
// serves 503. Liveness (/healthz) and readiness differ exactly where a
// daemon is up but must not receive traffic yet — an edge whose KKT
// allocation is still cold, a device that has not registered. Without this
// option /readyz mirrors /healthz.
func WithReadiness(ready func() bool) AdminOption {
	return func(o *adminOptions) { o.ready = ready }
}

// ServeAdmin starts the admin HTTP server on addr ("127.0.0.1:0" for an
// ephemeral port). reg and tr may be nil: the endpoints then serve empty
// documents, which keeps probes working on uninstrumented daemons.
func ServeAdmin(addr string, reg *Registry, tr *Tracer, opts ...AdminOption) (*Admin, error) {
	var o adminOptions
	for _, opt := range opts {
		opt(&o)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.ready != nil && !o.ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "not ready")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tr.WriteJSONL(w)
	})
	a := &Admin{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the listening address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Close stops the admin server. Safe on a nil receiver so daemons can
// unconditionally defer it.
func (a *Admin) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}
