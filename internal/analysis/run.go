package analysis

import (
	"go/token"
	"sort"
)

// Finding is one reported diagnostic bound to its package, position-resolved
// and past the suppression filter.
type Finding struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Position is the resolved file:line:column location.
	Position token.Position
	// Message is the diagnostic text.
	Message string
	// Diag is the raw diagnostic, kept for SuggestedFixes.
	Diag Diagnostic
	// Pkg is the package the finding was reported against.
	Pkg *Package
}

// String renders the finding as a "file:line:col: message (analyzer)"
// diagnostic line.
func (f Finding) String() string {
	return f.Position.String() + ": " + f.Message + " (" + f.Analyzer + ")"
}

// Run applies every analyzer to every package, resolves positions, drops
// findings silenced by //lint:ignore directives, surfaces malformed
// directives as findings of their own, and returns the remainder sorted by
// position. Packages are analyzed in dependency order so facts exported
// about a package's symbols are in the store before any importer's pass.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := NewFacts()
	var all []Finding
	for _, pkg := range dependencyOrder(pkgs) {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Facts:     facts,
			}
			pkg, a := pkg, a
			pass.Report = func(d Diagnostic) {
				all = append(all, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Diag:     d,
					Pkg:      pkg,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	ix, malformed := buildIgnoreIndex(pkgs)
	out := malformed
	for _, f := range all {
		if !ix.suppressed(f) {
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out, nil
}

// sortFindings orders findings by file, line, column, then analyzer.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// dependencyOrder sorts the loaded packages so every package follows the
// packages it imports (restricted to the loaded set; imports outside it are
// typechecked dependencies, not analysis targets). The input order breaks
// remaining ties, keeping single-package runs untouched.
func dependencyOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Pkg.Path()] = p
	}
	out := make([]*Package, 0, len(pkgs))
	seen := make(map[*Package]bool, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, imp := range p.Pkg.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
