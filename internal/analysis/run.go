package analysis

import (
	"go/token"
	"sort"
)

// Finding is one reported diagnostic bound to its package, position-resolved
// and past the suppression filter.
type Finding struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Position is the resolved file:line:column location.
	Position token.Position
	// Message is the diagnostic text.
	Message string
	// Diag is the raw diagnostic, kept for SuggestedFixes.
	Diag Diagnostic
	// Pkg is the package the finding was reported against.
	Pkg *Package
}

// String renders the finding as a "file:line:col: message (analyzer)"
// diagnostic line.
func (f Finding) String() string {
	return f.Position.String() + ": " + f.Message + " (" + f.Analyzer + ")"
}

// Run applies every analyzer to every package, resolves positions, drops
// findings silenced by //lint:ignore directives, surfaces malformed
// directives as findings of their own, and returns the remainder sorted by
// position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var all []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
			}
			pkg, a := pkg, a
			pass.Report = func(d Diagnostic) {
				all = append(all, Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Diag:     d,
					Pkg:      pkg,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	ix, malformed := buildIgnoreIndex(pkgs)
	out := malformed
	for _, f := range all {
		if !ix.suppressed(f) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
