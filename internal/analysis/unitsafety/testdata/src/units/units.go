// Package units is a unitsafety fixture.
package units

// Job carries quantities in different units.
type Job struct {
	// SizeBytes is the payload size.
	SizeBytes float64
	// BudgetSec is the time budget.
	BudgetSec float64
}

// Mix adds bytes to seconds.
func Mix(sizeBytes, budgetSec float64) float64 {
	return sizeBytes + budgetSec // want `mixes Bytes and Sec`
}

// Compare relates a work count to a rate.
func Compare(workFLOPs, rateFLOPS float64) bool {
	return workFLOPs > rateFLOPS // want `mixes FLOPs and FLOPS`
}

// SameUnit adds two quantities of the same unit; legal.
func SameUnit(aSec, bSec float64) float64 { return aSec + bSec }

// Assign stores a rate into a seconds variable.
func Assign(linkBps float64) {
	var delaySec float64
	delaySec = linkBps // want `assigning Bps value linkBps to Sec variable delaySec`
	_ = delaySec
}

// Convert uses multiplicative arithmetic, which is how units legally
// change; no finding.
func Convert(sizeBytes, linkBps float64) float64 {
	return sizeBytes * 8 / linkBps
}

// Fill sets a keyed field from the wrong unit.
func Fill(linkBps float64) Job {
	return Job{BudgetSec: linkBps} // want `field BudgetSec \(Sec\) set from Bps value`
}

// Call passes a rate where the callee's parameter names a count.
func Call(rateFLOPS float64) float64 {
	return burn(rateFLOPS) // want `argument rateFLOPS \(FLOPS\) passed as parameter workFLOPs \(FLOPs\)`
}

func burn(workFLOPs float64) float64 { return workFLOPs }

// Acronym is all-caps; "S" suffixes inside acronyms do not count.
func Acronym(useHTTPS bool) bool { return useHTTPS }

// Helper converts through a named call, resetting the unit; legal.
func Helper(sizeBytes float64) float64 {
	transferSec := toSeconds(sizeBytes)
	return transferSec
}

func toSeconds(sizeBytes float64) float64 { return sizeBytes / 1e9 }
