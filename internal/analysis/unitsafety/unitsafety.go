// Package unitsafety guards the repo's unit naming convention. Every
// quantity in the system is an untyped float64 that is secretly seconds,
// FLOPs, bytes, bits per second, FLOPS, or a per-second rate; the only
// thing standing between a correct cost model and a silent unit bug is the
// identifier suffix convention (...Sec, ...FLOPs, ...FLOPS, ...Bytes,
// ...Bps, ...Rate). This analyzer makes the convention load-bearing: it
// flags assignments, comparisons, additive arithmetic, keyed composite
// literal fields, and call arguments that mix two different unit suffixes
// with no explicit conversion in between.
//
// Multiplication and division deliberately stay exempt — they are how
// units legally change (Bytes * 8 / Bps = Sec) — and any function call
// resets the unit to unknown, so a named conversion helper is always an
// escape hatch.
package unitsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"leime/internal/analysis"
)

// Analyzer flags additive arithmetic, comparisons and assignments mixing
// identifier unit suffixes.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc:  "identifiers with unit suffixes (Sec, FLOPs, FLOPS, Bytes, Bps, Rate) must not mix without conversion",
	Run:  run,
}

// suffixes are the recognized units, longest first so FLOPs/FLOPS win over
// shorter accidental matches. Case matters: FLOPs is a count, FLOPS a rate.
var suffixes = []string{"FLOPs", "FLOPS", "Bytes", "Bps", "Sec", "Rate"}

// unitOf derives the unit of an expression from identifier suffixes. It
// returns "" when the unit is unknown or the expression converts units
// (calls, multiplicative arithmetic).
func unitOf(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return suffixUnit(x.Name)
	case *ast.SelectorExpr:
		return suffixUnit(x.Sel.Name)
	case *ast.ParenExpr:
		return unitOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return unitOf(x.X)
		}
	case *ast.IndexExpr:
		return unitOf(x.X)
	case *ast.BinaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			a, b := unitOf(x.X), unitOf(x.Y)
			if a == b {
				return a
			}
		}
	}
	return ""
}

// suffixUnit extracts the unit suffix of one identifier. The suffix only
// counts when the preceding character is a lowercase letter or digit (or
// the name is the bare suffix, case-folded), so e.g. GFLOPS and TauSec
// match but an all-caps acronym like HTTPS does not match "S"-suffixes.
func suffixUnit(name string) string {
	for _, s := range suffixes {
		if name == s {
			return s
		}
		if len(name) > len(s) && strings.HasSuffix(name, s) {
			prev := rune(name[len(name)-len(s)-1])
			if unicode.IsLower(prev) || unicode.IsDigit(prev) {
				return s
			}
		}
	}
	// A bare lowercase name ("bytes", "sec") still announces its unit.
	// Exact matches above win first so FLOPs and FLOPS stay distinct.
	for _, s := range suffixes {
		if strings.EqualFold(name, s) {
			return s
		}
	}
	return ""
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, x)
			case *ast.AssignStmt:
				checkAssign(pass, x)
			case *ast.CompositeLit:
				checkCompositeLit(pass, x)
			case *ast.CallExpr:
				checkCall(pass, x)
			}
			return true
		})
	}
	return nil, nil
}

// additiveOrCompare reports ops where both operands must share a unit.
func additiveOrCompare(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func checkBinary(pass *analysis.Pass, x *ast.BinaryExpr) {
	if !additiveOrCompare(x.Op) {
		return
	}
	a, b := unitOf(x.X), unitOf(x.Y)
	if a != "" && b != "" && a != b {
		pass.Reportf(x.OpPos, "unit mismatch: %s %s %s mixes %s and %s; convert explicitly", render(x.X), x.Op, render(x.Y), a, b)
	}
}

func checkAssign(pass *analysis.Pass, x *ast.AssignStmt) {
	switch x.Tok {
	case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	if len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i := range x.Lhs {
		a, b := unitOf(x.Lhs[i]), unitOf(x.Rhs[i])
		if a != "" && b != "" && a != b {
			pass.Reportf(x.Pos(), "unit mismatch: assigning %s value %s to %s variable %s; convert explicitly", b, render(x.Rhs[i]), a, render(x.Lhs[i]))
		}
	}
}

// checkCompositeLit compares each keyed field's name suffix against its
// value's unit: Config{TauSec: bandwidthBps} is almost certainly a bug.
func checkCompositeLit(pass *analysis.Pass, x *ast.CompositeLit) {
	for _, elt := range x.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		a, b := suffixUnit(key.Name), unitOf(kv.Value)
		if a != "" && b != "" && a != b {
			pass.Reportf(kv.Pos(), "unit mismatch: field %s (%s) set from %s value %s; convert explicitly", key.Name, a, b, render(kv.Value))
		}
	}
}

// checkCall compares each argument's unit against the parameter name it
// lands in, when the callee's signature is known.
func checkCall(pass *analysis.Pass, x *ast.CallExpr) {
	sig := callSignature(pass, x)
	if sig == nil || x.Ellipsis.IsValid() {
		return
	}
	for i, arg := range x.Args {
		if i >= sig.Params().Len() {
			break // variadic tail: parameter name no longer positional
		}
		param := sig.Params().At(i)
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break
		}
		a, b := suffixUnit(param.Name()), unitOf(arg)
		if a != "" && b != "" && a != b {
			pass.Reportf(arg.Pos(), "unit mismatch: argument %s (%s) passed as parameter %s (%s); convert explicitly", render(arg), b, param.Name(), a)
		}
	}
}

// callSignature resolves the static signature of a call's callee, or nil
// for builtins, type conversions and dynamic calls.
func callSignature(pass *analysis.Pass, x *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[x.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// render prints a compact source form of simple expressions for messages.
func render(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return "(" + render(x.X) + ")"
	case *ast.IndexExpr:
		return render(x.X) + "[...]"
	case *ast.UnaryExpr:
		return x.Op.String() + render(x.X)
	case *ast.BinaryExpr:
		return render(x.X) + " " + x.Op.String() + " " + render(x.Y)
	case *ast.CallExpr:
		return render(x.Fun) + "(...)"
	case *ast.BasicLit:
		return x.Value
	}
	return "expr"
}
