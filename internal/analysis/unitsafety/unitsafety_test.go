package unitsafety_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/unitsafety"
)

func TestUnitSafety(t *testing.T) {
	analysistest.Run(t, "testdata", unitsafety.Analyzer, "units")
}
