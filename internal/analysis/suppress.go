package analysis

import (
	"strings"
)

// Suppression directives, implemented in the driver so every analyzer gets
// them uniformly:
//
//	//lint:ignore name1[,name2...] reason       — suppresses the named
//	  analyzers on the directive's own line and the line below it (so it
//	  works both trailing a statement and on the line before one).
//	//lint:file-ignore name1[,name2...] reason  — suppresses the named
//	  analyzers for the whole file.
//
// A reason is mandatory: an ignore that cannot say why it exists is a
// finding itself, attributed to the pseudo-analyzer "directive".

// ignoreIndex records which analyzers are suppressed where.
type ignoreIndex struct {
	// file maps filename to analyzers ignored file-wide.
	file map[string][]string
	// line maps filename to line number to analyzers ignored there.
	line map[string]map[int][]string
}

// buildIgnoreIndex scans every comment in pkgs for lint directives,
// returning the index plus one Finding per malformed directive.
func buildIgnoreIndex(pkgs []*Package) (ignoreIndex, []Finding) {
	ix := ignoreIndex{file: map[string][]string{}, line: map[string]map[int][]string{}}
	var bad []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					isDirective, names, fileWide := parseDirective(c.Text)
					if !isDirective {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if len(names) == 0 {
						bad = append(bad, Finding{
							Analyzer: "directive",
							Position: pos,
							Message:  "malformed lint directive: need //lint:ignore <analyzers> <reason>",
							Pkg:      pkg,
						})
						continue
					}
					if fileWide {
						ix.file[pos.Filename] = append(ix.file[pos.Filename], names...)
						continue
					}
					lines := ix.line[pos.Filename]
					if lines == nil {
						lines = map[int][]string{}
						ix.line[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], names...)
					lines[pos.Line+1] = append(lines[pos.Line+1], names...)
				}
			}
		}
	}
	return ix, bad
}

// parseDirective decodes one comment. isDirective reports whether the
// comment claims the //lint: namespace at all; names is empty when such a
// directive is malformed (unknown verb, or missing analyzer list/reason).
func parseDirective(text string) (isDirective bool, names []string, fileWide bool) {
	if !strings.HasPrefix(text, "//lint:") {
		return false, nil, false
	}
	rest, ok := strings.CutPrefix(text, "//lint:ignore ")
	if !ok {
		if rest, fileWide = strings.CutPrefix(text, "//lint:file-ignore "); !fileWide {
			return true, nil, false
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return true, nil, fileWide // missing analyzer list or reason
	}
	return true, strings.Split(fields[0], ","), fileWide
}

// suppressed reports whether the index silences finding f.
func (ix ignoreIndex) suppressed(f Finding) bool {
	if matches(ix.file[f.Position.Filename], f.Analyzer) {
		return true
	}
	lines := ix.line[f.Position.Filename]
	return lines != nil && matches(lines[f.Position.Line], f.Analyzer)
}

func matches(names []string, analyzer string) bool {
	for _, n := range names {
		if n == analyzer {
			return true
		}
	}
	return false
}
