package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"go/ast"
	"go/token"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text        string
		isDirective bool
		names       []string
		fileWide    bool
	}{
		{"// ordinary comment", false, nil, false},
		{"//lint:ignore determinism caller sorts later", true, []string{"determinism"}, false},
		{"//lint:ignore a,b both are deliberate", true, []string{"a", "b"}, false},
		{"//lint:file-ignore determinism live driver by design", true, []string{"determinism"}, true},
		{"//lint:ignore determinism", true, nil, false},            // missing reason
		{"//lint:ignore", true, nil, false},                        // missing everything
		{"//lint:frobnicate determinism reason", true, nil, false}, // unknown verb
	}
	for _, c := range cases {
		isDirective, names, fileWide := parseDirective(c.text)
		if isDirective != c.isDirective || fileWide != c.fileWide || !equalStrings(names, c.names) {
			t.Errorf("parseDirective(%q) = (%v, %v, %v), want (%v, %v, %v)",
				c.text, isDirective, names, fileWide, c.isDirective, c.names, c.fileWide)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunSuppression checks the directive plumbing end to end: a finding on
// the line under an ignore directive disappears, a malformed directive
// becomes a finding of its own, and output is position-sorted.
func TestRunSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `// Package p is a fixture.
package p

//lint:ignore probe covered by a pin test
var a = 1

var b = 2

//lint:ignore probe
var c = 3
`
	pkg := loadTempPackage(t, dir, "p", src)
	probe := &Analyzer{
		Name: "probe",
		Doc:  "flags every var declaration",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				for _, decl := range f.Decls {
					if g, ok := decl.(*ast.GenDecl); ok && g.Tok == token.VAR {
						pass.Reportf(g.Pos(), "var declared")
					}
				}
			}
			return nil, nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+":"+f.Message)
	}
	// a is suppressed; b is flagged; the malformed directive above c is a
	// finding itself and, lacking a reason, does not suppress c.
	want := []string{
		"probe:var declared",
		"directive:malformed lint directive: need //lint:ignore <analyzers> <reason>",
		"probe:var declared",
	}
	if !equalStrings(got, want) {
		t.Errorf("findings = %q, want %q", got, want)
	}
}

// TestApplyFixes rewrites a file through a SuggestedFix and verifies both
// the edit and the fixed count.
func TestApplyFixes(t *testing.T) {
	dir := t.TempDir()
	src := `// Package p is a fixture.
package p

var value = 1
`
	pkg := loadTempPackage(t, dir, "p", src)
	rename := &Analyzer{
		Name: "rename",
		Doc:  "suggests renaming the var value",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok || id.Name != "value" {
						return true
					}
					pass.Report(Diagnostic{
						Pos:     id.Pos(),
						End:     id.End(),
						Message: "rename value",
						SuggestedFixes: []SuggestedFix{{
							Message:   "rename to renamed",
							TextEdits: []TextEdit{{Pos: id.Pos(), End: id.End(), NewText: []byte("renamed")}},
						}},
					})
					return true
				})
			}
			return nil, nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{rename})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want 1", findings)
	}
	fixed, err := ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if fixed != 1 {
		t.Errorf("fixed = %d, want 1", fixed)
	}
	data, err := os.ReadFile(filepath.Join(dir, "p", "p.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "var renamed = 1") {
		t.Errorf("file after fix:\n%s", data)
	}
}

// loadTempPackage writes src as package path under dir and loads it through
// an overlay rooted there.
func loadTempPackage(t *testing.T, dir, path, src string) *Package {
	t.Helper()
	pkgDir := filepath.Join(dir, path)
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, path+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := NewLoader()
	loader.Overlay = dir
	pkgs, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}
