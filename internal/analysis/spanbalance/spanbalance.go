// Package spanbalance enforces that every telemetry span started is also
// ended. telemetry.StartSpan returns an *Active that records into the ring
// buffer only on End(); a span leaked on one control-flow path silently
// drops a node from the trace tree the 11-span integration test pins, and
// the corruption only shows on the path that leaked — usually an error
// path no test walks.
//
// The check is an intra-procedural must-call analysis: from every
// StartSpan assignment, End() (or a defer that calls it) must be reached
// on every path to function exit. Spans that escape the function — stored
// in a struct, returned, sent on a channel, or captured by a go statement
// — are skipped: ownership moved, and the new owner is checked where it
// ends the span. Passing the span to an ordinary call (spanMeta et al.)
// does not discharge the obligation.
package spanbalance

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leime/internal/analysis"
)

// Analyzer reports telemetry spans not ended on every control-flow path.
var Analyzer = &analysis.Analyzer{
	Name: "spanbalance",
	Doc:  "every telemetry.StartSpan must be ended on all control-flow paths",
	Run:  run,
}

// setters are the chainable *Active methods that return the same span.
var setters = map[string]bool{
	"SetDevice": true, "SetTask": true, "SetExit": true, "SetNote": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkFunc(pass, body)
			}
			return true
		})
	}
	return nil, nil
}

// checkFunc analyzes one function body. Nested function literals are
// visited separately by the file walk; here they only matter as defer
// bodies and escape routes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, obj := range spanVars(pass, body) {
		c := &checker{pass: pass, obj: obj, body: body}
		if c.escapes() {
			continue
		}
		ended, diverged := c.block(body.List, true)
		if len(c.leaks) == 0 && (ended || diverged) {
			continue
		}
		pos := c.firstStart
		at := "function exit"
		if len(c.leaks) > 0 {
			at = "the return at " + pass.Fset.Position(c.leaks[0]).String()
		}
		pass.Reportf(pos, "span %s is not ended on every path (leaks at %s); call End() on all paths or defer it", obj.Name(), at)
	}
	// A started span discarded outright can never be ended. Nested
	// closures get their own checkFunc walk — don't descend into them
	// here or their discards would be reported twice.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		st, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if base, isChain := startSpanChain(pass, st.X); isChain && !chainEnds(st.X) {
			pass.Reportf(base.Pos(), "span started and discarded without End(); the trace node is never recorded")
		}
		return true
	})
}

// spanVars finds the local variables a StartSpan chain is assigned to
// anywhere in the body, in source order.
func spanVars(pass *analysis.Pass, body *ast.BlockStmt) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if _, isChain := startSpanChain(pass, as.Rhs[0]); !isChain {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil && !seen[obj] {
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// startSpanChain reports whether expr is a call chain whose base call is
// telemetry StartSpan, possibly wrapped in chainable setters (and End);
// it returns the base StartSpan call.
func startSpanChain(pass *analysis.Pass, expr ast.Expr) (*ast.CallExpr, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	if setters[sel.Sel.Name] || sel.Sel.Name == "End" {
		return startSpanChain(pass, sel.X)
	}
	if sel.Sel.Name != "StartSpan" {
		return nil, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, false
	}
	p := fn.Pkg().Path()
	if p != "telemetry" && !strings.HasSuffix(p, "/telemetry") {
		return nil, false
	}
	return call, true
}

// chainEnds reports whether the outermost call of a chain is End().
func chainEnds(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "End"
}

// checker runs the must-End path analysis for one span variable.
type checker struct {
	pass       *analysis.Pass
	obj        types.Object
	body       *ast.BlockStmt
	leaks      []token.Pos
	firstStart token.Pos
}

// escapes reports whether the span's ownership may leave the function:
// returned, stored into anything, sent, or captured by a go statement.
// Being a call argument or a method receiver is not an escape.
func (c *checker) escapes() bool {
	escaped := false
	var visit func(n ast.Node, inGo bool)
	visit = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if escaped {
				return false
			}
			switch v := m.(type) {
			case *ast.GoStmt:
				visit(v.Call, true)
				return false
			case *ast.ReturnStmt:
				for _, r := range v.Results {
					if c.mentions(r) {
						escaped = true
					}
				}
			case *ast.AssignStmt:
				for _, r := range v.Rhs {
					// Re-binding via the span's own chain (x := x.SetNote)
					// keeps ownership; anything else that copies the value
					// out (y := x, s.f = x) moves it.
					if c.usesIdent(r) {
						escaped = true
					}
				}
			case *ast.CompositeLit:
				for _, e := range v.Elts {
					if c.mentions(e) {
						escaped = true
					}
				}
			case *ast.SendStmt:
				if c.mentions(v.Value) {
					escaped = true
				}
			case *ast.Ident:
				if inGo && c.isObj(v) {
					escaped = true
				}
			}
			return !escaped
		})
	}
	visit(c.body, false)
	return escaped
}

// isObj reports whether id denotes the tracked span variable.
func (c *checker) isObj(id *ast.Ident) bool {
	return c.pass.TypesInfo.Uses[id] == c.obj || c.pass.TypesInfo.Defs[id] == c.obj
}

// mentions reports whether the span identifier appears anywhere in n.
func (c *checker) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && c.isObj(id) {
			found = true
		}
		return !found
	})
	return found
}

// usesIdent reports whether expr is exactly the bare span identifier
// (a copy-out), as opposed to a chain rooted at it.
func (c *checker) usesIdent(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && c.isObj(id)
}

// block walks one statement list. ended is true while no un-Ended span is
// live on this path (before the first StartSpan assignment, and again
// after End or a covering defer). Returns the state at the list's end and
// whether every path through it diverges (returns/branches away).
func (c *checker) block(stmts []ast.Stmt, ended bool) (bool, bool) {
	for _, s := range stmts {
		var diverged bool
		ended, diverged = c.stmt(s, ended)
		if diverged {
			return ended, true
		}
	}
	return ended, false
}

func (c *checker) stmt(s ast.Stmt, ended bool) (bool, bool) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
			if id, ok := st.Lhs[0].(*ast.Ident); ok && c.isObj(id) {
				if _, isChain := startSpanChain(c.pass, st.Rhs[0]); isChain {
					if c.firstStart == token.NoPos {
						c.firstStart = st.Rhs[0].Pos()
					}
					// Obligation (re)opens here — unless the chain itself
					// already ends the span.
					return chainEnds(st.Rhs[0]), false
				}
			}
		}
		return ended, false
	case *ast.ExprStmt:
		if c.isEndCall(st.X) {
			return true, false
		}
		return ended, false
	case *ast.DeferStmt:
		if c.deferEnds(st) {
			return true, false
		}
		return ended, false
	case *ast.ReturnStmt:
		if !ended {
			c.leaks = append(c.leaks, st.Pos())
		}
		return ended, true
	case *ast.BranchStmt:
		// break/continue/goto leave the list; treat like divergence so code
		// after them is not charged with this path's state.
		return ended, true
	case *ast.BlockStmt:
		return c.block(st.List, ended)
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, ended)
	case *ast.IfStmt:
		if st.Init != nil {
			ended, _ = c.stmt(st.Init, ended)
		}
		thenEnded, thenDiv := c.block(st.Body.List, ended)
		elseEnded, elseDiv := ended, false
		if st.Else != nil {
			elseEnded, elseDiv = c.stmt(st.Else, ended)
		}
		switch {
		case thenDiv && elseDiv:
			return ended, true
		case thenDiv:
			return elseEnded, false
		case elseDiv:
			return thenEnded, false
		default:
			return thenEnded && elseEnded, false
		}
	case *ast.ForStmt:
		// The body may run zero times: leaks inside are collected, but the
		// exit state is the entry state unless the body unconditionally
		// ends (covered by the zero-iteration merge below).
		bodyEnded, _ := c.block(st.Body.List, ended)
		return ended && bodyEnded, false
	case *ast.RangeStmt:
		bodyEnded, _ := c.block(st.Body.List, ended)
		return ended && bodyEnded, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		allExit := true
		for _, cl := range clauses {
			var body []ast.Stmt
			switch cc := cl.(type) {
			case *ast.CaseClause:
				body = cc.Body
				if cc.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				body = cc.Body
				if cc.Comm == nil {
					hasDefault = true
				}
			}
			clEnded, clDiv := c.block(body, ended)
			if !clEnded && !clDiv {
				allExit = false
			}
		}
		if _, isSelect := st.(*ast.SelectStmt); isSelect {
			hasDefault = true // a select blocks until some case runs
		}
		if allExit && hasDefault && len(clauses) > 0 {
			return true, false
		}
		return ended, false
	case *ast.GoStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		return ended, false
	}
	return ended, false
}

// isEndCall reports whether expr is a call chain rooted at the span
// variable whose outermost method is End.
func (c *checker) isEndCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	return c.chainBaseIsObj(sel.X)
}

// chainBaseIsObj unwraps a method chain to its base identifier.
func (c *checker) chainBaseIsObj(expr ast.Expr) bool {
	for {
		switch v := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return c.isObj(v)
		case *ast.CallExpr:
			expr = v.Fun
		case *ast.SelectorExpr:
			expr = v.X
		default:
			return false
		}
	}
}

// deferEnds reports whether a defer statement ends the span: either
// `defer x.End()` directly or a deferred closure containing x.End().
func (c *checker) deferEnds(st *ast.DeferStmt) bool {
	if sel, ok := st.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" && c.chainBaseIsObj(sel.X) {
		return true
	}
	if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if e, ok := n.(*ast.ExprStmt); ok && c.isEndCall(e.X) {
				found = true
			}
			return !found
		})
		return found
	}
	return false
}
