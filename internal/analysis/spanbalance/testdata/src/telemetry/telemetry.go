// Package telemetry is the fixture stand-in for leime/internal/telemetry:
// the span surface spanbalance resolves, with no recording behind it.
package telemetry

// SpanContext identifies a span's position in a trace.
type SpanContext struct{ Trace, Span uint64 }

// Tracer hands out spans.
type Tracer struct{}

// Active is a started span; only End records it.
type Active struct{}

// StartSpan opens a span under parent.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Active { return &Active{} }

func (a *Active) SetDevice(d string) *Active { return a }
func (a *Active) SetTask(id uint64) *Active  { return a }
func (a *Active) SetExit(e int) *Active      { return a }
func (a *Active) SetNote(n string) *Active   { return a }

// End records the span.
func (a *Active) End() {}

// Context returns the span's context for propagation.
func (a *Active) Context() SpanContext { return SpanContext{} }
