// Package spans exercises spanbalance: leaked spans on early returns and
// discarded chains are flagged; deferred, all-path, chained, escaping and
// conditionally-started spans are clean.
package spans

import "telemetry"

func work() error { return nil }

// okDefer ends via defer — clean.
func okDefer(tr *telemetry.Tracer) error {
	s := tr.StartSpan(telemetry.SpanContext{}, "task")
	defer s.End()
	return work()
}

// okDeferClosure ends inside a deferred closure — clean.
func okDeferClosure(tr *telemetry.Tracer) error {
	s := tr.StartSpan(telemetry.SpanContext{}, "task")
	defer func() {
		s.SetNote("done")
		s.End()
	}()
	return work()
}

// okAllPaths ends explicitly on both the error and success paths — clean.
func okAllPaths(tr *telemetry.Tracer) error {
	s := tr.StartSpan(telemetry.SpanContext{}, "rpc").SetDevice("d")
	if err := work(); err != nil {
		s.SetNote("error").End()
		return err
	}
	s.End()
	return nil
}

// okChained starts and ends in one statement — clean.
func okChained(tr *telemetry.Tracer) {
	tr.StartSpan(telemetry.SpanContext{}, "decision").SetNote("local").End()
}

// okConditionalStart mirrors the runtime pattern: the span may not start
// (tracing off), End is nil-safe and unconditional — clean.
func okConditionalStart(tr *telemetry.Tracer, tracing bool) error {
	var s *telemetry.Active
	if tracing {
		s = tr.StartSpan(telemetry.SpanContext{}, "rpc")
	}
	if err := work(); err != nil {
		s.End()
		return err
	}
	s.End()
	return nil
}

// okEscapesReturn hands the span to the caller — ownership moves, clean.
func okEscapesReturn(tr *telemetry.Tracer) *telemetry.Active {
	s := tr.StartSpan(telemetry.SpanContext{}, "task")
	return s
}

// okEscapesGo hands the span to a goroutine — clean here.
func okEscapesGo(tr *telemetry.Tracer) {
	s := tr.StartSpan(telemetry.SpanContext{}, "task")
	go func() {
		s.End()
	}()
}

// badEarlyReturn leaks the span on the error path.
func badEarlyReturn(tr *telemetry.Tracer) error {
	s := tr.StartSpan(telemetry.SpanContext{}, "rpc") // want `span s is not ended on every path`
	if err := work(); err != nil {
		return err
	}
	s.End()
	return nil
}

// badNeverEnded never ends the span at all.
func badNeverEnded(tr *telemetry.Tracer) error {
	s := tr.StartSpan(telemetry.SpanContext{}, "rpc").SetTask(1) // want `span s is not ended on every path`
	s.SetNote("started")
	return work()
}

// badDiscarded drops the started span on the floor.
func badDiscarded(tr *telemetry.Tracer) {
	tr.StartSpan(telemetry.SpanContext{}, "decision").SetNote("x") // want `started and discarded without End`
}

// badSwitchLeak ends in one case but falls through the switch in another.
func badSwitchLeak(tr *telemetry.Tracer, n int) {
	s := tr.StartSpan(telemetry.SpanContext{}, "rpc") // want `span s is not ended on every path`
	switch n {
	case 0:
		s.End()
	case 1:
		s.SetNote("skipped")
	}
}
