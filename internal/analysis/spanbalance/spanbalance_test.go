package spanbalance_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/spanbalance"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", spanbalance.Analyzer, "spans")
}
