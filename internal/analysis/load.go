package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	// Path is the import path ("leime/internal/sim", or a bare fixture
	// name under an analysistest overlay).
	Path string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files are the parsed files: GoFiles plus, for analysis targets,
	// in-package _test.go files.
	Files []*ast.File
	// Pkg is the typechecked package object.
	Pkg *types.Package
	// Info carries the typechecker's facts for Files.
	Info *types.Info
}

// Loader typechecks packages from source. Imports resolve in order against
// the Overlay (analysistest fixtures), the module root (paths under the
// module name), and GOROOT/src with its vendor tree. Dependencies are
// typechecked once and cached; only analysis targets keep syntax and
// types.Info.
type Loader struct {
	// Fset is the shared file set for every package this loader touches.
	Fset *token.FileSet
	// ModuleName and ModuleRoot map module-internal import paths to
	// directories; SetModule fills them from a go.mod file.
	ModuleName string
	// ModuleRoot is the directory containing the module's go.mod.
	ModuleRoot string
	// Overlay, when non-empty, is a directory whose path/<import> children
	// shadow every other resolution root (analysistest's testdata/src).
	Overlay string
	// IncludeTests makes Load parse and typecheck in-package _test.go
	// files along with the target package.
	IncludeTests bool

	ctxt  build.Context
	cache map[string]*types.Package
}

// NewLoader returns a loader with cgo disabled so every dependency —
// including net and friends — typechecks from pure-Go source files.
func NewLoader() *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:  token.NewFileSet(),
		ctxt:  ctxt,
		cache: map[string]*types.Package{},
	}
}

// SetModule points the loader at the module rooted at dir, reading the
// module path from its go.mod.
func (l *Loader) SetModule(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			l.ModuleName = strings.TrimSpace(rest)
			l.ModuleRoot = dir
			return nil
		}
	}
	return fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// resolve maps an import path to the directory holding its source.
func (l *Loader) resolve(path string) (string, error) {
	if l.Overlay != "" {
		if dir := filepath.Join(l.Overlay, filepath.FromSlash(path)); isDir(dir) {
			return dir, nil
		}
	}
	if l.ModuleName != "" && (path == l.ModuleName || strings.HasPrefix(path, l.ModuleName+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModuleName), "/")
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), nil
	}
	if dir := filepath.Join(l.ctxt.GOROOT, "src", filepath.FromSlash(path)); isDir(dir) {
		return dir, nil
	}
	// GOROOT vendors its external dependencies (golang.org/x/...) under
	// src/vendor; imports between std packages use the unvendored path.
	if dir := filepath.Join(l.ctxt.GOROOT, "src", "vendor", filepath.FromSlash(path)); isDir(dir) {
		return dir, nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}

func isDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}

// Import implements types.Importer, typechecking dependencies from source
// on first use. Syntax and info for dependencies are discarded.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	dir, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	files, _, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l, FakeImportC: true, Error: func(error) {}}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses the build-constraint-selected files of one directory,
// returning the package's files and, when tests is set, the external
// (package foo_test) files separately.
func (l *Loader) parseDir(dir string, tests bool) (files, xtest []*ast.File, err error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok && tests {
			// Test-only directories still carry analyzable test files.
			bp = &build.Package{Dir: dir}
			if bp.TestGoFiles, bp.XTestGoFiles, err = l.listTestFiles(dir); err != nil {
				return nil, nil, err
			}
		} else {
			return nil, nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
	}
	parse := func(names []string) ([]*ast.File, error) {
		var out []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	}
	if files, err = parse(bp.GoFiles); err != nil {
		return nil, nil, err
	}
	if tests {
		tf, err := parse(bp.TestGoFiles)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, tf...)
		if xtest, err = parse(bp.XTestGoFiles); err != nil {
			return nil, nil, err
		}
	}
	return files, xtest, nil
}

// listTestFiles splits a directory's _test.go files into in-package and
// external-test lists without build.ImportDir (which rejects test-only
// directories with NoGoError before reporting them).
func (l *Loader) listTestFiles(dir string) (tests, xtests []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.PackageClauseOnly)
		if err != nil {
			return nil, nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtests = append(xtests, name)
		} else {
			tests = append(tests, name)
		}
	}
	sort.Strings(tests)
	sort.Strings(xtests)
	return tests, xtests, nil
}

// Load typechecks one analysis target, keeping syntax and info. When
// IncludeTests is set, in-package test files join the target and any
// external test package is returned as a second "<path>_test" entry.
func (l *Loader) Load(path string) ([]*Package, error) {
	dir, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	files, xtest, err := l.parseDir(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	var out []*Package
	var target *Package
	if len(files) > 0 {
		pkg, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		// Cache only if no dependency load got here first: replacing an
		// entry would hand later importers a second, non-identical package
		// object for the same path and break type identity.
		if _, exists := l.cache[path]; !exists {
			l.cache[path] = pkg.Pkg
		}
		target = pkg
		out = append(out, pkg)
	}
	if len(xtest) > 0 {
		// The external test package must resolve its import of path to the
		// test-augmented package so export_test.go symbols are visible.
		// Swap it in just for this check, then restore the cached entry so
		// later importers keep a single identity for the package's types.
		prev, hadPrev := l.cache[path]
		if target != nil {
			l.cache[path] = target.Pkg
		}
		pkg, err := l.check(path+"_test", xtest)
		if target != nil {
			if hadPrev {
				l.cache[path] = prev
			} else {
				delete(l.cache, path)
			}
		}
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check typechecks a file set as one package with full info collection.
func (l *Loader) check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}
