// Package clockhelp is a non-model-clock fixture dependency: it may read
// the wall clock freely (no diagnostics here), but the facts exported
// about its functions let clockpure catch model-clock packages that reach
// the clock through it.
package clockhelp

import "time"

// now is the buried wall-clock read; Stamp reaches it transitively.
func now() float64 { return float64(time.Now().UnixNano()) }

// Stamp reaches the wall clock through a same-package helper.
func Stamp() float64 { return now() / 1e9 }

// Pure is clock-free; calling it from a model-clock package is fine.
func Pure(x float64) float64 { return x * 2 }

// Ticker carries a clock-reaching method, proving method facts travel.
type Ticker struct{ Period time.Duration }

// Wait sleeps on the wall clock.
func (t Ticker) Wait() { time.Sleep(t.Period) }

// Len is a clock-free method.
func (t Ticker) Len() time.Duration { return t.Period }
