// Package clocky is the model-clock fixture: direct wall-clock reads,
// global rand, and transitive reaches through clockhelp must all be
// flagged; model-time arithmetic, seeded sources and clock-free helpers
// must not.
package clocky

import (
	"math/rand"
	"time"

	"clockhelp"
)

// Step advances model time; pure duration arithmetic is legal.
func Step(t float64, dt time.Duration) float64 {
	return t + dt.Seconds()
}

// Jitter draws from a seeded source — the legal way to be random.
func Jitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Scale calls a clock-free helper; no diagnostic.
func Scale(x float64) float64 {
	return clockhelp.Pure(x)
}

// BadDirect reads the wall clock in a model-clock package.
func BadDirect() float64 {
	return float64(time.Now().UnixNano()) // want `model-clock package clocky reads time.Now`
}

// BadRand consults the global rand source.
func BadRand() float64 {
	return rand.Float64() // want `the global rand source via rand.Float64`
}

// BadTransitive reaches the wall clock through another package's helper.
func BadTransitive() float64 {
	return clockhelp.Stamp() // want `reaches the wall clock via clockhelp.Stamp`
}

// BadMethod reaches the wall clock through a method on an imported type.
func BadMethod(t clockhelp.Ticker) {
	t.Wait() // want `reaches the wall clock via \(clockhelp.Ticker\).Wait`
}

// localRelay is a same-package helper whose direct read is reported once,
// in its own body; Relay's call of it is not double-reported.
func localRelay() float64 {
	return float64(time.Now().Unix()) // want `model-clock package clocky reads time.Now`
}

// Relay calls the tainted same-package helper.
func Relay() float64 { return localRelay() }

// OKMethod calls the clock-free method on the imported type.
func OKMethod(t clockhelp.Ticker) time.Duration { return t.Len() }
