// Package clockpure enforces wall-clock freedom in the model-clock
// packages across package boundaries. The determinism analyzer catches a
// direct time.Now in a pure package; it cannot see a helper in another
// package that reads the clock on the pure package's behalf. clockpure
// computes a "reaches the wall clock" fact for every function in every
// analyzed package — seeded by direct time/global-rand calls, closed over
// intra-package calls by fixpoint, and propagated across packages through
// the fact store (analysis.Run analyzes dependencies first) — then flags
// every call site in a model-clock package whose callee carries the fact.
//
// Cross-package propagation needs the callee's package in the same run:
// `leimevet ./...` (what CI runs) sees the whole module; a single-package
// invocation degrades to intra-package transitive checking.
package clockpure

import (
	"fmt"
	"go/ast"
	"go/types"

	"leime/internal/analysis"
)

// Packages lists the model-clock packages where reaching the wall clock
// breaks same-seed replay. internal/loadgen is deliberately absent: its
// live half paces real RPCs by design (the deterministic half is guarded
// by determinism's PurePaths entry plus the file-level opt-out).
var Packages = []string{
	"leime/internal/control",
	"leime/internal/sim",
	"leime/internal/partition",
	"leime/internal/exitsetting",
	"leime/internal/offload",
	// "clocky" is the analysistest fixture stand-in for this set.
	"clocky",
}

// Analyzer flags model-clock packages that reach the wall clock or the
// global rand source, directly or through helpers in any analyzed package.
var Analyzer = &analysis.Analyzer{
	Name: "clockpure",
	Doc:  "model-clock packages must not reach the wall clock, even transitively",
	Run:  run,
}

// wallClock names the time functions that read or wait on the wall clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandOK names the math/rand constructors that take an explicit
// source instead of consulting the shared global one.
var seededRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// taint is the fact exported about a clock-reaching function: how it gets
// to the wall clock, e.g. "time.Now" or "calls pkg.Helper (time.Sleep)".
type taint struct {
	via string
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: per-function direct taints and the intra-package call graph.
	// Function literals are attributed to their enclosing declaration: a
	// closure reading the clock taints the function that builds it.
	taints := map[*types.Func]string{}       // function -> how it reaches the clock
	calls := map[*types.Func][]*types.Func{} // caller -> same-package callees
	var decls []*types.Func
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fn)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if via, bad := directClockCall(pass, call); bad {
					if _, seen := taints[fn]; !seen {
						taints[fn] = via
					}
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil {
					return true
				}
				if callee.Pkg() == pass.Pkg {
					calls[fn] = append(calls[fn], callee)
				} else if fact, ok := pass.ImportFact(callee); ok {
					if _, seen := taints[fn]; !seen {
						taints[fn] = fmt.Sprintf("calls %s (%s)", callee.FullName(), fact.(taint).via)
					}
				}
				return true
			})
		}
	}

	// Pass 2: intra-package fixpoint — a function calling a tainted
	// same-package function is tainted too.
	for changed := true; changed; {
		changed = false
		for _, fn := range decls {
			if _, done := taints[fn]; done {
				continue
			}
			for _, callee := range calls[fn] {
				if via, bad := taints[callee]; bad {
					taints[fn] = fmt.Sprintf("calls %s (%s)", callee.FullName(), via)
					changed = true
					break
				}
			}
		}
	}
	for fn, via := range taints {
		pass.ExportFact(fn, taint{via: via})
	}

	if !isModelClock(pass.Pkg.Path()) {
		return nil, nil
	}

	// Pass 3: report every clock-reaching call site in this package.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if via, bad := directClockCall(pass, call); bad {
				pass.Reportf(call.Pos(), "model-clock package %s reads %s; thread model time (or a seeded source) explicitly", pass.Pkg.Path(), via)
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || callee.Pkg() == pass.Pkg {
				return true // same-package helpers report at their own guts
			}
			if fact, ok := pass.ImportFact(callee); ok {
				pass.Reportf(call.Pos(), "model-clock package %s reaches the wall clock via %s (%s)", pass.Pkg.Path(), callee.FullName(), fact.(taint).via)
			}
			return true
		})
	}
	return nil, nil
}

func isModelClock(path string) bool {
	for _, p := range Packages {
		if path == p {
			return true
		}
	}
	return false
}

// directClockCall reports whether call invokes a wall-clock time function
// or a global-source math/rand function, and names it.
func directClockCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
		return "", false
	}
	switch pkgName.Imported().Path() {
	case "time":
		if wallClock[sel.Sel.Name] {
			return "time." + sel.Sel.Name, true
		}
	case "math/rand":
		if !seededRandOK[sel.Sel.Name] {
			return "the global rand source via rand." + sel.Sel.Name, true
		}
	}
	return "", false
}

// calleeFunc resolves a call's static callee; nil for builtins, function
// values, and interface methods.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
