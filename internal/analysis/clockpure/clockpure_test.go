package clockpure_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/clockpure"
)

// TestFixtures loads the helper dependency and the model-clock fixture in
// one run, so facts about clockhelp's functions are in the store before
// clocky is analyzed (analysis.Run orders by imports).
func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", clockpure.Analyzer, "clockhelp", "clocky")
}

// TestPackagesPinned pins the model-clock set: a PR widening or shrinking
// coverage must edit this list consciously.
func TestPackagesPinned(t *testing.T) {
	want := map[string]bool{
		"leime/internal/control":     true,
		"leime/internal/sim":         true,
		"leime/internal/partition":   true,
		"leime/internal/exitsetting": true,
		"leime/internal/offload":     true,
		"clocky":                     true,
	}
	if len(clockpure.Packages) != len(want) {
		t.Fatalf("Packages = %v, want exactly %v", clockpure.Packages, want)
	}
	for _, p := range clockpure.Packages {
		if !want[p] {
			t.Errorf("unexpected model-clock package %q", p)
		}
	}
}
