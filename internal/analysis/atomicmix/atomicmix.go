// Package atomicmix flags struct fields accessed both through sync/atomic
// and by plain load/store. The repo leans on the raw-word atomic idiom in
// several hot paths (float-bits CAS rates, the claim word, steal
// counters); one careless plain read of such a field is a data race the
// detector may never schedule, because it only fires if the race actually
// interleaves under -race. The rule: once any non-test code passes &x.f to
// a sync/atomic function, every other access to that field must be atomic
// too (or carry a //lint:ignore with the reason the plain access is safe,
// e.g. pre-publication initialization).
//
// Fields whose type is itself from sync/atomic (atomic.Uint64 and
// friends) are exempt: method-based access cannot mix. The check is
// per-package — the repo's raw-word atomics are all unexported fields.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leime/internal/analysis"
)

// Analyzer reports mixed atomic/plain access to one struct field.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never also be accessed plainly",
	Run:  run,
}

// atomicFns names the sync/atomic package-level functions that take the
// word's address as their first argument.
func isAtomicFn(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: collect fields whose address feeds a sync/atomic call, and
	// remember those argument expressions so pass 2 can skip them.
	atomicSite := map[types.Object]token.Pos{}
	atomicArg := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !isAtomicCall(pass, call) {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldObject(pass, sel)
			if field == nil {
				return true
			}
			if _, seen := atomicSite[field]; !seen {
				atomicSite[field] = call.Pos()
			}
			atomicArg[sel] = true
			return true
		})
	}
	if len(atomicSite) == 0 {
		return nil, nil
	}

	// Pass 2: any other selector resolving to one of those fields is a
	// plain access racing the atomic ones.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArg[sel] {
				return true
			}
			field := fieldObject(pass, sel)
			if field == nil {
				return true
			}
			pos, mixed := atomicSite[field]
			if !mixed {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic (e.g. at %s) but plainly here; mixed access races — use the atomic API on every access",
				field.Name(), pass.Fset.Position(pos))
			return true
		})
	}
	return nil, nil
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// word function (Load/Store/Add/Swap/CompareAndSwap/And/Or variants).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "sync/atomic" {
		return false
	}
	return isAtomicFn(sel.Sel.Name)
}

// fieldObject resolves sel to a struct-field variable, skipping fields of
// sync/atomic types (their methods cannot mix with plain access).
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return nil
	}
	if named, ok := field.Type().(*types.Named); ok {
		if p := named.Obj().Pkg(); p != nil && p.Path() == "sync/atomic" {
			return nil
		}
	}
	return field
}
