package atomicmix_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/atomicmix"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "mix")
}
