// Package mix exercises atomicmix: plain access to a field that elsewhere
// feeds sync/atomic is flagged; purely-atomic fields, purely-plain fields,
// and sync/atomic-typed fields are clean.
package mix

import "sync/atomic"

// counter mixes access styles on hits but not on misses.
type counter struct {
	hits   uint64
	misses uint64
	label  string
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) bad() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic`
}

func (c *counter) badStore() {
	c.hits = 0 // want `field hits is accessed with sync/atomic`
}

// okPlain never touches misses atomically — plain access is fine.
func (c *counter) okPlain() uint64 {
	c.misses++
	return c.misses
}

// okAtomicOnly reads hits through the atomic API — fine.
func (c *counter) okAtomicOnly() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// okString is a non-word field with no atomic use at all.
func (c *counter) okString() string { return c.label }

// gauge holds a sync/atomic-typed field: method access cannot mix, so the
// analyzer leaves it alone even next to a plain read of the same struct.
type gauge struct {
	level atomic.Int64
	name  string
}

func (g *gauge) okTyped() int64 {
	g.name = "g"
	return g.level.Load()
}

// rate is the float-bits idiom from the runtime: CAS on the bits word.
type rate struct {
	bits uint64
}

func (r *rate) set(v uint64) {
	for {
		old := atomic.LoadUint64(&r.bits)
		if atomic.CompareAndSwapUint64(&r.bits, old, v) {
			return
		}
	}
}

func (r *rate) badPeek() uint64 {
	return r.bits // want `field bits is accessed with sync/atomic`
}

// okIgnored documents a pre-publication initialization with a suppression.
func newRate(v uint64) *rate {
	r := &rate{}
	//lint:ignore atomicmix r is not yet shared with any other goroutine
	r.bits = v
	return r
}
