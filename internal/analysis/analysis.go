// Package analysis is the repo's static-analysis framework: a small,
// dependency-free port of the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Diagnostic, SuggestedFix) plus a source-level package
// loader, a //lint:ignore suppression layer, and a fix applier. The repo
// builds offline with a zero-dependency go.mod, so instead of importing
// x/tools the framework typechecks packages from source with go/types and
// resolves imports against the module root and GOROOT (including GOROOT's
// vendored dependencies).
//
// Analyzers live in subpackages (determinism, unitsafety, lockdiscipline,
// wireerrors, ctxfirst, missingdocs) and are driven by cmd/leimevet; each
// has an analysistest suite under its testdata/src tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name diagnostics are attributed
// to (and that //lint:ignore directives reference), documentation, and the
// Run function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the check to one package, reporting findings through
	// pass.Report. The returned value is unused by the driver but kept for
	// API parity with x/tools analyzers.
	Run func(pass *Pass) (any, error)
}

// Pass carries one analyzed package through an Analyzer.Run invocation.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed files, including in-package _test.go
	// files when the loader was asked for them.
	Files []*ast.File
	// Pkg is the typechecked package.
	Pkg *types.Package
	// TypesInfo holds the typechecker's expression and identifier facts.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
	// Facts is the cross-package fact store shared by every pass of one
	// Run invocation. Run analyzes packages in dependency order, so facts
	// a pass exports about its own symbols are visible to every pass that
	// imports that package later in the same run.
	Facts *Facts
}

// Facts accumulates analyzer conclusions about named symbols across
// packages. Facts are keyed by (analyzer, canonical symbol name) strings
// rather than types.Object identity because the loader may materialize one
// package under two distinct type universes (once as an analysis target,
// once as a dependency); the FullName string is the same in both.
type Facts struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	symbol   string
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: map[factKey]any{}} }

// SymbolName canonicalizes obj into the cross-universe fact key: the
// FullName for functions and methods, package-path-qualified name for
// everything else package-scoped.
func SymbolName(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// ExportFact records a fact about obj on behalf of this pass's analyzer.
func (p *Pass) ExportFact(obj types.Object, v any) {
	if p.Facts == nil || obj == nil {
		return
	}
	p.Facts.m[factKey{p.Analyzer.Name, SymbolName(obj)}] = v
}

// ImportFact retrieves the fact this pass's analyzer exported about obj in
// an earlier (dependency) pass, if any.
func (p *Pass) ImportFact(obj types.Object) (any, bool) {
	if p.Facts == nil || obj == nil {
		return nil, false
	}
	v, ok := p.Facts.m[factKey{p.Analyzer.Name, SymbolName(obj)}]
	return v, ok
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file, letting
// analyzers exempt test-only code from production invariants.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding: a position, a message, and zero or more
// machine-applicable fixes.
type Diagnostic struct {
	// Pos is where the problem starts.
	Pos token.Pos
	// End optionally marks where it stops; NoPos when unknown.
	End token.Pos
	// Message states the violated invariant and, ideally, the remedy.
	Message string
	// SuggestedFixes are optional rewrites the driver can apply with -fix.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained rewrite curing a diagnostic.
type SuggestedFix struct {
	// Message describes the rewrite.
	Message string
	// TextEdits are the byte-range replacements; they must not overlap.
	TextEdits []TextEdit
}

// TextEdit replaces the source bytes in [Pos, End) with NewText.
type TextEdit struct {
	// Pos is the first position replaced.
	Pos token.Pos
	// End is the position after the last byte replaced.
	End token.Pos
	// File, when non-empty, names a file whose entire content becomes
	// NewText (created if absent); Pos and End are ignored. This is how
	// fixes regenerate whole non-Go artifacts such as wire.manifest.
	File string
	// NewText is the replacement text.
	NewText []byte
}
