package ctx

import stdctx "context"

// AliasedGood keeps an aliased context first.
func AliasedGood(c stdctx.Context, n int) {}

// AliasedBad hides an aliased context.
func AliasedBad(n int, c stdctx.Context) {} // want `AliasedBad: context\.Context must be the first parameter`
