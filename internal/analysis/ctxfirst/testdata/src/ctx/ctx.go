// Package ctx is a ctxfirst fixture.
package ctx

import "context"

// Good has the context first.
func Good(ctx context.Context, n int) {}

// Only takes just a context.
func Only(ctx context.Context) {}

// NoCtx takes no context at all.
func NoCtx(a, b int) {}

// Bad hides the context behind another parameter.
func Bad(n int, ctx context.Context) {} // want `Bad: context\.Context must be the first parameter`

// T carries methods.
type T struct{}

// Late puts the context after the name.
func (t *T) Late(name string, ctx context.Context) {} // want `T\.Late: context\.Context must be the first parameter`

// Handle follows the convention on a method.
func (t *T) Handle(ctx context.Context, body any) error { return nil }

var f = func(n int, ctx context.Context) {} // want `func literal: context\.Context must be the first parameter`
