package ctxfirst_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, "testdata", ctxfirst.Analyzer, "ctx")
}
