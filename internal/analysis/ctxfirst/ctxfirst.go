// Package ctxfirst enforces the repo's context-aware API convention: any
// function that accepts a context.Context must take it as the first
// parameter, so deadlines and cancellation visibly enter every call chain
// at the front. This is the internal/analysis port of the original
// cmd/ctxcheck directory walker.
package ctxfirst

import (
	"go/ast"
	"go/token"
	"strconv"

	"leime/internal/analysis"
)

// Analyzer flags functions whose context.Context parameter is not first.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context parameters must come first",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ctxName := contextImportName(f)
		if ctxName == "" {
			continue // file cannot name context.Context
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var typ *ast.FuncType
			name := "func literal"
			switch fn := n.(type) {
			case *ast.FuncDecl:
				typ = fn.Type
				name = fn.Name.Name
				if fn.Recv != nil && len(fn.Recv.List) == 1 {
					name = recvTypeName(fn.Recv.List[0].Type) + "." + name
				}
			case *ast.FuncLit:
				typ = fn.Type
			default:
				return true
			}
			if pos, bad := ctxNotFirst(typ, ctxName); bad {
				pass.Reportf(pos, "%s: context.Context must be the first parameter", name)
			}
			return true
		})
	}
	return nil, nil
}

// ctxNotFirst reports whether the function type takes a context.Context in
// any position after the first parameter name.
func ctxNotFirst(typ *ast.FuncType, ctxName string) (token.Pos, bool) {
	if typ.Params == nil {
		return token.NoPos, false
	}
	seen := 0 // parameter names (not fields) seen so far
	for _, field := range typ.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // unnamed parameter still occupies a position
		}
		if isCtxType(field.Type, ctxName) && seen > 0 {
			return field.Pos(), true
		}
		seen += names
	}
	return token.NoPos, false
}

func isCtxType(expr ast.Expr, ctxName string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == ctxName
}

// contextImportName returns the local name under which the file imports the
// standard context package, or "" when it does not.
func contextImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "context" {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return "context"
	}
	return ""
}

// recvTypeName unwraps a receiver type expression to its base identifier.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	default:
		return "?"
	}
}
