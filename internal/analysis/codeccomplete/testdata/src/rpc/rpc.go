// Package rpc is a fixture stand-in for the transport layer.
package rpc

// Encoder mirrors the real append-only wire encoder.
type Encoder struct{}

// Decoder mirrors the real sticky-error wire decoder.
type Decoder struct{}

// Register mirrors rpc.Register.
func Register(v any) {}

// RegisterCodec mirrors rpc.RegisterCodec.
func RegisterCodec(id uint16, prototype any, enc func(*Encoder, any), dec func(*Decoder) (any, error)) {
}
