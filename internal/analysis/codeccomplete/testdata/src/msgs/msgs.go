// Package msgs exercises the codeccomplete analyzer: one fully
// registered message, one riding the gob fallback, and shapes the
// analyzer must see through (&T{} prototypes) or ignore (non-literals).
package msgs

import "rpc"

// TaskReq is registered both ways: no finding.
type TaskReq struct {
	ID      uint64
	Payload []byte
}

// StatsResp is gob-registered only: the finding.
type StatsResp struct {
	Tenants int
}

// PtrReq is registered via a &T{} prototype on both sides: no finding.
type PtrReq struct {
	N int
}

// StageInstall mirrors the pipeline control message shape: fixed-size
// array fields ride the closed codec set like any scalar; registered both
// ways: no finding.
type StageInstall struct {
	FLOPs  [3]float64
	Hosted [3]bool
}

// Activation mirrors the pipeline data message: a half-registered payload
// carrier must still be flagged — the gob fallback on the per-task hot
// path is exactly the regression the analyzer exists to catch.
type Activation struct {
	TaskID  uint64
	Payload []byte
}

func registerAll() {
	rpc.Register(TaskReq{})
	rpc.Register(StatsResp{}) // want `StatsResp is registered on the wire without a binary codec`
	rpc.Register(&PtrReq{})
	rpc.Register(StageInstall{})
	rpc.Register(Activation{}) // want `Activation is registered on the wire without a binary codec`

	rpc.RegisterCodec(1, TaskReq{},
		func(e *rpc.Encoder, v any) {},
		func(d *rpc.Decoder) (any, error) { return TaskReq{}, nil })
	rpc.RegisterCodec(2, &PtrReq{},
		func(e *rpc.Encoder, v any) {},
		func(d *rpc.Decoder) (any, error) { return &PtrReq{}, nil })
	rpc.RegisterCodec(17, StageInstall{},
		func(e *rpc.Encoder, v any) {},
		func(d *rpc.Decoder) (any, error) { return StageInstall{}, nil })

	// Non-literal prototypes are outside the analyzer's reach; it must
	// stay silent rather than guess.
	var dynamic any
	rpc.Register(dynamic)
}
