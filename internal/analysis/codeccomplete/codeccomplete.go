// Package codeccomplete keeps the binary wire protocol's closed set
// closed. The rpc layer transports registered message types through a
// hand-rolled binary codec and silently falls back to gob reflection for
// any body type without one — correct, but it surrenders exactly the
// allocation and throughput budget the codec layer exists to win, and
// nothing at runtime makes the regression visible. This analyzer flags
// every type a package registers on the wire (rpc.Register) without also
// installing its binary codec (rpc.RegisterCodec), so a new protocol
// message cannot land half-registered.
//
// Test files are exempt: tests deliberately run gob-only types through
// the fallback path.
package codeccomplete

import (
	"go/ast"
	"go/types"
	"sort"

	"leime/internal/analysis"
)

// RPCPaths names the import paths recognized as "the rpc layer"; the bare
// "rpc" entry lets analysistest fixtures model it without the full module.
var RPCPaths = []string{"leime/internal/rpc", "rpc"}

// Analyzer flags wire-registered message types missing a binary codec.
var Analyzer = &analysis.Analyzer{
	Name: "codeccomplete",
	Doc:  "every wire-registered message type must also register a binary codec",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	// site remembers where each type was gob-registered, for the report
	// position; coded marks types that also got a binary codec.
	registered := map[types.Object]ast.Expr{}
	coded := map[types.Object]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch rpcCallee(pass, call.Fun) {
			case "Register":
				if len(call.Args) == 1 {
					if obj := prototypeType(pass, call.Args[0]); obj != nil {
						if _, seen := registered[obj]; !seen {
							registered[obj] = call.Args[0]
						}
					}
				}
			case "RegisterCodec":
				if len(call.Args) >= 2 {
					if obj := prototypeType(pass, call.Args[1]); obj != nil {
						coded[obj] = true
					}
				}
			}
			return true
		})
	}
	var missing []types.Object
	for obj := range registered {
		if !coded[obj] {
			missing = append(missing, obj)
		}
	}
	// Deterministic report order regardless of map iteration.
	sort.Slice(missing, func(i, j int) bool {
		return registered[missing[i]].Pos() < registered[missing[j]].Pos()
	})
	for _, obj := range missing {
		pass.Reportf(registered[obj].Pos(),
			"%s is registered on the wire without a binary codec; it rides the gob reflection fallback — add an rpc.RegisterCodec entry to keep the protocol set closed",
			obj.Name())
	}
	return nil, nil
}

// rpcCallee returns the function name when fun is a call into the rpc
// layer — a selector on an imported rpc package, or a bare identifier
// inside the rpc package itself — and "" otherwise.
func rpcCallee(pass *analysis.Pass, fun ast.Expr) string {
	switch x := fun.(type) {
	case *ast.SelectorExpr:
		id, ok := x.X.(*ast.Ident)
		if !ok {
			return ""
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok || !isRPCPath(pkg.Imported().Path()) {
			return ""
		}
		return x.Sel.Name
	case *ast.Ident:
		if isRPCPath(pass.Pkg.Path()) {
			return x.Name
		}
	}
	return ""
}

// prototypeType resolves the registered prototype expression (T{} or
// &T{}) to the type's object; nil when the argument is not a literal
// prototype the analyzer can see through.
func prototypeType(pass *analysis.Pass, e ast.Expr) types.Object {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var id *ast.Ident
	switch t := lit.Type.(type) {
	case *ast.Ident:
		id = t
	case *ast.SelectorExpr:
		id = t.Sel
	default:
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

func isRPCPath(path string) bool {
	for _, p := range RPCPaths {
		if path == p {
			return true
		}
	}
	return false
}
