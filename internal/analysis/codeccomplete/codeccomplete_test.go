package codeccomplete_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/codeccomplete"
)

func TestCodecComplete(t *testing.T) {
	analysistest.Run(t, "testdata", codeccomplete.Analyzer, "msgs")
}
