// Package wirefrozen freezes the binary wire protocol. Codec IDs and the
// encoded field order/types behind them are wire contract (DESIGN.md §13):
// a reused ID, a reordered field, or a changed field type silently
// misparses on any peer built from a different commit. The analyzer
// extracts every rpc.RegisterCodec call, fingerprints the ordered encoder
// operations of its encode function (inlining same-package helpers such as
// encodeModel), and compares the result against the committed golden
// manifest (wire.manifest at the module root).
//
// Append-only evolution is the only pass: a brand-new ID may be appended
// (regenerate the manifest with -fix or `leimevet -write-manifest`), but an
// ID rebound to a different type is an error with no machine fix, and a
// changed signature fails until the manifest is consciously regenerated —
// the manifest diff is what the reviewer sees.
package wirefrozen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"sort"
	"strconv"
	"strings"

	"leime/internal/analysis"
)

// ManifestPath locates the golden manifest the analyzer checks against.
// The driver sets it to <module root>/wire.manifest; empty disables the
// manifest comparison (extraction-only).
var ManifestPath string

// Analyzer checks rpc.RegisterCodec calls against the wire.manifest.
var Analyzer = &analysis.Analyzer{
	Name: "wirefrozen",
	Doc:  "codec IDs and encoded field order are frozen by wire.manifest; append-only evolution",
	Run:  run,
}

// Entry is one frozen codec: its wire ID, the registered message type, and
// the fingerprint of its encode function.
type Entry struct {
	// ID is the uint16 wire codec ID.
	ID uint64
	// Type is the package-path-qualified message type.
	Type string
	// Hash is the first 12 hex digits of sha256(Sig).
	Hash string
	// Sig is the human-readable ordered encoder-operation signature.
	Sig string

	pos ast.Node // registration call, set on extraction only
}

// pkgPath returns the package-path part of the entry's type string.
func (e Entry) pkgPath() string {
	t := e.Type
	slash := strings.LastIndex(t, "/")
	dot := strings.Index(t[slash+1:], ".")
	if dot < 0 {
		return ""
	}
	return t[:slash+1+dot]
}

func run(pass *analysis.Pass) (any, error) {
	regs := Extract(pass)
	if len(regs) == 0 || ManifestPath == "" {
		return nil, nil
	}
	manifest, err := LoadManifest(ManifestPath)
	if err != nil {
		return nil, err
	}
	byID := map[uint64]Entry{}
	for _, m := range manifest {
		byID[m.ID] = m
	}

	// An ID reused for a different type is never machine-fixable; when one
	// is present, regenerating the manifest would launder the conflict, so
	// every fix in this package is withheld.
	fixable := true
	seen := map[uint64]Entry{}
	for _, r := range regs {
		if prev, dup := seen[r.ID]; dup && prev.Type != r.Type {
			fixable = false
		}
		seen[r.ID] = r
		if m, ok := byID[r.ID]; ok && m.Type != r.Type {
			fixable = false
		}
	}

	regen := func() []analysis.SuggestedFix {
		if !fixable {
			return nil
		}
		merged := MergeManifest(manifest, map[string]bool{pass.Pkg.Path(): true}, regs)
		return []analysis.SuggestedFix{{
			Message:   "regenerate wire.manifest",
			TextEdits: []analysis.TextEdit{{File: ManifestPath, NewText: FormatManifest(merged)}},
		}}
	}

	seen = map[uint64]Entry{}
	for _, r := range regs {
		if prev, dup := seen[r.ID]; dup && prev.Type != r.Type {
			pass.Report(analysis.Diagnostic{
				Pos:     r.pos.Pos(),
				Message: fmt.Sprintf("codec ID %d registered twice: for %s and %s; wire IDs are frozen, pick a fresh one", r.ID, prev.Type, r.Type),
			})
			continue
		}
		seen[r.ID] = r
		m, ok := byID[r.ID]
		switch {
		case !ok:
			pass.Report(analysis.Diagnostic{
				Pos:            r.pos.Pos(),
				Message:        fmt.Sprintf("codec ID %d (%s) is not in wire.manifest; if this is a legitimately appended ID, regenerate the manifest with -fix", r.ID, r.Type),
				SuggestedFixes: regen(),
			})
		case m.Type != r.Type:
			pass.Report(analysis.Diagnostic{
				Pos:     r.pos.Pos(),
				Message: fmt.Sprintf("codec ID %d reused: wire.manifest binds it to %s but the code registers %s; IDs identify the type on the wire and must never be rebound", r.ID, m.Type, r.Type),
			})
		case m.Hash != r.Hash:
			pass.Report(analysis.Diagnostic{
				Pos: r.pos.Pos(),
				Message: fmt.Sprintf("wire signature of codec ID %d (%s) changed: manifest has %q, code encodes %q; field reorders and type changes break peers — append a new ID, or regenerate the manifest with -fix if this change is deliberate",
					r.ID, r.Type, m.Sig, r.Sig),
				SuggestedFixes: regen(),
			})
		}
	}
	for _, m := range manifest {
		if m.pkgPath() != pass.Pkg.Path() {
			continue
		}
		if _, ok := seen[m.ID]; !ok {
			pass.Report(analysis.Diagnostic{
				Pos:            pass.Files[0].Package,
				Message:        fmt.Sprintf("wire.manifest entry for codec ID %d (%s) has no rpc.RegisterCodec call in %s; removing a frozen codec orphans peers — regenerate the manifest with -fix if the retirement is deliberate", m.ID, m.Type, pass.Pkg.Path()),
				SuggestedFixes: regen(),
			})
		}
	}
	return nil, nil
}

// Extract fingerprints every rpc.RegisterCodec call in the package's
// non-test files, in source order.
func Extract(pass *analysis.Pass) []Entry {
	decls := packageFuncs(pass)
	var out []Entry
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRegisterCodec(pass, call) || len(call.Args) < 4 {
				return true
			}
			id, ok := constUint(pass, call.Args[0])
			if !ok {
				pass.Reportf(call.Pos(), "rpc.RegisterCodec called with a non-constant codec ID; wire IDs must be frozen constants")
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[1]]
			if !ok || tv.Type == nil {
				return true
			}
			x := &extractor{pass: pass, funcs: decls}
			sig := x.funcSig(call.Args[2])
			sum := sha256.Sum256([]byte(sig))
			out = append(out, Entry{
				ID:   id,
				Type: types.TypeString(tv.Type, nil),
				Hash: hex.EncodeToString(sum[:])[:12],
				Sig:  sig,
				pos:  call,
			})
			return true
		})
	}
	return out
}

// isRegisterCodec reports whether call invokes rpc.RegisterCodec (matched
// by function name and an rpc-suffixed package path, so fixtures under a
// bare "rpc" package qualify).
func isRegisterCodec(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "RegisterCodec" || fn.Pkg() == nil {
		return false
	}
	return isRPCPath(fn.Pkg().Path())
}

func isRPCPath(path string) bool {
	return path == "rpc" || strings.HasSuffix(path, "/rpc")
}

// packageFuncs indexes the package's function declarations by object, so
// encode helpers named at registration sites can be inlined.
func packageFuncs(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

func constUint(pass *analysis.Pass, e ast.Expr) (uint64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	return v, ok
}

// extractor renders an encode function's body as the ordered sequence of
// wire operations it performs.
type extractor struct {
	pass  *analysis.Pass
	funcs map[*types.Func]*ast.FuncDecl
	depth int
}

// funcSig fingerprints the function expression passed as the encode
// argument: a literal's body, or a named same-package function's body.
func (x *extractor) funcSig(e ast.Expr) string {
	switch fn := e.(type) {
	case *ast.FuncLit:
		return strings.Join(x.stmts(fn.Body.List), " ")
	case *ast.Ident:
		if obj, ok := x.pass.TypesInfo.Uses[fn].(*types.Func); ok {
			if decl := x.funcs[obj]; decl != nil && decl.Body != nil {
				return strings.Join(x.stmts(decl.Body.List), " ")
			}
		}
	}
	return "?opaque"
}

// stmts renders a statement list: encoder method calls in order, with
// control flow (loops, branches) bracketed so reordering or restructuring
// the encoded stream always changes the signature. Statements that do not
// reach the encoder (sorting keys, locals) are invisible.
func (x *extractor) stmts(list []ast.Stmt) []string {
	var out []string
	for _, s := range list {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if op, ok := x.callOp(st.X); ok {
				out = append(out, op)
			}
		case *ast.BlockStmt:
			out = append(out, x.stmts(st.List)...)
		case *ast.RangeStmt:
			if inner := x.stmts(st.Body.List); len(inner) > 0 {
				out = append(out, "range("+canon(st.X)+"){"+strings.Join(inner, " ")+"}")
			}
		case *ast.ForStmt:
			if inner := x.stmts(st.Body.List); len(inner) > 0 {
				out = append(out, "for{"+strings.Join(inner, " ")+"}")
			}
		case *ast.IfStmt:
			thenOps := x.stmts(st.Body.List)
			var elseOps []string
			if st.Else != nil {
				elseOps = x.stmts([]ast.Stmt{st.Else})
			}
			if len(thenOps) > 0 || len(elseOps) > 0 {
				op := "if{" + strings.Join(thenOps, " ") + "}"
				if len(elseOps) > 0 {
					op += "else{" + strings.Join(elseOps, " ") + "}"
				}
				out = append(out, op)
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			var body []ast.Stmt
			if sw, ok := st.(*ast.SwitchStmt); ok {
				body = sw.Body.List
			} else {
				body = st.(*ast.TypeSwitchStmt).Body.List
			}
			var cases []string
			for _, c := range body {
				if cc, ok := c.(*ast.CaseClause); ok {
					if inner := x.stmts(cc.Body); len(inner) > 0 {
						cases = append(cases, "case{"+strings.Join(inner, " ")+"}")
					}
				}
			}
			if len(cases) > 0 {
				out = append(out, "switch{"+strings.Join(cases, " ")+"}")
			}
		}
	}
	return out
}

// callOp renders one expression statement: an Encoder method call becomes
// Method(args...), a call into a same-package helper that takes an Encoder
// is inlined anonymously (renaming a helper must not change the wire
// signature), anything else is invisible.
func (x *extractor) callOp(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := x.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isEncoderType(sig.Recv().Type()) {
				args := make([]string, len(call.Args))
				for i, a := range call.Args {
					args[i] = canon(a)
				}
				return fn.Name() + "(" + strings.Join(args, ",") + ")", true
			}
		}
	}
	if fn := calleeFunc(x.pass, call); fn != nil && fn.Pkg() == x.pass.Pkg && hasEncoderParam(fn) {
		if decl := x.funcs[fn]; decl != nil && decl.Body != nil && x.depth < 8 {
			x.depth++
			inner := x.stmts(decl.Body.List)
			x.depth--
			if len(inner) > 0 {
				return "{" + strings.Join(inner, " ") + "}", true
			}
		}
	}
	return "", false
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func hasEncoderParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isEncoderType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isEncoderType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Encoder" && obj.Pkg() != nil && isRPCPath(obj.Pkg().Path())
}

// canon renders an expression with local receiver/value names stripped:
// r.Model and v.(RegisterResp).Model both become Model, so renaming the
// closure's locals never perturbs the signature.
func canon(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := canonBase(v.X)
		if base == "" {
			return v.Sel.Name
		}
		return base + "." + v.Sel.Name
	case *ast.TypeAssertExpr:
		return canon(v.X)
	case *ast.CallExpr:
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = canon(a)
		}
		return canon(v.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.BasicLit:
		return v.Value
	case *ast.IndexExpr:
		return canon(v.X) + "[" + canon(v.Index) + "]"
	case *ast.UnaryExpr:
		return canon(v.X)
	case *ast.StarExpr:
		return canon(v.X)
	case *ast.ParenExpr:
		return canon(v.X)
	case *ast.BinaryExpr:
		return canon(v.X) + v.Op.String() + canon(v.Y)
	case *ast.ArrayType, *ast.MapType, *ast.StructType, *ast.InterfaceType, *ast.FuncType:
		return "T"
	}
	return "?"
}

// canonBase is canon for a selector's base: plain locals and type
// assertions over them vanish, deeper paths keep their tail.
func canonBase(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return ""
	case *ast.TypeAssertExpr:
		return canonBase(v.X)
	case *ast.ParenExpr:
		return canonBase(v.X)
	default:
		return canon(v)
	}
}

// LoadManifest reads and parses the manifest at path; a missing file is an
// empty manifest (first generation), not an error.
func LoadManifest(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return ParseManifest(data)
}

// ParseManifest decodes manifest bytes: one tab-separated
// id/type/hash/signature entry per line, #-comments and blanks skipped.
func ParseManifest(data []byte) ([]Entry, error) {
	var out []Entry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("wirefrozen: manifest line %d: want 4 tab-separated fields, got %d", i+1, len(parts))
		}
		id, err := strconv.ParseUint(parts[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("wirefrozen: manifest line %d: bad codec ID %q", i+1, parts[0])
		}
		out = append(out, Entry{ID: id, Type: parts[1], Hash: parts[2], Sig: parts[3]})
	}
	return out, nil
}

// FormatManifest renders entries as manifest bytes, sorted by ID.
func FormatManifest(entries []Entry) []byte {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ID != sorted[j].ID {
			return sorted[i].ID < sorted[j].ID
		}
		return sorted[i].Type < sorted[j].Type
	})
	var b strings.Builder
	b.WriteString("# wire.manifest — frozen rpc codec registry (wirefrozen analyzer).\n")
	b.WriteString("# Codec IDs and encoded field order are wire contract: append-only.\n")
	b.WriteString("# Regenerate with: go run ./cmd/leimevet -write-manifest ./...\n")
	b.WriteString("# id\ttype\tsha256[:12]\tsignature\n")
	for _, e := range sorted {
		fmt.Fprintf(&b, "%d\t%s\t%s\t%s\n", e.ID, e.Type, e.Hash, e.Sig)
	}
	return []byte(b.String())
}

// ExtractPackages collects registrations from every loaded package,
// discarding diagnostics: it is the regeneration path (leimevet
// -write-manifest), where the manifest is being rebuilt rather than
// checked.
func ExtractPackages(pkgs []*analysis.Package) []Entry {
	var out []Entry
	for _, pkg := range pkgs {
		pass := &analysis.Pass{
			Analyzer:  Analyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report:    func(analysis.Diagnostic) {},
		}
		out = append(out, Extract(pass)...)
	}
	return out
}

// MergeManifest replaces the owned packages' entries with the freshly
// extracted ones, keeping foreign entries (packages outside this analysis
// run) frozen as-is.
func MergeManifest(existing []Entry, owned map[string]bool, regs []Entry) []Entry {
	var out []Entry
	for _, e := range existing {
		if !owned[e.pkgPath()] {
			out = append(out, e)
		}
	}
	return append(out, regs...)
}
