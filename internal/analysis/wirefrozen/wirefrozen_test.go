package wirefrozen

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"leime/internal/analysis"
	"leime/internal/analysis/analysistest"
)

// loadFixture loads one fixture package from testdata/src.
func loadFixture(t *testing.T, path string) *analysis.Package {
	t.Helper()
	loader := analysis.NewLoader()
	loader.Overlay = filepath.Join("testdata", "src")
	pkgs, err := loader.Load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	return pkgs[0]
}

// extractFixture fingerprints a fixture package's registrations.
func extractFixture(t *testing.T, path string) []Entry {
	t.Helper()
	pkg := loadFixture(t, path)
	pass := &analysis.Pass{
		Analyzer:  Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
		Report:    func(analysis.Diagnostic) {},
	}
	return Extract(pass)
}

// withManifest points ManifestPath at a temp manifest holding entries for
// the duration of the test.
func withManifest(t *testing.T, entries []Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wire.manifest")
	if entries != nil {
		if err := os.WriteFile(path, FormatManifest(entries), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prev := ManifestPath
	ManifestPath = path
	t.Cleanup(func() { ManifestPath = prev })
	return path
}

// TestCleanFixture is the negative case: a manifest generated from the
// code it describes yields no diagnostics.
func TestCleanFixture(t *testing.T) {
	withManifest(t, extractFixture(t, "wireok"))
	analysistest.Run(t, "testdata", Analyzer, "wireok")
}

// TestViolations synthesizes a manifest that disagrees with the wirebad
// fixture in every detectable way: a rebound ID, a changed signature, an
// unrecorded appendix, and an orphaned entry.
func TestViolations(t *testing.T) {
	entries := extractFixture(t, "wirebad")
	var manifest []Entry
	for _, e := range entries {
		switch e.ID {
		case 1:
			e.Type = "wirebad.OldReq" // rebinds ID 1
			manifest = append(manifest, e)
		case 2:
			e.Hash = "0000deadbeef" // drifted signature
			e.Sig = "String(A) Uvarint(B)"
			manifest = append(manifest, e)
		case 3:
			// dropped: the code's registration becomes an unrecorded append
		case 5:
			if len(manifest) == 0 || manifest[len(manifest)-1].ID != 5 {
				manifest = append(manifest, e) // keep the first, the dup is in-code
			}
		}
	}
	manifest = append(manifest, Entry{ID: 4, Type: "wirebad.GoneReq", Hash: "0", Sig: "Int(N)"})
	withManifest(t, manifest)
	analysistest.Run(t, "testdata", Analyzer, "wirebad")
}

// TestManifestRoundTrip pins Format/Parse as inverses.
func TestManifestRoundTrip(t *testing.T) {
	entries := extractFixture(t, "wireok")
	parsed, err := ParseManifest(FormatManifest(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(entries) {
		t.Fatalf("round trip: got %d entries, want %d", len(parsed), len(entries))
	}
	for i := range parsed {
		e, p := entries[i], parsed[i]
		e.pos = nil
		if !reflect.DeepEqual(e, p) {
			t.Errorf("entry %d: round trip %+v != extracted %+v", i, p, e)
		}
	}
}

// TestRegenerateFixCreatesManifest covers the -fix regeneration path end
// to end: with no manifest on disk every registration is an unrecorded
// append carrying an identical whole-file regeneration fix; applying the
// fixes creates the manifest, and a re-run is clean.
func TestRegenerateFixCreatesManifest(t *testing.T) {
	path := withManifest(t, nil) // ManifestPath set, no file written
	pkg := loadFixture(t, "wireok")

	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("missing manifest: got %d findings, want 3 (one per registration): %v", len(findings), findings)
	}
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) == 0 {
			t.Fatalf("finding %v carries no regeneration fix", f)
		}
	}

	fixed, err := analysis.ApplyFixes(findings)
	if err != nil {
		t.Fatalf("applying regeneration fixes: %v", err)
	}
	if fixed != 3 {
		t.Fatalf("ApplyFixes fixed %d findings, want 3", fixed)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("manifest not created: %v", err)
	}

	findings, err = analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("after regeneration, want clean run, got: %v", findings)
	}
}
