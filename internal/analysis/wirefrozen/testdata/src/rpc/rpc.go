// Package rpc is the fixture stand-in for leime/internal/rpc: just enough
// surface for wirefrozen to resolve RegisterCodec calls and Encoder
// methods.
package rpc

// Encoder mirrors the real append-only wire encoder.
type Encoder struct{ buf []byte }

func (e *Encoder) String(s string)   {}
func (e *Encoder) Bytes(p []byte)    {}
func (e *Encoder) Bool(b bool)       {}
func (e *Encoder) Byte(b byte)       {}
func (e *Encoder) Int(v int)         {}
func (e *Encoder) Uvarint(v uint64)  {}
func (e *Encoder) Varint(v int64)    {}
func (e *Encoder) Float64(f float64) {}

// Decoder mirrors the real sticky-error wire decoder.
type Decoder struct{}

func (d *Decoder) String() string   { return "" }
func (d *Decoder) Bytes() []byte    { return nil }
func (d *Decoder) Bool() bool       { return false }
func (d *Decoder) Int() int         { return 0 }
func (d *Decoder) Uvarint() uint64  { return 0 }
func (d *Decoder) Varint() int64    { return 0 }
func (d *Decoder) Float64() float64 { return 0 }

// EncodeFunc and DecodeFunc mirror the registry function types.
type EncodeFunc func(e *Encoder, v any)
type DecodeFunc func(d *Decoder) (any, error)

// RegisterCodec mirrors the registry entry point.
func RegisterCodec(id uint16, prototype any, enc EncodeFunc, dec DecodeFunc) {}
