// Package wireok is the clean fixture: every registration matches the
// golden manifest the test points ManifestPath at.
package wireok

import "rpc"

type PingReq struct {
	DeviceID string
	Seq      uint64
}

type PingResp struct {
	Seq    uint64
	Healthy bool
}

type BatchReq struct {
	IDs    []string
	Loads  [3]float64
}

// encodeLoads is an encode helper; wirefrozen inlines it anonymously, so
// renaming it must not change the wire signature.
func encodeLoads(e *rpc.Encoder, loads [3]float64) {
	for _, v := range loads {
		e.Float64(v)
	}
}

func registerAll() {
	rpc.RegisterCodec(1, PingReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(PingReq)
			e.String(r.DeviceID)
			e.Uvarint(r.Seq)
		},
		func(d *rpc.Decoder) (any, error) {
			var r PingReq
			r.DeviceID = d.String()
			r.Seq = d.Uvarint()
			return r, nil
		})
	rpc.RegisterCodec(2, PingResp{},
		func(e *rpc.Encoder, v any) {
			e.Uvarint(v.(PingResp).Seq)
			e.Bool(v.(PingResp).Healthy)
		},
		func(d *rpc.Decoder) (any, error) {
			return PingResp{Seq: d.Uvarint(), Healthy: d.Bool()}, nil
		})
	rpc.RegisterCodec(3, BatchReq{},
		func(e *rpc.Encoder, v any) {
			r := v.(BatchReq)
			e.Uvarint(uint64(len(r.IDs)))
			for _, id := range r.IDs {
				e.String(id)
			}
			encodeLoads(e, r.Loads)
		},
		func(d *rpc.Decoder) (any, error) {
			var r BatchReq
			n := d.Uvarint()
			for i := uint64(0); i < n; i++ {
				r.IDs = append(r.IDs, d.String())
			}
			for i := range r.Loads {
				r.Loads[i] = d.Float64()
			}
			return r, nil
		})
}
