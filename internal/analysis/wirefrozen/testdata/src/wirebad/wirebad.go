// Package wirebad violates the manifest in every detectable way: a reused
// ID, a changed signature, an unrecorded appendix, an orphaned manifest
// entry, and an in-code duplicate. The test synthesizes the manifest it is
// checked against (see wirefrozen_test.go).
package wirebad // want `wire.manifest entry for codec ID 4 \(wirebad.GoneReq\) has no rpc.RegisterCodec`

import "rpc"

type NewReq struct{ Name string }

type SwapReq struct {
	A string
	B uint64
}

type FreshReq struct{ N int }

type DupA struct{ X int }
type DupB struct{ Y int }

func registerAll() {
	rpc.RegisterCodec(1, NewReq{}, // want `codec ID 1 reused: wire.manifest binds it to wirebad.OldReq but the code registers wirebad.NewReq`
		func(e *rpc.Encoder, v any) {
			e.String(v.(NewReq).Name)
		},
		func(d *rpc.Decoder) (any, error) {
			return NewReq{Name: d.String()}, nil
		})
	rpc.RegisterCodec(2, SwapReq{}, // want `wire signature of codec ID 2 \(wirebad.SwapReq\) changed`
		func(e *rpc.Encoder, v any) {
			r := v.(SwapReq)
			e.Uvarint(r.B) // swapped against the manifest's String-then-Uvarint
			e.String(r.A)
		},
		func(d *rpc.Decoder) (any, error) {
			var r SwapReq
			r.B = d.Uvarint()
			r.A = d.String()
			return r, nil
		})
	rpc.RegisterCodec(3, FreshReq{}, // want `codec ID 3 \(wirebad.FreshReq\) is not in wire.manifest`
		func(e *rpc.Encoder, v any) {
			e.Int(v.(FreshReq).N)
		},
		func(d *rpc.Decoder) (any, error) {
			return FreshReq{N: d.Int()}, nil
		})
	rpc.RegisterCodec(5, DupA{},
		func(e *rpc.Encoder, v any) {
			e.Int(v.(DupA).X)
		},
		func(d *rpc.Decoder) (any, error) {
			return DupA{X: d.Int()}, nil
		})
	rpc.RegisterCodec(5, DupB{}, // want `codec ID 5 registered twice: for wirebad.DupA and wirebad.DupB`
		func(e *rpc.Encoder, v any) {
			e.Int(v.(DupB).Y)
		},
		func(d *rpc.Decoder) (any, error) {
			return DupB{Y: d.Int()}, nil
		})
}
