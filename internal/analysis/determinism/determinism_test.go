package determinism_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "pure", "maporder")
}
