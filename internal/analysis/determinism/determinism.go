// Package determinism protects the repo's bit-reproducibility guarantees.
// The pin tests (byte-identical simulator output, zero-value-is-exact-FIFO,
// solver/sim cross-checks) only hold if the model and simulation packages
// never read wall clocks or shared randomness, and if nothing anywhere
// lets Go's randomized map iteration order leak into output ordering.
//
// Two invariant tiers:
//
//   - In the pure packages (PurePaths): no time.Now/Since/Sleep/timers, and
//     no math/rand package-level functions — randomness must flow through a
//     seed-injected *rand.Rand so the same seed replays the same run.
//   - Everywhere: a range over a map must not feed an ordered sink — no
//     appends to outer slices, no conditional returns of loop-derived
//     values, no formatted output from inside the loop body. Iteration
//     order varies run to run, so each of those makes output depend on the
//     map's hash seed.
//
// _test.go files are exempt: tests own their clocks and frequently iterate
// maps to assert set membership.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"leime/internal/analysis"
)

// PurePaths lists the packages that must stay free of wall clocks and
// global randomness. Simulation, solver, model, schedule-synthesis and
// metric code is pure; the runtime/rpc/telemetry substrate and the live
// load driver are wall-clock by nature and are covered only by the
// map-order tier.
var PurePaths = []string{
	"leime/internal/cluster",
	"leime/internal/confidence",
	"leime/internal/control",
	"leime/internal/dataset",
	"leime/internal/exitsetting",
	"leime/internal/loadgen",
	"leime/internal/metrics",
	"leime/internal/model",
	"leime/internal/offload",
	"leime/internal/partition",
	"leime/internal/scenario",
	"leime/internal/sim",
	"leime/internal/tensor",
	"leime/internal/trace",
	// "pure" is the analysistest fixture stand-in for this set.
	"pure",
}

// Analyzer flags wall-clock and unseeded-randomness use in pure packages
// and order-dependent map iteration everywhere.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "pure packages must be bit-deterministic; map iteration must not order output",
	Run:  run,
}

// wallClock names the time package functions that read or wait on the wall
// clock. Duration arithmetic (time.Duration, constants) stays legal.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandOK names the math/rand package-level functions that construct
// explicit sources rather than consulting the shared global one.
var seededRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func run(pass *analysis.Pass) (any, error) {
	pure := isPure(pass.Pkg.Path())
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if pure {
			checkPure(pass, f)
		}
		checkMapOrder(pass, f)
	}
	return nil, nil
}

func isPure(path string) bool {
	for _, p := range PurePaths {
		if path == p {
			return true
		}
	}
	return false
}

// checkPure reports wall-clock reads and global-rand calls in one file of a
// pure package.
func checkPure(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgName, ok := importedPackage(pass, sel)
		if !ok {
			return true
		}
		// Only function references matter: naming the rand.Rand or
		// time.Duration types is how seed injection is written down.
		if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
			return true
		}
		switch {
		case pkgName == "time" && wallClock[sel.Sel.Name]:
			pass.Reportf(sel.Pos(), "pure package %s reads the wall clock via time.%s; thread model time explicitly", pass.Pkg.Path(), sel.Sel.Name)
		case pkgName == "math/rand" && !seededRandOK[sel.Sel.Name]:
			pass.Reportf(sel.Pos(), "pure package %s uses the global rand source via rand.%s; inject a seeded *rand.Rand", pass.Pkg.Path(), sel.Sel.Name)
		}
		return true
	})
}

// importedPackage resolves a selector's base to an imported package name
// ("time", "math/rand"), or reports false for ordinary field/method access.
func importedPackage(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return "", false
	}
	pkg, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pkg.Imported().Path(), true
}

// checkMapOrder flags range-over-map loops whose body feeds an ordered
// sink: appending to a slice declared outside the loop, returning a value
// derived from the iteration variables, or writing formatted output. The
// collect-then-sort idiom stays legal: an append whose target is passed to
// a sort/slices call later in the same statement list is not reported.
func checkMapOrder(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, stmt := range list {
			if rng, ok := stmt.(*ast.RangeStmt); ok && isMapRange(pass, rng) {
				checkOneMapRange(pass, rng, list[i+1:])
			}
		}
		return true
	})
}

func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// checkOneMapRange inspects one map-range body; rest is the remainder of
// the enclosing statement list, consulted for the sorted-afterwards
// exemption.
func checkOneMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	loopVars := rangeVars(pass, rng)
	ast.Inspect(rng.Body, func(m ast.Node) bool {
		switch stmt := m.(type) {
		case *ast.RangeStmt:
			// A nested range over another map gets its own visit from the
			// enclosing statement-list walk; skip it here so its body is
			// not double-reported. Ranges over slices still descend — an
			// append inside them leaks the outer map's order.
			if stmt != rng && isMapRange(pass, stmt) {
				return false
			}
		case *ast.AssignStmt:
			for _, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || appendsToLoopLocal(pass, stmt, rng) {
					continue
				}
				if sortedAfter(pass, rest, appendTarget(pass, stmt)) {
					continue
				}
				pass.Reportf(stmt.Pos(), "append inside range over map: iteration order is random, so the slice order changes run to run; collect and sort the keys first")
			}
		case *ast.ReturnStmt:
			if referencesAny(pass, stmt, loopVars) {
				pass.Reportf(stmt.Pos(), "return of a loop-derived value inside range over map: which element wins depends on random iteration order; iterate sorted keys instead")
			}
		case *ast.CallExpr:
			if name, ok := printedOutput(pass, stmt); ok {
				pass.Reportf(stmt.Pos(), "%s inside range over map writes output in random iteration order; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// appendTarget resolves the object a single-target append assigns to.
func appendTarget(pass *analysis.Pass, stmt *ast.AssignStmt) types.Object {
	if len(stmt.Lhs) != 1 {
		return nil
	}
	id, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// sortedAfter reports whether a later statement in the same list passes
// obj to the sort or slices package, which launders the random order away.
func sortedAfter(pass *analysis.Pass, rest []ast.Stmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := importedPackage(pass, sel)
			if !ok || (pkg != "sort" && pkg != "slices") {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// rangeVars collects the key/value objects a range statement binds.
func rangeVars(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			out[obj] = true // "for k = range m" re-using an outer variable
		}
	}
	return out
}

// referencesAny reports whether node mentions any of the given objects.
func referencesAny(pass *analysis.Pass, node ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// appendsToLoopLocal reports whether the append target was declared inside
// the range body itself — those appends cannot leak ordering out.
func appendsToLoopLocal(pass *analysis.Pass, stmt *ast.AssignStmt, rng *ast.RangeStmt) bool {
	if len(stmt.Lhs) != 1 {
		return false
	}
	id, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && rng.Body.Pos() <= obj.Pos() && obj.Pos() < rng.Body.End()
}

// printedOutput reports whether call writes human-ordered output: fmt
// printing or builder/buffer writes.
func printedOutput(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if pkg, ok := importedPackage(pass, sel); ok {
		if pkg == "fmt" && strings.HasPrefix(sel.Sel.Name, "Print") {
			return "fmt." + sel.Sel.Name, true
		}
		if pkg == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") {
			return "fmt." + sel.Sel.Name, true
		}
		return "", false
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	recv := selection.Recv()
	for _, named := range []string{"strings.Builder", "bytes.Buffer"} {
		if strings.TrimPrefix(recv.String(), "*") == named && strings.HasPrefix(sel.Sel.Name, "Write") {
			return named + "." + sel.Sel.Name, true
		}
	}
	return "", false
}
