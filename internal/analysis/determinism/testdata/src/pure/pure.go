// Package pure is a determinism fixture modeling a pure package.
package pure

import (
	"math/rand"
	"time"
)

// Tick reads the wall clock.
func Tick() time.Time {
	return time.Now() // want `reads the wall clock via time\.Now`
}

// Wait sleeps on the wall clock.
func Wait() {
	time.Sleep(time.Millisecond) // want `reads the wall clock via time\.Sleep`
}

// Span is legal: duration arithmetic never consults a clock.
func Span(d time.Duration) time.Duration { return 2 * d }

// Draw consults the shared global source.
func Draw() float64 {
	return rand.Float64() // want `global rand source via rand\.Float64`
}

// Seeded constructs an explicit source; legal.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Use consumes an injected generator; naming the rand.Rand type is legal.
func Use(rng *rand.Rand) float64 { return rng.Float64() }
