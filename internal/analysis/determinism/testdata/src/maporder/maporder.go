// Package maporder is a determinism fixture for map-iteration ordering.
package maporder

import (
	"fmt"
	"sort"
)

// Keys leaks map order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range over map`
	}
	return out
}

// SortedKeys collects then sorts; the idiomatic fix is legal.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// First returns whichever element iteration happens to visit first.
func First(m map[string]int) (string, bool) {
	for k := range m {
		return k, true // want `return of a loop-derived value`
	}
	return "", false
}

// Dump prints entries in random order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

// Sum is order-independent; legal.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Grouped appends to a slice declared inside the loop body; legal.
func Grouped(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			local = append(local, v)
		}
		n += len(local)
	}
	return n
}

// Sanctioned documents a deliberate exception; the directive suppresses
// the finding, proving the ignore path works.
func Sanctioned(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore determinism the sole caller sorts the result before use
		out = append(out, k)
	}
	return out
}
