package analysis

import (
	"fmt"
	"os"
	"sort"
)

// offsetEdit is one TextEdit resolved to byte offsets within a file.
type offsetEdit struct {
	start, end int
	text       []byte
}

// ApplyFixes applies the first SuggestedFix of every finding that carries
// one, rewriting files in place. It returns the number of findings fixed.
// Overlapping edits in one file abort with an error before anything is
// written, so a partial application never reaches disk. Whole-file edits
// (TextEdit.File set) replace or create the named file; several findings
// may carry the same whole-file content (they collapse to one write), but
// divergent contents for one file abort.
func ApplyFixes(findings []Finding) (int, error) {
	perFile := map[string][]offsetEdit{}
	whole := map[string][]byte{}
	fixed := 0
	var filenames, wholeNames []string
	for _, f := range findings {
		if len(f.Diag.SuggestedFixes) == 0 {
			continue
		}
		fixed++
		for _, edit := range f.Diag.SuggestedFixes[0].TextEdits {
			if edit.File != "" {
				prev, ok := whole[edit.File]
				if ok && string(prev) != string(edit.NewText) {
					return 0, fmt.Errorf("analysis: conflicting whole-file fixes for %s", edit.File)
				}
				if !ok {
					wholeNames = append(wholeNames, edit.File)
					whole[edit.File] = edit.NewText
				}
				continue
			}
			start := f.Pkg.Fset.Position(edit.Pos)
			end := f.Pkg.Fset.Position(edit.End)
			if end.Filename != start.Filename || end.Offset < start.Offset {
				return 0, fmt.Errorf("analysis: bad edit range %s..%s", start, end)
			}
			if len(perFile[start.Filename]) == 0 {
				filenames = append(filenames, start.Filename)
			}
			perFile[start.Filename] = append(perFile[start.Filename], offsetEdit{
				start: start.Offset, end: end.Offset, text: edit.NewText,
			})
		}
	}
	for _, name := range wholeNames {
		if len(perFile[name]) > 0 {
			return 0, fmt.Errorf("analysis: %s has both whole-file and ranged fixes", name)
		}
	}
	sort.Strings(filenames)
	for _, name := range filenames {
		edits := perFile[name]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].end > edits[i-1].start {
				return 0, fmt.Errorf("analysis: overlapping fixes in %s", name)
			}
		}
		data, err := os.ReadFile(name)
		if err != nil {
			return 0, err
		}
		for _, e := range edits {
			if e.end > len(data) {
				return 0, fmt.Errorf("analysis: edit past end of %s", name)
			}
			data = append(data[:e.start], append(append([]byte{}, e.text...), data[e.end:]...)...)
		}
		if err := os.WriteFile(name, data, 0o644); err != nil {
			return 0, err
		}
	}
	sort.Strings(wholeNames)
	for _, name := range wholeNames {
		if err := os.WriteFile(name, whole[name], 0o644); err != nil {
			return 0, err
		}
	}
	return fixed, nil
}
