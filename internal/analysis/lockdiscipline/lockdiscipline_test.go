package lockdiscipline_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "locks")
}
