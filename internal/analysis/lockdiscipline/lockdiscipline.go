// Package lockdiscipline keeps the runtime's mutexes away from blocking
// operations. The breaker/executor/telemetry paths share small mutex-guarded
// state; holding one of those locks across an RPC round trip, a channel
// operation, a sleep, or an executor submission turns a microsecond critical
// section into a convoy (or a deadlock once two such paths meet in opposite
// order). The analyzer tracks Lock/RLock…Unlock regions linearly through
// each function body — a deferred unlock holds to the end of the function,
// and a function whose name ends in "Locked" is analyzed as called with the
// lock already held — and reports any blocking operation inside a region:
//
//   - channel sends and receives, and select statements without a default
//   - time.Sleep
//   - rpc Client/ReliableClient Call* methods
//   - Executor Do/DoTimed/DoTimedCtx submissions
//   - sync.WaitGroup.Wait
//
// sync.Cond.Wait is exempt: it atomically releases the mutex it rides on.
// Function literals are analyzed as their own functions — code inside a
// deferred or spawned closure does not run under the enclosing region.
package lockdiscipline

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leime/internal/analysis"
)

// Analyzer flags blocking operations performed while a sync mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "no blocking operations (rpc calls, channel ops, sleeps, executor submissions) while holding a mutex",
	Run:  run,
}

// blockingMethods maps receiver type names to the method prefixes that
// block. Matching is by bare type name so analysistest fixtures can model
// the runtime's types without importing it.
var blockingMethods = map[string][]string{
	"Client":         {"Call"},
	"ReliableClient": {"Call"},
	"Executor":       {"Do"},
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.scanFunc(fn.Name.Name, fn.Body)
				}
			case *ast.FuncLit:
				// Every literal is scanned fresh here; enclosing scans skip
				// literal bodies, so each body is analyzed exactly once.
				c.scanFunc("", fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checker walks function bodies tracking which mutexes are held.
type checker struct {
	pass *analysis.Pass
}

// heldSet maps a mutex's rendered receiver expression ("e.mu") to the
// position that locked it.
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// any returns an arbitrary-but-deterministic held entry for messages.
func (h heldSet) any() (string, token.Pos) {
	best := ""
	for k := range h {
		if best == "" || k < best {
			best = k
		}
	}
	return best, h[best]
}

// scanFunc analyzes one function body. Functions named *Locked are treated
// as entered with their receiver's lock held.
func (c *checker) scanFunc(name string, body *ast.BlockStmt) {
	held := heldSet{}
	if strings.HasSuffix(name, "Locked") {
		held["(caller-held lock)"] = body.Pos()
	}
	c.scanStmts(body.List, held)
}

// scanStmts walks one statement list, updating the held set at lock and
// unlock boundaries and reporting blocking operations inside held regions.
// Nested control flow is scanned with a copy of the set: a conditional
// unlock inside a branch must not unmark the fall-through path.
func (c *checker) scanStmts(stmts []ast.Stmt, held heldSet) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, ok := c.mutexCall(s.X, "Lock", "RLock"); ok {
				c.checkExprs(held, s.X) // lock args can't block, but keep uniform
				held[key] = s.Pos()
				continue
			}
			if key, ok := c.mutexCall(s.X, "Unlock", "RUnlock"); ok {
				delete(held, key)
				continue
			}
			c.checkExprs(held, s.X)
		case *ast.DeferStmt:
			if _, ok := c.mutexCall(s.Call, "Unlock", "RUnlock"); ok {
				continue // held until return; the region simply never closes
			}
			c.checkExprs(held, s.Call.Fun) // the call itself runs later
			for _, a := range s.Call.Args {
				c.checkExprs(held, a)
			}
		case *ast.GoStmt:
			// Spawning is non-blocking; argument evaluation can block.
			for _, a := range s.Call.Args {
				c.checkExprs(held, a)
			}
		case *ast.SendStmt:
			if len(held) > 0 {
				c.report(s.Pos(), held, "channel send")
			}
			c.checkExprs(held, s.Chan, s.Value)
		case *ast.SelectStmt:
			if len(held) > 0 && !hasDefault(s) {
				c.report(s.Pos(), held, "select without default")
			}
			for _, clause := range s.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok {
					c.scanStmts(comm.Body, held.clone())
				}
			}
		case *ast.BlockStmt:
			c.scanStmts(s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				c.scanStmts([]ast.Stmt{s.Init}, held)
			}
			c.checkExprs(held, s.Cond)
			c.scanStmts(s.Body.List, held.clone())
			if s.Else != nil {
				c.scanStmts([]ast.Stmt{s.Else}, held.clone())
			}
		case *ast.ForStmt:
			c.checkExprs(held, s.Cond)
			c.scanStmts(s.Body.List, held.clone())
		case *ast.RangeStmt:
			c.checkExprs(held, s.X)
			if len(held) > 0 {
				if t := c.pass.TypesInfo.Types[s.X].Type; t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						c.report(s.Pos(), held, "range over channel")
					}
				}
			}
			c.scanStmts(s.Body.List, held.clone())
		case *ast.SwitchStmt:
			c.checkExprs(held, s.Tag)
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					c.scanStmts(cc.Body, held.clone())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, clause := range s.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					c.scanStmts(cc.Body, held.clone())
				}
			}
		case *ast.AssignStmt:
			c.checkExprs(held, s.Rhs...)
		case *ast.ReturnStmt:
			c.checkExprs(held, s.Results...)
		case *ast.LabeledStmt:
			c.scanStmts([]ast.Stmt{s.Stmt}, held)
		}
	}
}

// checkExprs reports blocking operations inside the given expressions,
// without descending into function literals (their bodies run elsewhere
// and are scanned as functions of their own).
func (c *checker) checkExprs(held heldSet, exprs ...ast.Expr) {
	if len(held) == 0 {
		return
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					c.report(x.Pos(), held, "channel receive")
				}
			case *ast.CallExpr:
				if what, ok := c.blockingCall(x); ok {
					c.report(x.Pos(), held, what)
				}
			}
			return true
		})
	}
}

// mutexCall matches expr as a call to one of the named sync.Mutex/RWMutex
// methods, returning the rendered receiver as the region key.
func (c *checker) mutexCall(expr ast.Expr, names ...string) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	matched := false
	for _, n := range names {
		if sel.Sel.Name == n {
			matched = true
		}
	}
	if !matched {
		return "", false
	}
	fn := c.methodObj(sel)
	if fn == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	name := strings.TrimPrefix(recv.Type().String(), "*")
	if name != "sync.Mutex" && name != "sync.RWMutex" {
		return "", false
	}
	return renderExpr(sel.X), true
}

// blockingCall classifies a call as a blocking operation, returning a
// human label for the report.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	// time.Sleep: package-level selector.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if pkg.Imported().Path() == "time" && sel.Sel.Name == "Sleep" {
				return "time.Sleep", true
			}
			return "", false
		}
	}
	fn := c.methodObj(sel)
	if fn == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	recvName := strings.TrimPrefix(recv.Type().String(), "*")
	if recvName == "sync.WaitGroup" && fn.Name() == "Wait" {
		return "sync.WaitGroup.Wait", true
	}
	base := recvName
	if i := strings.LastIndex(base, "."); i >= 0 {
		base = base[i+1:]
	}
	for _, prefix := range blockingMethods[base] {
		if strings.HasPrefix(fn.Name(), prefix) {
			return base + "." + fn.Name(), true
		}
	}
	return "", false
}

// methodObj resolves a selector to the *types.Func it calls, nil for
// non-method selectors.
func (c *checker) methodObj(sel *ast.SelectorExpr) *types.Func {
	if selection, ok := c.pass.TypesInfo.Selections[sel]; ok {
		if fn, ok := selection.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// report emits one diagnostic naming the operation and the oldest-named
// held mutex.
func (c *checker) report(pos token.Pos, held heldSet, what string) {
	mu, at := held.any()
	c.pass.Reportf(pos, "%s while holding %s (locked at %s); release the lock first", what, mu, c.pass.Fset.Position(at))
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// renderExpr prints a compact receiver expression for region keys.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.ParenExpr:
		return renderExpr(x.X)
	case *ast.IndexExpr:
		return renderExpr(x.X) + "[i]"
	case *ast.StarExpr:
		return renderExpr(x.X)
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "()"
	default:
		return fmt.Sprintf("%T", e)
	}
}
