// Package rpc is a fixture stand-in for the transport layer.
package rpc

import "context"

// Client is a fake connection whose Call blocks on the network.
type Client struct{}

// Call performs a blocking round trip.
func (c *Client) Call(ctx context.Context, body any) (any, error) { return nil, nil }
