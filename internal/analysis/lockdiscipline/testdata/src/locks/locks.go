// Package locks is a lockdiscipline fixture.
package locks

import (
	"context"
	"sync"
	"time"

	"rpc"
)

// Server guards its state with a mutex.
type Server struct {
	mu sync.Mutex
	wg sync.WaitGroup
	c  *rpc.Client
	ch chan int
}

// BadSleep sleeps while holding the lock.
func (s *Server) BadSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

// GoodSleep releases before sleeping.
func (s *Server) GoodSleep() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// BadCall holds the lock across an RPC via a deferred unlock.
func (s *Server) BadCall(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.c.Call(ctx, nil) // want `Client\.Call while holding s\.mu`
}

// BadSend sends on a channel under the lock.
func (s *Server) BadSend() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding s\.mu`
	s.mu.Unlock()
}

// BadRecv receives under the lock.
func (s *Server) BadRecv() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive while holding s\.mu`
}

// BadWait parks on the group under the lock.
func (s *Server) BadWait() {
	s.mu.Lock()
	s.wg.Wait() // want `sync\.WaitGroup\.Wait while holding s\.mu`
	s.mu.Unlock()
}

// flushLocked is entered with the caller already holding the lock.
func (s *Server) flushLocked() {
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding \(caller-held lock\)`
}

// GoodClosure spawns the blocking work; the literal runs outside the region.
func (s *Server) GoodClosure() {
	s.mu.Lock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	s.mu.Unlock()
}

// WaitCond blocks on a condition variable, which releases the mutex it
// rides on; exempt.
func (s *Server) WaitCond(cond *sync.Cond) {
	s.mu.Lock()
	cond.Wait()
	s.mu.Unlock()
}

// BranchUnlock releases in one branch only; the fall-through path still
// holds the lock.
func (s *Server) BranchUnlock(early bool) {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
		time.Sleep(time.Millisecond) // branch released its copy: legal
		return
	}
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

// BadSelect waits on a select without default under the lock.
func (s *Server) BadSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while holding s\.mu`
	case v := <-s.ch:
		_ = v
	}
}

// GoodSelect polls: a default branch cannot block.
func (s *Server) GoodSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		_ = v
	default:
	}
}

// BadDrain ranges over the channel under the lock.
func (s *Server) BadDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `range over channel while holding s\.mu`
		_ = v
	}
}

// Shutdown documents a deliberate exception; the directive suppresses the
// finding, proving the ignore path works.
func (s *Server) Shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockdiscipline close-time send on an unbuffered ack channel with a parked reader; no contention is possible after close
	s.ch <- 0
}
