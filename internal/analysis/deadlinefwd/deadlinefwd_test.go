package deadlinefwd_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/deadlinefwd"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", deadlinefwd.Analyzer, "fwd")
}
