// Package deadlinefwd checks that RPC work-forwarding sites propagate the
// incoming deadline instead of minting a fresh one. The paper's admission
// story depends on this: a task's deadline is stamped once, at the device,
// anchored to the arrival slot; every downstream hop (edge → peer steal,
// edge → cloud, pipeline stage → stage) must shrink the remaining budget,
// never reset it. A forward that builds its context from
// context.Background(), or fills rpc.Meta.Deadline from time.Now, silently
// re-opens the budget and defeats deadline-aware shedding on the next hop.
//
// The rule, at every call to Call/CallMeta on an rpc client: if any
// enclosing function has a context.Context parameter (i.e. there IS an
// incoming deadline to propagate), the context argument must trace back to
// a parameter — possibly through context.With* wrappers — and never to
// context.Background()/TODO(); and a literal rpc.Meta argument must not
// compute its Deadline field from time.Now. Call sites in functions with
// no context parameter anywhere in scope are origin sites (the device's
// own task stamping, benchmarks, dial-time registration) and are exempt.
package deadlinefwd

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leime/internal/analysis"
)

// Analyzer reports forwarded RPCs that drop or re-mint the incoming deadline.
var Analyzer = &analysis.Analyzer{
	Name: "deadlinefwd",
	Doc:  "forwarded RPCs must derive their deadline from the incoming one, never a fresh clock",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkFile(pass, f)
	}
	return nil, nil
}

// funcScope is one frame of the enclosing-function stack at a call site.
type funcScope struct {
	params map[types.Object]bool // context-typed (and other) parameters
	body   *ast.BlockStmt
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	var stack []funcScope
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return false
			}
			stack = append(stack, newScope(pass, fn.Type, fn.Body))
			ast.Inspect(fn.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.FuncLit:
			stack = append(stack, newScope(pass, fn.Type, fn.Body))
			ast.Inspect(fn.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.CallExpr:
			checkCall(pass, fn, stack)
		}
		return true
	}
	ast.Inspect(f, walk)
}

func newScope(pass *analysis.Pass, ft *ast.FuncType, body *ast.BlockStmt) funcScope {
	s := funcScope{params: map[types.Object]bool{}, body: body}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					s.params[obj] = true
				}
			}
		}
	}
	return s
}

// checkCall inspects one Call/CallMeta invocation on an rpc client.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []funcScope) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Call" && sel.Sel.Name != "CallMeta") || len(call.Args) == 0 {
		return
	}
	method, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !isRPCPkg(method.Pkg()) {
		return
	}
	if sig, ok := method.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return
	}
	// The rpc package's own internals are the implementation of the
	// propagation contract, not a forwarding site.
	if isRPCPkg(pass.Pkg) {
		return
	}
	if !hasContextParam(pass, stack) {
		return // origin site: nothing incoming to propagate
	}
	switch traceCtx(pass, call.Args[0], stack, 0) {
	case ctxFresh:
		pass.Reportf(call.Args[0].Pos(),
			"RPC forward drops the incoming deadline: context traces to context.Background()/TODO(); derive it from the incoming context instead")
	}
	if sel.Sel.Name == "CallMeta" && len(call.Args) >= 2 {
		checkMetaArg(pass, call.Args[1])
	}
}

func isRPCPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "rpc" || strings.HasSuffix(pkg.Path(), "/rpc")
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func hasContextParam(pass *analysis.Pass, stack []funcScope) bool {
	for _, s := range stack {
		for obj := range s.params {
			if isContextType(obj.Type()) {
				return true
			}
		}
	}
	return false
}

type ctxOrigin int

const (
	ctxUnknown ctxOrigin = iota // stop: struct field, helper return, …
	ctxIncoming
	ctxFresh
)

// traceCtx resolves where a context expression ultimately comes from:
// a function parameter (incoming), context.Background()/TODO() (fresh),
// or something the analyzer cannot see through (unknown — not reported).
func traceCtx(pass *analysis.Pass, e ast.Expr, stack []funcScope, depth int) ctxOrigin {
	if depth > 8 {
		return ctxUnknown
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return ctxUnknown
		}
		for _, s := range stack {
			if s.params[obj] {
				return ctxIncoming
			}
		}
		if rhs := lastAssign(pass, obj, stack); rhs != nil {
			return traceCtx(pass, rhs, stack, depth+1)
		}
		return ctxUnknown
	case *ast.CallExpr:
		fn, ok := calleeNamed(pass, e)
		if !ok {
			return ctxUnknown
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "context" {
			switch fn.Name() {
			case "Background", "TODO":
				return ctxFresh
			case "WithCancel", "WithTimeout", "WithDeadline", "WithValue", "WithoutCancel", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
				if len(e.Args) > 0 {
					return traceCtx(pass, e.Args[0], stack, depth+1)
				}
			}
		}
		return ctxUnknown
	}
	return ctxUnknown
}

// calleeNamed resolves a call's target to a named function if possible.
func calleeNamed(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}

// lastAssign finds the right-hand side that defines obj within the
// innermost enclosing function body that assigns it. Tuple assignments
// with one call on the right (ctx, cancel := context.WithTimeout(...))
// resolve to that call.
func lastAssign(pass *analysis.Pass, obj types.Object, stack []funcScope) ast.Expr {
	var rhs ast.Expr
	for i := len(stack) - 1; i >= 0 && rhs == nil; i-- {
		ast.Inspect(stack[i].body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for li, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				target := pass.TypesInfo.Defs[id]
				if target == nil {
					target = pass.TypesInfo.Uses[id]
				}
				if target != obj {
					continue
				}
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[li]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
			}
			return true
		})
	}
	return rhs
}

// checkMetaArg flags a literal rpc.Meta whose Deadline is computed from
// the wall clock at the forwarding site.
func checkMetaArg(pass *analysis.Pass, arg ast.Expr) {
	lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		return
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Meta" || !isRPCPkg(named.Obj().Pkg()) {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "Deadline" {
			continue
		}
		if pos, found := findsWallClock(pass, kv.Value); found {
			pass.Reportf(pos,
				"outgoing rpc.Meta deadline is minted from time.Now at the forwarding site; derive it from the incoming deadline instead")
		}
	}
}

// findsWallClock reports whether the expression calls time.Now.
func findsWallClock(pass *analysis.Pass, e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if fn, ok := calleeNamed(pass, call); ok && fn.Name() == "Now" &&
			fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			pos, found = call.Pos(), true
		}
		return !found
	})
	return pos, found
}
