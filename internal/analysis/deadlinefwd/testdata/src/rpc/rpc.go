// Package rpc is the fixture stand-in for leime/internal/rpc: just the
// client call surface and Meta that deadlinefwd resolves.
package rpc

import "context"

// Meta is per-call metadata; Deadline is absolute nanoseconds.
type Meta struct {
	Trace    uint64
	Deadline int64
}

// Client is the fixture RPC client.
type Client struct{}

// Call issues a request under ctx.
func (c *Client) Call(ctx context.Context, body any) (any, error) { return nil, nil }

// CallMeta issues a request with explicit metadata.
func (c *Client) CallMeta(ctx context.Context, meta Meta, body any) (any, error) { return nil, nil }
