// Package fwd exercises deadlinefwd: forwards that drop the incoming
// deadline (fresh Background context, wall-clock Meta.Deadline) are
// flagged; propagated, derived-with-timeout, and origin-site contexts
// are clean.
package fwd

import (
	"context"
	"time"

	"rpc"
)

// okForward threads the incoming context straight through — clean.
func okForward(ctx context.Context, c *rpc.Client) error {
	_, err := c.CallMeta(ctx, rpc.Meta{}, "work")
	return err
}

// okDerived tightens the incoming deadline — still derived, clean.
func okDerived(ctx context.Context, c *rpc.Client) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_, err := c.Call(tctx, "work")
	return err
}

// okOrigin has no incoming context at all: it IS the deadline origin.
func okOrigin(c *rpc.Client) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := c.Call(ctx, "stamp")
	return err
}

// okUnknown passes a context the analyzer cannot see through — not flagged.
type holder struct{ ctx context.Context }

func okUnknown(ctx context.Context, h *holder, c *rpc.Client) error {
	_, err := c.Call(h.ctx, "work")
	return err
}

// badFresh has an incoming context but forwards under a fresh one.
func badFresh(ctx context.Context, c *rpc.Client) error {
	_, err := c.Call(context.Background(), "work") // want `RPC forward drops the incoming deadline`
	return err
}

// badFreshDerived wraps Background in a timeout — still a fresh budget.
func badFreshDerived(ctx context.Context, c *rpc.Client) error {
	tctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := c.CallMeta(tctx, rpc.Meta{}, "work") // want `RPC forward drops the incoming deadline`
	return err
}

// badMetaClock propagates ctx but re-mints the Meta deadline from the
// wall clock.
func badMetaClock(ctx context.Context, c *rpc.Client) error {
	_, err := c.CallMeta(ctx, rpc.Meta{
		Deadline: time.Now().Add(time.Second).UnixNano(), // want `minted from time.Now`
	}, "work")
	return err
}

// badClosure forwards under TODO inside a closure while the enclosing
// function holds an incoming context.
func badClosure(ctx context.Context, c *rpc.Client) func() {
	return func() {
		_, _ = c.Call(context.TODO(), "work") // want `RPC forward drops the incoming deadline`
	}
}

// okMetaDerived fills the Meta deadline from the incoming one — clean.
func okMetaDerived(ctx context.Context, c *rpc.Client, incoming rpc.Meta) error {
	_, err := c.CallMeta(ctx, rpc.Meta{Deadline: incoming.Deadline}, "work")
	return err
}
