// Package rpc is a fixture stand-in for the transport layer.
package rpc

// RegisterError associates a wire code with a sentinel error.
func RegisterError(code string, sentinel error) {}
