// Package wire is a wireerrors fixture.
package wire

import (
	"errors"
	"strings"

	"rpc"
)

// ErrRegistered crosses the wire with a code.
var ErrRegistered = errors.New("wire: registered")

// ErrForgotten never gets a code.
var ErrForgotten = errors.New("wire: forgotten") // want `never registered with rpc\.RegisterError`

func init() {
	rpc.RegisterError("wire/registered", ErrRegistered)
}

// Classify compares errors by identity.
func Classify(err error) bool {
	if err == ErrRegistered { // want `error compared with ==`
		return true
	}
	return err != nil // nil comparisons stay legal
}

// ClassifyNot negates an identity comparison.
func ClassifyNot(err error) bool {
	return err != ErrRegistered // want `error compared with !=`
}

// ByMessage matches the message text.
func ByMessage(err error) bool {
	return err.Error() == "wire: registered" // want `classified by message text`
}

// ByContains greps the message.
func ByContains(err error) bool {
	return strings.Contains(err.Error(), "registered") // want `classified by message text via strings\.Contains`
}

// Good classifies with errors.Is; no finding.
func Good(err error) bool { return errors.Is(err, ErrRegistered) }

// signalError implements the errors.Is protocol; identity comparison
// inside an Is method is the protocol itself, not a violation.
type signalError struct{}

func (signalError) Error() string { return "wire: signal" }

// Is matches the registered sentinel.
func (signalError) Is(target error) bool { return target == ErrRegistered }

// Same documents a deliberate exception; the directive suppresses the
// finding, proving the ignore path works.
func Same(a, b error) bool {
	//lint:ignore wireerrors deduplication wants pointer identity, not classification
	return a == b
}
