package wireerrors_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/wireerrors"
)

func TestWireErrors(t *testing.T) {
	analysistest.Run(t, "testdata", wireerrors.Analyzer, "wire")
}
