// Package wireerrors keeps typed errors honest across the gob wire. The
// rpc layer transports a handler error as a registered code plus message
// and rebuilds a wrapper around the registered sentinel on the caller side;
// that contract only works if (a) every package-level sentinel in a package
// that talks rpc is registered with rpc.RegisterError, and (b) callers
// classify errors with errors.Is rather than == identity or message-string
// matching — a reconstructed *RemoteError is never identical to the
// sentinel, and message text is not API.
//
// Three checks:
//
//   - error == / != comparisons between two error values (nil stays legal)
//     are flagged, with a SuggestedFix rewriting to errors.Is / !errors.Is
//     when the file already imports errors;
//   - message matching — comparing err.Error() to a string literal or
//     passing it to strings.Contains/HasPrefix/HasSuffix — is flagged in
//     non-test files;
//   - in packages importing the rpc layer, every package-level sentinel
//     error variable must appear as the sentinel argument of a
//     RegisterError call somewhere in that package.
package wireerrors

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strconv"

	"leime/internal/analysis"
)

// RPCPaths names the import paths recognized as "the rpc layer"; the bare
// "rpc" entry lets analysistest fixtures model it without the full module.
var RPCPaths = []string{"leime/internal/rpc", "rpc"}

// Analyzer flags ==/!= and message-string error classification and
// unregistered wire sentinels.
var Analyzer = &analysis.Analyzer{
	Name: "wireerrors",
	Doc:  "errors crossing the wire must be registered and classified with errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		checkComparisons(pass, f)
		if !pass.InTestFile(f.Pos()) {
			checkMessageMatching(pass, f)
		}
	}
	checkRegistration(pass)
	return nil, nil
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

func isErrorExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	return t != nil && types.Identical(t, errorType)
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// checkComparisons flags error == error and error != error, suggesting the
// errors.Is rewrite when the file imports errors.
func checkComparisons(pass *analysis.Pass, f *ast.File) {
	hasErrors := importsPackage(f, "errors")
	ast.Inspect(f, func(n ast.Node) bool {
		// An Is(error) bool method IS the errors.Is protocol; identity
		// comparison inside it is the idiomatic implementation, not a
		// violation.
		if fd, ok := n.(*ast.FuncDecl); ok && isIsMethod(fd) {
			return false
		}
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isErrorExpr(pass, bin.X) || !isErrorExpr(pass, bin.Y) {
			return true
		}
		if isNil(pass, bin.X) || isNil(pass, bin.Y) {
			return true
		}
		err, sentinel := bin.X, bin.Y
		if isPackageLevelVar(pass, err) && !isPackageLevelVar(pass, sentinel) {
			err, sentinel = sentinel, err
		}
		d := analysis.Diagnostic{
			Pos: bin.Pos(),
			End: bin.End(),
			Message: "error compared with " + bin.Op.String() +
				"; use errors.Is so wrapped and wire-reconstructed errors still match",
		}
		if hasErrors {
			repl := "errors.Is(" + render(pass, err) + ", " + render(pass, sentinel) + ")"
			if bin.Op == token.NEQ {
				repl = "!" + repl
			}
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message:   "rewrite with errors.Is",
				TextEdits: []analysis.TextEdit{{Pos: bin.Pos(), End: bin.End(), NewText: []byte(repl)}},
			}}
		}
		pass.Report(d)
		return true
	})
}

// isIsMethod matches the errors.Is unwrap-protocol method shape:
// a method named Is taking one error parameter and returning bool.
func isIsMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	p, r := fd.Type.Params, fd.Type.Results
	return p != nil && len(p.List) == 1 && r != nil && len(r.List) == 1
}

// isPackageLevelVar reports whether e names a package-scope variable — the
// shape of a sentinel, used to order errors.Is arguments in fixes.
func isPackageLevelVar(pass *analysis.Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	return ok && obj.Parent() == obj.Pkg().Scope()
}

// checkMessageMatching flags classification by error message text.
func checkMessageMatching(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			if (isErrorCall(pass, x.X) && isStringLit(x.Y)) || (isErrorCall(pass, x.Y) && isStringLit(x.X)) {
				pass.Reportf(x.Pos(), "error classified by message text; match the sentinel with errors.Is instead")
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "strings" {
				return true
			}
			switch sel.Sel.Name {
			case "Contains", "HasPrefix", "HasSuffix", "EqualFold":
				for _, arg := range x.Args {
					if isErrorCall(pass, arg) {
						pass.Reportf(x.Pos(), "error classified by message text via strings.%s; match the sentinel with errors.Is instead", sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
}

// isErrorCall reports whether e is a call to the Error() method of an
// error value.
func isErrorCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return isErrorExpr(pass, sel.X)
}

func isStringLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// checkRegistration verifies every package-level sentinel error in an
// rpc-importing package is registered via RegisterError.
func checkRegistration(pass *analysis.Pass) {
	if !talksRPC(pass) {
		return
	}
	sentinels := map[types.Object]*ast.Ident{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok || gen.Tok != token.VAR {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || !types.Identical(obj.Type(), errorType) {
						continue
					}
					sentinels[obj] = name
				}
			}
		}
	}
	if len(sentinels) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isRegisterError(pass, call.Fun) {
				return true
			}
			var id *ast.Ident
			switch a := call.Args[1].(type) {
			case *ast.Ident:
				id = a
			case *ast.SelectorExpr:
				id = a.Sel
			default:
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				delete(sentinels, obj)
			}
			return true
		})
	}
	for obj, id := range sentinels {
		pass.Reportf(id.Pos(), "sentinel error %s is never registered with rpc.RegisterError; it would cross the wire untyped and errors.Is would stop matching on the caller side", obj.Name())
	}
}

// talksRPC reports whether the package is, or imports, the rpc layer.
func talksRPC(pass *analysis.Pass) bool {
	if isRPCPath(pass.Pkg.Path()) {
		return true
	}
	for _, imp := range pass.Pkg.Imports() {
		if isRPCPath(imp.Path()) {
			return true
		}
	}
	return false
}

func isRPCPath(path string) bool {
	for _, p := range RPCPaths {
		if path == p {
			return true
		}
	}
	return false
}

// isRegisterError matches the callee of a RegisterError call, either as a
// selector on the imported rpc package or as the rpc package's own local
// function.
func isRegisterError(pass *analysis.Pass, fun ast.Expr) bool {
	switch x := fun.(type) {
	case *ast.SelectorExpr:
		if x.Sel.Name != "RegisterError" {
			return false
		}
		id, ok := x.X.(*ast.Ident)
		if !ok {
			return false
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		return ok && isRPCPath(pkg.Imported().Path())
	case *ast.Ident:
		return x.Name == "RegisterError" && isRPCPath(pass.Pkg.Path())
	}
	return false
}

// importsPackage reports whether file f imports path without renaming it
// away ("_" or ".").
func importsPackage(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		return imp.Name == nil || (imp.Name.Name != "_" && imp.Name.Name != ".")
	}
	return false
}

// render prints an expression's source form for fix text.
func render(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return "err"
	}
	return buf.String()
}
