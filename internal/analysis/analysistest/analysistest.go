// Package analysistest runs an analyzer against fixture packages under a
// testdata/src tree and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest on this repo's
// dependency-free framework.
//
// A fixture line carries expectations as quoted regular expressions:
//
//	time.Now() // want `reads the wall clock`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be consumed. Because the runner goes through
// analysis.Run, //lint:ignore directives are honored — a fixture line with
// a directive and no want comment proves the suppression path works.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"leime/internal/analysis"
)

// Run loads each fixture package from testdata/src/<pkg>, applies the
// analyzer, and reports mismatches between diagnostics and // want
// expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	loader := analysis.NewLoader()
	loader.Overlay = filepath.Join(testdata, "src")
	var pkgs []*analysis.Package
	for _, path := range pkgpaths {
		loaded, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, loaded...)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, pkgs)
	for _, f := range findings {
		key := posKey(f.Position.Filename, f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.raw)
			}
		}
	}
}

// want is one expectation: a pattern and whether a diagnostic consumed it.
type want struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

func posKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// collectWants scans fixture comments for // want expectations.
func collectWants(t *testing.T, pkgs []*analysis.Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					patterns, err := parsePatterns(rest)
					if err != nil {
						t.Fatalf("%s: bad want comment: %v", pos, err)
					}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
						}
						key := posKey(pos.Filename, pos.Line)
						out[key] = append(out[key], &want{re: re, raw: p})
					}
				}
			}
		}
	}
	return out
}

// parsePatterns splits a want payload into its quoted regular expressions;
// both `backquoted` and "double-quoted" forms are accepted.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// Walk to the closing quote, honoring escapes, then unquote.
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i == len(s) {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			p, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[i+1:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
	return out, nil
}
