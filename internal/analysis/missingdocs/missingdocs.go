// Package missingdocs enforces the repo's documentation convention: every
// exported top-level declaration carries a doc comment and every package has
// a package comment (the repo-local ST1000/ST1020 equivalents). This is the
// internal/analysis port of the original cmd/doccheck directory walker;
// _test.go files stay exempt because their audience is the test reader, not
// the API consumer.
package missingdocs

import (
	"go/ast"
	"go/token"

	"leime/internal/analysis"
)

// Analyzer flags undocumented exported declarations and package clauses.
var Analyzer = &analysis.Analyzer{
	Name: "missingdocs",
	Doc:  "exported declarations and packages need doc comments",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	documented := false
	var first *ast.File
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		if f.Doc != nil {
			documented = true
		}
		if first == nil || pass.Fset.Position(f.Pos()).Filename < pass.Fset.Position(first.Pos()).Filename {
			first = f
		}
		checkDecls(pass, f)
	}
	if first != nil && !documented {
		pass.Reportf(first.Name.Pos(), "package %s: packages need a package comment", first.Name.Name)
	}
	return nil, nil
}

// checkDecls reports one file's undocumented exported top-level decls. A
// comment on a grouped declaration (one const (...) or var (...) block)
// covers every spec in the group, matching godoc's rendering.
func checkDecls(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			name := d.Name.Name
			if d.Recv != nil && len(d.Recv.List) == 1 {
				recv := recvTypeName(d.Recv.List[0].Type)
				if !ast.IsExported(recv) {
					continue // method on an unexported type: not API surface
				}
				name = recv + "." + name
			}
			pass.Reportf(d.Pos(), "%s: exported declarations need a doc comment", name)
		case *ast.GenDecl:
			if d.Tok == token.IMPORT || d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil {
						pass.Reportf(s.Pos(), "%s: exported declarations need a doc comment", s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							pass.Reportf(n.Pos(), "%s: exported declarations need a doc comment", n.Name)
							break // one violation per spec line
						}
					}
				}
			}
		}
	}
}

// recvTypeName unwraps a receiver type expression to its base identifier.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	default:
		return "?"
	}
}
