package missingdocs_test

import (
	"testing"

	"leime/internal/analysis/analysistest"
	"leime/internal/analysis/missingdocs"
)

func TestMissingDocs(t *testing.T) {
	analysistest.Run(t, "testdata", missingdocs.Analyzer, "docs", "nodoc")
}
