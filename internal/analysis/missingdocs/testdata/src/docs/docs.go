// Package docs is a missingdocs fixture.
package docs

// Documented carries a doc comment.
func Documented() {}

func Undocumented() {} // want `Undocumented: exported declarations need a doc comment`

// T is documented.
type T struct{}

func (t *T) M() {} // want `T\.M: exported declarations need a doc comment`

type hidden struct{}

// Exported methods on unexported types are not API surface; no doc needed.
func (h hidden) Exported() {}

var Exported = 1 // want `Exported: exported declarations need a doc comment`

// Grouped declarations share the group comment.
var (
	A = 1
	B = 2
)

type U struct{} // want `U: exported declarations need a doc comment`
