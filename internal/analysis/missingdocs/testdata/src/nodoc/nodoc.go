package nodoc // want `package nodoc: packages need a package comment`

func internalOnly() {}
