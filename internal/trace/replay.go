package trace

import (
	"encoding/json"
	"fmt"
)

// Recorded is a replayable arrival trace: a fixed sequence of per-slot
// counts, cycling when exhausted. Recording a stochastic process and
// replaying it lets experiments compare policies on *identical* arrivals and
// makes runs portable across machines and languages.
type Recorded struct {
	counts []int
	idx    int
}

// NewRecorded builds a replayable process from per-slot counts.
func NewRecorded(counts []int) (*Recorded, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("trace: recorded trace needs at least one slot")
	}
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("trace: slot %d has negative count %d", i, c)
		}
	}
	out := make([]int, len(counts))
	copy(out, counts)
	return &Recorded{counts: out}, nil
}

// Record draws n slots from any process into a replayable trace.
func Record(p Process, n int) (*Recorded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: record length %d must be positive", n)
	}
	counts := make([]int, n)
	for i := range counts {
		counts[i] = p.Next()
	}
	return NewRecorded(counts)
}

// Next replays the next slot, cycling at the end.
func (r *Recorded) Next() int {
	v := r.counts[r.idx]
	r.idx = (r.idx + 1) % len(r.counts)
	return v
}

// Mean returns the mean per-slot count over one cycle.
func (r *Recorded) Mean() float64 {
	var sum float64
	for _, c := range r.counts {
		sum += float64(c)
	}
	return sum / float64(len(r.counts))
}

// Len returns the recorded cycle length.
func (r *Recorded) Len() int { return len(r.counts) }

// Counts returns a copy of the recorded per-slot counts.
func (r *Recorded) Counts() []int {
	out := make([]int, len(r.counts))
	copy(out, r.counts)
	return out
}

// Reset rewinds the replay to the first slot.
func (r *Recorded) Reset() { r.idx = 0 }

// MarshalJSON serializes the trace as a plain JSON array of counts.
func (r *Recorded) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.counts)
}

// UnmarshalJSON loads a trace from a JSON array of counts.
func (r *Recorded) UnmarshalJSON(data []byte) error {
	var counts []int
	if err := json.Unmarshal(data, &counts); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	loaded, err := NewRecorded(counts)
	if err != nil {
		return err
	}
	*r = *loaded
	return nil
}

var _ Process = (*Recorded)(nil)
