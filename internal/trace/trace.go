// Package trace generates task-arrival processes for the simulator and the
// testbed runtime: constant rate, Poisson, bursty (Markov-modulated), and
// piecewise-dynamic traces like the arrival-rate churn of the paper's
// stability experiment (Fig. 9).
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Process yields the number of task arrivals in each successive time slot.
type Process interface {
	// Next returns the arrivals for the next slot.
	Next() int
	// Mean returns the long-run expected arrivals per slot (k_i).
	Mean() float64
}

// Constant is a deterministic arrival process: the same count every slot.
type Constant struct {
	// PerSlot is the arrival count per slot.
	PerSlot int
}

// Next returns PerSlot.
func (c *Constant) Next() int { return c.PerSlot }

// Mean returns PerSlot.
func (c *Constant) Mean() float64 { return float64(c.PerSlot) }

// Poisson is an i.i.d. Poisson arrival process.
type Poisson struct {
	rate float64
	rng  *rand.Rand
}

// NewPoisson builds a Poisson process with the given per-slot rate.
func NewPoisson(rate float64, seed int64) (*Poisson, error) {
	if rate < 0 {
		return nil, fmt.Errorf("trace: Poisson rate %v must be non-negative", rate)
	}
	return &Poisson{rate: rate, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next draws one Poisson variate (Knuth's method for small rates, normal
// approximation above 30 to stay O(1)).
func (p *Poisson) Next() int { return poissonDraw(p.rng, p.rate) }

// Mean returns the configured rate.
func (p *Poisson) Mean() float64 { return p.rate }

func poissonDraw(rng *rand.Rand, rate float64) int {
	if rate <= 0 {
		return 0
	}
	if rate > 30 {
		v := rate + math.Sqrt(rate)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Bursty is a two-state Markov-modulated Poisson process: a calm state with
// a low rate and a burst state with a high rate, with geometric dwell times.
type Bursty struct {
	// CalmRate and BurstRate are the per-slot Poisson rates of the two states.
	CalmRate, BurstRate float64
	// BurstProb is the per-slot probability of entering a burst from calm;
	// CalmProb the probability of leaving a burst.
	BurstProb, CalmProb float64

	rng      *rand.Rand
	bursting bool
}

// NewBursty builds a bursty process.
func NewBursty(calmRate, burstRate, burstProb, calmProb float64, seed int64) (*Bursty, error) {
	if calmRate < 0 || burstRate < calmRate {
		return nil, fmt.Errorf("trace: need 0 <= calmRate (%v) <= burstRate (%v)", calmRate, burstRate)
	}
	if burstProb < 0 || burstProb > 1 || calmProb <= 0 || calmProb > 1 {
		return nil, fmt.Errorf("trace: transition probabilities (%v, %v) out of range", burstProb, calmProb)
	}
	return &Bursty{
		CalmRate: calmRate, BurstRate: burstRate,
		BurstProb: burstProb, CalmProb: calmProb,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// Next advances the modulating chain and draws arrivals for the slot.
func (b *Bursty) Next() int {
	if b.bursting {
		if b.rng.Float64() < b.CalmProb {
			b.bursting = false
		}
	} else if b.rng.Float64() < b.BurstProb {
		b.bursting = true
	}
	rate := b.CalmRate
	if b.bursting {
		rate = b.BurstRate
	}
	return poissonDraw(b.rng, rate)
}

// Mean returns the stationary mean rate of the modulated process.
func (b *Bursty) Mean() float64 {
	if b.BurstProb == 0 {
		return b.CalmRate
	}
	// Stationary distribution of the two-state chain.
	pBurst := b.BurstProb / (b.BurstProb + b.CalmProb)
	return (1-pBurst)*b.CalmRate + pBurst*b.BurstRate
}

// Phase is one segment of a piecewise trace.
type Phase struct {
	// Slots is the segment length.
	Slots int
	// Rate is the Poisson rate during the segment.
	Rate float64
}

// Piecewise replays a sequence of rate phases, cycling when exhausted. It is
// the dynamic-arrival-rate trace of the paper's stability experiment.
type Piecewise struct {
	phases []Phase
	rng    *rand.Rand
	idx    int
	used   int
}

// NewPiecewise builds a piecewise process from the given phases.
func NewPiecewise(phases []Phase, seed int64) (*Piecewise, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("trace: piecewise process needs at least one phase")
	}
	for i, ph := range phases {
		if ph.Slots <= 0 || ph.Rate < 0 {
			return nil, fmt.Errorf("trace: phase %d invalid (%d slots, rate %v)", i, ph.Slots, ph.Rate)
		}
	}
	out := make([]Phase, len(phases))
	copy(out, phases)
	return &Piecewise{phases: out, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next draws arrivals for the current phase and advances the schedule.
func (p *Piecewise) Next() int {
	ph := p.phases[p.idx]
	v := poissonDraw(p.rng, ph.Rate)
	p.used++
	if p.used >= ph.Slots {
		p.used = 0
		p.idx = (p.idx + 1) % len(p.phases)
	}
	return v
}

// Mean returns the slot-weighted mean rate over one full cycle.
func (p *Piecewise) Mean() float64 {
	var slots int
	var weighted float64
	for _, ph := range p.phases {
		slots += ph.Slots
		weighted += float64(ph.Slots) * ph.Rate
	}
	return weighted / float64(slots)
}

// CurrentRate returns the rate of the phase the process is currently in.
func (p *Piecewise) CurrentRate() float64 { return p.phases[p.idx].Rate }

// Diurnal modulates a Poisson process sinusoidally around a mean rate —
// the day/night load cycle of a deployed edge application.
type Diurnal struct {
	// MeanRate is the average per-slot rate.
	MeanRate float64
	// Amplitude in [0, 1] scales the swing: rate(t) varies in
	// [Mean*(1-A), Mean*(1+A)].
	Amplitude float64
	// PeriodSlots is the cycle length.
	PeriodSlots int

	rng  *rand.Rand
	slot int
}

// NewDiurnal builds a sinusoidally modulated Poisson process.
func NewDiurnal(meanRate, amplitude float64, periodSlots int, seed int64) (*Diurnal, error) {
	if meanRate < 0 {
		return nil, fmt.Errorf("trace: diurnal mean rate %v must be non-negative", meanRate)
	}
	if amplitude < 0 || amplitude > 1 {
		return nil, fmt.Errorf("trace: diurnal amplitude %v out of [0, 1]", amplitude)
	}
	if periodSlots <= 1 {
		return nil, fmt.Errorf("trace: diurnal period %d must exceed 1 slot", periodSlots)
	}
	return &Diurnal{
		MeanRate: meanRate, Amplitude: amplitude, PeriodSlots: periodSlots,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// CurrentRate returns the instantaneous rate at the process's position.
func (d *Diurnal) CurrentRate() float64 {
	phase := 2 * math.Pi * float64(d.slot%d.PeriodSlots) / float64(d.PeriodSlots)
	return d.MeanRate * (1 + d.Amplitude*math.Sin(phase))
}

// Next draws arrivals at the cycle's current rate and advances the phase.
func (d *Diurnal) Next() int {
	v := poissonDraw(d.rng, d.CurrentRate())
	d.slot++
	return v
}

// Mean returns the cycle-average rate.
func (d *Diurnal) Mean() float64 { return d.MeanRate }

// Compile-time interface checks.
var (
	_ Process = (*Constant)(nil)
	_ Process = (*Poisson)(nil)
	_ Process = (*Bursty)(nil)
	_ Process = (*Piecewise)(nil)
	_ Process = (*Diurnal)(nil)
)
