package trace

import (
	"encoding/json"
	"testing"
)

func TestRecordedReplaysExactly(t *testing.T) {
	r, err := NewRecorded([]int{3, 1, 4, 1, 5})
	if err != nil {
		t.Fatalf("NewRecorded: %v", err)
	}
	want := []int{3, 1, 4, 1, 5, 3, 1} // cycles
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("slot %d: got %d, want %d", i, got, w)
		}
	}
	r.Reset()
	if got := r.Next(); got != 3 {
		t.Errorf("after Reset: got %d, want 3", got)
	}
	if got, want := r.Mean(), 14.0/5; got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if r.Len() != 5 {
		t.Errorf("Len() = %d", r.Len())
	}
}

func TestRecordedValidation(t *testing.T) {
	if _, err := NewRecorded(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewRecorded([]int{1, -2}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestRecordFromProcess(t *testing.T) {
	p, err := NewPoisson(7, 3)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	r, err := Record(p, 500)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if r.Len() != 500 {
		t.Fatalf("Len() = %d", r.Len())
	}
	if m := r.Mean(); m < 5 || m > 9 {
		t.Errorf("recorded mean %v far from rate 7", m)
	}
	// Two replays agree even though the source was stochastic.
	a := r.Counts()
	r.Reset()
	for i := 0; i < r.Len(); i++ {
		if got := r.Next(); got != a[i] {
			t.Fatalf("replay diverged at slot %d", i)
		}
	}
	if _, err := Record(p, 0); err == nil {
		t.Error("zero-length record accepted")
	}
}

func TestRecordedCountsIsACopy(t *testing.T) {
	r, _ := NewRecorded([]int{1, 2, 3})
	c := r.Counts()
	c[0] = 99
	if r.Next() == 99 {
		t.Error("Counts() exposed internal state")
	}
}

func TestRecordedJSONRoundTrip(t *testing.T) {
	orig, _ := NewRecorded([]int{2, 7, 1, 8})
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if string(data) != "[2,7,1,8]" {
		t.Errorf("JSON = %s", data)
	}
	var loaded Recorded
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for i := 0; i < 4; i++ {
		if a, b := orig.Next(), loaded.Next(); a != b {
			t.Fatalf("slot %d differs after round trip: %d vs %d", i, a, b)
		}
	}
	var bad Recorded
	if err := json.Unmarshal([]byte(`[1,-1]`), &bad); err == nil {
		t.Error("negative count accepted through JSON")
	}
	if err := json.Unmarshal([]byte(`"x"`), &bad); err == nil {
		t.Error("non-array JSON accepted")
	}
}
