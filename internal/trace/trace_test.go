package trace

import (
	"math"
	"testing"
)

func empiricalMean(p Process, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(p.Next())
	}
	return sum / float64(n)
}

func TestConstant(t *testing.T) {
	c := &Constant{PerSlot: 7}
	for i := 0; i < 10; i++ {
		if got := c.Next(); got != 7 {
			t.Fatalf("Next() = %d, want 7", got)
		}
	}
	if c.Mean() != 7 {
		t.Errorf("Mean() = %v, want 7", c.Mean())
	}
}

func TestPoissonMeanConverges(t *testing.T) {
	for _, rate := range []float64{0.5, 5, 20, 80} {
		p, err := NewPoisson(rate, 42)
		if err != nil {
			t.Fatalf("NewPoisson(%v): %v", rate, err)
		}
		got := empiricalMean(p, 20000)
		if math.Abs(got-rate) > 0.06*rate+0.1 {
			t.Errorf("rate %v: empirical mean %v too far off", rate, got)
		}
		if p.Mean() != rate {
			t.Errorf("Mean() = %v, want %v", p.Mean(), rate)
		}
	}
}

func TestPoissonRejectsNegativeRate(t *testing.T) {
	if _, err := NewPoisson(-1, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	a, _ := NewPoisson(10, 7)
	b, _ := NewPoisson(10, 7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("step %d: %d != %d for identical seeds", i, av, bv)
		}
	}
}

func TestBurstyStationaryMean(t *testing.T) {
	b, err := NewBursty(5, 50, 0.05, 0.2, 3)
	if err != nil {
		t.Fatalf("NewBursty: %v", err)
	}
	want := b.Mean()
	got := empiricalMean(b, 50000)
	if math.Abs(got-want) > 0.1*want {
		t.Errorf("empirical mean %v, stationary mean %v", got, want)
	}
}

func TestBurstyBurstsAreBurstier(t *testing.T) {
	b, _ := NewBursty(2, 80, 0.02, 0.1, 9)
	over := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if b.Next() > 40 {
			over++
		}
	}
	if over == 0 {
		t.Error("no burst slots observed")
	}
	// A pure Poisson(2) would essentially never exceed 40.
	if frac := float64(over) / n; frac < 0.01 {
		t.Errorf("burst fraction %v implausibly small", frac)
	}
}

func TestBurstyValidation(t *testing.T) {
	cases := []struct{ calm, burst, pb, pc float64 }{
		{-1, 5, 0.1, 0.1},
		{10, 5, 0.1, 0.1},
		{1, 5, 1.5, 0.1},
		{1, 5, 0.1, 0},
	}
	for i, c := range cases {
		if _, err := NewBursty(c.calm, c.burst, c.pb, c.pc, 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPiecewiseFollowsSchedule(t *testing.T) {
	p, err := NewPiecewise([]Phase{{Slots: 100, Rate: 5}, {Slots: 100, Rate: 50}}, 17)
	if err != nil {
		t.Fatalf("NewPiecewise: %v", err)
	}
	var first, second float64
	for i := 0; i < 100; i++ {
		if p.CurrentRate() != 5 {
			t.Fatalf("slot %d: in wrong phase (rate %v)", i, p.CurrentRate())
		}
		first += float64(p.Next())
	}
	for i := 0; i < 100; i++ {
		if p.CurrentRate() != 50 {
			t.Fatalf("slot %d of phase 2: wrong phase (rate %v)", i, p.CurrentRate())
		}
		second += float64(p.Next())
	}
	if second <= first*3 {
		t.Errorf("phase-2 arrivals (%v) should dwarf phase-1 (%v)", second, first)
	}
	if want := (100*5 + 100*50) / 200.0; p.Mean() != want {
		t.Errorf("Mean() = %v, want %v", p.Mean(), want)
	}
}

func TestPiecewiseCycles(t *testing.T) {
	p, _ := NewPiecewise([]Phase{{Slots: 3, Rate: 1}, {Slots: 2, Rate: 9}}, 5)
	for i := 0; i < 5; i++ {
		p.Next()
	}
	if p.CurrentRate() != 1 {
		t.Errorf("after a full cycle the process should be back in phase 1, got rate %v", p.CurrentRate())
	}
}

func TestPiecewiseValidation(t *testing.T) {
	if _, err := NewPiecewise(nil, 1); err == nil {
		t.Error("empty phases accepted")
	}
	if _, err := NewPiecewise([]Phase{{Slots: 0, Rate: 1}}, 1); err == nil {
		t.Error("zero-length phase accepted")
	}
	if _, err := NewPiecewise([]Phase{{Slots: 5, Rate: -2}}, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestDiurnalCycle(t *testing.T) {
	d, err := NewDiurnal(20, 0.8, 100, 9)
	if err != nil {
		t.Fatalf("NewDiurnal: %v", err)
	}
	// Quarter-cycle (peak) rate must exceed three-quarter-cycle (trough).
	var peakRate, troughRate float64
	for i := 0; i < 100; i++ {
		r := d.CurrentRate()
		if i == 25 {
			peakRate = r
		}
		if i == 75 {
			troughRate = r
		}
		d.Next()
	}
	if peakRate <= troughRate {
		t.Errorf("peak rate %v not above trough %v", peakRate, troughRate)
	}
	if got := d.Mean(); got != 20 {
		t.Errorf("Mean() = %v", got)
	}
	// Long-run empirical mean converges to the configured mean.
	d2, _ := NewDiurnal(20, 0.8, 100, 9)
	if got := empiricalMean(d2, 40000); math.Abs(got-20) > 1 {
		t.Errorf("empirical mean %v far from 20", got)
	}
}

func TestDiurnalValidation(t *testing.T) {
	if _, err := NewDiurnal(-1, 0.5, 10, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewDiurnal(5, 1.5, 10, 1); err == nil {
		t.Error("amplitude > 1 accepted")
	}
	if _, err := NewDiurnal(5, 0.5, 1, 1); err == nil {
		t.Error("degenerate period accepted")
	}
}
