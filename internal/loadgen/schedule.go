package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"leime/internal/offload"
)

// This file is the pure half of the harness: expanding a Config into its
// arrival schedule touches no clock and no shared randomness, so equal
// configs replay byte-identical schedules. The wall-clock dispatch loop
// lives in loadgen.go.

// Config parameterizes one load run against an edge server.
type Config struct {
	// EdgeAddr is the edge server to drive. When EdgeAddrs is set it is
	// folded into that list; setting just one of the two is enough.
	EdgeAddr string
	// EdgeAddrs is the edge fleet to drive. Each synthetic device homes at
	// edge (device index mod len(EdgeAddrs)) and registers only there; a
	// transport failure reroutes the device to the next live edge and
	// retries the task once. Empty defaults to [EdgeAddr].
	EdgeAddrs []string
	// Devices is the number of synthetic devices to register (default 4).
	Devices int
	// Rate is the offered arrival rate per device in tasks per wall-clock
	// second (default 5). The aggregate offered rate is Devices*Rate.
	Rate float64
	// Arrival selects the arrival process: "poisson" (default) or
	// "constant" (evenly spaced).
	Arrival string
	// Duration is the generation horizon in wall time (default 2s). Tasks
	// scheduled inside the horizon are always dispatched; the run then
	// waits for stragglers.
	Duration time.Duration
	// Seed drives arrival spacing and exit sampling. Runs with equal seeds
	// offer byte-identical schedules (see Schedule).
	Seed int64
	// Model is the deployed ME-DNN: D[0] sizes the payload, Sigma samples
	// each task's exit.
	Model offload.ModelParams
	// DeviceFLOPS is the capability each synthetic device registers with;
	// it shapes the KKT share the edge reserves (default 1e9).
	DeviceFLOPS float64
	// Timeout bounds each task RPC; expiries count as deadline sheds
	// rather than errors. Zero means no per-task deadline. The bound is
	// absolute from the task's scheduled arrival: a rerouted retry spends
	// whatever budget remains, it does not restart the clock.
	Timeout time.Duration
	// DeadlineSec gives every task a latency deadline sampled uniformly in
	// [0.75, 1.25] times this base, in seconds from its scheduled arrival.
	// The sampled budget rides the task context to the edge, where deadline
	// admission (runtime.ControlPolicy) can shed doomed work and EDF can
	// order the queue by it. Zero disables per-task deadlines.
	DeadlineSec float64
	// TenantDeadlineSec overrides DeadlineSec per device: device i draws
	// its base from entry i mod len. Heterogeneous deadline classes are
	// what make EDF ordering and targeted degradation observable — with one
	// uniform class, deadline order collapses to arrival order. Empty falls
	// back to DeadlineSec for every device.
	TenantDeadlineSec []float64
	// ForceExit pins every task's exit stage (1, 2 or 3) instead of
	// sampling from the model's exit rates. A homogeneous workload is the
	// clean way to measure capacity scaling: with mixed costs, admission
	// control biases the completed mix toward cheap exits on saturated
	// servers. Zero samples from Sigma (the default).
	ForceExit int
	// IDPrefix namespaces device IDs so repeated runs (sweep points)
	// against one edge do not collide (default "loadgen").
	IDPrefix string
	// ReservoirCap caps the latency reservoir (default 8192 samples).
	ReservoirCap int
}

// withDefaults fills unset fields with the documented defaults.
func (c Config) withDefaults() Config {
	if len(c.EdgeAddrs) == 0 && c.EdgeAddr != "" {
		c.EdgeAddrs = []string{c.EdgeAddr}
	}
	if c.EdgeAddr == "" && len(c.EdgeAddrs) > 0 {
		c.EdgeAddr = c.EdgeAddrs[0]
	}
	if c.Devices == 0 {
		c.Devices = 4
	}
	if c.Rate == 0 {
		c.Rate = 5
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.DeviceFLOPS == 0 {
		c.DeviceFLOPS = 1e9
	}
	if c.IDPrefix == "" {
		c.IDPrefix = "loadgen"
	}
	if c.ReservoirCap == 0 {
		c.ReservoirCap = 8192
	}
	return c
}

// validate rejects configurations the harness cannot honour.
func (c Config) validate() error {
	if len(c.EdgeAddrs) == 0 {
		return fmt.Errorf("loadgen: EdgeAddr or EdgeAddrs required")
	}
	for i, addr := range c.EdgeAddrs {
		if addr == "" {
			return fmt.Errorf("loadgen: EdgeAddrs[%d] is empty", i)
		}
	}
	if c.Devices < 1 {
		return fmt.Errorf("loadgen: Devices %d must be positive", c.Devices)
	}
	if c.Rate <= 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("loadgen: Rate %v must be a positive finite rate", c.Rate)
	}
	if c.Arrival != "poisson" && c.Arrival != "constant" {
		return fmt.Errorf("loadgen: Arrival %q must be poisson or constant", c.Arrival)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: Duration %v must be positive", c.Duration)
	}
	if c.ForceExit < 0 || c.ForceExit > 3 {
		return fmt.Errorf("loadgen: ForceExit %d must be 0 (sample) or an exit stage 1..3", c.ForceExit)
	}
	if c.DeadlineSec < 0 || math.IsNaN(c.DeadlineSec) || math.IsInf(c.DeadlineSec, 0) {
		return fmt.Errorf("loadgen: DeadlineSec %v must be a non-negative finite budget", c.DeadlineSec)
	}
	for i, d := range c.TenantDeadlineSec {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("loadgen: TenantDeadlineSec[%d] %v must be a non-negative finite budget", i, d)
		}
	}
	if err := c.Model.Validate(); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	return nil
}

// Arrival is one scheduled task: which device offers it, when (offset from
// the run start), and through which exit it will leave the network.
type Arrival struct {
	// At is the scheduled offset from the start of the run.
	At time.Duration
	// Device indexes the synthetic device offering the task.
	Device int
	// Task is the per-device task identifier.
	Task uint64
	// Exit is the pre-sampled exit stage (1, 2 or 3).
	Exit int
	// Deadline is the task's pre-sampled latency budget, measured from At.
	// Zero means the task carries no deadline.
	Deadline time.Duration
}

// Schedule expands the configuration into its full arrival sequence, sorted
// by offset. It is a pure function of the configuration: equal configs
// (including Seed) produce identical schedules, which is what makes load
// runs reproducible — the nondeterminism in a run's *results* is then
// attributable to the system under test, not the harness.
func Schedule(cfg Config) ([]Arrival, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var out []Arrival
	for dev := 0; dev < cfg.Devices; dev++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(dev)*104729))
		gap := 1 / cfg.Rate // mean inter-arrival in seconds
		base := cfg.DeadlineSec
		if len(cfg.TenantDeadlineSec) > 0 {
			base = cfg.TenantDeadlineSec[dev%len(cfg.TenantDeadlineSec)]
		}
		var task uint64
		at := float64(0)
		for {
			if cfg.Arrival == "poisson" {
				at += rng.ExpFloat64() * gap
			} else {
				// Multiply instead of accumulating so float drift cannot
				// leak an extra arrival past the horizon.
				at = gap * float64(task+1)
			}
			if at >= cfg.Duration.Seconds() {
				break
			}
			task++
			exit := cfg.ForceExit
			if exit == 0 {
				exit = sampleExit(rng, cfg.Model)
			}
			var deadline time.Duration
			if base > 0 {
				// ±25% uniform jitter keeps deadline order distinct from
				// arrival order, which is what gives EDF something to sort.
				budget := base * (0.75 + 0.5*rng.Float64())
				deadline = time.Duration(budget * float64(time.Second))
			}
			out = append(out, Arrival{
				At:       time.Duration(at * float64(time.Second)),
				Device:   dev,
				Task:     task,
				Exit:     exit,
				Deadline: deadline,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Device < out[j].Device
	})
	return out, nil
}

// sampleExit draws an exit stage from the model's cumulative exit rates.
func sampleExit(rng *rand.Rand, m offload.ModelParams) int {
	r := rng.Float64()
	switch {
	case r < m.Sigma[0]:
		return 1
	case r < m.Sigma[1]:
		return 2
	default:
		return 3
	}
}
