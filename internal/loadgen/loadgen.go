// Package loadgen is the open-loop load harness of the testbed: N synthetic
// devices offer first-block work to a live edge at a configured rate,
// regardless of how fast the edge answers. Open-loop arrivals are the honest
// way to measure a server's capacity — a closed loop (next request after the
// previous reply) slows its own offered load exactly when the server
// saturates, hiding the latency the backlog inflicts (coordinated omission).
// Here every task's latency is measured from its *scheduled* arrival, so
// queueing delay, admission rejections and deadline sheds all show up in the
// report.
//
// The harness speaks the runtime protocol directly (RegisterReq +
// FirstBlockReq) rather than running runtime.Device instances: a capacity
// probe must not adapt, fall back to local execution, or make offloading
// decisions. Rejections (ErrBusy, ErrOverloaded) are counted as the
// degrade-to-local signals a real device would absorb.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"leime/internal/metrics"
	"leime/internal/rpc"
	"leime/internal/runtime"
)

// This file is the live half of the harness: it dispatches the schedule
// against a real edge over real time, so wall-clock reads are its whole
// purpose. The package stays in the determinism analyzer's pure set to
// guard schedule.go; this one file opts out.
//
//lint:file-ignore determinism open-loop dispatch paces real RPCs against the wall clock by design; the deterministic half of the package lives in schedule.go

// Latency summarizes the end-to-end latency distribution of completed
// tasks, in seconds, measured from each task's scheduled arrival.
type Latency struct {
	// Samples is the number of latencies recorded.
	Samples int `json:"samples"`
	// Mean is the exact mean over all completions.
	Mean float64 `json:"mean_sec"`
	// P50, P95 and P99 are reservoir-estimated percentiles.
	P50 float64 `json:"p50_sec"`
	P95 float64 `json:"p95_sec"`
	P99 float64 `json:"p99_sec"`
	// Max is the exact maximum.
	Max float64 `json:"max_sec"`
}

// Result is the report of one load run.
type Result struct {
	// OfferedRate is the configured aggregate offered load in tasks/sec.
	OfferedRate float64 `json:"offered_rate_per_sec"`
	// AchievedRate is completions divided by the generation horizon.
	AchievedRate float64 `json:"achieved_rate_per_sec"`
	// Generated counts scheduled tasks; Completed counts successful ones.
	Generated int `json:"generated"`
	Completed int `json:"completed"`
	// Rejected counts tasks the edge refused with admission control
	// (ErrBusy or ErrOverloaded) — the degrade-to-local signals a real
	// device would absorb by running the blocks itself.
	Rejected int `json:"rejected"`
	// DeadlineSheds counts tasks whose per-task timeout elapsed.
	DeadlineSheds int `json:"deadline_sheds"`
	// Errors counts everything else (transport failures, server faults).
	Errors int `json:"errors"`
	// Exits tallies completions by the exit stage the edge actually
	// answered through — under degradation that can be shallower than the
	// scheduled exit, which is what the accuracy-throughput frontier reads.
	Exits [3]int `json:"exits"`
	// Latency is the completion-latency distribution.
	Latency Latency `json:"latency"`
	// DurationSec is the configured generation horizon.
	DurationSec float64 `json:"duration_sec"`
	// Rerouted counts tasks retried against a different edge after a
	// transport failure at the device's home edge (federation runs only).
	Rerouted int `json:"rerouted,omitempty"`
	// PerEdge breaks outcomes down by the edge that answered the final
	// attempt. Present only when the run drives more than one edge.
	PerEdge []EdgeBreakdown `json:"per_edge,omitempty"`
}

// EdgeBreakdown is one edge's slice of a federation run: how the tasks that
// ended at this edge fared.
type EdgeBreakdown struct {
	// Addr is the edge server's address.
	Addr string `json:"addr"`
	// Completed, Rejected, DeadlineSheds and Errors mirror the Result
	// counters, attributed to the edge serving the final attempt.
	Completed     int `json:"completed"`
	Rejected      int `json:"rejected"`
	DeadlineSheds int `json:"deadline_sheds"`
	Errors        int `json:"errors"`
	// Rerouted counts tasks that arrived here after failing elsewhere.
	Rerouted int `json:"rerouted"`
}

// devConn is one synthetic device's connection state: its current client and
// home-edge index, guarded for the reroute path (tasks of one device run
// concurrently).
type devConn struct {
	mu     sync.Mutex
	client *rpc.Client
	edge   int
}

// get snapshots the device's current client and edge index.
func (dc *devConn) get() (*rpc.Client, int) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.client, dc.edge
}

// reroute moves the device off a failed edge: it walks the fleet from the
// failure point, re-registering at the first edge that accepts, and swaps
// the connection. If another task already rerouted the device, the fresh
// connection is reused as-is. Returns the client to retry on, its edge
// index, and whether a retry is possible at all.
func (dc *devConn) reroute(ctx context.Context, cfg Config, id string, failed int) (*rpc.Client, int, bool) {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if dc.edge != failed {
		return dc.client, dc.edge, true
	}
	for k := 1; k < len(cfg.EdgeAddrs); k++ {
		e := (failed + k) % len(cfg.EdgeAddrs)
		c, err := dialRegister(ctx, cfg, cfg.EdgeAddrs[e], id)
		if err != nil {
			continue
		}
		_ = dc.client.Close()
		dc.client, dc.edge = c, e
		return c, e, true
	}
	return nil, failed, false
}

// dialRegister dials one edge and registers the synthetic device there.
func dialRegister(ctx context.Context, cfg Config, addr, id string) (*rpc.Client, error) {
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		return nil, fmt.Errorf("loadgen: device %s: %w", id, err)
	}
	regCtx, cancel := context.WithTimeout(ctx, rpc.DialTimeout)
	defer cancel()
	if _, err := c.Call(regCtx, runtime.RegisterReq{
		DeviceID:    id,
		FLOPS:       cfg.DeviceFLOPS,
		ArrivalMean: cfg.Rate,
		Model:       cfg.Model,
	}); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("loadgen: register %s: %w", id, err)
	}
	return c, nil
}

// Run executes one open-loop load run. The context cancels in-flight work;
// the run otherwise lasts the configured duration plus straggler drain.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	schedule, err := Schedule(cfg)
	if err != nil {
		return nil, err
	}
	runtime.RegisterMessages()

	conns := make([]*devConn, cfg.Devices)
	ids := make([]string, cfg.Devices)
	for i := range conns {
		ids[i] = fmt.Sprintf("%s-%02d", cfg.IDPrefix, i)
		home := i % len(cfg.EdgeAddrs)
		c, err := dialRegister(ctx, cfg, cfg.EdgeAddrs[home], ids[i])
		if err != nil {
			closeConns(conns)
			return nil, err
		}
		conns[i] = &devConn{client: c, edge: home}
	}
	defer func() {
		for i, dc := range conns {
			if dc == nil {
				continue
			}
			c, _ := dc.get()
			// Unregistration must survive the run context's cancellation
			// (SIGINT lands here too) or every aborted run leaks tenant
			// shares on the edge — detach cancellation, keep the lineage,
			// and bound the exchange on its own dial budget.
			unregCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), rpc.DialTimeout)
			_, _ = c.Call(unregCtx, runtime.UnregisterReq{DeviceID: ids[i]})
			cancel()
		}
		closeConns(conns)
	}()

	res := &Result{
		OfferedRate: float64(cfg.Devices) * cfg.Rate,
		Generated:   len(schedule),
		DurationSec: cfg.Duration.Seconds(),
	}
	perEdge := make([]EdgeBreakdown, len(cfg.EdgeAddrs))
	for e, addr := range cfg.EdgeAddrs {
		perEdge[e].Addr = addr
	}
	reservoir := metrics.NewSharedReservoir(cfg.ReservoirCap, cfg.Seed)
	var mu sync.Mutex // guards the counters below
	payload := make([]byte, int(cfg.Model.D[0]))

	start := time.Now()
	var wg sync.WaitGroup
	for _, a := range schedule {
		if sleepUntil(ctx, start.Add(a.At)) != nil {
			mu.Lock()
			res.Errors++ // cancelled before dispatch
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(a Arrival) {
			defer wg.Done()
			req := runtime.FirstBlockReq{
				DeviceID:  ids[a.Device],
				TaskID:    a.Task,
				Payload:   payload,
				ExitStage: a.Exit,
			}
			// The task's deadline is absolute from its scheduled arrival:
			// the sampled per-task budget when the schedule carries one, the
			// per-task timeout otherwise. Both anchor at the arrival, not the
			// attempt, so a rerouted retry spends only the remaining budget.
			deadline := absoluteDeadline(start, a, cfg.Timeout)
			taskCtx, cancel := taskContext(ctx, deadline)
			client, edge := conns[a.Device].get()
			resp, err := client.Call(taskCtx, req)
			rerouted := false
			if err != nil && len(cfg.EdgeAddrs) > 1 && transportFailure(err) {
				// The home edge is unreachable or answered with a fault:
				// move the device to the next live edge and retry once,
				// under the same absolute deadline.
				if c2, e2, ok := conns[a.Device].reroute(ctx, cfg, ids[a.Device], edge); ok {
					rerouted = true
					edge = e2
					cancel()
					taskCtx, cancel = taskContext(ctx, deadline)
					resp, err = c2.Call(taskCtx, req)
				}
			}
			cancel()
			elapsed := time.Since(start.Add(a.At)).Seconds()
			mu.Lock()
			defer mu.Unlock()
			if rerouted {
				res.Rerouted++
				perEdge[edge].Rerouted++
			}
			switch {
			case err == nil:
				res.Completed++
				res.Exits[exitIndex(resp, a.Exit)]++
				perEdge[edge].Completed++
				reservoir.Add(elapsed)
			case errors.Is(err, runtime.ErrDeadlineInfeasible):
				// Deadline admission predicted the task cannot finish in
				// time. The sentinel also unwraps to ErrOverloaded, so this
				// arm must precede the backpressure one: an infeasible task
				// is a shed (its budget is doomed anywhere), not a
				// degrade-to-local rejection.
				res.DeadlineSheds++
				perEdge[edge].DeadlineSheds++
			case errors.Is(err, runtime.ErrBusy) || errors.Is(err, runtime.ErrOverloaded):
				res.Rejected++
				perEdge[edge].Rejected++
			case errors.Is(err, rpc.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
				res.DeadlineSheds++
				perEdge[edge].DeadlineSheds++
			default:
				res.Errors++
				perEdge[edge].Errors++
			}
		}(a)
	}
	wg.Wait()
	if len(cfg.EdgeAddrs) > 1 {
		res.PerEdge = perEdge
	}

	res.AchievedRate = float64(res.Completed) / cfg.Duration.Seconds()
	res.Latency = Latency{
		Samples: reservoir.Count(),
		Mean:    reservoir.Mean(),
		P50:     reservoir.Percentile(50),
		P95:     reservoir.Percentile(95),
		P99:     reservoir.Percentile(99),
		Max:     reservoir.Max(),
	}
	return res, nil
}

// absoluteDeadline resolves one task's wall-clock deadline: the schedule's
// sampled budget when present, the configured per-task timeout otherwise,
// both measured from the task's scheduled arrival. Zero means unbounded.
func absoluteDeadline(start time.Time, a Arrival, timeout time.Duration) time.Time {
	budget := a.Deadline
	if budget <= 0 {
		budget = timeout
	}
	if budget <= 0 {
		return time.Time{}
	}
	return start.Add(a.At).Add(budget)
}

// taskContext derives the per-task context: the run context, bounded by the
// task's absolute deadline when one is set. The deadline rides the rpc
// envelope to the edge, where deadline admission reads it.
func taskContext(ctx context.Context, deadline time.Time) (context.Context, context.CancelFunc) {
	if deadline.IsZero() {
		return context.WithCancel(ctx)
	}
	return context.WithDeadline(ctx, deadline)
}

// sleepUntil blocks until the deadline or the context ends, whichever is
// first. It returns nil when the deadline was reached (including deadlines
// already in the past — open-loop dispatch never skips a scheduled task).
func sleepUntil(ctx context.Context, deadline time.Time) error {
	d := time.Until(deadline)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// exitIndex resolves the Exits bucket for a completed task: the exit stage
// the edge reports (degradation may answer through a shallower exit than
// requested), falling back to the scheduled exit on malformed replies.
func exitIndex(resp any, scheduled int) int {
	if tr, ok := resp.(runtime.TaskResp); ok && tr.ExitStage >= 1 && tr.ExitStage <= 3 {
		return tr.ExitStage - 1
	}
	return scheduled - 1
}

// transportFailure reports whether the error warrants trying another edge:
// anything that is not backpressure (the edge is alive and refusing) and not
// a deadline (the task's time budget is spent either way).
func transportFailure(err error) bool {
	return !errors.Is(err, runtime.ErrBusy) &&
		!errors.Is(err, runtime.ErrOverloaded) &&
		!errors.Is(err, rpc.ErrDeadlineExceeded) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// closeConns closes every non-nil device connection.
func closeConns(conns []*devConn) {
	for _, dc := range conns {
		if dc == nil {
			continue
		}
		c, _ := dc.get()
		_ = c.Close()
	}
}

// SweepResult is the saturation report of a rate sweep: one Result per
// offered rate, in sweep order. Plotting achieved vs offered rate locates
// the knee; p99 against offered rate shows the latency cliff past it.
type SweepResult struct {
	// Points are the per-rate run reports.
	Points []Result `json:"points"`
}

// Sweep runs the configuration at each per-device rate in turn, namespacing
// device IDs per point so tenant state never collides, and pausing briefly
// between points so one point's stragglers do not pollute the next.
func Sweep(ctx context.Context, base Config, rates []float64) (*SweepResult, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: empty rate sweep")
	}
	out := &SweepResult{}
	for i, r := range rates {
		cfg := base
		cfg.Rate = r
		cfg.IDPrefix = fmt.Sprintf("%s-r%d", base.withDefaults().IDPrefix, i)
		res, err := Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep point %v/s: %w", r, err)
		}
		out.Points = append(out.Points, *res)
		if err := sleepUntil(ctx, time.Now().Add(50*time.Millisecond)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
