// Package loadgen is the open-loop load harness of the testbed: N synthetic
// devices offer first-block work to a live edge at a configured rate,
// regardless of how fast the edge answers. Open-loop arrivals are the honest
// way to measure a server's capacity — a closed loop (next request after the
// previous reply) slows its own offered load exactly when the server
// saturates, hiding the latency the backlog inflicts (coordinated omission).
// Here every task's latency is measured from its *scheduled* arrival, so
// queueing delay, admission rejections and deadline sheds all show up in the
// report.
//
// The harness speaks the runtime protocol directly (RegisterReq +
// FirstBlockReq) rather than running runtime.Device instances: a capacity
// probe must not adapt, fall back to local execution, or make offloading
// decisions. Rejections (ErrBusy, ErrOverloaded) are counted as the
// degrade-to-local signals a real device would absorb.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"leime/internal/metrics"
	"leime/internal/rpc"
	"leime/internal/runtime"
)

// This file is the live half of the harness: it dispatches the schedule
// against a real edge over real time, so wall-clock reads are its whole
// purpose. The package stays in the determinism analyzer's pure set to
// guard schedule.go; this one file opts out.
//
//lint:file-ignore determinism open-loop dispatch paces real RPCs against the wall clock by design; the deterministic half of the package lives in schedule.go

// Latency summarizes the end-to-end latency distribution of completed
// tasks, in seconds, measured from each task's scheduled arrival.
type Latency struct {
	// Samples is the number of latencies recorded.
	Samples int `json:"samples"`
	// Mean is the exact mean over all completions.
	Mean float64 `json:"mean_sec"`
	// P50, P95 and P99 are reservoir-estimated percentiles.
	P50 float64 `json:"p50_sec"`
	P95 float64 `json:"p95_sec"`
	P99 float64 `json:"p99_sec"`
	// Max is the exact maximum.
	Max float64 `json:"max_sec"`
}

// Result is the report of one load run.
type Result struct {
	// OfferedRate is the configured aggregate offered load in tasks/sec.
	OfferedRate float64 `json:"offered_rate_per_sec"`
	// AchievedRate is completions divided by the generation horizon.
	AchievedRate float64 `json:"achieved_rate_per_sec"`
	// Generated counts scheduled tasks; Completed counts successful ones.
	Generated int `json:"generated"`
	Completed int `json:"completed"`
	// Rejected counts tasks the edge refused with admission control
	// (ErrBusy or ErrOverloaded) — the degrade-to-local signals a real
	// device would absorb by running the blocks itself.
	Rejected int `json:"rejected"`
	// DeadlineSheds counts tasks whose per-task timeout elapsed.
	DeadlineSheds int `json:"deadline_sheds"`
	// Errors counts everything else (transport failures, server faults).
	Errors int `json:"errors"`
	// Exits tallies completions by exit stage.
	Exits [3]int `json:"exits"`
	// Latency is the completion-latency distribution.
	Latency Latency `json:"latency"`
	// DurationSec is the configured generation horizon.
	DurationSec float64 `json:"duration_sec"`
}

// Run executes one open-loop load run. The context cancels in-flight work;
// the run otherwise lasts the configured duration plus straggler drain.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	schedule, err := Schedule(cfg)
	if err != nil {
		return nil, err
	}
	runtime.RegisterMessages()

	clients := make([]*rpc.Client, cfg.Devices)
	ids := make([]string, cfg.Devices)
	for i := range clients {
		ids[i] = fmt.Sprintf("%s-%02d", cfg.IDPrefix, i)
		c, err := rpc.Dial(cfg.EdgeAddr, nil)
		if err != nil {
			closeAll(clients)
			return nil, fmt.Errorf("loadgen: device %s: %w", ids[i], err)
		}
		clients[i] = c
		regCtx, cancel := context.WithTimeout(ctx, rpc.DialTimeout)
		_, err = c.Call(regCtx, runtime.RegisterReq{
			DeviceID:    ids[i],
			FLOPS:       cfg.DeviceFLOPS,
			ArrivalMean: cfg.Rate,
			Model:       cfg.Model,
		})
		cancel()
		if err != nil {
			closeAll(clients)
			return nil, fmt.Errorf("loadgen: register %s: %w", ids[i], err)
		}
	}
	defer func() {
		for i, c := range clients {
			unregCtx, cancel := context.WithTimeout(context.Background(), rpc.DialTimeout)
			_, _ = c.Call(unregCtx, runtime.UnregisterReq{DeviceID: ids[i]})
			cancel()
		}
		closeAll(clients)
	}()

	res := &Result{
		OfferedRate: float64(cfg.Devices) * cfg.Rate,
		Generated:   len(schedule),
		DurationSec: cfg.Duration.Seconds(),
	}
	reservoir := metrics.NewSharedReservoir(cfg.ReservoirCap, cfg.Seed)
	var mu sync.Mutex // guards the counters below
	payload := make([]byte, int(cfg.Model.D[0]))

	start := time.Now()
	var wg sync.WaitGroup
	for _, a := range schedule {
		if sleepUntil(ctx, start.Add(a.At)) != nil {
			mu.Lock()
			res.Errors++ // cancelled before dispatch
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(a Arrival) {
			defer wg.Done()
			taskCtx, cancel := taskContext(ctx, cfg.Timeout)
			defer cancel()
			_, err := clients[a.Device].Call(taskCtx, runtime.FirstBlockReq{
				DeviceID:  ids[a.Device],
				TaskID:    a.Task,
				Payload:   payload,
				ExitStage: a.Exit,
			})
			elapsed := time.Since(start.Add(a.At)).Seconds()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				res.Completed++
				res.Exits[a.Exit-1]++
				reservoir.Add(elapsed)
			case errors.Is(err, runtime.ErrBusy) || errors.Is(err, runtime.ErrOverloaded):
				res.Rejected++
			case errors.Is(err, rpc.ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
				res.DeadlineSheds++
			default:
				res.Errors++
			}
		}(a)
	}
	wg.Wait()

	res.AchievedRate = float64(res.Completed) / cfg.Duration.Seconds()
	res.Latency = Latency{
		Samples: reservoir.Count(),
		Mean:    reservoir.Mean(),
		P50:     reservoir.Percentile(50),
		P95:     reservoir.Percentile(95),
		P99:     reservoir.Percentile(99),
		Max:     reservoir.Max(),
	}
	return res, nil
}

// taskContext derives the per-task context: the run context, bounded by the
// per-task timeout when one is configured.
func taskContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, timeout)
}

// sleepUntil blocks until the deadline or the context ends, whichever is
// first. It returns nil when the deadline was reached (including deadlines
// already in the past — open-loop dispatch never skips a scheduled task).
func sleepUntil(ctx context.Context, deadline time.Time) error {
	d := time.Until(deadline)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// closeAll closes every non-nil client.
func closeAll(clients []*rpc.Client) {
	for _, c := range clients {
		if c != nil {
			_ = c.Close()
		}
	}
}

// SweepResult is the saturation report of a rate sweep: one Result per
// offered rate, in sweep order. Plotting achieved vs offered rate locates
// the knee; p99 against offered rate shows the latency cliff past it.
type SweepResult struct {
	// Points are the per-rate run reports.
	Points []Result `json:"points"`
}

// Sweep runs the configuration at each per-device rate in turn, namespacing
// device IDs per point so tenant state never collides, and pausing briefly
// between points so one point's stragglers do not pollute the next.
func Sweep(ctx context.Context, base Config, rates []float64) (*SweepResult, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("loadgen: empty rate sweep")
	}
	out := &SweepResult{}
	for i, r := range rates {
		cfg := base
		cfg.Rate = r
		cfg.IDPrefix = fmt.Sprintf("%s-r%d", base.withDefaults().IDPrefix, i)
		res, err := Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen: sweep point %v/s: %w", r, err)
		}
		out.Points = append(out.Points, *res)
		if err := sleepUntil(ctx, time.Now().Add(50*time.Millisecond)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
