package loadgen

import (
	"context"
	"reflect"
	"testing"
	"time"

	"leime/internal/offload"
	"leime/internal/runtime"
)

// testModel mirrors the runtime package's test model: small blocks so
// scaled runs finish fast.
func testModel() offload.ModelParams {
	return offload.ModelParams{
		Mu:    [3]float64{2e8, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
}

// TestScheduleDeterministic pins the harness's reproducibility contract:
// equal configurations (including seed) expand to identical schedules, and
// a different seed actually moves the arrivals.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{
		EdgeAddr: "unused:0",
		Devices:  3,
		Rate:     20,
		Duration: 2 * time.Second,
		Seed:     42,
		Model:    testModel(),
	}
	a, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	b, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule (rerun): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal configs produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule for a 3-device 20/s 2s run")
	}
	cfg.Seed = 43
	c, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule (new seed): %v", err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("changing the seed did not change the schedule")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted: arrival %d at %v after %v", i, a[i].At, a[i-1].At)
		}
	}
}

// TestScheduleConstantSpacing checks the constant arrival process spaces
// each device's tasks exactly 1/Rate apart.
func TestScheduleConstantSpacing(t *testing.T) {
	cfg := Config{
		EdgeAddr: "unused:0",
		Devices:  1,
		Rate:     10,
		Arrival:  "constant",
		Duration: time.Second,
		Model:    testModel(),
	}
	sched, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if len(sched) != 9 {
		t.Fatalf("constant 10/s over 1s = 9 arrivals (0.1s..0.9s), got %d", len(sched))
	}
	for i, a := range sched {
		want := time.Duration(i+1) * 100 * time.Millisecond
		if diff := a.At - want; diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("arrival %d at %v, want %v", i, a.At, want)
		}
	}
}

// TestScheduleValidates checks bad configurations are rejected.
func TestScheduleValidates(t *testing.T) {
	bad := []Config{
		{Devices: 1, Rate: 5, Duration: time.Second, Model: testModel()},                                    // no addr
		{EdgeAddr: "x:0", Devices: 1, Rate: -1, Duration: time.Second, Model: testModel()},                  // bad rate
		{EdgeAddr: "x:0", Devices: 1, Rate: 5, Arrival: "burst", Duration: time.Second, Model: testModel()}, // bad process
		{EdgeAddr: "x:0", Devices: 1, Rate: 5, Duration: time.Second},                                       // bad model
	}
	for i, cfg := range bad {
		if _, err := Schedule(cfg); err == nil {
			t.Errorf("config %d: Schedule accepted an invalid configuration", i)
		}
	}
}

// TestScheduleDeadlineSampling checks the per-task deadline budgets: zero
// without a base, jittered within ±25% of the base when one is set, and the
// per-tenant list overriding the global base by device index.
func TestScheduleDeadlineSampling(t *testing.T) {
	cfg := Config{
		EdgeAddr: "unused:0",
		Devices:  2,
		Rate:     20,
		Duration: 2 * time.Second,
		Seed:     42,
		Model:    testModel(),
	}
	plain, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	for i, a := range plain {
		if a.Deadline != 0 {
			t.Fatalf("arrival %d carries deadline %v without a configured base", i, a.Deadline)
		}
	}

	cfg.DeadlineSec = 2
	sched, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule with deadlines: %v", err)
	}
	again, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule rerun: %v", err)
	}
	if !reflect.DeepEqual(sched, again) {
		t.Fatal("deadline sampling broke schedule determinism")
	}
	distinct := map[time.Duration]bool{}
	for i, a := range sched {
		lo, hi := 1500*time.Millisecond, 2500*time.Millisecond
		if a.Deadline < lo || a.Deadline > hi {
			t.Fatalf("arrival %d deadline %v outside ±25%% of the 2s base", i, a.Deadline)
		}
		distinct[a.Deadline] = true
	}
	if len(distinct) < 2 {
		t.Error("deadline jitter produced a single budget; EDF has nothing to sort")
	}

	cfg.TenantDeadlineSec = []float64{1, 4}
	tiered, err := Schedule(cfg)
	if err != nil {
		t.Fatalf("Schedule with tenant deadlines: %v", err)
	}
	for i, a := range tiered {
		base := time.Duration(cfg.TenantDeadlineSec[a.Device%2] * float64(time.Second))
		lo, hi := base*3/4, base*5/4
		if a.Deadline < lo || a.Deadline > hi {
			t.Fatalf("arrival %d (device %d) deadline %v outside [%v, %v]", i, a.Device, a.Deadline, lo, hi)
		}
	}
}

// TestAbsoluteDeadlineAnchorsAtArrival pins the reroute-budget fix: the
// task's wall-clock deadline derives once from its scheduled arrival, so a
// retry context carries the remaining budget rather than a fresh timeout.
func TestAbsoluteDeadlineAnchorsAtArrival(t *testing.T) {
	start := time.Unix(1000, 0)
	a := Arrival{At: 3 * time.Second, Deadline: 2 * time.Second}
	want := start.Add(5 * time.Second)
	if got := absoluteDeadline(start, a, time.Minute); !got.Equal(want) {
		t.Errorf("sampled budget: deadline %v, want %v (Timeout must not override it)", got, want)
	}
	a.Deadline = 0
	want = start.Add(3*time.Second + time.Minute)
	if got := absoluteDeadline(start, a, time.Minute); !got.Equal(want) {
		t.Errorf("timeout fallback: deadline %v, want %v", got, want)
	}
	if got := absoluteDeadline(start, a, 0); !got.IsZero() {
		t.Errorf("no budget anywhere: deadline %v, want zero time", got)
	}

	ctx, cancel := taskContext(context.Background(), want)
	defer cancel()
	if d, ok := ctx.Deadline(); !ok || !d.Equal(want) {
		t.Errorf("taskContext deadline %v (ok=%v), want %v", d, ok, want)
	}
	ctx2, cancel2 := taskContext(context.Background(), time.Time{})
	defer cancel2()
	if _, ok := ctx2.Deadline(); ok {
		t.Error("zero deadline must leave the context unbounded")
	}
}

// TestRunClassifiesDeadlineSheds drives a slow edge running deadline
// admission with budgets its backlog cannot honour: doomed tasks must land
// in DeadlineSheds (admission's infeasible verdict or the elapsed context),
// never in Errors, and classification must not leak.
func TestRunClassifiesDeadlineSheds(t *testing.T) {
	edge := startTestbed(t, runtime.EdgeConfig{
		FLOPS:  2e9,
		Policy: runtime.ControlPolicy{DeadlineAdmission: true, EDF: true},
	})
	res, err := Run(context.Background(), Config{
		EdgeAddr:    edge.Addr(),
		Devices:     2,
		Rate:        200,
		Duration:    time.Second,
		Seed:        7,
		Model:       testModel(),
		DeadlineSec: 0.2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.DeadlineSheds == 0 {
		t.Error("no deadline sheds despite 400/s offered with 0.2s budgets against a 2 GFLOPS edge")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d; infeasible tasks must classify as deadline sheds", res.Errors)
	}
	if got := res.Completed + res.Rejected + res.DeadlineSheds + res.Errors; got != res.Generated {
		t.Errorf("classification leak: %d classified vs %d generated", got, res.Generated)
	}
}

// startTestbed brings up an in-process cloud+edge pair for live runs.
func startTestbed(t *testing.T, edgeCfg runtime.EdgeConfig) *runtime.Edge {
	t.Helper()
	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: testModel().Mu[2],
		TimeScale:   0.01,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	t.Cleanup(func() { _ = cloud.Close() })
	edgeCfg.Addr = "127.0.0.1:0"
	edgeCfg.Model = testModel()
	edgeCfg.CloudAddr = cloud.Addr()
	edgeCfg.TimeScale = 0.01
	edge, err := runtime.StartEdge(edgeCfg)
	if err != nil {
		t.Fatalf("StartEdge: %v", err)
	}
	t.Cleanup(func() { _ = edge.Close() })
	return edge
}

// TestRunAgainstTestbed drives a live in-process edge and checks the
// report's accounting: every scheduled task is classified exactly once and
// the latency summary covers every completion.
func TestRunAgainstTestbed(t *testing.T) {
	edge := startTestbed(t, runtime.EdgeConfig{FLOPS: 6e10})
	res, err := Run(context.Background(), Config{
		EdgeAddr: edge.Addr(),
		Devices:  2,
		Rate:     20,
		Duration: time.Second,
		Seed:     7,
		Model:    testModel(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions against an unloaded edge")
	}
	if got := res.Completed + res.Rejected + res.DeadlineSheds + res.Errors; got != res.Generated {
		t.Errorf("classification leak: %d classified vs %d generated", got, res.Generated)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d, want 0 against a healthy testbed", res.Errors)
	}
	if res.Latency.Samples != res.Completed {
		t.Errorf("latency samples %d != completions %d", res.Latency.Samples, res.Completed)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 || res.Latency.Max < res.Latency.P99 {
		t.Errorf("latency summary not ordered: p50=%v p99=%v max=%v",
			res.Latency.P50, res.Latency.P99, res.Latency.Max)
	}
	if res.Exits[0]+res.Exits[1]+res.Exits[2] != res.Completed {
		t.Errorf("exit tallies %v do not sum to completions %d", res.Exits, res.Completed)
	}
}

// TestRunCountsAdmissionRejections saturates a tiny backlog budget and
// checks rejections are classified as such, not as errors.
func TestRunCountsAdmissionRejections(t *testing.T) {
	edge := startTestbed(t, runtime.EdgeConfig{
		FLOPS:  2e9,
		Policy: runtime.ControlPolicy{MaxBacklogSec: 0.1},
	})
	res, err := Run(context.Background(), Config{
		EdgeAddr: edge.Addr(),
		Devices:  2,
		Rate:     60,
		Duration: time.Second,
		Seed:     7,
		Model:    testModel(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rejected == 0 {
		t.Error("no rejections despite 120/s offered against a 2 GFLOPS edge with a 0.1s budget")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d; rejections must classify as Rejected", res.Errors)
	}
}

// startFleetTestbed brings up one cloud and n edges against it.
func startFleetTestbed(t *testing.T, n int, edgeCfg runtime.EdgeConfig) []*runtime.Edge {
	t.Helper()
	cloud, err := runtime.StartCloud(runtime.CloudConfig{
		Addr:        "127.0.0.1:0",
		FLOPS:       2e12,
		Block3FLOPs: testModel().Mu[2],
		TimeScale:   0.01,
	})
	if err != nil {
		t.Fatalf("StartCloud: %v", err)
	}
	t.Cleanup(func() { _ = cloud.Close() })
	edges := make([]*runtime.Edge, n)
	for i := range edges {
		cfg := edgeCfg
		cfg.Addr = "127.0.0.1:0"
		cfg.Model = testModel()
		cfg.CloudAddr = cloud.Addr()
		cfg.TimeScale = 0.01
		e, err := runtime.StartEdge(cfg)
		if err != nil {
			t.Fatalf("StartEdge %d: %v", i, err)
		}
		edges[i] = e
		t.Cleanup(func() { _ = e.Close() })
	}
	return edges
}

// fleetAddrs extracts the listen addresses of a testbed fleet.
func fleetAddrs(edges []*runtime.Edge) []string {
	addrs := make([]string, len(edges))
	for i, e := range edges {
		addrs[i] = e.Addr()
	}
	return addrs
}

// TestRunMultiEdgeBreakdown drives two edges at once and checks the
// per-edge breakdown: devices split across both homes, every edge serves
// work, and the per-edge tallies sum to the aggregate counters.
func TestRunMultiEdgeBreakdown(t *testing.T) {
	edges := startFleetTestbed(t, 2, runtime.EdgeConfig{FLOPS: 6e10})
	res, err := Run(context.Background(), Config{
		EdgeAddrs: fleetAddrs(edges),
		Devices:   4,
		Rate:      15,
		Duration:  time.Second,
		Seed:      7,
		Model:     testModel(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.PerEdge) != 2 {
		t.Fatalf("%d per-edge rows, want 2", len(res.PerEdge))
	}
	var comp, rej, shed, errs int
	for e, b := range res.PerEdge {
		if b.Addr != edges[e].Addr() {
			t.Errorf("row %d addr %q, want %q", e, b.Addr, edges[e].Addr())
		}
		if b.Completed == 0 {
			t.Errorf("edge %d completed nothing; devices never split across homes", e)
		}
		comp += b.Completed
		rej += b.Rejected
		shed += b.DeadlineSheds
		errs += b.Errors
	}
	if comp != res.Completed || rej != res.Rejected || shed != res.DeadlineSheds || errs != res.Errors {
		t.Errorf("per-edge tallies (%d/%d/%d/%d) do not sum to aggregates (%d/%d/%d/%d)",
			comp, rej, shed, errs, res.Completed, res.Rejected, res.DeadlineSheds, res.Errors)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d against a healthy fleet", res.Errors)
	}
}

// TestRunReroutesOnEdgeKill kills one of two edges mid-run: its devices
// must reroute to the survivor and classification must not leak.
func TestRunReroutesOnEdgeKill(t *testing.T) {
	edges := startFleetTestbed(t, 2, runtime.EdgeConfig{FLOPS: 6e10})
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(300 * time.Millisecond)
		_ = edges[0].Close()
	}()
	res, err := Run(context.Background(), Config{
		EdgeAddrs: fleetAddrs(edges),
		Devices:   4,
		Rate:      15,
		Duration:  time.Second,
		Seed:      7,
		Model:     testModel(),
	})
	<-killed
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rerouted == 0 {
		t.Error("no reroutes despite killing a home edge mid-run")
	}
	if got := res.Completed + res.Rejected + res.DeadlineSheds + res.Errors; got != res.Generated {
		t.Errorf("classification leak: %d classified vs %d generated", got, res.Generated)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d; kills must reroute, not surface transport faults", res.Errors)
	}
	if res.PerEdge[1].Completed <= res.PerEdge[0].Completed {
		t.Errorf("survivor completed %d <= killed edge's %d; reroute never shifted load",
			res.PerEdge[1].Completed, res.PerEdge[0].Completed)
	}
}

// TestSweepOrdersPoints checks a sweep reports one point per rate in order.
func TestSweepOrdersPoints(t *testing.T) {
	edge := startTestbed(t, runtime.EdgeConfig{FLOPS: 6e10})
	sweep, err := Sweep(context.Background(), Config{
		EdgeAddr: edge.Addr(),
		Devices:  1,
		Duration: 500 * time.Millisecond,
		Seed:     7,
		Model:    testModel(),
	}, []float64{10, 30})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("%d points, want 2", len(sweep.Points))
	}
	if sweep.Points[0].OfferedRate != 10 || sweep.Points[1].OfferedRate != 30 {
		t.Errorf("offered rates %v, %v; want 10, 30",
			sweep.Points[0].OfferedRate, sweep.Points[1].OfferedRate)
	}
}
