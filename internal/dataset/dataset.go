// Package dataset generates synthetic CIFAR-10-like workloads. The original
// system runs image recognition on CIFAR-10; latency experiments consume the
// dataset only through (a) each task's input byte size and (b) how hard each
// sample is to classify, which drives early-exit behaviour. This package
// therefore models a dataset as a distribution of per-sample difficulties in
// [0, 1] (0 = trivially easy, 1 = needs the full network) plus a deterministic
// pseudo-image payload generator for wire-level experiments.
//
// The paper's motivation experiments (§II-B2, Fig. 3(b)) synthesize datasets
// of different complexity "reflected by the exit rate of First-exit"; the
// Mixture type reproduces that knob.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one inference task input.
type Sample struct {
	// ID is the sample's index within its dataset.
	ID int
	// Difficulty in [0, 1]: the fraction of network depth the sample needs
	// before a confident prediction is possible.
	Difficulty float64
	// Label is the ground-truth class in [0, NumClasses).
	Label int
}

// NumClasses is the label cardinality (CIFAR-10).
const NumClasses = 10

// ImageBytes is the raw payload size of one sample (32x32 RGB, 8-bit).
const ImageBytes = 32 * 32 * 3

// Mixture parameterizes a three-component difficulty distribution: a share
// of easy samples (difficulty near EasyMode), a share of hard samples (near
// HardMode), and the remainder spread in between. Increasing EasyFrac raises
// the First-exit exit rate, which is exactly the complexity knob of the
// paper's Fig. 3(b).
type Mixture struct {
	// EasyFrac is the fraction of easy samples in [0, 1].
	EasyFrac float64
	// HardFrac is the fraction of hard samples in [0, 1-EasyFrac].
	HardFrac float64
	// EasyMode and HardMode are the difficulty centers of the two extreme
	// components.
	EasyMode float64
	// HardMode is the difficulty center of the hard component.
	HardMode float64
	// Spread is the half-width of each component's difficulty band.
	Spread float64
}

// Validate reports whether the mixture is a usable distribution.
func (m Mixture) Validate() error {
	if m.EasyFrac < 0 || m.HardFrac < 0 || m.EasyFrac+m.HardFrac > 1 {
		return fmt.Errorf("dataset: fractions (easy=%v, hard=%v) must be non-negative and sum to at most 1", m.EasyFrac, m.HardFrac)
	}
	if m.Spread < 0 || m.Spread > 0.5 {
		return fmt.Errorf("dataset: spread %v out of range [0, 0.5]", m.Spread)
	}
	for _, mode := range []float64{m.EasyMode, m.HardMode} {
		if mode < 0 || mode > 1 {
			return fmt.Errorf("dataset: mode %v out of range [0, 1]", mode)
		}
	}
	return nil
}

// CIFAR10Like is the default mixture, calibrated so a mid-depth First exit
// sees roughly the exit rates reported for CIFAR-10 multi-exit networks
// (a majority of samples are easy).
var CIFAR10Like = Mixture{
	EasyFrac: 0.55,
	HardFrac: 0.15,
	EasyMode: 0.15,
	HardMode: 0.9,
	Spread:   0.12,
}

// WithEasyFrac returns a copy of the mixture with the easy-sample share
// replaced (the complexity knob of Fig. 3(b)).
func (m Mixture) WithEasyFrac(f float64) Mixture {
	out := m
	out.EasyFrac = f
	if out.EasyFrac+out.HardFrac > 1 {
		out.HardFrac = 1 - out.EasyFrac
	}
	return out
}

// Dataset is an ordered collection of samples drawn from one mixture.
type Dataset struct {
	// Samples are the generated samples, in generation order.
	Samples []Sample
	// Mix records the generating mixture.
	Mix  Mixture
	seed int64
}

// Generate draws n samples from the mixture, deterministically for a given
// seed.
func Generate(mix Mixture, n int, seed int64) (*Dataset, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("dataset: sample count %d must be positive", n)
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Samples: make([]Sample, n), Mix: mix, seed: seed}
	for i := range ds.Samples {
		ds.Samples[i] = Sample{
			ID:         i,
			Difficulty: mix.draw(rng),
			Label:      rng.Intn(NumClasses),
		}
	}
	return ds, nil
}

// draw samples one difficulty value.
func (m Mixture) draw(rng *rand.Rand) float64 {
	u := rng.Float64()
	var center float64
	switch {
	case u < m.EasyFrac:
		center = m.EasyMode
	case u < m.EasyFrac+m.HardFrac:
		center = m.HardMode
	default:
		// Middle band between the two modes.
		span := m.HardMode - m.EasyMode
		center = m.EasyMode + span*rng.Float64()
	}
	d := center + m.Spread*(2*rng.Float64()-1)
	return clamp01(d)
}

// MeanDifficulty returns the dataset's empirical mean difficulty.
func (d *Dataset) MeanDifficulty() float64 {
	if len(d.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range d.Samples {
		sum += s.Difficulty
	}
	return sum / float64(len(d.Samples))
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Image deterministically renders sample i's pseudo-image payload: a smooth
// pattern seeded by the sample identity, with per-pixel noise scaled by the
// sample's difficulty (harder samples are noisier). The payload exists so
// wire-level experiments move realistic, incompressible bytes.
func (d *Dataset) Image(i int) []byte {
	s := d.Samples[i%len(d.Samples)]
	rng := rand.New(rand.NewSource(d.seed ^ int64(s.ID)*0x9e3779b9))
	img := make([]byte, ImageBytes)
	noise := s.Difficulty
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			base := math.Sin(float64(x)/5+float64(s.Label)) * math.Cos(float64(y)/7)
			for c := 0; c < 3; c++ {
				v := 128 + 90*base + 60*noise*(2*rng.Float64()-1)
				img[(y*32+x)*3+c] = byte(clamp(v, 0, 255))
			}
		}
	}
	return img
}

func clamp01(v float64) float64 { return clamp(v, 0, 1) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
