package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(CIFAR10Like, 500, 42)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(CIFAR10Like, 500, 42)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across identical seeds: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(CIFAR10Like, 200, 1)
	b, _ := Generate(CIFAR10Like, 200, 2)
	same := 0
	for i := range a.Samples {
		if a.Samples[i].Difficulty == b.Samples[i].Difficulty {
			same++
		}
	}
	if same == len(a.Samples) {
		t.Error("different seeds produced identical difficulty sequences")
	}
}

func TestDifficultyRange(t *testing.T) {
	ds, err := Generate(CIFAR10Like, 2000, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, s := range ds.Samples {
		if s.Difficulty < 0 || s.Difficulty > 1 {
			t.Fatalf("sample %d difficulty %v out of [0,1]", s.ID, s.Difficulty)
		}
		if s.Label < 0 || s.Label >= NumClasses {
			t.Fatalf("sample %d label %d out of range", s.ID, s.Label)
		}
	}
}

func TestEasyFracShiftsMeanDifficulty(t *testing.T) {
	easy, _ := Generate(CIFAR10Like.WithEasyFrac(0.9), 3000, 11)
	hard, _ := Generate(CIFAR10Like.WithEasyFrac(0.1), 3000, 11)
	if easy.MeanDifficulty() >= hard.MeanDifficulty() {
		t.Errorf("easier mixture should have lower mean difficulty: %v vs %v",
			easy.MeanDifficulty(), hard.MeanDifficulty())
	}
}

func TestWithEasyFracKeepsValid(t *testing.T) {
	f := func(raw uint8) bool {
		frac := float64(raw) / 255
		m := CIFAR10Like.WithEasyFrac(frac)
		return m.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadMixtures(t *testing.T) {
	cases := []Mixture{
		{EasyFrac: -0.1, Spread: 0.1},
		{EasyFrac: 0.7, HardFrac: 0.5, Spread: 0.1},
		{EasyFrac: 0.2, Spread: 0.9},
		{EasyFrac: 0.2, Spread: 0.1, EasyMode: 1.5},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, m)
		}
	}
}

func TestGenerateRejectsBadCount(t *testing.T) {
	if _, err := Generate(CIFAR10Like, 0, 1); err == nil {
		t.Error("Generate(n=0) expected error")
	}
}

func TestImagePayload(t *testing.T) {
	ds, _ := Generate(CIFAR10Like, 10, 3)
	img := ds.Image(4)
	if len(img) != ImageBytes {
		t.Fatalf("Image length %d, want %d", len(img), ImageBytes)
	}
	again := ds.Image(4)
	for i := range img {
		if img[i] != again[i] {
			t.Fatal("Image not deterministic")
		}
	}
	other := ds.Image(5)
	diff := 0
	for i := range img {
		if img[i] != other[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different samples rendered identical images")
	}
	// Payload should not be trivially constant.
	var mean float64
	for _, b := range img {
		mean += float64(b)
	}
	mean /= float64(len(img))
	var varsum float64
	for _, b := range img {
		d := float64(b) - mean
		varsum += d * d
	}
	if math.Sqrt(varsum/float64(len(img))) < 5 {
		t.Error("image payload nearly constant; wire experiments would be unrealistic")
	}
}
