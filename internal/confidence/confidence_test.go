package confidence

import (
	"bytes"
	"testing"
	"testing/quick"

	"leime/internal/dataset"
	"leime/internal/model"
)

func newModel(t *testing.T, p *model.Profile) (*Model, *dataset.Dataset) {
	t.Helper()
	m, err := New(p, DefaultParams(p.Name), 99)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ds, err := dataset.Generate(dataset.CIFAR10Like, 1500, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return m, ds
}

func TestSigmaMonotoneAndTerminal(t *testing.T) {
	for _, p := range model.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, ds := newModel(t, p)
			sigma := m.Sigma(ds, m.UniformThresholds(0.6))
			if len(sigma) != p.NumExits() {
				t.Fatalf("sigma length %d, want %d", len(sigma), p.NumExits())
			}
			for i := 1; i < len(sigma); i++ {
				if sigma[i] < sigma[i-1] {
					t.Errorf("sigma not monotone at %d: %v < %v", i, sigma[i], sigma[i-1])
				}
			}
			if sigma[len(sigma)-1] != 1 {
				t.Errorf("sigma_m = %v, want 1", sigma[len(sigma)-1])
			}
			for i, s := range sigma {
				if s < 0 || s > 1 {
					t.Errorf("sigma[%d] = %v out of [0,1]", i, s)
				}
			}
		})
	}
}

func TestDeeperExitMoreConfident(t *testing.T) {
	p := model.InceptionV3()
	m, ds := newModel(t, p)
	// For every sample, confidence must be non-decreasing in depth (noise is
	// per-sample, not per-exit, so the depth term dominates).
	for _, s := range ds.Samples[:200] {
		prev := -1.0
		for e := 1; e <= p.NumExits(); e++ {
			c := m.Confidence(s, e)
			if c < prev {
				t.Fatalf("sample %d: confidence decreased with depth at exit %d: %v < %v", s.ID, e, c, prev)
			}
			prev = c
		}
	}
}

func TestEasierDatasetExitsEarlier(t *testing.T) {
	p := model.InceptionV3()
	m, _ := newModel(t, p)
	easy, _ := dataset.Generate(dataset.CIFAR10Like.WithEasyFrac(0.9), 2000, 5)
	hard, _ := dataset.Generate(dataset.CIFAR10Like.WithEasyFrac(0.05), 2000, 5)
	th := m.UniformThresholds(0.6)
	se := m.Sigma(easy, th)
	sh := m.Sigma(hard, th)
	mid := p.NumExits() / 2
	if se[mid] <= sh[mid] {
		t.Errorf("easy dataset should exit earlier: sigma_easy[%d]=%v <= sigma_hard[%d]=%v", mid, se[mid], mid, sh[mid])
	}
}

func TestEvaluateExitFracsSumToOne(t *testing.T) {
	for _, p := range model.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, ds := newModel(t, p)
			th := m.UniformThresholds(0.6)
			ev, err := m.Evaluate(ds, 2, p.NumExits()-1, th)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			sum := ev.ExitFrac[0] + ev.ExitFrac[1] + ev.ExitFrac[2]
			if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("exit fractions sum to %v, want 1", sum)
			}
			if ev.Accuracy <= 0 || ev.Accuracy > 1 {
				t.Errorf("accuracy %v out of (0,1]", ev.Accuracy)
			}
			if ev.BaselineAccuracy <= 0.5 {
				t.Errorf("baseline accuracy %v implausibly low", ev.BaselineAccuracy)
			}
		})
	}
}

func TestEvaluateRejectsBadExits(t *testing.T) {
	p := model.VGG16()
	m, ds := newModel(t, p)
	th := m.UniformThresholds(0.6)
	for _, c := range []struct{ e1, e2 int }{{0, 5}, {5, 5}, {5, p.NumExits()}} {
		if _, err := m.Evaluate(ds, c.e1, c.e2, th); err == nil {
			t.Errorf("Evaluate(%d,%d) expected error", c.e1, c.e2)
		}
	}
}

func TestCalibrateBoundsLoss(t *testing.T) {
	for _, p := range model.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m, ds := newModel(t, p)
			th, sigma := m.Calibrate(ds, 0.02)
			// Early exits must be usable: a meaningful fraction of traffic
			// leaves before the final exit.
			if sigma[p.NumExits()-2] <= 0.05 {
				t.Errorf("calibrated sigma admits almost no early exits: %v", sigma)
			}
			// And the resulting ME-DNN accuracy loss stays small (Fig. 6
			// reports average losses under ~1.7%).
			ev, err := m.Evaluate(ds, 2, p.NumExits()-1, th)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if loss := ev.AccuracyLoss(); loss > 0.05 {
				t.Errorf("accuracy loss %v too large after calibration", loss)
			}
		})
	}
}

func TestOverthinkingCanImproveAccuracy(t *testing.T) {
	// ResNet-34 is calibrated with strong overthinking: some exit combination
	// must beat the original network (negative loss), per Fig. 6(b).
	p := model.ResNet34()
	m, ds := newModel(t, p)
	th, _ := m.Calibrate(ds, DefaultLossBudget(p.Name))
	negative := false
	for e1 := 1; e1 < p.NumExits()-1 && !negative; e1++ {
		for e2 := e1 + 1; e2 < p.NumExits() && !negative; e2++ {
			ev, err := m.Evaluate(ds, e1, e2, th)
			if err != nil {
				t.Fatalf("Evaluate: %v", err)
			}
			if ev.AccuracyLoss() < 0 {
				negative = true
			}
		}
	}
	if !negative {
		t.Error("no exit combination improved on the original network; overthinking not reproduced")
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Slope: 0, AccSlope: 1},
		{Slope: 1, Noise: -1, AccSlope: 1},
		{Slope: 1, AccSlope: 0},
		{Slope: 1, AccSlope: 1, Overthink: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	for _, name := range []string{"vgg-16", "resnet-34", "inception-v3", "squeezenet-1.0", "unknown"} {
		if err := DefaultParams(name).Validate(); err != nil {
			t.Errorf("DefaultParams(%q) invalid: %v", name, err)
		}
	}
}

func TestCorrectProbBounds(t *testing.T) {
	p := model.SqueezeNet10()
	m, _ := newModel(t, p)
	f := func(rawD uint16, rawE uint8) bool {
		s := dataset.Sample{ID: int(rawE), Difficulty: float64(rawD) / 65535}
		e := 1 + int(rawE)%p.NumExits()
		pc := m.CorrectProb(s, e)
		return pc >= 0 && pc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReportConsistentWithSigma(t *testing.T) {
	p := model.InceptionV3()
	m, ds := newModel(t, p)
	th, sigma := m.Calibrate(ds, DefaultLossBudget(p.Name))
	rep := m.Report(ds, th)
	if len(rep) != p.NumExits() {
		t.Fatalf("report has %d entries, want %d", len(rep), p.NumExits())
	}
	var marginalSum float64
	for i, r := range rep {
		if r.Exit != i+1 {
			t.Errorf("entry %d has exit %d", i, r.Exit)
		}
		marginalSum += r.MarginalRate
		// Cumulative rate must agree with the sigma vector, which is derived
		// by the same first-confident-exit rule.
		if d := r.CumulativeRate - sigma[i]; d > 1e-9 || d < -1e-9 {
			t.Errorf("exit %d: cumulative %v != sigma %v", r.Exit, r.CumulativeRate, sigma[i])
		}
		if r.MarginalRate > 0 && (r.ConditionalAccuracy <= 0 || r.ConditionalAccuracy > 1) {
			t.Errorf("exit %d: conditional accuracy %v out of range", r.Exit, r.ConditionalAccuracy)
		}
	}
	if d := marginalSum - 1; d > 1e-9 || d < -1e-9 {
		t.Errorf("marginal rates sum to %v", marginalSum)
	}
	// Calibration promises accepted traffic stays accurate at exits that
	// actually take meaningful traffic.
	for _, r := range rep {
		if r.MarginalRate > 0.05 && r.ConditionalAccuracy < 0.7 {
			t.Errorf("exit %d accepts %.0f%% of traffic at accuracy %v", r.Exit, 100*r.MarginalRate, r.ConditionalAccuracy)
		}
	}
}

func TestCalibrationArtifactRoundTrip(t *testing.T) {
	p := model.SqueezeNet10()
	m, ds := newModel(t, p)
	budget := DefaultLossBudget(p.Name)
	th, sigma := m.Calibrate(ds, budget)
	art := CalibrationArtifact{Arch: p.Name, LossBudget: budget, Thresholds: th, Sigma: sigma}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, art); err != nil {
		t.Fatalf("WriteArtifact: %v", err)
	}
	loaded, err := ReadArtifact(&buf, p)
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	for i := range th {
		if loaded.Thresholds[i] != th[i] || loaded.Sigma[i] != sigma[i] {
			t.Fatalf("entry %d differs after round trip", i)
		}
	}
	// Wrong profile: rejected.
	var buf2 bytes.Buffer
	if err := WriteArtifact(&buf2, art); err != nil {
		t.Fatalf("WriteArtifact: %v", err)
	}
	if _, err := ReadArtifact(&buf2, model.VGG16()); err == nil {
		t.Error("artifact accepted for the wrong profile")
	}
	// Corrupted sigma: rejected.
	bad := art
	bad.Sigma = append([]float64(nil), sigma...)
	bad.Sigma[len(bad.Sigma)-1] = 0.5
	var buf3 bytes.Buffer
	if err := WriteArtifact(&buf3, bad); err != nil {
		t.Fatalf("WriteArtifact: %v", err)
	}
	if _, err := ReadArtifact(&buf3, p); err == nil {
		t.Error("artifact with sigma_m != 1 accepted")
	}
}
