// Package confidence simulates the early-exit behaviour of trained multi-exit
// DNNs: per-exit confidence scores, the exit rates (sigma) induced by
// per-exit confidence thresholds, and the accuracy of an exit combination.
//
// The original system derives these quantities from PyTorch models trained on
// CIFAR-10. This reproduction replaces the trained networks with a calibrated
// generative model: each sample carries a difficulty z in [0, 1]; the exit at
// depth fraction f emits confidence through a logistic curve in (f - z) with
// per-sample noise. Thresholding that confidence yields exit rates that are
// monotone in depth (deeper exits catch more samples), matching how trained
// exits behave. The accuracy model includes the "overthinking" effect
// reported by Kaya et al. and reproduced in the paper's Fig. 6: deep exits
// slightly hurt easy samples, so some exit combinations *gain* accuracy over
// the original single-exit network.
//
// Everything downstream of this package (exit setting, offloading, all
// experiments) consumes only the sigma vectors and accuracy numbers, which is
// exactly the interface a trained model would provide.
package confidence

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"leime/internal/dataset"
	"leime/internal/model"
)

// Params are the generative-model constants for one architecture. They are
// calibrated per architecture so Fig. 6's accuracy-loss ranges and signs are
// reproduced (see DefaultParams).
type Params struct {
	// Slope is the steepness of the confidence logistic in (depth - difficulty).
	Slope float64
	// Bias shifts the confidence curve; positive values make exits more
	// confident overall.
	Bias float64
	// Noise is the scale of per-sample confidence noise.
	Noise float64
	// AccSlope and AccBias shape the probability a confident exit is correct.
	AccSlope float64
	// AccBias shifts correctness probability.
	AccBias float64
	// Overthink is the strength of the deep-exit penalty on easy samples
	// (the accuracy a full-depth network loses on samples it should have
	// classified shallowly).
	Overthink float64
	// OverthinkCutoff is the difficulty below which a sample is susceptible
	// to overthinking.
	OverthinkCutoff float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Slope <= 0 {
		return fmt.Errorf("confidence: Slope %v must be positive", p.Slope)
	}
	if p.Noise < 0 {
		return fmt.Errorf("confidence: Noise %v must be non-negative", p.Noise)
	}
	if p.AccSlope <= 0 {
		return fmt.Errorf("confidence: AccSlope %v must be positive", p.AccSlope)
	}
	if p.Overthink < 0 || p.Overthink > 0.2 {
		return fmt.Errorf("confidence: Overthink %v out of range [0, 0.2]", p.Overthink)
	}
	return nil
}

// DefaultParams returns the calibrated constants for one of the four paper
// architectures. ResNet-34 and SqueezeNet-1.0 are given stronger overthinking
// (most of their exit combinations gain ~1% accuracy, per Fig. 6); Inception
// v3 and VGG-16 overthink less, so their multi-exit variants lose ~1–1.6% on
// average unless both exits sit deep.
func DefaultParams(archName string) Params {
	base := Params{
		Slope:           7.0,
		Bias:            0.4,
		Noise:           0.55,
		AccSlope:        5.5,
		AccBias:         2.6,
		Overthink:       0.02,
		OverthinkCutoff: 0.45,
	}
	switch archName {
	case "resnet-34":
		base.Overthink = 0.10
		base.OverthinkCutoff = 0.55
		base.Bias = 0.55
	case "squeezenet-1.0":
		base.Overthink = 0.11
		base.OverthinkCutoff = 0.55
		base.Bias = 0.5
	case "inception-v3":
		base.Overthink = 0.025
		base.Bias = 0.3
	case "vgg-16":
		base.Overthink = 0.035
		base.Bias = 0.35
	}
	return base
}

// DefaultLossBudget returns the per-exit calibration budget used for one of
// the paper architectures. The budgets are chosen so the resulting mean
// accuracy losses across exit combinations reproduce Fig. 6's ordering and
// magnitudes (Inception v3 1.62% > VGG-16 1.14% > ResNet-34 0.55% >
// SqueezeNet-1.0 0.44%, with negative-loss combinations appearing only for
// ResNet-34 and SqueezeNet-1.0).
func DefaultLossBudget(archName string) float64 {
	switch archName {
	case "resnet-34", "squeezenet-1.0":
		return 0.001
	case "vgg-16":
		return 0.005
	default:
		return 0.008
	}
}

// Calibrated builds a confidence model for the profile with its default
// parameters and returns it together with default-budget calibrated
// thresholds and the resulting sigma vector.
func Calibrated(p *model.Profile, ds *dataset.Dataset, seed int64) (*Model, Thresholds, []float64, error) {
	m, err := New(p, DefaultParams(p.Name), seed)
	if err != nil {
		return nil, nil, nil, err
	}
	th, sigma := m.Calibrate(ds, DefaultLossBudget(p.Name))
	return m, th, sigma, nil
}

// Model evaluates exit behaviour of one profile on one dataset.
type Model struct {
	profile *model.Profile
	params  Params
	depths  []float64 // layer-index depth fraction of each exit, 1-based shifted
	seed    int64
}

// New builds a confidence model for the profile.
func New(p *model.Profile, params Params, seed int64) (*Model, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	m := &Model{profile: p, params: params, seed: seed}
	m.depths = make([]float64, p.NumExits())
	for i := 1; i <= p.NumExits(); i++ {
		// The depth coordinate is the layer-index fraction, not the FLOPs
		// fraction: trained early exits mature with representational depth
		// (how many layers of features exist), and in real CNNs the shallow
		// layers hold a tiny share of total FLOPs, so a FLOPs coordinate
		// would make every shallow exit useless (sigma ~ 0), contradicting
		// the 20-40% first-exit rates BranchyNet-style networks achieve.
		// The 0.75 exponent models the fast maturation of early features.
		m.depths[i-1] = math.Pow(float64(i)/float64(p.NumExits()), 0.75)
	}
	return m, nil
}

// Profile returns the underlying chain profile.
func (m *Model) Profile() *model.Profile { return m.profile }

// sampleNoise returns the per-sample confidence noise, deterministic in the
// sample identity so repeated evaluations agree. It uses a splitmix64 hash
// and Box–Muller rather than math/rand so the hot path allocates nothing.
func (m *Model) sampleNoise(sampleID int) float64 {
	h := splitmix64(uint64(m.seed) ^ (uint64(sampleID)+1)*0x9e3779b97f4a7c15)
	u1 := (float64(h>>11) + 0.5) / (1 << 53)
	h = splitmix64(h)
	u2 := (float64(h>>11) + 0.5) / (1 << 53)
	return m.params.Noise * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// splitmix64 is the SplitMix64 mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Confidence returns the confidence score the exit at 1-based index would
// emit for the sample: a logistic in (depth - difficulty) plus per-sample
// noise. Scores are in (0, 1).
func (m *Model) Confidence(s dataset.Sample, exit int) float64 {
	f := m.depths[exit-1]
	margin := m.params.Slope*(f-s.Difficulty) + m.params.Bias + m.sampleNoise(s.ID)
	return logistic(margin)
}

// CorrectProb returns the probability that the exit's prediction for the
// sample is correct, including the overthinking penalty for deep exits on
// easy samples: redundant computation beyond the depth a sample needs
// degrades its prediction in proportion to the excess depth traversed and to
// how easy the sample is (Kaya et al., reproduced in the paper's Fig. 6).
func (m *Model) CorrectProb(s dataset.Sample, exit int) float64 {
	f := m.depths[exit-1]
	// The same per-sample noise that raises confidence also raises
	// correctness: calibrated networks' confidence is a strong predictor of
	// being right, which is what makes threshold calibration able to admit
	// large fractions of traffic at shallow exits.
	p := logistic(m.params.AccSlope*(f-s.Difficulty) + m.params.AccBias + m.sampleNoise(s.ID))
	const slack = 0.05 // depth margin that never counts as overthinking
	excess := f - s.Difficulty - slack
	if excess > 0 && s.Difficulty < m.params.OverthinkCutoff {
		easiness := (m.params.OverthinkCutoff - s.Difficulty) / m.params.OverthinkCutoff
		p -= m.params.Overthink * excess * easiness
	}
	return clamp01(p)
}

// Thresholds hold one confidence threshold per candidate exit. They are the
// deployable calibration artifact: calibrate once against a representative
// workload, serialize, and ship to every tier.
type Thresholds []float64

// CalibrationArtifact is the serializable result of a calibration run.
type CalibrationArtifact struct {
	// Arch names the profile the thresholds belong to.
	Arch string `json:"arch"`
	// LossBudget is the per-exit accuracy budget used.
	LossBudget float64 `json:"loss_budget"`
	// Thresholds are the per-exit confidence thresholds.
	Thresholds Thresholds `json:"thresholds"`
	// Sigma is the resulting cumulative exit-rate vector.
	Sigma []float64 `json:"sigma"`
}

// WriteArtifact serializes a calibration result.
func WriteArtifact(w io.Writer, a CalibrationArtifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("confidence: encode artifact: %w", err)
	}
	return nil
}

// ReadArtifact loads a calibration result and validates it against the
// profile it claims to calibrate.
func ReadArtifact(r io.Reader, p *model.Profile) (CalibrationArtifact, error) {
	var a CalibrationArtifact
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return a, fmt.Errorf("confidence: decode artifact: %w", err)
	}
	if a.Arch != p.Name {
		return a, fmt.Errorf("confidence: artifact for %q, profile is %q", a.Arch, p.Name)
	}
	m := p.NumExits()
	if len(a.Thresholds) != m || len(a.Sigma) != m {
		return a, fmt.Errorf("confidence: artifact has %d thresholds / %d sigma entries, profile has %d exits",
			len(a.Thresholds), len(a.Sigma), m)
	}
	prev := 0.0
	for i, v := range a.Sigma {
		if v < prev-1e-12 || v < 0 || v > 1 {
			return a, fmt.Errorf("confidence: artifact sigma not monotone in [0,1] at entry %d", i)
		}
		prev = v
	}
	if math.Abs(a.Sigma[m-1]-1) > 1e-9 {
		return a, fmt.Errorf("confidence: artifact sigma_m = %v, want 1", a.Sigma[m-1])
	}
	return a, nil
}

// UniformThresholds returns the same threshold at every exit.
func (m *Model) UniformThresholds(theta float64) Thresholds {
	t := make(Thresholds, m.profile.NumExits())
	for i := range t {
		t[i] = theta
	}
	return t
}

// Sigma returns the cumulative exit-rate vector sigma over the dataset: entry
// i-1 is the fraction of samples whose confidence meets the threshold at exit
// i or any shallower exit. The final entry is forced to 1 (every task exits
// at the original exit, sigma_exit_m = 100%). The vector is non-decreasing by
// construction.
func (m *Model) Sigma(ds *dataset.Dataset, th Thresholds) []float64 {
	mExits := m.profile.NumExits()
	sigma := make([]float64, mExits)
	n := ds.Len()
	for _, s := range ds.Samples {
		exited := false
		for i := 1; i <= mExits; i++ {
			if !exited && m.Confidence(s, i) >= th[i-1] {
				exited = true
			}
			if exited {
				sigma[i-1]++
			}
		}
	}
	for i := range sigma {
		sigma[i] /= float64(n)
	}
	sigma[mExits-1] = 1
	// Numerical hygiene: cumulative construction guarantees monotonicity, but
	// keep an explicit pass so downstream consumers can rely on it.
	for i := 1; i < mExits; i++ {
		if sigma[i] < sigma[i-1] {
			sigma[i] = sigma[i-1]
		}
	}
	return sigma
}

// Eval is the outcome of running a dataset through one exit combination.
type Eval struct {
	// ExitFrac is the fraction of samples leaving at the First, Second and
	// Third exits (sums to 1).
	ExitFrac [3]float64
	// Accuracy is the multi-exit network's expected accuracy.
	Accuracy float64
	// BaselineAccuracy is the single-exit (original network) accuracy on the
	// same dataset.
	BaselineAccuracy float64
}

// AccuracyLoss returns baseline accuracy minus multi-exit accuracy; negative
// values mean the multi-exit network is *more* accurate (overthinking
// avoided).
func (e Eval) AccuracyLoss() float64 { return e.BaselineAccuracy - e.Accuracy }

// Evaluate runs the dataset through the exit combination {e1, e2, m}: each
// sample leaves at the first exit whose confidence clears its threshold, and
// is judged correct with the exit's correctness probability (computed in
// expectation, so results are deterministic).
func (m *Model) Evaluate(ds *dataset.Dataset, e1, e2 int, th Thresholds) (Eval, error) {
	mExits := m.profile.NumExits()
	if !(1 <= e1 && e1 < e2 && e2 < mExits) {
		return Eval{}, fmt.Errorf("confidence: invalid exit combination (%d, %d) for m=%d", e1, e2, mExits)
	}
	var out Eval
	n := float64(ds.Len())
	for _, s := range ds.Samples {
		switch {
		case m.Confidence(s, e1) >= th[e1-1]:
			out.ExitFrac[0]++
			out.Accuracy += m.CorrectProb(s, e1)
		case m.Confidence(s, e2) >= th[e2-1]:
			out.ExitFrac[1]++
			out.Accuracy += m.CorrectProb(s, e2)
		default:
			out.ExitFrac[2]++
			out.Accuracy += m.CorrectProb(s, mExits)
		}
		out.BaselineAccuracy += m.CorrectProb(s, mExits)
	}
	for i := range out.ExitFrac {
		out.ExitFrac[i] /= n
	}
	out.Accuracy /= n
	out.BaselineAccuracy /= n
	return out, nil
}

// ExitReport describes one candidate exit's calibrated behaviour.
type ExitReport struct {
	// Exit is the 1-based exit index.
	Exit int
	// Threshold is the calibrated confidence threshold.
	Threshold float64
	// CumulativeRate is sigma_i: the fraction of traffic exiting here or
	// earlier.
	CumulativeRate float64
	// MarginalRate is the fraction of traffic exiting exactly here.
	MarginalRate float64
	// ConditionalAccuracy is the expected accuracy of the samples this exit
	// accepts (those confident here but at no shallower exit).
	ConditionalAccuracy float64
}

// Report evaluates every candidate exit's calibrated behaviour on the
// dataset: exit rates and the conditional accuracy of accepted traffic. It
// is the per-exit detail behind Fig. 6's aggregate losses.
func (m *Model) Report(ds *dataset.Dataset, th Thresholds) []ExitReport {
	mExits := m.profile.NumExits()
	out := make([]ExitReport, mExits)
	accSum := make([]float64, mExits)
	count := make([]float64, mExits)
	for _, s := range ds.Samples {
		for i := 1; i <= mExits; i++ {
			if i == mExits || m.Confidence(s, i) >= th[i-1] {
				accSum[i-1] += m.CorrectProb(s, i)
				count[i-1]++
				break
			}
		}
	}
	n := float64(ds.Len())
	cum := 0.0
	for i := range out {
		cum += count[i]
		out[i] = ExitReport{
			Exit:           i + 1,
			Threshold:      th[i],
			CumulativeRate: cum / n,
			MarginalRate:   count[i] / n,
		}
		if count[i] > 0 {
			out[i].ConditionalAccuracy = accSum[i] / count[i]
		}
	}
	return out
}

// Calibrate searches per-exit thresholds that keep each exit's conditional
// accuracy within lossBudget of the final exit while letting as many samples
// leave early as possible — the paper's "strictly set the threshold of each
// exit ... while guaranteeing inference accuracy". It returns the thresholds
// and the resulting sigma vector.
func (m *Model) Calibrate(ds *dataset.Dataset, lossBudget float64) (Thresholds, []float64) {
	mExits := m.profile.NumExits()
	th := make(Thresholds, mExits)
	for i := 1; i <= mExits; i++ {
		th[i-1] = m.calibrateExit(ds, i, lossBudget)
	}
	return th, m.Sigma(ds, th)
}

// calibrateExit binary-searches the smallest threshold at exit i whose
// accepted samples have expected accuracy within lossBudget of what the
// final exit would score on the full dataset.
func (m *Model) calibrateExit(ds *dataset.Dataset, exit int, lossBudget float64) float64 {
	mExits := m.profile.NumExits()
	var fullAcc float64
	for _, s := range ds.Samples {
		fullAcc += m.CorrectProb(s, mExits)
	}
	fullAcc /= float64(ds.Len())
	target := fullAcc - lossBudget

	lo, hi := 0.0, 1.0
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		acc, count := 0.0, 0.0
		for _, s := range ds.Samples {
			if m.Confidence(s, exit) >= mid {
				acc += m.CorrectProb(s, exit)
				count++
			}
		}
		if count == 0 || acc/count >= target {
			hi = mid // accepted set accurate enough (or empty): can lower bar
		} else {
			lo = mid
		}
	}
	return hi
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
