package tensor

import (
	"fmt"

	"leime/internal/model"
)

// GraphNet executes a full chain profile for real: every element's internal
// graph (convolutions, pools, residual adds, concatenations) runs on the
// tensor engine, with early-exit classifiers at the configured positions.
// All four paper architectures are executable; the engine's counted FLOPs
// cross-check the analytic profile exactly.
type GraphNet struct {
	profile *model.Profile
	weights [][]*ConvWeights // per element, per conv node (nil for non-conv)
	exits   map[int]*exitHead
}

// exitHead is one early-exit classifier: global pool + two dense layers.
type exitHead struct {
	fc1 *DenseWeights
	fc2 *DenseWeights
}

// NewGraphNet builds an executable network from a profile with exit
// classifiers after the 1-based exit indices in exits. Every element must
// carry an internal graph (true for all built-in architectures).
func NewGraphNet(p *model.Profile, exits []int, seed int64) (*GraphNet, error) {
	n := &GraphNet{
		profile: p,
		weights: make([][]*ConvWeights, len(p.Elements)),
		exits:   make(map[int]*exitHead),
	}
	for i, e := range p.Elements {
		if e.Graph == nil {
			return nil, fmt.Errorf("tensor: element %d (%s) has no executable graph", i+1, e.Name)
		}
		ws := make([]*ConvWeights, len(e.Graph.Nodes))
		for j, node := range e.Graph.Nodes {
			if node.Kind == model.OpConv {
				ws[j] = NewConvWeights(node.Conv.Kernel, node.Conv.In.C, node.Conv.OutC,
					seed+int64(i)*1009+int64(j)*31)
			}
		}
		n.weights[i] = ws
	}
	for _, e := range exits {
		if e < 1 || e > len(p.Elements) {
			return nil, fmt.Errorf("tensor: exit %d out of range [1, %d]", e, len(p.Elements))
		}
		c := p.Elements[e-1].Out.C
		n.exits[e] = &exitHead{
			fc1: NewDenseWeights(c, model.ExitHiddenUnits, seed+int64(e)*977),
			fc2: NewDenseWeights(model.ExitHiddenUnits, model.NumClasses, seed+int64(e)*1499),
		}
	}
	return n, nil
}

// Prediction is the outcome of running one input through the network.
type Prediction struct {
	// Exit is the 1-based exit the input left through.
	Exit int
	// Class is the predicted label.
	Class int
	// Confidence is the winning softmax probability.
	Confidence float32
	// FLOPs is the executed operation count, including classifiers tried.
	FLOPs float64
}

// runElement executes one element's graph.
func (n *GraphNet) runElement(idx int, in *Tensor, ops *Ops) (*Tensor, error) {
	g := n.profile.Elements[idx].Graph
	values := make([]*Tensor, len(g.Nodes))
	values[0] = in
	for j := 1; j < len(g.Nodes); j++ {
		node := g.Nodes[j]
		var err error
		switch node.Kind {
		case model.OpConv:
			values[j], err = Conv2D(values[node.Inputs[0]], n.weights[idx][j], node.Conv.Stride, node.Conv.Pad, ops)
		case model.OpReLU:
			t := values[node.Inputs[0]].Clone()
			ReLU(t, ops)
			values[j] = t
		case model.OpMaxPool:
			values[j], err = Pool(values[node.Inputs[0]], node.Kernel, node.Stride, node.Pad, true, ops)
		case model.OpAvgPool:
			values[j], err = Pool(values[node.Inputs[0]], node.Kernel, node.Stride, node.Pad, false, ops)
		case model.OpAdd:
			values[j], err = Add(values[node.Inputs[0]], values[node.Inputs[1]], ops)
		case model.OpConcat:
			ins := make([]*Tensor, len(node.Inputs))
			for k, src := range node.Inputs {
				ins[k] = values[src]
			}
			values[j], err = Concat(ins, ops)
		default:
			err = fmt.Errorf("tensor: unexpected op %v", node.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("tensor: element %d node %d: %w", idx+1, j, err)
		}
	}
	return values[len(values)-1], nil
}

// Run executes the network on one input. At each configured exit the
// classifier runs; if its confidence clears the threshold, the input leaves
// early. The deepest configured exit always accepts; with no exits
// configured the network runs to the end and the final activation's
// classifier-free prediction is reported with Exit = 0.
func (n *GraphNet) Run(in *Tensor, threshold float32) (Prediction, error) {
	var ops Ops
	t := in
	lastExit := 0
	for e := range n.exits {
		if e > lastExit {
			lastExit = e
		}
	}
	for i := range n.profile.Elements {
		var err error
		t, err = n.runElement(i, t, &ops)
		if err != nil {
			return Prediction{}, err
		}
		idx := i + 1
		head, hasExit := n.exits[idx]
		if !hasExit {
			continue
		}
		probs, err := head.classify(t, &ops)
		if err != nil {
			return Prediction{}, err
		}
		class, conf := ArgMax(probs)
		if conf >= threshold || idx == lastExit {
			return Prediction{Exit: idx, Class: class, Confidence: conf, FLOPs: ops.FLOPs}, nil
		}
	}
	return Prediction{Exit: 0, Class: -1, FLOPs: ops.FLOPs}, nil
}

func (h *exitHead) classify(t *Tensor, ops *Ops) ([]float32, error) {
	pooled := GlobalAvgPool(t, ops)
	hidden, err := Dense(pooled, h.fc1, ops)
	if err != nil {
		return nil, err
	}
	for i, v := range hidden {
		if v < 0 {
			hidden[i] = 0
		}
	}
	logits, err := Dense(hidden, h.fc2, ops)
	if err != nil {
		return nil, err
	}
	return Softmax(logits, ops), nil
}

// BackboneFLOPs executes the full chain (no exits) and returns the executed
// operation count; tests compare it against the profile's analytic total.
func (n *GraphNet) BackboneFLOPs(in *Tensor) (float64, error) {
	var ops Ops
	t := in
	for i := range n.profile.Elements {
		var err error
		t, err = n.runElement(i, t, &ops)
		if err != nil {
			return 0, err
		}
	}
	return ops.FLOPs, nil
}
