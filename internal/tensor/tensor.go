// Package tensor is a small dense-tensor inference engine: convolution,
// pooling, fully-connected layers, ReLU and softmax over float32 HWC
// tensors. It exists for two reasons: (1) it executes profile-shaped
// networks for real, so the repository's compute paths are not stubs, and
// (2) every operation counts its floating-point operations, letting tests
// cross-check the analytic FLOP model in internal/model against an actually
// executing implementation.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"leime/internal/model"
)

// Tensor is a dense float32 tensor in HWC layout.
type Tensor struct {
	H, W, C int
	Data    []float32
}

// New allocates a zero tensor of the given shape.
func New(h, w, c int) *Tensor {
	return &Tensor{H: h, W: w, C: c, Data: make([]float32, h*w*c)}
}

// Shape returns the tensor's shape in the model package's terms.
func (t *Tensor) Shape() model.Shape { return model.Shape{H: t.H, W: t.W, C: t.C} }

// At returns the element at (y, x, c).
func (t *Tensor) At(y, x, c int) float32 { return t.Data[(y*t.W+x)*t.C+c] }

// Set writes the element at (y, x, c).
func (t *Tensor) Set(y, x, c int, v float32) { t.Data[(y*t.W+x)*t.C+c] = v }

// FromImage converts an 8-bit HWC image (as produced by the dataset package)
// into a normalized tensor.
func FromImage(img []byte, h, w, c int) (*Tensor, error) {
	if len(img) != h*w*c {
		return nil, fmt.Errorf("tensor: image has %d bytes, want %d", len(img), h*w*c)
	}
	t := New(h, w, c)
	for i, b := range img {
		t.Data[i] = float32(b)/127.5 - 1
	}
	return t, nil
}

// ConvWeights hold one convolution's parameters.
type ConvWeights struct {
	Kernel, InC, OutC int
	// W is laid out [ky][kx][inC][outC].
	W []float32
	// B is the per-output-channel bias.
	B []float32
}

// NewConvWeights initializes He-scaled random weights, deterministic per seed.
func NewConvWeights(kernel, inC, outC int, seed int64) *ConvWeights {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float32, kernel*kernel*inC*outC)
	scale := float32(math.Sqrt(2 / float64(kernel*kernel*inC)))
	for i := range w {
		w[i] = scale * float32(rng.NormFloat64())
	}
	return &ConvWeights{Kernel: kernel, InC: inC, OutC: outC, W: w, B: make([]float32, outC)}
}

// Ops accumulates floating-point operation counts during execution.
type Ops struct {
	// FLOPs is the running operation total (multiply-adds count as 2).
	FLOPs float64
}

// Conv2D applies a convolution with the given stride and padding, counting
// 2*K*K*Cin FLOPs per output element (the same accounting as
// model.ConvSpec.FLOPs).
func Conv2D(in *Tensor, w *ConvWeights, stride, pad int, ops *Ops) (*Tensor, error) {
	if in.C != w.InC {
		return nil, fmt.Errorf("tensor: conv input has %d channels, weights expect %d", in.C, w.InC)
	}
	if stride <= 0 {
		return nil, fmt.Errorf("tensor: stride %d must be positive", stride)
	}
	outH := (in.H+2*pad-w.Kernel)/stride + 1
	outW := (in.W+2*pad-w.Kernel)/stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("tensor: conv output would be empty (%dx%d)", outH, outW)
	}
	out := New(outH, outW, w.OutC)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for ky := 0; ky < w.Kernel; ky++ {
				iy := oy*stride + ky - pad
				if iy < 0 || iy >= in.H {
					continue
				}
				for kx := 0; kx < w.Kernel; kx++ {
					ix := ox*stride + kx - pad
					if ix < 0 || ix >= in.W {
						continue
					}
					inBase := (iy*in.W + ix) * in.C
					wBase := ((ky*w.Kernel + kx) * w.InC) * w.OutC
					outBase := (oy*outW + ox) * w.OutC
					for ic := 0; ic < w.InC; ic++ {
						v := in.Data[inBase+ic]
						wRow := wBase + ic*w.OutC
						for oc := 0; oc < w.OutC; oc++ {
							out.Data[outBase+oc] += v * w.W[wRow+oc]
						}
					}
				}
			}
			outBase := (oy*outW + ox) * w.OutC
			for oc := 0; oc < w.OutC; oc++ {
				out.Data[outBase+oc] += w.B[oc]
			}
		}
	}
	if ops != nil {
		ops.FLOPs += 2 * float64(w.Kernel) * float64(w.Kernel) * float64(w.InC) *
			float64(outH) * float64(outW) * float64(w.OutC)
	}
	return out, nil
}

// ReLU applies max(0, x) in place, counting one FLOP per element.
func ReLU(t *Tensor, ops *Ops) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	if ops != nil {
		ops.FLOPs += float64(len(t.Data))
	}
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	out := New(t.H, t.W, t.C)
	copy(out.Data, t.Data)
	return out
}

// MaxPool2 applies a 2x2 stride-2 max pool, counting 4 comparisons per
// output element (the model package's pool accounting).
func MaxPool2(in *Tensor, ops *Ops) *Tensor {
	out, err := Pool(in, 2, 2, 0, true, ops)
	if err != nil {
		// A 2x2/2 pool on any tensor with H, W >= 2 cannot fail; smaller
		// inputs yield an empty pool, which Pool reports.
		panic(err)
	}
	return out
}

// Pool applies a kernel x kernel pooling window with the given stride and
// padding; max selects max pooling, otherwise average pooling (padding
// positions count toward the average divisor of in-bounds samples). It
// counts kernel^2 operations per output element, matching the analytic
// model's accounting.
func Pool(in *Tensor, kernel, stride, pad int, max bool, ops *Ops) (*Tensor, error) {
	if kernel <= 0 || stride <= 0 || pad < 0 {
		return nil, fmt.Errorf("tensor: bad pool parameters k=%d s=%d p=%d", kernel, stride, pad)
	}
	outH := (in.H+2*pad-kernel)/stride + 1
	outW := (in.W+2*pad-kernel)/stride + 1
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("tensor: pool output would be empty (%dx%d)", outH, outW)
	}
	out := New(outH, outW, in.C)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			for c := 0; c < in.C; c++ {
				var acc float32
				count := 0
				first := true
				for ky := 0; ky < kernel; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= in.H {
						continue
					}
					for kx := 0; kx < kernel; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= in.W {
							continue
						}
						v := in.At(iy, ix, c)
						if max {
							if first || v > acc {
								acc = v
							}
						} else {
							acc += v
						}
						first = false
						count++
					}
				}
				if !max && count > 0 {
					acc /= float32(count)
				}
				out.Set(oy, ox, c, acc)
			}
		}
	}
	if ops != nil {
		ops.FLOPs += float64(kernel*kernel) * float64(out.H*out.W*out.C)
	}
	return out, nil
}

// Add returns the elementwise sum of two same-shape tensors, counting one
// operation per element.
func Add(a, b *Tensor, ops *Ops) (*Tensor, error) {
	if a.H != b.H || a.W != b.W || a.C != b.C {
		return nil, fmt.Errorf("tensor: add shape mismatch %v vs %v", a.Shape(), b.Shape())
	}
	out := New(a.H, a.W, a.C)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if ops != nil {
		ops.FLOPs += float64(len(out.Data))
	}
	return out, nil
}

// Concat concatenates tensors along the channel axis, counting one operation
// per output element (the copy/bookkeeping cost the analytic model charges).
func Concat(ins []*Tensor, ops *Ops) (*Tensor, error) {
	if len(ins) < 2 {
		return nil, fmt.Errorf("tensor: concat needs at least 2 inputs")
	}
	h, w := ins[0].H, ins[0].W
	c := 0
	for _, t := range ins {
		if t.H != h || t.W != w {
			return nil, fmt.Errorf("tensor: concat spatial mismatch %v vs %dx%d", t.Shape(), h, w)
		}
		c += t.C
	}
	out := New(h, w, c)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			off := 0
			for _, t := range ins {
				base := (y*w + x) * t.C
				copy(out.Data[(y*w+x)*c+off:(y*w+x)*c+off+t.C], t.Data[base:base+t.C])
				off += t.C
			}
		}
	}
	if ops != nil {
		ops.FLOPs += float64(len(out.Data))
	}
	return out, nil
}

// GlobalAvgPool reduces each channel to its mean, counting one FLOP per
// input element.
func GlobalAvgPool(in *Tensor, ops *Ops) []float32 {
	out := make([]float32, in.C)
	for y := 0; y < in.H; y++ {
		for x := 0; x < in.W; x++ {
			for c := 0; c < in.C; c++ {
				out[c] += in.At(y, x, c)
			}
		}
	}
	n := float32(in.H * in.W)
	for c := range out {
		out[c] /= n
	}
	if ops != nil {
		ops.FLOPs += float64(in.H * in.W * in.C)
	}
	return out
}

// DenseWeights hold a fully-connected layer's parameters.
type DenseWeights struct {
	In, Out int
	W       []float32 // [in][out]
	B       []float32
}

// NewDenseWeights initializes He-scaled random weights, deterministic per seed.
func NewDenseWeights(in, out int, seed int64) *DenseWeights {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float32, in*out)
	scale := float32(math.Sqrt(2 / float64(in)))
	for i := range w {
		w[i] = scale * float32(rng.NormFloat64())
	}
	return &DenseWeights{In: in, Out: out, W: w, B: make([]float32, out)}
}

// Dense applies a fully-connected layer, counting 2*in*out FLOPs.
func Dense(in []float32, w *DenseWeights, ops *Ops) ([]float32, error) {
	if len(in) != w.In {
		return nil, fmt.Errorf("tensor: dense input has %d values, weights expect %d", len(in), w.In)
	}
	out := make([]float32, w.Out)
	copy(out, w.B)
	for i, v := range in {
		row := i * w.Out
		for o := 0; o < w.Out; o++ {
			out[o] += v * w.W[row+o]
		}
	}
	if ops != nil {
		ops.FLOPs += 2 * float64(w.In) * float64(w.Out)
	}
	return out, nil
}

// Softmax normalizes logits into a distribution, counting 3 FLOPs per value.
func Softmax(in []float32, ops *Ops) []float32 {
	out := make([]float32, len(in))
	maxV := in[0]
	for _, v := range in {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range in {
		e := float32(math.Exp(float64(v - maxV)))
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	if ops != nil {
		ops.FLOPs += 3 * float64(len(in))
	}
	return out
}

// ArgMax returns the index of the largest value and its value (confidence
// when applied to softmax output).
func ArgMax(v []float32) (int, float32) {
	best, bestV := 0, v[0]
	for i, x := range v {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best, bestV
}
