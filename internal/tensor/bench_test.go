package tensor

import (
	"testing"

	"leime/internal/model"
)

func BenchmarkConv2D3x3(b *testing.B) {
	in := New(32, 32, 64)
	w := NewConvWeights(3, 64, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(in, w, 1, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
	// 2*K*K*Cin*H*W*Cout FLOPs per call.
	b.ReportMetric(2*9*64*32*32*64*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkPool3x3(b *testing.B) {
	in := New(32, 32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pool(in, 3, 1, 1, true, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSqueezeNetForward(b *testing.B) {
	p := model.SqueezeNet10()
	net, err := NewGraphNet(p, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	in := New(32, 32, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.BackboneFLOPs(in); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.TotalFLOPs()*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}
