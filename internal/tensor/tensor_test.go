package tensor

import (
	"math"
	"testing"

	"leime/internal/dataset"
	"leime/internal/model"
)

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 convolution with identity weights must copy the input.
	in := New(2, 2, 1)
	in.Data = []float32{1, 2, 3, 4}
	w := &ConvWeights{Kernel: 1, InC: 1, OutC: 1, W: []float32{1}, B: []float32{0}}
	var ops Ops
	out, err := Conv2D(in, w, 1, 0, &ops)
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], in.Data[i])
		}
	}
	if want := 2.0 * 1 * 1 * 1 * 4; ops.FLOPs != want {
		t.Errorf("FLOPs = %v, want %v", ops.FLOPs, want)
	}
}

func TestConv2DHandComputed(t *testing.T) {
	// 2x2 input, 3x3 kernel of ones, pad 1: each output is the sum of the
	// input values under the kernel window.
	in := New(2, 2, 1)
	in.Data = []float32{1, 2, 3, 4}
	w := &ConvWeights{Kernel: 3, InC: 1, OutC: 1, W: ones(9), B: []float32{0}}
	out, err := Conv2D(in, w, 1, 1, nil)
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	// All four positions see the whole input (2x2 inside a 3x3 window).
	for i, want := range []float32{10, 10, 10, 10} {
		if out.Data[i] != want {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], want)
		}
	}
}

func ones(n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestConv2DBias(t *testing.T) {
	in := New(1, 1, 1)
	in.Data = []float32{5}
	w := &ConvWeights{Kernel: 1, InC: 1, OutC: 2, W: []float32{2, 3}, B: []float32{10, 20}}
	out, err := Conv2D(in, w, 1, 0, nil)
	if err != nil {
		t.Fatalf("Conv2D: %v", err)
	}
	if out.Data[0] != 20 || out.Data[1] != 35 {
		t.Errorf("out = %v, want [20 35]", out.Data)
	}
}

func TestConv2DShapeChecks(t *testing.T) {
	in := New(4, 4, 3)
	w := NewConvWeights(3, 8, 16, 1) // channel mismatch
	if _, err := Conv2D(in, w, 1, 1, nil); err == nil {
		t.Error("channel mismatch accepted")
	}
	w2 := NewConvWeights(3, 3, 4, 1)
	if _, err := Conv2D(in, w2, 0, 1, nil); err == nil {
		t.Error("zero stride accepted")
	}
	tiny := New(1, 1, 3)
	if _, err := Conv2D(tiny, NewConvWeights(5, 3, 4, 1), 1, 0, nil); err == nil {
		t.Error("empty output accepted")
	}
}

func TestReLU(t *testing.T) {
	tt := New(1, 1, 4)
	tt.Data = []float32{-1, 0, 2, -3}
	var ops Ops
	ReLU(tt, &ops)
	for i, want := range []float32{0, 0, 2, 0} {
		if tt.Data[i] != want {
			t.Errorf("data[%d] = %v, want %v", i, tt.Data[i], want)
		}
	}
	if ops.FLOPs != 4 {
		t.Errorf("FLOPs = %v, want 4", ops.FLOPs)
	}
}

func TestMaxPool2(t *testing.T) {
	in := New(2, 2, 1)
	in.Data = []float32{1, 5, 3, 2}
	out := MaxPool2(in, nil)
	if out.H != 1 || out.W != 1 || out.Data[0] != 5 {
		t.Errorf("pool = %+v", out)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := New(2, 2, 2)
	// Channel 0: 1,2,3,4 => 2.5; channel 1: 10,20,30,40 => 25.
	vals := []float32{1, 10, 2, 20, 3, 30, 4, 40}
	copy(in.Data, vals)
	out := GlobalAvgPool(in, nil)
	if math.Abs(float64(out[0]-2.5)) > 1e-6 || math.Abs(float64(out[1]-25)) > 1e-5 {
		t.Errorf("pool = %v, want [2.5 25]", out)
	}
}

func TestDenseHandComputed(t *testing.T) {
	w := &DenseWeights{In: 2, Out: 2, W: []float32{1, 2, 3, 4}, B: []float32{10, 20}}
	out, err := Dense([]float32{1, 1}, w, nil)
	if err != nil {
		t.Fatalf("Dense: %v", err)
	}
	if out[0] != 14 || out[1] != 26 {
		t.Errorf("out = %v, want [14 26]", out)
	}
	if _, err := Dense([]float32{1}, w, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSoftmaxNormalizes(t *testing.T) {
	out := Softmax([]float32{1, 2, 3}, nil)
	var sum float32
	for _, v := range out {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-6 {
		t.Errorf("softmax sums to %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Errorf("softmax not monotone: %v", out)
	}
}

func TestFromImage(t *testing.T) {
	ds, _ := dataset.Generate(dataset.CIFAR10Like, 4, 5)
	img := ds.Image(0)
	tt, err := FromImage(img, 32, 32, 3)
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	for _, v := range tt.Data {
		if v < -1 || v > 1 {
			t.Fatalf("normalized pixel %v out of [-1, 1]", v)
		}
	}
	if _, err := FromImage(img[:10], 32, 32, 3); err == nil {
		t.Error("short image accepted")
	}
}

func TestExecutedFLOPsMatchAnalyticModelAllArchitectures(t *testing.T) {
	// The headline cross-check: executing every architecture's full graph
	// chain — including residual adds, inception branches and fire modules —
	// must count exactly the FLOPs the analytic profile declares.
	if testing.Short() {
		t.Skip("multi-GFLOP executions; skipped with -short")
	}
	for _, p := range model.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			net, err := NewGraphNet(p, nil, 7)
			if err != nil {
				t.Fatalf("NewGraphNet: %v", err)
			}
			in := New(32, 32, 3)
			got, err := net.BackboneFLOPs(in)
			if err != nil {
				t.Fatalf("BackboneFLOPs: %v", err)
			}
			want := p.TotalFLOPs()
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("executed FLOPs %v != analytic %v", got, want)
			}
		})
	}
}

func TestGraphNetRejectsGraphlessProfiles(t *testing.T) {
	synthetic := &model.Profile{
		Name:       "synthetic",
		Input:      model.Shape{H: 8, W: 8, C: 3},
		InputBytes: 100,
		Elements: []model.Element{
			{Name: "x", FLOPs: 1, Out: model.Shape{H: 8, W: 8, C: 3}},
		},
	}
	if _, err := NewGraphNet(synthetic, nil, 1); err == nil {
		t.Error("graph-less profile accepted by executor")
	}
}

func TestGraphNetRunWithExits(t *testing.T) {
	p := model.SqueezeNet10() // smallest network: keeps real execution fast
	net, err := NewGraphNet(p, []int{2, 6, 10}, 21)
	if err != nil {
		t.Fatalf("NewGraphNet: %v", err)
	}
	ds, _ := dataset.Generate(dataset.CIFAR10Like, 5, 9)
	sawEarly, sawLate := false, false
	for i := 0; i < ds.Len(); i++ {
		in, err := FromImage(ds.Image(i), 32, 32, 3)
		if err != nil {
			t.Fatalf("FromImage: %v", err)
		}
		// Threshold 0 exits at the first classifier; threshold > 1 runs to
		// the last one.
		pr, err := net.Run(in, 0)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if pr.Exit == 2 {
			sawEarly = true
		}
		if pr.Class < 0 || pr.Class >= model.NumClasses {
			t.Errorf("class %d out of range", pr.Class)
		}
		pr2, err := net.Run(in, 1.1)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if pr2.Exit == 10 {
			sawLate = true
		}
		if pr2.FLOPs <= pr.FLOPs {
			t.Errorf("running deeper should cost more FLOPs: %v <= %v", pr2.FLOPs, pr.FLOPs)
		}
	}
	if !sawEarly || !sawLate {
		t.Errorf("exit behaviour not exercised (early=%v late=%v)", sawEarly, sawLate)
	}
}

func TestGraphNetResidualArchitectureRuns(t *testing.T) {
	// One real forward pass through a residual block network (ResNet-34 up
	// to its first exit), exercising OpAdd paths.
	p := model.ResNet34()
	net, err := NewGraphNet(p, []int{2}, 5)
	if err != nil {
		t.Fatalf("NewGraphNet: %v", err)
	}
	ds, _ := dataset.Generate(dataset.CIFAR10Like, 1, 3)
	in, err := FromImage(ds.Image(0), 32, 32, 3)
	if err != nil {
		t.Fatalf("FromImage: %v", err)
	}
	pr, err := net.Run(in, 0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if pr.Exit != 2 {
		t.Errorf("exit = %d, want 2 (threshold 0 accepts at the first exit)", pr.Exit)
	}
	want := p.CumulativeFLOPs(2) + model.ExitFLOPs(p.Elements[1].Out)
	if math.Abs(pr.FLOPs-want) > 1e-6*want {
		t.Errorf("executed FLOPs %v != analytic prefix+classifier %v", pr.FLOPs, want)
	}
}

func TestGraphNetExitValidation(t *testing.T) {
	p := model.VGG16()
	if _, err := NewGraphNet(p, []int{0}, 1); err == nil {
		t.Error("exit 0 accepted")
	}
	if _, err := NewGraphNet(p, []int{99}, 1); err == nil {
		t.Error("out-of-range exit accepted")
	}
}

func TestPoolAverageAndPadding(t *testing.T) {
	in := New(2, 2, 1)
	in.Data = []float32{1, 2, 3, 4}
	// 3x3 avg pool, stride 1, pad 1: center output averages all 4 values.
	out, err := Pool(in, 3, 1, 1, false, nil)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	if out.H != 2 || out.W != 2 {
		t.Fatalf("out shape %dx%d", out.H, out.W)
	}
	// Position (0,0) sees values {1,2,3,4} minus out-of-bounds; window rows
	// -1..1 x cols -1..1 covers (0,0),(0,1),(1,0),(1,1) => mean 2.5.
	if math.Abs(float64(out.At(0, 0, 0)-2.5)) > 1e-6 {
		t.Errorf("avg pool (0,0) = %v, want 2.5", out.At(0, 0, 0))
	}
	// Max pool over the same window picks 4.
	mx, err := Pool(in, 3, 1, 1, true, nil)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	if mx.At(0, 0, 0) != 4 {
		t.Errorf("max pool (0,0) = %v, want 4", mx.At(0, 0, 0))
	}
	if _, err := Pool(in, 0, 1, 0, true, nil); err == nil {
		t.Error("zero kernel accepted")
	}
	if _, err := Pool(New(1, 1, 1), 5, 1, 0, true, nil); err == nil {
		t.Error("empty pool output accepted")
	}
}

func TestAddAndConcat(t *testing.T) {
	a := New(1, 1, 2)
	a.Data = []float32{1, 2}
	b := New(1, 1, 2)
	b.Data = []float32{10, 20}
	sum, err := Add(a, b, nil)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum.Data[0] != 11 || sum.Data[1] != 22 {
		t.Errorf("Add = %v", sum.Data)
	}
	if _, err := Add(a, New(2, 1, 2), nil); err == nil {
		t.Error("shape mismatch accepted")
	}
	cat, err := Concat([]*Tensor{a, b}, nil)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	if cat.C != 4 || cat.Data[0] != 1 || cat.Data[2] != 10 {
		t.Errorf("Concat = %+v", cat)
	}
	if _, err := Concat([]*Tensor{a}, nil); err == nil {
		t.Error("single-input concat accepted")
	}
	if _, err := Concat([]*Tensor{a, New(2, 2, 1)}, nil); err == nil {
		t.Error("spatial mismatch accepted")
	}
}

func TestClone(t *testing.T) {
	a := New(1, 1, 2)
	a.Data = []float32{5, 6}
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 5 {
		t.Error("Clone shares storage")
	}
}

func TestArgMax(t *testing.T) {
	idx, v := ArgMax([]float32{0.1, 0.7, 0.2})
	if idx != 1 || v != 0.7 {
		t.Errorf("ArgMax = (%d, %v)", idx, v)
	}
}
