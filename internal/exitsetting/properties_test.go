package exitsetting

import (
	"math"
	"math/rand"
	"testing"

	"leime/internal/cluster"
	"leime/internal/model"
)

func TestOptimalExitsInvariantUnderUniformSpeedScaling(t *testing.T) {
	// Multiplying every node's FLOPS by the same constant scales every cost
	// term's compute part uniformly; with the network terms also scaled (by
	// scaling bytes), the optimal exits must not move. This pins the cost
	// model's homogeneity: only *ratios* matter.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		m := 6 + rng.Intn(15)
		p := randomProfile(rng, m)
		sigma := randomSigma(rng, m)
		env := randomEnv(rng)
		base := mustInstance(t, p, sigma, env).Solve()

		const c = 7.3
		scaled := env
		scaled.DeviceFLOPS *= c
		scaled.EdgeFLOPS *= c
		scaled.CloudFLOPS *= c
		scaled.DeviceEdge.BandwidthBps *= c
		scaled.DeviceEdge.LatencySec /= c
		scaled.EdgeCloud.BandwidthBps *= c
		scaled.EdgeCloud.LatencySec /= c
		got := mustInstance(t, p, sigma, scaled).Solve()

		if got.E1 != base.E1 || got.E2 != base.E2 {
			t.Fatalf("trial %d: exits moved under uniform speed scaling: (%d,%d) -> (%d,%d)",
				trial, base.E1, base.E2, got.E1, got.E2)
		}
		if rel := math.Abs(got.Cost*c-base.Cost) / base.Cost; rel > 1e-9 {
			t.Fatalf("trial %d: cost did not scale by 1/c (rel %v)", trial, rel)
		}
	}
}

func TestCostMonotoneInBandwidth(t *testing.T) {
	// For any fixed combination, more device-edge bandwidth can only reduce
	// the expected completion time.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		m := 6 + rng.Intn(15)
		p := randomProfile(rng, m)
		sigma := randomSigma(rng, m)
		env := randomEnv(rng)
		e1 := 1 + rng.Intn(m-2)
		e2 := e1 + 1 + rng.Intn(m-e1-1)

		slow := mustInstance(t, p, sigma, env)
		fastEnv := env
		fastEnv.DeviceEdge.BandwidthBps *= 3
		fast := mustInstance(t, p, sigma, fastEnv)
		if fast.Cost(e1, e2) > slow.Cost(e1, e2)+1e-12 {
			t.Fatalf("trial %d: cost rose with bandwidth at (%d,%d)", trial, e1, e2)
		}
	}
}

func TestCostMonotoneInSigma(t *testing.T) {
	// Raising exit probabilities pointwise (more traffic exits early) can
	// only reduce the expected completion time of any fixed combination.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		m := 6 + rng.Intn(15)
		p := randomProfile(rng, m)
		sigma := randomSigma(rng, m)
		env := randomEnv(rng)
		better := make([]float64, m)
		for i := range sigma {
			better[i] = sigma[i] + (1-sigma[i])*0.5*rng.Float64()
		}
		better[m-1] = 1
		// Keep monotone.
		for i := 1; i < m; i++ {
			if better[i] < better[i-1] {
				better[i] = better[i-1]
			}
		}
		e1 := 1 + rng.Intn(m-2)
		e2 := e1 + 1 + rng.Intn(m-e1-1)
		lo := mustInstance(t, p, sigma, env)
		hi := mustInstance(t, p, better, env)
		if hi.Cost(e1, e2) > lo.Cost(e1, e2)+1e-9 {
			t.Fatalf("trial %d: cost rose as exit rates improved at (%d,%d)", trial, e1, e2)
		}
	}
}

func TestSolveCostNeverAboveAnyCombination(t *testing.T) {
	// Solve's result is a certified minimum: spot-check against random
	// combinations on the real profiles.
	rng := rand.New(rand.NewSource(31))
	for _, p := range model.All() {
		sigma := randomSigma(rng, p.NumExits())
		in := mustInstance(t, p, sigma, cluster.TestbedEnv(cluster.JetsonNano))
		best := in.Solve()
		m := p.NumExits()
		for trial := 0; trial < 50; trial++ {
			e1 := 1 + rng.Intn(m-2)
			e2 := e1 + 1 + rng.Intn(m-e1-1)
			if in.Cost(e1, e2) < best.Cost-1e-12 {
				t.Fatalf("%s: combination (%d,%d) beats Solve's optimum", p.Name, e1, e2)
			}
		}
	}
}
