package exitsetting

import (
	"fmt"
	"math"
	"testing"

	"leime/internal/cluster"
	"leime/internal/model"
)

// benchSigma is a deterministic monotone exit-rate vector: benchmarks and
// the differential test need fixed inputs, not a calibration run.
func benchSigma(m int) []float64 {
	sigma := make([]float64, m)
	for i := range sigma {
		sigma[i] = float64(i+1) / float64(m)
	}
	return sigma
}

func benchInstanceFor(tb testing.TB, p *model.Profile) *Instance {
	tb.Helper()
	in, err := NewInstance(p, benchSigma(p.NumExits()), cluster.TestbedEnv(cluster.RaspberryPi3B))
	if err != nil {
		tb.Fatal(err)
	}
	return in
}

// uncachedCopy strips the profile's prefix-sum caches, so every cost
// evaluation pays the naive O(m) loop sums — the pre-optimization behavior.
func uncachedCopy(p *model.Profile) *model.Profile {
	return &model.Profile{Name: p.Name, Input: p.Input, InputBytes: p.InputBytes, Elements: p.Elements}
}

// naiveInstanceFor reproduces the pre-optimization cost model: a bare
// Instance (no transfer tables) over an uncached profile, so every
// evaluation re-sums layer FLOPs and recomputes transfer times.
func naiveInstanceFor(p *model.Profile) *Instance {
	return &Instance{
		Profile: uncachedCopy(p),
		Sigma:   benchSigma(p.NumExits()),
		Env:     cluster.TestbedEnv(cluster.RaspberryPi3B),
	}
}

// TestPrefixSumCostMatchesNaive is the differential test for the O(1) cost
// model: for every architecture and every admissible (e1, e2) pair, the
// prefix-sum-backed Cost/CostNoExits/TwoExitCost must match the naive
// loop-sum implementation to within 1e-12 relative.
func TestPrefixSumCostMatchesNaive(t *testing.T) {
	for _, p := range model.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			fast := benchInstanceFor(t, p)
			slow := naiveInstanceFor(p)
			m := p.NumExits()
			check := func(what string, got, want float64) {
				t.Helper()
				if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
					t.Errorf("%s: cached %v, naive %v", what, got, want)
				}
			}
			for e1 := 1; e1 < m-1; e1++ {
				check(fmt.Sprintf("TwoExitCost(%d)", e1), fast.TwoExitCost(e1), slow.TwoExitCost(e1))
				for e2 := e1 + 1; e2 < m; e2++ {
					check(fmt.Sprintf("Cost(%d,%d)", e1, e2), fast.Cost(e1, e2), slow.Cost(e1, e2))
					check(fmt.Sprintf("CostNoExits(%d,%d)", e1, e2), fast.CostNoExits(e1, e2), slow.CostNoExits(e1, e2))
				}
			}
		})
	}
}

// TestSolversAgreeOnCachedAndUncachedProfiles pins the end-to-end
// invariant: both solvers return the same setting and cost whether the
// profile carries prefix-sum caches or not.
func TestSolversAgreeOnCachedAndUncachedProfiles(t *testing.T) {
	for _, p := range model.All() {
		fast := benchInstanceFor(t, p)
		slow := naiveInstanceFor(p)
		for _, solver := range []struct {
			name string
			run  func(*Instance) Setting
		}{
			{"Exhaustive", (*Instance).Exhaustive},
			{"BranchAndBound", (*Instance).BranchAndBound},
		} {
			a, b := solver.run(fast), solver.run(slow)
			if a.E1 != b.E1 || a.E2 != b.E2 || math.Abs(a.Cost-b.Cost) > 1e-12*math.Max(1, math.Abs(b.Cost)) {
				t.Errorf("%s/%s: cached (%d,%d,%v) != naive (%d,%d,%v)",
					p.Name, solver.name, a.E1, a.E2, a.Cost, b.E1, b.E2, b.Cost)
			}
		}
	}
}

func benchOverArchs(b *testing.B, run func(*Instance) Setting) {
	for _, p := range model.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			in := benchInstanceFor(b, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s := run(in); s.E1 < 1 {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkExhaustive times the O(m^2) ground-truth solver with the O(1)
// prefix-sum cost model, per architecture.
func BenchmarkExhaustive(b *testing.B) {
	benchOverArchs(b, (*Instance).Exhaustive)
}

// BenchmarkExhaustiveNaive times the same solver with the caches stripped
// (every cost evaluation re-sums the chain, the pre-optimization O(m^3)
// behavior); the ratio to BenchmarkExhaustive is the prefix-sum payoff.
func BenchmarkExhaustiveNaive(b *testing.B) {
	for _, p := range model.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			in := naiveInstanceFor(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s := in.Exhaustive(); s.E1 < 1 {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkBranchAndBound times the paper's solver per architecture.
func BenchmarkBranchAndBound(b *testing.B) {
	benchOverArchs(b, (*Instance).BranchAndBound)
}

// BenchmarkCostEval times a single three-exit cost evaluation — the inner
// loop of both solvers and of every online re-solve.
func BenchmarkCostEval(b *testing.B) {
	for _, p := range model.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			in := benchInstanceFor(b, p)
			m := p.NumExits()
			e1, e2 := 1+m/4, 1+m/2
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c := in.Cost(e1, e2); c <= 0 {
					b.Fatal("non-positive cost")
				}
			}
		})
	}
}
