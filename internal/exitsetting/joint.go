package exitsetting

import "math"

// CostWithRatio extends the P0 cost model with a steady-state offloading
// ratio: a fraction x of tasks ships its raw input to the edge and runs the
// first block there, the rest runs it on the device. P0 is the x = 0 special
// case (the paper solves exit setting assuming device-side first blocks and
// lets the online controller pick x afterwards).
//
//	T(E, x) = (1-x) * t1_dev + x * (upload_d0 + t1_edge)
//	        + (1-sigma1) * (t2_edge + (1-x) * transfer_d1)
//	        + (1-sigma2) * (transfer_d2 + t3_cloud)
//
// Offloaded survivors of the First exit are already at the edge, so only
// locally launched survivors pay the d1 transfer.
func (in *Instance) CostWithRatio(e1, e2 int, x float64) float64 {
	p, env := in.Profile, in.Env
	m := p.NumExits()
	s1, s2 := in.Sigma[e1-1], in.Sigma[e2-1]

	t1dev := (p.RangeFLOPs(0, e1) + p.ExitClassifierFLOPs(e1)) / env.DeviceFLOPS
	t1edge := (p.RangeFLOPs(0, e1) + p.ExitClassifierFLOPs(e1)) / env.EdgeFLOPS
	upload := env.DeviceEdge.TransferSeconds(p.DataBytes(0))
	t2edge := (p.RangeFLOPs(e1, e2) + p.ExitClassifierFLOPs(e2)) / env.EdgeFLOPS
	d1 := env.DeviceEdge.TransferSeconds(p.DataBytes(e1))
	t3cloud := (p.RangeFLOPs(e2, m) + p.ExitClassifierFLOPs(m)) / env.CloudFLOPS
	d2 := env.EdgeCloud.TransferSeconds(p.DataBytes(e2))

	return (1-x)*t1dev + x*(upload+t1edge) +
		(1-s1)*(t2edge+(1-x)*d1) +
		(1-s2)*(d2+t3cloud)
}

// JointSetting is a jointly optimized (exit combination, offloading ratio).
type JointSetting struct {
	// E1, E2, E3 are the chosen 1-based exits.
	E1, E2, E3 int
	// Ratio is the steady-state offloading ratio.
	Ratio float64
	// Cost is T(E, x) at the optimum.
	Cost float64
}

// jointRatios is the ratio grid SolveJoint searches.
var jointRatios = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// SolveJoint minimizes T(E, x) over both the exit combination and the
// offloading ratio — an extension beyond the paper, which optimizes the two
// sequentially (P0 first at x=0, then the online controller picks x for the
// fixed exits). Joint optimization can only improve on the sequential
// result; the ext-joint experiment measures by how much.
func (in *Instance) SolveJoint() JointSetting {
	m := in.Profile.NumExits()
	best := JointSetting{E1: -1, E3: m, Cost: math.Inf(1)}
	for _, x := range jointRatios {
		for e1 := 1; e1 < m-1; e1++ {
			for e2 := e1 + 1; e2 < m; e2++ {
				if c := in.CostWithRatio(e1, e2, x); c < best.Cost {
					best = JointSetting{E1: e1, E2: e2, E3: m, Ratio: x, Cost: c}
				}
			}
		}
	}
	return best
}

// SolveSequential reproduces the paper's two-step pipeline under the same
// extended cost model: solve P0 at x = 0, then pick the best ratio for the
// chosen exits. Its cost upper-bounds SolveJoint's.
func (in *Instance) SolveSequential() JointSetting {
	base := in.BranchAndBound()
	out := JointSetting{E1: base.E1, E2: base.E2, E3: base.E3, Cost: math.Inf(1)}
	for _, x := range jointRatios {
		if c := in.CostWithRatio(base.E1, base.E2, x); c < out.Cost {
			out.Cost, out.Ratio = c, x
		}
	}
	return out
}
