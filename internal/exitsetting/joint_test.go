package exitsetting

import (
	"math"
	"math/rand"
	"testing"

	"leime/internal/cluster"
	"leime/internal/model"
)

func TestCostWithRatioZeroEqualsP0(t *testing.T) {
	// x = 0 must reduce exactly to the paper's P0 cost model.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := 5 + rng.Intn(15)
		in := mustInstance(t, randomProfile(rng, m), randomSigma(rng, m), randomEnv(rng))
		e1 := 1 + rng.Intn(m-2)
		e2 := e1 + 1 + rng.Intn(m-e1-1)
		p0 := in.Cost(e1, e2)
		got := in.CostWithRatio(e1, e2, 0)
		if math.Abs(got-p0) > 1e-9*math.Abs(p0) {
			t.Fatalf("trial %d: CostWithRatio(.., 0) = %v, P0 cost = %v", trial, got, p0)
		}
	}
}

func TestSolveJointNeverWorseThanSequential(t *testing.T) {
	// The joint optimum searches a superset of the sequential pipeline's
	// space, so it can never cost more.
	rng := rand.New(rand.NewSource(19))
	improved := 0
	for trial := 0; trial < 100; trial++ {
		m := 5 + rng.Intn(15)
		in := mustInstance(t, randomProfile(rng, m), randomSigma(rng, m), randomEnv(rng))
		joint := in.SolveJoint()
		seq := in.SolveSequential()
		if joint.Cost > seq.Cost+1e-12 {
			t.Fatalf("trial %d: joint %v worse than sequential %v", trial, joint.Cost, seq.Cost)
		}
		if joint.Cost < seq.Cost*(1-1e-9) {
			improved++
		}
	}
	if improved == 0 {
		t.Error("joint optimization never improved on sequential; extension vacuous")
	}
}

func TestSolveJointValidOutput(t *testing.T) {
	ds := paperInstance(t, model.InceptionV3(), cluster.TestbedEnv(cluster.RaspberryPi3B))
	joint := ds.SolveJoint()
	m := ds.Profile.NumExits()
	if !(1 <= joint.E1 && joint.E1 < joint.E2 && joint.E2 < m) {
		t.Errorf("invalid joint exits %+v", joint)
	}
	if joint.Ratio < 0 || joint.Ratio > 1 {
		t.Errorf("joint ratio %v out of range", joint.Ratio)
	}
	if joint.Cost <= 0 || math.IsInf(joint.Cost, 0) {
		t.Errorf("joint cost %v", joint.Cost)
	}
}

func TestCostWithRatioInterpolatesLinearly(t *testing.T) {
	// T(E, x) is affine in x: T(E, 0.5) must be the midpoint of the corners.
	in := paperInstance(t, model.ResNet34(), cluster.TestbedEnv(cluster.JetsonNano))
	e1, e2 := 2, 9
	lo := in.CostWithRatio(e1, e2, 0)
	hi := in.CostWithRatio(e1, e2, 1)
	mid := in.CostWithRatio(e1, e2, 0.5)
	if math.Abs(mid-(lo+hi)/2) > 1e-12*(lo+hi) {
		t.Errorf("midpoint %v != (%v+%v)/2", mid, lo, hi)
	}
}
