package exitsetting

import (
	"math"
	"math/rand"
	"testing"

	"leime/internal/cluster"
	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/model"
)

// randomProfile builds a synthetic chain with m elements whose FLOPs and
// tensor shapes are random but realistic (layer FLOPs dominate classifier
// FLOPs, as in every real CNN).
func randomProfile(rng *rand.Rand, m int) *model.Profile {
	p := &model.Profile{
		Name:       "synthetic",
		Input:      model.Shape{H: 32, W: 32, C: 3},
		InputBytes: model.RawInputBytes,
	}
	h, w := 32, 32
	for i := 0; i < m; i++ {
		c := 8 << rng.Intn(6) // 8..256 channels
		if rng.Float64() < 0.3 && h > 4 {
			h /= 2
			w /= 2
		}
		p.Elements = append(p.Elements, model.Element{
			Name:  "synthetic",
			FLOPs: 1e6 + rng.Float64()*5e8,
			Out:   model.Shape{H: h, W: w, C: c},
		})
	}
	return p
}

// randomSigma builds a strictly increasing exit-rate vector ending at 1.
func randomSigma(rng *rand.Rand, m int) []float64 {
	sigma := make([]float64, m)
	total := 0.0
	for i := range sigma {
		total += rng.Float64() + 0.01
		sigma[i] = total
	}
	for i := range sigma {
		sigma[i] /= total
	}
	sigma[m-1] = 1
	return sigma
}

func randomEnv(rng *rand.Rand) cluster.Env {
	return cluster.Env{
		DeviceFLOPS: 1e8 * math.Pow(10, 2*rng.Float64()),
		EdgeFLOPS:   1e9 * math.Pow(10, 2*rng.Float64()),
		CloudFLOPS:  1e11 * math.Pow(10, 2*rng.Float64()),
		DeviceEdge: cluster.Path{
			BandwidthBps: cluster.Mbps(1 + 99*rng.Float64()),
			LatencySec:   0.2 * rng.Float64(),
		},
		EdgeCloud: cluster.Path{
			BandwidthBps: cluster.Mbps(10 + 190*rng.Float64()),
			LatencySec:   0.1 * rng.Float64(),
		},
	}
}

func mustInstance(t *testing.T, p *model.Profile, sigma []float64, env cluster.Env) *Instance {
	t.Helper()
	in, err := NewInstance(p, sigma, env)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

func TestNewInstanceValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := randomProfile(rng, 10)
	env := cluster.TestbedEnv(cluster.RaspberryPi3B)
	good := randomSigma(rng, 10)
	if _, err := NewInstance(p, good, env); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := append([]float64(nil), good...)
	bad[5], bad[6] = bad[6], bad[5] // break monotonicity
	if _, err := NewInstance(p, bad, env); err == nil {
		t.Error("non-monotone sigma accepted")
	}
	short := good[:5]
	if _, err := NewInstance(p, short, env); err == nil {
		t.Error("short sigma accepted")
	}
	notOne := append([]float64(nil), good...)
	notOne[9] = 0.9
	if _, err := NewInstance(p, notOne, env); err == nil {
		t.Error("sigma_m != 1 accepted")
	}
	if _, err := NewInstance(p, good, cluster.Env{}); err == nil {
		t.Error("zero environment accepted")
	}
}

func TestCostMatchesHandComputation(t *testing.T) {
	// Tiny 3-element chain with round numbers, checked against eqs. 1–4 by
	// hand.
	p := &model.Profile{
		Name:       "tiny",
		Input:      model.Shape{H: 1, W: 1, C: 1},
		InputBytes: 1000,
		Elements: []model.Element{
			{Name: "l1", FLOPs: 1e9, Out: model.Shape{H: 10, W: 10, C: 10}}, // 4000 B
			{Name: "l2", FLOPs: 2e9, Out: model.Shape{H: 5, W: 5, C: 20}},   // 2000 B
			{Name: "l3", FLOPs: 4e9, Out: model.Shape{H: 1, W: 1, C: 10}},   // 40 B
		},
	}
	env := cluster.Env{
		DeviceFLOPS: 1e9, EdgeFLOPS: 1e10, CloudFLOPS: 1e11,
		DeviceEdge: cluster.Path{BandwidthBps: 8e6, LatencySec: 0.01}, // 1 MB/s
		EdgeCloud:  cluster.Path{BandwidthBps: 8e7, LatencySec: 0.02}, // 10 MB/s
	}
	sigma := []float64{0.4, 0.7, 1.0}
	in := mustInstance(t, p, sigma, env)

	x1 := model.ExitFLOPs(p.Elements[0].Out)
	x2 := model.ExitFLOPs(p.Elements[1].Out)
	x3 := model.ExitFLOPs(p.Elements[2].Out)
	td := (1e9 + x1) / 1e9
	te := (2e9+x2)/1e10 + 4000/1e6 + 0.01
	tc := (4e9+x3)/1e11 + 2000/1e7 + 0.02
	want := (td + te + tc) - (0.4*te + 0.7*tc)
	if got := in.Cost(1, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost(1,2) = %v, want %v", got, want)
	}

	// Partition-only cost: no exit classifiers except the final one, no
	// early-exit savings.
	wantNoExit := 1e9/1e9 + (2e9/1e10 + 4000/1e6 + 0.01) + ((4e9+x3)/1e11 + 2000/1e7 + 0.02)
	if got := in.CostNoExits(1, 2); math.Abs(got-wantNoExit) > 1e-12 {
		t.Errorf("CostNoExits(1,2) = %v, want %v", got, wantNoExit)
	}
}

func TestBranchAndBoundMatchesExhaustiveOnPaperModels(t *testing.T) {
	ds, err := dataset.Generate(dataset.CIFAR10Like, 800, 3)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	envs := []cluster.Env{
		cluster.TestbedEnv(cluster.RaspberryPi3B),
		cluster.TestbedEnv(cluster.JetsonNano),
		cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(0.1),
		cluster.TestbedEnv(cluster.JetsonNano).WithDeviceEdge(cluster.Path{BandwidthBps: cluster.Mbps(1), LatencySec: 0.2}),
	}
	for _, p := range model.All() {
		_, _, sigma, err := confidence.Calibrated(p, ds, 42)
		if err != nil {
			t.Fatalf("Calibrated(%s): %v", p.Name, err)
		}
		for ei, env := range envs {
			in := mustInstance(t, p, sigma, env)
			ex := in.Exhaustive()
			bb := in.BranchAndBound()
			if math.Abs(ex.Cost-bb.Cost) > 1e-12*math.Abs(ex.Cost) {
				t.Errorf("%s env %d: BnB cost %v (exits %d,%d) != exhaustive %v (exits %d,%d)",
					p.Name, ei, bb.Cost, bb.E1, bb.E2, ex.Cost, ex.E1, ex.E2)
			}
		}
	}
}

func TestBranchAndBoundMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		m := 4 + rng.Intn(30)
		p := randomProfile(rng, m)
		sigma := randomSigma(rng, m)
		env := randomEnv(rng)
		in := mustInstance(t, p, sigma, env)
		ex := in.Exhaustive()
		bb := in.BranchAndBound()
		if math.Abs(ex.Cost-bb.Cost) > 1e-9*math.Abs(ex.Cost) {
			t.Fatalf("trial %d (m=%d): BnB cost %v (exits %d,%d) != exhaustive %v (exits %d,%d)",
				trial, m, bb.Cost, bb.E1, bb.E2, ex.Cost, ex.E1, ex.E2)
		}
	}
}

func TestBranchAndBoundCheaperThanExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var bbTotal, exTotal int
	for trial := 0; trial < 200; trial++ {
		m := 10 + rng.Intn(40)
		in := mustInstance(t, randomProfile(rng, m), randomSigma(rng, m), randomEnv(rng))
		bbTotal += in.BranchAndBound().Evals
		exTotal += in.Exhaustive().Evals
	}
	if bbTotal >= exTotal {
		t.Errorf("branch-and-bound did %d evals, exhaustive %d; pruning ineffective", bbTotal, exTotal)
	}
}

func TestBranchAndBoundComplexityScaling(t *testing.T) {
	// Theorem 2: average complexity O(m ln m). Check mean evaluation counts
	// grow sub-quadratically: evals(4m)/evals(m) should be far below the
	// 16x a quadratic algorithm would show.
	rng := rand.New(rand.NewSource(5))
	meanEvals := func(m, trials int) float64 {
		var sum float64
		for i := 0; i < trials; i++ {
			in := mustInstance(t, randomProfile(rng, m), randomSigma(rng, m), randomEnv(rng))
			sum += float64(in.BranchAndBound().Evals)
		}
		return sum / float64(trials)
	}
	small := meanEvals(25, 60)
	large := meanEvals(100, 60)
	ratio := large / small
	if ratio > 9 { // m ln m predicts ~5.3x, quadratic predicts 16x
		t.Errorf("eval growth ratio %v for 4x larger m suggests super-(m ln m) scaling (small=%v, large=%v)", ratio, small, large)
	}
}

func TestTheorem1Dominance(t *testing.T) {
	// Whenever T2(i1) <= T2(i2) with i1 < i2, every completed combination
	// rooted at i1 must cost no more than the same completion rooted at i2.
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 100; trial++ {
		m := 6 + rng.Intn(20)
		in := mustInstance(t, randomProfile(rng, m), randomSigma(rng, m), randomEnv(rng))
		for i1 := 1; i1 < m-1; i1++ {
			for i2 := i1 + 1; i2 < m-1; i2++ {
				if in.TwoExitCost(i1) > in.TwoExitCost(i2) {
					continue
				}
				for j := i2 + 1; j < m; j++ {
					if in.Cost(i1, j) > in.Cost(i2, j)+1e-9 {
						t.Fatalf("Theorem 1 violated: m=%d T2(%d)<=T2(%d) but T(%d,%d)=%v > T(%d,%d)=%v",
							m, i1, i2, i1, j, in.Cost(i1, j), i2, j, in.Cost(i2, j))
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("dominance premise never held; test vacuous")
	}
}

func TestPaperShapePiPrefersShallowNanoDeep(t *testing.T) {
	// Fig. 2(a): on a Raspberry Pi the optimal First-exit is shallow (the
	// device can barely compute), on a Jetson Nano it is deeper.
	ds, _ := dataset.Generate(dataset.CIFAR10Like, 800, 3)
	p := model.InceptionV3()
	_, _, sigma, err := confidence.Calibrated(p, ds, 42)
	if err != nil {
		t.Fatalf("Calibrated: %v", err)
	}
	pi := mustInstance(t, p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B)).Solve()
	nano := mustInstance(t, p, sigma, cluster.TestbedEnv(cluster.JetsonNano)).Solve()
	if pi.E1 > nano.E1 {
		t.Errorf("Pi First-exit (%d) should be no deeper than Nano's (%d)", pi.E1, nano.E1)
	}
}

func TestPaperShapeLoadedEdgePrefersShallowerSecondExit(t *testing.T) {
	// Fig. 2(b): a heavily loaded edge pushes the optimal Second-exit
	// shallower (offload less work to the edge).
	ds, _ := dataset.Generate(dataset.CIFAR10Like, 800, 3)
	p := model.InceptionV3()
	_, _, sigma, err := confidence.Calibrated(p, ds, 42)
	if err != nil {
		t.Fatalf("Calibrated: %v", err)
	}
	idle := mustInstance(t, p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B)).Solve()
	loaded := mustInstance(t, p, sigma, cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(0.02)).Solve()
	if loaded.E2 > idle.E2 {
		t.Errorf("loaded edge Second-exit (%d) should be no deeper than idle edge's (%d)", loaded.E2, idle.E2)
	}
}
