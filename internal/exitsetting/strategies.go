package exitsetting

import (
	"fmt"
	"sort"
)

// Strategy is a named exit-setting policy: given a cost-model instance it
// returns the (First, Second) exits. Every baseline in the paper's evaluation
// is expressed as a Strategy so experiment harnesses can sweep them.
type Strategy struct {
	// Name is the scheme name as used in the paper's figures.
	Name string
	// UsesEarlyExit is false only for Neurosurgeon, which keeps the LEIME
	// partition points but never exits early (sigma_1 = sigma_2 = 0).
	UsesEarlyExit bool
	// Select picks the exits.
	Select func(in *Instance) (e1, e2 int, err error)
}

// LEIME returns the paper's strategy: the branch-and-bound optimal setting.
func LEIME() Strategy {
	return Strategy{
		Name:          "LEIME",
		UsesEarlyExit: true,
		Select: func(in *Instance) (int, int, error) {
			s := in.BranchAndBound()
			if s.E1 < 1 {
				return 0, 0, fmt.Errorf("exitsetting: no feasible combination for %s", in.Profile.Name)
			}
			return s.E1, s.E2, nil
		},
	}
}

// Neurosurgeon returns the partition-only baseline: the DNN has no early
// exits, while the partition positions are the same as LEIME's (§IV-A). Its
// cost must be evaluated with sigma_1 = sigma_2 = 0.
func Neurosurgeon() Strategy {
	s := LEIME()
	s.Name = "Neurosurgeon"
	s.UsesEarlyExit = false
	return s
}

// DDNN returns the DDNN-style baseline: exits are set at the layers with a
// smaller amount of intermediate data and a higher exit probability (§IV-A);
// candidates are ranked by exit probability per transmitted byte and the two
// best-ranked positions are used in depth order.
func DDNN() Strategy {
	return Strategy{
		Name:          "DDNN",
		UsesEarlyExit: true,
		Select: func(in *Instance) (int, int, error) {
			m := in.Profile.NumExits()
			type cand struct {
				idx   int
				score float64
			}
			cands := make([]cand, 0, m-2)
			for i := 1; i < m; i++ {
				cands = append(cands, cand{idx: i, score: in.Sigma[i-1] / in.Profile.DataBytes(i)})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })
			e1, e2 := cands[0].idx, cands[1].idx
			if e1 > e2 {
				e1, e2 = e2, e1
			}
			return e1, e2, nil
		},
	}
}

// Edgent returns the Edgent-style baseline: exits are intuitively set at the
// positions where the intermediate data size is the smallest (§IV-A).
func Edgent() Strategy {
	s := minTranSelect("Edgent")
	return s
}

// MinTran returns the ablation baseline of Fig. 10(a) that minimizes
// transmission: identical placement rule to Edgent.
func MinTran() Strategy { return minTranSelect("min_tran") }

func minTranSelect(name string) Strategy {
	return Strategy{
		Name:          name,
		UsesEarlyExit: true,
		Select: func(in *Instance) (int, int, error) {
			m := in.Profile.NumExits()
			type cand struct {
				idx   int
				bytes float64
			}
			cands := make([]cand, 0, m-2)
			for i := 1; i < m; i++ {
				cands = append(cands, cand{idx: i, bytes: in.Profile.DataBytes(i)})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].bytes < cands[b].bytes })
			e1, e2 := cands[0].idx, cands[1].idx
			if e1 > e2 {
				e1, e2 = e2, e1
			}
			return e1, e2, nil
		},
	}
}

// MinComp returns the ablation baseline of Fig. 10(a) that minimizes added
// computation: the two exits whose classifiers are cheapest (fewest exit
// FLOPs), in depth order.
func MinComp() Strategy {
	return Strategy{
		Name:          "min_comp",
		UsesEarlyExit: true,
		Select: func(in *Instance) (int, int, error) {
			m := in.Profile.NumExits()
			type cand struct {
				idx   int
				flops float64
			}
			cands := make([]cand, 0, m-2)
			for i := 1; i < m; i++ {
				cands = append(cands, cand{idx: i, flops: in.Profile.ExitClassifierFLOPs(i)})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].flops < cands[b].flops })
			e1, e2 := cands[0].idx, cands[1].idx
			if e1 > e2 {
				e1, e2 = e2, e1
			}
			return e1, e2, nil
		},
	}
}

// Mean returns the ablation baseline of Fig. 10(a) that divides the chain
// evenly: exits at one third and two thirds of the depth.
func Mean() Strategy {
	return Strategy{
		Name:          "mean",
		UsesEarlyExit: true,
		Select: func(in *Instance) (int, int, error) {
			m := in.Profile.NumExits()
			e1 := m / 3
			if e1 < 1 {
				e1 = 1
			}
			e2 := 2 * m / 3
			if e2 <= e1 {
				e2 = e1 + 1
			}
			if e2 >= m {
				return 0, 0, fmt.Errorf("exitsetting: chain too short for mean division (m=%d)", m)
			}
			return e1, e2, nil
		},
	}
}

// EvalStrategy applies the strategy to the instance and returns the exit
// choice together with its expected completion time under the instance's
// cost model. Neurosurgeon's cost is evaluated with early exits disabled.
func EvalStrategy(in *Instance, s Strategy) (Setting, error) {
	e1, e2, err := s.Select(in)
	if err != nil {
		return Setting{}, fmt.Errorf("exitsetting: strategy %s: %w", s.Name, err)
	}
	out := Setting{E1: e1, E2: e2, E3: in.Profile.NumExits()}
	if s.UsesEarlyExit {
		out.Cost = in.Cost(e1, e2)
		return out, nil
	}
	out.Cost = in.CostNoExits(e1, e2)
	return out, nil
}

// Baselines returns every comparison strategy of the paper's evaluation, in
// presentation order: the three end-to-end baselines (§IV-A) followed by the
// three exit-setting ablations (Fig. 10(a)).
func Baselines() []Strategy {
	return []Strategy{Neurosurgeon(), Edgent(), DDNN(), MinComp(), MinTran(), Mean()}
}
