// Equation map — where each formula of the paper's §III-C lives:
//
//	eq. 1   t^d (device stage)             Instance.StageCosts (Device term)
//	eq. 2   t^e (edge stage)               Instance.StageCosts (Edge term)
//	eq. 3   t^c (cloud stage)              Instance.StageCosts (Cloud term)
//	eq. 4   P0 objective T(E)              Instance.Cost
//	eq. 5   two-exit cost T({i, m, -})     Instance.TwoExitCost
//	eq. 6   Theorem-1 dominance identity   verified by TestTheorem1Dominance
//	eq. 7   E_best over pruned rounds      Instance.BranchAndBound
//	Thm. 2  O(m ln m) average complexity   TestBranchAndBoundComplexityScaling
//
// The partition-only variant used by the Neurosurgeon baseline is
// Instance.CostNoExits; the beyond-paper joint model T(E, x) is
// Instance.CostWithRatio / SolveJoint (see the ext-joint experiment).
package exitsetting
