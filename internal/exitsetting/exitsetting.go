// Package exitsetting implements LEIME's model-level contribution: choosing
// the First, Second and Third exits of a multi-exit DNN so that the expected
// task completion time T(E) (paper eq. 4, problem P0) is minimized for a
// given wild-edge environment.
//
// The package provides the exact cost model (eqs. 1–3), an O(m^2) exhaustive
// solver used as ground truth, the paper's branch-and-bound solver built on
// the Theorem-1 dominance property (O(m ln m) average complexity, Theorem 2),
// and the baseline exit-setting strategies the paper compares against: DDNN,
// Edgent, Neurosurgeon's partition-only scheme, and the min_comp / min_tran /
// mean ablations of Fig. 10(a).
package exitsetting

import (
	"fmt"
	"math"

	"leime/internal/cluster"
	"leime/internal/model"
)

// Costs breaks the expected completion time of an exit combination into the
// paper's three stage terms.
type Costs struct {
	// Device is t^d (eq. 1): first-block layers plus the First-exit
	// classifier on the device.
	Device float64
	// Edge is t^e (eq. 2): second-block layers plus the Second-exit
	// classifier on the edge, plus device-to-edge transmission of the
	// First-exit intermediate data.
	Edge float64
	// Cloud is t^c (eq. 3): third-block layers plus the Third-exit
	// classifier on the cloud, plus edge-to-cloud transmission.
	Cloud float64
}

// Instance bundles everything the cost model needs: the chain profile, the
// per-exit cumulative exit rates, and the environment.
//
// NewInstance precomputes per-cut transfer times, so together with the
// profile's prefix-sum caches every cost evaluation is O(1); both solvers
// run millions of evaluations when re-solving online. Instances built as
// bare struct literals (and environments mutated after construction) lose
// the tables and fall back to recomputing transfers per evaluation.
type Instance struct {
	Profile *model.Profile
	// Sigma is the cumulative exit-rate vector (len m, monotone, last == 1).
	Sigma []float64
	Env   cluster.Env

	// xferDE[i] / xferEC[i] are the device→edge and edge→cloud transfer
	// times of the tensor at cut i (0..m), hoisted out of the cost model's
	// inner loop by NewInstance.
	xferDE, xferEC []float64
	// Flattened per-exit stage terms (0..m), also built by NewInstance, so
	// the three-exit cost is a handful of table lookups:
	//
	//	Cost(e1, e2) = devT[e1] + (1-Sigma[e1-1])*(edgeA[e2]+edgeB[e1])
	//	             + (1-Sigma[e2-1])*cloudT[e2]
	//
	// devT[i] is the device stage ending at exit i; edgeA[i]+edgeB[j] is
	// the edge stage running from cut j to exit i (classifier included);
	// cloudT[i] is the cloud stage from cut i to the final exit.
	devT, edgeA, edgeB, cloudT []float64
}

// buildTables precomputes the per-cut transfer-time and stage-term tables
// from the current profile and environment.
func (in *Instance) buildTables() {
	p, env := in.Profile, in.Env
	m := p.NumExits()
	in.xferDE = make([]float64, m+1)
	in.xferEC = make([]float64, m+1)
	in.devT = make([]float64, m+1)
	in.edgeA = make([]float64, m+1)
	in.edgeB = make([]float64, m+1)
	in.cloudT = make([]float64, m+1)
	for i := 0; i <= m; i++ {
		b := p.DataBytes(i)
		in.xferDE[i] = env.DeviceEdge.TransferSeconds(b)
		in.xferEC[i] = env.EdgeCloud.TransferSeconds(b)
		cum := p.CumulativeFLOPs(i)
		if i > 0 {
			exit := p.ExitClassifierFLOPs(i)
			in.devT[i] = (cum + exit) / env.DeviceFLOPS
			in.edgeA[i] = (cum + exit) / env.EdgeFLOPS
		}
		in.edgeB[i] = in.xferDE[i] - cum/env.EdgeFLOPS
		in.cloudT[i] = (p.RangeFLOPs(i, m)+p.ExitClassifierFLOPs(m))/env.CloudFLOPS + in.xferEC[i]
	}
}

// deviceEdgeXfer returns the device→edge transfer time of the tensor at
// cut i, from the table when present.
func (in *Instance) deviceEdgeXfer(i int) float64 {
	if len(in.xferDE) > i {
		return in.xferDE[i]
	}
	return in.Env.DeviceEdge.TransferSeconds(in.Profile.DataBytes(i))
}

// edgeCloudXfer is deviceEdgeXfer for the edge→cloud hop.
func (in *Instance) edgeCloudXfer(i int) float64 {
	if len(in.xferEC) > i {
		return in.xferEC[i]
	}
	return in.Env.EdgeCloud.TransferSeconds(in.Profile.DataBytes(i))
}

// NewInstance validates and builds a cost-model instance.
func NewInstance(p *model.Profile, sigma []float64, env cluster.Env) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	m := p.NumExits()
	if len(sigma) != m {
		return nil, fmt.Errorf("exitsetting: sigma has %d entries, want %d", len(sigma), m)
	}
	prev := 0.0
	for i, s := range sigma {
		if s < prev-1e-12 || s < 0 || s > 1 {
			return nil, fmt.Errorf("exitsetting: sigma must be a monotone vector in [0,1]; entry %d is %v after %v", i, s, prev)
		}
		prev = s
	}
	if math.Abs(sigma[m-1]-1) > 1e-9 {
		return nil, fmt.Errorf("exitsetting: sigma_m = %v, want 1", sigma[m-1])
	}
	in := &Instance{Profile: p, Sigma: sigma, Env: env}
	in.buildTables()
	return in, nil
}

// StageCosts returns the three stage terms for the exit combination
// {e1, e2, m} (1-based exits, e1 < e2 < m).
func (in *Instance) StageCosts(e1, e2 int) Costs {
	p, env := in.Profile, in.Env
	m := p.NumExits()
	return Costs{
		Device: (p.RangeFLOPs(0, e1) + p.ExitClassifierFLOPs(e1)) / env.DeviceFLOPS,
		Edge: (p.RangeFLOPs(e1, e2)+p.ExitClassifierFLOPs(e2))/env.EdgeFLOPS +
			in.deviceEdgeXfer(e1),
		Cloud: (p.RangeFLOPs(e2, m)+p.ExitClassifierFLOPs(m))/env.CloudFLOPS +
			in.edgeCloudXfer(e2),
	}
}

// Cost returns T(E) for the exit combination {e1, e2, m} (eq. 4):
//
//	T(E) = sigma_m (t^d + t^e + t^c) - (sigma_e1 t^e + sigma_e2 t^c)
//
// i.e. every task pays the device stage; tasks that survive the First exit
// pay the edge stage; tasks that survive the Second exit pay the cloud stage.
func (in *Instance) Cost(e1, e2 int) float64 {
	if len(in.devT) > e2 {
		// Flattened form of the stage-cost formula below; equal to it up to
		// floating-point re-association (see the differential test).
		return in.devT[e1] + (1-in.Sigma[e1-1])*(in.edgeA[e2]+in.edgeB[e1]) +
			(1-in.Sigma[e2-1])*in.cloudT[e2]
	}
	c := in.StageCosts(e1, e2)
	s1, s2 := in.Sigma[e1-1], in.Sigma[e2-1]
	return (c.Device + c.Edge + c.Cloud) - (s1*c.Edge + s2*c.Cloud)
}

// CostNoExits returns the completion time of a partition-only deployment
// (Neurosurgeon): the chain is cut at the same (e1, e2) positions, but no
// early-exit classifiers exist, so every task traverses all three blocks and
// only the final classifier runs.
func (in *Instance) CostNoExits(e1, e2 int) float64 {
	p, env := in.Profile, in.Env
	m := p.NumExits()
	td := p.RangeFLOPs(0, e1) / env.DeviceFLOPS
	te := p.RangeFLOPs(e1, e2)/env.EdgeFLOPS + in.deviceEdgeXfer(e1)
	tc := (p.RangeFLOPs(e2, m)+p.ExitClassifierFLOPs(m))/env.CloudFLOPS + in.edgeCloudXfer(e2)
	return td + te + tc
}

// TwoExitCost returns T({exit_i, exit_m, -}) (eq. 5): the cost of a two-exit
// network whose first block runs on the device and the rest on the edge. It
// is the quantity Theorem 1's dominance test compares.
func (in *Instance) TwoExitCost(i int) float64 {
	p, env := in.Profile, in.Env
	m := p.NumExits()
	td := (p.RangeFLOPs(0, i) + p.ExitClassifierFLOPs(i)) / env.DeviceFLOPS
	te := (p.RangeFLOPs(i, m)+p.ExitClassifierFLOPs(m))/env.EdgeFLOPS +
		in.deviceEdgeXfer(i)
	return (td + te) - in.Sigma[i-1]*te
}

// Setting is a solved exit combination.
type Setting struct {
	// E1, E2, E3 are the chosen 1-based exits (E3 is always m).
	E1, E2, E3 int
	// Cost is T(E) for the combination.
	Cost float64
	// Evals counts how many cost evaluations (two-exit or three-exit) the
	// solver performed; complexity assertions use it.
	Evals int
}

// Exhaustive scans all (e1, e2) pairs with 1 <= e1 < e2 < m. It is the
// O(m^2) ground truth the branch-and-bound solver is verified against.
func (in *Instance) Exhaustive() Setting {
	m := in.Profile.NumExits()
	best := Setting{E1: -1, Cost: math.Inf(1), E3: m}
	for e1 := 1; e1 < m-1; e1++ {
		for e2 := e1 + 1; e2 < m; e2++ {
			best.Evals++
			if c := in.Cost(e1, e2); c < best.Cost {
				best.Cost, best.E1, best.E2 = c, e1, e2
			}
		}
	}
	return best
}

// BranchAndBound is the paper's exit-setting algorithm (§III-C). Theorem 1:
// if the two-exit network rooted at a shallower First-exit candidate is
// cheaper than one rooted at a deeper candidate, the same ordering holds for
// every completed three-exit combination. The solver therefore repeatedly
// takes the best remaining two-exit root i_k within the current upper bound,
// completes it by scanning Second-exit choices (the set R_{i_k}), and shrinks
// the First-exit search space to indices below i_k, until the bound reaches
// zero. Average complexity is O(m ln m) (Theorem 2).
func (in *Instance) BranchAndBound() Setting {
	m := in.Profile.NumExits()
	best := Setting{E1: -1, Cost: math.Inf(1), E3: m}

	// Pre-evaluate the two-exit costs lazily; each index is costed at most
	// once across all rounds.
	twoExit := make([]float64, m-1) // twoExit[i-1] = T({exit_i, exit_m, -})
	costed := make([]bool, m-1)
	evals := 0
	costTwo := func(i int) float64 {
		if !costed[i-1] {
			twoExit[i-1] = in.TwoExitCost(i)
			costed[i-1] = true
			evals++
		}
		return twoExit[i-1]
	}

	upbound := m - 2
	for upbound >= 1 {
		// i_k = argmin of the two-exit cost within the current bound.
		ik, ikCost := 0, math.Inf(1)
		for i := 1; i <= upbound; i++ {
			if c := costTwo(i); c < ikCost {
				ik, ikCost = i, c
			}
		}
		// Complete i_k with every admissible Second-exit (the set R_{i_k}).
		for e2 := ik + 1; e2 < m; e2++ {
			evals++
			if c := in.Cost(ik, e2); c < best.Cost {
				best.Cost, best.E1, best.E2 = c, ik, e2
			}
		}
		// Theorem 1 excludes every deeper First-exit candidate.
		upbound = ik - 1
	}
	best.Evals = evals
	return best
}

// Solve runs the branch-and-bound solver; it is the production entry point.
func (in *Instance) Solve() Setting { return in.BranchAndBound() }
