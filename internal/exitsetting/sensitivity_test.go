package exitsetting

import (
	"testing"

	"leime/internal/cluster"
	"leime/internal/model"
)

func TestBandwidthSweepSolvesEveryPoint(t *testing.T) {
	in := paperInstance(t, model.InceptionV3(), cluster.TestbedEnv(cluster.RaspberryPi3B))
	pts, err := BandwidthSweep(in.Profile, in.Sigma, in.Env, []float64{1, 4, 16, 64})
	if err != nil {
		t.Fatalf("BandwidthSweep: %v", err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4", len(pts))
	}
	for _, pt := range pts {
		if pt.Setting.E1 < 1 || pt.Setting.E1 >= pt.Setting.E2 {
			t.Errorf("%s: bad setting %+v", pt.Label, pt.Setting)
		}
		if pt.Setting.Cost <= 0 {
			t.Errorf("%s: non-positive cost", pt.Label)
		}
	}
	// More bandwidth can only improve (or preserve) the optimal cost: with a
	// faster uplink every combination's cost is <= its slow-uplink cost.
	for i := 1; i < len(pts); i++ {
		if pts[i].Setting.Cost > pts[i-1].Setting.Cost+1e-12 {
			t.Errorf("optimal cost rose with bandwidth: %s=%v -> %s=%v",
				pts[i-1].Label, pts[i-1].Setting.Cost, pts[i].Label, pts[i].Setting.Cost)
		}
	}
}

func TestEdgeLoadSweepShiftsSecondExit(t *testing.T) {
	in := paperInstance(t, model.InceptionV3(), cluster.TestbedEnv(cluster.RaspberryPi3B))
	pts, err := EdgeLoadSweep(in.Profile, in.Sigma, in.Env, []float64{1, 0.25, 0.05})
	if err != nil {
		t.Fatalf("EdgeLoadSweep: %v", err)
	}
	// Heavier load (smaller share) pushes the Second exit no deeper
	// (Fig. 2(b) direction).
	for i := 1; i < len(pts); i++ {
		if pts[i].Setting.E2 > pts[i-1].Setting.E2 {
			t.Errorf("Second exit deepened as edge load grew: %s e2=%d -> %s e2=%d",
				pts[i-1].Label, pts[i-1].Setting.E2, pts[i].Label, pts[i].Setting.E2)
		}
	}
}

func TestSensitivityRejectsBadEnv(t *testing.T) {
	in := paperInstance(t, model.VGG16(), cluster.TestbedEnv(cluster.RaspberryPi3B))
	_, err := Sensitivity(in.Profile, in.Sigma, []struct {
		Label string
		Env   cluster.Env
	}{{Label: "broken", Env: cluster.Env{}}})
	if err == nil {
		t.Error("invalid environment accepted")
	}
}
