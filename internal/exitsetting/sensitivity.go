package exitsetting

import (
	"fmt"

	"leime/internal/cluster"
	"leime/internal/model"
)

// SweepPoint is one environment of a sensitivity sweep together with its
// optimal setting.
type SweepPoint struct {
	// Label names the swept value (e.g. "8Mbps").
	Label string
	// Env is the environment at this point.
	Env cluster.Env
	// Setting is the solved optimum.
	Setting Setting
}

// Sensitivity solves the exit setting across a set of environments — how
// the optimum migrates as one factor (bandwidth, latency, edge load, device
// class) changes. It is the programmatic form of the paper's Fig. 2 study.
func Sensitivity(p *model.Profile, sigma []float64, points []struct {
	Label string
	Env   cluster.Env
}) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(points))
	for _, pt := range points {
		in, err := NewInstance(p, sigma, pt.Env)
		if err != nil {
			return nil, fmt.Errorf("exitsetting: point %q: %w", pt.Label, err)
		}
		s := in.Solve()
		if s.E1 < 1 {
			return nil, fmt.Errorf("exitsetting: point %q: no feasible setting", pt.Label)
		}
		out = append(out, SweepPoint{Label: pt.Label, Env: pt.Env, Setting: s})
	}
	return out, nil
}

// BandwidthSweep solves the optimal setting across device–edge bandwidths
// (Mbps), holding everything else at the base environment.
func BandwidthSweep(p *model.Profile, sigma []float64, base cluster.Env, mbps []float64) ([]SweepPoint, error) {
	points := make([]struct {
		Label string
		Env   cluster.Env
	}, 0, len(mbps))
	for _, bw := range mbps {
		points = append(points, struct {
			Label string
			Env   cluster.Env
		}{
			Label: fmt.Sprintf("%gMbps", bw),
			Env: base.WithDeviceEdge(cluster.Path{
				BandwidthBps: cluster.Mbps(bw),
				LatencySec:   base.DeviceEdge.LatencySec,
			}),
		})
	}
	return Sensitivity(p, sigma, points)
}

// EdgeLoadSweep solves the optimal setting across edge shares (each share in
// (0, 1] is the fraction of the edge available to this device).
func EdgeLoadSweep(p *model.Profile, sigma []float64, base cluster.Env, shares []float64) ([]SweepPoint, error) {
	points := make([]struct {
		Label string
		Env   cluster.Env
	}, 0, len(shares))
	for _, sh := range shares {
		points = append(points, struct {
			Label string
			Env   cluster.Env
		}{
			Label: fmt.Sprintf("share=%.2f", sh),
			Env:   base.WithEdgeLoad(sh),
		})
	}
	return Sensitivity(p, sigma, points)
}
