package exitsetting

import (
	"math/rand"
	"testing"

	"leime/internal/cluster"
	"leime/internal/confidence"
	"leime/internal/dataset"
	"leime/internal/model"
)

func paperInstance(t *testing.T, p *model.Profile, env cluster.Env) *Instance {
	t.Helper()
	ds, err := dataset.Generate(dataset.CIFAR10Like, 800, 3)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	_, _, sigma, err := confidence.Calibrated(p, ds, 42)
	if err != nil {
		t.Fatalf("Calibrated: %v", err)
	}
	return mustInstance(t, p, sigma, env)
}

func TestStrategiesReturnValidExits(t *testing.T) {
	strategies := append([]Strategy{LEIME()}, Baselines()...)
	for _, p := range model.All() {
		in := paperInstance(t, p, cluster.TestbedEnv(cluster.RaspberryPi3B))
		m := p.NumExits()
		for _, s := range strategies {
			e1, e2, err := s.Select(in)
			if err != nil {
				t.Errorf("%s on %s: %v", s.Name, p.Name, err)
				continue
			}
			if !(1 <= e1 && e1 < e2 && e2 < m) {
				t.Errorf("%s on %s: invalid exits (%d, %d) for m=%d", s.Name, p.Name, e1, e2, m)
			}
		}
	}
}

func TestLEIMENeverWorseThanBaselines(t *testing.T) {
	// LEIME solves P0 exactly, so under the shared cost model no early-exit
	// baseline can beat it.
	rng := rand.New(rand.NewSource(9))
	envs := []cluster.Env{
		cluster.TestbedEnv(cluster.RaspberryPi3B),
		cluster.TestbedEnv(cluster.JetsonNano),
		cluster.TestbedEnv(cluster.RaspberryPi3B).WithEdgeLoad(0.05),
		randomEnv(rng),
	}
	for _, p := range model.All() {
		for ei, env := range envs {
			in := paperInstance(t, p, env)
			leime, err := EvalStrategy(in, LEIME())
			if err != nil {
				t.Fatalf("LEIME on %s: %v", p.Name, err)
			}
			for _, s := range []Strategy{Edgent(), DDNN(), MinComp(), MinTran(), Mean()} {
				got, err := EvalStrategy(in, s)
				if err != nil {
					t.Fatalf("%s on %s: %v", s.Name, p.Name, err)
				}
				if got.Cost < leime.Cost-1e-12 {
					t.Errorf("%s beat LEIME on %s env %d: %v < %v", s.Name, p.Name, ei, got.Cost, leime.Cost)
				}
			}
		}
	}
}

func TestNeurosurgeonSharesLEIMEPartition(t *testing.T) {
	for _, p := range model.All() {
		in := paperInstance(t, p, cluster.TestbedEnv(cluster.RaspberryPi3B))
		l, err := EvalStrategy(in, LEIME())
		if err != nil {
			t.Fatalf("LEIME: %v", err)
		}
		n, err := EvalStrategy(in, Neurosurgeon())
		if err != nil {
			t.Fatalf("Neurosurgeon: %v", err)
		}
		if n.E1 != l.E1 || n.E2 != l.E2 {
			t.Errorf("%s: Neurosurgeon partition (%d,%d) != LEIME (%d,%d)", p.Name, n.E1, n.E2, l.E1, l.E2)
		}
		if n.Cost <= l.Cost {
			t.Errorf("%s: Neurosurgeon (no early exit) should cost more: %v <= %v", p.Name, n.Cost, l.Cost)
		}
	}
}

func TestEdgentPicksSmallestTensors(t *testing.T) {
	in := paperInstance(t, model.VGG16(), cluster.TestbedEnv(cluster.RaspberryPi3B))
	e1, e2, err := Edgent().Select(in)
	if err != nil {
		t.Fatalf("Edgent: %v", err)
	}
	// No other admissible position may have a tensor strictly smaller than
	// both chosen ones.
	m := in.Profile.NumExits()
	smallest := in.Profile.DataBytes(e1)
	if b := in.Profile.DataBytes(e2); b < smallest {
		smallest = b
	}
	better := 0
	for i := 1; i < m; i++ {
		if i != e1 && i != e2 && in.Profile.DataBytes(i) < smallest {
			better++
		}
	}
	if better > 0 {
		t.Errorf("Edgent missed %d strictly smaller tensor positions", better)
	}
}

func TestMeanDividesChain(t *testing.T) {
	for _, p := range model.All() {
		in := paperInstance(t, p, cluster.TestbedEnv(cluster.RaspberryPi3B))
		e1, e2, err := Mean().Select(in)
		if err != nil {
			t.Fatalf("Mean on %s: %v", p.Name, err)
		}
		m := p.NumExits()
		if e1 < m/4 || e1 > m/2 {
			t.Errorf("%s: mean First-exit %d not near m/3 of %d", p.Name, e1, m)
		}
		if e2 < m/2 || e2 > 3*m/4+1 {
			t.Errorf("%s: mean Second-exit %d not near 2m/3 of %d", p.Name, e2, m)
		}
	}
}

func TestEvalStrategyCostsPositive(t *testing.T) {
	for _, p := range model.All() {
		in := paperInstance(t, p, cluster.TestbedEnv(cluster.JetsonNano))
		for _, s := range append([]Strategy{LEIME()}, Baselines()...) {
			got, err := EvalStrategy(in, s)
			if err != nil {
				t.Fatalf("%s on %s: %v", s.Name, p.Name, err)
			}
			if got.Cost <= 0 {
				t.Errorf("%s on %s: non-positive cost %v", s.Name, p.Name, got.Cost)
			}
		}
	}
}
