package control

// TenantDemand describes one tenant's offered load for the degradation
// planner, in the same terms the KKT allocator already holds: arrival rate,
// per-block FLOPs of the deployed ME-DNN, and its calibrated cumulative
// exit rates.
type TenantDemand struct {
	// ID names the tenant (the device ID); plans are returned in input
	// order, the ID is for diagnostics.
	ID string
	// ArrivalRate is the tenant's offered load in tasks per model second.
	ArrivalRate float64
	// BlockFLOPs is the per-block compute of the deployed model
	// (device block, edge block, cloud block).
	BlockFLOPs [3]float64
	// Sigma is the cumulative exit-rate vector: Sigma[i] of tasks have
	// exited at or before exit i+1 (Sigma[2] == 1).
	Sigma [3]float64
}

// edgeCostFLOPs returns the expected edge FLOPs one task costs under an
// exit cap. The edge always runs block 1 (the h1 path); block 2 runs only
// for tasks that did not exit at exit 1 and are allowed past it. Capping
// exit 3 to exit 2 moves no work off the edge — block 3 is cloud compute —
// which is exactly why the blind 3->2 degradation never relieved edge
// overload.
func (t TenantDemand) edgeCostFLOPs(cap int) float64 {
	c := t.BlockFLOPs[0]
	if cap >= 2 {
		c += (1 - t.Sigma[0]) * t.BlockFLOPs[1]
	}
	return c
}

// ExpectedAccuracy returns the expected per-task accuracy for this tenant
// under an exit cap, given the per-exit conditional accuracy profile
// (accuracy[i] is the accuracy of exit i+1). Tasks that would have exited
// deeper than the cap are answered by the cap's classifier instead.
func (t TenantDemand) ExpectedAccuracy(cap int, accuracy [3]float64) float64 {
	switch {
	case cap <= 1:
		return accuracy[0]
	case cap == 2:
		return t.Sigma[0]*accuracy[0] + (1-t.Sigma[0])*accuracy[1]
	default:
		return t.Sigma[0]*accuracy[0] + (t.Sigma[1]-t.Sigma[0])*accuracy[1] + (1-t.Sigma[1])*accuracy[2]
	}
}

// DemandFLOPS returns the aggregate edge compute demand of the tenants
// under the given exit caps, in FLOPs per model second. caps shorter than
// tenants is padded with 3 (no cap).
func DemandFLOPS(tenants []TenantDemand, caps []int) float64 {
	var demand float64
	for i, t := range tenants {
		cap := 3
		if i < len(caps) {
			cap = caps[i]
		}
		demand += t.ArrivalRate * t.edgeCostFLOPs(cap)
	}
	return demand
}

// AggregateAccuracy returns the rate-weighted mean expected accuracy of the
// tenants under the given exit caps — the objective the degradation plan
// maximizes. Zero total rate returns 0.
func AggregateAccuracy(tenants []TenantDemand, caps []int, accuracy [3]float64) float64 {
	var num, den float64
	for i, t := range tenants {
		cap := 3
		if i < len(caps) {
			cap = caps[i]
		}
		num += t.ArrivalRate * t.ExpectedAccuracy(cap, accuracy)
		den += t.ArrivalRate
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Plan chooses per-tenant exit caps (1..3) maximizing aggregate accuracy
// subject to the edge capacity bound: sum over tenants of
// ArrivalRate x edge FLOPs per task must not exceed budgetFLOPS.
//
// The plan starts every tenant at its full depth, greedily demotes the
// tenant with the smallest accuracy loss per edge FLOPS freed until demand
// fits, then re-promotes demoted tenants — most accuracy per FLOPS spent
// first — into whatever slack the last (indivisible) demotion left. The
// demote pass is the integral version of the fractional-knapsack solution
// to the LP relaxation; the restore pass closes the integrality gap the
// final oversized demotion opens. Because capping 3->2 frees no edge
// compute, the only demand-relieving demotion is to exit 1 (skip block 2),
// so plans are {1,3}-valued: a tenant either keeps its depth or serves from
// the first exit. Deterministic: ties resolve to the lowest input index.
// If even the all-1 plan exceeds the budget the all-1 plan is returned and
// admission control sheds the remainder.
func Plan(tenants []TenantDemand, accuracy [3]float64, budgetFLOPS float64) []int {
	caps := make([]int, len(tenants))
	for i := range caps {
		caps[i] = 3
	}
	relief := func(i int) float64 {
		t := tenants[i]
		return t.ArrivalRate * (t.edgeCostFLOPs(3) - t.edgeCostFLOPs(1))
	}
	lossRatio := func(i int) float64 {
		t := tenants[i]
		saveFLOPS := relief(i)
		if saveFLOPS <= 0 {
			return 0
		}
		return t.ArrivalRate * (t.ExpectedAccuracy(3, accuracy) - t.ExpectedAccuracy(1, accuracy)) / saveFLOPS
	}
	demand := DemandFLOPS(tenants, caps)
	for demand > budgetFLOPS {
		best := -1
		var bestRatio float64
		for i := range tenants {
			if caps[i] <= 1 || relief(i) <= 0 {
				continue
			}
			if ratio := lossRatio(i); best < 0 || ratio < bestRatio {
				best, bestRatio = i, ratio
			}
		}
		if best < 0 {
			break // nothing left to demote; admission sheds the rest
		}
		demand -= relief(best)
		caps[best] = 1
	}
	// Restore pass: the last demotion may have freed far more than needed;
	// give the slack back to the demoted tenants whose accuracy buys the
	// most per FLOPS re-spent.
	for {
		best := -1
		var bestRatio float64
		for i := range tenants {
			if caps[i] != 1 || relief(i) <= 0 || demand+relief(i) > budgetFLOPS {
				continue
			}
			if ratio := lossRatio(i); best < 0 || ratio > bestRatio {
				best, bestRatio = i, ratio
			}
		}
		if best < 0 {
			return caps
		}
		demand += relief(best)
		caps[best] = 3
	}
}

// BlindPlan reproduces the pre-controller strawman this package replaces:
// when offered demand exceeds the budget, every tenant is uniformly capped
// to exit 2 regardless of its accuracy profile. Because 3->2 frees no edge
// compute the plan sacrifices deep-exit accuracy without relieving the
// overload — the dominated baseline the selftune experiment's frontier
// quantifies.
func BlindPlan(tenants []TenantDemand, budgetFLOPS float64) []int {
	caps := make([]int, len(tenants))
	full := 3
	if DemandFLOPS(tenants, nil) > budgetFLOPS {
		full = 2
	}
	for i := range caps {
		caps[i] = full
	}
	return caps
}
