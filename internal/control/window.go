package control

import (
	"sort"
	"sync"
)

// windowLatN is the sliding sample of completion latencies the p99 guard
// sorts over; 128 completions give a usable 99th percentile while keeping
// the periodic sort trivial.
const windowLatN = 128

// p99RecomputeEvery bounds how often the latency guard re-sorts its sample;
// between recomputes the cached percentile is used.
const p99RecomputeEvery = 16

// batchViability is the minimum expected arrivals per full window
// (rate x cap) below which batching is turned off entirely: holding a
// window that one job rides alone buys no amortization and costs the
// full delay in latency.
const batchViability = 2.0

// WindowConfig parameterizes one adaptive batch window controller.
type WindowConfig struct {
	// MaxSize is the batch size cap the window feeds (jobs per batch).
	MaxSize int
	// DelayCapSec is the upper bound on the window in model seconds — the
	// statically tuned optimum the adaptive controller may approach but
	// never exceed.
	DelayCapSec float64
	// TargetP99Sec is the latency objective: when the observed p99 of
	// completion latencies exceeds it the window is halved. Zero disables
	// the latency guard.
	TargetP99Sec float64
	// Gain is the smoothing applied per retarget in (0, 1]; non-positive
	// selects 0.2.
	Gain float64
	// RateGain is the EWMA weight for the arrival-rate estimate in (0, 1];
	// non-positive selects 0.1.
	RateGain float64
}

// withDefaults resolves zero gains to the documented defaults.
func (c WindowConfig) withDefaults() WindowConfig {
	if c.Gain <= 0 || c.Gain > 1 {
		c.Gain = 0.2
	}
	if c.RateGain <= 0 || c.RateGain > 1 {
		c.RateGain = 0.1
	}
	return c
}

// Window adapts a batch window to the observed arrival process. The law,
// applied on every arrival:
//
//	rate    <- EWMA of instantaneous arrival rate (1/gap)
//	target  = min(DelayCapSec, (MaxSize-1)/rate)   fill time of a full batch
//	target  = 0 when rate*DelayCapSec < 2          too sparse to ever batch
//	target  = min(target, delay/2) when p99 > TargetP99Sec
//	delay  += Gain * (target - delay)
//
// Under saturation the fill time shrinks below the cap and the window rides
// the cap — the statically tuned optimum — while sparse arrivals collapse
// the window to zero, so an unloaded executor serves singles with no added
// latency. All timestamps are caller-clock seconds; the controller is
// deterministic in its observation stream.
type Window struct {
	cfg WindowConfig

	mu          sync.Mutex
	seen        bool
	lastSec     float64
	arrivalRate float64
	lat         [windowLatN]float64
	latN        int // samples stored (saturates at windowLatN)
	latIdx      int // ring cursor
	latSince    int // observations since the cached p99 was computed
	p99Sec      float64
	delaySec    float64
}

// NewWindow returns a window controller starting closed (zero delay): an
// executor batches nothing until arrivals prove co-arrival is likely.
func NewWindow(cfg WindowConfig) *Window {
	return &Window{cfg: cfg.withDefaults()}
}

// ObserveArrival records one admission at the given caller-clock time and
// retargets the window.
func (w *Window) ObserveArrival(nowSec float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seen {
		gapSec := nowSec - w.lastSec
		if gapSec < 1e-9 {
			gapSec = 1e-9
		}
		inst := 1 / gapSec
		w.arrivalRate += w.cfg.RateGain * (inst - w.arrivalRate)
	}
	w.seen = true
	w.lastSec = nowSec
	w.retarget()
}

// ObserveLatency records one completed task's latency (wait plus service,
// caller-clock seconds) for the p99 guard.
func (w *Window) ObserveLatency(latencySec float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lat[w.latIdx] = latencySec
	w.latIdx = (w.latIdx + 1) % windowLatN
	if w.latN < windowLatN {
		w.latN++
	}
	w.latSince++
	if w.latSince >= p99RecomputeEvery {
		w.latSince = 0
		w.p99Sec = w.percentile99()
	}
}

// percentile99 sorts a copy of the sample and returns its 99th percentile.
// Called with w.mu held.
func (w *Window) percentile99() float64 {
	if w.latN == 0 {
		return 0
	}
	buf := make([]float64, w.latN)
	copy(buf, w.lat[:w.latN])
	sort.Float64s(buf)
	idx := (99*w.latN + 99) / 100 // ceil(0.99*n), 1-based
	if idx > w.latN {
		idx = w.latN
	}
	return buf[idx-1]
}

// retarget applies the control law. Called with w.mu held.
func (w *Window) retarget() {
	cfg := w.cfg
	if cfg.MaxSize <= 1 || cfg.DelayCapSec <= 0 {
		w.delaySec = 0
		return
	}
	var targetSec float64
	if w.arrivalRate > 0 {
		fillSec := float64(cfg.MaxSize-1) / w.arrivalRate
		if fillSec < cfg.DelayCapSec {
			targetSec = fillSec
		} else {
			targetSec = cfg.DelayCapSec
		}
		if w.arrivalRate*cfg.DelayCapSec < batchViability {
			targetSec = 0
		}
	}
	if cfg.TargetP99Sec > 0 && w.p99Sec > cfg.TargetP99Sec {
		if half := w.delaySec / 2; half < targetSec {
			targetSec = half
		}
	}
	w.delaySec += cfg.Gain * (targetSec - w.delaySec)
	if diff := w.delaySec - targetSec; diff < 1e-9 && diff > -1e-9 {
		w.delaySec = targetSec
	}
}

// DelaySec returns the current batch window in model seconds.
func (w *Window) DelaySec() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.delaySec
}

// RateEstimate returns the current EWMA arrival-rate estimate in tasks per
// caller-clock second.
func (w *Window) RateEstimate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.arrivalRate
}

// P99Sec returns the cached 99th-percentile completion latency the guard
// compares against the target.
func (w *Window) P99Sec() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.p99Sec
}
