package control

import (
	"math"
	"testing"
)

func TestPredictorLearnsBias(t *testing.T) {
	p := NewPredictor(0.5)
	if got := p.Predict(2); got != 2 {
		t.Fatalf("initial bias must be 1: Predict(2) = %v", got)
	}
	// Observed waits consistently 1.5x the prediction: bias converges up.
	for i := 0; i < 50; i++ {
		p.Observe(1.0, 1.5)
	}
	if b := p.Bias(); math.Abs(b-1.5) > 0.01 {
		t.Fatalf("bias = %v, want ~1.5", b)
	}
	// Near-zero predictions must not poison the bias.
	p.Observe(1e-9, 100)
	if b := p.Bias(); math.Abs(b-1.5) > 0.01 {
		t.Fatalf("bias moved on a near-zero prediction: %v", b)
	}
	// Outlier ratios are clamped, and the bias itself never exceeds 2.
	for i := 0; i < 200; i++ {
		p.Observe(1.0, 1000)
	}
	if b := p.Bias(); b > 2 {
		t.Fatalf("bias %v escaped the [0.5, 2] clamp", b)
	}
}

// TestWindowTracksFillTime pins the control law: under a dense arrival
// stream the window converges to min(cap, fill time), and the trajectory is
// bit-identical to an independent replay of the same law over the same
// observations (the pure half of the sim/runtime differential).
func TestWindowTracksFillTime(t *testing.T) {
	cfg := WindowConfig{MaxSize: 8, DelayCapSec: 0.05, Gain: 0.2, RateGain: 0.1}
	w := NewWindow(cfg)

	// Replay state mirroring the documented law.
	var rate, delay float64
	seen := false
	var last float64
	step := func(now float64) {
		if seen {
			gap := now - last
			if gap < 1e-9 {
				gap = 1e-9
			}
			rate += 0.1 * (1/gap - rate)
		}
		seen = true
		last = now
		target := 0.0
		if rate > 0 {
			target = (float64(cfg.MaxSize) - 1) / rate
			if target > cfg.DelayCapSec {
				target = cfg.DelayCapSec
			}
			if rate*cfg.DelayCapSec < batchViability {
				target = 0
			}
		}
		delay += 0.2 * (target - delay)
		if d := delay - target; d < 1e-9 && d > -1e-9 {
			delay = target
		}
	}

	// 500 arrivals at 1ms gaps: rate -> 1000/s, fill = 7/1000 = 7ms < cap.
	for i := 0; i < 500; i++ {
		now := float64(i) * 1e-3
		w.ObserveArrival(now)
		step(now)
		if got := w.DelaySec(); got != delay {
			t.Fatalf("arrival %d: window %v diverged from pure replay %v", i, got, delay)
		}
	}
	wantFillSec := 7.0 / 1000
	if got := w.DelaySec(); math.Abs(got-wantFillSec) > 0.1*wantFillSec {
		t.Fatalf("dense stream: window %v, want ~fill time %v", got, wantFillSec)
	}

	// 400 arrivals at 0.1ms gaps: rate -> 10000/s, fill 0.7ms; the window
	// tracks the new point downward.
	for i := 0; i < 400; i++ {
		now := 0.5 + float64(i)*1e-4
		w.ObserveArrival(now)
		step(now)
	}
	wantFillSec = 7.0 / 10000
	if got := w.DelaySec(); math.Abs(got-wantFillSec) > 0.15*wantFillSec {
		t.Fatalf("denser stream: window %v, want ~fill time %v", got, wantFillSec)
	}
}

func TestWindowSaturationRidesTheCap(t *testing.T) {
	// Pick a cap below the fill time so the cap binds: at ~1000 arrivals/s
	// the fill time is 7ms, above the 5ms cap, so the window must converge
	// to the cap itself — the statically tuned optimum.
	cfg := WindowConfig{MaxSize: 8, DelayCapSec: 0.005, Gain: 0.2, RateGain: 0.1}
	w := NewWindow(cfg)
	for i := 0; i < 600; i++ {
		w.ObserveArrival(float64(i) * 1e-3)
	}
	if got := w.DelaySec(); math.Abs(got-cfg.DelayCapSec) > 0.1*cfg.DelayCapSec {
		t.Fatalf("saturated stream: window %v, want ~cap %v", got, cfg.DelayCapSec)
	}
}

func TestWindowSparseArrivalsDisableBatching(t *testing.T) {
	w := NewWindow(WindowConfig{MaxSize: 8, DelayCapSec: 0.05})
	// 1 task/s: rate*cap = 0.05 << 2, the window must stay closed.
	for i := 0; i < 100; i++ {
		w.ObserveArrival(float64(i))
	}
	if got := w.DelaySec(); got != 0 {
		t.Fatalf("sparse stream: window %v, want 0", got)
	}
}

func TestWindowP99GuardShrinksTheWindow(t *testing.T) {
	cfg := WindowConfig{MaxSize: 8, DelayCapSec: 0.05, TargetP99Sec: 0.01, Gain: 0.2, RateGain: 0.1}
	w := NewWindow(cfg)
	for i := 0; i < 300; i++ {
		w.ObserveArrival(float64(i) * 1e-3)
	}
	open := w.DelaySec()
	if open <= 0 {
		t.Fatalf("window failed to open under load")
	}
	// Latency tail far above target: the guard must halve the window away.
	for i := 0; i < windowLatN+p99RecomputeEvery; i++ {
		w.ObserveLatency(0.5)
	}
	if got := w.P99Sec(); got < 0.4 {
		t.Fatalf("p99 cache %v did not absorb the tail", got)
	}
	for i := 0; i < 200; i++ {
		w.ObserveArrival(0.3 + float64(i)*1e-3)
	}
	if got := w.DelaySec(); got > open/4 {
		t.Fatalf("p99 guard left window at %v (was %v)", got, open)
	}
}

func degradeFixture() ([]TenantDemand, [3]float64) {
	tenants := []TenantDemand{
		// Confident early exits: demoting to exit 1 is cheap in accuracy.
		{ID: "a", ArrivalRate: 100, BlockFLOPs: [3]float64{2e8, 8e8, 1e9}, Sigma: [3]float64{0.8, 0.95, 1}},
		// Deep-exit dependent: demotion is expensive.
		{ID: "b", ArrivalRate: 100, BlockFLOPs: [3]float64{2e8, 8e8, 1e9}, Sigma: [3]float64{0.1, 0.5, 1}},
		// Light load, middling profile.
		{ID: "c", ArrivalRate: 20, BlockFLOPs: [3]float64{2e8, 8e8, 1e9}, Sigma: [3]float64{0.4, 0.8, 1}},
	}
	return tenants, [3]float64{0.80, 0.90, 0.94}
}

// bruteForcePlan exhaustively maximizes aggregate accuracy over all cap
// assignments that fit the budget (or the all-1 plan when nothing fits).
func bruteForcePlan(tenants []TenantDemand, accuracy [3]float64, budgetFLOPS float64) []int {
	n := len(tenants)
	best := make([]int, n)
	for i := range best {
		best[i] = 1
	}
	bestAcc := -1.0
	caps := make([]int, n)
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			if DemandFLOPS(tenants, caps) > budgetFLOPS {
				return
			}
			if acc := AggregateAccuracy(tenants, caps, accuracy); acc > bestAcc {
				bestAcc = acc
				copy(best, caps)
			}
			return
		}
		for c := 1; c <= 3; c++ {
			caps[i] = c
			walk(i + 1)
		}
	}
	walk(0)
	if bestAcc < 0 {
		return best // infeasible: all-1 fallback, matching Plan
	}
	return best
}

func TestPlanMatchesBruteForceOnSeparatedRatios(t *testing.T) {
	tenants, acc := degradeFixture()
	// Full demand: 100*(2e8+0.2*8e8) + 100*(2e8+0.9*8e8) + 20*(2e8+0.6*8e8)
	//            = 36e9 + 92e9 + 13.6e9 = 141.6e9 FLOPS.
	full := DemandFLOPS(tenants, nil)
	if math.Abs(full-141.6e9) > 1e6 {
		t.Fatalf("fixture demand = %v, want 141.6e9", full)
	}
	for _, budgetFLOPS := range []float64{150e9, 120e9, 80e9, 40e9, 10e9} {
		got := Plan(tenants, acc, budgetFLOPS)
		want := bruteForcePlan(tenants, acc, budgetFLOPS)
		gotAcc := AggregateAccuracy(tenants, got, acc)
		wantAcc := AggregateAccuracy(tenants, want, acc)
		if DemandFLOPS(tenants, got) > budgetFLOPS && DemandFLOPS(tenants, want) <= budgetFLOPS {
			t.Fatalf("budget %g: plan %v infeasible while %v fits", budgetFLOPS, got, want)
		}
		if math.Abs(gotAcc-wantAcc) > 1e-12 {
			t.Fatalf("budget %g: plan %v acc %.6f, brute force %v acc %.6f",
				budgetFLOPS, got, gotAcc, want, wantAcc)
		}
	}
}

func TestPlanDemotesCheapestAccuracyFirst(t *testing.T) {
	tenants, acc := degradeFixture()
	// Budget forces one demotion's worth of relief. Tenant a (confident
	// early exits, loss-per-FLOPS smallest) must go first; tenant b keeps
	// its depth.
	caps := Plan(tenants, acc, 130e9)
	if caps[0] != 1 || caps[1] != 3 {
		t.Fatalf("caps = %v: want tenant a demoted, tenant b kept", caps)
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	tenants, acc := degradeFixture()
	first := Plan(tenants, acc, 80e9)
	for i := 0; i < 10; i++ {
		if got := Plan(tenants, acc, 80e9); len(got) != len(first) {
			t.Fatalf("plan length changed")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run %d: plan %v != first %v", i, got, first)
				}
			}
		}
	}
}

func TestBlindPlanRelievesNothing(t *testing.T) {
	tenants, _ := degradeFixture()
	full := DemandFLOPS(tenants, nil)
	caps := BlindPlan(tenants, full/2)
	for i, c := range caps {
		if c != 2 {
			t.Fatalf("overloaded blind plan capped tenant %d to %d, want 2", i, c)
		}
	}
	// The strawman property: uniform 3->2 leaves edge demand unchanged.
	if got := DemandFLOPS(tenants, caps); got != full {
		t.Fatalf("blind plan changed edge demand %v -> %v; 3->2 frees no edge compute", full, got)
	}
	// Below budget it does nothing at all.
	for _, c := range BlindPlan(tenants, full*2) {
		if c != 3 {
			t.Fatalf("unloaded blind plan must keep full depth")
		}
	}
}

func TestAggregateAccuracyOrdering(t *testing.T) {
	tenants, acc := degradeFixture()
	full := AggregateAccuracy(tenants, []int{3, 3, 3}, acc)
	blind := AggregateAccuracy(tenants, []int{2, 2, 2}, acc)
	floor := AggregateAccuracy(tenants, []int{1, 1, 1}, acc)
	if !(full > blind && blind > floor) {
		t.Fatalf("accuracy ordering violated: full %v blind %v floor %v", full, blind, floor)
	}
}
