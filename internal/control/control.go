// Package control implements the self-tuning edge control plane: the
// closed-loop replacements for the three hand-set capacity knobs (static
// batch window, static backlog budget, blind exit degradation).
//
// The package is deliberately clock-free: every observation carries a
// caller-supplied timestamp in seconds on the caller's clock, so the same
// controllers run unchanged against the wall clock (internal/runtime) and
// the model clock (internal/sim), and the determinism analyzer can hold the
// package to the pure tier — identical observation streams produce
// bit-identical control trajectories.
//
// Three controllers:
//
//   - Predictor: turns a queue's backlog (seconds of accepted-but-unfinished
//     work at the current rate) into a calibrated wait estimate. The raw
//     backlog is an unbiased FIFO prediction only when service is perfectly
//     work-conserving; batch amortization, window holds and rate changes all
//     bias it, so the predictor learns a multiplicative correction from
//     observed (predicted, actual) wait pairs.
//   - Window: adapts the batch window from the observed arrival rate and the
//     observed latency tail, tracking the fill-time of a full batch and
//     backing off when p99 exceeds the latency objective.
//   - Plan: chooses which tenants degrade to shallower exits under overload,
//     maximizing rate-weighted aggregate accuracy subject to an edge FLOPS
//     budget (a fractional-knapsack relaxation of the degradation LP).
package control

import "sync"

// predictorMinSec is the smallest predicted wait that updates the bias:
// ratios against near-zero predictions are noise, not signal.
const predictorMinSec = 1e-4

// Predictor calibrates queueing-wait predictions. Predict scales the raw
// backlog by a learned bias; Observe feeds back one (predicted, observed)
// pair and moves the bias toward the observed ratio by an exponential
// moving average. The zero value is not ready; use NewPredictor.
type Predictor struct {
	mu   sync.Mutex
	gain float64
	bias float64
}

// NewPredictor returns a predictor with the given EWMA gain in (0, 1];
// non-positive gains select 0.1. The initial bias is 1 (trust the raw
// backlog until evidence arrives).
func NewPredictor(gain float64) *Predictor {
	if gain <= 0 {
		gain = 0.1
	}
	if gain > 1 {
		gain = 1
	}
	return &Predictor{gain: gain, bias: 1}
}

// Predict returns the calibrated wait estimate for a queue currently
// holding backlogSec seconds of work.
func (p *Predictor) Predict(backlogSec float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return backlogSec * p.bias
}

// Observe feeds back one completed wait: what Predict returned at admission
// and what the job actually waited. Pairs with a near-zero prediction are
// ignored (an empty queue predicts ~0 and the ratio is undefined); the
// per-observation ratio is clamped to [0.25, 4] and the running bias to
// [0.5, 2] so one outlier cannot destabilize admission.
func (p *Predictor) Observe(predictedSec, observedSec float64) {
	if predictedSec < predictorMinSec {
		return
	}
	ratio := observedSec / predictedSec
	if ratio < 0.25 {
		ratio = 0.25
	}
	if ratio > 4 {
		ratio = 4
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bias += p.gain * (ratio - p.bias)
	if p.bias < 0.5 {
		p.bias = 0.5
	}
	if p.bias > 2 {
		p.bias = 2
	}
}

// Bias returns the current multiplicative correction (1 = raw backlog is
// trusted as-is).
func (p *Predictor) Bias() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bias
}
