package sim

import (
	"testing"

	"leime/internal/telemetry"
)

// TestRunEventsEmitsTestbedSpanSchema runs the event simulator with a tracer
// and checks the emitted traces against the testbed's span schema: one
// "task" root per completed task, children whose parents resolve inside the
// same trace, time-nested spans on the model clock, and an "exit" marker
// matching the sampled exit stage.
func TestRunEventsEmitsTestbedSpanSchema(t *testing.T) {
	cfg := baseEventConfig(2, 4)
	cfg.Slots = 40
	cfg.WarmupSlots = 5
	cfg.Tracer = telemetry.NewTracer(1 << 16)
	res, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}

	spans := cfg.Tracer.Spans()
	if cfg.Tracer.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans; raise capacity", cfg.Tracer.Dropped())
	}
	type traceSpans struct {
		roots int
		exits []int
		all   []telemetry.Span
	}
	traces := make(map[uint64]*traceSpans)
	for _, s := range spans {
		ts := traces[s.Trace]
		if ts == nil {
			ts = &traceSpans{}
			traces[s.Trace] = ts
		}
		ts.all = append(ts.all, s)
		if s.Parent == 0 {
			ts.roots++
			if s.Name != "task" {
				t.Errorf("root span named %q, want \"task\"", s.Name)
			}
		}
		if s.Name == "exit" {
			ts.exits = append(ts.exits, s.Exit)
		}
		if s.End < s.Start {
			t.Errorf("span %q ends (%f) before it starts (%f)", s.Name, s.End, s.Start)
		}
	}
	if len(traces) != res.Completed {
		t.Errorf("got %d traces, want one per completed task (%d)", len(traces), res.Completed)
	}

	known := map[string]bool{
		"task": true, "device.decision": true, "exit": true,
		"device.queue": true, "device.block1": true,
		"rpc.first_block": true, "rpc.second_block": true, "rpc.cloud": true,
		"edge.queue": true, "edge.block1": true, "edge.block2": true,
		"cloud.queue": true, "cloud.block3": true,
	}
	var exitTally [3]int
	for id, ts := range traces {
		if ts.roots != 1 {
			t.Errorf("trace %d has %d roots, want 1", id, ts.roots)
		}
		if len(ts.exits) != 1 {
			t.Errorf("trace %d has %d exit markers, want 1", id, len(ts.exits))
			continue
		}
		exitTally[ts.exits[0]-1]++
		byID := make(map[uint64]telemetry.Span, len(ts.all))
		for _, s := range ts.all {
			byID[s.Span] = s
			if !known[s.Name] {
				t.Errorf("trace %d has span %q outside the schema", id, s.Name)
			}
		}
		for _, s := range ts.all {
			if s.Parent == 0 {
				continue
			}
			p, ok := byID[s.Parent]
			if !ok {
				t.Errorf("trace %d: span %q parent %d missing", id, s.Name, s.Parent)
				continue
			}
			// The model clock is exact: children nest strictly.
			if s.Start < p.Start || s.End > p.End {
				t.Errorf("trace %d: span %q [%f,%f] escapes parent %q [%f,%f]",
					id, s.Name, s.Start, s.End, p.Name, p.Start, p.End)
			}
		}
	}
	if exitTally != res.ExitCounts {
		t.Errorf("exit markers %v disagree with result exit counts %v", exitTally, res.ExitCounts)
	}
}

// TestRunEventsTracerDoesNotChangeResults pins that telemetry is observational:
// the same seed with and without a tracer yields identical statistics.
func TestRunEventsTracerDoesNotChangeResults(t *testing.T) {
	plain, err := RunEvents(baseEventConfig(2, 5))
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	traced := baseEventConfig(2, 5)
	traced.Tracer = telemetry.NewTracer(1 << 16)
	got, err := RunEvents(traced)
	if err != nil {
		t.Fatalf("RunEvents traced: %v", err)
	}
	if got.Generated != plain.Generated || got.Completed != plain.Completed ||
		got.ExitCounts != plain.ExitCounts || got.TCT.Mean() != plain.TCT.Mean() {
		t.Errorf("tracer changed results: %+v vs %+v", got, plain)
	}
}
