package sim

// Policy mirrors runtime.ControlPolicy for the event simulator's edge
// shares, so a simulated control plane and a testbed control plane can be
// configured from the same user-facing options. The zero value disables
// every behaviour: unbounded exact-FIFO stations, no batching — the
// pre-policy simulator, preserved as the pinned degenerate case.
//
// Two deliberate modeling differences from the testbed:
//
//   - No EDF field. Stations are busy-horizon models: service order IS
//     arrival order, there is no queue to re-sort. EDF is a testbed-only
//     discipline; differential comparisons run with EDF off.
//   - No learned wait predictor. The busy horizon is the exact wait, so
//     deadline admission quotes it directly — the calibrated fixed point a
//     testbed control.Predictor converges toward (bias 1).
type Policy struct {
	// MaxBacklogSec bounds each edge share's backlog: an edge submission
	// that would push the share's busy horizon beyond this many seconds is
	// refused, and the task re-runs on its device (counted in
	// EventResult.Fallbacks) — mirroring the runtime's
	// ErrOverloadCapacity degrade-to-local contract. Non-positive leaves
	// shares unbounded.
	MaxBacklogSec float64
	// DeadlineAdmission refuses an edge submission whose wait plus service
	// cannot fit the task's remaining deadline budget
	// (EventConfig.DeadlineSec); the task is shed immediately (counted in
	// EventResult.Sheds and DeadlineMisses) instead of completing late —
	// mirroring the runtime's ErrDeadlineInfeasible shed-now contract.
	// Without a configured DeadlineSec it admits everything.
	DeadlineAdmission bool
	// Batch configures the edge shares' batch window. With AdaptiveBatch
	// false it is applied statically, exactly the old behaviour; with
	// AdaptiveBatch true, MaxSize and MaxDelaySec become the adaptive
	// window's ceilings (zeros select the runtime defaults, 8 and 0.05s).
	Batch Batch
	// AdaptiveBatch drives each share's batch window from the observed
	// arrival rate and latency tail (control.Window) on the engine clock:
	// sparse traffic serves unbatched, saturation rides Batch.MaxDelaySec.
	AdaptiveBatch bool
	// TargetP99Sec is the adaptive window's latency objective in model
	// seconds; zero disables the p99 guard.
	TargetP99Sec float64
}

// Adaptive-batch ceilings mirroring runtime.DefaultAdaptiveBatchSize and
// runtime.DefaultAdaptiveDelayCapSec, so a simulated adaptive window and a
// testbed adaptive window resolve identical defaults.
const (
	defaultAdaptiveBatchSize   = 8
	defaultAdaptiveDelayCapSec = 0.05
)

// withDefaults resolves zero fields exactly as runtime.ControlPolicy does:
// adaptive batching fills its size and window ceilings, everything else
// stays as configured. Fully zero stays fully zero.
func (p Policy) withDefaults() Policy {
	if p.AdaptiveBatch {
		if p.Batch.MaxSize <= 1 {
			p.Batch.MaxSize = defaultAdaptiveBatchSize
		}
		if p.Batch.MaxDelaySec <= 0 {
			p.Batch.MaxDelaySec = defaultAdaptiveDelayCapSec
		}
	}
	return p
}
