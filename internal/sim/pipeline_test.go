package sim

import (
	"math"
	"testing"

	"leime/internal/model"
	"leime/internal/partition"
)

// pipeNet builds a resnet-34 MEDNN with the given exits and cumulative exit
// probabilities at them.
func pipeNet(t *testing.T, e1, e2 int, s1, s2 float64) *model.MEDNN {
	t.Helper()
	p := model.ResNet34()
	m := p.NumExits()
	sigma := make([]float64, m)
	for i := range sigma {
		switch {
		case i+1 >= m:
			sigma[i] = 1
		case i+1 >= e2:
			sigma[i] = s2
		case i+1 >= e1:
			sigma[i] = s1
		}
	}
	n, err := model.NewMEDNN(p, e1, e2, sigma)
	if err != nil {
		t.Fatalf("NewMEDNN: %v", err)
	}
	return n
}

func pipeChain() partition.Chain {
	return partition.Chain{
		Workers: []partition.Worker{{FLOPS: 1.5e9}, {FLOPS: 1.5e9}, {FLOPS: 2e9}},
		Hops: []partition.Hop{
			{BandwidthBps: 80e6, LatencySec: 0.004},
			{BandwidthBps: 200e6, LatencySec: 0.002},
			{BandwidthBps: 200e6, LatencySec: 0.002},
		},
	}
}

// TestPipelineSimPinsSolver is the solver<->simulator differential pin: one
// idle task per exit class must traverse the simulated chain in exactly the
// analytic per-class latency (same sums, same order, no queueing).
func TestPipelineSimPinsSolver(t *testing.T) {
	net := pipeNet(t, 5, 11, 0.4, 0.8)
	chain := pipeChain()
	plan, err := partition.Solve(partition.Config{Net: net, Chain: chain})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	res, err := RunPipeline(PipelineConfig{
		Net:   net,
		Chain: chain,
		Cuts:  plan.Cuts,
		Arrivals: []PipeArrival{
			{AtSec: 0, Class: 1},
			{AtSec: 1000, Class: 2},
			{AtSec: 2000, Class: 3},
		},
	})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	for c := 0; c < 3; c++ {
		got := res.ClassTCT[c].Mean()
		want := plan.ClassLatencySec[c]
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("class %d: sim latency %.12f, solver %.12f", c+1, got, want)
		}
	}
	if res.Degraded != 0 || res.Lost != 0 || res.Completed != 3 {
		t.Errorf("idle run: completed=%d degraded=%d lost=%d", res.Completed, res.Degraded, res.Lost)
	}
}

// TestPipelineSimConservesUnderLoad drives the chain below its sustainable
// rate: every task completes at its requested exit and mean latency sits at
// or above the idle analytic expectation (queueing only adds).
func TestPipelineSimConservesUnderLoad(t *testing.T) {
	net := pipeNet(t, 5, 11, 0.4, 0.8)
	chain := pipeChain()
	plan, err := partition.Solve(partition.Config{Net: net, Chain: chain})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	res, err := RunPipeline(PipelineConfig{
		Net:        net,
		Chain:      chain,
		Cuts:       plan.Cuts,
		Rate:       0.6 * plan.SustainableRate,
		HorizonSec: 400 / plan.SustainableRate,
		Seed:       7,
	})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	if res.Generated == 0 {
		t.Fatal("no tasks generated")
	}
	if res.Completed != res.Generated || res.Lost != 0 || res.Degraded != 0 {
		t.Errorf("conservation: generated=%d completed=%d lost=%d degraded=%d",
			res.Generated, res.Completed, res.Lost, res.Degraded)
	}
	if got := res.TCT.Mean(); got < plan.ExpectedLatencySec*(1-1e-9) {
		t.Errorf("mean TCT %.6f below idle expectation %.6f", got, plan.ExpectedLatencySec)
	}
}

// TestPipelineSimDeterministic re-runs the loaded scenario and demands
// bit-identical aggregates.
func TestPipelineSimDeterministic(t *testing.T) {
	net := pipeNet(t, 5, 11, 0.4, 0.8)
	chain := pipeChain()
	run := func() *PipelineResult {
		res, err := RunPipeline(PipelineConfig{
			Net:        net,
			Chain:      chain,
			Cuts:       []int{net.E1, net.E2, net.Profile.NumExits()},
			Rate:       2,
			HorizonSec: 30,
			Seed:       41,
		})
		if err != nil {
			t.Fatalf("RunPipeline: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Generated != b.Generated || a.Completed != b.Completed || a.ExitCounts != b.ExitCounts {
		t.Errorf("nondeterministic: %+v vs %+v", a.ExitCounts, b.ExitCounts)
	}
	if a.TCT.Mean() != b.TCT.Mean() {
		t.Errorf("nondeterministic mean TCT: %v vs %v", a.TCT.Mean(), b.TCT.Mean())
	}
}

// TestPipelineSimChaosKill fail-stops the middle stage mid-run: tasks that
// would cross into it from then on are answered from stage 0's exit head
// (degraded, never hung), work caught inside the dead stage is lost, and
// task conservation still balances.
func TestPipelineSimChaosKill(t *testing.T) {
	net := pipeNet(t, 5, 11, 0.4, 0.8)
	chain := pipeChain()
	m := net.Profile.NumExits()
	cuts := []int{net.E1, net.E2, m} // stage j hosts exit j+1
	idle, err := partition.Evaluate(partition.Config{Net: net, Chain: chain}, cuts)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	horizon := 60 * idle.BottleneckSec
	res, err := RunPipeline(PipelineConfig{
		Net:        net,
		Chain:      chain,
		Cuts:       cuts,
		Rate:       0.5 / idle.BottleneckSec,
		HorizonSec: horizon,
		Seed:       11,
		KillStage:  1,
		KillAtSec:  horizon / 2,
	})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	if res.Degraded == 0 {
		t.Error("killing stage 1 mid-run should degrade post-kill class>=2 tasks to exit 1")
	}
	if res.Completed+res.Lost != res.Generated {
		t.Errorf("conservation: generated=%d completed=%d lost=%d", res.Generated, res.Completed, res.Lost)
	}
	// Degraded tasks exited shallower than requested: exit-1 completions must
	// exceed the exit-1 request share's natural count, and no task may report
	// an exit beyond its dead stage's reach after the kill.
	if res.ExitCounts[0] == 0 {
		t.Error("no exit-1 completions at all")
	}
}
