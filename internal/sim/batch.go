package sim

import "leime/internal/control"

// Batch configures window batching on a Station, mirroring the testbed
// executor's BatchConfig (internal/runtime): up to MaxSize jobs of the same
// service-duration class coalesce into one amortized burn, each batch held
// open at most MaxDelaySec. The zero value disables batching, keeping the
// station an exact single-server FIFO queue.
//
// One modeling difference from the executor is the window anchor: the
// executor opens its window when the batch head reaches the server, while
// the station opens it at the head's arrival (the analytic model has no
// separate "server pulled the job" instant — service start is derived from
// the busy horizon). Under saturation both anchor at effectively the same
// point; when idle the station fires up to MaxDelaySec earlier.
type Batch struct {
	// MaxSize caps how many jobs share one burn. Values <= 1 disable
	// batching.
	MaxSize int
	// MaxDelaySec bounds how long the first job of a batch waits for
	// co-arriving work. Zero or negative disables batching.
	MaxDelaySec float64
	// Marginal is the cost of each batched job beyond the first as a
	// fraction of a lone job's duration. Zero means the executor default
	// (0.25); 1 restores serial cost.
	Marginal float64
}

// DefaultBatchMarginal matches runtime.DefaultBatchMarginal so a simulated
// batch window and a testbed batch window amortize identically.
const DefaultBatchMarginal = 0.25

// Enabled reports whether the configuration actually batches.
func (b Batch) Enabled() bool { return b.MaxSize > 1 && b.MaxDelaySec > 0 }

// marginal returns the effective per-extra-job cost fraction.
func (b Batch) marginal() float64 {
	if b.Marginal <= 0 {
		return DefaultBatchMarginal
	}
	return b.Marginal
}

// AmortizedSec returns the service seconds one burn of n jobs of per-job
// duration dur costs: dur * (1 + (n-1)*marginal).
func (b Batch) AmortizedSec(dur float64, n int) float64 {
	if n <= 1 {
		return dur
	}
	return dur * (1 + float64(n-1)*b.marginal())
}

// batchJob is one submission parked in an open batch window.
type batchJob struct {
	enq        float64
	extraDelay float64
	done       func(enqueued, started, finish float64)
}

// openBatch is a station's in-progress batch window. Pointer identity guards
// the deadline timer: a batch fired early (full, or capped by a class change)
// is replaced, so the stale timer finds s.open != itself and does nothing.
type openBatch struct {
	dur  float64 // service-duration class shared by every job in the batch
	jobs []batchJob
}

// SetBatch configures window batching on the station. Must be called before
// any submissions; a disabled configuration leaves behaviour unchanged.
func (s *Station) SetBatch(b Batch) { s.batch = b }

// SetWindow installs an adaptive batch window (control.Window) driven on the
// engine clock: every submission feeds the controller an arrival, every
// completion a latency, and each batch holds open for the controller's live
// delay instead of a static MaxDelaySec. maxSize caps jobs per burn — the
// ceiling the controller's target fill respects. Must be called before any
// submissions; the amortization cost model is Batch's (default marginal).
func (s *Station) SetWindow(w *control.Window, maxSize int) {
	s.window = w
	s.winMax = maxSize
}

// batchLimits returns the batch size cap and hold delay in force for the
// next window: the adaptive controller's live values when one is installed,
// the static configuration otherwise.
func (s *Station) batchLimits() (maxSize int, delaySec float64) {
	if s.window != nil {
		return s.winMax, s.window.DelaySec()
	}
	return s.batch.MaxSize, s.batch.MaxDelaySec
}

// submitBatched parks the job in the station's open batch window, firing the
// window when it fills, when a different duration class arrives (preserving
// FIFO: later same-class jobs cannot overtake the blocked head), or when the
// deadline timer expires.
func (s *Station) submitBatched(e *Engine, dur, extraDelay float64, done func(enqueued, started, finish float64)) {
	maxSize, delay := s.batchLimits()
	if maxSize <= 1 || delay <= 0 {
		// The adaptive window has shut (sparse arrivals): serve unbatched,
		// first firing any batch still open so FIFO order holds.
		s.fireBatch(e)
		s.submitPlain(e, dur, extraDelay, done)
		return
	}
	if s.open != nil && s.open.dur != dur {
		s.fireBatch(e)
	}
	if s.open == nil {
		b := &openBatch{dur: dur}
		s.open = b
		e.After(delay, func() {
			if s.open == b {
				s.fireBatch(e)
			}
		})
	}
	s.inFlight++
	s.open.jobs = append(s.open.jobs, batchJob{enq: e.Now(), extraDelay: extraDelay, done: done})
	if len(s.open.jobs) >= maxSize {
		s.fireBatch(e)
	}
}

// fireBatch closes the open window and schedules its single amortized burn:
// every job in the batch shares one service interval on the busy horizon and
// completes at the same finish time (plus per-job propagation delay).
func (s *Station) fireBatch(e *Engine) {
	b := s.open
	if b == nil {
		return
	}
	s.open = nil
	amort := s.batch.AmortizedSec(b.dur, len(b.jobs))
	start := e.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start + amort
	s.busyUntil = finish
	s.busyTotal += amort
	for _, j := range b.jobs {
		j := j
		e.At(finish+j.extraDelay, func() {
			s.inFlight--
			s.served++
			if s.window != nil {
				s.window.ObserveLatency(finish - j.enq)
			}
			if j.done != nil {
				j.done(j.enq, start, finish+j.extraDelay)
			}
		})
	}
}
