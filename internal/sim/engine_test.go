package sim

import (
	"math"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	if _, err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineTieBreaksInScheduleOrder(t *testing.T) {
	var e Engine
	var got []string
	e.At(1, func() { got = append(got, "a") })
	e.At(1, func() { got = append(got, "b") })
	e.At(1, func() { got = append(got, "c") })
	if _, err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("tie-break order wrong: %v", got)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.At(1, func() { fired++ })
	e.At(5, func() { fired++ })
	e.RunUntil(2)
	if fired != 1 {
		t.Errorf("fired = %d after RunUntil(2), want 1", fired)
	}
	if e.Now() != 2 {
		t.Errorf("Now() = %v, want 2", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
	if _, err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestEnginePastEventsClampToNow(t *testing.T) {
	var e Engine
	var at float64 = -1
	e.At(5, func() {
		e.At(1, func() { at = e.Now() }) // scheduled in the past
	})
	if _, err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5 {
		t.Errorf("past event ran at %v, want clamp to 5", at)
	}
}

func TestEngineEventBudget(t *testing.T) {
	var e Engine
	var loop func()
	loop = func() { e.After(1, loop) }
	e.At(0, loop)
	if _, err := e.Run(50); err == nil {
		t.Error("runaway loop not detected")
	}
}

func TestStationFIFOHandComputed(t *testing.T) {
	// Three jobs of 2s each submitted at t=0, 1, 5:
	// job1 runs 0..2, job2 queues and runs 2..4, job3 runs 5..7.
	var e Engine
	s := NewStation("cpu")
	var finishes []float64
	submit := func(at float64) {
		e.At(at, func() {
			s.Submit(&e, 2, 0, func(fin float64) { finishes = append(finishes, fin) })
		})
	}
	submit(0)
	submit(1)
	submit(5)
	if _, err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []float64{2, 4, 7}
	if len(finishes) != len(want) {
		t.Fatalf("finishes = %v, want %v", finishes, want)
	}
	for i := range want {
		if math.Abs(finishes[i]-want[i]) > 1e-12 {
			t.Errorf("finish[%d] = %v, want %v", i, finishes[i], want[i])
		}
	}
}

func TestStationExtraDelayDoesNotOccupyServer(t *testing.T) {
	// A link with 1s transmission + 10s propagation: the second transfer
	// starts right after the first transmission ends, not after propagation.
	var e Engine
	link := NewStation("link")
	var finishes []float64
	e.At(0, func() {
		link.Submit(&e, 1, 10, func(fin float64) { finishes = append(finishes, fin) })
		link.Submit(&e, 1, 10, func(fin float64) { finishes = append(finishes, fin) })
	})
	if _, err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(finishes[0]-11) > 1e-12 || math.Abs(finishes[1]-12) > 1e-12 {
		t.Errorf("finishes = %v, want [11 12]", finishes)
	}
}

func TestStationQueueLenAndBacklog(t *testing.T) {
	var e Engine
	s := NewStation("cpu")
	e.At(0, func() {
		s.Submit(&e, 3, 0, nil)
		s.Submit(&e, 3, 0, nil)
		if got := s.QueueLen(); got != 2 {
			t.Errorf("QueueLen = %d, want 2", got)
		}
		if got := s.Backlog(0); math.Abs(got-6) > 1e-12 {
			t.Errorf("Backlog(0) = %v, want 6", got)
		}
	})
	if _, err := e.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := s.QueueLen(); got != 0 {
		t.Errorf("QueueLen after drain = %d, want 0", got)
	}
	if got := s.Backlog(100); got != 0 {
		t.Errorf("Backlog after drain = %v, want 0", got)
	}
}

func TestStationNegativeDurationClamped(t *testing.T) {
	var e Engine
	s := NewStation("cpu")
	var fin float64 = -1
	e.At(2, func() {
		s.Submit(&e, -5, 0, func(f float64) { fin = f })
	})
	if _, err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fin != 2 {
		t.Errorf("negative-duration job finished at %v, want 2", fin)
	}
}
