package sim

import (
	"bytes"
	"testing"

	"leime/internal/telemetry"
)

// TestRunEventsSeedReplay pins the simulator's replay contract: two runs
// with equal configurations (including Seed) must produce byte-identical
// trace streams and equal results.
//
// Randomness audit backing this pin: every random draw in the event
// simulator flows through sources derived from cfg.Seed — per-device
// Poisson arrival processes are seeded with cfg.Seed+i*104729 and the
// shared exit/decision generator with rand.New(rand.NewSource(cfg.Seed ^
// 0x5eed)); nothing consults math/rand's package-global source or the wall
// clock (the determinism analyzer enforces both). What the analyzer cannot
// see — map iteration order leaking into event order — is what the
// byte-compare here would catch.
func TestRunEventsSeedReplay(t *testing.T) {
	run := func() (*EventResult, []byte) {
		cfg := baseEventConfig(3, 4)
		cfg.Slots = 60
		cfg.WarmupSlots = 5
		cfg.Tracer = telemetry.NewTracerWithBase(1<<16, uint64(cfg.Seed+1)<<40)
		res, err := RunEvents(cfg)
		if err != nil {
			t.Fatalf("RunEvents: %v", err)
		}
		var buf bytes.Buffer
		if err := cfg.Tracer.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		if cfg.Tracer.Dropped() != 0 {
			t.Fatalf("tracer dropped %d spans; raise capacity", cfg.Tracer.Dropped())
		}
		return res, buf.Bytes()
	}
	a, traceA := run()
	b, traceB := run()
	if a.Generated != b.Generated || a.Completed != b.Completed {
		t.Errorf("task counts differ across same-seed runs: %d/%d vs %d/%d",
			a.Generated, a.Completed, b.Generated, b.Completed)
	}
	if a.ExitCounts != b.ExitCounts {
		t.Errorf("exit counts differ across same-seed runs: %v vs %v", a.ExitCounts, b.ExitCounts)
	}
	if a.TCT.Mean() != b.TCT.Mean() {
		t.Errorf("mean TCT differs across same-seed runs: %v vs %v", a.TCT.Mean(), b.TCT.Mean())
	}
	if len(traceA) == 0 {
		t.Fatal("no trace output; the byte compare below would be vacuous")
	}
	if !bytes.Equal(traceA, traceB) {
		t.Errorf("trace streams differ across same-seed runs (%d vs %d bytes)", len(traceA), len(traceB))
	}
}
