package sim

import (
	"fmt"
	"math"
	"math/rand"

	"leime/internal/cluster"
	"leime/internal/metrics"
	"leime/internal/offload"
	"leime/internal/trace"
)

// FleetConfig configures a multi-edge discrete-event simulation: the
// single-edge event model generalized to a federation. Each device holds a
// tenancy (and a KKT share) at exactly one edge at a time, folds every
// edge's advertised backlog and capacity into its Lyapunov drift term each
// slot, and migrates when another edge's drift-plus-penalty objective beats
// its current one by more than the hysteresis margin — the simulation twin
// of the runtime's federation mode.
type FleetConfig struct {
	// Model is the deployed ME-DNN.
	Model offload.ModelParams
	// Devices are the end devices; device i starts homed at edge i mod E.
	Devices []DeviceSpec
	// EdgeFLOPS lists each edge's capability; its length is the fleet size.
	EdgeFLOPS []float64
	// CloudFLOPS is the shared cloud capability.
	CloudFLOPS float64
	// EdgeCloud is the edge–cloud path (shared by every edge).
	EdgeCloud cluster.Path
	// TauSec is the slot length for decision epochs.
	TauSec float64
	// V is the Lyapunov penalty weight.
	V float64
	// Slots is the generation horizon; the simulation drains afterwards.
	Slots int
	// WarmupSlots excludes early arrivals from statistics.
	WarmupSlots int
	// SwitchMargin is the migration hysteresis: a device leaves its edge
	// only when the best alternative improves the selection objective by
	// more than this fraction. Zero means the 0.05 default.
	SwitchMargin float64
	// KillAtSlot, when positive, removes edge KillEdge from every device's
	// candidate set from that slot on — the chaos experiment. Work already
	// queued there still drains (the model's kill is a fail-stop for new
	// traffic), so task conservation holds.
	KillAtSlot int
	// KillEdge is the index of the edge to kill when KillAtSlot is set.
	KillEdge int
	// Seed drives arrival sampling, exit sampling and offload coin flips.
	Seed int64
}

// FleetResult is the outcome of a multi-edge simulation.
type FleetResult struct {
	// TCT summarizes end-to-end completion times of post-warmup tasks.
	TCT metrics.Summary
	// Ratio is the per-slot mean offloading decision across devices.
	Ratio metrics.Series
	// ExitCounts tallies tasks by the exit they left through.
	ExitCounts [3]int
	// Generated and Completed count tasks; they must match after draining.
	Generated, Completed int
	// Migrations counts tenancy moves across the whole run.
	Migrations int
	// PerEdgeServed counts first-block executions per edge — the
	// load-spreading evidence of the selection rule.
	PerEdgeServed []int
}

// Validate reports whether the configuration is runnable.
func (c FleetConfig) Validate() error {
	if len(c.Devices) == 0 {
		return fmt.Errorf("sim: no devices configured")
	}
	if len(c.EdgeFLOPS) == 0 {
		return fmt.Errorf("sim: fleet needs at least one edge")
	}
	for e, f := range c.EdgeFLOPS {
		if f <= 0 {
			return fmt.Errorf("sim: edge %d FLOPS %v must be positive", e, f)
		}
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.CloudFLOPS <= 0 {
		return fmt.Errorf("sim: cloud FLOPS %v must be positive", c.CloudFLOPS)
	}
	if c.EdgeCloud.BandwidthBps <= 0 {
		return fmt.Errorf("sim: edge-cloud bandwidth %v must be positive", c.EdgeCloud.BandwidthBps)
	}
	if c.TauSec <= 0 || c.V <= 0 {
		return fmt.Errorf("sim: TauSec (%v) and V (%v) must be positive", c.TauSec, c.V)
	}
	if c.Slots <= 0 || c.WarmupSlots < 0 || c.WarmupSlots >= c.Slots {
		return fmt.Errorf("sim: bad horizon (slots=%d, warmup=%d)", c.Slots, c.WarmupSlots)
	}
	if c.KillAtSlot > 0 && (c.KillEdge < 0 || c.KillEdge >= len(c.EdgeFLOPS)) {
		return fmt.Errorf("sim: kill edge %d out of range [0,%d)", c.KillEdge, len(c.EdgeFLOPS))
	}
	return nil
}

// RunFleet executes the multi-edge discrete-event simulation.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n, edges := len(cfg.Devices), len(cfg.EdgeFLOPS)
	ctrl, err := offload.NewController(offload.Config{Model: cfg.Model, TauSec: cfg.TauSec, V: cfg.V})
	if err != nil {
		return nil, err
	}
	devices := make([]offload.Device, n)
	arrivals := make([]trace.Process, n)
	for i, d := range cfg.Devices {
		if err := d.Device.Validate(); err != nil {
			return nil, fmt.Errorf("device %d: %w", i, err)
		}
		devices[i] = d.Device
		arrivals[i] = d.Arrivals
		if arrivals[i] == nil {
			p, err := trace.NewPoisson(d.Device.ArrivalMean, cfg.Seed+int64(i)*104729)
			if err != nil {
				return nil, err
			}
			arrivals[i] = p
		}
	}

	s := &fleetState{
		cfg:     cfg,
		ctrl:    ctrl,
		devices: devices,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0xf1ee7)),
		res:     &FleetResult{PerEdgeServed: make([]int, edges)},
		home:    make([]int, n),
		shares:  make([]float64, n),
		devCPU:  make([]*Station, n),
		uplink:  make([]*Station, n),
		edgeCPU: make([][]*Station, edges),
		h1:      make([]int, n),
	}
	for i := range s.devCPU {
		s.devCPU[i] = NewStation(fmt.Sprintf("dev%d-cpu", i))
		s.uplink[i] = NewStation(fmt.Sprintf("dev%d-uplink", i))
		s.home[i] = i % edges
	}
	for e := range s.edgeCPU {
		s.edgeCPU[e] = make([]*Station, n)
		for i := 0; i < n; i++ {
			s.edgeCPU[e][i] = NewStation(fmt.Sprintf("edge%d-share%d", e, i))
		}
	}
	s.cloudLink = NewStation("edge-cloud-link")
	s.cloudCPU = NewStation("cloud-cpu")
	for e := 0; e < edges; e++ {
		if err := s.reallocate(e); err != nil {
			return nil, err
		}
	}

	margin := cfg.SwitchMargin
	if margin <= 0 {
		margin = 0.05
	}
	for t := 0; t < cfg.Slots; t++ {
		slotStart := float64(t) * cfg.TauSec
		s.eng.RunUntil(slotStart)
		killed := cfg.KillAtSlot > 0 && t >= cfg.KillAtSlot
		var ratioSum float64
		for i := range devices {
			s.devices[i] = cfg.Devices[i].linkAt(t)
			m := arrivals[i].Next()
			x := s.decide(i, t, float64(m), killed, margin)
			ratioSum += x
			for j := 0; j < m; j++ {
				s.generate(i, t, slotStart, x)
			}
		}
		s.res.Ratio.Append(ratioSum / float64(n))
	}
	budget := 100 * (s.res.Generated + 1) * 8
	if _, err := s.eng.Run(budget); err != nil {
		return nil, err
	}
	if s.res.Completed != s.res.Generated {
		return nil, fmt.Errorf("sim: conservation violated: generated %d, completed %d", s.res.Generated, s.res.Completed)
	}
	return s.res, nil
}

// fleetState is the mutable state of one multi-edge run.
type fleetState struct {
	cfg     FleetConfig
	ctrl    *offload.Controller
	devices []offload.Device
	rng     *rand.Rand
	eng     Engine
	res     *FleetResult

	home   []int     // device -> current edge
	shares []float64 // device -> share of its home edge (fraction)

	devCPU  []*Station
	uplink  []*Station
	edgeCPU [][]*Station // [edge][device] share station
	h1      []int        // per-device first-block tasks pending at its edge

	cloudLink *Station
	cloudCPU  *Station
}

// tenants returns edge e's resident device indices in index order.
func (s *fleetState) tenants(e int) []int {
	var out []int
	for i, h := range s.home {
		if h == e {
			out = append(out, i)
		}
	}
	return out
}

// reallocate re-solves edge e's KKT allocation over its residents — the
// simulation twin of the runtime edge's registration/unregistration path.
func (s *fleetState) reallocate(e int) error {
	ids := s.tenants(e)
	if len(ids) == 0 {
		return nil
	}
	devs := make([]offload.Device, len(ids))
	for k, i := range ids {
		devs[k] = s.devices[i]
	}
	shares, err := offload.Allocate(devs, s.cfg.EdgeFLOPS[e])
	if err != nil {
		return err
	}
	for k, i := range ids {
		s.shares[i] = shares[k]
	}
	return nil
}

// backlogSec estimates edge e's queued work in seconds: jobs waiting on its
// share stations, costed at a first-block burn against the full capability.
func (s *fleetState) backlogSec(e int) float64 {
	jobs := 0
	for i := 0; i < len(s.devices); i++ {
		jobs += s.edgeCPU[e][i].QueueLen()
	}
	return float64(jobs) * s.cfg.Model.Mu[0] / s.cfg.EdgeFLOPS[e]
}

// decide runs device i's decision epoch for slot t: fold every live edge
// into the drift term, migrate past the hysteresis margin, and return the
// offloading ratio against the chosen edge.
func (s *fleetState) decide(i, t int, m float64, killed bool, margin float64) float64 {
	cur := s.home[i]
	localQ := float64(s.devCPU[i].QueueLen())
	var cands []int
	var states []offload.EdgeState
	for e := range s.cfg.EdgeFLOPS {
		if killed && e == s.cfg.KillEdge {
			continue
		}
		st := offload.EdgeState{QueueSec: s.backlogSec(e)}
		if e == cur {
			st.ShareFLOPS = s.shares[i] * s.cfg.EdgeFLOPS[e]
			st.Backlog = float64(s.h1[i])
		} else {
			st.ShareFLOPS = s.cfg.EdgeFLOPS[e] / float64(len(s.tenants(e))+1)
		}
		cands = append(cands, e)
		states = append(states, st)
	}
	best, evals := s.ctrl.SelectEdge(s.devices[i], m, localQ, states)
	if best < 0 {
		return 0
	}
	curPos := -1
	for p, e := range cands {
		if e == cur {
			curPos = p
		}
	}
	if curPos >= 0 && cands[best] != cur {
		if evals[best].Objective >= evals[curPos].Objective-margin*math.Abs(evals[curPos].Objective) {
			best = curPos
		}
	}
	if target := cands[best]; target != cur {
		s.home[i] = target
		s.res.Migrations++
		// Both allocations shift: the origin redistributes the leaver's
		// share, the target squeezes everyone to fit the joiner.
		if err := s.reallocate(cur); err == nil {
			_ = s.reallocate(target)
		}
		states[best].ShareFLOPS = s.shares[i] * s.cfg.EdgeFLOPS[target]
	}
	slot := offload.Slot{
		Arrivals:       m,
		State:          offload.State{Q: localQ, H: states[best].Backlog},
		EdgeShareFLOPS: states[best].ShareFLOPS,
	}
	return policyFor(s.cfg.Devices[i]).Decide(s.ctrl, s.devices[i], slot)
}

// policyFor resolves a device's offloading policy (Lyapunov by default).
func policyFor(d DeviceSpec) offload.Policy {
	if d.Policy != nil {
		return *d.Policy
	}
	return offload.Lyapunov()
}

// sampleExit picks the exit a task will leave through from the sigma vector.
func (s *fleetState) sampleExit() int {
	r := s.rng.Float64()
	switch {
	case r < s.cfg.Model.Sigma[0]:
		return 1
	case r < s.cfg.Model.Sigma[1]:
		return 2
	default:
		return 3
	}
}

// generate creates one task on device i in slot t and routes it through the
// pipeline at the device's current edge. The edge binding is captured at
// launch: a later migration does not move queued work.
func (s *fleetState) generate(i, t int, at, x float64) {
	s.res.Generated++
	exit := s.sampleExit()
	offloaded := s.rng.Float64() < x
	e := s.home[i]
	s.eng.At(at, func() {
		if offloaded {
			s.launchEdge(i, t, e, at, exit)
		} else {
			s.launchLocal(i, t, e, at, exit)
		}
	})
}

// launchLocal runs the first block on the device CPU, continuing at edge e
// if the task survives the First exit.
func (s *fleetState) launchLocal(i, t, e int, born float64, exit int) {
	dur := s.cfg.Model.Mu[0] / s.devices[i].FLOPS
	s.devCPU[i].SubmitObserved(&s.eng, dur, 0, func(_, _, fin float64) {
		if exit == 1 {
			s.complete(t, born, fin, exit)
			return
		}
		s.transfer(i, s.cfg.Model.D[1], func() { s.secondBlock(i, t, e, born, exit) })
	})
}

// launchEdge ships the raw input to edge e and runs the first block there.
func (s *fleetState) launchEdge(i, t, e int, born float64, exit int) {
	s.h1[i]++
	s.transfer(i, s.cfg.Model.D[0], func() {
		s.res.PerEdgeServed[e]++
		dur := s.cfg.Model.Mu[0] / (s.shareAt(i, e) * s.cfg.EdgeFLOPS[e])
		s.edgeCPU[e][i].SubmitObserved(&s.eng, dur, 0, func(_, _, fin float64) {
			s.h1[i]--
			if exit == 1 {
				s.complete(t, born, fin, exit)
				return
			}
			s.secondBlock(i, t, e, born, exit)
		})
	})
}

// shareAt is device i's share at edge e: its solved share when resident, a
// one-more-tenant estimate when work lands on an edge it has already left.
func (s *fleetState) shareAt(i, e int) float64 {
	if s.home[i] == e && s.shares[i] > 0 {
		return s.shares[i]
	}
	return 1 / float64(len(s.tenants(e))+1)
}

// transfer serializes bytes on device i's uplink, then runs next after the
// propagation delay.
func (s *fleetState) transfer(i int, bytes float64, next func()) {
	dur := bytes * 8 / s.devices[i].BandwidthBps
	s.uplink[i].Submit(&s.eng, dur, s.devices[i].LatencySec, func(float64) { next() })
}

// secondBlock runs block 2 on edge e; tasks surviving the Second exit
// continue to the shared cloud.
func (s *fleetState) secondBlock(i, t, e int, born float64, exit int) {
	dur := s.cfg.Model.Mu[1] / (s.shareAt(i, e) * s.cfg.EdgeFLOPS[e])
	s.edgeCPU[e][i].SubmitObserved(&s.eng, dur, 0, func(_, _, fin float64) {
		if exit == 2 {
			s.complete(t, born, fin, exit)
			return
		}
		linkDur := s.cfg.Model.D[2] * 8 / s.cfg.EdgeCloud.BandwidthBps
		s.cloudLink.Submit(&s.eng, linkDur, s.cfg.EdgeCloud.LatencySec, func(float64) {
			cloudDur := s.cfg.Model.Mu[2] / s.cfg.CloudFLOPS
			s.cloudCPU.SubmitObserved(&s.eng, cloudDur, 0, func(_, _, fin float64) {
				s.complete(t, born, fin, exit)
			})
		})
	})
}

// complete records a finished task.
func (s *fleetState) complete(t int, born, at float64, exit int) {
	s.res.Completed++
	s.res.ExitCounts[exit-1]++
	if t >= s.cfg.WarmupSlots {
		s.res.TCT.Add(at - born)
	}
}
