package sim

import (
	"fmt"
	"math/rand"

	"leime/internal/cluster"
	"leime/internal/control"
	"leime/internal/metrics"
	"leime/internal/offload"
	"leime/internal/telemetry"
	"leime/internal/trace"
)

// EventConfig configures an EventSim run. The fields mirror SlotConfig; the
// event simulator executes every task end-to-end through explicit CPU and
// link stations instead of evaluating the slot-model cost expressions.
type EventConfig struct {
	// Model is the deployed ME-DNN.
	Model offload.ModelParams
	// Devices are the end devices.
	Devices []DeviceSpec
	// EdgeFLOPS and CloudFLOPS are the shared server capabilities.
	EdgeFLOPS  float64
	CloudFLOPS float64
	// EdgeCloud is the edge–cloud path.
	EdgeCloud cluster.Path
	// TauSec is the slot length for decision epochs.
	TauSec float64
	// V is the Lyapunov penalty weight.
	V float64
	// Slots is the generation horizon; the simulation drains afterwards.
	Slots int
	// WarmupSlots excludes early arrivals from statistics.
	WarmupSlots int
	// DeadlineSec, when positive, marks tasks completing later than this
	// many (model) seconds after generation as deadline misses. The paper
	// lists deadline requirements among the wild edge's application
	// characteristics (§II-A); this knob measures them.
	DeadlineSec float64
	// Seed drives arrival sampling, exit sampling and offload coin flips.
	Seed int64
	// EdgePolicy applies the edge control plane to every device's edge
	// share, mirroring runtime.ControlPolicy: a static or adaptive batch
	// window, a backlog budget whose rejections re-run tasks on their
	// device, and deadline admission that sheds infeasible work outright.
	// The zero value keeps the exact FIFO model.
	EdgePolicy Policy
	// Tracer, when non-nil, records one trace per task with the same span
	// taxonomy the testbed emits (task, device.decision, rpc.*, *.queue,
	// *.block*, exit). Sim spans are stamped in model seconds on the
	// engine clock rather than wall time.
	Tracer *telemetry.Tracer
}

// EventResult is the outcome of an EventSim run.
type EventResult struct {
	// TCT summarizes end-to-end completion times of post-warmup tasks.
	TCT metrics.Summary
	// SlotTCT is the mean TCT of tasks generated in each slot.
	SlotTCT metrics.Series
	// PerDeviceTCT summarizes completion times per device (post-warmup).
	PerDeviceTCT []metrics.Summary
	// Ratio is the per-slot mean offloading decision across devices.
	Ratio metrics.Series
	// ExitCounts tallies tasks by the exit they left through.
	ExitCounts [3]int
	// Generated and Completed count tasks; they must match after draining.
	Generated, Completed int
	// DeadlineMisses counts post-warmup tasks exceeding the configured
	// deadline (zero when no deadline is set); shed tasks are included.
	DeadlineMisses int
	// Fallbacks counts tasks the edge refused under the policy's backlog
	// budget that re-ran their remaining blocks on the device — the
	// simulated mirror of runtime.DeviceStats.Fallbacks.
	Fallbacks int
	// Sheds counts tasks deadline admission refused outright. They count
	// toward Completed (conservation) but not ExitCounts: the inference
	// never produced an answer.
	Sheds int
	// Utilization maps each station (per-device CPUs, uplinks, edge shares,
	// the edge-cloud link and the cloud CPU) to the fraction of the
	// generation horizon it spent serving.
	Utilization map[string]float64
}

// RunEvents executes the per-task discrete-event simulation.
func RunEvents(cfg EventConfig) (*EventResult, error) {
	n := len(cfg.Devices)
	if n == 0 {
		return nil, fmt.Errorf("sim: no devices configured")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.EdgeFLOPS <= 0 || cfg.CloudFLOPS <= 0 {
		return nil, fmt.Errorf("sim: edge (%v) and cloud (%v) FLOPS must be positive", cfg.EdgeFLOPS, cfg.CloudFLOPS)
	}
	if cfg.EdgeCloud.BandwidthBps <= 0 {
		return nil, fmt.Errorf("sim: edge-cloud bandwidth %v must be positive", cfg.EdgeCloud.BandwidthBps)
	}
	if cfg.TauSec <= 0 || cfg.V <= 0 {
		return nil, fmt.Errorf("sim: TauSec (%v) and V (%v) must be positive", cfg.TauSec, cfg.V)
	}
	if cfg.Slots <= 0 || cfg.WarmupSlots < 0 || cfg.WarmupSlots >= cfg.Slots {
		return nil, fmt.Errorf("sim: bad horizon (slots=%d, warmup=%d)", cfg.Slots, cfg.WarmupSlots)
	}

	ctrl, err := offload.NewController(offload.Config{Model: cfg.Model, TauSec: cfg.TauSec, V: cfg.V})
	if err != nil {
		return nil, err
	}
	devices := make([]offload.Device, n)
	for i, d := range cfg.Devices {
		if err := d.Device.Validate(); err != nil {
			return nil, fmt.Errorf("device %d: %w", i, err)
		}
		devices[i] = d.Device
	}
	shares, err := offload.Allocate(devices, cfg.EdgeFLOPS)
	if err != nil {
		return nil, err
	}
	arrivals := make([]trace.Process, n)
	policies := make([]offload.Policy, n)
	for i, d := range cfg.Devices {
		arrivals[i] = d.Arrivals
		if arrivals[i] == nil {
			p, err := trace.NewPoisson(d.Device.ArrivalMean, cfg.Seed+int64(i)*104729)
			if err != nil {
				return nil, err
			}
			arrivals[i] = p
		}
		if d.Policy != nil {
			policies[i] = *d.Policy
		} else {
			policies[i] = offload.Lyapunov()
		}
	}

	pol := cfg.EdgePolicy.withDefaults()
	s := &eventState{
		cfg:      cfg,
		policy:   pol,
		ctrl:     ctrl,
		devices:  devices,
		shares:   shares,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		res:      &EventResult{PerDeviceTCT: make([]metrics.Summary, n)},
		devCPU:   make([]*Station, n),
		uplink:   make([]*Station, n),
		edgeCPU:  make([]*Station, n),
		h1:       make([]int, n),
		slotTCT:  make([]float64, cfg.Slots),
		slotDone: make([]int, cfg.Slots),
		slotGen:  make([]int, cfg.Slots),
	}
	for i := range s.devCPU {
		s.devCPU[i] = NewStation(fmt.Sprintf("dev%d-cpu", i))
		s.uplink[i] = NewStation(fmt.Sprintf("dev%d-uplink", i))
		s.edgeCPU[i] = NewStation(fmt.Sprintf("edge-share%d", i))
		s.edgeCPU[i].SetBatch(pol.Batch)
		if pol.AdaptiveBatch {
			// One controller per share, exactly as the testbed runs one
			// control.Window per tenant executor — fed by the engine clock.
			s.edgeCPU[i].SetWindow(control.NewWindow(control.WindowConfig{
				MaxSize:      pol.Batch.MaxSize,
				DelayCapSec:  pol.Batch.MaxDelaySec,
				TargetP99Sec: pol.TargetP99Sec,
			}), pol.Batch.MaxSize)
		}
	}
	s.cloudLink = NewStation("edge-cloud-link")
	s.cloudCPU = NewStation("cloud-cpu")

	// Drive slot by slot: generate this slot's tasks, then advance the
	// engine to the slot boundary so queue observations at the next decision
	// epoch reflect completed work.
	for t := 0; t < cfg.Slots; t++ {
		slotStart := float64(t) * cfg.TauSec
		s.eng.RunUntil(slotStart)
		var ratioSum float64
		for i := range devices {
			s.devices[i] = cfg.Devices[i].linkAt(t)
			m := arrivals[i].Next()
			slot := offload.Slot{
				Arrivals:       float64(m),
				State:          offload.State{Q: float64(s.devCPU[i].QueueLen()), H: float64(s.h1[i])},
				EdgeShareFLOPS: shares[i] * cfg.EdgeFLOPS,
			}
			x := policies[i].Decide(ctrl, s.devices[i], slot)
			ratioSum += x
			for j := 0; j < m; j++ {
				s.generate(i, t, slotStart, x)
			}
		}
		s.res.Ratio.Append(ratioSum / float64(n))
	}
	// Drain: every generated task must complete.
	budget := 100 * (s.res.Generated + 1) * 8
	if _, err := s.eng.Run(budget); err != nil {
		return nil, err
	}
	for t := 0; t < cfg.Slots; t++ {
		if s.slotDone[t] > 0 {
			s.res.SlotTCT.Append(s.slotTCT[t] / float64(s.slotDone[t]))
		} else {
			s.res.SlotTCT.Append(0)
		}
	}
	horizon := float64(cfg.Slots) * cfg.TauSec
	s.res.Utilization = make(map[string]float64)
	for _, group := range [][]*Station{s.devCPU, s.uplink, s.edgeCPU, {s.cloudLink, s.cloudCPU}} {
		for _, st := range group {
			s.res.Utilization[st.Name()] = st.Utilization(horizon)
		}
	}
	if s.res.Completed != s.res.Generated {
		return nil, fmt.Errorf("sim: conservation violated: generated %d, completed %d", s.res.Generated, s.res.Completed)
	}
	return s.res, nil
}

// eventState is the mutable state of one EventSim run.
type eventState struct {
	cfg     EventConfig
	policy  Policy // cfg.EdgePolicy with defaults resolved
	ctrl    *offload.Controller
	devices []offload.Device
	shares  []float64
	rng     *rand.Rand
	eng     Engine
	res     *EventResult

	devCPU  []*Station // per-device local CPU
	uplink  []*Station // per-device uplink to the edge
	edgeCPU []*Station // per-device edge share (Docker-quota equivalent)
	h1      []int      // per-device first-block tasks pending at the edge

	cloudLink *Station
	cloudCPU  *Station

	slotTCT  []float64
	slotDone []int
	slotGen  []int
}

// sampleExit picks the exit a task will leave through from the sigma vector.
func (s *eventState) sampleExit() int {
	r := s.rng.Float64()
	switch {
	case r < s.cfg.Model.Sigma[0]:
		return 1
	case r < s.cfg.Model.Sigma[1]:
		return 2
	default:
		return 3
	}
}

// generate creates one task on device i in slot t and routes it through the
// pipeline. The offloading coin uses this slot's ratio x.
func (s *eventState) generate(i, t int, at float64, x float64) {
	s.res.Generated++
	s.slotGen[t]++
	exit := s.sampleExit()
	offloaded := s.rng.Float64() < x
	task := &simTask{dev: i, slot: t, born: at, exit: exit}
	if tr := s.cfg.Tracer; tr != nil {
		task.id = uint64(s.res.Generated)
		task.trace = tr.NewID()
		task.root = tr.NewID()
	}
	s.eng.At(at, func() {
		note := "local"
		if offloaded {
			note = "offload"
		}
		s.span(task, task.root, "device.decision", note, at, at)
		if offloaded {
			s.launchEdge(task)
		} else {
			s.launchLocal(task)
		}
	})
}

type simTask struct {
	dev  int
	slot int
	born float64
	exit int
	// fellBack marks a task the edge refused with backpressure that re-ran
	// blocks on its device.
	fellBack bool
	// id/trace/root are the task's span identity; zero when tracing is off.
	id    uint64
	trace uint64
	root  uint64
}

// admitVerdict is the outcome of the simulated edge admission check.
type admitVerdict int

const (
	// admitOK accepts the submission.
	admitOK admitVerdict = iota
	// admitCapacity rejects it under the backlog budget — the runtime's
	// ErrOverloadCapacity, a degrade-to-local signal.
	admitCapacity
	// admitDeadline rejects it as deadline-infeasible — the runtime's
	// ErrDeadlineInfeasible, a shed-now signal.
	admitDeadline
)

// admitEdge applies the edge policy to a submission of dur service seconds
// on the task's edge share at the current engine time. The wait quote is
// the share's busy horizon — exact in the busy-horizon model, so no learned
// bias correction is needed (the fixed point a testbed control.Predictor
// converges toward). Deadline admission checks the predicted completion
// against the task's remaining DeadlineSec budget; it runs before the
// capacity check, mirroring the runtime's order.
func (s *eventState) admitEdge(task *simTask, dur float64) admitVerdict {
	now := s.eng.Now()
	st := s.edgeCPU[task.dev]
	if s.policy.DeadlineAdmission && s.cfg.DeadlineSec > 0 &&
		now+st.Backlog(now)+dur > task.born+s.cfg.DeadlineSec {
		return admitDeadline
	}
	if s.policy.MaxBacklogSec > 0 && st.Backlog(now)+dur > s.policy.MaxBacklogSec {
		return admitCapacity
	}
	return admitOK
}

// span records one finished span on the trace clock (model seconds); no-op
// without a tracer.
func (s *eventState) span(task *simTask, parent uint64, name, note string, start, end float64) {
	tr := s.cfg.Tracer
	if tr == nil || task.trace == 0 {
		return
	}
	tr.Record(telemetry.Span{
		Trace: task.trace, Span: tr.NewID(), Parent: parent,
		Name: name, Device: fmt.Sprintf("dev%d", task.dev), Task: task.id,
		Note: note, Start: start, End: end,
	})
}

// openSpan is a span whose end is not yet known — an RPC hop whose subtree
// is still executing. Children parent to its pre-allocated ID; close records
// it once the subtree finishes.
type openSpan struct {
	id     uint64
	parent uint64
	name   string
	start  float64
}

// ID returns the span's pre-allocated identifier; zero on nil (tracing off).
func (o *openSpan) ID() uint64 {
	if o == nil {
		return 0
	}
	return o.id
}

func (s *eventState) open(task *simTask, parent uint64, name string) *openSpan {
	tr := s.cfg.Tracer
	if tr == nil || task.trace == 0 {
		return nil
	}
	return &openSpan{id: tr.NewID(), parent: parent, name: name, start: s.eng.Now()}
}

func (s *eventState) close(task *simTask, o *openSpan, end float64) {
	if o == nil {
		return
	}
	tr := s.cfg.Tracer
	tr.Record(telemetry.Span{
		Trace: task.trace, Span: o.id, Parent: o.parent,
		Name: o.name, Device: fmt.Sprintf("dev%d", task.dev), Task: task.id,
		Start: o.start, End: end,
	})
}

// launchLocal runs the first block on the device CPU.
func (s *eventState) launchLocal(task *simTask) {
	i := task.dev
	dur := s.cfg.Model.Mu[0] / s.devices[i].FLOPS
	s.devCPU[i].SubmitObserved(&s.eng, dur, 0, func(enq, start, fin float64) {
		s.span(task, task.root, "device.queue", "", enq, start)
		s.span(task, task.root, "device.block1", "", start, fin)
		if task.exit == 1 {
			s.complete(task, fin)
			return
		}
		// Ship the First-exit intermediate tensor to the edge.
		s.transferToEdge(task, s.cfg.Model.D[1], "rpc.second_block", s.secondBlock)
	})
}

// launchEdge ships the raw input to the edge and runs the first block there
// on the device's edge share. Admission runs where the runtime's does: at
// the edge, after the uplink transfer.
func (s *eventState) launchEdge(task *simTask) {
	i := task.dev
	s.h1[i]++
	s.transferToEdge(task, s.cfg.Model.D[0], "rpc.first_block", func(task *simTask, rpc *openSpan) {
		dur := s.cfg.Model.Mu[0] / (s.shares[i] * s.cfg.EdgeFLOPS)
		switch s.admitEdge(task, dur) {
		case admitCapacity:
			// Backpressure: re-run every block on the device, mirroring
			// the runtime device's degrade-to-local fallback.
			s.h1[i]--
			s.close(task, rpc, s.eng.Now())
			task.fellBack = true
			s.runLocalBlocks(task, 1)
			return
		case admitDeadline:
			s.h1[i]--
			s.close(task, rpc, s.eng.Now())
			s.shed(task)
			return
		}
		s.edgeCPU[i].SubmitObserved(&s.eng, dur, 0, func(enq, start, fin float64) {
			s.h1[i]--
			s.span(task, rpc.ID(), "edge.queue", "", enq, start)
			s.span(task, rpc.ID(), "edge.block1", "", start, fin)
			if task.exit == 1 {
				s.close(task, rpc, fin)
				s.complete(task, fin)
				return
			}
			s.secondBlock(task, rpc)
		})
	})
}

// transferToEdge serializes bytes on the device's uplink, then hands the
// task to next after the propagation delay. The named RPC span opens at
// submission and stays open across the remote subtree — next receives it and
// must close it at the subtree's finish time, mirroring how a testbed RPC
// span covers the full round trip.
func (s *eventState) transferToEdge(task *simTask, bytes float64, rpcName string, next func(*simTask, *openSpan)) {
	i := task.dev
	rpc := s.open(task, task.root, rpcName)
	dur := bytes * 8 / s.devices[i].BandwidthBps
	s.uplink[i].Submit(&s.eng, dur, s.devices[i].LatencySec, func(float64) {
		next(task, rpc)
	})
}

// secondBlock runs block 2 on the device's edge share; tasks surviving the
// Second exit continue to the cloud. rpc is the enclosing hop's open span.
// The continuation re-passes admission, exactly as every runtime executor
// submission does: a capacity refusal finishes the remaining blocks on the
// device, a deadline refusal sheds.
func (s *eventState) secondBlock(task *simTask, rpc *openSpan) {
	i := task.dev
	dur := s.cfg.Model.Mu[1] / (s.shares[i] * s.cfg.EdgeFLOPS)
	switch s.admitEdge(task, dur) {
	case admitCapacity:
		s.close(task, rpc, s.eng.Now())
		task.fellBack = true
		s.runLocalBlocks(task, 2)
		return
	case admitDeadline:
		s.close(task, rpc, s.eng.Now())
		s.shed(task)
		return
	}
	s.edgeCPU[i].SubmitObserved(&s.eng, dur, 0, func(enq, start, fin float64) {
		s.span(task, rpc.ID(), "edge.queue", "", enq, start)
		s.span(task, rpc.ID(), "edge.block2", "", start, fin)
		if task.exit == 2 {
			s.close(task, rpc, fin)
			s.complete(task, fin)
			return
		}
		cloudRPC := s.open(task, rpc.ID(), "rpc.cloud")
		linkDur := s.cfg.Model.D[2] * 8 / s.cfg.EdgeCloud.BandwidthBps
		s.cloudLink.Submit(&s.eng, linkDur, s.cfg.EdgeCloud.LatencySec, func(float64) {
			cloudDur := s.cfg.Model.Mu[2] / s.cfg.CloudFLOPS
			s.cloudCPU.SubmitObserved(&s.eng, cloudDur, 0, func(enq, start, fin float64) {
				s.span(task, cloudRPC.ID(), "cloud.queue", "", enq, start)
				s.span(task, cloudRPC.ID(), "cloud.block3", "", start, fin)
				s.close(task, cloudRPC, fin)
				s.close(task, rpc, fin)
				s.complete(task, fin)
			})
		})
	})
}

// runLocalBlocks burns blocks first..task.exit on the device CPU — the
// degrade-to-local path after an edge capacity refusal, mirroring the
// runtime device's runLocalBlocks.
func (s *eventState) runLocalBlocks(task *simTask, first int) {
	i := task.dev
	var step func(b int)
	step = func(b int) {
		dur := s.cfg.Model.Mu[b-1] / s.devices[i].FLOPS
		s.devCPU[i].SubmitObserved(&s.eng, dur, 0, func(enq, start, fin float64) {
			s.span(task, task.root, "device.queue", "", enq, start)
			s.span(task, task.root, fmt.Sprintf("device.block%d", b), "", start, fin)
			if b >= task.exit {
				s.complete(task, fin)
				return
			}
			step(b + 1)
		})
	}
	step(first)
}

// shed records a task deadline admission refused outright: it counts toward
// Completed (conservation) and DeadlineMisses, but produced no exit.
func (s *eventState) shed(task *simTask) {
	at := s.eng.Now()
	if tr := s.cfg.Tracer; tr != nil && task.trace != 0 {
		tr.Record(telemetry.Span{
			Trace: task.trace, Span: task.root,
			Name: "task", Device: fmt.Sprintf("dev%d", task.dev), Task: task.id,
			Note: "shed", Start: task.born, End: at,
		})
	}
	s.res.Completed++
	s.res.Sheds++
	if task.slot >= s.cfg.WarmupSlots {
		s.res.DeadlineMisses++
	}
}

// complete records a finished task.
func (s *eventState) complete(task *simTask, at float64) {
	if tr := s.cfg.Tracer; tr != nil && task.trace != 0 {
		dev := fmt.Sprintf("dev%d", task.dev)
		tr.Record(telemetry.Span{
			Trace: task.trace, Span: tr.NewID(), Parent: task.root,
			Name: "exit", Device: dev, Task: task.id, Exit: task.exit,
			Start: at, End: at,
		})
		tr.Record(telemetry.Span{
			Trace: task.trace, Span: task.root,
			Name: "task", Device: dev, Task: task.id, Exit: task.exit,
			Start: task.born, End: at,
		})
	}
	s.res.Completed++
	s.res.ExitCounts[task.exit-1]++
	if task.fellBack {
		s.res.Fallbacks++
	}
	tct := at - task.born
	s.slotTCT[task.slot] += tct
	s.slotDone[task.slot]++
	if task.slot >= s.cfg.WarmupSlots {
		s.res.TCT.Add(tct)
		s.res.PerDeviceTCT[task.dev].Add(tct)
		if s.cfg.DeadlineSec > 0 && tct > s.cfg.DeadlineSec {
			s.res.DeadlineMisses++
		}
	}
}
