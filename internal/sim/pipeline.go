package sim

import (
	"fmt"
	"math/rand"

	"leime/internal/metrics"
	"leime/internal/model"
	"leime/internal/partition"
)

// Pipelined-inference twin: the discrete-event model of a partitioned
// chain. Stage compute is a single-server FIFO station per worker; hops
// are link stations whose service is the activation's serialization time
// with propagation as trailing delay. With an idle chain this reproduces
// the analytic per-class latency of internal/partition exactly — the
// differential pin between solver and simulator — and under load it
// exposes the queueing the solver only approximates with its M/M/1 term.

// PipeArrival is one explicitly scheduled task.
type PipeArrival struct {
	// AtSec is the arrival time on the simulation clock.
	AtSec float64
	// Class is the task's predetermined exit class (1..3).
	Class int
}

// PipelineConfig configures a pipelined-chain simulation.
type PipelineConfig struct {
	// Net is the profiled multi-exit network.
	Net *model.MEDNN
	// Chain is the worker chain (as handed to the partition solver).
	Chain partition.Chain
	// Cuts is the chain cut to simulate — normally Plan.Cuts from a
	// partition solve; it is re-evaluated here so the stage metadata is
	// consistent by construction.
	Cuts []int
	// Arrivals, when non-empty, schedules tasks verbatim (the differential
	// pin uses one idle task per class). When empty, tasks are generated
	// by a Poisson process of the given Rate over HorizonSec.
	Arrivals []PipeArrival
	// Rate is the generated arrival rate (tasks per second).
	Rate float64
	// HorizonSec is the generation horizon; the chain drains afterwards.
	HorizonSec float64
	// Seed drives arrival and exit-class sampling.
	Seed int64
	// KillStage, when positive, fail-stops that stage (index >= 1; killing
	// the entry stage is the device's problem, not the chain's) at
	// KillAtSec: tasks needing to cross into it from then on are answered
	// from the upstream stage's deepest hosted exit, and work already
	// queued there drains but its results are lost.
	KillStage int
	// KillAtSec is when the kill happens.
	KillAtSec float64
}

// Validate reports whether the configuration is runnable.
func (c PipelineConfig) Validate() error {
	if c.Net == nil {
		return fmt.Errorf("sim: pipeline needs a profiled network")
	}
	if len(c.Arrivals) == 0 {
		if c.Rate <= 0 || c.HorizonSec <= 0 {
			return fmt.Errorf("sim: pipeline needs explicit arrivals or a positive Rate (%v) and HorizonSec (%v)", c.Rate, c.HorizonSec)
		}
	}
	for i, a := range c.Arrivals {
		if a.AtSec < 0 || a.Class < 1 || a.Class > 3 {
			return fmt.Errorf("sim: arrival %d (t=%v class=%d) is malformed", i, a.AtSec, a.Class)
		}
	}
	if c.KillStage < 0 || (c.KillStage > 0 && c.KillAtSec < 0) {
		return fmt.Errorf("sim: bad kill (stage=%d at=%v)", c.KillStage, c.KillAtSec)
	}
	return nil
}

// PipelineResult is the outcome of a pipelined-chain simulation.
type PipelineResult struct {
	// Plan is the evaluated cut the simulation executed.
	Plan *partition.Plan
	// TCT summarizes end-to-end completion times over every finished task.
	TCT metrics.Summary
	// ClassTCT summarizes completion times by requested exit class.
	ClassTCT [3]metrics.Summary
	// ExitCounts tallies tasks by the exit they actually left through.
	ExitCounts [3]int
	// Degraded counts tasks answered from a shallower exit because their
	// next stage was dead.
	Degraded int
	// Lost counts tasks that were queued at or beyond the killed stage when
	// it died — accepted work whose result never came back.
	Lost int
	// Generated and Completed count tasks; Completed + Lost == Generated
	// after draining.
	Generated, Completed int
	// StageUtilization is each stage CPU's busy fraction of the horizon.
	StageUtilization []float64
}

// RunPipeline executes the pipelined-chain simulation.
func RunPipeline(cfg PipelineConfig) (*PipelineResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := partition.Evaluate(partition.Config{Net: cfg.Net, Chain: cfg.Chain}, cfg.Cuts)
	if err != nil {
		return nil, err
	}
	if cfg.KillStage >= len(plan.Stages) {
		return nil, fmt.Errorf("sim: kill stage %d out of range [1,%d)", cfg.KillStage, len(plan.Stages))
	}

	eng := &Engine{}
	cpus := make([]*Station, len(plan.Stages))
	links := make([]*Station, len(plan.Stages))
	for j := range plan.Stages {
		cpus[j] = NewStation(fmt.Sprintf("stage%d.cpu", j))
		links[j] = NewStation(fmt.Sprintf("stage%d.link", j))
	}
	dead := make([]bool, len(plan.Stages))
	if cfg.KillStage > 0 {
		eng.At(cfg.KillAtSec, func() { dead[cfg.KillStage] = true })
	}

	res := &PipelineResult{Plan: plan}
	finish := func(born float64, class, exit int) {
		t := eng.Now() - born
		res.Completed++
		res.ExitCounts[exit-1]++
		res.TCT.Add(t)
		res.ClassTCT[class-1].Add(t)
		if exit < class {
			res.Degraded++
		}
	}

	// enterStage runs one task's share of stage j and routes the survivor:
	// answer at a hosted exit, degrade when the next stage is dead, or
	// serialize the next activation onto the hop. The mutual recursion with
	// the link submission mirrors the runtime's relay chain.
	var enterStage func(j int, born float64, class int)
	forward := func(j int, born float64, class int) {
		st := plan.Stages[j]
		if st.Hosted[class-1] {
			finish(born, class, class)
			return
		}
		if dead[j+1] {
			if st.Deepest > 0 {
				finish(born, class, st.Deepest)
			} else {
				res.Lost++
			}
			return
		}
		next := plan.Stages[j+1]
		hop := cfg.Chain.Hops[j+1]
		links[j+1].Submit(eng, serializeSec(hop, next.InBytes), hop.LatencySec, func(float64) {
			enterStage(j+1, born, class)
		})
	}
	enterStage = func(j int, born float64, class int) {
		if dead[j] {
			// The stage died while the activation was in flight (or queued
			// behind it): the work is gone.
			res.Lost++
			return
		}
		st := plan.Stages[j]
		cpus[j].Submit(eng, st.FLOPs[class-1]/cfg.Chain.Workers[st.Worker].FLOPS, 0, func(float64) {
			forward(j, born, class)
		})
	}

	admit := func(at float64, class int) {
		res.Generated++
		hop := cfg.Chain.Hops[0]
		eng.At(at, func() {
			links[0].Submit(eng, serializeSec(hop, cfg.Net.Profile.DataBytes(0)), hop.LatencySec, func(float64) {
				enterStage(0, at, class)
			})
		})
	}

	if len(cfg.Arrivals) > 0 {
		for _, a := range cfg.Arrivals {
			admit(a.AtSec, a.Class)
		}
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed))
		for at := rng.ExpFloat64() / cfg.Rate; at < cfg.HorizonSec; at += rng.ExpFloat64() / cfg.Rate {
			admit(at, sampleClass(rng, cfg.Net.Sigma))
		}
	}

	// Every task schedules a bounded number of events (one per hop and
	// stage); the budget only guards against regressions in the model.
	maxEvents := 16 * (res.Generated + 2) * (len(plan.Stages) + 1)
	if _, err := eng.Run(maxEvents); err != nil {
		return nil, err
	}
	horizon := eng.Now()
	res.StageUtilization = make([]float64, len(cpus))
	for j, s := range cpus {
		res.StageUtilization[j] = s.Utilization(horizon)
	}
	if res.Completed+res.Lost != res.Generated {
		return nil, fmt.Errorf("sim: task conservation violated: %d generated, %d completed, %d lost",
			res.Generated, res.Completed, res.Lost)
	}
	return res, nil
}

// serializeSec is the link-occupying part of a hop crossing; propagation
// rides as trailing delay so back-to-back activations pipeline on the wire
// exactly as partition.Hop.DelaySec prices a lone one.
func serializeSec(h partition.Hop, bytes float64) float64 {
	if h.BandwidthBps <= 0 || bytes <= 0 {
		return 0
	}
	return bytes * 8 / h.BandwidthBps
}

// sampleClass draws an exit class from the cumulative exit profile.
func sampleClass(rng *rand.Rand, sigma [3]float64) int {
	r := rng.Float64()
	switch {
	case r < sigma[0]:
		return 1
	case r < sigma[1]:
		return 2
	default:
		return 3
	}
}
