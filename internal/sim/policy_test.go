package sim

import (
	"testing"

	"leime/internal/control"
)

// policySimConfig is the congested batchSimConfig with a configurable edge
// policy and deadline.
func policySimConfig(pol Policy, deadlineSec float64) EventConfig {
	cfg := batchSimConfig(Batch{})
	cfg.EdgePolicy = pol
	cfg.DeadlineSec = deadlineSec
	return cfg
}

// TestEventSimAdaptiveWindowUnderCongestion runs the congested scenario
// with the adaptive window: it must behave like a tuned static window —
// beating unbatched service — and stay deterministic under a fixed seed.
func TestEventSimAdaptiveWindowUnderCongestion(t *testing.T) {
	base, err := RunEvents(policySimConfig(Policy{}, 0))
	if err != nil {
		t.Fatalf("unbatched RunEvents: %v", err)
	}
	adaptive, err := RunEvents(policySimConfig(Policy{AdaptiveBatch: true}, 0))
	if err != nil {
		t.Fatalf("adaptive RunEvents: %v", err)
	}
	again, err := RunEvents(policySimConfig(Policy{AdaptiveBatch: true}, 0))
	if err != nil {
		t.Fatalf("adaptive rerun: %v", err)
	}
	if adaptive.Completed != adaptive.Generated || adaptive.Generated != base.Generated {
		t.Fatalf("conservation: generated %d/%d, completed %d",
			adaptive.Generated, base.Generated, adaptive.Completed)
	}
	if adaptive.TCT.Mean() != again.TCT.Mean() || adaptive.ExitCounts != again.ExitCounts {
		t.Error("adaptive run not deterministic under a fixed seed")
	}
	if adaptive.TCT.Mean() >= base.TCT.Mean() {
		t.Errorf("adaptive window did not help under congestion: mean TCT %v (adaptive) vs %v (unbatched)",
			adaptive.TCT.Mean(), base.TCT.Mean())
	}
	t.Logf("mean TCT: unbatched %.3fs, adaptive %.3fs", base.TCT.Mean(), adaptive.TCT.Mean())
}

// TestEventSimCapacityBudgetFallsBack bounds the edge shares with a tight
// backlog budget: refusals must re-run tasks on their devices (Fallbacks),
// never drop them, and every task still exits through its sampled exit.
func TestEventSimCapacityBudgetFallsBack(t *testing.T) {
	res, err := RunEvents(policySimConfig(Policy{MaxBacklogSec: 0.1}, 0))
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	if res.Completed != res.Generated {
		t.Fatalf("conservation: generated %d, completed %d", res.Generated, res.Completed)
	}
	if res.Fallbacks == 0 {
		t.Error("backlog budget never tripped; test configuration too lenient")
	}
	if res.Sheds != 0 {
		t.Errorf("capacity refusals shed %d tasks; they must degrade to local instead", res.Sheds)
	}
	if sum := res.ExitCounts[0] + res.ExitCounts[1] + res.ExitCounts[2]; sum != res.Completed {
		t.Errorf("exit counts %v sum to %d, want %d: fallbacks must still exit", res.ExitCounts, sum, res.Completed)
	}
}

// TestEventSimDeadlineAdmissionSheds gives tasks a deadline the congested
// edge cannot meet: deadline admission must shed doomed work before it
// burns edge compute, so the edge serves strictly less than without
// admission while conservation still holds.
func TestEventSimDeadlineAdmissionSheds(t *testing.T) {
	const deadline = 1.5
	without, err := RunEvents(policySimConfig(Policy{}, deadline))
	if err != nil {
		t.Fatalf("RunEvents without admission: %v", err)
	}
	with, err := RunEvents(policySimConfig(Policy{DeadlineAdmission: true}, deadline))
	if err != nil {
		t.Fatalf("RunEvents with admission: %v", err)
	}
	if with.Completed != with.Generated {
		t.Fatalf("conservation: generated %d, completed %d", with.Generated, with.Completed)
	}
	if with.Sheds == 0 {
		t.Fatal("deadline admission never shed; test configuration too lenient")
	}
	if sum := with.ExitCounts[0] + with.ExitCounts[1] + with.ExitCounts[2]; sum != with.Completed-with.Sheds {
		t.Errorf("exit counts %v sum to %d, want Completed-Sheds = %d",
			with.ExitCounts, sum, with.Completed-with.Sheds)
	}
	edgeBusy := func(r *EventResult) float64 {
		var u float64
		for name, v := range r.Utilization {
			if len(name) > 4 && name[:4] == "edge" {
				u += v
			}
		}
		return u
	}
	if got, want := edgeBusy(with), edgeBusy(without); got >= want {
		t.Errorf("admission saved no edge compute: utilization %.3f with vs %.3f without", got, want)
	}
	t.Logf("sheds %d/%d, edge utilization %.3f (with) vs %.3f (without), misses %d vs %d",
		with.Sheds, with.Generated, edgeBusy(with), edgeBusy(without),
		with.DeadlineMisses, without.DeadlineMisses)
}

// TestEventSimPolicyDeterministic reruns the full self-tuning policy —
// adaptive window, backlog budget, deadline admission — and requires
// bit-identical results: the controllers run on the engine clock, so no
// wall-time can leak in.
func TestEventSimPolicyDeterministic(t *testing.T) {
	pol := Policy{
		MaxBacklogSec:     0.5,
		DeadlineAdmission: true,
		AdaptiveBatch:     true,
		TargetP99Sec:      1,
	}
	a, err := RunEvents(policySimConfig(pol, 2))
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunEvents(policySimConfig(pol, 2))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.TCT.Mean() != b.TCT.Mean() || a.ExitCounts != b.ExitCounts ||
		a.Sheds != b.Sheds || a.Fallbacks != b.Fallbacks || a.DeadlineMisses != b.DeadlineMisses {
		t.Errorf("same-seed policy runs diverge: TCT %v/%v sheds %d/%d fallbacks %d/%d",
			a.TCT.Mean(), b.TCT.Mean(), a.Sheds, b.Sheds, a.Fallbacks, b.Fallbacks)
	}
}

// TestStationWindowReplayMatchesPureController is the differential pin
// between the simulator's adaptive station and the pure controller: every
// observation the station feeds its window is re-fed, in the same order, to
// a second window configured identically. Both must land on bit-identical
// delay, rate and p99 state — the station adds scheduling, never control
// law.
func TestStationWindowReplayMatchesPureController(t *testing.T) {
	mkCfg := func() control.WindowConfig {
		return control.WindowConfig{MaxSize: 8, DelayCapSec: 0.05, TargetP99Sec: 0.2}
	}
	w1 := control.NewWindow(mkCfg())
	var eng Engine
	st := NewStation("edge")
	st.SetWindow(w1, 8)

	// feed logs the exact observation sequence the station produces: an
	// arrival at each submission instant, a latency at each completion.
	type obs struct {
		kind string
		v    float64
	}
	var feed []obs
	const (
		n   = 120
		gap = 0.01  // 100 arrivals/sec: dense enough for the window to open
		dur = 0.004 // service class
	)
	for i := 0; i < n; i++ {
		at := float64(i) * gap
		eng.At(at, func() {
			feed = append(feed, obs{"arrive", at})
			st.SubmitObserved(&eng, dur, 0, func(enq, _, fin float64) {
				feed = append(feed, obs{"lat", fin - enq})
			})
		})
	}
	if _, err := eng.Run(10000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Served() != n {
		t.Fatalf("served %d jobs, want %d", st.Served(), n)
	}
	if w1.DelaySec() <= 0 {
		t.Fatal("dense arrivals left the adaptive window shut; pin is vacuous")
	}

	w2 := control.NewWindow(mkCfg())
	for _, o := range feed {
		if o.kind == "arrive" {
			w2.ObserveArrival(o.v)
		} else {
			w2.ObserveLatency(o.v)
		}
	}
	if w1.DelaySec() != w2.DelaySec() {
		t.Errorf("delay diverges: station %v vs pure replay %v", w1.DelaySec(), w2.DelaySec())
	}
	if w1.RateEstimate() != w2.RateEstimate() {
		t.Errorf("rate estimate diverges: station %v vs pure replay %v", w1.RateEstimate(), w2.RateEstimate())
	}
	if w1.P99Sec() != w2.P99Sec() {
		t.Errorf("p99 diverges: station %v vs pure replay %v", w1.P99Sec(), w2.P99Sec())
	}
}
