package sim

import (
	"math"
	"testing"

	"leime/internal/cluster"
	"leime/internal/offload"
)

// near absorbs float64 rounding in model-second arithmetic.
func near(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestBatchAmortizedSec pins the cost model against the executor's:
// dur * (1 + (n-1)*marginal), default marginal 0.25.
func TestBatchAmortizedSec(t *testing.T) {
	b := Batch{MaxSize: 8, MaxDelaySec: 0.01}
	if got := b.AmortizedSec(0.1, 1); got != 0.1 {
		t.Errorf("AmortizedSec(0.1, 1) = %v, want 0.1", got)
	}
	if got := b.AmortizedSec(0.1, 5); got != 0.2 {
		t.Errorf("AmortizedSec(0.1, 5) = %v, want 0.2", got)
	}
	b.Marginal = 1
	if got := b.AmortizedSec(0.1, 5); got != 0.5 {
		t.Errorf("AmortizedSec(marginal=1, 5) = %v, want 0.5", got)
	}
	if (Batch{}).Enabled() || (Batch{MaxSize: 8}).Enabled() || (Batch{MaxDelaySec: 1}).Enabled() {
		t.Error("partial configurations must not enable batching")
	}
}

// TestStationZeroBatchIsExactFIFO pins the default: a station with the zero
// Batch value observes identical (enqueued, started, finish) triples to one
// never touched by SetBatch.
func TestStationZeroBatchIsExactFIFO(t *testing.T) {
	type obs struct{ enq, start, fin float64 }
	run := func(set bool) []obs {
		var eng Engine
		st := NewStation("s")
		if set {
			st.SetBatch(Batch{})
		}
		var got []obs
		submit := func(at, dur, extra float64) {
			eng.At(at, func() {
				st.SubmitObserved(&eng, dur, extra, func(enq, start, fin float64) {
					got = append(got, obs{enq, start, fin})
				})
			})
		}
		submit(0, 0.5, 0)
		submit(0.1, 0.25, 0.05)
		submit(2, 0.1, 0)
		if _, err := eng.Run(100); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return got
	}
	plain, zeroed := run(false), run(true)
	if len(plain) != len(zeroed) {
		t.Fatalf("observation counts differ: %d vs %d", len(plain), len(zeroed))
	}
	for i := range plain {
		if plain[i] != zeroed[i] {
			t.Errorf("observation %d differs: %+v vs %+v", i, plain[i], zeroed[i])
		}
	}
}

// TestStationBatchCoalesces submits co-arriving same-class jobs and checks
// one shared amortized burn: common start, common finish at the amortized
// duration, not the serial sum.
func TestStationBatchCoalesces(t *testing.T) {
	var eng Engine
	st := NewStation("s")
	st.SetBatch(Batch{MaxSize: 4, MaxDelaySec: 0.5})
	var starts, fins []float64
	for i := 0; i < 4; i++ {
		eng.At(0, func() {
			st.SubmitObserved(&eng, 0.1, 0, func(_, start, fin float64) {
				starts = append(starts, start)
				fins = append(fins, fin)
			})
		})
	}
	if _, err := eng.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fins) != 4 {
		t.Fatalf("completed %d jobs, want 4", len(fins))
	}
	// Full batch of 4 at 0.1s each: 0.1*(1+3*0.25) = 0.175, fired at t=0
	// when the window fills — not held to the 0.5s deadline.
	for i := range fins {
		if starts[i] != 0 || !near(fins[i], 0.175) {
			t.Errorf("job %d: start=%v fin=%v, want start=0 fin=0.175", i, starts[i], fins[i])
		}
	}
	if got := st.BusySeconds(); !near(got, 0.175) {
		t.Errorf("BusySeconds = %v, want the amortized 0.175", got)
	}
	if got := st.Served(); got != 4 {
		t.Errorf("Served = %d, want 4", got)
	}
}

// TestStationBatchWindowDeadline submits fewer jobs than MaxSize and checks
// the window deadline fires the partial batch.
func TestStationBatchWindowDeadline(t *testing.T) {
	var eng Engine
	st := NewStation("s")
	st.SetBatch(Batch{MaxSize: 8, MaxDelaySec: 0.2})
	var fins []float64
	for _, at := range []float64{0, 0.05} {
		eng.At(at, func() {
			st.SubmitObserved(&eng, 0.1, 0, func(_, _, fin float64) {
				fins = append(fins, fin)
			})
		})
	}
	if _, err := eng.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Window opens at the first arrival (t=0), fires at t=0.2; two jobs
	// burn 0.1*(1+0.25) = 0.125, finishing at 0.325.
	if len(fins) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(fins))
	}
	for i, fin := range fins {
		if !near(fin, 0.325) {
			t.Errorf("job %d finish = %v, want 0.325", i, fin)
		}
	}
}

// TestStationBatchClassChangeCapsWindow checks a different-duration job
// closes the open batch so FIFO order holds across classes.
func TestStationBatchClassChangeCapsWindow(t *testing.T) {
	var eng Engine
	st := NewStation("s")
	st.SetBatch(Batch{MaxSize: 8, MaxDelaySec: 1})
	var aFin, bFin float64
	eng.At(0, func() {
		st.SubmitObserved(&eng, 0.1, 0, func(_, _, fin float64) { aFin = fin })
	})
	eng.At(0.05, func() {
		st.SubmitObserved(&eng, 0.3, 0, func(_, _, fin float64) { bFin = fin })
	})
	if _, err := eng.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The 0.3s job arriving at t=0.05 fires the lone 0.1s batch immediately
	// (finish 0.15) and opens its own window, deadline t=1.05, burning 0.3s
	// from the horizon: finish 1.35.
	if !near(aFin, 0.15) {
		t.Errorf("first-class finish = %v, want 0.15 (fired by class change, not the 1s deadline)", aFin)
	}
	if !near(bFin, 1.35) {
		t.Errorf("second-class finish = %v, want 1.35", bFin)
	}
	if aFin >= bFin {
		t.Errorf("FIFO violated: earlier class finished at %v after later class at %v", aFin, bFin)
	}
}

// batchSimConfig is a congested event-sim setup: a slow edge with
// EdgeOnly-leaning offloading so edge shares queue deeply.
func batchSimConfig(edgeBatch Batch) EventConfig {
	model := offload.ModelParams{
		Mu:    [3]float64{2e8, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
	always := offload.FixedRatio(1)
	devices := make([]DeviceSpec, 4)
	for i := range devices {
		devices[i] = DeviceSpec{
			Device: offload.Device{
				FLOPS:        1e9,
				BandwidthBps: 10e6,
				LatencySec:   0.01,
				ArrivalMean:  3,
			},
			Policy: &always,
		}
	}
	return EventConfig{
		Model:      model,
		Devices:    devices,
		EdgeFLOPS:  1.2e10,
		CloudFLOPS: 1e12,
		EdgeCloud:  cluster.Path{BandwidthBps: 100e6, LatencySec: 0.02},
		TauSec:     1,
		V:          1e-4,
		Slots:      40,
		Seed:       7,
		EdgePolicy: Policy{Batch: edgeBatch},
	}
}

// TestEventSimEdgeBatching runs the congested scenario with and without
// edge batching: both conserve tasks, runs are deterministic, and batching
// lowers mean completion time by amortizing queued same-block work.
func TestEventSimEdgeBatching(t *testing.T) {
	base, err := RunEvents(batchSimConfig(Batch{}))
	if err != nil {
		t.Fatalf("unbatched RunEvents: %v", err)
	}
	batched, err := RunEvents(batchSimConfig(Batch{MaxSize: 8, MaxDelaySec: 0.05}))
	if err != nil {
		t.Fatalf("batched RunEvents: %v", err)
	}
	again, err := RunEvents(batchSimConfig(Batch{MaxSize: 8, MaxDelaySec: 0.05}))
	if err != nil {
		t.Fatalf("batched rerun: %v", err)
	}
	if batched.Completed != batched.Generated || batched.Generated == 0 {
		t.Fatalf("conservation: generated %d, completed %d", batched.Generated, batched.Completed)
	}
	if batched.Generated != base.Generated {
		t.Errorf("batching changed the arrival process: %d vs %d tasks", batched.Generated, base.Generated)
	}
	if batched.TCT.Mean() != again.TCT.Mean() || batched.Completed != again.Completed {
		t.Error("batched run not deterministic under a fixed seed")
	}
	if batched.TCT.Mean() >= base.TCT.Mean() {
		t.Errorf("batching did not help under congestion: mean TCT %v (batched) vs %v (unbatched)",
			batched.TCT.Mean(), base.TCT.Mean())
	}
	t.Logf("mean TCT: unbatched %.3fs, batched %.3fs", base.TCT.Mean(), batched.TCT.Mean())
}
