package sim

import (
	"reflect"
	"testing"

	"leime/internal/cluster"
	"leime/internal/offload"
)

func baseFleetConfig(nDevices, nEdges int, rate float64) FleetConfig {
	devs := make([]DeviceSpec, nDevices)
	for i := range devs {
		devs[i] = DeviceSpec{Device: offload.Device{
			FLOPS:        1.2e9,
			BandwidthBps: 1e7,
			LatencySec:   0.02,
			ArrivalMean:  rate,
		}}
	}
	edges := make([]float64, nEdges)
	for e := range edges {
		edges[e] = 6e10
	}
	return FleetConfig{
		Model:       testModelParams(),
		Devices:     devs,
		EdgeFLOPS:   edges,
		CloudFLOPS:  2e12,
		EdgeCloud:   cluster.InternetDefault,
		TauSec:      1,
		V:           1e4,
		Slots:       120,
		WarmupSlots: 20,
		Seed:        42,
	}
}

func TestFleetConfigValidate(t *testing.T) {
	good := baseFleetConfig(4, 2, 5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.EdgeFLOPS = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty fleet accepted")
	}
	bad = good
	bad.EdgeFLOPS = []float64{6e10, 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero-FLOPS edge accepted")
	}
	bad = good
	bad.KillAtSlot = 10
	bad.KillEdge = 5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range kill edge accepted")
	}
}

// TestRunFleetDeterministic pins seed-replay: identical configurations must
// produce identical results, migrations and all.
func TestRunFleetDeterministic(t *testing.T) {
	a, err := RunFleet(baseFleetConfig(6, 3, 6))
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	b, err := RunFleet(baseFleetConfig(6, 3, 6))
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n a %+v\n b %+v", a, b)
	}
}

// TestRunFleetSpreadsLoad drives enough offloading that every edge in the
// fleet serves first blocks, and conservation holds across migrations.
func TestRunFleetSpreadsLoad(t *testing.T) {
	cfg := baseFleetConfig(6, 3, 8)
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if res.Completed != res.Generated {
		t.Fatalf("conservation: %d != %d", res.Completed, res.Generated)
	}
	served := 0
	for e, n := range res.PerEdgeServed {
		if n > 0 {
			served++
		} else {
			t.Logf("edge %d served nothing", e)
		}
	}
	if served < 2 {
		t.Errorf("only %d of %d edges served work; selection never spread load", served, len(cfg.EdgeFLOPS))
	}
	if res.TCT.Count() == 0 || res.TCT.Mean() <= 0 {
		t.Errorf("degenerate TCT summary: %+v", res.TCT)
	}
}

// TestRunFleetSingleEdgeDegeneratesCleanly pins the E=1 boundary: with one
// edge there is nowhere to migrate, and the run must still conserve tasks.
func TestRunFleetSingleEdgeDegeneratesCleanly(t *testing.T) {
	res, err := RunFleet(baseFleetConfig(3, 1, 6))
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if res.Migrations != 0 {
		t.Errorf("%d migrations with a single edge", res.Migrations)
	}
	if res.Completed != res.Generated {
		t.Errorf("conservation: %d != %d", res.Completed, res.Generated)
	}
}

// TestRunFleetKillEdgeMigratesAndConserves is the sim chaos experiment:
// killing one of three edges mid-run forces its residents onto survivors
// with zero lost tasks.
func TestRunFleetKillEdgeMigratesAndConserves(t *testing.T) {
	cfg := baseFleetConfig(6, 3, 6)
	cfg.KillAtSlot = cfg.Slots / 2
	cfg.KillEdge = 0
	res, err := RunFleet(cfg)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if res.Completed != res.Generated {
		t.Fatalf("conservation after kill: %d != %d", res.Completed, res.Generated)
	}
	// Devices 0 and 3 start homed at edge 0 (i mod 3); both must leave it.
	if res.Migrations < 2 {
		t.Errorf("%d migrations; killed edge's residents never re-selected", res.Migrations)
	}
	baseline, err := RunFleet(baseFleetConfig(6, 3, 6))
	if err != nil {
		t.Fatalf("RunFleet baseline: %v", err)
	}
	if res.PerEdgeServed[0] >= baseline.PerEdgeServed[0] && baseline.PerEdgeServed[0] > 0 {
		t.Errorf("killed edge served %d first blocks, no fewer than the %d of an unkilled run",
			res.PerEdgeServed[0], baseline.PerEdgeServed[0])
	}
}
