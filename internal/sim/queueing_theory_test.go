package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestStationMatchesMD1Theory validates the discrete-event engine against
// closed-form queueing theory: a single-server station with Poisson arrivals
// and deterministic service is an M/D/1 queue, whose mean waiting time is
// exactly rho*s / (2*(1-rho)). Agreement here means the engine's FIFO
// single-server semantics are not just self-consistent but correct.
func TestStationMatchesMD1Theory(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		rho := rho
		const service = 1.0 // seconds per job
		lambda := rho / service
		const jobs = 60000

		var e Engine
		st := NewStation("md1")
		rng := rand.New(rand.NewSource(int64(1000 * rho)))
		var sumSojourn float64
		arrival := 0.0
		for i := 0; i < jobs; i++ {
			arrival += rng.ExpFloat64() / lambda
			born := arrival
			e.At(arrival, func() {
				st.Submit(&e, service, 0, func(finish float64) {
					sumSojourn += finish - born
				})
			})
		}
		if _, err := e.Run(jobs * 4); err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
		meanSojourn := sumSojourn / jobs
		wantWait := rho * service / (2 * (1 - rho))
		want := service + wantWait
		if rel := math.Abs(meanSojourn-want) / want; rel > 0.05 {
			t.Errorf("rho=%v: mean sojourn %v, M/D/1 predicts %v (%.1f%% off)",
				rho, meanSojourn, want, rel*100)
		}
	}
}

// TestStationMatchesMM1Theory repeats the validation with exponential
// service times (M/M/1): mean sojourn is s/(1-rho).
func TestStationMatchesMM1Theory(t *testing.T) {
	const rho = 0.7
	const service = 0.5
	lambda := rho / service
	const jobs = 60000

	var e Engine
	st := NewStation("mm1")
	rng := rand.New(rand.NewSource(77))
	var sumSojourn float64
	arrival := 0.0
	for i := 0; i < jobs; i++ {
		arrival += rng.ExpFloat64() / lambda
		born := arrival
		dur := rng.ExpFloat64() * service
		e.At(arrival, func() {
			st.Submit(&e, dur, 0, func(finish float64) {
				sumSojourn += finish - born
			})
		})
	}
	if _, err := e.Run(jobs * 4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	meanSojourn := sumSojourn / jobs
	want := service / (1 - rho)
	if rel := math.Abs(meanSojourn-want) / want; rel > 0.08 {
		t.Errorf("mean sojourn %v, M/M/1 predicts %v (%.1f%% off)", meanSojourn, want, rel*100)
	}
}

// TestStationUtilizationMatchesRho checks the utilization accounting against
// the offered load.
func TestStationUtilizationMatchesRho(t *testing.T) {
	const rho = 0.5
	const service = 0.2
	lambda := rho / service
	const jobs = 20000

	var e Engine
	st := NewStation("util")
	rng := rand.New(rand.NewSource(5))
	arrival := 0.0
	for i := 0; i < jobs; i++ {
		arrival += rng.ExpFloat64() / lambda
		e.At(arrival, func() {
			st.Submit(&e, service, 0, nil)
		})
	}
	if _, err := e.Run(jobs * 4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	horizon := e.Now()
	if got := st.Utilization(horizon); math.Abs(got-rho) > 0.05 {
		t.Errorf("utilization %v, offered load %v", got, rho)
	}
	if st.Served() != jobs {
		t.Errorf("served %d, want %d", st.Served(), jobs)
	}
}
