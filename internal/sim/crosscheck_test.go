package sim

import (
	"testing"

	"leime/internal/offload"
)

// TestSlotAndEventSimulatorsAgree cross-checks the two independent
// implementations of the system: the analytic slot model (the paper's
// equations) and the discrete-event pipeline. They model queueing at
// different granularities, so exact agreement is not expected — but on the
// same workload their mean TCTs must land within a small factor, and they
// must order offloading ratios the same way (which is all the experiments
// rely on).
func TestSlotAndEventSimulatorsAgree(t *testing.T) {
	ratios := []float64{0, 0.5, 1}
	slotTCT := make([]float64, len(ratios))
	eventTCT := make([]float64, len(ratios))
	for i, r := range ratios {
		policy := offload.FixedRatio(r)

		slotCfg := baseSlotConfig(1, 6)
		slotCfg.Devices[0].Policy = &policy
		slotCfg.Slots = 400
		slotCfg.WarmupSlots = 50
		sres, err := RunSlots(slotCfg)
		if err != nil {
			t.Fatalf("RunSlots(r=%v): %v", r, err)
		}
		slotTCT[i] = sres.MeanTCT

		evCfg := baseEventConfig(1, 6)
		evCfg.Devices[0].Policy = &policy
		evCfg.Slots = 400
		evCfg.WarmupSlots = 50
		eres, err := RunEvents(evCfg)
		if err != nil {
			t.Fatalf("RunEvents(r=%v): %v", r, err)
		}
		eventTCT[i] = eres.TCT.Mean()
	}
	for i, r := range ratios {
		ratio := slotTCT[i] / eventTCT[i]
		if ratio < 0.3 || ratio > 3 {
			t.Errorf("r=%v: simulators disagree by %vx (slot %v, event %v)",
				r, ratio, slotTCT[i], eventTCT[i])
		}
	}
	// Ordering agreement between the extreme ratios.
	slotPrefersLocal := slotTCT[0] < slotTCT[len(ratios)-1]
	eventPrefersLocal := eventTCT[0] < eventTCT[len(ratios)-1]
	if slotPrefersLocal != eventPrefersLocal {
		t.Errorf("simulators order the extreme ratios differently: slot %v, event %v", slotTCT, eventTCT)
	}
}
