package sim

import (
	"container/heap"
	"fmt"

	"leime/internal/control"
)

// Engine is a minimal discrete-event engine: a time-ordered heap of
// callbacks. Ties break in scheduling order so runs are deterministic.
type Engine struct {
	now    float64
	seq    int
	events eventHeap
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t (clamped to now for past times).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run executes events until the queue is empty, advancing the clock. It
// returns the number of events processed. maxEvents guards against runaway
// feedback loops; Run returns an error if it is exceeded.
func (e *Engine) Run(maxEvents int) (int, error) {
	processed := 0
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
		processed++
		if processed > maxEvents {
			return processed, fmt.Errorf("sim: event budget %d exceeded; likely unstable feedback", maxEvents)
		}
	}
	return processed, nil
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t. Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t float64) {
	for e.events.Len() > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

type event struct {
	at  float64
	seq int
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Station is a single-server FIFO resource (a CPU or a network link). Work
// submitted while the server is busy queues implicitly: the server's
// busy-until horizon advances by each job's duration in submission order,
// which is exact for FIFO single-server queues.
type Station struct {
	name      string
	busyUntil float64
	inFlight  int
	busyTotal float64 // accumulated service seconds
	served    int     // completed jobs

	batch  Batch           // window batching; zero value = exact FIFO
	open   *openBatch      // in-progress batch window, nil when closed
	window *control.Window // adaptive window on the engine clock, nil = static
	winMax int             // adaptive batch size cap
}

// NewStation names a station for diagnostics.
func NewStation(name string) *Station { return &Station{name: name} }

// QueueLen returns the number of jobs submitted but not yet finished
// (including the one in service).
func (s *Station) QueueLen() int { return s.inFlight }

// Backlog returns how many seconds of already-accepted work remain at time t.
func (s *Station) Backlog(t float64) float64 {
	if s.busyUntil <= t {
		return 0
	}
	return s.busyUntil - t
}

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }

// BusySeconds returns the total service time the station has performed.
func (s *Station) BusySeconds() float64 { return s.busyTotal }

// Served returns the number of completed jobs.
func (s *Station) Served() int { return s.served }

// Utilization returns the fraction of the horizon the station spent serving.
func (s *Station) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := s.busyTotal / horizon
	if u > 1 {
		u = 1
	}
	return u
}

// Submit enqueues a job of the given duration at the engine's current time
// and invokes done with the job's finish time when it completes. extraDelay
// is appended after service without occupying the server (propagation
// latency on links).
func (s *Station) Submit(e *Engine, dur, extraDelay float64, done func(finish float64)) {
	s.SubmitObserved(e, dur, extraDelay, func(_, _, finish float64) {
		if done != nil {
			done(finish)
		}
	})
}

// SubmitObserved is Submit, additionally reporting when the job was enqueued
// and when service began — the queue-wait/service split that telemetry spans
// attribute latency with. finish includes extraDelay.
func (s *Station) SubmitObserved(e *Engine, dur, extraDelay float64, done func(enqueued, started, finish float64)) {
	if dur < 0 {
		dur = 0
	}
	if s.window != nil {
		s.window.ObserveArrival(e.Now())
	}
	if s.batch.Enabled() || s.window != nil {
		s.submitBatched(e, dur, extraDelay, done)
		return
	}
	s.submitPlain(e, dur, extraDelay, done)
}

// submitPlain is the exact single-server FIFO path: the busy horizon
// advances by the job's duration in submission order.
func (s *Station) submitPlain(e *Engine, dur, extraDelay float64, done func(enqueued, started, finish float64)) {
	enq := e.Now()
	start := enq
	if s.busyUntil > start {
		start = s.busyUntil
	}
	finish := start + dur
	s.busyUntil = finish
	s.inFlight++
	s.busyTotal += dur
	e.At(finish+extraDelay, func() {
		s.inFlight--
		s.served++
		if s.window != nil {
			s.window.ObserveLatency(finish - enq)
		}
		if done != nil {
			done(enq, start, finish+extraDelay)
		}
	})
}
