// Package sim provides the two simulators the experiments run on:
//
//   - SlotSim implements exactly the paper's time-slotted system model
//     (§III-D): per-slot arrivals, the queue recurrences of eqs. 10–11, the
//     cost terms of eqs. 12–14, and pluggable offloading policies. It is the
//     substrate for the offloading experiments (Figs. 3, 9, 10(b), 11).
//
//   - EventSim is a discrete-event, per-task simulator of the full
//     device–edge–cloud pipeline (CPU queues, serialized network links,
//     propagation delays, early exits). It is the testbed stand-in for the
//     end-to-end latency experiments (Figs. 2, 7, 8, 10(a)).
package sim

import (
	"fmt"

	"leime/internal/cluster"
	"leime/internal/metrics"
	"leime/internal/offload"
	"leime/internal/trace"
)

// LinkSchedule returns the device–edge link conditions in effect during the
// given slot. It models the "wild" time-varying networks of the paper's
// motivation: WiFi bandwidth and latency that churn while the system runs.
type LinkSchedule func(slot int) (bandwidthBps, latencySec float64)

// DeviceSpec configures one end device in a simulation.
type DeviceSpec struct {
	// Device carries capability, uplink and expected arrival rate.
	Device offload.Device
	// Arrivals yields per-slot task counts. If nil, a Poisson process with
	// the device's ArrivalMean is used.
	Arrivals trace.Process
	// Policy decides the per-slot offloading ratio. If nil, LEIME's
	// Lyapunov policy is used.
	Policy *offload.Policy
	// Link, when non-nil, overrides the device's uplink per slot (bandwidth
	// churn experiments). The controller observes the overridden values, so
	// online policies adapt to them.
	Link LinkSchedule
}

// linkAt returns the device configuration with the slot's link conditions
// applied.
func (d DeviceSpec) linkAt(slot int) offload.Device {
	dev := d.Device
	if d.Link != nil {
		bw, lat := d.Link(slot)
		if bw > 0 {
			dev.BandwidthBps = bw
		}
		if lat >= 0 {
			dev.LatencySec = lat
		}
	}
	return dev
}

// SlotConfig configures a SlotSim run.
type SlotConfig struct {
	// Model is the deployed ME-DNN.
	Model offload.ModelParams
	// Devices are the end devices.
	Devices []DeviceSpec
	// EdgeFLOPS and CloudFLOPS are the shared server capabilities.
	EdgeFLOPS  float64
	CloudFLOPS float64
	// EdgeCloud is the edge–cloud path.
	EdgeCloud cluster.Path
	// TauSec is the slot length (seconds).
	TauSec float64
	// V is the Lyapunov penalty weight.
	V float64
	// Slots is the horizon.
	Slots int
	// WarmupSlots are excluded from the summary statistics.
	WarmupSlots int
	// Seed drives default arrival processes.
	Seed int64
}

// Validate reports whether the configuration is runnable.
func (c SlotConfig) Validate() error {
	if len(c.Devices) == 0 {
		return fmt.Errorf("sim: no devices configured")
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	for i, d := range c.Devices {
		if err := d.Device.Validate(); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	if c.EdgeFLOPS <= 0 || c.CloudFLOPS <= 0 {
		return fmt.Errorf("sim: edge (%v) and cloud (%v) FLOPS must be positive", c.EdgeFLOPS, c.CloudFLOPS)
	}
	if err := c.EdgeCloud.Validate(); err != nil {
		return fmt.Errorf("edge-cloud: %w", err)
	}
	if c.TauSec <= 0 || c.V <= 0 {
		return fmt.Errorf("sim: TauSec (%v) and V (%v) must be positive", c.TauSec, c.V)
	}
	if c.Slots <= 0 || c.WarmupSlots < 0 || c.WarmupSlots >= c.Slots {
		return fmt.Errorf("sim: bad horizon (slots=%d, warmup=%d)", c.Slots, c.WarmupSlots)
	}
	return nil
}

// DeviceResult holds per-device outcomes of a slot simulation.
type DeviceResult struct {
	// TCT summarizes the per-task completion time of post-warmup slots.
	TCT metrics.Summary
	// SlotTCT is the per-slot mean task completion time (full horizon).
	SlotTCT metrics.Series
	// Ratio is the per-slot offloading decision.
	Ratio metrics.Series
	// Backlog is the per-slot total queue length Q_i + H_i.
	Backlog metrics.Series
	// Arrivals is the total tasks generated.
	Arrivals float64
}

// SlotResult is the outcome of a SlotSim run.
type SlotResult struct {
	// PerDevice holds one entry per configured device.
	PerDevice []DeviceResult
	// MeanTCT is the demand-weighted mean task completion time across all
	// devices, post-warmup, in seconds.
	MeanTCT float64
	// FinalBacklog is the total queue length at the horizon.
	FinalBacklog float64
}

// RunSlots executes the paper's time-slotted model and returns per-device
// and aggregate statistics.
func RunSlots(cfg SlotConfig) (*SlotResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(cfg.Devices)
	ctrl, err := offload.NewController(offload.Config{Model: cfg.Model, TauSec: cfg.TauSec, V: cfg.V})
	if err != nil {
		return nil, err
	}
	devices := make([]offload.Device, n)
	for i, d := range cfg.Devices {
		devices[i] = d.Device
	}
	shares, err := offload.Allocate(devices, cfg.EdgeFLOPS)
	if err != nil {
		return nil, err
	}

	arrivals := make([]trace.Process, n)
	policies := make([]offload.Policy, n)
	for i, d := range cfg.Devices {
		arrivals[i] = d.Arrivals
		if arrivals[i] == nil {
			p, err := trace.NewPoisson(d.Device.ArrivalMean, cfg.Seed+int64(i)*7919)
			if err != nil {
				return nil, err
			}
			arrivals[i] = p
		}
		if d.Policy != nil {
			policies[i] = *d.Policy
		} else {
			policies[i] = offload.Lyapunov()
		}
	}

	res := &SlotResult{PerDevice: make([]DeviceResult, n)}
	states := make([]offload.State, n)
	var tctSum, tctTasks float64
	for t := 0; t < cfg.Slots; t++ {
		for i := range cfg.Devices {
			dev := cfg.Devices[i].linkAt(t)
			m := float64(arrivals[i].Next())
			slot := offload.Slot{
				Arrivals:       m,
				State:          states[i],
				EdgeShareFLOPS: shares[i] * cfg.EdgeFLOPS,
			}
			x := policies[i].Decide(ctrl, dev, slot)
			costs := ctrl.Eval(dev, slot, x)
			perTask := 0.0
			if m > 0 {
				perTask = (costs.TD+costs.TE)/m + tailCost(cfg, ctrl, shares[i], x)
			}
			dr := &res.PerDevice[i]
			dr.Arrivals += m
			dr.SlotTCT.Append(perTask)
			dr.Ratio.Append(x)
			dr.Backlog.Append(states[i].Q + states[i].H)
			if t >= cfg.WarmupSlots && m > 0 {
				dr.TCT.Add(perTask)
				tctSum += perTask * m
				tctTasks += m
			}
			states[i] = ctrl.StepQueues(dev, slot, x)
		}
	}
	for i := range states {
		res.FinalBacklog += states[i].Q + states[i].H
	}
	if tctTasks > 0 {
		res.MeanTCT = tctSum / tctTasks
	}
	return res, nil
}

// tailCost is the expected per-task time spent beyond the first block: the
// second block on the edge for tasks surviving the First exit, and the
// edge–cloud transfer plus third block for tasks surviving the Second exit.
// The slot model's eqs. 12–14 only cover first-block work (the second and
// third blocks are "processed fixedly on edge and cloud", §III-D1), so the
// end-to-end TCT adds this fixed expectation.
func tailCost(cfg SlotConfig, ctrl *offload.Controller, share, x float64) float64 {
	m := cfg.Model
	shareFLOPS := share * cfg.EdgeFLOPS
	// Split the device's edge share between first- and second-block work
	// (eq. 9); what the first block does not use serves the second block.
	denom := x*m.Mu[0] + (1-m.Sigma[0])*m.Mu[1]
	fe2 := shareFLOPS
	if denom > 0 {
		fe2 = shareFLOPS * (1 - m.Sigma[0]) * m.Mu[1] / denom
	}
	var tail float64
	if fe2 > 0 {
		tail += (1 - m.Sigma[0]) * m.Mu[1] / fe2
	}
	tail += (1 - m.Sigma[1]) * (m.Mu[2]/cfg.CloudFLOPS + cfg.EdgeCloud.TransferSeconds(m.D[2]))
	return tail
}
