package sim

import (
	"math"
	"testing"

	"leime/internal/cluster"
	"leime/internal/offload"
	"leime/internal/trace"
)

// testModelParams is an ME-Inception-v3-like deployment.
func testModelParams() offload.ModelParams {
	return offload.ModelParams{
		Mu:    [3]float64{2e8, 8e8, 1e9},
		D:     [3]float64{3088, 65536, 8192},
		Sigma: [3]float64{0.4, 0.8, 1},
	}
}

func baseSlotConfig(nDevices int, rate float64) SlotConfig {
	devs := make([]DeviceSpec, nDevices)
	for i := range devs {
		devs[i] = DeviceSpec{Device: offload.Device{
			FLOPS:        1.2e9,
			BandwidthBps: 1e7,
			LatencySec:   0.02,
			ArrivalMean:  rate,
		}}
	}
	return SlotConfig{
		Model:       testModelParams(),
		Devices:     devs,
		EdgeFLOPS:   6e10,
		CloudFLOPS:  2e12,
		EdgeCloud:   cluster.InternetDefault,
		TauSec:      1,
		V:           1e4,
		Slots:       300,
		WarmupSlots: 50,
		Seed:        42,
	}
}

func TestSlotConfigValidate(t *testing.T) {
	good := baseSlotConfig(2, 5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Devices = nil
	if err := bad.Validate(); err == nil {
		t.Error("no devices accepted")
	}
	bad = good
	bad.EdgeFLOPS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero edge accepted")
	}
	bad = good
	bad.WarmupSlots = bad.Slots
	if err := bad.Validate(); err == nil {
		t.Error("warmup >= slots accepted")
	}
}

func TestRunSlotsProducesStableQueues(t *testing.T) {
	cfg := baseSlotConfig(3, 8)
	res, err := RunSlots(cfg)
	if err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	if res.MeanTCT <= 0 {
		t.Errorf("MeanTCT = %v, want positive", res.MeanTCT)
	}
	if res.FinalBacklog > 100 {
		t.Errorf("final backlog %v implies instability under light load", res.FinalBacklog)
	}
	for i, d := range res.PerDevice {
		if d.Arrivals == 0 {
			t.Errorf("device %d saw no arrivals", i)
		}
		if got := len(d.SlotTCT.Values); got != cfg.Slots {
			t.Errorf("device %d: %d slot samples, want %d", i, got, cfg.Slots)
		}
	}
}

func TestRunSlotsDeterministicPerSeed(t *testing.T) {
	cfg := baseSlotConfig(2, 6)
	a, err := RunSlots(cfg)
	if err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	b, err := RunSlots(cfg)
	if err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	if a.MeanTCT != b.MeanTCT {
		t.Errorf("same seed diverged: %v vs %v", a.MeanTCT, b.MeanTCT)
	}
	cfg.Seed = 43
	c, err := RunSlots(cfg)
	if err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	if a.MeanTCT == c.MeanTCT {
		t.Error("different seeds produced identical results")
	}
}

func TestRunSlotsLyapunovBeatsDOnlyUnderLoad(t *testing.T) {
	// A loaded weak device must benefit from offloading.
	mk := func(p offload.Policy) float64 {
		cfg := baseSlotConfig(1, 15)
		cfg.Devices[0].Policy = &p
		res, err := RunSlots(cfg)
		if err != nil {
			t.Fatalf("RunSlots(%s): %v", p.Name, err)
		}
		return res.MeanTCT
	}
	leime := mk(offload.Lyapunov())
	dOnly := mk(offload.DeviceOnly())
	if leime >= dOnly {
		t.Errorf("LEIME (%v) should beat D-only (%v) on a loaded weak device", leime, dOnly)
	}
}

func TestRunSlotsTCTIncreasesWithArrivalRate(t *testing.T) {
	var prev float64
	for i, rate := range []float64{2, 10, 25} {
		res, err := RunSlots(baseSlotConfig(2, rate))
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if i > 0 && res.MeanTCT < prev*0.8 {
			t.Errorf("TCT dropped sharply with more load: %v -> %v at rate %v", prev, res.MeanTCT, rate)
		}
		prev = res.MeanTCT
	}
}

func baseEventConfig(nDevices int, rate float64) EventConfig {
	devs := make([]DeviceSpec, nDevices)
	for i := range devs {
		devs[i] = DeviceSpec{Device: offload.Device{
			FLOPS:        1.2e9,
			BandwidthBps: 1e7,
			LatencySec:   0.02,
			ArrivalMean:  rate,
		}}
	}
	return EventConfig{
		Model:       testModelParams(),
		Devices:     devs,
		EdgeFLOPS:   6e10,
		CloudFLOPS:  2e12,
		EdgeCloud:   cluster.InternetDefault,
		TauSec:      1,
		V:           1e4,
		Slots:       120,
		WarmupSlots: 20,
		Seed:        7,
	}
}

func TestRunEventsConservation(t *testing.T) {
	res, err := RunEvents(baseEventConfig(3, 6))
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	if res.Generated == 0 {
		t.Fatal("no tasks generated")
	}
	if res.Completed != res.Generated {
		t.Errorf("completed %d != generated %d", res.Completed, res.Generated)
	}
	if sum := res.ExitCounts[0] + res.ExitCounts[1] + res.ExitCounts[2]; sum != res.Completed {
		t.Errorf("exit counts sum %d != completed %d", sum, res.Completed)
	}
}

func TestRunEventsExitFractionsMatchSigma(t *testing.T) {
	cfg := baseEventConfig(2, 20)
	cfg.Slots = 400
	res, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	total := float64(res.Completed)
	sigma := cfg.Model.Sigma
	wants := []float64{sigma[0], sigma[1] - sigma[0], 1 - sigma[1]}
	for i, want := range wants {
		got := float64(res.ExitCounts[i]) / total
		if math.Abs(got-want) > 0.03 {
			t.Errorf("exit %d fraction %v, want ~%v", i+1, got, want)
		}
	}
}

func TestRunEventsPositiveTCTAboveFloor(t *testing.T) {
	cfg := baseEventConfig(1, 3)
	res, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	// No task can beat the first block's bare compute time on the fastest
	// path available to it (device CPU, since offloading also pays upload).
	floor := cfg.Model.Mu[0] / cfg.EdgeFLOPS // generous lower bound
	if min := res.TCT.Percentile(0); min < floor {
		t.Errorf("min TCT %v below physical floor %v", min, floor)
	}
}

func TestRunEventsDeterministicPerSeed(t *testing.T) {
	cfg := baseEventConfig(2, 5)
	a, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	b, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	if a.TCT.Mean() != b.TCT.Mean() {
		t.Errorf("same seed diverged: %v vs %v", a.TCT.Mean(), b.TCT.Mean())
	}
}

func TestRunEventsOffloadingHelpsLoadedWeakDevice(t *testing.T) {
	mk := func(p offload.Policy) float64 {
		cfg := baseEventConfig(1, 12)
		cfg.Devices[0].Policy = &p
		res, err := RunEvents(cfg)
		if err != nil {
			t.Fatalf("RunEvents(%s): %v", p.Name, err)
		}
		return res.TCT.Mean()
	}
	leime := mk(offload.Lyapunov())
	dOnly := mk(offload.DeviceOnly())
	if leime >= dOnly {
		t.Errorf("LEIME (%v) should beat D-only (%v) under load", leime, dOnly)
	}
}

func TestRunEventsFasterNetworkLowersTCT(t *testing.T) {
	mk := func(bw float64) float64 {
		cfg := baseEventConfig(1, 10)
		cfg.Devices[0].Device.BandwidthBps = bw
		res, err := RunEvents(cfg)
		if err != nil {
			t.Fatalf("RunEvents(bw=%v): %v", bw, err)
		}
		return res.TCT.Mean()
	}
	slow := mk(cluster.Mbps(2))
	fast := mk(cluster.Mbps(100))
	if fast >= slow {
		t.Errorf("faster uplink should lower TCT: %v >= %v", fast, slow)
	}
}

func TestRunEventsBurstyArrivalsRaiseTail(t *testing.T) {
	smooth := baseEventConfig(1, 10)
	res1, err := RunEvents(smooth)
	if err != nil {
		t.Fatalf("RunEvents smooth: %v", err)
	}
	bursty := baseEventConfig(1, 10)
	proc, err := trace.NewBursty(2, 50, 0.05, 0.25, 3)
	if err != nil {
		t.Fatalf("NewBursty: %v", err)
	}
	bursty.Devices[0].Arrivals = proc
	res2, err := RunEvents(bursty)
	if err != nil {
		t.Fatalf("RunEvents bursty: %v", err)
	}
	if res2.TCT.Percentile(99) <= res1.TCT.Percentile(99) {
		t.Errorf("bursty arrivals should raise the P99: %v <= %v",
			res2.TCT.Percentile(99), res1.TCT.Percentile(99))
	}
}

func TestRunEventsRejectsBadConfig(t *testing.T) {
	bad := baseEventConfig(1, 5)
	bad.Devices = nil
	if _, err := RunEvents(bad); err == nil {
		t.Error("no devices accepted")
	}
	bad = baseEventConfig(1, 5)
	bad.EdgeCloud.BandwidthBps = 0
	if _, err := RunEvents(bad); err == nil {
		t.Error("zero edge-cloud bandwidth accepted")
	}
	bad = baseEventConfig(1, 5)
	bad.TauSec = 0
	if _, err := RunEvents(bad); err == nil {
		t.Error("zero slot length accepted")
	}
}

func TestRunEventsUtilization(t *testing.T) {
	cfg := baseEventConfig(2, 8)
	dOnly := offload.DeviceOnly() // keep the device CPUs busy
	for i := range cfg.Devices {
		cfg.Devices[i].Policy = &dOnly
	}
	res, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	if len(res.Utilization) == 0 {
		t.Fatal("no utilization reported")
	}
	for name, u := range res.Utilization {
		if u < 0 || u > 1 {
			t.Errorf("station %s utilization %v out of [0,1]", name, u)
		}
	}
	// With D-only at rate 8 (service 0.167 s/task), the device CPU runs at
	// ~%75+ load while the enormous cloud CPU barely moves.
	if res.Utilization["dev0-cpu"] < 0.5 {
		t.Errorf("device CPU utilization %v implausibly low under D-only load", res.Utilization["dev0-cpu"])
	}
	if res.Utilization["dev0-cpu"] <= res.Utilization["cloud-cpu"] {
		t.Errorf("device CPU (%v) should be busier than the cloud (%v)",
			res.Utilization["dev0-cpu"], res.Utilization["cloud-cpu"])
	}
}

func TestStationUtilizationAccounting(t *testing.T) {
	var e Engine
	st := NewStation("cpu")
	e.At(0, func() { st.Submit(&e, 3, 0, nil) })
	e.At(1, func() { st.Submit(&e, 2, 0, nil) })
	if _, err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := st.BusySeconds(); got != 5 {
		t.Errorf("BusySeconds = %v, want 5", got)
	}
	if got := st.Served(); got != 2 {
		t.Errorf("Served = %d, want 2", got)
	}
	if got := st.Utilization(10); got != 0.5 {
		t.Errorf("Utilization(10) = %v, want 0.5", got)
	}
	if got := st.Utilization(0); got != 0 {
		t.Errorf("Utilization(0) = %v, want 0", got)
	}
	if got := st.Utilization(2); got != 1 {
		t.Errorf("Utilization(2) = %v, want clamp to 1", got)
	}
}

func TestRunEventsDeadlineTracking(t *testing.T) {
	cfg := baseEventConfig(1, 8)
	cfg.DeadlineSec = 0.3
	res, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents: %v", err)
	}
	if res.DeadlineMisses < 0 || res.DeadlineMisses > res.TCT.Count() {
		t.Fatalf("misses %d out of range (samples %d)", res.DeadlineMisses, res.TCT.Count())
	}
	// A generous deadline must miss strictly less often than a brutal one.
	cfg.DeadlineSec = 0.005
	brutal, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents brutal: %v", err)
	}
	if brutal.DeadlineMisses <= res.DeadlineMisses {
		t.Errorf("tighter deadline should miss more: %d <= %d", brutal.DeadlineMisses, res.DeadlineMisses)
	}
	// No deadline => no misses counted.
	cfg.DeadlineSec = 0
	none, err := RunEvents(cfg)
	if err != nil {
		t.Fatalf("RunEvents none: %v", err)
	}
	if none.DeadlineMisses != 0 {
		t.Errorf("misses counted without a deadline: %d", none.DeadlineMisses)
	}
}

func TestRunSlotsSingleSlotHandComputed(t *testing.T) {
	// One slot, one device, constant arrivals, D-only: the per-task TCT must
	// equal the analytic eq. 12 terms plus the expected tail, computed by
	// hand.
	m := testModelParams()
	dev := offload.Device{FLOPS: 1.2e9, BandwidthBps: 1e7, LatencySec: 0.02, ArrivalMean: 4}
	dOnly := offload.DeviceOnly()
	cfg := SlotConfig{
		Model: m,
		Devices: []DeviceSpec{{
			Device:   dev,
			Arrivals: &trace.Constant{PerSlot: 4},
			Policy:   &dOnly,
		}},
		EdgeFLOPS:   6e10,
		CloudFLOPS:  2e12,
		EdgeCloud:   cluster.Path{BandwidthBps: 5e7, LatencySec: 0.03},
		TauSec:      1,
		V:           1e4,
		Slots:       2, // warmup must be < slots; measure slot 1
		WarmupSlots: 1,
		Seed:        1,
	}
	res, err := RunSlots(cfg)
	if err != nil {
		t.Fatalf("RunSlots: %v", err)
	}
	// Slot 1 starts with Q = max(0, 4 - b) + 0 = 0 backlog? b = Fd/mu1 = 6 >= 4,
	// so Q(1) = max(4-6,0) = 0... plus arrivals 4 of slot 0: Q(1) = 0 + 4?  No:
	// Q(1) = max(Q(0) - b, 0) + A(0) = 0 + 4 = 4.
	const q1 = 4.0
	a := 4.0
	wait := a * q1 * m.Mu[0] / dev.FLOPS
	proc := a*m.Mu[0]/dev.FLOPS + a*(a-1)/2*m.Mu[0]/dev.FLOPS
	trans := (1 - m.Sigma[0]) * a * (m.D[1]*8/dev.BandwidthBps + dev.LatencySec)
	td := wait + proc + trans
	// Tail: at x = 0 the whole edge share serves block 2.
	tail := (1-m.Sigma[0])*m.Mu[1]/cfg.EdgeFLOPS +
		(1-m.Sigma[1])*(m.Mu[2]/cfg.CloudFLOPS+m.D[2]*8/cfg.EdgeCloud.BandwidthBps+cfg.EdgeCloud.LatencySec)
	want := td/a + tail
	if got := res.MeanTCT; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanTCT = %v, want hand-computed %v", got, want)
	}
}
