package metrics

import "sync"

// SharedSummary is a Summary safe for concurrent use: a mutex-guarded
// reservoir that many goroutines can feed at once. The open-loop load
// harness records per-task latencies into one from every in-flight task
// goroutine; the lock is held only for the O(1) reservoir insert, so
// high-rate concurrent Adds stay cheap.
type SharedSummary struct {
	mu sync.Mutex
	s  *Summary
}

// NewSharedReservoir returns a concurrency-safe Summary whose memory is
// bounded at capacity observations (Vitter's Algorithm R, as NewReservoir).
// capacity <= 0 selects the same default as NewReservoir.
func NewSharedReservoir(capacity int, seed int64) *SharedSummary {
	return &SharedSummary{s: NewReservoir(capacity, seed)}
}

// Add records one observation.
func (s *SharedSummary) Add(v float64) {
	s.mu.Lock()
	s.s.Add(v)
	s.mu.Unlock()
}

// Count returns the number of observations recorded so far (all of them,
// even those no longer retained by the reservoir).
func (s *SharedSummary) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Count()
}

// Mean returns the arithmetic mean over every observation (0 when empty);
// exact even once the reservoir has wrapped.
func (s *SharedSummary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Mean()
}

// Max returns the largest observation (0 when empty); exact even in
// reservoir mode.
func (s *SharedSummary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Max()
}

// Percentile returns the p-th percentile (nearest-rank over the retained
// sample), p in [0, 100].
func (s *SharedSummary) Percentile(p float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.Percentile(p)
}

// Percentiles returns the requested percentiles under one lock acquisition
// and one sort — the report-rendering path asks for p50/p95/p99 together.
func (s *SharedSummary) Percentiles(ps ...float64) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = s.s.Percentile(p)
	}
	return out
}
