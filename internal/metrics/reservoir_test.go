package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestReservoirBoundsMemoryAndKeepsExactMoments(t *testing.T) {
	const capacity = 2048
	const n = 100000
	r := NewReservoir(capacity, 1)
	exact := &Summary{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		v := rng.Float64()
		r.Add(v)
		exact.Add(v)
	}
	if r.SampleSize() != capacity {
		t.Errorf("sample size %d, want pinned at capacity %d", r.SampleSize(), capacity)
	}
	if r.Count() != n {
		t.Errorf("count %d, want %d (all observations)", r.Count(), n)
	}
	if r.Mean() != exact.Mean() {
		t.Errorf("reservoir mean %v != exact mean %v", r.Mean(), exact.Mean())
	}
	if r.Max() != exact.Max() {
		t.Errorf("reservoir max %v != exact max %v", r.Max(), exact.Max())
	}
}

// TestReservoirPercentileErrorBounds pins the estimation quality: with a
// 2048-sample reservoir over uniform observations, each percentile estimate
// must land within a few standard errors (sqrt(p(1-p)/capacity) quantile
// units for the uniform density) of the exact order statistic.
func TestReservoirPercentileErrorBounds(t *testing.T) {
	const capacity = 2048
	const n = 100000
	r := NewReservoir(capacity, 7)
	exact := &Summary{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		v := rng.Float64()
		r.Add(v)
		exact.Add(v)
	}
	for _, p := range []float64{10, 50, 90, 95, 99} {
		q := p / 100
		tol := 4 * math.Sqrt(q*(1-q)/capacity)
		got, want := r.Percentile(p), exact.Percentile(p)
		if math.Abs(got-want) > tol {
			t.Errorf("p%v: reservoir %v vs exact %v exceeds tolerance %v", p, got, want, tol)
		}
	}
}

func TestReservoirBelowCapacityMatchesExact(t *testing.T) {
	r := NewReservoir(100, 5)
	exact := &Summary{}
	for _, v := range []float64{5, 1, 4, 2, 3} {
		r.Add(v)
		exact.Add(v)
	}
	for _, p := range []float64{0, 25, 50, 75, 100} {
		if r.Percentile(p) != exact.Percentile(p) {
			t.Errorf("p%v: %v != %v before capacity is reached", p, r.Percentile(p), exact.Percentile(p))
		}
	}
	if r.Stddev() != exact.Stddev() {
		t.Errorf("stddev %v != %v before capacity is reached", r.Stddev(), exact.Stddev())
	}
}
