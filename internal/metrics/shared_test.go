package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestSharedReservoirConcurrentAccuracy hammers one shared reservoir from
// many goroutines and checks that the percentile estimates stay close to
// the true quantiles of the inserted distribution while the exact
// statistics (count, max) stay exact. This is the load-harness usage
// pattern: every in-flight task goroutine records its latency into the same
// reservoir.
func TestSharedReservoirConcurrentAccuracy(t *testing.T) {
	const (
		workers   = 8
		perWorker = 50_000
		capacity  = 4096
	)
	s := NewSharedReservoir(capacity, 42)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic values uniform on [0, 1): a lattice sweep per
			// worker, offset so workers interleave distinct values.
			for i := 0; i < perWorker; i++ {
				v := (float64(i)*float64(workers) + float64(w)) / float64(workers*perWorker)
				s.Add(v)
			}
		}(w)
	}
	wg.Wait()

	total := workers * perWorker
	if got := s.Count(); got != total {
		t.Fatalf("Count() = %d, want %d", got, total)
	}
	wantMax := (float64(perWorker-1)*float64(workers) + float64(workers-1)) / float64(workers*perWorker)
	if got := s.Max(); got != wantMax {
		t.Errorf("Max() = %v, want %v", got, wantMax)
	}
	if got := s.Mean(); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("Mean() = %v, want ~0.5", got)
	}
	// Reservoir percentiles over a uniform sample of n values have standard
	// error ~sqrt(p(1-p)/n); 5 sigma at n=4096 is under 0.04 for the median.
	got := s.Percentiles(50, 95, 99)
	for i, want := range []float64{0.50, 0.95, 0.99} {
		if math.Abs(got[i]-want) > 0.05 {
			t.Errorf("Percentile(%v) = %v, want within 0.05 of %v", want*100, got[i], want)
		}
	}
	// Single-percentile reads agree with the batched path.
	if one := s.Percentile(95); one != got[1] {
		t.Errorf("Percentile(95) = %v, Percentiles(...)[1] = %v", one, got[1])
	}
}
