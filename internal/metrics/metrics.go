// Package metrics accumulates task-completion-time statistics and renders
// the aligned text tables the benchmark harness prints.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Summary accumulates scalar observations (task completion times, queue
// lengths) and reports order statistics. The zero value retains every
// observation; NewReservoir builds a bounded-memory variant.
type Summary struct {
	values []float64
	sum    float64
	sorted bool

	// Reservoir mode (NewReservoir): capacity bounds values, seen counts all
	// observations, rng drives Algorithm R replacement, and min/max stay
	// exact. capacity == 0 means unbounded (the zero value).
	capacity int
	seen     int
	rng      *rand.Rand
	min, max float64
}

// NewReservoir returns a Summary whose memory is bounded at capacity
// observations: once full, each new observation replaces a uniformly random
// slot with probability capacity/seen (Vitter's Algorithm R), leaving a
// uniform sample of everything seen. Count, Mean and Max remain exact;
// percentiles are estimated from the sample. Long-horizon runs use this to
// keep per-task statistics from growing without bound.
func NewReservoir(capacity int, seed int64) *Summary {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Summary{capacity: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.seen == 0 || v < s.min {
		s.min = v
	}
	if s.seen == 0 || v > s.max {
		s.max = v
	}
	s.seen++
	s.sum += v
	if s.capacity > 0 && len(s.values) >= s.capacity {
		if j := s.rng.Intn(s.seen); j < s.capacity {
			s.values[j] = v
			s.sorted = false
		}
		return
	}
	s.values = append(s.values, v)
	s.sorted = false
}

// Count returns the number of observations (all of them, even those no
// longer retained in reservoir mode).
func (s *Summary) Count() int { return s.seen }

// SampleSize returns how many observations are retained; below Count once a
// reservoir has wrapped.
func (s *Summary) SampleSize() int { return len(s.values) }

// Mean returns the arithmetic mean over every observation (0 when empty).
func (s *Summary) Mean() float64 {
	if s.seen == 0 {
		return 0
	}
	return s.sum / float64(s.seen)
}

// Percentile returns the p-th percentile (nearest-rank), p in [0, 100].
func (s *Summary) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.values))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.values) {
		rank = len(s.values)
	}
	return s.values[rank-1]
}

// Max returns the largest observation (0 when empty); exact even in
// reservoir mode.
func (s *Summary) Max() float64 { return s.max }

// Stddev returns the population standard deviation of the retained
// observations (a sample estimate in reservoir mode).
func (s *Summary) Stddev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	var mean float64
	for _, v := range s.values {
		mean += v
	}
	mean /= float64(n)
	var acc float64
	for _, v := range s.values {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n))
}

// Series is a time-indexed sequence of values (per-slot TCT, queue length).
type Series struct {
	// Values are the per-step observations, in order.
	Values []float64
}

// Append records the next step's value.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Mean returns the series mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Window returns the mean over the half-open index range [lo, hi).
func (s *Series) Window(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.Values) {
		hi = len(s.Values)
	}
	if hi <= lo {
		return 0
	}
	var sum float64
	for _, v := range s.Values[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// Histogram renders the distribution of a summary's observations as a
// log-friendly text bar chart: fixed-width buckets between the observed
// minimum and maximum.
type Histogram struct {
	// Buckets is the number of bins (default 10 when zero).
	Buckets int
	// BarWidth is the maximum bar length in characters (default 40).
	BarWidth int
}

// Render draws the histogram of the summary's observations.
func (h Histogram) Render(s *Summary) string {
	if s.Count() == 0 {
		return "(no observations)\n"
	}
	buckets := h.Buckets
	if buckets <= 0 {
		buckets = 10
	}
	barWidth := h.BarWidth
	if barWidth <= 0 {
		barWidth = 40
	}
	lo, hi := s.Percentile(0), s.Percentile(100)
	if hi == lo {
		return fmt.Sprintf("%12.4g  all %d observations\n", lo, s.Count())
	}
	counts := make([]int, buckets)
	width := (hi - lo) / float64(buckets)
	for _, v := range s.values {
		idx := int((v - lo) / width)
		if idx >= buckets {
			idx = buckets - 1
		}
		counts[idx]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		bar := strings.Repeat("#", c*barWidth/maxCount)
		fmt.Fprintf(&b, "%12.4g..%-12.4g %6d %s\n", lo+float64(i)*width, lo+float64(i+1)*width, c, bar)
	}
	return b.String()
}

// Table renders aligned experiment output: a header row and data rows, all
// left-aligned in columns. It is deliberately plain text so experiment
// output diffs cleanly.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// CSV renders the table as comma-separated values (header row first),
// quoting cells that contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
