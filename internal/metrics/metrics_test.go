package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Count() != 0 || s.Max() != 0 {
		t.Error("empty summary should report zeros")
	}
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Count() != 3 {
		t.Errorf("Count() = %d", s.Count())
	}
	if s.Mean() != 2 {
		t.Errorf("Mean() = %v, want 2", s.Mean())
	}
	if s.Max() != 3 {
		t.Errorf("Max() = %v, want 3", s.Max())
	}
	if got := s.Percentile(50); got != 2 {
		t.Errorf("P50 = %v, want 2", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
}

func TestSummaryAddAfterPercentile(t *testing.T) {
	var s Summary
	s.Add(5)
	_ = s.Percentile(50)
	s.Add(1)
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 after late Add = %v, want 1", got)
	}
}

func TestSummaryStddev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Stddev() = %v, want 2", got)
	}
}

func TestSummaryPercentileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		p := s.Percentile(float64(pRaw) / 255 * 100)
		return p >= lo && p <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 {
		t.Error("empty series mean should be 0")
	}
	for i := 1; i <= 10; i++ {
		s.Append(float64(i))
	}
	if got := s.Mean(); got != 5.5 {
		t.Errorf("Mean() = %v, want 5.5", got)
	}
	if got := s.Window(0, 5); got != 3 {
		t.Errorf("Window(0,5) = %v, want 3", got)
	}
	if got := s.Window(8, 100); got != 9.5 {
		t.Errorf("Window(8,100) = %v, want 9.5", got)
	}
	if got := s.Window(5, 5); got != 0 {
		t.Errorf("Window(5,5) = %v, want 0", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("scheme", "tct_ms", "speedup")
	tb.AddRow("LEIME", 12.5, "1.0x")
	tb.AddRow("DDNN", 234.25, "18.7x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scheme") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "LEIME") || !strings.Contains(lines[2], "12.5") {
		t.Errorf("row content wrong: %q", lines[2])
	}
	// Columns align: 'tct_ms' column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "tct_ms")
	if !strings.HasPrefix(lines[2][idx:], "12.5") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(0.0)
	tb.AddRow(1234567.0)
	tb.AddRow(0.0000001)
	tb.AddRow(3.14159)
	out := tb.String()
	for _, want := range []string{"0\n", "1.235e+06", "1.000e-07", "3.1416"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRendering(t *testing.T) {
	var s Summary
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10))
	}
	out := Histogram{Buckets: 5, BarWidth: 20}.Render(&s)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 bucket lines, got %d:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.Contains(l, "#") {
			t.Errorf("bucket with no bar: %q", l)
		}
		if !strings.Contains(l, "20 ") {
			t.Errorf("uniform distribution should have 20 per bucket: %q", l)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var empty Summary
	if out := (Histogram{}).Render(&empty); !strings.Contains(out, "no observations") {
		t.Errorf("empty summary render: %q", out)
	}
	var constant Summary
	for i := 0; i < 5; i++ {
		constant.Add(3.14)
	}
	if out := (Histogram{}).Render(&constant); !strings.Contains(out, "all 5") {
		t.Errorf("constant summary render: %q", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("scheme", "note")
	tb.AddRow("LEIME", "fast, stable")
	tb.AddRow("DDNN", `says "deep"`)
	got := tb.CSV()
	want := "scheme,note\nLEIME,\"fast, stable\"\nDDNN,\"says \"\"deep\"\"\"\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", got, want)
	}
}
