// Package model represents deep neural networks the way LEIME reasons about
// them: as a chain of atomic elements (convolutional layers, or convolutional
// blocks for residual/inception/fire architectures), each with an analytic
// floating-point-operation count and an intermediate-data size, plus a
// candidate early-exit classifier after every element.
//
// This package is the offline-profiling substrate of the reproduction: the
// original system obtained per-layer FLOPs and tensor sizes by profiling
// PyTorch models; here they are derived analytically from the published
// architectures at CIFAR-10 input resolution (32x32x3). Every decision LEIME
// makes (exit setting, partitioning, offloading) consumes only these numbers,
// never network weights.
package model

import (
	"fmt"
	"math"
)

// Shape is the spatial/channel shape of an activation tensor.
type Shape struct {
	H, W, C int
}

// Elems returns the number of scalar elements in the shape.
func (s Shape) Elems() int { return s.H * s.W * s.C }

// Bytes returns the tensor size in bytes at float32 precision, which is what
// crosses the network when inference is partitioned after this tensor.
func (s Shape) Bytes() float64 { return float64(s.Elems()) * 4 }

// String renders the shape as HxWxC.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// ConvSpec describes one primitive convolution inside an element, with its
// concrete input shape, so FLOPs are reconstructible and cross-checkable
// against an executing engine.
type ConvSpec struct {
	In     Shape
	OutC   int
	Kernel int
	Stride int
	Pad    int
}

// OutShape returns the convolution's output shape.
func (c ConvSpec) OutShape() Shape {
	h := (c.In.H+2*c.Pad-c.Kernel)/c.Stride + 1
	w := (c.In.W+2*c.Pad-c.Kernel)/c.Stride + 1
	return Shape{H: h, W: w, C: c.OutC}
}

// FLOPs returns the multiply–add operation count of the convolution
// (2 * K * K * Cin per output element).
func (c ConvSpec) FLOPs() float64 {
	out := c.OutShape()
	return 2 * float64(c.Kernel) * float64(c.Kernel) * float64(c.In.C) * float64(out.Elems())
}

// Element is one atomic chain element: a convolutional layer or block, with
// any following pooling/activation folded into its cost. A candidate early
// exit sits after every element.
type Element struct {
	// Name labels the element (e.g. "conv3-64", "res64-2", "inceptionA-1").
	Name string
	// FLOPs is the element's total floating-point operation count (mu_l_i).
	FLOPs float64
	// Out is the activation shape after the element (and its folded pool).
	Out Shape
	// Convs lists the primitive convolutions the element comprises, for
	// cross-checking against an executing tensor engine. May be empty for
	// synthetic profiles.
	Convs []ConvSpec
	// ExtraFLOPs is the non-convolutional cost folded into the element
	// (activations, pooling, residual adds, concatenation); FLOPs is always
	// the sum of the conv FLOPs and ExtraFLOPs.
	ExtraFLOPs float64
	// Graph is the element's executable internal structure; nil for
	// synthetic profiles. When present, FLOPs, Out and Convs are derived
	// from it, so the analytic numbers equal executed operation counts.
	Graph *Graph
}

// OutBytes is the intermediate-data size (d_l_i) if the chain is cut after
// this element.
func (e Element) OutBytes() float64 { return e.Out.Bytes() }

// ExitHiddenUnits is the width of the first fully-connected layer in every
// early-exit classifier. The paper's exits are a pooling layer, two
// fully-connected layers, and a softmax (§II-B Task model).
const ExitHiddenUnits = 128

// NumClasses is the classifier output width (CIFAR-10).
const NumClasses = 10

// ExitFLOPs returns the operation count of an early-exit classifier attached
// to an activation of the given shape: global average pool + FC(C->128) +
// FC(128->classes) + softmax.
func ExitFLOPs(s Shape) float64 {
	pool := float64(s.Elems())
	fc1 := 2 * float64(s.C) * ExitHiddenUnits
	fc2 := 2 * float64(ExitHiddenUnits) * NumClasses
	softmax := 3 * float64(NumClasses)
	return pool + fc1 + fc2 + softmax
}

// Profile is a full chain profile of one DNN: the input, the ordered
// elements, and (implicitly) one candidate exit after each element. Exits
// are addressed with 1-based indices exit-1..exit-m to match the paper.
//
// Profiles built by this package (the architecture constructors and
// ReadJSON) carry prefix-sum caches that make CumulativeFLOPs, RangeFLOPs,
// DataBytes, ExitClassifierFLOPs and TotalFLOPs O(1); the exit-setting cost
// model and both solvers depend on this for their advertised complexity.
// The caches are derived from Elements and InputBytes: any code that
// mutates either after construction must call BuildCaches again, or the
// cached accessors will serve stale numbers. A cache whose length no longer
// matches len(Elements) is ignored (the accessors fall back to the naive
// O(m) loops), so appending or truncating elements degrades to correct but
// slow; in-place FLOPs/shape edits are the silent-staleness case. A profile
// whose caches are built and never mutated afterwards is safe for
// concurrent readers.
type Profile struct {
	// Name is the architecture name (e.g. "inception-v3").
	Name string
	// Input is the input tensor shape.
	Input Shape
	// InputBytes is the size of a raw task input as transmitted over the
	// network (d_0). CIFAR-10 images travel as 8-bit pixels.
	InputBytes float64
	// Elements is the layer/block chain, in execution order. See the type
	// comment: mutating this slice invalidates the prefix-sum caches.
	Elements []Element

	// prefixFLOPs[i] is the backbone operation count of elements 1..i
	// (prefixFLOPs[0] == 0, len m+1).
	prefixFLOPs []float64
	// exitFLOPs[i-1] is ExitFLOPs(Elements[i-1].Out) (len m).
	exitFLOPs []float64
	// outBytes[i] is DataBytes(i): outBytes[0] == InputBytes, then the
	// per-element intermediate-data sizes (len m+1).
	outBytes []float64
}

// BuildCaches (re)computes the profile's prefix-sum caches from Elements
// and InputBytes. Architecture constructors and ReadJSON call it; callers
// only need it after mutating Elements in place. It returns the profile for
// chaining.
func (p *Profile) BuildCaches() *Profile {
	m := len(p.Elements)
	p.prefixFLOPs = make([]float64, m+1)
	p.exitFLOPs = make([]float64, m)
	p.outBytes = make([]float64, m+1)
	p.outBytes[0] = p.InputBytes
	for i, e := range p.Elements {
		p.prefixFLOPs[i+1] = p.prefixFLOPs[i] + e.FLOPs
		p.exitFLOPs[i] = ExitFLOPs(e.Out)
		p.outBytes[i+1] = e.OutBytes()
	}
	return p
}

// cached reports whether the prefix-sum caches match the current element
// count; stale or absent caches route accessors to the naive loops.
func (p *Profile) cached() bool { return len(p.prefixFLOPs) == len(p.Elements)+1 }

// NumExits returns m, the number of candidate exits (one after each element).
func (p *Profile) NumExits() int { return len(p.Elements) }

// LayerFLOPs returns mu_l_i for the 1-based element index i.
func (p *Profile) LayerFLOPs(i int) float64 { return p.Elements[i-1].FLOPs }

// DataBytes returns d_l_i, the bytes crossing the network if the chain is
// cut after the 1-based element index i. DataBytes(0) returns the raw input
// size d_0.
func (p *Profile) DataBytes(i int) float64 {
	if p.cached() {
		return p.outBytes[i]
	}
	if i == 0 {
		return p.InputBytes
	}
	return p.Elements[i-1].OutBytes()
}

// ExitClassifierFLOPs returns mu_exit_i for the 1-based exit index i.
func (p *Profile) ExitClassifierFLOPs(i int) float64 {
	if p.cached() {
		return p.exitFLOPs[i-1]
	}
	return ExitFLOPs(p.Elements[i-1].Out)
}

// TotalFLOPs returns the backbone operation count (no exit classifiers).
func (p *Profile) TotalFLOPs() float64 {
	return p.CumulativeFLOPs(len(p.Elements))
}

// CumulativeFLOPs returns the backbone operation count of elements 1..i
// (1-based, inclusive); CumulativeFLOPs(0) is 0.
func (p *Profile) CumulativeFLOPs(i int) float64 {
	if p.cached() {
		return p.prefixFLOPs[i]
	}
	var sum float64
	for j := 0; j < i; j++ {
		sum += p.Elements[j].FLOPs
	}
	return sum
}

// RangeFLOPs returns the backbone operation count of elements lo+1..hi
// (1-based, i.e. the work between cut points lo and hi).
func (p *Profile) RangeFLOPs(lo, hi int) float64 {
	return p.CumulativeFLOPs(hi) - p.CumulativeFLOPs(lo)
}

// DepthFraction returns the fraction of total backbone FLOPs completed after
// the 1-based element index i. It is the depth coordinate the confidence
// model uses.
func (p *Profile) DepthFraction(i int) float64 {
	total := p.TotalFLOPs()
	if total == 0 {
		return 0
	}
	return p.CumulativeFLOPs(i) / total
}

// Validate reports whether the profile is internally consistent: positive
// FLOPs, consistent conv shapes, and positive data sizes.
func (p *Profile) Validate() error {
	if len(p.Elements) < 3 {
		return fmt.Errorf("model: profile %q has %d elements, need at least 3 for a 3-exit ME-DNN", p.Name, len(p.Elements))
	}
	if p.InputBytes <= 0 {
		return fmt.Errorf("model: profile %q has non-positive input size", p.Name)
	}
	for i, e := range p.Elements {
		if e.FLOPs <= 0 {
			return fmt.Errorf("model: profile %q element %d (%s) has non-positive FLOPs", p.Name, i+1, e.Name)
		}
		if e.Out.Elems() <= 0 {
			return fmt.Errorf("model: profile %q element %d (%s) has empty output shape", p.Name, i+1, e.Name)
		}
		convSum := e.ExtraFLOPs
		for _, c := range e.Convs {
			convSum += c.FLOPs()
		}
		if len(e.Convs) > 0 && math.Abs(convSum-e.FLOPs) > 1e-6*e.FLOPs {
			return fmt.Errorf("model: profile %q element %d (%s): conv specs + extra sum to %v FLOPs but element declares %v",
				p.Name, i+1, e.Name, convSum, e.FLOPs)
		}
		if e.Graph != nil {
			if err := e.Graph.Validate(); err != nil {
				return fmt.Errorf("model: profile %q element %d (%s): %w", p.Name, i+1, e.Name, err)
			}
			if math.Abs(e.Graph.FLOPs()-e.FLOPs) > 1e-6*e.FLOPs {
				return fmt.Errorf("model: profile %q element %d (%s): graph FLOPs %v != element FLOPs %v",
					p.Name, i+1, e.Name, e.Graph.FLOPs(), e.FLOPs)
			}
			if e.Graph.OutShape() != e.Out {
				return fmt.Errorf("model: profile %q element %d (%s): graph output %v != element output %v",
					p.Name, i+1, e.Name, e.Graph.OutShape(), e.Out)
			}
		}
	}
	return nil
}

// MEDNN is a multi-exit DNN built from a profile by selecting a First,
// Second and Third exit (the Third is always the original final exit,
// exit-m), and partitioning the chain into three blocks deployed on device,
// edge and cloud.
type MEDNN struct {
	// Profile is the underlying chain profile.
	Profile *Profile
	// E1, E2, E3 are the 1-based exit indices, E1 < E2 < E3 = m.
	E1, E2, E3 int
	// Sigma holds the exit probabilities [sigma_1, sigma_2, sigma_3] of the
	// three exits; Sigma[2] is always 1.
	Sigma [3]float64
}

// NewMEDNN validates the exit choice and builds the multi-exit network.
// sigma gives the cumulative exit probability at each of the m candidate
// exits (monotone non-decreasing, sigma[m-1] == 1).
func NewMEDNN(p *Profile, e1, e2 int, sigma []float64) (*MEDNN, error) {
	m := p.NumExits()
	if len(sigma) != m {
		return nil, fmt.Errorf("model: sigma has %d entries, profile %q has %d exits", len(sigma), p.Name, m)
	}
	if !(1 <= e1 && e1 < e2 && e2 < m) {
		return nil, fmt.Errorf("model: invalid exit combination (%d, %d, %d): need 1 <= e1 < e2 < m", e1, e2, m)
	}
	return &MEDNN{
		Profile: p,
		E1:      e1,
		E2:      e2,
		E3:      m,
		Sigma:   [3]float64{sigma[e1-1], sigma[e2-1], sigma[m-1]},
	}, nil
}

// BlockFLOPs returns [mu_1, mu_2, mu_3]: the operation counts of the three
// blocks, each including its exit classifier.
func (n *MEDNN) BlockFLOPs() [3]float64 {
	p := n.Profile
	return [3]float64{
		p.RangeFLOPs(0, n.E1) + p.ExitClassifierFLOPs(n.E1),
		p.RangeFLOPs(n.E1, n.E2) + p.ExitClassifierFLOPs(n.E2),
		p.RangeFLOPs(n.E2, n.E3) + p.ExitClassifierFLOPs(n.E3),
	}
}

// DataBytes returns [d_0, d_1, d_2]: the raw input size and the
// intermediate-data sizes after the First and Second exits.
func (n *MEDNN) DataBytes() [3]float64 {
	p := n.Profile
	return [3]float64{p.DataBytes(0), p.DataBytes(n.E1), p.DataBytes(n.E2)}
}

// String renders the exit combination compactly, e.g.
// "inception-v3{exit-1,exit-14,exit-16}".
func (n *MEDNN) String() string {
	return fmt.Sprintf("%s{exit-%d,exit-%d,exit-%d}", n.Profile.Name, n.E1, n.E2, n.E3)
}
