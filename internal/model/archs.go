package model

import "fmt"

// RawInputBytes is the size of one raw CIFAR-10 task input on the wire:
// 32x32x3 8-bit pixels plus a small header.
const RawInputBytes = 32*32*3 + 16

// chain incrementally builds a Profile, tracking the running activation
// shape so every element's graph, FLOPs and output bytes stay
// self-consistent.
type chain struct {
	p     Profile
	shape Shape
}

func newChain(name string) *chain {
	s := Shape{H: 32, W: 32, C: 3}
	return &chain{
		p:     Profile{Name: name, Input: s, InputBytes: RawInputBytes},
		shape: s,
	}
}

// element appends one chain element whose internals are described by the
// graph the build callback assembles (node 0 is the element's input).
func (c *chain) element(name string, build func(b *GraphBuilder)) {
	b := NewGraphBuilder(c.shape)
	build(b)
	g := b.Finish()
	c.p.Elements = append(c.p.Elements, elementFromGraph(name, g))
	c.shape = g.OutShape()
}

// elementFromGraph derives every element field from its graph, so the
// analytic numbers are exactly what executing the graph performs.
func elementFromGraph(name string, g *Graph) Element {
	convs := g.Convs()
	var convSum float64
	for _, cs := range convs {
		convSum += cs.FLOPs()
	}
	flops := g.FLOPs()
	return Element{
		Name:       name,
		FLOPs:      flops,
		Out:        g.OutShape(),
		Convs:      convs,
		ExtraFLOPs: flops - convSum,
		Graph:      g,
	}
}

// conv appends one convolutional element (conv + ReLU).
func (c *chain) conv(name string, outC, kernel, stride, pad int) {
	c.element(name, func(b *GraphBuilder) {
		b.ReLU(b.Conv(0, outC, kernel, stride, pad))
	})
}

// pool folds a max-pool into the most recent element: the paper treats
// convolutional layers as the atomic chain elements, so pooling between them
// is charged to the preceding layer. The element's graph gains a pool node
// and its derived fields are refreshed.
func (c *chain) pool(kernel, stride int) {
	if len(c.p.Elements) == 0 {
		panic("model: pool before any element")
	}
	e := &c.p.Elements[len(c.p.Elements)-1]
	g := e.Graph
	last := len(g.Nodes) - 1
	in := g.Nodes[last].Out
	h := (in.H-kernel)/stride + 1
	w := (in.W-kernel)/stride + 1
	g.Nodes = append(g.Nodes, GraphNode{
		Kind: OpMaxPool, Kernel: kernel, Stride: stride,
		Inputs: []int{last}, Out: Shape{H: h, W: w, C: in.C},
	})
	*e = elementFromGraph(e.Name, g)
	c.shape = e.Out
}

// VGG16 returns the CIFAR-adapted VGG-16 profile: 13 convolutional layers
// (m = 13 candidate exits), max-pools folded into the preceding conv.
func VGG16() *Profile {
	b := newChain("vgg-16")
	widths := []struct {
		reps, c int
	}{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	layer := 0
	for _, st := range widths {
		for r := 0; r < st.reps; r++ {
			layer++
			b.conv(fmt.Sprintf("conv%d-%d", layer, st.c), st.c, 3, 1, 1)
		}
		b.pool(2, 2)
	}
	return b.done()
}

// basicBlock appends a ResNet-34 basic block: two 3x3 convolutions with a
// residual add (plus a 1x1 projection when the shape changes) and a final
// ReLU.
func (c *chain) basicBlock(name string, outC, stride int) {
	c.element(name, func(b *GraphBuilder) {
		c1 := b.Conv(0, outC, 3, stride, 1)
		c2 := b.Conv(c1, outC, 3, 1, 1)
		skip := 0
		in := b.g.Nodes[0].Out
		if stride != 1 || in.C != outC {
			skip = b.Conv(0, outC, 1, stride, 0)
		}
		b.ReLU(b.Add(c2, skip))
	})
}

// ResNet34 returns the CIFAR-adapted ResNet-34 profile: a 3x3 stem plus 16
// basic residual blocks (m = 17 candidate exits).
func ResNet34() *Profile {
	b := newChain("resnet-34")
	b.conv("stem-conv3-64", 64, 3, 1, 1)
	stages := []struct {
		blocks, c, firstStride int
	}{{3, 64, 1}, {4, 128, 2}, {6, 256, 2}, {3, 512, 2}}
	for si, st := range stages {
		for r := 0; r < st.blocks; r++ {
			stride := 1
			if r == 0 {
				stride = st.firstStride
			}
			b.basicBlock(fmt.Sprintf("res%d-%d", si+1, r+1), st.c, stride)
		}
	}
	return b.done()
}

// inceptionModule appends a four-branch inception element: 1x1, 1x1->5x5,
// 1x1->3x3->3x3, and avg-pool->1x1 projection, concatenated on channels.
func (c *chain) inceptionModule(name string, b1, b5red, b5, b3red, b3, poolProj int) {
	c.element(name, func(b *GraphBuilder) {
		br1 := b.Conv(0, b1, 1, 1, 0)
		m2 := b.Conv(0, b5red, 1, 1, 0)
		br2 := b.Conv(m2, b5, 5, 1, 2)
		m3 := b.Conv(0, b3red, 1, 1, 0)
		m3 = b.Conv(m3, b3, 3, 1, 1)
		br3 := b.Conv(m3, b3, 3, 1, 1)
		pp := b.AvgPool(0, 3, 1, 1)
		br4 := b.Conv(pp, poolProj, 1, 1, 0)
		b.Concat(br1, br2, br3, br4)
	})
}

// reductionModule appends a spatial-reduction inception element: strided
// 3x3, 1x1 -> 3x3 -> strided 3x3, and a strided max pool, concatenated.
func (c *chain) reductionModule(name string, b3, dredIn, dred int) {
	c.element(name, func(b *GraphBuilder) {
		o1 := b.Conv(0, b3, 3, 2, 1)
		m := b.Conv(0, dredIn, 1, 1, 0)
		m = b.Conv(m, dred, 3, 1, 1)
		o2 := b.Conv(m, dred, 3, 2, 1)
		pb := b.MaxPool(0, 3, 2, 1)
		b.Concat(o1, o2, pb)
	})
}

// InceptionV3 returns the CIFAR-adapted Inception v3 profile: a 3-conv stem,
// three A modules, a reduction, five B modules, a reduction, and two C
// modules plus a 1x1 head (m = 16 candidate exits; the paper's experiments
// reference exits 1, 14 and 16 of its chain).
func InceptionV3() *Profile {
	b := newChain("inception-v3")
	b.conv("stem-conv3-32", 32, 3, 1, 1)
	b.conv("stem-conv3-48", 48, 3, 1, 1)
	b.conv("stem-conv3-64", 64, 3, 1, 1)
	b.pool(2, 2) // 16x16
	b.inceptionModule("inceptionA-1", 64, 48, 64, 64, 96, 32)
	b.inceptionModule("inceptionA-2", 64, 48, 64, 64, 96, 64)
	b.inceptionModule("inceptionA-3", 64, 48, 64, 64, 96, 64)
	b.reductionModule("reductionA", 384, 64, 96) // 8x8
	b.inceptionModule("inceptionB-1", 192, 128, 192, 128, 192, 192)
	b.inceptionModule("inceptionB-2", 192, 160, 192, 160, 192, 192)
	b.inceptionModule("inceptionB-3", 192, 160, 192, 160, 192, 192)
	b.inceptionModule("inceptionB-4", 192, 160, 192, 160, 192, 192)
	b.inceptionModule("inceptionB-5", 192, 192, 192, 192, 192, 192)
	b.reductionModule("reductionB", 320, 192, 192) // 4x4
	b.inceptionModule("inceptionC-1", 320, 384, 384, 448, 384, 192)
	b.inceptionModule("inceptionC-2", 320, 384, 384, 448, 384, 192)
	b.conv("head-conv1-512", 512, 1, 1, 0)
	return b.done()
}

// fireModule appends a SqueezeNet fire module: a 1x1 squeeze followed by
// parallel 1x1 and 3x3 expands, concatenated.
func (c *chain) fireModule(name string, squeeze, expand1, expand3 int) {
	c.element(name, func(b *GraphBuilder) {
		sq := b.Conv(0, squeeze, 1, 1, 0)
		e1 := b.Conv(sq, expand1, 1, 1, 0)
		e3 := b.Conv(sq, expand3, 3, 1, 1)
		b.Concat(e1, e3)
	})
}

// SqueezeNet10 returns the CIFAR-adapted SqueezeNet 1.0 profile: a stem
// conv, eight fire modules with interleaved pools, and the final 1x1
// classifier conv (m = 10 candidate exits).
func SqueezeNet10() *Profile {
	b := newChain("squeezenet-1.0")
	b.conv("stem-conv3-96", 96, 3, 1, 1)
	b.pool(2, 2) // 16x16
	b.fireModule("fire2", 16, 64, 64)
	b.fireModule("fire3", 16, 64, 64)
	b.fireModule("fire4", 32, 128, 128)
	b.pool(2, 2) // 8x8
	b.fireModule("fire5", 32, 128, 128)
	b.fireModule("fire6", 48, 192, 192)
	b.fireModule("fire7", 48, 192, 192)
	b.fireModule("fire8", 64, 256, 256)
	b.pool(2, 2) // 4x4
	b.fireModule("fire9", 64, 256, 256)
	b.conv("conv10-cls", 128, 1, 1, 0)
	return b.done()
}

func (c *chain) done() *Profile {
	out := c.p
	return out.BuildCaches()
}

// All returns the four paper architectures, in the paper's evaluation order.
func All() []*Profile {
	return []*Profile{SqueezeNet10(), VGG16(), InceptionV3(), ResNet34()}
}

// ByName returns the named profile or an error listing valid names.
func ByName(name string) (*Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, 4)
	for _, p := range All() {
		names = append(names, p.Name)
	}
	return nil, fmt.Errorf("model: unknown profile %q (have %v)", name, names)
}
