package model

import (
	"math"
	"strings"
	"testing"
)

func TestGraphBuilderSimpleChain(t *testing.T) {
	b := NewGraphBuilder(Shape{H: 8, W: 8, C: 3})
	c := b.Conv(0, 16, 3, 1, 1)
	r := b.ReLU(c)
	b.MaxPool(r, 2, 2, 0)
	g := b.Finish()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.OutShape(); got != (Shape{H: 4, W: 4, C: 16}) {
		t.Errorf("OutShape = %v", got)
	}
	wantFLOPs := 2.0*3*3*3*8*8*16 + 8*8*16 + 4*4*4*16
	if got := g.FLOPs(); math.Abs(got-wantFLOPs) > 1e-9 {
		t.Errorf("FLOPs = %v, want %v", got, wantFLOPs)
	}
	if got := len(g.Convs()); got != 1 {
		t.Errorf("Convs = %d, want 1", got)
	}
}

func TestGraphBuilderBranches(t *testing.T) {
	in := Shape{H: 4, W: 4, C: 8}
	b := NewGraphBuilder(in)
	left := b.Conv(0, 4, 1, 1, 0)
	right := b.Conv(0, 12, 3, 1, 1)
	b.Concat(left, right)
	g := b.Finish()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.OutShape(); got != (Shape{H: 4, W: 4, C: 16}) {
		t.Errorf("OutShape = %v", got)
	}
}

func TestGraphBuilderResidual(t *testing.T) {
	in := Shape{H: 4, W: 4, C: 8}
	b := NewGraphBuilder(in)
	c1 := b.Conv(0, 8, 3, 1, 1)
	sum := b.Add(c1, 0)
	b.ReLU(sum)
	g := b.Finish()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.OutShape() != in {
		t.Errorf("residual output %v != input %v", g.OutShape(), in)
	}
}

func TestGraphValidateCatchesCorruption(t *testing.T) {
	build := func() *Graph {
		b := NewGraphBuilder(Shape{H: 4, W: 4, C: 3})
		c := b.Conv(0, 8, 3, 1, 1)
		b.ReLU(c)
		return b.Finish()
	}
	cases := []struct {
		name    string
		mutate  func(g *Graph)
		wantSub string
	}{
		{"empty", func(g *Graph) { g.Nodes = nil }, "empty"},
		{"no input head", func(g *Graph) { g.Nodes[0].Kind = OpReLU }, "input"},
		{"forward reference", func(g *Graph) { g.Nodes[1].Inputs = []int{2} }, "not topological"},
		{"conv shape lie", func(g *Graph) { g.Nodes[1].Out.C = 99 }, "conv output"},
		{"conv input mismatch", func(g *Graph) { g.Nodes[1].Conv.In.C = 7 }, "expects input"},
		{"relu shape change", func(g *Graph) { g.Nodes[2].Out.C = 1 }, "relu"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := build()
			c.mutate(g)
			err := g.Validate()
			if err == nil {
				t.Fatal("corruption accepted")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestGraphValidatePoolAndAddAndConcatErrors(t *testing.T) {
	// Pool with a lying output shape.
	b := NewGraphBuilder(Shape{H: 4, W: 4, C: 3})
	p := b.MaxPool(0, 2, 2, 0)
	_ = p
	g := b.Finish()
	g.Nodes[1].Out.H = 3
	if err := g.Validate(); err == nil {
		t.Error("pool shape lie accepted")
	}
	// Add with mismatched operands.
	b2 := NewGraphBuilder(Shape{H: 4, W: 4, C: 3})
	c := b2.Conv(0, 8, 3, 1, 1)
	b2.Add(c, 0) // 8 channels + 3 channels
	if err := b2.Finish().Validate(); err == nil {
		t.Error("mismatched add accepted")
	}
	// Concat with a spatial mismatch.
	b3 := NewGraphBuilder(Shape{H: 4, W: 4, C: 3})
	small := b3.MaxPool(0, 2, 2, 0)
	b3.Concat(small, 0)
	if err := b3.Finish().Validate(); err == nil {
		t.Error("spatially mismatched concat accepted")
	}
}

func TestAllArchitectureGraphsValidate(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for i, e := range p.Elements {
				if e.Graph == nil {
					t.Fatalf("element %d (%s) has no graph", i+1, e.Name)
				}
				if err := e.Graph.Validate(); err != nil {
					t.Errorf("element %d (%s): %v", i+1, e.Name, err)
				}
				if math.Abs(e.Graph.FLOPs()-e.FLOPs) > 1e-9*e.FLOPs {
					t.Errorf("element %d (%s): graph FLOPs %v != element %v", i+1, e.Name, e.Graph.FLOPs(), e.FLOPs)
				}
			}
		})
	}
}

func TestOpKindString(t *testing.T) {
	for kind, want := range map[OpKind]string{
		OpInput: "input", OpConv: "conv", OpReLU: "relu",
		OpMaxPool: "maxpool", OpAvgPool: "avgpool", OpAdd: "add", OpConcat: "concat",
		OpKind(99): "opkind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}

func TestGraphNodeFLOPsPerKind(t *testing.T) {
	shape := Shape{H: 2, W: 2, C: 4}
	cases := []struct {
		node GraphNode
		want float64
	}{
		{GraphNode{Kind: OpInput, Out: shape}, 0},
		{GraphNode{Kind: OpReLU, Out: shape}, 16},
		{GraphNode{Kind: OpAdd, Out: shape}, 16},
		{GraphNode{Kind: OpConcat, Out: shape}, 16},
		{GraphNode{Kind: OpMaxPool, Kernel: 3, Out: shape}, 9 * 16},
		{GraphNode{Kind: OpAvgPool, Kernel: 2, Out: shape}, 4 * 16},
	}
	for i, c := range cases {
		if got := c.node.FLOPs(); got != c.want {
			t.Errorf("case %d (%v): FLOPs = %v, want %v", i, c.node.Kind, got, c.want)
		}
	}
}
