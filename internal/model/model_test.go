package model

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConvSpecOutShape(t *testing.T) {
	tests := []struct {
		name string
		spec ConvSpec
		want Shape
	}{
		{
			name: "same-padding 3x3",
			spec: ConvSpec{In: Shape{32, 32, 3}, OutC: 64, Kernel: 3, Stride: 1, Pad: 1},
			want: Shape{32, 32, 64},
		},
		{
			name: "strided 3x3 halves spatial",
			spec: ConvSpec{In: Shape{16, 16, 64}, OutC: 128, Kernel: 3, Stride: 2, Pad: 1},
			want: Shape{8, 8, 128},
		},
		{
			name: "1x1 keeps spatial",
			spec: ConvSpec{In: Shape{8, 8, 256}, OutC: 32, Kernel: 1, Stride: 1, Pad: 0},
			want: Shape{8, 8, 32},
		},
		{
			name: "valid 5x5",
			spec: ConvSpec{In: Shape{12, 12, 4}, OutC: 8, Kernel: 5, Stride: 1, Pad: 0},
			want: Shape{8, 8, 8},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.spec.OutShape(); got != tt.want {
				t.Errorf("OutShape() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestConvSpecFLOPs(t *testing.T) {
	// 2 * K*K*Cin * out elements.
	spec := ConvSpec{In: Shape{32, 32, 3}, OutC: 64, Kernel: 3, Stride: 1, Pad: 1}
	want := 2.0 * 9 * 3 * 32 * 32 * 64
	if got := spec.FLOPs(); got != want {
		t.Errorf("FLOPs() = %v, want %v", got, want)
	}
}

func TestExitFLOPsGrowsWithChannels(t *testing.T) {
	small := ExitFLOPs(Shape{8, 8, 64})
	large := ExitFLOPs(Shape{8, 8, 512})
	if large <= small {
		t.Errorf("ExitFLOPs should grow with channels: %v <= %v", large, small)
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Fatalf("Validate() = %v", err)
			}
		})
	}
}

func TestProfileShapesChainConsistently(t *testing.T) {
	// Each element's conv specs (when present) must start from a shape whose
	// channel count matches the previous element's output (spatial can shrink
	// via folded pools only on the previous element).
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			prev := p.Input
			for i, e := range p.Elements {
				if len(e.Convs) > 0 {
					in := e.Convs[0].In
					if in != prev {
						t.Errorf("element %d (%s): first conv input %v, want previous output %v", i+1, e.Name, in, prev)
					}
				}
				prev = e.Out
			}
		})
	}
}

func TestProfileExitCounts(t *testing.T) {
	tests := []struct {
		profile *Profile
		want    int
	}{
		{VGG16(), 13},
		{ResNet34(), 17},
		{InceptionV3(), 16},
		{SqueezeNet10(), 10},
	}
	for _, tt := range tests {
		if got := tt.profile.NumExits(); got != tt.want {
			t.Errorf("%s: NumExits() = %d, want %d", tt.profile.Name, got, tt.want)
		}
	}
}

func TestCumulativeFLOPs(t *testing.T) {
	p := VGG16()
	if got := p.CumulativeFLOPs(0); got != 0 {
		t.Errorf("CumulativeFLOPs(0) = %v, want 0", got)
	}
	if got, want := p.CumulativeFLOPs(p.NumExits()), p.TotalFLOPs(); math.Abs(got-want) > 1 {
		t.Errorf("CumulativeFLOPs(m) = %v, want TotalFLOPs %v", got, want)
	}
	for i := 1; i <= p.NumExits(); i++ {
		if p.CumulativeFLOPs(i) <= p.CumulativeFLOPs(i-1) {
			t.Errorf("CumulativeFLOPs not strictly increasing at %d", i)
		}
	}
}

func TestRangeFLOPsPartition(t *testing.T) {
	for _, p := range All() {
		m := p.NumExits()
		e1, e2 := 2, m-2
		total := p.RangeFLOPs(0, e1) + p.RangeFLOPs(e1, e2) + p.RangeFLOPs(e2, m)
		if math.Abs(total-p.TotalFLOPs()) > 1e-6*p.TotalFLOPs() {
			t.Errorf("%s: three-block partition sums to %v, want %v", p.Name, total, p.TotalFLOPs())
		}
	}
}

func TestDepthFractionMonotone(t *testing.T) {
	for _, p := range All() {
		prev := 0.0
		for i := 1; i <= p.NumExits(); i++ {
			f := p.DepthFraction(i)
			if f <= prev {
				t.Errorf("%s: DepthFraction(%d)=%v not > DepthFraction(%d)=%v", p.Name, i, f, i-1, prev)
			}
			prev = f
		}
		if math.Abs(prev-1) > 1e-12 {
			t.Errorf("%s: DepthFraction(m)=%v, want 1", p.Name, prev)
		}
	}
}

func TestNewMEDNN(t *testing.T) {
	p := InceptionV3()
	m := p.NumExits()
	sigma := make([]float64, m)
	for i := range sigma {
		sigma[i] = float64(i+1) / float64(m)
	}
	n, err := NewMEDNN(p, 1, 14, sigma)
	if err != nil {
		t.Fatalf("NewMEDNN: %v", err)
	}
	if n.E3 != m {
		t.Errorf("E3 = %d, want %d", n.E3, m)
	}
	if n.Sigma[2] != 1 {
		t.Errorf("Sigma[2] = %v, want 1", n.Sigma[2])
	}
	blocks := n.BlockFLOPs()
	backbone := p.TotalFLOPs()
	clsSum := p.ExitClassifierFLOPs(1) + p.ExitClassifierFLOPs(14) + p.ExitClassifierFLOPs(m)
	got := blocks[0] + blocks[1] + blocks[2]
	if math.Abs(got-(backbone+clsSum)) > 1e-6*backbone {
		t.Errorf("block FLOPs sum %v, want backbone+classifiers %v", got, backbone+clsSum)
	}
	data := n.DataBytes()
	if data[0] != RawInputBytes {
		t.Errorf("d0 = %v, want %v", data[0], float64(RawInputBytes))
	}
	if data[1] <= 0 || data[2] <= 0 {
		t.Errorf("intermediate sizes must be positive: %v", data)
	}
}

func TestNewMEDNNRejectsBadExits(t *testing.T) {
	p := VGG16()
	sigma := make([]float64, p.NumExits())
	for i := range sigma {
		sigma[i] = 1
	}
	cases := []struct{ e1, e2 int }{{0, 5}, {5, 5}, {7, 3}, {5, p.NumExits()}, {p.NumExits(), p.NumExits() + 1}}
	for _, c := range cases {
		if _, err := NewMEDNN(p, c.e1, c.e2, sigma); err == nil {
			t.Errorf("NewMEDNN(%d, %d) expected error", c.e1, c.e2)
		}
	}
	if _, err := NewMEDNN(p, 1, 5, sigma[:3]); err == nil {
		t.Error("NewMEDNN with short sigma expected error")
	}
}

func TestRangeFLOPsAdditiveProperty(t *testing.T) {
	p := ResNet34()
	m := p.NumExits()
	f := func(a, b, c uint8) bool {
		lo := int(a) % (m + 1)
		mid := int(b) % (m + 1)
		hi := int(c) % (m + 1)
		if lo > mid {
			lo, mid = mid, lo
		}
		if mid > hi {
			mid, hi = hi, mid
		}
		if lo > mid {
			lo, mid = mid, lo
		}
		got := p.RangeFLOPs(lo, mid) + p.RangeFLOPs(mid, hi)
		want := p.RangeFLOPs(lo, hi)
		return math.Abs(got-want) <= 1e-6*(want+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"vgg-16", "resnet-34", "inception-v3", "squeezenet-1.0"} {
		p, err := ByName(want)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want, err)
		}
		if p.Name != want {
			t.Errorf("ByName(%q).Name = %q", want, p.Name)
		}
	}
	if _, err := ByName("alexnet"); err == nil {
		t.Error("ByName(alexnet) expected error")
	}
}

func TestIntermediateSmallerThanInputSomewhere(t *testing.T) {
	// The premise of early-exit offloading: deeper cut points eventually have
	// smaller tensors than shallow ones, creating a compute/transmission
	// trade-off. Check the final intermediate tensor is smaller than the max.
	for _, p := range All() {
		maxBytes, last := 0.0, p.DataBytes(p.NumExits())
		for i := 1; i <= p.NumExits(); i++ {
			if b := p.DataBytes(i); b > maxBytes {
				maxBytes = b
			}
		}
		if last >= maxBytes {
			t.Errorf("%s: final tensor (%v B) should be smaller than the widest (%v B)", p.Name, last, maxBytes)
		}
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := p.WriteJSON(&buf); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			loaded, err := ReadJSON(&buf)
			if err != nil {
				t.Fatalf("ReadJSON: %v", err)
			}
			if loaded.Name != p.Name || loaded.NumExits() != p.NumExits() {
				t.Fatalf("header mismatch: %s/%d vs %s/%d", loaded.Name, loaded.NumExits(), p.Name, p.NumExits())
			}
			if loaded.InputBytes != p.InputBytes {
				t.Errorf("InputBytes %v != %v", loaded.InputBytes, p.InputBytes)
			}
			for i := 1; i <= p.NumExits(); i++ {
				if math.Abs(loaded.LayerFLOPs(i)-p.LayerFLOPs(i)) > 1e-9 {
					t.Errorf("element %d FLOPs differ", i)
				}
				if loaded.DataBytes(i) != p.DataBytes(i) {
					t.Errorf("element %d bytes differ", i)
				}
				if math.Abs(loaded.ExitClassifierFLOPs(i)-p.ExitClassifierFLOPs(i)) > 1e-9 {
					t.Errorf("element %d exit FLOPs differ", i)
				}
			}
		})
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{`,
		`{"name":"x","unknown":1}`,
		`{"name":"x","input":{"H":1,"W":1,"C":1},"input_bytes":10,"elements":[]}`,
		`{"name":"x","input":{"H":1,"W":1,"C":1},"input_bytes":0,"elements":[
		  {"name":"a","flops":1,"out":{"H":1,"W":1,"C":1}},
		  {"name":"b","flops":1,"out":{"H":1,"W":1,"C":1}},
		  {"name":"c","flops":1,"out":{"H":1,"W":1,"C":1}}]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("garbage accepted: %s", bad)
		}
	}
}

// uncached returns a copy of p without prefix-sum caches, so its accessors
// take the naive O(m) loops.
func uncached(p *Profile) *Profile {
	return &Profile{Name: p.Name, Input: p.Input, InputBytes: p.InputBytes, Elements: p.Elements}
}

func TestPrefixSumCachesMatchNaive(t *testing.T) {
	for _, p := range All() {
		q := uncached(p)
		m := p.NumExits()
		for i := 0; i <= m; i++ {
			if got, want := p.CumulativeFLOPs(i), q.CumulativeFLOPs(i); got != want {
				t.Errorf("%s: CumulativeFLOPs(%d) = %v cached, %v naive", p.Name, i, got, want)
			}
			if got, want := p.DataBytes(i), q.DataBytes(i); got != want {
				t.Errorf("%s: DataBytes(%d) = %v cached, %v naive", p.Name, i, got, want)
			}
		}
		for i := 1; i <= m; i++ {
			if got, want := p.ExitClassifierFLOPs(i), q.ExitClassifierFLOPs(i); got != want {
				t.Errorf("%s: ExitClassifierFLOPs(%d) = %v cached, %v naive", p.Name, i, got, want)
			}
		}
		if got, want := p.TotalFLOPs(), q.TotalFLOPs(); got != want {
			t.Errorf("%s: TotalFLOPs = %v cached, %v naive", p.Name, got, want)
		}
	}
}

func TestStaleCacheFallsBackAfterAppend(t *testing.T) {
	p := VGG16()
	extra := p.Elements[len(p.Elements)-1]
	extra.FLOPs = 12345678
	p.Elements = append(p.Elements, extra)
	want := uncached(p).TotalFLOPs()
	if got := p.TotalFLOPs(); got != want {
		t.Fatalf("stale cache served: TotalFLOPs = %v, want %v", got, want)
	}
	if got := p.BuildCaches().TotalFLOPs(); got != want {
		t.Fatalf("after BuildCaches: TotalFLOPs = %v, want %v", got, want)
	}
}
