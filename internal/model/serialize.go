package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// profileJSON is the wire form of a Profile: the offline-profiling artifact
// a deployment ships (per-element FLOPs and tensor sizes), without the
// executable graphs.
type profileJSON struct {
	Name       string        `json:"name"`
	Input      Shape         `json:"input"`
	InputBytes float64       `json:"input_bytes"`
	Elements   []elementJSON `json:"elements"`
}

type elementJSON struct {
	Name       string  `json:"name"`
	FLOPs      float64 `json:"flops"`
	Out        Shape   `json:"out"`
	ExitFLOPs  float64 `json:"exit_flops"`
	OutBytes   float64 `json:"out_bytes"`
	ConvLayers int     `json:"conv_layers,omitempty"`
}

// WriteJSON serializes the profile's analytic numbers — exactly what the
// exit-setting and offloading layers consume. Graphs (weights-free
// structure) are not serialized; a loaded profile supports every decision
// path but not tensor execution.
func (p *Profile) WriteJSON(w io.Writer) error {
	out := profileJSON{
		Name:       p.Name,
		Input:      p.Input,
		InputBytes: p.InputBytes,
	}
	for i, e := range p.Elements {
		out.Elements = append(out.Elements, elementJSON{
			Name:       e.Name,
			FLOPs:      e.FLOPs,
			Out:        e.Out,
			ExitFLOPs:  p.ExitClassifierFLOPs(i + 1),
			OutBytes:   e.OutBytes(),
			ConvLayers: len(e.Convs),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("model: encode profile: %w", err)
	}
	return nil
}

// ReadJSON loads a profile previously written with WriteJSON. The loaded
// profile carries no executable graphs.
func ReadJSON(r io.Reader) (*Profile, error) {
	var in profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decode profile: %w", err)
	}
	p := &Profile{
		Name:       in.Name,
		Input:      in.Input,
		InputBytes: in.InputBytes,
	}
	for _, e := range in.Elements {
		p.Elements = append(p.Elements, Element{
			Name:  e.Name,
			FLOPs: e.FLOPs,
			Out:   e.Out,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.BuildCaches(), nil
}
