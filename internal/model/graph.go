package model

import "fmt"

// OpKind enumerates the primitive operations a chain element's internal
// graph can contain.
type OpKind int

// Primitive operation kinds.
const (
	// OpInput is the graph's single entry node.
	OpInput OpKind = iota + 1
	// OpConv is a 2D convolution.
	OpConv
	// OpReLU is an elementwise rectifier.
	OpReLU
	// OpMaxPool is a max pooling window.
	OpMaxPool
	// OpAvgPool is an average pooling window.
	OpAvgPool
	// OpAdd is an elementwise sum of two inputs (residual connections).
	OpAdd
	// OpConcat concatenates inputs on the channel axis (inception/fire).
	OpConcat
)

// String names the operation kind as it appears in profile tables.
func (k OpKind) String() string {
	switch k {
	case OpInput:
		return "input"
	case OpConv:
		return "conv"
	case OpReLU:
		return "relu"
	case OpMaxPool:
		return "maxpool"
	case OpAvgPool:
		return "avgpool"
	case OpAdd:
		return "add"
	case OpConcat:
		return "concat"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// GraphNode is one primitive operation inside an element graph. Inputs
// reference earlier nodes only, so a Graph is a DAG by construction.
type GraphNode struct {
	// Kind selects the operation.
	Kind OpKind
	// Conv holds the convolution parameters when Kind == OpConv; its In
	// field records the expected input shape.
	Conv ConvSpec
	// Kernel, Stride and Pad parameterize pooling nodes.
	Kernel, Stride, Pad int
	// Inputs are the indices of the node's operands.
	Inputs []int
	// Out is the node's output shape.
	Out Shape
}

// FLOPs returns the node's operation count: convolutions count multiply-adds
// as 2, pools count one comparison/add per window element, elementwise and
// concat nodes count one operation per output element.
func (n GraphNode) FLOPs() float64 {
	switch n.Kind {
	case OpConv:
		return n.Conv.FLOPs()
	case OpMaxPool, OpAvgPool:
		return float64(n.Kernel*n.Kernel) * float64(n.Out.Elems())
	case OpReLU, OpAdd, OpConcat:
		return float64(n.Out.Elems())
	default:
		return 0
	}
}

// Graph is the executable internal structure of one chain element: a DAG of
// primitive operations from a single input node to a single output (the last
// node). The tensor engine executes Graphs directly, and the analytic FLOPs
// of an element are defined as the sum over its graph's nodes — so the
// numbers every LEIME decision consumes are exactly what execution performs.
type Graph struct {
	// Nodes are in topological order; Nodes[0] is the OpInput node and the
	// last node is the element's output.
	Nodes []GraphNode
}

// In returns the graph's input shape.
func (g *Graph) In() Shape { return g.Nodes[0].Out }

// OutShape returns the graph's output shape.
func (g *Graph) OutShape() Shape { return g.Nodes[len(g.Nodes)-1].Out }

// FLOPs returns the total operation count of the graph.
func (g *Graph) FLOPs() float64 {
	var sum float64
	for _, n := range g.Nodes {
		sum += n.FLOPs()
	}
	return sum
}

// Convs returns the graph's convolutions in topological order.
func (g *Graph) Convs() []ConvSpec {
	var out []ConvSpec
	for _, n := range g.Nodes {
		if n.Kind == OpConv {
			out = append(out, n.Conv)
		}
	}
	return out
}

// Validate checks structural soundness: topological input references, shape
// agreement along every edge, and well-formed operands.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("model: empty graph")
	}
	if g.Nodes[0].Kind != OpInput {
		return fmt.Errorf("model: graph node 0 must be the input, got %v", g.Nodes[0].Kind)
	}
	for i, n := range g.Nodes {
		if i == 0 {
			continue
		}
		for _, in := range n.Inputs {
			if in < 0 || in >= i {
				return fmt.Errorf("model: node %d (%v) references node %d (not topological)", i, n.Kind, in)
			}
		}
		switch n.Kind {
		case OpConv:
			if len(n.Inputs) != 1 {
				return fmt.Errorf("model: node %d: conv needs exactly 1 input", i)
			}
			if got := g.Nodes[n.Inputs[0]].Out; got != n.Conv.In {
				return fmt.Errorf("model: node %d: conv expects input %v, predecessor yields %v", i, n.Conv.In, got)
			}
			if n.Out != n.Conv.OutShape() {
				return fmt.Errorf("model: node %d: conv output recorded as %v, spec yields %v", i, n.Out, n.Conv.OutShape())
			}
		case OpReLU:
			if len(n.Inputs) != 1 || g.Nodes[n.Inputs[0]].Out != n.Out {
				return fmt.Errorf("model: node %d: relu must preserve its single input's shape", i)
			}
		case OpMaxPool, OpAvgPool:
			if len(n.Inputs) != 1 {
				return fmt.Errorf("model: node %d: pool needs exactly 1 input", i)
			}
			in := g.Nodes[n.Inputs[0]].Out
			h := (in.H+2*n.Pad-n.Kernel)/n.Stride + 1
			w := (in.W+2*n.Pad-n.Kernel)/n.Stride + 1
			if (n.Out != Shape{H: h, W: w, C: in.C}) {
				return fmt.Errorf("model: node %d: pool output recorded as %v, want %v", i, n.Out, Shape{H: h, W: w, C: in.C})
			}
		case OpAdd:
			if len(n.Inputs) != 2 {
				return fmt.Errorf("model: node %d: add needs exactly 2 inputs", i)
			}
			a, b := g.Nodes[n.Inputs[0]].Out, g.Nodes[n.Inputs[1]].Out
			if a != b || a != n.Out {
				return fmt.Errorf("model: node %d: add shapes disagree (%v + %v -> %v)", i, a, b, n.Out)
			}
		case OpConcat:
			if len(n.Inputs) < 2 {
				return fmt.Errorf("model: node %d: concat needs at least 2 inputs", i)
			}
			c := 0
			for _, in := range n.Inputs {
				s := g.Nodes[in].Out
				if s.H != n.Out.H || s.W != n.Out.W {
					return fmt.Errorf("model: node %d: concat operand %v mismatches spatial %dx%d", i, s, n.Out.H, n.Out.W)
				}
				c += s.C
			}
			if c != n.Out.C {
				return fmt.Errorf("model: node %d: concat channels sum to %d, recorded %d", i, c, n.Out.C)
			}
		default:
			return fmt.Errorf("model: node %d: unexpected kind %v", i, n.Kind)
		}
	}
	return nil
}

// GraphBuilder assembles a Graph incrementally; each method appends a node
// and returns its index for later reference.
type GraphBuilder struct {
	g Graph
}

// NewGraphBuilder starts a graph with the given input shape; the input node
// has index 0.
func NewGraphBuilder(in Shape) *GraphBuilder {
	b := &GraphBuilder{}
	b.g.Nodes = append(b.g.Nodes, GraphNode{Kind: OpInput, Out: in})
	return b
}

// Conv appends a convolution reading from node in.
func (b *GraphBuilder) Conv(in, outC, kernel, stride, pad int) int {
	spec := ConvSpec{In: b.g.Nodes[in].Out, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad}
	return b.add(GraphNode{Kind: OpConv, Conv: spec, Inputs: []int{in}, Out: spec.OutShape()})
}

// ReLU appends a rectifier reading from node in.
func (b *GraphBuilder) ReLU(in int) int {
	return b.add(GraphNode{Kind: OpReLU, Inputs: []int{in}, Out: b.g.Nodes[in].Out})
}

// MaxPool appends a max pool reading from node in.
func (b *GraphBuilder) MaxPool(in, kernel, stride, pad int) int {
	return b.pool(OpMaxPool, in, kernel, stride, pad)
}

// AvgPool appends an average pool reading from node in.
func (b *GraphBuilder) AvgPool(in, kernel, stride, pad int) int {
	return b.pool(OpAvgPool, in, kernel, stride, pad)
}

func (b *GraphBuilder) pool(kind OpKind, in, kernel, stride, pad int) int {
	s := b.g.Nodes[in].Out
	h := (s.H+2*pad-kernel)/stride + 1
	w := (s.W+2*pad-kernel)/stride + 1
	return b.add(GraphNode{
		Kind: kind, Kernel: kernel, Stride: stride, Pad: pad,
		Inputs: []int{in}, Out: Shape{H: h, W: w, C: s.C},
	})
}

// Add appends an elementwise sum of nodes a and b.
func (b *GraphBuilder) Add(a, c int) int {
	return b.add(GraphNode{Kind: OpAdd, Inputs: []int{a, c}, Out: b.g.Nodes[a].Out})
}

// Concat appends a channel concatenation of the given nodes.
func (b *GraphBuilder) Concat(ins ...int) int {
	first := b.g.Nodes[ins[0]].Out
	c := 0
	for _, in := range ins {
		c += b.g.Nodes[in].Out.C
	}
	inputs := make([]int, len(ins))
	copy(inputs, ins)
	return b.add(GraphNode{Kind: OpConcat, Inputs: inputs, Out: Shape{H: first.H, W: first.W, C: c}})
}

func (b *GraphBuilder) add(n GraphNode) int {
	b.g.Nodes = append(b.g.Nodes, n)
	return len(b.g.Nodes) - 1
}

// Finish returns the built graph; the last appended node is the output.
func (b *GraphBuilder) Finish() *Graph {
	out := b.g
	return &out
}
