package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeValidate(t *testing.T) {
	if err := RaspberryPi3B.Validate(); err != nil {
		t.Errorf("preset invalid: %v", err)
	}
	if err := (Node{Name: "x", FLOPS: 0}).Validate(); err == nil {
		t.Error("zero FLOPS accepted")
	}
}

func TestComputeSeconds(t *testing.T) {
	n := Node{Name: "x", FLOPS: 1e9}
	if got := n.ComputeSeconds(5e8); got != 0.5 {
		t.Errorf("ComputeSeconds = %v, want 0.5", got)
	}
	if got := n.ComputeSeconds(-1); got != 0 {
		t.Errorf("negative FLOPs should cost 0, got %v", got)
	}
}

func TestPathTransferSeconds(t *testing.T) {
	p := Path{BandwidthBps: 8e6, LatencySec: 0.05}
	if got := p.TransferSeconds(1e6); math.Abs(got-1.05) > 1e-12 {
		t.Errorf("TransferSeconds = %v, want 1.05", got)
	}
	if got := p.TransferSeconds(0); got != 0.05 {
		t.Errorf("zero bytes should cost latency only, got %v", got)
	}
}

func TestPathValidate(t *testing.T) {
	if err := (Path{BandwidthBps: 0}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Path{BandwidthBps: 1, LatencySec: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestEnvValidateCollectsAll(t *testing.T) {
	if err := TestbedEnv(JetsonNano).Validate(); err != nil {
		t.Errorf("testbed env invalid: %v", err)
	}
	if err := (Env{}).Validate(); err == nil {
		t.Error("zero env accepted")
	}
}

func TestWithEdgeLoad(t *testing.T) {
	env := TestbedEnv(RaspberryPi3B)
	loaded := env.WithEdgeLoad(0.25)
	if loaded.EdgeFLOPS != env.EdgeFLOPS*0.25 {
		t.Errorf("EdgeFLOPS = %v", loaded.EdgeFLOPS)
	}
	if loaded.DeviceFLOPS != env.DeviceFLOPS {
		t.Error("WithEdgeLoad must not touch other fields")
	}
}

func TestWithDeviceEdge(t *testing.T) {
	env := TestbedEnv(RaspberryPi3B)
	p := Path{BandwidthBps: 123, LatencySec: 0.5}
	got := env.WithDeviceEdge(p)
	if got.DeviceEdge != p {
		t.Errorf("DeviceEdge = %+v", got.DeviceEdge)
	}
	if env.DeviceEdge == p {
		t.Error("WithDeviceEdge mutated the receiver")
	}
}

func TestPaperCapabilityRatios(t *testing.T) {
	// §II-A: Jetson Nano outperforms the Raspberry Pi 3B+ by 8.2x.
	ratio := JetsonNano.FLOPS / RaspberryPi3B.FLOPS
	if math.Abs(ratio-8.2) > 0.01 {
		t.Errorf("Nano/Pi ratio = %v, want 8.2", ratio)
	}
	if EdgeDesktop.FLOPS <= JetsonNano.FLOPS {
		t.Error("edge should outclass the strongest device")
	}
	if CloudV100.FLOPS <= EdgeDesktop.FLOPS {
		t.Error("cloud should outclass the edge")
	}
}

func TestMbps(t *testing.T) {
	if Mbps(10) != 1e7 {
		t.Errorf("Mbps(10) = %v", Mbps(10))
	}
}

func TestTransferMonotoneInBytesProperty(t *testing.T) {
	p := Path{BandwidthBps: 1e7, LatencySec: 0.01}
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return p.TransferSeconds(x) <= p.TransferSeconds(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
